package karousos_test

import (
	"fmt"

	"karousos.dev/karousos"
)

// Example demonstrates the full audit loop: serve a workload with advice
// collection, then verify that the responses in the trusted trace are
// explainable by the program.
func Example() {
	spec := karousos.MOTDApp()
	reqs := karousos.MOTDWorkload(50, karousos.Mixed, 7)

	run, err := karousos.Serve(spec, reqs, 10, 42, karousos.CollectKarousos)
	if err != nil {
		panic(err)
	}
	verdict := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
	if verdict.Err != nil {
		fmt.Println("rejected:", verdict.Err)
		return
	}
	fmt.Printf("accepted: %d requests in %d groups\n", verdict.Stats.Requests, verdict.Stats.Groups)
	// Output:
	// accepted: 50 requests in 3 groups
}

// ExampleVerifyKarousos_rejection shows the audit catching a tampered
// response: the server (or the network path it controls) answered something
// the program never produced.
func ExampleVerifyKarousos_rejection() {
	spec := karousos.MOTDApp()
	reqs := karousos.MOTDWorkload(10, karousos.Mixed, 7)
	run, err := karousos.Serve(spec, reqs, 2, 42, karousos.CollectKarousos)
	if err != nil {
		panic(err)
	}
	// Forge the first response in the trace.
	for i := range run.Trace.Events {
		if run.Trace.Events[i].Kind == karousos.TraceResp {
			run.Trace.Events[i].Data = "forged"
			break
		}
	}
	verdict := karousos.VerifyKarousos(spec, run.Trace, run.Karousos)
	fmt.Println(verdict.Err != nil)
	// Output:
	// true
}

// ExampleServe_collectBoth collects Karousos and Orochi-JS advice in one run
// and compares their sizes — Karousos logs only R-concurrent accesses, so on
// applications with within-request access chains its advice is smaller.
func ExampleServe_collectBoth() {
	spec := karousos.WikiApp()
	reqs := karousos.WikiWorkload(100, 1)
	run, err := karousos.Serve(spec, reqs, 10, 42, karousos.CollectBoth)
	if err != nil {
		panic(err)
	}
	fmt.Println(run.Karousos.Size() < run.Orochi.Size())
	// Output:
	// true
}

// ExampleVerifySequential runs the naive baseline: request-by-request
// re-execution with no advice, which cannot reproduce concurrent
// interleavings and serves only as a cost yardstick.
func ExampleVerifySequential() {
	spec := karousos.MOTDApp()
	reqs := karousos.MOTDWorkload(20, karousos.ReadHeavy, 3)
	run, err := karousos.Serve(spec, reqs, 1, 42, karousos.CollectNone)
	if err != nil {
		panic(err)
	}
	seq := karousos.VerifySequential(spec, run.Trace)
	fmt.Printf("matched %d of %d responses\n", seq.Matched, seq.Matched+seq.Mismatched)
	// Output:
	// matched 20 of 20 responses
}
