package epochlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
)

func ev(kind trace.Kind, rid string, i int) trace.Event {
	return trace.Event{Kind: kind, RID: rid, Data: value.Map("i", float64(i))}
}

// fillEpoch appends n request/response pairs and an advice blob, then seals.
func fillEpoch(t *testing.T, l *Log, n int, blob []byte) *Manifest {
	t.Helper()
	events, _ := l.ActiveEvents()
	for i := 0; i < n; i++ {
		rid := fmt.Sprintf("e%d-r%d", l.ActiveSeq(), events/2+i)
		if err := l.AppendEvent(ev(trace.Req, rid, i)); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendEvent(ev(trace.Resp, rid, i)); err != nil {
			t.Fatal(err)
		}
	}
	if blob != nil {
		if err := l.AppendAdvice(blob); err != nil {
			t.Fatal(err)
		}
	}
	m, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("seal of non-empty epoch returned nil manifest")
	}
	return m
}

func TestSealReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := fillEpoch(t, l, 3, []byte("first-blob"))
	m2 := fillEpoch(t, l, 2, []byte("second-blob"))
	if m1.Seq != 1 || m2.Seq != 2 {
		t.Fatalf("unexpected seqs %d, %d", m1.Seq, m2.Seq)
	}
	if m1.Events != 6 || m1.Requests != 3 {
		t.Fatalf("manifest 1 counts wrong: %+v", m1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	sealed, err := ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 2 {
		t.Fatalf("ListSealed = %d epochs, want 2", len(sealed))
	}
	tr, blob, m, err := ReadSealed(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 6 || string(blob) != "first-blob" {
		t.Fatalf("epoch 1 contents wrong: %d events, blob %q", len(tr.Events), blob)
	}
	// The manifest digest is the trace's digest, recomputable independently.
	if tr.Digest() != m.TraceDigest {
		t.Error("manifest digest does not match recomputed trace digest")
	}
	if err := tr.CheckBalanced(); err != nil {
		t.Errorf("sealed trace unbalanced: %v", err)
	}
}

func TestAdviceLastRecordWins(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEvent(ev(trace.Req, "r1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEvent(ev(trace.Resp, "r1", 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.AppendAdvice([]byte(fmt.Sprintf("upload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, blob, _, err := ReadSealed(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "upload-2" {
		t.Fatalf("winning blob = %q, want upload-2", blob)
	}
}

func TestAdviceByteLimit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxAdviceBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendAdvice(bytes.Repeat([]byte("x"), 9)); err == nil {
		t.Error("over-limit advice accepted on append")
	}
	if err := l.AppendAdvice([]byte("ok")); err != nil {
		t.Errorf("in-limit advice rejected: %v", err)
	}
}

func TestEmptySealIsNoop(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	m, err := l.Seal()
	if err != nil || m != nil {
		t.Fatalf("empty seal: m=%v err=%v", m, err)
	}
	if l.ActiveSeq() != 1 {
		t.Errorf("empty seal advanced the epoch to %d", l.ActiveSeq())
	}
}

func TestReopenResumesActiveEpoch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillEpoch(t, l, 2, []byte("blob"))
	// Leave a partial active epoch behind.
	if err := l.AppendEvent(ev(trace.Req, "partial", 0)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l2.Sealed()); got != 1 {
		t.Fatalf("reopened sealed count = %d, want 1", got)
	}
	if events, reqs := l2.ActiveEvents(); events != 1 || reqs != 1 {
		t.Fatalf("recovered active epoch has %d events (%d reqs), want 1/1", events, reqs)
	}
	// The epoch must still seal correctly after recovery.
	if err := l2.AppendEvent(ev(trace.Resp, "partial", 0)); err != nil {
		t.Fatal(err)
	}
	m, err := l2.Seal()
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	tr, _, _, err := ReadSealed(dir, m.Seq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckBalanced(); err != nil {
		t.Errorf("post-recovery sealed trace unbalanced: %v", err)
	}
}

// TestManifestLastRIDAndFresh: the manifest records the epoch's last REQ
// rid and a durable fresh mark; both survive a crash-reopen before the
// seal, and the fresh mark does not leak into the following epoch.
func TestManifestLastRIDAndFresh(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.MarkFresh(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEvent(ev(trace.Req, "r00000007", 0)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEvent(ev(trace.Resp, "r00000007", 0)); err != nil {
		t.Fatal(err)
	}
	if got := l.ActiveLastRID(); got != "r00000007" {
		t.Fatalf("ActiveLastRID = %q", got)
	}
	// Crash before the seal: the reopened log must still know the epoch is
	// fresh (the mark is durable, not in-memory) and what its last rid was.
	l.Close()
	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.ActiveLastRID(); got != "r00000007" {
		t.Fatalf("recovered ActiveLastRID = %q", got)
	}
	m1, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Fresh || m1.LastRID != "r00000007" {
		t.Fatalf("sealed manifest = %+v, want Fresh with LastRID r00000007", m1)
	}
	m2 := fillEpoch(t, l, 1, nil)
	if m2.Fresh {
		t.Fatal("fresh mark leaked into the next epoch")
	}
	l.Close()
}

// TestOpenRefusesGapBeyondSealed: a corrupted manifest in the middle of
// otherwise intact history must fail Open loudly, not silently destroy the
// validly sealed epochs beyond the gap.
func TestOpenRefusesGapBeyondSealed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillEpoch(t, l, 1, []byte("one"))
	fillEpoch(t, l, 1, []byte("two"))
	fillEpoch(t, l, 1, []byte("three"))
	l.Close()

	// Corrupt epoch 2's manifest: epochs 1 and 3 remain validly sealed.
	if err := os.WriteFile(filepath.Join(dir, "ep000002.manifest"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open adopted a gapped log instead of failing")
	}
	// Epoch 3 must be untouched and still independently verifiable.
	if _, err := os.Stat(filepath.Join(dir, "ep000003.manifest")); err != nil {
		t.Fatalf("epoch 3 manifest gone after failed Open: %v", err)
	}
	tr, blob, m, err := ReadSealed(dir, 3, Options{})
	if err != nil {
		t.Fatalf("epoch 3 unreadable after failed Open: %v", err)
	}
	if tr.Digest() != m.TraceDigest || string(blob) != "three" {
		t.Fatal("epoch 3 contents changed after failed Open")
	}
}

// TestRecoveryQuarantinesInsteadOfDeleting: stray files beyond the active
// epoch and a torn manifest at it are renamed aside, not removed — the
// bytes stay on disk for post-mortem inspection.
func TestRecoveryQuarantinesInsteadOfDeleting(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillEpoch(t, l, 1, nil)
	l.Close()

	// A torn manifest at the next epoch plus a stray data file beyond it.
	torn := []byte("torn-manifest-bytes")
	if err := os.WriteFile(filepath.Join(dir, "ep000002.manifest"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	stray := []byte("stray-trace-bytes")
	if err := os.WriteFile(filepath.Join(dir, "ep000005.trace"), stray, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := len(l.Sealed()); got != 1 {
		t.Fatalf("sealed = %d, want 1", got)
	}
	for name, want := range map[string][]byte{
		"ep000002.manifest.quarantined": torn,
		"ep000005.trace.quarantined":    stray,
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("quarantined file missing: %v", err)
		} else if !bytes.Equal(data, want) {
			t.Errorf("%s contents changed", name)
		}
	}
	// The log still seals epoch 2 normally after quarantining the torn
	// manifest (O_EXCL would fail if the name were still taken).
	if m := fillEpoch(t, l, 1, nil); m.Seq != 2 {
		t.Fatalf("sealed seq = %d, want 2", m.Seq)
	}
}

// TestCrashRecoveryProperty kills writes at arbitrary byte offsets of the
// active epoch's files (plus faultinject's byte operators over the tails)
// and asserts the log reopens to the last sealed epoch with no panic.
func TestCrashRecoveryProperty(t *testing.T) {
	// Build a reference log: two sealed epochs plus a partial third.
	ref := t.TempDir()
	l, err := Open(ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillEpoch(t, l, 3, []byte("epoch-1-advice"))
	fillEpoch(t, l, 2, []byte("epoch-2-advice"))
	for i := 0; i < 2; i++ {
		rid := fmt.Sprintf("p%d", i)
		if err := l.AppendEvent(ev(trace.Req, rid, i)); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendEvent(ev(trace.Resp, rid, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendAdvice([]byte("partial-advice")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	check := func(t *testing.T, dir string, wantSealed int) {
		t.Helper()
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen failed: %v", err)
		}
		sealed := l2.Sealed()
		if len(sealed) != wantSealed {
			t.Fatalf("recovered %d sealed epochs, want %d", len(sealed), wantSealed)
		}
		// Sealed epochs must read back intact, and the log must keep working.
		for _, m := range sealed {
			tr, _, _, err := ReadSealed(dir, m.Seq, Options{})
			if err != nil {
				t.Fatalf("sealed epoch %d unreadable after recovery: %v", m.Seq, err)
			}
			if tr.Digest() != m.TraceDigest {
				t.Fatalf("sealed epoch %d digest changed", m.Seq)
			}
		}
		if err := l2.AppendEvent(ev(trace.Req, "post-recovery", 0)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		l2.Close()
	}

	copyDir := func(t *testing.T) string {
		t.Helper()
		dst := t.TempDir()
		ents, err := os.ReadDir(ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			data, err := os.ReadFile(filepath.Join(ref, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}

	// Torn writes: truncate the active epoch's files at every byte offset.
	for _, name := range []string{"ep000003.trace", "ep000003.advice"} {
		data, err := os.ReadFile(filepath.Join(ref, name))
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off <= len(data); off += 3 {
			dir := copyDir(t)
			if err := os.Truncate(filepath.Join(dir, name), int64(off)); err != nil {
				t.Fatal(err)
			}
			check(t, dir, 2)
		}
	}

	// Byte-operator corruption of the active epoch's tail (truncate,
	// bit-flip, splice, length-inflate — the faultinject catalogue's byte
	// kinds model exactly the torn/corrupt-write classes).
	var byteOps []faultinject.Op
	for _, op := range faultinject.Catalogue() {
		if op.Kind == faultinject.KindBytes {
			byteOps = append(byteOps, op)
		}
	}
	if len(byteOps) == 0 {
		t.Fatal("no byte operators in the faultinject catalogue")
	}
	for _, op := range byteOps {
		for seed := int64(0); seed < 25; seed++ {
			for _, name := range []string{"ep000003.trace", "ep000003.advice"} {
				dir := copyDir(t)
				path := filepath.Join(dir, name)
				wire, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				mutated, err := op.Apply(seed, wire)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, mutated, 0o644); err != nil {
					t.Fatal(err)
				}
				check(t, dir, 2)
			}
		}
	}

	// Killing the seal itself: a torn manifest unseals its epoch, leaving
	// exactly the state a crash between Rotate and FinishSeals leaves —
	// durable data for epoch 2, a successor epoch already bearing frames.
	// Recovery reseals epoch 2 from its data (flagged degraded: the torn
	// manifest means its seal never finished cleanly) and keeps epoch 3's
	// frames as the active epoch instead of quarantining good evidence.
	for off := 0; off <= 20; off += 2 {
		dir := copyDir(t)
		mp := filepath.Join(dir, "ep000002.manifest")
		info, err := os.Stat(mp)
		if err != nil {
			t.Fatal(err)
		}
		if int64(off) > info.Size() {
			break
		}
		if err := os.Truncate(mp, int64(off)); err != nil {
			t.Fatal(err)
		}
		check(t, dir, 2)
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m := l2.Sealed()[1]; m.Degraded == "" {
			t.Fatalf("recovery-sealed epoch 2 not flagged degraded: %+v", m)
		}
		l2.Close()
	}
}
