// Package epochlog is the durable evidence store of the continuous-audit
// pipeline: an on-disk, segmented log of trace events and advice,
// partitioned into sealed epochs.
//
// Layout: each epoch seq owns three files in one directory —
//
//	ep%06d.trace    framed trace events (trusted channel)
//	ep%06d.advice   framed advice blobs (untrusted channel; last wins)
//	ep%06d.manifest one framed JSON Manifest; its presence seals the epoch
//
// Every record is framed as u32le(payload length) | u32le(CRC32C(payload))
// | payload. Trace frames each carry one canonically-encoded trace event
// (internal/trace's binary codec), so the manifest's trace digest is
// recomputable from segment payloads alone. Advice frames each carry one
// complete serialized advice blob; the server may re-upload (e.g. after a
// retry), and the last intact record wins. The manifest is written and
// fsynced only after its data files are fsynced, so a sealed epoch's
// contents are durable before the seal itself is.
//
// Crash recovery (Open) adopts the longest contiguous prefix of validly
// sealed epochs, truncates torn tails off the successor's data files, and
// quarantines (renames, never deletes) anything beyond: appending resumes
// exactly where the crash interrupted. A valid manifest past a gap in the
// sealed prefix makes Open fail loudly instead — recovery refuses to
// discard epochs that are still verifiable evidence. Sealed epochs are
// immutable, so a concurrently running auditor reads them
// (ListSealed/ReadSealed) without coordination.
package epochlog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"karousos.dev/karousos/internal/trace"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrAdviceTooLarge reports an advice record over Options.MaxAdviceBytes.
var ErrAdviceTooLarge = errors.New("advice record exceeds byte limit")

const frameHeader = 8 // u32le length + u32le CRC32C

// quarantineSuffix is appended to files Open moves aside instead of
// deleting: recovery must never destroy bytes it did not itself write.
const quarantineSuffix = ".quarantined"

// Manifest describes one sealed epoch. Its valid presence on disk is what
// seals the epoch.
type Manifest struct {
	// Seq is the 1-based epoch sequence number.
	Seq uint64 `json:"seq"`
	// Events and Requests count the epoch's trace events and REQ events.
	Events   int `json:"events"`
	Requests int `json:"requests"`
	// TraceDigest is trace.Trace.Digest over the sealed events, recomputed
	// and checked on every sealed read: it pins the trusted channel.
	TraceDigest string `json:"traceDigest"`
	// AdviceBytes is the size of the winning advice record (0 if the
	// server uploaded none).
	AdviceBytes int `json:"adviceBytes"`
	// LastRID is the RID of the epoch's last REQ event. The HTTP collector
	// assigns RIDs monotonically and recovers its counter from this field
	// on restart, so RIDs never repeat across epochs or incarnations.
	LastRID string `json:"lastRid,omitempty"`
	// Fresh marks an epoch whose serving runtime began with fresh
	// application state (a collector restart). It is recorded on the
	// trusted channel by the collector itself; an auditor must drop any
	// carried prior-epoch state before auditing a fresh epoch.
	Fresh bool `json:"fresh,omitempty"`
}

// Options bound what replaying the log may allocate.
type Options struct {
	// MaxAdviceBytes caps a single advice record on append and on replay
	// (mirror verifier.Limits.MaxAdviceBytes); 0 is unbounded.
	MaxAdviceBytes int
}

// Log is the writer handle: one process appends and seals. Reading sealed
// epochs needs no Log — see ListSealed and ReadSealed.
type Log struct {
	dir string
	opt Options

	mu     sync.Mutex
	sealed []Manifest
	active uint64 // seq of the epoch being written

	traceF  *os.File
	adviceF *os.File

	events      int
	requests    int
	digest      hash.Hash
	adviceBytes int    // size of the last intact advice record
	lastRID     string // RID of the active epoch's last REQ event
	fresh       bool   // active epoch began with fresh application state
	closed      bool
}

func tracePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.trace", seq))
}
func advicePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.advice", seq))
}
func manifestPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.manifest", seq))
}
func freshPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.fresh", seq))
}

// Open opens (creating if needed) the log in dir and recovers from any
// torn state: the longest contiguous prefix of validly sealed epochs is
// adopted, the next epoch becomes active with torn frame tails truncated
// off its data files, and stray files beyond it are removed.
func Open(dir string, opt Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	sealed, err := ListSealed(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, sealed: sealed, active: uint64(len(sealed)) + 1}

	// Recovery must never destroy audit evidence. A *valid* manifest past
	// the contiguous sealed prefix means a gap — one corrupted manifest in
	// the middle of otherwise-intact history — so refuse to open rather
	// than touch the still-verifiable epochs beyond it. Everything else
	// past the prefix (data files of epochs beyond the active one, a torn
	// manifest at the active epoch) is unreachable garbage from a crashed
	// seal: move it aside with a .quarantined suffix, never delete it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	var strays []string
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		var seq uint64
		var kind string
		if n, _ := fmt.Sscanf(name, "ep%d.%s", &seq, &kind); n != 2 {
			continue
		}
		if kind == "manifest" && seq > l.active {
			if _, ok := readManifest(dir, seq); ok {
				return nil, fmt.Errorf("epochlog: sealed epoch %d exists beyond a gap at epoch %d; refusing to open rather than discard audit evidence", seq, l.active)
			}
		}
		if seq > l.active || (seq == l.active && kind == "manifest") {
			strays = append(strays, name)
		}
	}
	for _, name := range strays {
		from := filepath.Join(dir, name)
		if err := os.Rename(from, from+quarantineSuffix); err != nil {
			return nil, fmt.Errorf("epochlog: quarantining %s: %w", name, err)
		}
	}

	if err := l.openActive(); err != nil {
		return nil, err
	}
	return l, nil
}

// openActive recovers the active epoch's data files — truncating torn
// tails, recomputing counters and the running digest — and opens them for
// appending. Caller holds no lock (Open) or l.mu (Seal).
func (l *Log) openActive() error {
	l.events, l.requests, l.adviceBytes, l.lastRID = 0, 0, 0, ""
	l.digest = sha256.New()
	_, statErr := os.Stat(freshPath(l.dir, l.active))
	l.fresh = statErr == nil

	tp := tracePath(l.dir, l.active)
	if err := truncateTorn(tp); err != nil {
		return err
	}
	if err := scanFrames(tp, 0, func(payload []byte) error {
		e, err := trace.DecodeEventBinary(payload)
		if err != nil {
			return fmt.Errorf("epochlog: %s: recovered frame undecodable: %w", tp, err)
		}
		l.events++
		if e.Kind == trace.Req {
			l.requests++
			l.lastRID = e.RID
		}
		l.digest.Write(payload)
		return nil
	}); err != nil {
		return err
	}

	ap := advicePath(l.dir, l.active)
	if err := truncateTorn(ap); err != nil {
		return err
	}
	if err := scanFrames(ap, l.opt.MaxAdviceBytes, func(payload []byte) error {
		l.adviceBytes = len(payload)
		return nil
	}); err != nil {
		return err
	}

	var err error
	if l.traceF, err = os.OpenFile(tp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	if l.adviceF, err = os.OpenFile(ap, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		l.traceF.Close()
		return fmt.Errorf("epochlog: %w", err)
	}
	return nil
}

// frame builds length|crc|payload as one buffer, so a torn write can only
// produce a tail the next Open truncates, never a misparse.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeader:], payload)
	return buf
}

// AppendEvent appends one trace event to the active epoch (trusted
// channel: only the collector in front of the server calls this).
func (l *Log) AppendEvent(e trace.Event) error {
	payload := trace.AppendEventBinary(nil, e)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("epochlog: log is closed")
	}
	if _, err := l.traceF.Write(frame(payload)); err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	l.events++
	if e.Kind == trace.Req {
		l.requests++
		l.lastRID = e.RID
	}
	l.digest.Write(payload)
	return nil
}

// AppendAdvice appends one complete advice blob to the active epoch
// (untrusted channel: the server uploads here). Re-uploads are allowed;
// the last intact record wins at seal time.
func (l *Log) AppendAdvice(blob []byte) error {
	if l.opt.MaxAdviceBytes > 0 && len(blob) > l.opt.MaxAdviceBytes {
		return fmt.Errorf("epochlog: record of %d bytes, limit %d: %w", len(blob), l.opt.MaxAdviceBytes, ErrAdviceTooLarge)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("epochlog: log is closed")
	}
	if _, err := l.adviceF.Write(frame(blob)); err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	l.adviceBytes = len(blob)
	return nil
}

// ActiveEvents returns the number of events (and REQ events) accumulated
// in the active epoch.
func (l *Log) ActiveEvents() (events, requests int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events, l.requests
}

// ActiveSeq returns the active epoch's sequence number.
func (l *Log) ActiveSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// ActiveLastRID returns the RID of the active epoch's last REQ event,
// recovered events included; "" when the epoch has none.
func (l *Log) ActiveLastRID() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastRID
}

// MarkFresh records that the active epoch's serving runtime started from
// fresh application state; the flag lands in the epoch's manifest at seal
// and clears once the next epoch begins. The mark is made durable as a
// per-epoch marker file, so a crash before the seal cannot lose it — a
// lost mark would make the auditor carry stale prior-epoch state into an
// epoch that was actually served fresh.
func (l *Log) MarkFresh() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("epochlog: log is closed")
	}
	if err := os.WriteFile(freshPath(l.dir, l.active), nil, 0o644); err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	syncDir(l.dir)
	l.fresh = true
	return nil
}

// Seal durably closes the active epoch: data files are fsynced, the
// manifest (carrying the trace digest) is written and fsynced, and a fresh
// active epoch begins. Sealing an epoch with no events is a no-op. When the
// manifest is durable but rotating to the next epoch fails, Seal returns
// the manifest *and* an error: the epoch is sealed, the log is closed.
func (l *Log) Seal() (*Manifest, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("epochlog: log is closed")
	}
	if l.events == 0 {
		return nil, nil
	}
	for _, f := range []*os.File{l.traceF, l.adviceF} {
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("epochlog: %w", err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("epochlog: %w", err)
		}
	}
	m := Manifest{
		Seq:         l.active,
		Events:      l.events,
		Requests:    l.requests,
		TraceDigest: fmt.Sprintf("%x", l.digest.Sum(nil)),
		AdviceBytes: l.adviceBytes,
		LastRID:     l.lastRID,
		Fresh:       l.fresh,
	}
	mj, err := json.Marshal(&m)
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	mp := manifestPath(l.dir, l.active)
	mf, err := os.OpenFile(mp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	if _, err := mf.Write(frame(mj)); err != nil {
		mf.Close()
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	if err := mf.Sync(); err != nil {
		mf.Close()
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	if err := mf.Close(); err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	syncDir(l.dir)
	// The manifest durably records Fresh now; the marker has served its
	// purpose (a leftover one for a sealed epoch would be ignored anyway).
	_ = os.Remove(freshPath(l.dir, m.Seq))

	l.sealed = append(l.sealed, m)
	l.active++
	if err := l.openActive(); err != nil {
		// The manifest is durable: the epoch IS sealed even though the log
		// cannot rotate to the next one. Return the manifest with the error
		// so callers don't mistake a rotation failure for a failed seal.
		l.closed = true
		return &m, fmt.Errorf("epochlog: epoch %d sealed but rotating to epoch %d failed (log closed): %w", m.Seq, l.active, err)
	}
	return &m, nil
}

// Sealed returns the manifests of all sealed epochs in order.
func (l *Log) Sealed() []Manifest {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Manifest(nil), l.sealed...)
}

// Close releases the active epoch's file handles without sealing; the
// unsealed tail is recovered by the next Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err1 := l.traceF.Close()
	err2 := l.adviceF.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// syncDir best-effort fsyncs a directory so a freshly created manifest's
// directory entry is durable (not all filesystems support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// truncateTorn cuts a data file back to its longest prefix of intact
// frames. A missing file is fine (zero-length epoch so far).
func truncateTorn(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	good := 0
	off := 0
	for {
		n, payload := nextFrame(data, off, 0)
		if payload == nil {
			break
		}
		off += n
		good = off
	}
	if good == len(data) {
		return nil
	}
	return os.Truncate(path, int64(good))
}

// nextFrame parses one frame at off. It returns the frame's total size and
// payload, or (0, nil) when the remainder is empty, torn, or corrupt. A
// positive maxPayload also rejects over-large declared lengths before any
// allocation (untrusted-channel clamp).
func nextFrame(data []byte, off, maxPayload int) (int, []byte) {
	rest := data[off:]
	if len(rest) < frameHeader {
		return 0, nil
	}
	n := int(binary.LittleEndian.Uint32(rest))
	if maxPayload > 0 && n > maxPayload {
		return 0, nil
	}
	if n > len(rest)-frameHeader {
		return 0, nil
	}
	payload := rest[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:]) {
		return 0, nil
	}
	return frameHeader + n, payload
}

// scanFrames streams every intact frame of a file to fn, stopping at the
// first torn or corrupt one. A missing file yields no frames.
func scanFrames(path string, maxPayload int, fn func(payload []byte) error) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	off := 0
	for {
		n, payload := nextFrame(data, off, maxPayload)
		if payload == nil {
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += n
	}
}

// readManifest loads and validates one epoch's manifest; ok is false when
// the file is missing, torn, or inconsistent with its name.
func readManifest(dir string, seq uint64) (Manifest, bool) {
	data, err := os.ReadFile(manifestPath(dir, seq))
	if err != nil {
		return Manifest{}, false
	}
	n, payload := nextFrame(data, 0, 0)
	if payload == nil || n != len(data) {
		return Manifest{}, false
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil || m.Seq != seq || m.Events <= 0 {
		return Manifest{}, false
	}
	return m, true
}

// ListSealed returns the longest contiguous prefix (seq 1, 2, ...) of
// validly sealed epochs in dir. It takes no lock and mutates nothing, so a
// tailing auditor may call it while a collector owns the writer handle.
func ListSealed(dir string) ([]Manifest, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	var seqs []uint64
	for _, ent := range entries {
		var seq uint64
		var kind string
		if n, _ := fmt.Sscanf(ent.Name(), "ep%d.%s", &seq, &kind); n == 2 && kind == "manifest" {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var out []Manifest
	for i, seq := range seqs {
		if seq != uint64(i)+1 {
			break
		}
		m, ok := readManifest(dir, seq)
		if !ok {
			break
		}
		out = append(out, m)
	}
	return out, nil
}

// ReadSealed loads one sealed epoch: the trace (every frame must be intact
// and the recomputed digest must match the manifest — the trusted channel
// does not tolerate corruption) and the winning advice blob (nil when none
// was uploaded; undecodable contents are the audit's concern, not ours).
func ReadSealed(dir string, seq uint64, opt Options) (*trace.Trace, []byte, *Manifest, error) {
	m, ok := readManifest(dir, seq)
	if !ok {
		return nil, nil, nil, fmt.Errorf("epochlog: epoch %d is not sealed in %s", seq, dir)
	}
	tr := &trace.Trace{}
	h := sha256.New()
	if err := scanFrames(tracePath(dir, seq), 0, func(payload []byte) error {
		e, err := trace.DecodeEventBinary(payload)
		if err != nil {
			return fmt.Errorf("epochlog: epoch %d trace frame undecodable: %w", seq, err)
		}
		tr.Events = append(tr.Events, e)
		h.Write(payload)
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	if len(tr.Events) != m.Events {
		return nil, nil, nil, fmt.Errorf("epochlog: epoch %d trace has %d intact events, manifest says %d (trusted channel corrupt)",
			seq, len(tr.Events), m.Events)
	}
	if digest := fmt.Sprintf("%x", h.Sum(nil)); digest != m.TraceDigest {
		return nil, nil, nil, fmt.Errorf("epochlog: epoch %d trace digest %s does not match manifest %s (trusted channel corrupt)",
			seq, digest, m.TraceDigest)
	}
	var blob []byte
	if err := scanFrames(advicePath(dir, seq), opt.MaxAdviceBytes, func(payload []byte) error {
		blob = payload
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	if blob == nil && m.AdviceBytes > 0 {
		// The sealed advice file lost its intact records (on-disk
		// corruption of the untrusted channel). Surface whatever bytes
		// remain so the audit can reject them with a coded verdict instead
		// of us swallowing the epoch.
		raw, err := os.ReadFile(advicePath(dir, seq))
		if err == nil && len(raw) > frameHeader {
			limit := len(raw)
			if opt.MaxAdviceBytes > 0 && limit > frameHeader+opt.MaxAdviceBytes {
				limit = frameHeader + opt.MaxAdviceBytes
			}
			blob = raw[frameHeader:limit]
		}
	}
	return tr, blob, &m, nil
}
