// Package epochlog is the durable evidence store of the continuous-audit
// pipeline: an on-disk, segmented log of trace events and advice,
// partitioned into sealed epochs.
//
// Layout: each epoch seq owns three files in one directory —
//
//	ep%06d.trace    framed trace events (trusted channel)
//	ep%06d.advice   framed advice blobs (untrusted channel; last wins)
//	ep%06d.manifest one framed JSON Manifest; its presence seals the epoch
//
// Every record is framed as u32le(payload length) | u32le(CRC32C(payload))
// | payload. Trace frames each carry one canonically-encoded trace event
// (internal/trace's binary codec), so the manifest's trace digest is
// recomputable from segment payloads alone. Advice frames each carry one
// complete serialized advice blob; the server may re-upload (e.g. after a
// retry), and the last intact record wins. The manifest is written and
// fsynced only after its data files are fsynced, so a sealed epoch's
// contents are durable before the seal itself is.
//
// Crash recovery (Open) adopts the longest contiguous prefix of validly
// sealed epochs, truncates torn tails off the successor's data files, and
// quarantines (renames, never deletes) anything beyond: appending resumes
// exactly where the crash interrupted. A valid manifest past a gap in the
// sealed prefix makes Open fail loudly instead — recovery refuses to
// discard epochs that are still verifiable evidence. Sealed epochs are
// immutable, so a concurrently running auditor reads them
// (ListSealed/ReadSealed) without coordination.
package epochlog

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/trace"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrAdviceTooLarge reports an advice record over Options.MaxAdviceBytes.
var ErrAdviceTooLarge = errors.New("advice record exceeds byte limit")

// ErrCommitQueueFull reports that a durable append was refused because the
// group-commit queue is at capacity. The caller admitted more work than the
// disk can absorb; shedding here (the collector answers 429) is what keeps
// the queue bounded instead of stretching latency without limit.
var ErrCommitQueueFull = errors.New("commit queue full")

const frameHeader = 8 // u32le length + u32le CRC32C

// quarantineSuffix is appended to files Open moves aside instead of
// deleting: recovery must never destroy bytes it did not itself write.
const quarantineSuffix = ".quarantined"

// Manifest describes one sealed epoch. Its valid presence on disk is what
// seals the epoch.
type Manifest struct {
	// Seq is the 1-based epoch sequence number.
	Seq uint64 `json:"seq"`
	// Events and Requests count the epoch's trace events and REQ events.
	Events   int `json:"events"`
	Requests int `json:"requests"`
	// TraceDigest is trace.Trace.Digest over the sealed events, recomputed
	// and checked on every sealed read: it pins the trusted channel.
	TraceDigest string `json:"traceDigest"`
	// AdviceBytes is the size of the winning advice record (0 if the
	// server uploaded none).
	AdviceBytes int `json:"adviceBytes"`
	// TraceBytes is the byte length of the sealed trace file. The auditor
	// bounds its prefetch memory with it (plus AdviceBytes); manifests
	// written before this field existed carry 0, which readers treat as
	// "size unknown".
	TraceBytes int64 `json:"traceBytes,omitempty"`
	// LastRID is the RID of the epoch's last REQ event. The HTTP collector
	// assigns RIDs monotonically and recovers its counter from this field
	// on restart, so RIDs never repeat across epochs or incarnations.
	LastRID string `json:"lastRid,omitempty"`
	// Fresh marks an epoch whose serving runtime began with fresh
	// application state (a collector restart). It is recorded on the
	// trusted channel by the collector itself; an auditor must drop any
	// carried prior-epoch state before auditing a fresh epoch.
	Fresh bool `json:"fresh,omitempty"`
	// Degraded is non-empty when the collector knows this epoch's evidence
	// may be incomplete through no fault of the server — an advice-path
	// outage, a trace append that failed after its request was admitted, a
	// crash that orphaned the epoch mid-flight. The flag rides the trusted
	// channel: the auditor turns a rejection of a degraded epoch into an
	// Unauditable verdict instead of an accusation.
	Degraded string `json:"degraded,omitempty"`
}

// Options bound what replaying the log may allocate.
type Options struct {
	// MaxAdviceBytes caps a single advice record on append and on replay
	// (mirror verifier.Limits.MaxAdviceBytes); 0 is unbounded.
	MaxAdviceBytes int
	// FS is the I/O layer the log reads and writes through; nil means the
	// real filesystem (iofault.OS). Fault-injection harnesses pass an
	// *iofault.Injector.
	FS iofault.FS
	// GroupCommit starts a commit-queue goroutine that coalesces
	// AppendEventDurable calls into amortized batch fsyncs (one fsync per
	// batch rather than per frame). Off by default: the legacy append path
	// and its call-count fault semantics are unchanged unless opted in.
	GroupCommit bool
	// MaxBatchFrames caps how many frames one group-commit batch carries
	// (default 512).
	MaxBatchFrames int
	// CommitQueue caps enqueued-but-uncommitted durable appends (default
	// 4096). A full queue refuses with ErrCommitQueueFull rather than
	// queueing unboundedly.
	CommitQueue int
	// Backoff bounds the committer's retries of transient write faults.
	Backoff iofault.Backoff
}

// fs resolves the configured I/O layer.
func (o Options) fs() iofault.FS {
	if o.FS == nil {
		return iofault.OS
	}
	return o.FS
}

// Log is the writer handle: one process appends and seals. Reading sealed
// epochs needs no Log — see ListSealed and ReadSealed.
type Log struct {
	dir string
	opt Options
	fs  iofault.FS

	mu     sync.Mutex
	sealed []Manifest
	active uint64 // seq of the epoch being written

	traceF  iofault.File
	adviceF iofault.File

	events      int
	requests    int
	digest      hash.Hash
	written     int64  // intact bytes of the active trace file (counted frames only)
	tailBroken  bool   // a torn tail repair failed; repair again before the next write
	adviceBytes int    // size of the last intact advice record
	lastRID     string // RID of the active epoch's last REQ event
	fresh       bool   // active epoch began with fresh application state
	degraded    string // why the active epoch's evidence may be incomplete
	closed      bool

	// pending holds epochs rotated out of the active slot (Rotate) whose
	// durable seal has not finished yet (FinishSeals); sealMu serializes
	// seal completion so manifests land strictly in epoch order.
	pending []*pendingSeal
	sealMu  sync.Mutex

	// commitCh feeds the group-commit goroutine (nil unless
	// Options.GroupCommit; set once in Open, immutable after). Enqueues
	// deliberately avoid l.mu — the committer holds l.mu for a whole batch
	// commit, and an enqueue that waited on it would turn the bounded
	// queue into unbounded mutex blocking. commitMu only fences enqueues
	// against Close closing the channel; commitWG tracks the goroutine.
	commitCh     chan *commitWaiter
	commitMu     sync.RWMutex
	commitClosed bool
	commitWG     sync.WaitGroup
}

// pendingSeal is an epoch whose accounting is frozen (Rotate snapshotted
// its manifest) but whose data fsync + manifest write are still owed.
type pendingSeal struct {
	m       Manifest
	traceF  iofault.File
	adviceF iofault.File
}

func tracePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.trace", seq))
}
func advicePath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.advice", seq))
}
func manifestPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.manifest", seq))
}
func freshPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ep%06d.fresh", seq))
}

// Open opens (creating if needed) the log in dir and recovers from any
// torn state: the longest contiguous prefix of validly sealed epochs is
// adopted, the next epoch becomes active with torn frame tails truncated
// off its data files, and stray files beyond it are removed.
func Open(dir string, opt Options) (*Log, error) {
	fsys := opt.fs()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	sealed, err := ListSealedFS(fsys, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt, fs: fsys, sealed: sealed, active: uint64(len(sealed)) + 1}

	// A crash between Rotate and FinishSeals leaves whole epochs with
	// durable data but no manifest, and the successor epoch already
	// accumulating frames. Walk the contiguous chain of data-bearing epochs
	// starting at the first unsealed one: every epoch in the chain except
	// the last gets recovery-sealed below; the last becomes active again.
	chainEnd := l.active
	for {
		ok, err := hasIntactFrames(fsys, tracePath(dir, chainEnd+1))
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		chainEnd++
	}

	// Recovery must never destroy audit evidence. A *valid* manifest past
	// the contiguous sealed prefix means a gap — one corrupted manifest in
	// the middle of otherwise-intact history — so refuse to open rather
	// than touch the still-verifiable epochs beyond it. Everything else
	// past the prefix (data files of epochs beyond the recoverable chain,
	// a torn manifest at or past the active epoch) is unreachable garbage
	// from a crashed seal: move it aside with a .quarantined suffix, never
	// delete it.
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	var strays []string
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		var seq uint64
		var kind string
		//karousos:errladder-ok parse-or-skip; a non-matching filename is not an epoch file, the n != 2 check covers it
		if n, _ := fmt.Sscanf(name, "ep%d.%s", &seq, &kind); n != 2 {
			continue
		}
		if kind == "manifest" && seq > l.active {
			_, ok, merr := readManifest(fsys, dir, seq)
			if merr != nil {
				return nil, fmt.Errorf("epochlog: checking manifest %d: %w", seq, merr)
			}
			if ok {
				return nil, fmt.Errorf("epochlog: sealed epoch %d exists beyond a gap at epoch %d; refusing to open rather than discard audit evidence", seq, l.active)
			}
		}
		if seq > chainEnd || (seq >= l.active && kind == "manifest") {
			strays = append(strays, name)
		}
	}
	for _, name := range strays {
		from := filepath.Join(dir, name)
		if err := fsys.Rename(from, from+quarantineSuffix); err != nil {
			return nil, fmt.Errorf("epochlog: quarantining %s: %w", name, err)
		}
	}

	// Seal the chain's non-final epochs from their on-disk frames alone.
	// Group-commit acks are durable, so every frame a client was ever told
	// about is in those files; the epochs seal degraded because advice that
	// was never uploaded (or synced) is gone for good.
	for l.active < chainEnd {
		m, err := recoverySeal(fsys, dir, l.active)
		if err != nil {
			return nil, err
		}
		l.sealed = append(l.sealed, *m)
		l.active++
	}

	if err := l.openActive(); err != nil {
		return nil, err
	}
	if opt.GroupCommit {
		if l.opt.MaxBatchFrames <= 0 {
			l.opt.MaxBatchFrames = 512
		}
		if l.opt.CommitQueue <= 0 {
			l.opt.CommitQueue = 4096
		}
		l.commitCh = make(chan *commitWaiter, l.opt.CommitQueue)
		l.commitWG.Add(1)
		go l.committer()
	}
	return l, nil
}

// hasIntactFrames reports whether path exists and holds at least one intact
// frame. A missing file, or one holding only a torn tail, is "no".
func hasIntactFrames(fsys iofault.FS, path string) (bool, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("epochlog: %w", err)
	}
	_, payload := nextFrame(data, 0, 0)
	return payload != nil, nil
}

// openActive recovers the active epoch's data files — truncating torn
// tails, recomputing counters and the running digest — and opens them for
// appending. Caller holds no lock (Open) or l.mu (Seal).
func (l *Log) openActive() error {
	l.events, l.requests, l.adviceBytes, l.lastRID, l.degraded = 0, 0, 0, "", ""
	l.written, l.tailBroken = 0, false
	l.digest = sha256.New()
	_, statErr := l.fs.Stat(freshPath(l.dir, l.active))
	l.fresh = statErr == nil

	tp := tracePath(l.dir, l.active)
	if err := truncateTorn(l.fs, tp); err != nil {
		return err
	}
	if err := scanFrames(l.fs, tp, 0, func(payload []byte) error {
		e, err := trace.DecodeEventBinary(payload)
		if err != nil {
			return fmt.Errorf("epochlog: %s: recovered frame undecodable: %w", tp, err)
		}
		l.events++
		if e.Kind == trace.Req {
			l.requests++
			l.lastRID = e.RID
		}
		l.written += int64(frameHeader + len(payload))
		l.digest.Write(payload) //karousos:errladder-ok hash.Hash.Write is documented never to return an error
		return nil
	}); err != nil {
		return err
	}

	ap := advicePath(l.dir, l.active)
	if err := truncateTorn(l.fs, ap); err != nil {
		return err
	}
	if err := scanFrames(l.fs, ap, l.opt.MaxAdviceBytes, func(payload []byte) error {
		l.adviceBytes = len(payload)
		return nil
	}); err != nil {
		return err
	}

	var err error
	if l.traceF, err = l.fs.OpenFile(tp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	if l.adviceF, err = l.fs.OpenFile(ap, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err != nil {
		l.traceF.Close() //karousos:errladder-ok close-after-error cleanup; the open failure is the error that surfaces
		return fmt.Errorf("epochlog: %w", err)
	}
	return nil
}

// frame builds length|crc|payload as one buffer, so a torn write can only
// produce a tail the next Open truncates, never a misparse.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeader:], payload)
	return buf
}

// AppendEvent appends one trace event to the active epoch (trusted
// channel: only the collector in front of the server calls this).
func (l *Log) AppendEvent(e trace.Event) error {
	payload := trace.AppendEventBinary(nil, e)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("epochlog: log is closed")
	}
	if err := l.ensureTailLocked(); err != nil {
		return err
	}
	buf := frame(payload)
	if _, err := l.traceF.Write(buf); err != nil {
		// The write may have torn a partial frame onto the file. Cut back
		// to the counted length now, so a retried append cannot strand its
		// frame behind an unreadable tail.
		if terr := l.repairTailLocked(); terr != nil {
			l.tailBroken = true
		}
		return fmt.Errorf("epochlog: %w", err)
	}
	l.written += int64(len(buf))
	l.events++
	if e.Kind == trace.Req {
		l.requests++
		l.lastRID = e.RID
	}
	l.digest.Write(payload) //karousos:errladder-ok hash.Hash.Write is documented never to return an error
	return nil
}

// AppendAdvice appends one complete advice blob to the active epoch
// (untrusted channel: the server uploads here). Re-uploads are allowed;
// the last intact record wins at seal time.
func (l *Log) AppendAdvice(blob []byte) error {
	if l.opt.MaxAdviceBytes > 0 && len(blob) > l.opt.MaxAdviceBytes {
		return fmt.Errorf("epochlog: record of %d bytes, limit %d: %w", len(blob), l.opt.MaxAdviceBytes, ErrAdviceTooLarge)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("epochlog: log is closed")
	}
	if _, err := l.adviceF.Write(frame(blob)); err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	l.adviceBytes = len(blob)
	return nil
}

// ActiveEvents returns the number of events (and REQ events) accumulated
// in the active epoch.
func (l *Log) ActiveEvents() (events, requests int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events, l.requests
}

// ActiveSeq returns the active epoch's sequence number.
func (l *Log) ActiveSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active
}

// ActiveLastRID returns the RID of the active epoch's last REQ event,
// recovered events included; "" when the epoch has none.
func (l *Log) ActiveLastRID() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastRID
}

// MarkFresh records that the active epoch's serving runtime started from
// fresh application state; the flag lands in the epoch's manifest at seal
// and clears once the next epoch begins. The mark is made durable as a
// per-epoch marker file, so a crash before the seal cannot lose it — a
// lost mark would make the auditor carry stale prior-epoch state into an
// epoch that was actually served fresh.
func (l *Log) MarkFresh() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("epochlog: log is closed")
	}
	if err := l.fs.WriteFile(freshPath(l.dir, l.active), nil, 0o644); err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	_ = l.fs.SyncDir(l.dir) //karousos:errladder-ok best-effort; the fresh flag is re-derived on restart
	l.fresh = true
	return nil
}

// MarkDegraded flags the active epoch's evidence as possibly incomplete for
// an infrastructure reason — an advice-path outage, a failed trace append
// after the request was admitted, a recovered crash. The first reason
// sticks; the flag lands in the manifest at seal and clears when the next
// epoch begins. Unlike Fresh there is no durable marker: a crash before the
// seal orphans the epoch, and recovery marks orphaned epochs degraded
// anyway.
func (l *Log) MarkDegraded(reason string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.degraded == "" {
		l.degraded = reason
	}
}

// Degraded reports the active epoch's degradation reason ("" when none).
func (l *Log) Degraded() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// manifestLocked snapshots the active epoch's accounting as a manifest.
// Caller holds l.mu.
func (l *Log) manifestLocked() Manifest {
	return Manifest{
		Seq:         l.active,
		Events:      l.events,
		Requests:    l.requests,
		TraceDigest: fmt.Sprintf("%x", l.digest.Sum(nil)),
		AdviceBytes: l.adviceBytes,
		TraceBytes:  l.written,
		LastRID:     l.lastRID,
		Fresh:       l.fresh,
		Degraded:    l.degraded,
	}
}

// writeManifestDurable writes and fsyncs one epoch's manifest, then fsyncs
// the directory. The manifest's presence IS the seal, so a manifest that
// failed partway is removed — one must never survive a seal that did not
// complete, and without a durable directory entry it could vanish on power
// loss while later epochs accumulate, leaving a gap recovery refuses.
func writeManifestDurable(fsys iofault.FS, dir string, m Manifest) error {
	mj, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	mp := manifestPath(dir, m.Seq)
	mf, err := fsys.OpenFile(mp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	abort := func(stage string, err error) error {
		_ = fsys.Remove(mp) //karousos:errladder-ok best-effort cleanup of a failed seal; the staged error surfaces via abort
		return fmt.Errorf("epochlog: sealing epoch %d: %s: %w", m.Seq, stage, err)
	}
	if _, err := mf.Write(frame(mj)); err != nil {
		mf.Close() //karousos:errladder-ok close-after-error; the manifest write error is the one that surfaces
		return abort("manifest write", err)
	}
	if err := mf.Sync(); err != nil {
		mf.Close() //karousos:errladder-ok close-after-error; the manifest fsync error is the one that surfaces
		return abort("manifest fsync", err)
	}
	if err := mf.Close(); err != nil {
		return abort("manifest close", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return abort("directory fsync", err)
	}
	return nil
}

// Seal durably closes the active epoch: data files are fsynced, the
// manifest (carrying the trace digest) is written and fsynced, and a fresh
// active epoch begins. Sealing an epoch with no events is a no-op.
//
// A failed seal leaves the log fully usable: the data handles stay open
// until the manifest is durable, and a manifest that failed partway is
// removed — the manifest's presence IS the seal, so one must never survive
// a seal that did not complete. Appends may continue and Seal may be
// retried. When the manifest is durable but rotating to the next epoch
// fails, Seal returns the manifest *and* an error: the epoch is sealed,
// the log is closed.
func (l *Log) Seal() (*Manifest, error) {
	l.sealMu.Lock()
	defer l.sealMu.Unlock()
	// Earlier rotated-out epochs must seal first: manifests land strictly
	// in epoch order so the sealed prefix never has a gap.
	if _, err := l.finishPending(); err != nil { //karousos:locklint-ok sealMu exists to serialize seal durability work; finishPending fsyncs old epochs without l.mu so appends proceed
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, errors.New("epochlog: log is closed")
	}
	// A seal linearizes after every append already accepted into the
	// group-commit queue: commit the stragglers into this epoch now.
	l.drainCommitQueueLocked() //karousos:locklint-ok seal linearization: stragglers must commit into this epoch before the boundary; arrivals queue on commitCh, not l.mu
	if l.events == 0 {
		return nil, nil
	}
	for _, f := range []iofault.File{l.traceF, l.adviceF} {
		if err := f.Sync(); err != nil { //karousos:locklint-ok seal linearization point: no append may land between the drained queue and the manifest, so the data fsync holds l.mu by design
			return nil, fmt.Errorf("epochlog: sealing epoch %d: data fsync: %w", l.active, err)
		}
	}
	m := l.manifestLocked()
	if err := writeManifestDurable(l.fs, l.dir, m); err != nil { //karousos:locklint-ok the manifest IS the seal; it must be durable before any post-seal append is accepted
		return nil, err
	}
	// The epoch is sealed. Release the data handles (close errors after a
	// successful fsync carry no durability information) and clean up the
	// fresh marker: the manifest durably records Fresh now.
	_ = l.traceF.Close()                     //karousos:errladder-ok close after successful fsync carries no durability information
	_ = l.adviceF.Close()                    //karousos:errladder-ok close after successful fsync carries no durability information
	_ = l.fs.Remove(freshPath(l.dir, m.Seq)) //karousos:errladder-ok best-effort; the sealed manifest now records Fresh durably

	l.sealed = append(l.sealed, m)
	l.active++
	if err := l.openActive(); err != nil {
		// The manifest is durable: the epoch IS sealed even though the log
		// cannot rotate to the next one. Return the manifest with the error
		// so callers don't mistake a rotation failure for a failed seal.
		l.closed = true
		return &m, fmt.Errorf("epochlog: epoch %d sealed but rotating to epoch %d failed (log closed): %w", m.Seq, l.active, err)
	}
	return &m, nil
}

// Sealed returns the manifests of all sealed epochs in order.
func (l *Log) Sealed() []Manifest {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Manifest(nil), l.sealed...)
}

// Close releases the active epoch's file handles without sealing; the
// unsealed tail — including any rotated-but-unfinished epochs — is
// recovered by the next Open. Durable appends already accepted into the
// group-commit queue are committed (or honestly failed) before the files
// close: an enqueued waiter is never left hanging.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.commitCh != nil {
		l.commitMu.Lock()
		l.commitClosed = true
		close(l.commitCh)
		l.commitMu.Unlock()
		l.commitWG.Wait()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err1 := l.traceF.Close()
	err2 := l.adviceF.Close()
	for _, ps := range l.pending {
		_ = ps.traceF.Close()  //karousos:errladder-ok close-on-shutdown; the epoch is recovery-sealed by the next Open
		_ = ps.adviceF.Close() //karousos:errladder-ok close-on-shutdown; the epoch is recovery-sealed by the next Open
	}
	if err1 != nil {
		return err1
	}
	return err2
}

// truncateTorn cuts a data file back to its longest prefix of intact
// frames. A missing file is fine (zero-length epoch so far).
func truncateTorn(fsys iofault.FS, path string) error {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	good := 0
	off := 0
	for {
		n, payload := nextFrame(data, off, 0)
		if payload == nil {
			break
		}
		off += n
		good = off
	}
	if good == len(data) {
		return nil
	}
	return fsys.Truncate(path, int64(good))
}

// nextFrame parses one frame at off. It returns the frame's total size and
// payload, or (0, nil) when the remainder is empty, torn, or corrupt. A
// positive maxPayload also rejects over-large declared lengths before any
// allocation (untrusted-channel clamp).
func nextFrame(data []byte, off, maxPayload int) (int, []byte) {
	rest := data[off:]
	if len(rest) < frameHeader {
		return 0, nil
	}
	n := int(binary.LittleEndian.Uint32(rest))
	if maxPayload > 0 && n > maxPayload {
		return 0, nil
	}
	if n > len(rest)-frameHeader {
		return 0, nil
	}
	payload := rest[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(rest[4:]) {
		return 0, nil
	}
	return frameHeader + n, payload
}

// scanFrames streams every intact frame of a file to fn, stopping at the
// first torn or corrupt one. A missing file yields no frames.
func scanFrames(fsys iofault.FS, path string, maxPayload int, fn func(payload []byte) error) error {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	off := 0
	for {
		n, payload := nextFrame(data, off, maxPayload)
		if payload == nil {
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
		off += n
	}
}

// readManifest loads and validates one epoch's manifest; ok is false when
// the file is missing, torn, or inconsistent with its name.
// readManifest loads and validates one manifest. ok=false with a nil
// error means the epoch is not validly sealed (absent or torn manifest);
// a non-nil error is an I/O failure that says nothing either way, which
// callers must surface rather than mistake for "unsealed" — truncating the
// sealed prefix on a transient read error would silently hide epochs from
// the auditor.
func readManifest(fsys iofault.FS, dir string, seq uint64) (Manifest, bool, error) {
	data, err := fsys.ReadFile(manifestPath(dir, seq))
	if errors.Is(err, os.ErrNotExist) {
		return Manifest{}, false, nil
	}
	if err != nil {
		return Manifest{}, false, err
	}
	n, payload := nextFrame(data, 0, 0)
	if payload == nil || n != len(data) {
		return Manifest{}, false, nil
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil || m.Seq != seq || m.Events <= 0 {
		return Manifest{}, false, nil
	}
	return m, true, nil
}

// ListSealed returns the longest contiguous prefix (seq 1, 2, ...) of
// validly sealed epochs in dir. It takes no lock and mutates nothing, so a
// tailing auditor may call it while a collector owns the writer handle.
func ListSealed(dir string) ([]Manifest, error) {
	return ListSealedFS(iofault.OS, dir)
}

// ListSealedFS is ListSealed through an explicit I/O layer (nil = OS), for
// callers that read under fault injection or want reads retried.
func ListSealedFS(fsys iofault.FS, dir string) ([]Manifest, error) {
	if fsys == nil {
		fsys = iofault.OS
	}
	entries, err := fsys.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	var seqs []uint64
	for _, ent := range entries {
		var seq uint64
		var kind string
		//karousos:errladder-ok parse-or-skip; a non-matching filename is not a manifest, the n == 2 check covers it
		if n, _ := fmt.Sscanf(ent.Name(), "ep%d.%s", &seq, &kind); n == 2 && kind == "manifest" {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var out []Manifest
	for i, seq := range seqs {
		if seq != uint64(i)+1 {
			break
		}
		m, ok, err := readManifest(fsys, dir, seq)
		if err != nil {
			return nil, fmt.Errorf("epochlog: %w", err)
		}
		if !ok {
			break
		}
		out = append(out, m)
	}
	return out, nil
}

// ReadSealed loads one sealed epoch: the trace (every frame must be intact
// and the recomputed digest must match the manifest — the trusted channel
// does not tolerate corruption) and the winning advice blob (nil when none
// was uploaded; undecodable contents are the audit's concern, not ours).
func ReadSealed(dir string, seq uint64, opt Options) (*trace.Trace, []byte, *Manifest, error) {
	fsys := opt.fs()
	m, ok, err := readManifest(fsys, dir, seq)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("epochlog: epoch %d manifest: %w", seq, err)
	}
	if !ok {
		return nil, nil, nil, fmt.Errorf("epochlog: epoch %d is not sealed in %s", seq, dir)
	}
	tr := &trace.Trace{}
	h := sha256.New()
	if err := scanFrames(fsys, tracePath(dir, seq), 0, func(payload []byte) error {
		e, err := trace.DecodeEventBinary(payload)
		if err != nil {
			return fmt.Errorf("epochlog: epoch %d trace frame undecodable: %w", seq, err)
		}
		tr.Events = append(tr.Events, e)
		h.Write(payload) //karousos:errladder-ok hash.Hash.Write is documented never to return an error
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	if len(tr.Events) != m.Events {
		return nil, nil, nil, fmt.Errorf("epochlog: epoch %d trace has %d intact events, manifest says %d (trusted channel corrupt)",
			seq, len(tr.Events), m.Events)
	}
	if digest := fmt.Sprintf("%x", h.Sum(nil)); digest != m.TraceDigest {
		return nil, nil, nil, fmt.Errorf("epochlog: epoch %d trace digest %s does not match manifest %s (trusted channel corrupt)",
			seq, digest, m.TraceDigest)
	}
	var blob []byte
	if err := scanFrames(fsys, advicePath(dir, seq), opt.MaxAdviceBytes, func(payload []byte) error {
		blob = payload
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	if blob == nil && m.AdviceBytes > 0 {
		// The sealed advice file lost its intact records (on-disk
		// corruption of the untrusted channel). Surface whatever bytes
		// remain so the audit can reject them with a coded verdict instead
		// of us swallowing the epoch.
		raw, err := fsys.ReadFile(advicePath(dir, seq))
		if err == nil && len(raw) > frameHeader {
			limit := len(raw)
			if opt.MaxAdviceBytes > 0 && limit > frameHeader+opt.MaxAdviceBytes {
				limit = frameHeader + opt.MaxAdviceBytes
			}
			blob = raw[frameHeader:limit]
		}
	}
	return tr, blob, &m, nil
}
