package epochlog

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"

	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/trace"
)

// This file is the double-buffered seal (DESIGN.md §14). The legacy Seal
// does everything — data fsync, manifest, rotation — under one lock, which
// stalls every in-flight request for the seal's worth of fsyncs. Rotate
// splits off the fast half: snapshot the epoch's accounting, swap in fresh
// files, done — no fsync. FinishSeals pays the durable half afterwards,
// outside whatever gate the caller serializes appends with, so the accept
// loop keeps moving while the old epoch syncs.

// Rotate closes the active epoch's accounting and swaps in the next
// epoch's files without any fsync; the rotated epoch becomes a pending
// seal that FinishSeals completes durably. The caller must serialize
// Rotate against its own appends (the HTTP collector holds its epoch gate
// exclusively), or a request could straddle the epoch boundary. Rotating
// an epoch with no events is a no-op (false, nil).
//
// A failed rotation rolls back: the epoch stays active and appendable.
func (l *Log) Rotate() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false, errors.New("epochlog: log is closed")
	}
	// The rotation linearizes after every accepted append.
	l.drainCommitQueueLocked() //karousos:locklint-ok rotation linearization: accepted appends must land in the outgoing epoch; arrivals queue on commitCh, not l.mu
	if l.events == 0 {
		return false, nil
	}
	ps := &pendingSeal{m: l.manifestLocked(), traceF: l.traceF, adviceF: l.adviceF}
	dig, tb := l.digest, l.tailBroken
	l.pending = append(l.pending, ps)
	l.active++
	if err := l.openActive(); err != nil {
		l.pending = l.pending[:len(l.pending)-1]
		l.active--
		l.traceF, l.adviceF = ps.traceF, ps.adviceF
		l.events, l.requests = ps.m.Events, ps.m.Requests
		l.adviceBytes, l.lastRID = ps.m.AdviceBytes, ps.m.LastRID
		l.fresh, l.degraded = ps.m.Fresh, ps.m.Degraded
		l.written, l.digest, l.tailBroken = ps.m.TraceBytes, dig, tb
		return false, err
	}
	return true, nil
}

// FinishSeals completes the durable half of every rotated-out epoch, in
// order: data fsync, then manifest write+fsync, then directory fsync.
// It returns the last manifest it finished (nil when nothing was pending).
//
// On failure the unfinished epochs stay pending and FinishSeals may be
// retried; manifests land strictly in epoch order, so the sealed prefix
// never grows a gap.
func (l *Log) FinishSeals() (*Manifest, error) {
	l.sealMu.Lock()
	defer l.sealMu.Unlock()
	return l.finishPending() //karousos:locklint-ok sealMu exists to serialize seal durability work; finishPending drops l.mu around each fsync so appends proceed
}

// finishPending does FinishSeals' work. Caller holds l.sealMu but not
// l.mu: appends to the new active epoch proceed while old epochs fsync.
func (l *Log) finishPending() (*Manifest, error) {
	var last *Manifest
	for {
		l.mu.Lock()
		if len(l.pending) == 0 {
			l.mu.Unlock()
			return last, nil
		}
		ps := l.pending[0]
		l.mu.Unlock()
		for _, f := range []iofault.File{ps.traceF, ps.adviceF} {
			if err := f.Sync(); err != nil {
				return last, fmt.Errorf("epochlog: sealing epoch %d: data fsync: %w", ps.m.Seq, err)
			}
		}
		if err := writeManifestDurable(l.fs, l.dir, ps.m); err != nil {
			return last, err
		}
		_ = ps.traceF.Close()                       //karousos:errladder-ok close after successful fsync carries no durability information
		_ = ps.adviceF.Close()                      //karousos:errladder-ok close after successful fsync carries no durability information
		_ = l.fs.Remove(freshPath(l.dir, ps.m.Seq)) //karousos:errladder-ok best-effort; the sealed manifest now records Fresh durably
		m := ps.m
		l.mu.Lock()
		l.sealed = append(l.sealed, m)
		l.pending = l.pending[1:]
		l.mu.Unlock()
		last = &m
	}
}

// PendingSeals reports how many rotated-out epochs still owe their durable
// seal.
func (l *Log) PendingSeals() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// recoverySeal seals epoch seq from its on-disk bytes alone. A crash
// between Rotate and FinishSeals leaves an epoch whose acked frames are
// durable — group-commit acks happen only after their batch fsync — but
// whose manifest never landed, while the collector already filled
// successor epochs. Recovery truncates the torn tails, recounts, and
// seals the epoch Degraded: frames past the last batch fsync and advice
// that never synced are gone, and the auditor must grade what remains as
// possibly incomplete evidence, never as the server's lie.
func recoverySeal(fsys iofault.FS, dir string, seq uint64) (*Manifest, error) {
	tp := tracePath(dir, seq)
	if err := truncateTorn(fsys, tp); err != nil {
		return nil, err
	}
	dig := sha256.New()
	m := Manifest{Seq: seq, Degraded: "sealed by crash recovery: collector stopped before finishing this epoch's seal"}
	if err := scanFrames(fsys, tp, 0, func(payload []byte) error {
		e, err := trace.DecodeEventBinary(payload)
		if err != nil {
			return fmt.Errorf("epochlog: %s: recovered frame undecodable: %w", tp, err)
		}
		m.Events++
		if e.Kind == trace.Req {
			m.Requests++
			m.LastRID = e.RID
		}
		m.TraceBytes += int64(frameHeader + len(payload))
		dig.Write(payload) //karousos:errladder-ok hash.Hash.Write is documented never to return an error
		return nil
	}); err != nil {
		return nil, err
	}
	if m.Events == 0 {
		// Open only recovery-seals data-bearing epochs, so this is a
		// should-not-happen guard, not a reachable state.
		return nil, fmt.Errorf("epochlog: recovery-sealing epoch %d: no intact frames", seq)
	}
	m.TraceDigest = fmt.Sprintf("%x", dig.Sum(nil))
	ap := advicePath(dir, seq)
	if err := truncateTorn(fsys, ap); err != nil {
		return nil, err
	}
	if err := scanFrames(fsys, ap, 0, func(payload []byte) error {
		m.AdviceBytes = len(payload)
		return nil
	}); err != nil {
		return nil, err
	}
	_, statErr := fsys.Stat(freshPath(dir, seq))
	m.Fresh = statErr == nil
	// Make the surviving data durable before the manifest claims it.
	for _, p := range []string{tp, ap} {
		f, err := fsys.OpenFile(p, os.O_WRONLY|os.O_APPEND, 0o644)
		if errors.Is(err, os.ErrNotExist) {
			continue // the epoch never got an advice file
		}
		if err != nil {
			return nil, fmt.Errorf("epochlog: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close() //karousos:errladder-ok close-after-error; the fsync failure is the error that surfaces
			return nil, fmt.Errorf("epochlog: recovery-sealing epoch %d: data fsync: %w", seq, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("epochlog: %w", err)
		}
	}
	if err := writeManifestDurable(fsys, dir, m); err != nil {
		return nil, err
	}
	_ = fsys.Remove(freshPath(dir, seq)) //karousos:errladder-ok best-effort; the sealed manifest now records Fresh durably
	return &m, nil
}
