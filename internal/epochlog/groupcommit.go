package epochlog

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/trace"
)

// This file is the group-commit half of the log (DESIGN.md §14): durable
// appends enqueue to a committer goroutine that coalesces concurrently
// arriving frames into one write + one fsync. A waiter is acked only after
// the fsync, so "the collector said 200" always implies "the frame is on
// disk" — the invariant crash recovery leans on when it seals orphaned
// epochs from their files alone.

// Ack is the durability handle of one asynchronous append.
type Ack struct {
	ch   chan error
	err  error
	done bool
}

func ackDone(err error) *Ack { return &Ack{err: err, done: true} }

// Wait blocks until the append's batch fsync completes (or fails) and
// returns the append's outcome. Wait is not safe for concurrent use on one
// Ack; call it from the goroutine that appended.
func (a *Ack) Wait() error {
	if !a.done {
		a.err = <-a.ch
		a.done = true
	}
	return a.err
}

// commitWaiter is one enqueued durable append.
type commitWaiter struct {
	frame   []byte
	payload []byte // the frame's payload view, for the running digest
	isReq   bool
	rid     string
	ctx     context.Context
	done    chan error
}

// AppendEventAsync appends one trace event with a durability ack. Under
// Options.GroupCommit the frame rides the committer's next batch fsync;
// otherwise it pays a private write+fsync inline (the per-request
// baseline). A full commit queue refuses immediately with an Ack carrying
// ErrCommitQueueFull — the queue is bounded, overload sheds here. ctx only
// abandons an append whose batch has not started committing; it cannot
// recall bytes already headed for the disk.
func (l *Log) AppendEventAsync(ctx context.Context, e trace.Event) *Ack {
	payload := trace.AppendEventBinary(nil, e)
	w := &commitWaiter{
		frame:   frame(payload),
		payload: payload,
		isReq:   e.Kind == trace.Req,
		rid:     e.RID,
		ctx:     ctx,
		done:    make(chan error, 1),
	}
	if l.commitCh != nil {
		// Group mode. No l.mu here: the committer holds it across a whole
		// batch (fsync included), and blocking arrivals on it would be an
		// unbounded queue in disguise. commitMu only fences against Close.
		l.commitMu.RLock()
		defer l.commitMu.RUnlock()
		if l.commitClosed {
			return ackDone(errors.New("epochlog: log is closed"))
		}
		select {
		case l.commitCh <- w:
			return &Ack{ch: w.done}
		default:
			return ackDone(fmt.Errorf("epochlog: %w", ErrCommitQueueFull))
		}
	}
	// Per-request durability: pay a private write+fsync inline.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ackDone(errors.New("epochlog: log is closed"))
	}
	l.commitLocked([]*commitWaiter{w}) //karousos:locklint-ok per-request durability mode: the caller opted to pay a private write+fsync inline; group mode is the committer path
	l.mu.Unlock()
	return &Ack{ch: w.done}
}

// AppendEventDurable appends one trace event and returns only once the
// frame is durable on disk (or the append failed).
func (l *Log) AppendEventDurable(ctx context.Context, e trace.Event) error {
	return l.AppendEventAsync(ctx, e).Wait()
}

// committer is the group-commit loop: it blocks for one enqueued waiter,
// then drains whatever else arrived (up to MaxBatchFrames) and commits the
// whole batch under one write+fsync. Batch size is emergent — light load
// commits single frames at per-frame latency, heavy load amortizes one
// fsync across hundreds of frames — the classic group-commit bargain.
func (l *Log) committer() {
	defer l.commitWG.Done()
	for w := range l.commitCh {
		// The first send of a cycle hands the scheduler this goroutine as
		// the sender's immediate successor, so without a yield the drain
		// below often runs before the other just-acked appenders get to
		// re-enqueue — batches collapse to one frame and the fsync
		// amortization is lost (worst on few cores). One yield parks the
		// committer behind every runnable appender; the stragglers enqueue,
		// then the drain collects them all. Costs one scheduler pass per
		// batch, repaid hundreds of times over by the saved fsyncs.
		runtime.Gosched()
		batch := []*commitWaiter{w}
	fill:
		for len(batch) < l.opt.MaxBatchFrames {
			select {
			case w2, ok := <-l.commitCh:
				if !ok {
					break fill
				}
				batch = append(batch, w2)
			default:
				break fill
			}
		}
		l.mu.Lock()
		l.commitLocked(batch) //karousos:locklint-ok this IS the committer: one fsync amortized over the batch holds l.mu while arrivals queue on commitCh
		l.mu.Unlock()
	}
}

// drainCommitQueueLocked commits every waiter currently enqueued, so a
// seal or rotation linearizes after all accepted appends. Caller holds
// l.mu; the committer goroutine is either between batches (its claimed
// waiters already committed) or blocked on l.mu with a claimed batch that
// will land in the next epoch — which its callers tolerate, since the
// collector's epoch gate keeps appends and rotations from overlapping.
func (l *Log) drainCommitQueueLocked() {
	if l.commitCh == nil {
		return
	}
	var batch []*commitWaiter
drain:
	for {
		select {
		case w, ok := <-l.commitCh:
			if !ok {
				break drain
			}
			batch = append(batch, w)
		default:
			break drain
		}
	}
	if len(batch) > 0 {
		l.commitLocked(batch)
	}
}

// commitLocked makes one batch of frames durable under a single write and
// a single fsync, then acks every waiter. Caller holds l.mu. Waiters whose
// context already expired are failed before their frame touches the file:
// a deadline the client gave up on must not become a durable side effect
// nobody was told about.
func (l *Log) commitLocked(batch []*commitWaiter) {
	live := batch[:0]
	var buf []byte
	for _, w := range batch {
		if w.ctx != nil {
			if err := w.ctx.Err(); err != nil {
				w.done <- fmt.Errorf("epochlog: commit abandoned: %w", err)
				continue
			}
		}
		live = append(live, w)
		buf = append(buf, w.frame...)
	}
	if len(live) == 0 {
		return
	}
	if err := l.writeDurableLocked(buf); err != nil {
		for _, w := range live {
			w.done <- err
		}
		return
	}
	for _, w := range live {
		l.events++
		if w.isReq {
			l.requests++
			l.lastRID = w.rid
		}
		l.digest.Write(w.payload) //karousos:errladder-ok hash.Hash.Write is documented never to return an error
		w.done <- nil
	}
}

// writeDurableLocked writes buf (whole frames) to the active trace file
// and fsyncs it, retrying transient write faults. Every failure truncates
// the file back to the counted intact length first: frames that were never
// acked must not survive on disk, and a torn tail would strand later
// appends behind unreadable bytes. Caller holds l.mu.
func (l *Log) writeDurableLocked(buf []byte) error {
	if err := l.ensureTailLocked(); err != nil {
		return err
	}
	err := iofault.Retry(nil, l.opt.Backoff, func() error {
		_, werr := l.traceF.Write(buf)
		if werr != nil {
			if terr := l.repairTailLocked(); terr != nil {
				l.tailBroken = true
				// Deliberately unwrapped: with the tear in place another
				// write attempt would bury frames, so the retry loop must
				// classify this permanent.
				return fmt.Errorf("epochlog: torn tail unrepaired after failed write: %v (repair: %v)", werr, terr)
			}
		}
		return werr
	})
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	if err := l.traceF.Sync(); err != nil {
		// The batch never became durable and its waiters are being told
		// so; drop its bytes so the file matches the counted state.
		if terr := l.repairTailLocked(); terr != nil {
			l.tailBroken = true
			return errors.Join(fmt.Errorf("epochlog: batch fsync: %w", err), terr)
		}
		return fmt.Errorf("epochlog: batch fsync: %w", err)
	}
	l.written += int64(len(buf))
	return nil
}

// repairTailLocked truncates the active trace file back to l.written, the
// byte length of its counted intact frames. Caller holds l.mu.
func (l *Log) repairTailLocked() error {
	return l.fs.Truncate(tracePath(l.dir, l.active), l.written)
}

// ensureTailLocked re-attempts a previously failed tail repair; until the
// repair lands no further bytes may be appended, or intact frames would
// end up unreachably behind the tear. Caller holds l.mu.
func (l *Log) ensureTailLocked() error {
	if !l.tailBroken {
		return nil
	}
	if err := l.repairTailLocked(); err != nil {
		return fmt.Errorf("epochlog: torn tail unrepaired: %w", err)
	}
	l.tailBroken = false
	return nil
}
