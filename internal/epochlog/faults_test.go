package epochlog

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/trace"
)

// fillOpen appends n request/response pairs plus one advice blob without
// sealing, leaving the epoch open for fault-injected Seal attempts.
func fillOpen(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rid := fmt.Sprintf("f%d-r%d", l.ActiveSeq(), i)
		if err := l.AppendEvent(ev(trace.Req, rid, i)); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendEvent(ev(trace.Resp, rid, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendAdvice([]byte("advice-blob")); err != nil {
		t.Fatal(err)
	}
}

// TestSealDataFsyncFailureLeavesNoManifest: the manifest must not exist
// unless the data files are durable. An injected fsync failure on a data
// file aborts the seal before the manifest is created, the log stays
// appendable, and the retried seal succeeds.
func TestSealDataFsyncFailureLeavesNoManifest(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillOpen(t, l, 2)

	// First Sync in Seal is the trace file: the trusted channel's fsync
	// fails, so the epoch must not appear sealed.
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Seal(); err == nil {
		t.Fatal("seal succeeded through a failed data fsync")
	}
	if _, statErr := os.Stat(manifestPath(dir, 1)); !os.IsNotExist(statErr) {
		t.Fatalf("manifest exists after failed data fsync (stat err %v)", statErr)
	}

	// The failed seal must leave the log usable: appends and a retried
	// seal both work.
	if err := l.AppendEvent(ev(trace.Req, "rz", 9)); err != nil {
		t.Fatalf("append after failed seal: %v", err)
	}
	if err := l.AppendEvent(ev(trace.Resp, "rz", 9)); err != nil {
		t.Fatal(err)
	}
	m, err := l.Seal()
	if err != nil || m == nil {
		t.Fatalf("retried seal: %v (manifest %v)", err, m)
	}
	if m.Events != 6 {
		t.Fatalf("retried seal recorded %d events, want 6", m.Events)
	}
	tr, blob, _, err := ReadSealed(dir, 1, Options{})
	if err != nil || len(tr.Events) != 6 || string(blob) != "advice-blob" {
		t.Fatalf("sealed epoch after retry: %d events, advice %q, err %v", len(tr.Events), blob, err)
	}
}

// TestSealManifestFsyncFailureRemovesManifest: when the manifest itself
// fails to fsync, the half-written manifest must be removed — its presence
// would seal an epoch whose seal never completed — while the data files
// survive untouched.
func TestSealManifestFsyncFailureRemovesManifest(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillOpen(t, l, 2)

	// Seal fsyncs trace, advice, then the manifest: skip the two data
	// syncs so the fault lands exactly on the manifest's.
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: 1, After: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Seal(); err == nil || !strings.Contains(err.Error(), "manifest fsync") {
		t.Fatalf("seal error = %v, want manifest fsync failure", err)
	}
	if _, statErr := os.Stat(manifestPath(dir, 1)); !os.IsNotExist(statErr) {
		t.Fatalf("manifest survived its failed fsync (stat err %v)", statErr)
	}
	sealed, err := ListSealed(dir)
	if err != nil || len(sealed) != 0 {
		t.Fatalf("ListSealed = %v, %v; want none", sealed, err)
	}

	// Retry with the fault consumed: the same epoch seals with the same
	// contents.
	m, err := l.Seal()
	if err != nil || m == nil || m.Seq != 1 || m.Events != 4 {
		t.Fatalf("retried seal = %+v, %v", m, err)
	}
}

// TestSealDirFsyncFailureAbortsSeal: a directory fsync failure aborts the
// seal too — otherwise the manifest's directory entry could vanish on
// power loss while later epochs accumulate beyond the gap.
func TestSealDirFsyncFailureAbortsSeal(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillOpen(t, l, 1)

	// Syncs in Seal: trace, advice, manifest file, then the directory.
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: 1, After: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Seal(); err == nil || !strings.Contains(err.Error(), "directory fsync") {
		t.Fatalf("seal error = %v, want directory fsync failure", err)
	}
	if _, statErr := os.Stat(manifestPath(dir, 1)); !os.IsNotExist(statErr) {
		t.Fatal("manifest survived a failed directory fsync")
	}
	if m, err := l.Seal(); err != nil || m == nil {
		t.Fatalf("retried seal = %v, %v", m, err)
	}
}

// TestReopenAfterFailedSealRecovers: crash (Close without seal) after a
// failed seal — recovery must adopt the intact data files as the active
// epoch and seal them to the same digest a clean run would have produced.
func TestReopenAfterFailedSealRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	fillOpen(t, l, 3)
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: 1, After: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Seal(); err == nil {
		t.Fatal("seal should have failed on the manifest fsync")
	}
	l.Close() // crash: no seal

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after failed seal: %v", err)
	}
	defer l2.Close()
	if events, reqs := l2.ActiveEvents(); events != 6 || reqs != 3 {
		t.Fatalf("recovered %d events / %d requests, want 6/3", events, reqs)
	}
	m, err := l2.Seal()
	if err != nil || m == nil || m.Seq != 1 {
		t.Fatalf("seal after recovery = %+v, %v", m, err)
	}
	if tr, _, _, err := ReadSealed(dir, 1, Options{}); err != nil || len(tr.Events) != 6 {
		t.Fatalf("sealed read after recovery: %v", err)
	}
}

// TestOpenRenameFailureFailsLoudlyAndPreservesStrays: when quarantining a
// stray fails, Open must error out rather than proceed — and the stray
// bytes must still be on disk afterwards.
func TestOpenRenameFailureFailsLoudlyAndPreservesStrays(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fillOpen(t, l, 1)
	if _, err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A stray data file beyond the active epoch, as a crashed future seal
	// would leave.
	stray := tracePath(dir, 5)
	if err := os.WriteFile(stray, []byte("stray-evidence"), 0o644); err != nil {
		t.Fatal(err)
	}

	inj := iofault.NewInjector(nil)
	if err := inj.Arm(iofault.OpRenameFail, iofault.ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{FS: inj}); err == nil {
		t.Fatal("Open succeeded through a failed quarantine rename")
	}
	if data, err := os.ReadFile(stray); err != nil || string(data) != "stray-evidence" {
		t.Fatalf("stray mutated by failed Open: %q, %v", data, err)
	}

	// Fault consumed: reopening quarantines the stray (renamed, not
	// deleted) and resumes.
	l2, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatalf("reopen after fault healed: %v", err)
	}
	defer l2.Close()
	if data, err := os.ReadFile(stray + quarantineSuffix); err != nil || string(data) != "stray-evidence" {
		t.Fatalf("quarantined stray = %q, %v", data, err)
	}
}

// TestDegradedFlagRoundTrips: MarkDegraded lands in the manifest, clears
// for the next epoch, and the first reason wins.
func TestDegradedFlagRoundTrips(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fillOpen(t, l, 1)
	l.MarkDegraded("advice outage")
	l.MarkDegraded("second reason must not clobber")
	m, err := l.Seal()
	if err != nil || m.Degraded != "advice outage" {
		t.Fatalf("sealed degraded = %+v, %v", m, err)
	}
	fillOpen(t, l, 1)
	m2, err := l.Seal()
	if err != nil || m2.Degraded != "" {
		t.Fatalf("next epoch inherited degradation: %+v, %v", m2, err)
	}
	sealed, err := ListSealed(dir)
	if err != nil || len(sealed) != 2 || sealed[0].Degraded == "" || sealed[1].Degraded != "" {
		t.Fatalf("ListSealed degraded flags = %+v, %v", sealed, err)
	}
}

// TestShortWriteOnAppendIsRecoverable: a torn trace append surfaces as an
// error, and reopening truncates the torn tail so the epoch digest stays
// recomputable.
func TestShortWriteOnAppendIsRecoverable(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	fillOpen(t, l, 2)
	if err := inj.Arm(iofault.OpShortWrite, iofault.ArmConfig{Times: 1, PathContains: ".trace"}); err != nil {
		t.Fatal(err)
	}
	err = l.AppendEvent(ev(trace.Req, "rt", 9))
	if err == nil {
		t.Fatal("torn append reported success")
	}
	l.Close() // crash before any repair

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer l2.Close()
	if events, _ := l2.ActiveEvents(); events != 4 {
		t.Fatalf("recovered %d events, want the 4 intact ones", events)
	}
	if m, err := l2.Seal(); err != nil || m.Events != 4 {
		t.Fatalf("seal after torn-tail recovery = %+v, %v", m, err)
	}
}
