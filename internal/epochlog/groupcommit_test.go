package epochlog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/trace"
)

// noSleep keeps injected-fault retries instant in tests.
var noSleep = iofault.Backoff{Sleep: func(time.Duration) {}}

func openGroup(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	opt.GroupCommit = true
	if opt.Backoff.Sleep == nil {
		opt.Backoff = noSleep
	}
	l, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestGroupCommitConcurrentAppendsSealIntact(t *testing.T) {
	dir := t.TempDir()
	l := openGroup(t, dir, Options{})
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rid := fmt.Sprintf("r%04d", i)
			if err := l.AppendEventDurable(context.Background(), ev(trace.Req, rid, i)); err != nil {
				errs[i] = err
				return
			}
			errs[i] = l.AppendEventDurable(context.Background(), ev(trace.Resp, rid, i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	m, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if m.Events != 2*n || m.Requests != n {
		t.Fatalf("manifest counts %d/%d, want %d/%d", m.Events, m.Requests, 2*n, n)
	}
	if m.TraceBytes == 0 {
		t.Fatal("sealed manifest carries no TraceBytes")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tr, _, _, err := ReadSealed(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2*n {
		t.Fatalf("sealed trace has %d events, want %d", len(tr.Events), 2*n)
	}
}

func TestGroupCommitAckImpliesDurable(t *testing.T) {
	// Every acked frame must survive a crash (Close without Seal models
	// losing the page cache is too kind — but the fsync already happened,
	// so surviving the file close is the contract recovery leans on).
	dir := t.TempDir()
	l := openGroup(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := l.AppendEventDurable(context.Background(), ev(trace.Req, fmt.Sprintf("r%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if events, reqs := l2.ActiveEvents(); events != 10 || reqs != 10 {
		t.Fatalf("recovered %d events / %d requests, want 10/10", events, reqs)
	}
}

func TestGroupCommitQueueFullSheds(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	// Stall the committer's first batch in a long retry loop so the queue
	// backs up deterministically.
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	l := openGroup(t, dir, Options{FS: inj, CommitQueue: 2, Backoff: iofault.Backoff{
		Attempts: 100,
		Sleep: func(time.Duration) {
			once.Do(func() { close(blocked) })
			<-release
		},
	}})
	if err := inj.Arm(iofault.OpTransientEIO, iofault.ArmConfig{Times: 99, PathContains: ".trace"}); err != nil {
		t.Fatal(err)
	}
	first := l.AppendEventAsync(context.Background(), ev(trace.Req, "r0", 0))
	<-blocked // committer holds r0, retrying
	a1 := l.AppendEventAsync(context.Background(), ev(trace.Req, "r1", 1))
	a2 := l.AppendEventAsync(context.Background(), ev(trace.Req, "r2", 2))
	shed := l.AppendEventAsync(context.Background(), ev(trace.Req, "r3", 3))
	if err := shed.Wait(); !errors.Is(err, ErrCommitQueueFull) {
		t.Fatalf("append to full queue: %v, want ErrCommitQueueFull", err)
	}
	inj.Heal()
	close(release)
	for i, a := range []*Ack{first, a1, a2} {
		if err := a.Wait(); err != nil {
			t.Fatalf("queued append %d failed after heal: %v", i, err)
		}
	}
	if events, _ := l.ActiveEvents(); events != 3 {
		t.Fatalf("%d events committed, want 3", events)
	}
	l.Close()
}

func TestGroupCommitAbandonsExpiredDeadlines(t *testing.T) {
	dir := t.TempDir()
	l := openGroup(t, dir, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := l.AppendEventDurable(ctx, ev(trace.Req, "r0", 0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("append with dead context: %v, want context.Canceled", err)
	}
	if events, _ := l.ActiveEvents(); events != 0 {
		t.Fatalf("abandoned append still landed: %d events", events)
	}
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "r1", 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.ActiveLastRID() != "r1" {
		t.Fatalf("recovered last RID %q, want r1 only", l2.ActiveLastRID())
	}
}

func TestGroupCommitBatchFsyncFailureAcksNobody(t *testing.T) {
	// The torn-batch contract (DESIGN.md §14): when the batch fsync fails,
	// every waiter in the batch gets an error — nobody is acked — and the
	// batch's bytes are truncated away, so recovery replays exactly the
	// acked frames.
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l := openGroup(t, dir, Options{FS: inj})
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "good", 0)); err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: 1, PathContains: ".trace"}); err != nil {
		t.Fatal(err)
	}
	err := l.AppendEventDurable(context.Background(), ev(trace.Req, "doomed", 1))
	if err == nil {
		t.Fatal("append with failing batch fsync was acked")
	}
	// The failed batch's bytes are gone; the log keeps accepting.
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "after", 2)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if events, _ := l2.ActiveEvents(); events != 2 {
		t.Fatalf("recovered %d events, want exactly the 2 acked ones", events)
	}
	if l2.ActiveLastRID() != "after" {
		t.Fatalf("recovered last RID %q, want %q", l2.ActiveLastRID(), "after")
	}
}

func TestGroupCommitShortWriteRetriesWithoutTearing(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l := openGroup(t, dir, Options{FS: inj})
	if err := inj.Arm(iofault.OpShortWrite, iofault.ArmConfig{Times: 1, PathContains: ".trace"}); err != nil {
		t.Fatal(err)
	}
	// The first batch write tears mid-frame; the committer truncates the
	// tear and the transient retry lands the full batch.
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "r0", 0)); err != nil {
		t.Fatalf("short-write batch not retried: %v", err)
	}
	m, err := l.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if m.Events != 1 {
		t.Fatalf("sealed %d events, want 1", m.Events)
	}
	l.Close()
	if _, _, _, err := ReadSealed(dir, 1, Options{FS: inj}); err != nil {
		t.Fatalf("sealed epoch unreadable after short-write recovery: %v", err)
	}
}

func TestGroupCommitTornBatchTailRecovery(t *testing.T) {
	// A crash mid-batch leaves a torn multi-frame tail — the group-commit
	// analogue of today's torn single frame. Recovery must replay exactly
	// the durable prefix.
	dir := t.TempDir()
	l := openGroup(t, dir, Options{})
	for i := 0; i < 4; i++ {
		if err := l.AppendEventDurable(context.Background(), ev(trace.Req, fmt.Sprintf("r%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate the crash: a batch of three frames written but torn partway
	// through its second frame, never fsynced, never acked.
	f1 := frame(trace.AppendEventBinary(nil, ev(trace.Req, "torn-a", 8)))
	f2 := frame(trace.AppendEventBinary(nil, ev(trace.Req, "torn-b", 9)))
	tp := tracePath(dir, 1)
	fh, err := os.OpenFile(tp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), f1...), f2[:len(f2)/2]...)
	if _, err := fh.Write(torn); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	l2, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// The intact first frame of the torn batch survives (it is a complete
	// frame on disk, exactly like today's torn single-frame recovery keeps
	// every complete frame); only the torn second frame is truncated away.
	if events, _ := l2.ActiveEvents(); events != 5 {
		t.Fatalf("recovered %d events, want 5 (4 acked + 1 intact unacked)", events)
	}
	if l2.ActiveLastRID() != "torn-a" {
		t.Fatalf("recovered last RID %q", l2.ActiveLastRID())
	}
}

func TestRotateFinishSealsEquivalentToSeal(t *testing.T) {
	dir := t.TempDir()
	l := openGroup(t, dir, Options{})
	for i := 0; i < 6; i++ {
		if err := l.AppendEventDurable(context.Background(), ev(trace.Req, fmt.Sprintf("r%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendAdvice([]byte("blob-1")); err != nil {
		t.Fatal(err)
	}
	rotated, err := l.Rotate()
	if err != nil || !rotated {
		t.Fatalf("rotate: %v (rotated=%v)", err, rotated)
	}
	if n := l.PendingSeals(); n != 1 {
		t.Fatalf("%d pending seals, want 1", n)
	}
	// Appends keep flowing into the new epoch before the seal finishes —
	// that is the double buffer's whole point.
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "next-epoch", 0)); err != nil {
		t.Fatal(err)
	}
	m, err := l.FinishSeals()
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Seq != 1 || m.Events != 6 || m.Requests != 6 {
		t.Fatalf("finished manifest wrong: %+v", m)
	}
	if m.AdviceBytes != len("blob-1") {
		t.Fatalf("finished manifest advice bytes %d", m.AdviceBytes)
	}
	if got := len(l.Sealed()); got != 1 {
		t.Fatalf("%d sealed epochs, want 1", got)
	}
	if events, _ := l.ActiveEvents(); events != 1 {
		t.Fatalf("active epoch has %d events, want 1", events)
	}
	l.Close()
	if _, _, _, err := ReadSealed(dir, 1, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateEmptyEpochIsNoop(t *testing.T) {
	l := openGroup(t, t.TempDir(), Options{})
	defer l.Close()
	rotated, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if rotated {
		t.Fatal("rotated an empty epoch")
	}
	if m, err := l.FinishSeals(); err != nil || m != nil {
		t.Fatalf("FinishSeals with nothing pending: %v, %+v", err, m)
	}
}

func TestFinishSealsFailureKeepsPendingAndRetries(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	l := openGroup(t, dir, Options{FS: inj})
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "r0", 0)); err != nil {
		t.Fatal(err)
	}
	if rotated, err := l.Rotate(); err != nil || !rotated {
		t.Fatalf("rotate: %v", err)
	}
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: -1, PathContains: ".manifest"}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.FinishSeals(); err == nil {
		t.Fatal("FinishSeals succeeded with failing manifest fsync")
	}
	if n := l.PendingSeals(); n != 1 {
		t.Fatalf("%d pending after failed finish, want 1", n)
	}
	if _, err := os.Stat(manifestPath(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed seal left a manifest behind: %v", err)
	}
	inj.Heal()
	m, err := l.FinishSeals()
	if err != nil || m == nil || m.Seq != 1 {
		t.Fatalf("retried finish: %v, %+v", err, m)
	}
	l.Close()
}

func TestCrashBetweenRotateAndFinishRecoverySealsChain(t *testing.T) {
	// The double-buffer crash: several epochs rotated out, none of their
	// manifests written, the successor epoch already bearing frames. Open
	// must seal the whole contiguous chain (degraded — their seals never
	// finished) and resume appending in the last data-bearing epoch.
	dir := t.TempDir()
	l := openGroup(t, dir, Options{})
	for ep := 0; ep < 2; ep++ {
		for i := 0; i < 3; i++ {
			rid := fmt.Sprintf("e%d-r%d", ep, i)
			if err := l.AppendEventDurable(context.Background(), ev(trace.Req, rid, i)); err != nil {
				t.Fatal(err)
			}
		}
		if rotated, err := l.Rotate(); err != nil || !rotated {
			t.Fatalf("rotate epoch %d: %v", ep, err)
		}
	}
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "active-r0", 0)); err != nil {
		t.Fatal(err)
	}
	// Crash: no FinishSeals, no Close-side fsyncs.
	l.Close()

	l2, err := Open(dir, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	sealed := l2.Sealed()
	if len(sealed) != 2 {
		t.Fatalf("recovered %d sealed epochs, want 2", len(sealed))
	}
	for i, m := range sealed {
		if m.Seq != uint64(i)+1 || m.Events != 3 || m.Degraded == "" {
			t.Fatalf("recovery-sealed epoch %d wrong: %+v", i+1, m)
		}
		if _, _, _, err := ReadSealed(dir, m.Seq, Options{}); err != nil {
			t.Fatalf("recovery-sealed epoch %d unreadable: %v", m.Seq, err)
		}
	}
	if l2.ActiveSeq() != 3 {
		t.Fatalf("active epoch %d, want 3", l2.ActiveSeq())
	}
	if events, _ := l2.ActiveEvents(); events != 1 {
		t.Fatalf("active epoch recovered %d events, want 1", events)
	}
	// The log keeps working end to end.
	if err := l2.AppendEventDurable(context.Background(), ev(trace.Req, "post", 1)); err != nil {
		t.Fatal(err)
	}
	if m, err := l2.Seal(); err != nil || m.Seq != 3 {
		t.Fatalf("seal after chain recovery: %v, %+v", err, m)
	}
	l2.Close()
}

func TestRecoverySealPreservesFreshMarker(t *testing.T) {
	dir := t.TempDir()
	l := openGroup(t, dir, Options{})
	if err := l.MarkFresh(); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "r0", 0)); err != nil {
		t.Fatal(err)
	}
	if rotated, err := l.Rotate(); err != nil || !rotated {
		t.Fatalf("rotate: %v", err)
	}
	if err := l.AppendEventDurable(context.Background(), ev(trace.Req, "r1", 1)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	sealed := l2.Sealed()
	if len(sealed) != 1 || !sealed[0].Fresh {
		t.Fatalf("recovery-sealed epoch lost its fresh mark: %+v", sealed)
	}
}
