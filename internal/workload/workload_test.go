package workload

import (
	"testing"

	"karousos.dev/karousos/internal/apps/appkit"
)

func TestMOTDMixRatios(t *testing.T) {
	for _, tc := range []struct {
		mix  Mix
		want float64
	}{
		{ReadHeavy, 0.10},
		{WriteHeavy, 0.90},
		{Mixed, 0.50},
	} {
		reqs := MOTD(2000, tc.mix, 7)
		writes := 0
		for _, r := range reqs {
			if appkit.Str(appkit.Field(r.Input, "op")) == "set" {
				writes++
			}
		}
		got := float64(writes) / float64(len(reqs))
		if got < tc.want-0.05 || got > tc.want+0.05 {
			t.Errorf("%s: write fraction %.3f, want ≈%.2f", tc.mix, got, tc.want)
		}
	}
}

func TestMOTDDeterministic(t *testing.T) {
	a := MOTD(100, Mixed, 42)
	b := MOTD(100, Mixed, 42)
	for i := range a {
		if a[i].RID != b[i].RID || appkit.Str(appkit.Field(a[i].Input, "op")) != appkit.Str(appkit.Field(b[i].Input, "op")) {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := MOTD(100, Mixed, 43)
	same := true
	for i := range a {
		if appkit.Str(appkit.Field(a[i].Input, "op")) != appkit.Str(appkit.Field(c[i].Input, "op")) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical op streams")
	}
}

func TestMOTDUniqueRIDs(t *testing.T) {
	reqs := MOTD(500, Mixed, 1)
	seen := map[string]bool{}
	for _, r := range reqs {
		if seen[string(r.RID)] {
			t.Fatalf("duplicate rid %s", r.RID)
		}
		seen[string(r.RID)] = true
	}
}

func TestStacksNewDumpFraction(t *testing.T) {
	reqs := Stacks(3000, WriteHeavy, 5, DefaultStacksOptions())
	dumps := map[string]int{}
	reports := 0
	for _, r := range reqs {
		if appkit.Str(appkit.Field(r.Input, "op")) == "report" {
			reports++
			dumps[appkit.Str(appkit.Field(r.Input, "dump"))]++
		}
	}
	if reports == 0 {
		t.Fatal("no reports in write-heavy stream")
	}
	frac := float64(len(dumps)) / float64(reports)
	// ~10% of reports are new dumps.
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("unique dump fraction %.3f, want ≈0.10", frac)
	}
}

func TestStacksReadOpsSplit(t *testing.T) {
	reqs := Stacks(2000, ReadHeavy, 5, DefaultStacksOptions())
	ops := map[string]int{}
	for _, r := range reqs {
		ops[appkit.Str(appkit.Field(r.Input, "op"))]++
	}
	if ops["count"] == 0 || ops["list"] == 0 || ops["report"] == 0 {
		t.Errorf("missing op kinds: %v", ops)
	}
	if ops["list"] > ops["count"] {
		t.Errorf("lists (%d) should be rarer than counts (%d)", ops["list"], ops["count"])
	}
}

func TestStacksReqIDsPresent(t *testing.T) {
	for _, r := range Stacks(50, Mixed, 1, DefaultStacksOptions()) {
		op := appkit.Str(appkit.Field(r.Input, "op"))
		if op == "report" || op == "list" {
			if appkit.Str(appkit.Field(r.Input, "reqid")) == "" {
				t.Fatalf("%s request without reqid", op)
			}
		}
	}
}

func TestWikiMix(t *testing.T) {
	reqs := Wiki(3000, 9)
	ops := map[string]int{}
	for _, r := range reqs {
		ops[appkit.Str(appkit.Field(r.Input, "op"))]++
	}
	n := float64(len(reqs))
	if got := float64(ops["create"]) / n; got < 0.20 || got > 0.30 {
		t.Errorf("create fraction %.3f, want ≈0.25", got)
	}
	if got := float64(ops["comment"]) / n; got < 0.10 || got > 0.20 {
		t.Errorf("comment fraction %.3f, want ≈0.15", got)
	}
	if got := float64(ops["render"]) / n; got < 0.55 || got > 0.65 {
		t.Errorf("render fraction %.3f, want ≈0.60", got)
	}
}

func TestWikiFinitePagePool(t *testing.T) {
	reqs := Wiki(1000, 3)
	pages := map[string]bool{}
	for _, r := range reqs {
		if id := appkit.Str(appkit.Field(r.Input, "id")); id != "" {
			pages[id] = true
		}
	}
	if len(pages) > 45 {
		t.Errorf("page pool too large: %d", len(pages))
	}
	if len(pages) < 10 {
		t.Errorf("page pool suspiciously small: %d", len(pages))
	}
}

func TestUnknownMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mix should panic")
		}
	}()
	MOTD(1, Mix("bogus"), 1)
}

func TestWithRepeatsFractionAndDeterminism(t *testing.T) {
	base := MOTD(2000, Mixed, 11)
	a, err := WithRepeats(base, "motd", 0.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := Repeats("motd")
	if err != nil {
		t.Fatal(err)
	}
	inPool := func(in any) bool {
		for _, p := range pool {
			if appkit.Str(appkit.Field(in, "day")) == appkit.Str(appkit.Field(p, "day")) &&
				appkit.Str(appkit.Field(in, "op")) == "get" {
				return true
			}
		}
		return false
	}
	repeats := 0
	for _, r := range a {
		if inPool(r.Input) {
			repeats++
		}
	}
	// The pool days overlap organic gets, so the count can only overshoot.
	if got := float64(repeats) / float64(len(a)); got < 0.55 {
		t.Errorf("repeat fraction %.3f, want ≥0.55", got)
	}
	b, err := WithRepeats(MOTD(2000, Mixed, 11), "motd", 0.6, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if appkit.Str(appkit.Field(a[i].Input, "op")) != appkit.Str(appkit.Field(b[i].Input, "op")) ||
			appkit.Str(appkit.Field(a[i].Input, "day")) != appkit.Str(appkit.Field(b[i].Input, "day")) {
			t.Fatal("same seed produced different repeat rewrites")
		}
	}
}

func TestWithRepeatsValidation(t *testing.T) {
	base := MOTD(10, Mixed, 1)
	if _, err := WithRepeats(base, "motd", 1.5, 1); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if _, err := WithRepeats(base, "nope", 0.5, 1); err == nil {
		t.Error("unknown app should fail")
	}
	out, err := WithRepeats(base, "motd", 0, 1)
	if err != nil || len(out) != len(base) {
		t.Errorf("zero fraction should pass through: %v", err)
	}
	for _, app := range []string{"motd", "stacks", "wiki", "feeds"} {
		pool, err := Repeats(app)
		if err != nil || len(pool) == 0 {
			t.Errorf("%s: no recurring pool (%v)", app, err)
		}
		// Recurring shapes must be read-only or the carry never fixes.
		for _, p := range pool {
			switch op := appkit.Str(appkit.Field(p, "op")); op {
			case "get", "count", "render", "view":
			default:
				t.Errorf("%s recurring pool contains non-read op %q", app, op)
			}
		}
	}
}
