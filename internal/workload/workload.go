// Package workload generates the request streams of the paper's evaluation
// (§6, "Workloads"): read-heavy (90% reads), write-heavy (90% writes), and
// mixed (50/50) streams for the MOTD and stack-dump applications, and the
// Wikipedia-derived 25% create / 15% comment / 60% render mix for the wiki.
//
// Generators are deterministic in their seed. Value pools are finite so that
// distinct requests repeat — repeats are what give batched re-execution its
// deduplication opportunities, as in real web workloads (§2.3).
package workload

import (
	"fmt"
	"math/rand"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
)

// Mix names a read/write mix from the paper.
type Mix string

const (
	// ReadHeavy is 90% reads, 10% writes.
	ReadHeavy Mix = "90% reads"
	// WriteHeavy is 90% writes, 10% reads.
	WriteHeavy Mix = "90% writes"
	// Mixed is 50% reads, 50% writes.
	Mixed Mix = "mixed"
)

func (m Mix) writeFraction() float64 {
	switch m {
	case ReadHeavy:
		return 0.10
	case WriteHeavy:
		return 0.90
	case Mixed:
		return 0.50
	}
	panic(fmt.Sprintf("workload: unknown mix %q", m))
}

var days = []string{"mon", "tue", "wed", "thu", "fri", "sat", "sun"}

var messages = []string{
	"ship it",
	"the build is green",
	"remember to audit",
	"trust, but verify",
	"read the trace",
	"cache invalidation day",
}

// MOTD generates n requests against the message-of-the-day application:
// reads are {"op":"get","day":d}; writes set either the always-message or a
// particular day's message.
func MOTD(n int, mix Mix, seed int64) []server.Request {
	rng := rand.New(rand.NewSource(seed))
	wf := mix.writeFraction()
	reqs := make([]server.Request, n)
	for i := range reqs {
		var in value.V
		if rng.Float64() < wf {
			if rng.Float64() < 0.5 {
				in = value.Map("op", "set", "scope", "always", "msg", messages[rng.Intn(len(messages))])
			} else {
				in = value.Map("op", "set", "scope", "day",
					"day", days[rng.Intn(len(days))],
					"msg", messages[rng.Intn(len(messages))])
			}
		} else {
			in = value.Map("op", "get", "day", days[rng.Intn(len(days))])
		}
		reqs[i] = server.Request{RID: core.RID(fmt.Sprintf("r%04d", i)), Input: in}
	}
	return reqs
}

// StacksOptions tunes the stack-dump stream beyond the paper's defaults.
type StacksOptions struct {
	// NewDumpFraction is the share of write (report) requests that submit a
	// previously unseen dump; the paper uses 10%.
	NewDumpFraction float64
	// ListFraction is the share of read requests that are list requests
	// (the rest are count requests). Lists fan out one handler per known
	// digest, so they dominate verification cost when frequent.
	ListFraction float64
}

// DefaultStacksOptions matches the paper's workload description.
func DefaultStacksOptions() StacksOptions {
	return StacksOptions{NewDumpFraction: 0.10, ListFraction: 0.20}
}

// Stacks generates n requests against the stack-dump application. Write
// requests report dumps (10% new, 90% previously reported, per §6); read
// requests are counts and lists.
func Stacks(n int, mix Mix, seed int64, opts StacksOptions) []server.Request {
	rng := rand.New(rand.NewSource(seed))
	wf := mix.writeFraction()
	var known []string
	dump := func() string {
		if len(known) == 0 || rng.Float64() < opts.NewDumpFraction {
			d := fmt.Sprintf("panic: goroutine %d [running]: main.f%d()", rng.Intn(1<<20), rng.Intn(1<<20))
			known = append(known, d)
			return d
		}
		return known[rng.Intn(len(known))]
	}
	reqs := make([]server.Request, n)
	for i := range reqs {
		rid := fmt.Sprintf("r%04d", i)
		var in value.V
		switch {
		case rng.Float64() < wf:
			in = value.Map("op", "report", "reqid", rid, "dump", dump())
		case rng.Float64() < opts.ListFraction:
			in = value.Map("op", "list", "reqid", rid)
		default:
			in = value.Map("op", "count", "reqid", rid, "dump", dump())
		}
		reqs[i] = server.Request{RID: core.RID(rid), Input: in}
	}
	return reqs
}

// Repeats is app's fixed pool of recurring request shapes: read-only
// inputs, byte-identical every time they recur, the steady-state traffic
// that gives cross-epoch deduplicated re-execution its cache hits. The
// shapes are read-only on purpose — a recurring write would keep moving the
// carried state, so the group's input closure would never reach the fixed
// point the memo cache keys on.
func Repeats(app string) ([]value.V, error) {
	switch app {
	case "", "motd":
		return []value.V{
			value.Map("op", "get", "day", "mon"),
			value.Map("op", "get", "day", "tue"),
			value.Map("op", "get", "day", "wed"),
			value.Map("op", "get", "day", "thu"),
		}, nil
	case "stacks":
		return []value.V{
			value.Map("op", "count", "reqid", "repeat", "dump", "panic: goroutine 1 [running]: main.f1()"),
			value.Map("op", "count", "reqid", "repeat", "dump", "panic: goroutine 2 [running]: main.f2()"),
		}, nil
	case "wiki":
		return []value.V{
			value.Map("op", "render", "reqid", "repeat", "id", "page-00"),
			value.Map("op", "render", "reqid", "repeat", "id", "page-01"),
			value.Map("op", "render", "reqid", "repeat", "id", "page-02"),
		}, nil
	case "feeds":
		// The feeds pool is deliberately wide: each board's view is a
		// distinct request shape whose assembly cost recurs every epoch, so
		// the pool width sets how much per-epoch re-execution the memo cache
		// gets to deduplicate.
		pool := make([]value.V, feedsRepeatBoards)
		for i := range pool {
			pool[i] = value.Map("op", "view", "board", fmt.Sprintf("board-%02d", i))
		}
		return pool, nil
	}
	return nil, fmt.Errorf("workload: no recurring shapes for app %q", app)
}

// feedsRepeatBoards is how many distinct boards the feeds recurring pool
// spans (a subset of the Feeds generator's board pool).
const feedsRepeatBoards = 24

// WithRepeats rewrites a deterministic fraction of reqs to app's recurring
// shapes, cycling through the pool so the recurring sub-stream repeats
// bit-for-bit across epochs. RIDs are left alone — recurrence is about the
// request's observable input, and the audit's memo keys exclude raw RIDs.
func WithRepeats(reqs []server.Request, app string, frac float64, seed int64) ([]server.Request, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("workload: repeat fraction %v outside [0,1]", frac)
	}
	if frac == 0 {
		return reqs, nil
	}
	pool, err := Repeats(app)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	out := make([]server.Request, len(reqs))
	copy(out, reqs)
	next := 0
	for i := range out {
		if rng.Float64() < frac {
			out[i].Input = pool[next%len(pool)]
			next++
		}
	}
	return out, nil
}

// Feeds generates n requests against the dashboard-feeds application:
// reads are {"op":"view","board":b} polls over a finite board pool, writes
// pin a notice to a board. Views dominate real dashboard traffic, which is
// what makes this the steady-state workload of the memo experiments.
func Feeds(n int, mix Mix, seed int64) []server.Request {
	rng := rand.New(rand.NewSource(seed))
	wf := mix.writeFraction()
	nboards := 32
	board := func() string { return fmt.Sprintf("board-%02d", rng.Intn(nboards)) }
	reqs := make([]server.Request, n)
	for i := range reqs {
		var in value.V
		if rng.Float64() < wf {
			in = value.Map("op", "pin", "board", board(),
				"note", messages[rng.Intn(len(messages))])
		} else {
			in = value.Map("op", "view", "board", board())
		}
		reqs[i] = server.Request{RID: core.RID(fmt.Sprintf("r%04d", i)), Input: in}
	}
	return reqs
}

// Wiki generates n requests with the paper's mix: 25% page creations, 15%
// comment creations, 60% render requests, over a finite page-id pool so that
// renders hit both the cache and the store.
func Wiki(n int, seed int64) []server.Request {
	rng := rand.New(rand.NewSource(seed))
	npages := 40
	pageID := func() string { return fmt.Sprintf("page-%02d", rng.Intn(npages)) }
	reqs := make([]server.Request, n)
	for i := range reqs {
		rid := fmt.Sprintf("r%04d", i)
		var in value.V
		switch r := rng.Float64(); {
		case r < 0.25:
			in = value.Map("op", "create", "reqid", rid,
				"id", pageID(),
				"title", fmt.Sprintf("Title %d", rng.Intn(64)),
				"content", fmt.Sprintf("Lorem ipsum %d dolor sit amet.", rng.Intn(64)))
		case r < 0.40:
			in = value.Map("op", "comment", "reqid", rid,
				"page", pageID(),
				"text", fmt.Sprintf("comment %d", rng.Intn(128)))
		default:
			in = value.Map("op", "render", "reqid", rid, "id", pageID())
		}
		reqs[i] = server.Request{RID: core.RID(rid), Input: in}
	}
	return reqs
}
