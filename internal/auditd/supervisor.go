package auditd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/iofault"
)

// SupervisorOptions bounds the restart policy.
type SupervisorOptions struct {
	// MaxRestarts is how many times the audit loop is rebuilt after a
	// restartable failure before the supervisor gives up. Defaults to 3.
	MaxRestarts int
	// Backoff paces the restarts (and is inherited by each incarnation's
	// retry loops when the Config leaves its own Backoff zero).
	Backoff iofault.Backoff
}

// Supervisor runs the audit loop and restarts it when it dies for a reason
// that is the auditor's — not the server's — fault.
//
// The restart decision is the trust boundary in miniature. A coded
// rejection other than InternalFault is the audit's verdict on the server:
// restarting cannot change it and must not, so the supervisor stops and
// reports it. An InternalFault (the verifier crashed on some input) or a
// plain infrastructure error (epoch unreadable past the retry budget) says
// nothing about the server; the supervisor rebuilds the auditor from its
// durable checkpoint and tries again. Crash consistency makes the rebuild
// sound: the checkpoint is written atomically after each graded epoch, so
// an incarnation that died mid-epoch re-grades exactly that epoch, and the
// determinism invariant (same evidence, same verdict) makes the re-grade
// converge.
type Supervisor struct {
	cfg  Config
	opts SupervisorOptions

	mu       sync.Mutex
	cur      *Auditor
	last     Status
	restarts int
	verdicts []Verdict
}

// NewSupervisor validates the restart policy; the first auditor is built
// lazily in Run so every incarnation is constructed the same way.
func NewSupervisor(cfg Config, opts SupervisorOptions) *Supervisor {
	if opts.MaxRestarts <= 0 {
		opts.MaxRestarts = 3
	}
	if cfg.Backoff.Base == 0 && cfg.Backoff.Attempts == 0 && cfg.Backoff.Sleep == nil {
		cfg.Backoff = opts.Backoff
	}
	return &Supervisor{cfg: cfg, opts: opts}
}

// Status reports the live incarnation's counters (or the last dead one's,
// between incarnations) plus the restart count.
func (s *Supervisor) Status() (Status, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur == nil {
		return s.last, s.restarts
	}
	return s.cur.Status(), s.restarts
}

// Verdicts returns every verdict reached across all incarnations, in
// grading order. Epochs a restarted incarnation resumed past via the
// checkpoint appear once, from the incarnation that graded them.
func (s *Supervisor) Verdicts() []Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Verdict(nil), s.verdicts...)
	if s.cur != nil {
		out = append(out, s.cur.Verdicts()...)
	}
	return out
}

// restartable reports whether dying with err is the auditor's own problem.
func restartable(err error) bool {
	var rej *Reject
	if errors.As(err, &rej) {
		return rej.Code == core.RejectInternalFault
	}
	// Context cancellation is a shutdown, not a failure; anything else
	// non-reject is infrastructure.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// Run supervises the audit loop until the context is cancelled (nil), the
// audit rejects an epoch (*Reject), or the restart budget is exhausted
// (the last incarnation's error). Each incarnation is a fresh Auditor so
// any in-memory state poisoned by the failure is discarded; the durable
// checkpoint carries the resume point.
func (s *Supervisor) Run(ctx context.Context) error {
	b := s.opts.Backoff.WithDefaults()
	for attempt := 0; ; attempt++ {
		a, err := New(s.cfg)
		if err != nil {
			return fmt.Errorf("auditd: supervisor: building auditor: %w", err)
		}
		s.mu.Lock()
		s.cur = a
		s.mu.Unlock()

		err = a.Run(ctx)

		s.mu.Lock()
		s.verdicts = append(s.verdicts, a.Verdicts()...)
		s.last = a.Status()
		s.cur = nil
		s.mu.Unlock()

		if err == nil || ctx.Err() != nil {
			return nil
		}
		if !restartable(err) {
			return err
		}
		if attempt >= s.opts.MaxRestarts {
			return fmt.Errorf("auditd: supervisor: giving up after %d restarts: %w", s.restarts, err)
		}
		s.mu.Lock()
		s.restarts++
		s.mu.Unlock()

		delay := b.Base << attempt
		if delay > b.Max {
			delay = b.Max
		}
		//karousos:nondeterminism-ok restart backoff sleep; supervision timing is not part of any verdict
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(delay):
		}
	}
}
