package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/workload"
)

// wikiMap is the wiki application's natural topology: partition by page
// id — create/render carry it as "id", comment as "page" — so every store
// key (page:<id>, comment:<id>:<n>) is owned by exactly one shard.
func wikiMap(shards int) shard.Map {
	return shard.Map{Shards: shards, KeyFields: []string{"id", "page"}}
}

// newGatewayServer exposes a local topology's gateway on a loopback
// listener and returns its base URL.
func newGatewayServer(t *testing.T, top *gateway.Local) string {
	t.Helper()
	ts := httptest.NewServer(top.Gateway.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// driveURL posts each request through a gateway (or collector) /invoke
// URL, requiring HTTP 200.
func driveURL(t *testing.T, url string, reqs []server.Request) {
	t.Helper()
	for _, r := range reqs {
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke: status %d", resp.StatusCode)
		}
	}
}

// shardedKey renders a ShardedResult's verdict-affecting content as one
// comparable string: per-shard verdict sequences, the merged verdict, and
// the summed deterministic work counters.
func shardedKey(t *testing.T, res ShardedResult) string {
	t.Helper()
	var b strings.Builder
	for _, rep := range res.Shards {
		fmt.Fprintf(&b, "shard%d[%s]:", rep.Shard, rep.Code)
		for _, v := range rep.Verdicts {
			fmt.Fprintf(&b, "%d=%s;", v.Epoch, v.Code)
		}
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "merge=%s conflicts=%d ", res.Merge.Code, len(res.Merge.Conflicts))
	fmt.Fprintf(&b, "stats=%+v", res.Stats)
	return b.String()
}

// TestShardedDifferentialLanes is the sharded differential: the same four
// shard logs audited with 1, 2, and 4 concurrent lanes produce
// bit-identical per-shard verdicts, merged verdict, and summed Stats —
// lane scheduling never reaches the verdict.
func TestShardedDifferentialLanes(t *testing.T) {
	root := t.TempDir()
	m := wikiMap(4)
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec: harness.WikiApp(), Root: root, Map: m, EpochRequests: 5, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts := newGatewayServer(t, top)
	driveURL(t, gwts, workload.Wiki(60, 7))
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}

	counters := top.Gateway.Counters()
	spread := 0
	for _, c := range counters {
		if c.Routed > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("workload landed on %d shard(s); want spread across several: %+v", spread, counters)
	}

	var want string
	for _, lanes := range []int{1, 2, 4} {
		sh, err := NewSharded(ShardedConfig{Root: root, Lanes: lanes})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sh.Audit(context.Background())
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if !res.Accepted() {
			t.Fatalf("lanes=%d: honest sharded run not accepted: %+v", lanes, res.Merge)
		}
		if res.Stats.HandlersRerun == 0 {
			t.Fatalf("lanes=%d: no re-execution recorded in summed stats", lanes)
		}
		key := shardedKey(t, res)
		if want == "" {
			want = key
			continue
		}
		if key != want {
			t.Fatalf("lanes=%d diverged:\n%s\nwant:\n%s", lanes, key, want)
		}
	}
}

// TestShardedEmptyShards: shards the workload never touched — no epochs,
// nil carry — neither block nor taint the merged verdict.
func TestShardedEmptyShards(t *testing.T) {
	root := t.TempDir()
	m := wikiMap(4)
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec: harness.WikiApp(), Root: root, Map: m, EpochRequests: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts := newGatewayServer(t, top)
	// Every request touches the same page, so exactly one shard serves.
	one := []server.Request{
		{Input: value.Normalize(value.Map("op", "create", "reqid", "r1", "id", "page-xx", "title", "T", "content", "C"))},
		{Input: value.Normalize(value.Map("op", "render", "reqid", "r2", "id", "page-xx"))},
		{Input: value.Normalize(value.Map("op", "comment", "reqid", "r3", "page", "page-xx", "text", "hi"))},
	}
	driveURL(t, gwts, one)
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}

	sh, err := NewSharded(ShardedConfig{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sh.Audit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatalf("merge = %+v, want accept", res.Merge)
	}
	busy, empty := 0, 0
	for _, rep := range res.Shards {
		if rep.Status.Accepted > 0 {
			busy++
		} else if rep.Status.LastProcessed == 0 && rep.Code == "" {
			empty++
		}
	}
	if busy != 1 || empty != 3 {
		t.Fatalf("busy=%d empty=%d, want 1 busy and 3 empty shards", busy, empty)
	}
}

// TestShardedRoutingViolation: a request sitting in a shard's trace that
// the map routes elsewhere is detected by the lane's routing check and
// surfaces as ShardConflict — the trace is trusted, so the misrouting is
// evidence against the gateway, not a grading gap.
func TestShardedRoutingViolation(t *testing.T) {
	root := t.TempDir()
	m := wikiMap(2)
	// Find page ids on each side of the partition.
	var p0, p1 string
	for i := 0; i < 64 && (p0 == "" || p1 == ""); i++ {
		id := fmt.Sprintf("page-%02d", i)
		if s := m.ShardOf(value.Normalize(value.Map("op", "render", "reqid", "r", "id", id))); s == 0 && p0 == "" {
			p0 = id
		} else if s == 1 && p1 == "" {
			p1 = id
		}
	}
	if p0 == "" || p1 == "" {
		t.Fatal("could not find pages on both shards")
	}

	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec: harness.WikiApp(), Root: root, Map: m, EpochRequests: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bypass the gateway and misroute: shard 0's collector serves a page
	// the map assigns to shard 1.
	mis := []server.Request{
		{Input: value.Normalize(value.Map("op", "create", "reqid", "m1", "id", p0, "title", "T", "content", "C"))},
		{Input: value.Normalize(value.Map("op", "render", "reqid", "m2", "id", p1))},
	}
	ts0 := newLoopback(t, top.Collector(0))
	driveURL(t, ts0.URL, mis)
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}

	sh, err := NewSharded(ShardedConfig{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sh.Audit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Merge.Code != core.RejectShardConflict {
		t.Fatalf("merge code = %s, want ShardConflict: %+v", res.Merge.Code, res.Merge)
	}
	if res.Shards[0].Code != core.RejectShardConflict {
		t.Fatalf("shard 0 code = %s, want ShardConflict", res.Shards[0].Code)
	}
}

// TestShardedKillRestart: killing one shard's collector mid-epoch and
// restarting it leaves that shard's partial epoch Unauditable and the
// next epoch Fresh — so the combined verdict carries no false accusation,
// the surviving shards' audits are untouched, and the whole outcome is
// identical at every lane count.
func TestShardedKillRestart(t *testing.T) {
	root := t.TempDir()
	m := wikiMap(2)
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec: harness.WikiApp(), Root: root, Map: m, EpochRequests: 4, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts := newGatewayServer(t, top)
	reqs := workload.Wiki(40, 21)
	driveURL(t, gwts, reqs[:20])
	// Kill shard 1 the way a process death would: no seal, the active
	// epoch's tail abandoned on disk.
	if err := top.Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := top.Restart(1); err != nil {
		t.Fatal(err)
	}
	driveURL(t, gwts, reqs[20:])
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}

	var want string
	sawUnauditable := false
	for _, lanes := range []int{1, 2} {
		sh, err := NewSharded(ShardedConfig{Root: root, Lanes: lanes})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sh.Audit(context.Background())
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		for _, rep := range res.Shards {
			for _, v := range rep.Verdicts {
				switch v.Code {
				case "", core.RejectUnauditable:
				default:
					t.Fatalf("infrastructure fault manufactured an accusation: shard %d epoch %d %s: %s",
						rep.Shard, v.Epoch, v.Code, v.Reason)
				}
				if v.Code == core.RejectUnauditable {
					sawUnauditable = true
				}
			}
		}
		switch res.Merge.Code {
		case "", core.RejectUnauditable:
		default:
			t.Fatalf("merged verdict accuses after a crash: %+v", res.Merge)
		}
		key := shardedKey(t, res)
		if want == "" {
			want = key
		} else if key != want {
			t.Fatalf("lanes=%d diverged after crash:\n%s\nwant:\n%s", lanes, key, want)
		}
	}
	if !sawUnauditable {
		t.Log("crash fell on an epoch boundary; no partial epoch to grade Unauditable")
	}
}

// TestShardedCheckpointDirCreated: a CheckpointDir that does not exist
// yet is the constructor's to create — lanes must not burn their restart
// budget failing to write resume files into a missing parent.
func TestShardedCheckpointDirCreated(t *testing.T) {
	root := t.TempDir()
	m := wikiMap(2)
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec: harness.WikiApp(), Root: root, Map: m, EpochRequests: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	gwts := newGatewayServer(t, top)
	driveURL(t, gwts, workload.Wiki(20, 5))
	if err := top.Close(); err != nil {
		t.Fatal(err)
	}

	cpDir := filepath.Join(t.TempDir(), "nested", "cp")
	sh, err := NewSharded(ShardedConfig{Root: root, CheckpointDir: cpDir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sh.Audit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatalf("honest run with fresh checkpoint dir rejected: %+v", res.Merge)
	}
	for i := 0; i < m.Shards; i++ {
		cp := filepath.Join(cpDir, fmt.Sprintf("checkpoint-shard-%02d.json", i))
		if _, err := os.Stat(cp); err != nil {
			t.Fatalf("lane %d wrote no resume file: %v", i, err)
		}
	}

	// Resuming from those files audits nothing new and still accepts.
	sh2, err := NewSharded(ShardedConfig{Root: root, CheckpointDir: cpDir})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sh2.Audit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Accepted() {
		t.Fatalf("resume from checkpoints rejected: %+v", res2.Merge)
	}
	for _, rep := range res2.Shards {
		if got := len(rep.Verdicts); got != 0 {
			t.Fatalf("shard %d re-audited %d epochs on resume; want 0", rep.Shard, got)
		}
	}
}
