// Package auditd is the incremental auditor: it tails an epoch log while a
// collector is still serving, audits each sealed epoch in order, and
// carries the verifier's dictionary state across epoch boundaries so a
// long-running server is audited piecewise with the same verdict a
// monolithic audit would reach.
//
// Ordering is semantic, not cosmetic: epoch k's audit needs the carry
// produced by epoch k-1's accepting audit, so audits run strictly in
// sequence. The worker pool prefetches — reads and integrity-checks —
// upcoming epochs concurrently, which is where the wall-clock time goes for
// I/O-bound logs.
//
// The auditor checkpoints (last accepted epoch, carry state) after every
// accept. A restarted auditor resumes from the checkpoint without
// re-auditing accepted epochs; the checkpoint is the auditor's own prior
// verdict, so trusting it is trusting itself.
package auditd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/verifier/memo"
)

// Config describes one auditor instance.
type Config struct {
	// Dir is the epoch log directory to tail.
	Dir string
	// Spec is the application to re-execute. When its Name is empty the
	// auditor resolves the app from the directory's meta.json sidecar.
	Spec harness.AppSpec
	// Mode selects the verifier. Empty means the sidecar's mode, falling
	// back to Karousos.
	Mode advice.Mode
	// Limits bounds each epoch's audit; the zero value is unbounded.
	Limits verifier.Limits
	// Checkpoint is the path of the resume file. Empty keeps the cursor in
	// memory only.
	Checkpoint string
	// Workers bounds concurrent epoch prefetches. Defaults to 2.
	Workers int
	// MaxPrefetchBytes bounds the estimated bytes of fetched-but-unaudited
	// epochs resident at once (manifest TraceBytes + AdviceBytes). The
	// count window alone is not enough: 2×Workers epochs of a byte-heavy
	// workload can dwarf the count bound. At least one epoch is always in
	// flight, so an oversized epoch stalls the window instead of wedging
	// it. <=0 means 256 MiB.
	MaxPrefetchBytes int64
	// AuditWorkers is each epoch audit's parallelism (verifier.Config.
	// Workers): 0 means GOMAXPROCS, 1 forces the sequential engine. The
	// verdict is identical at every setting.
	AuditWorkers int
	// MemoMaxBytes enables the cross-epoch re-execution memo cache
	// (DESIGN.md §18) with the given byte budget; 0 disables memoization.
	// The cache lives as long as the auditor and, like the carry, is
	// dropped at Fresh manifest boundaries. It is purely a performance
	// lever: verdicts, reject codes, and non-memo Stats are identical with
	// it on or off.
	MemoMaxBytes int
	// Poll is the follow-mode polling interval. Defaults to 200ms.
	Poll time.Duration
	// FS is the filesystem the auditor reads epochs and writes checkpoints
	// through. nil means the real OS.
	FS iofault.FS
	// Backoff bounds the retry loops around epoch reads and checkpoint
	// writes. Zero-valued fields take iofault's defaults.
	Backoff iofault.Backoff
	// OnVerdict, when set, is called with every verdict as it is reached —
	// accepted, rejected, or unauditable. Called without the auditor's lock.
	OnVerdict func(Verdict)
}

func (cfg Config) fs() iofault.FS {
	if cfg.FS == nil {
		return iofault.OS
	}
	return cfg.FS
}

// Reject is a machine-readable audit rejection: which epoch failed, the
// coded reason, and the human-readable detail.
type Reject struct {
	Epoch  uint64          `json:"epoch"`
	Code   core.RejectCode `json:"code"`
	Reason string          `json:"reason"`
}

func (r *Reject) Error() string {
	return fmt.Sprintf("auditd: epoch %d rejected: %s: %s", r.Epoch, r.Code, r.Reason)
}

// Verdict is one graded epoch. Code "" means accepted,
// core.RejectUnauditable means the epoch could not be graded either way,
// and any other code is a rejection the server must answer for.
type Verdict struct {
	Epoch  uint64          `json:"epoch"`
	Code   core.RejectCode `json:"code,omitempty"`
	Reason string          `json:"reason,omitempty"`
}

// Accepted reports whether this verdict cleared the epoch.
func (v Verdict) Accepted() bool { return v.Code == "" }

// Status is the auditor's observable state.
type Status struct {
	// LastAccepted is the newest epoch whose audit accepted.
	LastAccepted uint64 `json:"lastAccepted"`
	// LastProcessed is the newest epoch graded at all — accepted or
	// unauditable. A rejection halts the auditor, so processing never
	// advances past a rejected epoch.
	LastProcessed uint64        `json:"lastProcessed"`
	Accepted      int           `json:"accepted"`
	Rejected      int           `json:"rejected"`
	Unauditable   int           `json:"unauditable"`
	LastAudit     time.Duration `json:"lastAuditNanos"`
	TotalAudit    time.Duration `json:"totalAuditNanos"`
	// PeakPrefetchEpochs and PeakPrefetchBytes are the prefetch window's
	// high-water marks since this auditor started — the overload tests
	// assert boundedness against them.
	PeakPrefetchEpochs int   `json:"peakPrefetchEpochs,omitempty"`
	PeakPrefetchBytes  int64 `json:"peakPrefetchBytes,omitempty"`
	// Stats sums the verifier work counters of every accepted epoch this
	// instance audited. Deterministic in the evidence (unlike the latency
	// fields), so the sharded differential tests compare it bit-for-bit
	// across lane counts.
	Stats verifier.Stats `json:"stats"`
}

// MemoCounters is the memo cache's observable traffic: cumulative hit,
// miss, and eviction counts across this auditor's accepted epochs. It rides
// the checkpoint so the serving side (collector /healthz) can report
// warm-cache behavior without an RPC to the auditor process.
type MemoCounters struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Evictions int `json:"evictions,omitempty"`
}

// checkpoint is the resume file's schema. The carry is the dictionary state
// the next epoch's audit starts from; it came out of this auditor's own
// accepting audit, so it shares the trace's trust level. Files written
// before LastProcessed/Unauditable existed decode with both zero; loading
// normalizes LastProcessed up to LastAccepted. Memo is advisory telemetry,
// never read back into audit state.
type checkpoint struct {
	LastAccepted  uint64               `json:"lastAccepted"`
	LastProcessed uint64               `json:"lastProcessed,omitempty"`
	Unauditable   bool                 `json:"unauditable,omitempty"`
	Carry         *verifier.CarryState `json:"carry,omitempty"`
	Memo          *MemoCounters        `json:"memo,omitempty"`
}

// Auditor tails one epoch log.
type Auditor struct {
	cfg Config
	// memo is the cross-epoch re-execution cache, nil unless
	// Config.MemoMaxBytes is set. Only the in-order audit loop touches it,
	// so it needs no coordination beyond the cache's own lock.
	memo *memo.Cache

	mu    sync.Mutex
	carry *verifier.CarryState
	// unauditable marks the carry as unanchored: an earlier epoch graded
	// Unauditable, so epochs are graded Unauditable without auditing until
	// a Fresh manifest re-anchors at rebuilt state.
	unauditable bool
	status      Status
	verdicts    []Verdict
}

// New resolves the application, loads the checkpoint if one exists, and
// returns an auditor ready to run.
func New(cfg Config) (*Auditor, error) {
	if cfg.Spec.Name == "" || cfg.Mode == "" {
		meta, err := collectorhttp.ReadMeta(cfg.Dir)
		if cfg.Spec.Name == "" {
			if err != nil {
				return nil, fmt.Errorf("auditd: no app configured and no readable sidecar: %w", err)
			}
			if cfg.Spec, err = harness.SpecByName(meta.App); err != nil {
				return nil, err
			}
		}
		if cfg.Mode == "" {
			cfg.Mode = meta.Mode // zero when the sidecar was unreadable
		}
	}
	if cfg.Mode == "" {
		cfg.Mode = advice.ModeKarousos
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxPrefetchBytes <= 0 {
		cfg.MaxPrefetchBytes = 256 << 20
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	a := &Auditor{cfg: cfg}
	if cfg.MemoMaxBytes > 0 {
		a.memo = memo.NewCache(cfg.MemoMaxBytes)
	}
	if cfg.Checkpoint != "" {
		var blob []byte
		err := iofault.Retry(context.Background(), cfg.Backoff, func() error {
			var rerr error
			blob, rerr = cfg.fs().ReadFile(cfg.Checkpoint)
			return rerr
		})
		switch {
		case errors.Is(err, os.ErrNotExist):
		case err != nil:
			return nil, err
		default:
			var cp checkpoint
			if err := json.Unmarshal(blob, &cp); err != nil {
				// A checkpoint is only a cache of this auditor's own prior
				// verdicts: losing it costs re-auditing, never correctness.
				// Quarantine the corpse for diagnosis and start from zero —
				// crashing here would wedge the pipeline on a torn write.
				if qerr := cfg.fs().Rename(cfg.Checkpoint, cfg.Checkpoint+".corrupt"); qerr != nil {
					return nil, fmt.Errorf("auditd: corrupt checkpoint %s (quarantine also failed: %v): %w", cfg.Checkpoint, qerr, err)
				}
			} else {
				if cp.Carry != nil {
					cp.Carry.Normalize()
				}
				if cp.LastProcessed < cp.LastAccepted {
					cp.LastProcessed = cp.LastAccepted
				}
				a.status.LastAccepted = cp.LastAccepted
				a.status.LastProcessed = cp.LastProcessed
				a.unauditable = cp.Unauditable
				a.carry = cp.Carry
			}
		}
	}
	return a, nil
}

// Status returns a copy of the auditor's counters.
func (a *Auditor) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.status
}

// Verdicts returns a copy of every verdict this auditor instance reached,
// in grading order. Verdicts resumed past via checkpoint are not replayed.
func (a *Auditor) Verdicts() []Verdict {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Verdict(nil), a.verdicts...)
}

// Carry returns the auditor's current cross-epoch carry state — the
// verified server state after its newest accepting audit, or nil when
// there is none (nothing audited yet, or the run is unanchored). The
// sharded merge check reads it after a lane drains; callers must not
// mutate it while the auditor is still running.
func (a *Auditor) Carry() *verifier.CarryState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.carry
}

// Unanchored reports whether the auditor's carry is unknown because an
// epoch graded Unauditable and no Fresh manifest has re-anchored it yet.
func (a *Auditor) Unanchored() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.unauditable
}

// recordVerdict appends the verdict under the lock and fires OnVerdict
// outside it.
func (a *Auditor) recordVerdict(v Verdict) {
	a.mu.Lock()
	a.verdicts = append(a.verdicts, v)
	a.mu.Unlock()
	if a.cfg.OnVerdict != nil {
		a.cfg.OnVerdict(v)
	}
}

// fetched is one prefetched epoch, integrity-checked against its manifest.
type fetched struct {
	tr   *trace.Trace
	blob []byte
	err  error
}

// RunOnce grades every sealed epoch past the checkpoint, in order, and
// returns how many it processed (accepted or unauditable). A rejection
// returns a *Reject error; an unreadable trusted channel (trace or
// manifest) returns an ordinary error after bounded retries, since that is
// infrastructure failure, not server misbehavior.
func (a *Auditor) RunOnce(ctx context.Context) (int, error) {
	var sealed []epochlog.Manifest
	err := iofault.Retry(ctx, a.cfg.Backoff, func() error {
		var lerr error
		sealed, lerr = epochlog.ListSealedFS(a.cfg.fs(), a.cfg.Dir)
		return lerr
	})
	if err != nil {
		return 0, err
	}
	last := a.Status().LastProcessed
	var pending []epochlog.Manifest
	for _, m := range sealed {
		if m.Seq > last {
			pending = append(pending, m)
		}
	}
	if len(pending) == 0 {
		return 0, nil
	}

	// Prefetch pending epochs with the worker pool; audit strictly in
	// order as each becomes available. The look-ahead window bounds how
	// many fetched epochs can sit in memory waiting for the in-order
	// audit — without it, a large backlog (auditor restarted without its
	// checkpoint, long outage) would hold every pending epoch's trace and
	// advice resident at once. The window is bounded twice: by epoch count
	// (2×Workers) and by estimated bytes (MaxPrefetchBytes), since a
	// byte-heavy workload can dwarf the count bound. A slot stays claimed
	// until its epoch's audit finishes — the fetched trace and advice are
	// resident for exactly that long.
	opt := epochlog.Options{MaxAdviceBytes: a.cfg.Limits.MaxAdviceBytes, FS: a.cfg.FS}
	window := 2 * a.cfg.Workers
	est := func(m epochlog.Manifest) int64 {
		n := m.TraceBytes + int64(m.AdviceBytes)
		if n <= 0 {
			// Manifests sealed before sizes were recorded: assume 1 MiB so
			// old logs still prefetch with some look-ahead.
			n = 1 << 20
		}
		return n
	}
	sem := make(chan struct{}, a.cfg.Workers)
	results := make([]chan fetched, len(pending))
	for i := range pending {
		results[i] = make(chan fetched, 1)
	}
	prefetch := func(i int) {
		go func(seq uint64, ch chan fetched) {
			sem <- struct{}{}
			defer func() { <-sem }()
			var f fetched
			f.err = iofault.Retry(ctx, a.cfg.Backoff, func() error {
				var rerr error
				f.tr, f.blob, _, rerr = epochlog.ReadSealed(a.cfg.Dir, seq, opt)
				return rerr
			})
			ch <- f
		}(pending[i].Seq, results[i])
	}
	next, inWindow := 0, 0
	var windowBytes int64
	issue := func() {
		for next < len(pending) && inWindow < window {
			e := est(pending[next])
			if inWindow > 0 && windowBytes+e > a.cfg.MaxPrefetchBytes {
				break
			}
			inWindow++
			windowBytes += e
			a.mu.Lock()
			if inWindow > a.status.PeakPrefetchEpochs {
				a.status.PeakPrefetchEpochs = inWindow
			}
			if windowBytes > a.status.PeakPrefetchBytes {
				a.status.PeakPrefetchBytes = windowBytes
			}
			a.mu.Unlock()
			prefetch(next)
			next++
		}
	}
	issue()

	processed := 0
	for i, m := range pending {
		if err := ctx.Err(); err != nil {
			return processed, err
		}
		f := <-results[i]
		if f.err != nil {
			return processed, fmt.Errorf("auditd: epoch %d: %w", m.Seq, f.err)
		}
		if err := a.auditEpoch(ctx, m, f); err != nil {
			return processed, err
		}
		inWindow--
		windowBytes -= est(m)
		issue()
		processed++
	}
	return processed, nil
}

func (a *Auditor) auditEpoch(ctx context.Context, m epochlog.Manifest, f fetched) error {
	start := time.Now() //karousos:nondeterminism-ok audit-latency metric for Status; never part of the verdict

	if m.Fresh {
		// Trusted restart boundary, recorded by the collector itself: the
		// serving runtime began this epoch with fresh application state, so
		// carried prior-epoch state no longer describes the server and must
		// not be threaded into this or any later epoch's audit. A Fresh
		// manifest also re-anchors an unauditable run: nil carry is exactly
		// right for rebuilt state, so grading can resume. The memo cache is
		// dropped alongside the carry: its entries were published under the
		// pre-restart state lineage and keeping them would at best miss.
		a.mu.Lock()
		a.carry = nil
		a.unauditable = false
		a.mu.Unlock()
		if a.memo != nil {
			a.memo.Reset()
		}
	}

	a.mu.Lock()
	unanchored := a.unauditable
	a.mu.Unlock()
	if unanchored {
		// An earlier epoch graded Unauditable, so the carry this epoch's
		// audit would need is unknown. Auditing against a guessed carry
		// could only manufacture a false reject; grade Unauditable and move
		// on until a Fresh boundary re-anchors.
		return a.gradeUnauditable(m, "carry unanchored by earlier unauditable epoch")
	}

	reject := func(code core.RejectCode, reason string) error {
		if m.Degraded != "" && code != core.RejectInternalFault {
			// The collector flagged this epoch's evidence incomplete for an
			// infrastructure reason. A failed audit of incomplete evidence
			// proves nothing — complete evidence might have passed — so the
			// epoch is unauditable, not a server accusation. InternalFault
			// is exempt: that is the auditor's own failure and must reach
			// the supervisor as an error.
			return a.gradeUnauditable(m, fmt.Sprintf("degraded (%s); audit failed [%s]: %s", m.Degraded, code, reason))
		}
		a.mu.Lock()
		a.status.Rejected++
		a.mu.Unlock()
		a.recordVerdict(Verdict{Epoch: m.Seq, Code: code, Reason: reason})
		return &Reject{Epoch: m.Seq, Code: code, Reason: reason}
	}

	if err := a.cfg.Limits.CheckAdviceBytes(len(f.blob)); err != nil {
		return reject(rejectCode(err), err.Error())
	}
	adv, err := advice.UnmarshalBinary(f.blob)
	if err != nil {
		// The advice channel is untrusted end to end: a blob that does not
		// decode — whether the server sent garbage or the disk lost the
		// frame — is a coded rejection, not an infrastructure error.
		return reject(core.RejectMalformedAdvice, err.Error())
	}

	app, _ := a.cfg.Spec.New()
	cfg := verifier.Config{
		App:       app,
		Mode:      a.cfg.Mode,
		Isolation: a.cfg.Spec.Isolation,
		Limits:    a.cfg.Limits,
		Carry:     a.carry,
		Workers:   a.cfg.AuditWorkers,
		Memo:      a.memo,
	}
	st, next, err := verifier.AuditCarry(ctx, cfg, f.tr, adv)
	if err != nil {
		return reject(rejectCode(err), err.Error())
	}

	a.mu.Lock()
	a.carry = next
	a.status.Stats.Add(st)
	a.status.LastAccepted = m.Seq
	a.status.LastProcessed = m.Seq
	a.status.Accepted++
	a.status.LastAudit = time.Since(start) //karousos:nondeterminism-ok audit-latency metric for Status; never part of the verdict
	a.status.TotalAudit += a.status.LastAudit
	cp := checkpoint{LastAccepted: m.Seq, LastProcessed: m.Seq, Carry: next}
	if a.memo != nil {
		cp.Memo = &MemoCounters{
			Hits:      a.status.Stats.MemoHits,
			Misses:    a.status.Stats.MemoMisses,
			Evictions: a.status.Stats.MemoEvictions,
		}
	}
	a.mu.Unlock()
	a.recordVerdict(Verdict{Epoch: m.Seq})

	return a.persistCheckpoint(cp)
}

// gradeUnauditable records an Unauditable verdict for the epoch and puts
// the auditor into unanchored mode: processing advances, accusation does
// not. Even a degraded epoch whose audit *accepts* keeps its accept — this
// path only runs when the audit could not.
func (a *Auditor) gradeUnauditable(m epochlog.Manifest, reason string) error {
	a.mu.Lock()
	a.unauditable = true
	a.carry = nil
	a.status.LastProcessed = m.Seq
	a.status.Unauditable++
	cp := checkpoint{
		LastAccepted:  a.status.LastAccepted,
		LastProcessed: m.Seq,
		Unauditable:   true,
	}
	a.mu.Unlock()
	a.recordVerdict(Verdict{Epoch: m.Seq, Code: core.RejectUnauditable, Reason: reason})
	return a.persistCheckpoint(cp)
}

func (a *Auditor) persistCheckpoint(cp checkpoint) error {
	if a.cfg.Checkpoint == "" {
		return nil
	}
	err := iofault.Retry(context.Background(), a.cfg.Backoff, func() error {
		return writeCheckpoint(a.cfg.fs(), a.cfg.Checkpoint, cp)
	})
	if err != nil {
		return fmt.Errorf("auditd: checkpoint: %w", err)
	}
	return nil
}

func rejectCode(err error) core.RejectCode {
	if code := core.RejectCodeOf(err); code != "" {
		return code
	}
	return core.RejectMalformedAdvice
}

// writeCheckpoint persists atomically: a crash mid-write leaves the previous
// checkpoint, so a restarted auditor re-audits at most one epoch. The
// parent-directory fsync is load-bearing and its failure surfaces — without
// it the rename itself can vanish on power loss, resurrecting a stale
// checkpoint whose carry no longer matches the sealed prefix.
func writeCheckpoint(fsys iofault.FS, path string, cp checkpoint) error {
	blob, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close() //karousos:errladder-ok close-after-error; the write error is the one that surfaces
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //karousos:errladder-ok close-after-error; the fsync error is the one that surfaces
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("checkpoint directory fsync: %w", err)
	}
	return nil
}

// CheckpointProbe classifies what ProbeCheckpointProgress found at the
// checkpoint path. The distinction matters to admission control: "no
// checkpoint yet" means no auditor has been attached, so there is no lag
// signal and the window stays open, while a corrupt checkpoint means an
// auditor exists but its progress marker is unreadable — the auditor will
// quarantine it and restart from zero, so progress *is* known (zero) and
// the window should tighten against the real backlog.
type CheckpointProbe int

const (
	// CheckpointMissing: the file does not exist — no auditor has graded
	// anything (or none is attached).
	CheckpointMissing CheckpointProbe = iota
	// CheckpointOK: the checkpoint decoded; lastProcessed is authoritative.
	CheckpointOK
	// CheckpointCorrupt: the file exists but cannot be read or decoded — a
	// torn write or I/O fault. The attached auditor restarts from zero, so
	// effective progress is zero, not unknown.
	CheckpointCorrupt
)

// ProbeCheckpointProgress reports the newest epoch an auditor process has
// graded, read from its checkpoint file, along with what it found there.
// The probe is advisory — collectors poll it to measure audit lag for
// admission backpressure — so no failure mode surfaces as an error.
func ProbeCheckpointProgress(fsys iofault.FS, path string) (lastProcessed uint64, probe CheckpointProbe) {
	if fsys == nil {
		fsys = iofault.OS
	}
	blob, err := fsys.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return 0, CheckpointMissing //karousos:errladder-ok advisory progress probe; no checkpoint yet reads as missing
	case err != nil:
		return 0, CheckpointCorrupt //karousos:errladder-ok advisory progress probe; an unreadable checkpoint reads as corrupt, not surfaced
	}
	var cp checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil {
		return 0, CheckpointCorrupt //karousos:errladder-ok advisory progress probe; a torn checkpoint reads as corrupt, not surfaced
	}
	if cp.LastProcessed < cp.LastAccepted {
		cp.LastProcessed = cp.LastAccepted
	}
	return cp.LastProcessed, CheckpointOK
}

// ReadCheckpointMemo reports the memo-cache counters an auditor process
// last checkpointed, for the collector's /healthz payload. Advisory like
// the progress probe: ok is false when there is no checkpoint or the
// auditor runs without memoization.
func ReadCheckpointMemo(fsys iofault.FS, path string) (MemoCounters, bool) {
	if fsys == nil {
		fsys = iofault.OS
	}
	blob, err := fsys.ReadFile(path)
	if err != nil {
		return MemoCounters{}, false //karousos:errladder-ok advisory telemetry probe; an unreadable checkpoint reads as no-signal
	}
	var cp checkpoint
	if err := json.Unmarshal(blob, &cp); err != nil || cp.Memo == nil {
		return MemoCounters{}, false //karousos:errladder-ok advisory telemetry probe; a torn or memo-less checkpoint reads as no-signal
	}
	return *cp.Memo, true
}

// ReadCheckpointProgress is the admission-control view of the probe: ok is
// false only when there is no checkpoint at all (no lag signal — the
// window stays open). A corrupt checkpoint reports progress zero with
// ok=true: the attached auditor restarts from zero, so the whole sealed
// prefix is real lag and the window must tighten. Before this
// distinction, a torn checkpoint read as "no auditor", silently releasing
// backpressure exactly when the backlog was at its largest.
func ReadCheckpointProgress(fsys iofault.FS, path string) (lastProcessed uint64, ok bool) {
	last, probe := ProbeCheckpointProgress(fsys, path)
	return last, probe != CheckpointMissing
}

// Run follows the log: it audits sealed epochs as they appear until the
// context is cancelled (returning nil) or an audit rejects or fails
// (returning that error).
func (a *Auditor) Run(ctx context.Context) error {
	ticker := time.NewTicker(a.cfg.Poll)
	defer ticker.Stop()
	for {
		if _, err := a.RunOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		//karousos:nondeterminism-ok poll-loop plumbing; epochs are audited strictly in sequence regardless of which wakeup fires
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}
