package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/verifier"
)

// PipelineOptions configures RunPipeline.
type PipelineOptions struct {
	// Dir is the epoch log directory (required).
	Dir string
	// EpochRequests is the sealing threshold; must be ≥ 1 so epochs seal
	// mid-workload.
	EpochRequests int
	// Mode selects the collected advice and the verifier. Defaults to
	// Karousos.
	Mode advice.Mode
	// Seed seeds the dispatch scheduler.
	Seed int64
	// Limits bounds each epoch's audit.
	Limits verifier.Limits
	// Checkpoint is the auditor's resume file ("" = in-memory).
	Checkpoint string
}

// PipelineResult is RunPipeline's summary.
type PipelineResult struct {
	Addr     string `json:"addr"`
	Served   int    `json:"served"`
	Sealed   int    `json:"sealed"`
	Accepted int    `json:"accepted"`
	Status   Status `json:"status"`
}

// RunPipeline is the end-to-end continuous-audit exercise: it boots the
// HTTP collector on a loopback listener, starts the auditor following the
// epoch log, drives the workload as real HTTP requests — epochs sealing and
// auditing while serving continues — then closes the collector (sealing the
// final partial epoch) and waits for the auditor to drain. It returns once
// every sealed epoch has been audited, or with the first rejection.
func RunPipeline(ctx context.Context, spec harness.AppSpec, reqs []server.Request, opts PipelineOptions) (*PipelineResult, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("auditd: pipeline needs a directory")
	}
	if opts.EpochRequests < 1 {
		opts.EpochRequests = 50
	}
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          spec,
		Dir:           opts.Dir,
		Mode:          opts.Mode,
		EpochRequests: opts.EpochRequests,
		Seed:          opts.Seed,
		Limits:        opts.Limits,
	})
	if err != nil {
		return nil, err
	}
	defer col.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: col.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	aud, err := New(Config{
		Dir:        opts.Dir,
		Spec:       spec,
		Mode:       opts.Mode,
		Limits:     opts.Limits,
		Checkpoint: opts.Checkpoint,
		Poll:       20 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	followCtx, stopFollow := context.WithCancel(ctx)
	defer stopFollow()
	auditErr := make(chan error, 1)
	go func() { auditErr <- aud.Run(followCtx) }()

	res := &PipelineResult{Addr: base}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, r := range reqs {
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			return res, err
		}
		resp, err := client.Post(base+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			return res, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return res, fmt.Errorf("auditd: pipeline invoke: status %d", resp.StatusCode)
		}
		res.Served++
	}
	if err := col.Close(); err != nil {
		return res, err
	}

	sealed, err := epochlog.ListSealed(opts.Dir)
	if err != nil {
		return res, err
	}
	res.Sealed = len(sealed)
	var lastSeq uint64
	if len(sealed) > 0 {
		lastSeq = sealed[len(sealed)-1].Seq
	}

	// Wait for the follower to drain the log (or fail trying).
	for aud.Status().LastAccepted < lastSeq {
		select {
		case err := <-auditErr:
			res.Status = aud.Status()
			if err == nil {
				err = fmt.Errorf("auditd: follower exited at epoch %d of %d", res.Status.LastAccepted, lastSeq)
			}
			return res, err
		case <-ctx.Done():
			res.Status = aud.Status()
			return res, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	stopFollow()
	if err := <-auditErr; err != nil {
		res.Status = aud.Status()
		return res, err
	}
	res.Status = aud.Status()
	res.Accepted = res.Status.Accepted
	return res, nil
}
