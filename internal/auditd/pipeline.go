package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/verifier"
)

// PipelineOptions configures RunPipeline.
type PipelineOptions struct {
	// Dir is the epoch log directory (required).
	Dir string
	// EpochRequests is the sealing threshold; must be ≥ 1 so epochs seal
	// mid-workload.
	EpochRequests int
	// Mode selects the collected advice and the verifier. Defaults to
	// Karousos.
	Mode advice.Mode
	// Seed seeds the dispatch scheduler.
	Seed int64
	// Limits bounds each epoch's audit.
	Limits verifier.Limits
	// Checkpoint is the auditor's resume file ("" = in-memory).
	Checkpoint string
	// FS threads an injectable filesystem through the collector and
	// auditor; nil means the real OS.
	FS iofault.FS
	// MaxRestarts bounds the audit-loop supervisor; 0 takes its default.
	MaxRestarts int
	// AuditWorkers is each epoch audit's parallelism; see Config.AuditWorkers.
	AuditWorkers int
	// MemoMaxBytes enables the cross-epoch re-execution memo cache; see
	// Config.MemoMaxBytes.
	MemoMaxBytes int
}

// PipelineResult is RunPipeline's summary.
type PipelineResult struct {
	Addr        string    `json:"addr"`
	Served      int       `json:"served"`
	Sealed      int       `json:"sealed"`
	Accepted    int       `json:"accepted"`
	Unauditable int       `json:"unauditable"`
	Restarts    int       `json:"restarts"`
	Status      Status    `json:"status"`
	Verdicts    []Verdict `json:"verdicts"`
}

// RunPipeline is the end-to-end continuous-audit exercise: it boots the
// HTTP collector on a loopback listener, starts the auditor following the
// epoch log, drives the workload as real HTTP requests — epochs sealing and
// auditing while serving continues — then closes the collector (sealing the
// final partial epoch) and waits for the auditor to drain. It returns once
// every sealed epoch has been audited, or with the first rejection.
func RunPipeline(ctx context.Context, spec harness.AppSpec, reqs []server.Request, opts PipelineOptions) (*PipelineResult, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("auditd: pipeline needs a directory")
	}
	if opts.EpochRequests < 1 {
		opts.EpochRequests = 50
	}
	// The collector polls the supervisor's audit progress for lag-based
	// backpressure; the supervisor is built after the collector, so the
	// probe reads an atomic pointer and reports "unknown" until it lands.
	var supPtr atomic.Pointer[Supervisor]
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          spec,
		Dir:           opts.Dir,
		Mode:          opts.Mode,
		EpochRequests: opts.EpochRequests,
		Seed:          opts.Seed,
		Limits:        opts.Limits,
		FS:            opts.FS,
		AuditProgress: func() (uint64, bool) {
			s := supPtr.Load()
			if s == nil {
				return 0, false
			}
			st, _ := s.Status()
			return st.LastProcessed, true
		},
	})
	if err != nil {
		return nil, err
	}
	defer col.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: col.Handler()}
	go func() { hs.Serve(ln) }() //karousos:errladder-ok Serve returns ErrServerClosed on the deferred Close
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	sup := NewSupervisor(Config{
		Dir:          opts.Dir,
		Spec:         spec,
		Mode:         opts.Mode,
		Limits:       opts.Limits,
		Checkpoint:   opts.Checkpoint,
		Poll:         20 * time.Millisecond,
		FS:           opts.FS,
		AuditWorkers: opts.AuditWorkers,
		MemoMaxBytes: opts.MemoMaxBytes,
	}, SupervisorOptions{MaxRestarts: opts.MaxRestarts})
	supPtr.Store(sup)
	followCtx, stopFollow := context.WithCancel(ctx)
	defer stopFollow()
	auditErr := make(chan error, 1)
	go func() { auditErr <- sup.Run(followCtx) }()

	res := &PipelineResult{Addr: base}
	client := &http.Client{Timeout: 30 * time.Second}
	for _, r := range reqs {
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			return res, err
		}
		resp, err := client.Post(base+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			return res, err
		}
		resp.Body.Close() //karousos:errladder-ok best-effort drain of the harness client response; the status code is checked below
		if resp.StatusCode != http.StatusOK {
			return res, fmt.Errorf("auditd: pipeline invoke: status %d", resp.StatusCode)
		}
		res.Served++
	}
	if err := col.Close(); err != nil {
		return res, err
	}

	sealed, err := epochlog.ListSealed(opts.Dir)
	if err != nil {
		return res, err
	}
	res.Sealed = len(sealed)
	var lastSeq uint64
	if len(sealed) > 0 {
		lastSeq = sealed[len(sealed)-1].Seq
	}

	// Wait for the follower to drain the log (or fail trying). Draining is
	// measured on LastProcessed: an unauditable tail still counts as graded.
	finish := func() *PipelineResult {
		st, restarts := sup.Status()
		res.Status = st
		res.Restarts = restarts
		res.Verdicts = sup.Verdicts()
		res.Accepted = st.Accepted
		res.Unauditable = st.Unauditable
		return res
	}
	for {
		st, _ := sup.Status()
		if st.LastProcessed >= lastSeq {
			break
		}
		//karousos:nondeterminism-ok harness wait loop; drain progress is re-read from Status on every wakeup
		select {
		case err := <-auditErr:
			finish()
			if err == nil {
				err = fmt.Errorf("auditd: follower exited at epoch %d of %d", res.Status.LastProcessed, lastSeq)
			}
			return res, err
		case <-ctx.Done():
			finish()
			return res, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	stopFollow()
	if err := <-auditErr; err != nil {
		finish()
		return res, err
	}
	finish()
	return res, nil
}
