package auditd

import (
	"context"
	"fmt"
	"testing"

	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
)

// recurringGets is one epoch's worth of a recurring read-only workload:
// identical inputs every epoch, so once the carry reaches a fixed point
// (immediately, for reads) every later epoch's tag-group closures repeat
// bit-for-bit and the memo cache should serve them.
func recurringGets() []server.Request {
	in := func(kv ...any) server.Request { return server.Request{Input: value.Map(kv...)} }
	return []server.Request{
		in("op", "get", "day", "mon"),
		in("op", "get", "day", "tue"),
		in("op", "get", "day", "wed"),
		in("op", "get", "day", "thu"),
	}
}

// TestMemoWarmAcrossEpochs: four epochs of an identical read-only workload
// audited through one auditor. The warm-up takes two epochs — epoch 1
// audits with no carry and epoch 2 is the first with an injected carry, so
// their input closures legitimately differ — after which the carry is at
// its fixed point and every later epoch must be served entirely from the
// memo cache, with the verdict and non-memo Stats identical to a memo-off
// auditor over the same log.
func TestMemoWarmAcrossEpochs(t *testing.T) {
	dir := t.TempDir()
	col, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	for epoch := 0; epoch < 4; epoch++ {
		driveHTTP(t, ts, recurringGets())
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	cold, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cold.RunOnce(context.Background()); err != nil || n != 4 {
		t.Fatalf("memo-off auditor accepted %d epochs (err %v), want 4", n, err)
	}

	ckpt := dir + "/audit.ckpt"
	warm, err := New(Config{Dir: dir, MemoMaxBytes: 64 << 20, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := warm.RunOnce(context.Background()); err != nil || n != 4 {
		t.Fatalf("memo-on auditor accepted %d epochs (err %v), want 4", n, err)
	}

	ws := warm.Status().Stats
	if ws.Groups%4 != 0 || ws.Groups == 0 {
		t.Fatalf("Groups = %d across 4 identical epochs, want a positive multiple of 4", ws.Groups)
	}
	perEpoch := ws.Groups / 4
	if ws.MemoMisses != 2*perEpoch || ws.MemoHits != 2*perEpoch {
		t.Fatalf("hits=%d misses=%d; want epochs 1-2 cold (%d) and epochs 3-4 all-hit (%d)",
			ws.MemoHits, ws.MemoMisses, 2*perEpoch, 2*perEpoch)
	}
	got := fmt.Sprintf("%+v", ws.ZeroMemo())
	want := fmt.Sprintf("%+v", cold.Status().Stats.ZeroMemo())
	if got != want {
		t.Fatalf("memo-on Stats diverged from memo-off:\n  off: %s\n  on:  %s", want, got)
	}

	// The durable checkpoint doubles as the memo telemetry channel: the
	// collector's /healthz probes it with ReadCheckpointMemo, so the counters
	// written on the last accept must round-trip.
	mc, ok := ReadCheckpointMemo(nil, ckpt)
	if !ok || mc.Hits != ws.MemoHits || mc.Misses != ws.MemoMisses {
		t.Fatalf("checkpoint memo counters = %+v (ok=%v), want hits=%d misses=%d",
			mc, ok, ws.MemoHits, ws.MemoMisses)
	}
}

// TestMemoFreshBoundaryInvalidates: a collector restart seals a Fresh epoch
// and the auditor drops the memo cache there, exactly as it drops the
// carry. The workload is read-only and identical on both sides of the
// restart, so without the reset the first post-restart epoch (audited with
// nil carry) would hit the entries the no-carry first epoch published —
// the post-restart cold misses prove the invalidation, not key divergence.
func TestMemoFreshBoundaryInvalidates(t *testing.T) {
	dir := t.TempDir()
	col1, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newLoopback(t, col1)
	driveHTTP(t, ts1, recurringGets()) // epoch 1: no carry
	driveHTTP(t, ts1, recurringGets()) // epoch 2: first carried epoch
	driveHTTP(t, ts1, recurringGets()) // epoch 3: carry fixed point — hits
	if err := col1.Close(); err != nil {
		t.Fatal(err)
	}
	col2, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newLoopback(t, col2)
	driveHTTP(t, ts2, recurringGets()) // epoch 4: sealed Fresh, no carry
	driveHTTP(t, ts2, recurringGets()) // epoch 5: first carried epoch again
	driveHTTP(t, ts2, recurringGets()) // epoch 6: back at the fixed point
	if err := col2.Close(); err != nil {
		t.Fatal(err)
	}

	aud, err := New(Config{Dir: dir, MemoMaxBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := aud.RunOnce(context.Background()); err != nil || n != 6 {
		t.Fatalf("accepted %d epochs (err %v), want 6", n, err)
	}
	st := aud.Status().Stats
	if st.Groups%6 != 0 || st.Groups == 0 {
		t.Fatalf("Groups = %d across 6 identical epochs, want a positive multiple of 6", st.Groups)
	}
	perEpoch := st.Groups / 6
	// Only epochs 3 and 6 hit. Epochs 1-2 are the cold ramp; the Fresh
	// boundary then resets the cache, so epoch 4 misses (it would have hit
	// epoch 1's entries — same nil-carry closure — had the cache survived)
	// and epoch 5 re-ramps the carried prefix before epoch 6 hits again.
	if st.MemoHits != 2*perEpoch || st.MemoMisses != 4*perEpoch {
		t.Fatalf("hits=%d misses=%d; want hits only at the two fixed-point epochs (%d) and %d misses",
			st.MemoHits, st.MemoMisses, 2*perEpoch, 4*perEpoch)
	}
}
