package auditd

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/verifier"
)

// Shard-parallel audit mode. A sharded deployment produces one epoch log
// per shard; the cross-epoch carry chains *within* a shard but never
// across shards, so the per-shard audits are independent up to the final
// merge check. Sharded exploits that: one audit lane per shard-log
// directory, each a self-supervised Auditor with its own checkpoint and
// carry, run concurrently up to the lane budget, then joined by the
// cross-shard checks (routing and partition, internal/shard) into one
// combined verdict. Lanes fail independently — a restartable fault
// rebuilds only that lane from its own checkpoint — and lane scheduling
// never reaches the verdict: each lane's outcome is a deterministic
// function of its shard's evidence, and the merge is a deterministic
// function of the outcomes.

// ShardedConfig describes a shard-parallel auditor.
type ShardedConfig struct {
	// Root is the topology root holding shardmap.json and the shard-NN
	// epoch-log directories. It may be left empty when Map and Dirs are
	// both set explicitly.
	Root string
	// Map is the shard topology; nil loads it from Root's shardmap.json.
	Map *shard.Map
	// Dirs lists the per-shard epoch-log directories, indexed by shard.
	// Empty derives them from Root and the map.
	Dirs []string
	// Lanes bounds how many shard audits run concurrently. <=0 means one
	// lane per shard. The combined verdict is identical at every setting —
	// the sharded differential tests pin this.
	Lanes int
	// CheckpointDir, when set, holds one resume file per lane
	// (checkpoint-shard-NN.json). Empty keeps all cursors in memory.
	CheckpointDir string
	// Limits bounds each epoch's audit, as in Config.
	Limits verifier.Limits
	// AuditWorkers is each epoch audit's parallelism, as in Config.
	AuditWorkers int
	// MemoMaxBytes enables the re-execution memo cache per lane, as in
	// Config — one independent cache per shard, since tag-group closures
	// never repeat across shards (rids are routed disjointly). A lane
	// rebuild after a restartable fault starts with a cold cache: the memo
	// is an in-memory cache, so losing it costs re-execution, never
	// correctness.
	MemoMaxBytes int
	// MaxRestarts bounds per-lane incarnation rebuilds after restartable
	// failures, as in SupervisorOptions. Defaults to 3.
	MaxRestarts int
	// Poll is the follow-mode polling interval. Defaults to 200ms.
	Poll time.Duration
	// FS and Backoff are as in Config.
	FS      iofault.FS
	Backoff iofault.Backoff
	// OnVerdict, when set, is called with every per-epoch verdict as a
	// lane reaches it, tagged with the lane's shard index.
	OnVerdict func(shardIndex int, v Verdict)
}

func (cfg ShardedConfig) fs() iofault.FS {
	if cfg.FS == nil {
		return iofault.OS
	}
	return cfg.FS
}

// ShardReport is one lane's observable state inside a ShardedResult.
type ShardReport struct {
	Shard int    `json:"shard"`
	Dir   string `json:"dir"`
	// Code/Reason mirror the lane's Outcome: "" accepted-so-far,
	// Unauditable for an unanchored tail, any other code a rejection that
	// halted the lane.
	Code     core.RejectCode `json:"code,omitempty"`
	Reason   string          `json:"reason,omitempty"`
	Status   Status          `json:"status"`
	Restarts int             `json:"restarts,omitempty"`
	Verdicts []Verdict       `json:"verdicts,omitempty"`
}

// ShardedResult is the combined state of every lane plus the merged
// verdict.
type ShardedResult struct {
	Shards []ShardReport     `json:"shards"`
	Merge  shard.MergeResult `json:"merge"`
	// Stats sums every lane's accepted-audit work counters.
	Stats verifier.Stats `json:"stats"`
}

// Accepted reports whether the merged verdict cleared the topology.
func (r ShardedResult) Accepted() bool { return r.Merge.Accepted() }

// lane is one shard's audit pipeline: an Auditor plus its mini-supervision
// state. A pass (step) exclusively owns its lane; the mutex covers
// concurrent snapshots from Result.
type lane struct {
	shard int
	dir   string
	cfg   Config // per-incarnation Auditor config

	mu       sync.Mutex
	aud      *Auditor // current incarnation; nil between incarnations
	restarts int
	// stats accumulates retired incarnations' work counters; the live
	// incarnation's are added on snapshot.
	stats verifier.Stats
	last  Status // last retired incarnation's counters
	// routedThrough is the newest epoch whose trace passed the routing
	// check.
	routedThrough uint64
	// halted is the lane's sticky verdict: a rejection (the lane stops
	// grading — re-running cannot change a verdict about the server).
	halted   *Reject
	verdicts []Verdict
}

// Sharded audits a sharded topology: one lane per shard directory.
type Sharded struct {
	cfg   ShardedConfig
	m     shard.Map
	lanes []*lane
}

// NewSharded resolves the topology and builds one lane per shard. Lane
// auditors are built lazily (per incarnation), resolving each shard's app
// and mode from that directory's sidecar exactly as a single-directory
// auditor would.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	var m shard.Map
	switch {
	case cfg.Map != nil:
		m = *cfg.Map
	case cfg.Root != "":
		var err error
		if m, err = shard.ReadMap(cfg.Root); err != nil {
			return nil, fmt.Errorf("auditd: sharded: %w", err)
		}
	default:
		return nil, errors.New("auditd: sharded: need a Root or an explicit Map")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	dirs := cfg.Dirs
	if len(dirs) == 0 {
		if cfg.Root == "" {
			return nil, errors.New("auditd: sharded: need a Root or explicit Dirs")
		}
		dirs = m.Dirs(cfg.Root)
	}
	if len(dirs) != m.Shards {
		return nil, fmt.Errorf("auditd: sharded: %d shard dirs for a %d-shard map", len(dirs), m.Shards)
	}
	if cfg.Lanes <= 0 || cfg.Lanes > m.Shards {
		cfg.Lanes = m.Shards
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.CheckpointDir != "" {
		// The directory is this config's own concept (one resume file per
		// lane lives inside it), so creating it is this constructor's job —
		// lanes must not burn their restart budget on a missing parent.
		if err := cfg.fs().MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("auditd: sharded: checkpoint dir: %w", err)
		}
	}
	s := &Sharded{cfg: cfg, m: m}
	for i, dir := range dirs {
		l := &lane{shard: i, dir: dir}
		l.cfg = Config{
			Dir:          dir,
			Limits:       cfg.Limits,
			AuditWorkers: cfg.AuditWorkers,
			MemoMaxBytes: cfg.MemoMaxBytes,
			FS:           cfg.FS,
			Backoff:      cfg.Backoff,
		}
		if cfg.CheckpointDir != "" {
			l.cfg.Checkpoint = filepath.Join(cfg.CheckpointDir, fmt.Sprintf("checkpoint-shard-%02d.json", i))
		}
		l.cfg.OnVerdict = func(v Verdict) {
			l.mu.Lock()
			l.verdicts = append(l.verdicts, v)
			l.mu.Unlock()
			if cfg.OnVerdict != nil {
				cfg.OnVerdict(l.shard, v)
			}
		}
		s.lanes = append(s.lanes, l)
	}
	return s, nil
}

// RunOnce drains every lane once: each lane routing-checks and audits all
// currently sealed epochs past its cursor, restarting itself (up to
// MaxRestarts) on restartable failures. Lanes run concurrently up to the
// lane budget; the pass returns how many epochs were graded across all
// lanes and the first infrastructure error by shard order. Lane verdicts
// — including rejections — are not errors here; they surface through
// Result.
func (s *Sharded) RunOnce(ctx context.Context) (int, error) {
	type stepResult struct {
		n   int
		err error
	}
	results := make([]stepResult, len(s.lanes))
	sem := make(chan struct{}, s.cfg.Lanes)
	var wg sync.WaitGroup
	for i := range s.lanes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n, err := s.lanes[i].step(ctx, s.m, s.cfg.MaxRestarts)
			results[i] = stepResult{n: n, err: err}
		}(i)
	}
	wg.Wait()
	processed := 0
	for i := range results {
		processed += results[i].n
	}
	for i := range results {
		if results[i].err != nil {
			return processed, fmt.Errorf("auditd: sharded: shard %d: %w", i, results[i].err)
		}
	}
	return processed, nil
}

// Run follows all shard logs until the context is cancelled, polling like
// the single-directory follower. Halted lanes stop grading but the rest
// keep following — one misbehaving shard must not blind the audit of the
// others; the combined verdict carries the rejection either way.
func (s *Sharded) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.cfg.Poll)
	defer ticker.Stop()
	for {
		if _, err := s.RunOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		//karousos:nondeterminism-ok poll-loop plumbing; each lane grades its epochs strictly in sequence regardless of which wakeup fires
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
	}
}

// Audit is the one-shot entry point: drain every lane over the currently
// sealed epochs, then merge. Infrastructure errors (a lane past its
// restart budget, an unreadable trusted channel) return as errors; every
// graded outcome — accept, reject, unauditable, conflict — is in the
// result.
func (s *Sharded) Audit(ctx context.Context) (ShardedResult, error) {
	if _, err := s.RunOnce(ctx); err != nil {
		return ShardedResult{}, err
	}
	return s.Result(), nil
}

// Result snapshots every lane and composes the combined verdict via the
// cross-shard merge check.
func (s *Sharded) Result() ShardedResult {
	res := ShardedResult{Shards: make([]ShardReport, len(s.lanes))}
	outs := make([]shard.Outcome, len(s.lanes))
	for i, l := range s.lanes {
		rep, out := l.snapshot()
		res.Shards[i] = rep
		res.Stats.Add(rep.Status.Stats)
		outs[i] = out
	}
	res.Merge = shard.Merge(s.m, outs)
	return res
}

// step is one lane pass: routing-check newly sealed epochs, then audit
// them, rebuilding the lane's auditor from its checkpoint after
// restartable failures. The caller owns the lane for the duration.
func (l *lane) step(ctx context.Context, m shard.Map, maxRestarts int) (int, error) {
	if l.haltedNow() != nil {
		return 0, nil
	}
	// Routing first, in epoch order: a trace carrying a request the map
	// routes elsewhere poisons the shard's whole evidence stream — its
	// carry may embed state that belongs to another shard — so it is
	// checked before that evidence can shape a verdict. The check order is
	// fixed (routing, then audit, per pass) so the lane's outcome does not
	// depend on how sealing interleaved with audit passes.
	if err := l.checkRouting(ctx, m); err != nil {
		return 0, err
	}
	if l.haltedNow() != nil {
		return 0, nil
	}

	processed := 0
	for attempt := 0; ; attempt++ {
		aud := l.current()
		if aud == nil {
			var err error
			if aud, err = New(l.cfg); err != nil {
				// Building an auditor needs only the trusted sidecar and the
				// checkpoint: failure is infrastructure, and retrying within
				// the same pass cannot help.
				return processed, err
			}
			l.install(aud)
		}
		n, err := aud.RunOnce(ctx)
		processed += n
		if err == nil {
			return processed, nil
		}
		if ctx.Err() != nil {
			return processed, err
		}
		var rej *Reject
		if errors.As(err, &rej) && rej.Code != core.RejectInternalFault {
			l.halt(rej)
			return processed, nil
		}
		// InternalFault or infrastructure: discard the incarnation (its
		// in-memory state may be poisoned) and rebuild from the durable
		// checkpoint, like the single-lane supervisor.
		l.retire(aud)
		if attempt >= maxRestarts {
			return processed, fmt.Errorf("lane restart budget (%d) exhausted: %w", maxRestarts, err)
		}
	}
}

// checkRouting re-derives shard assignment for every request in newly
// sealed epochs' traces. A violation halts the lane with ShardConflict —
// the trace is trusted, so a misrouted request is evidence, not a grading
// gap.
func (l *lane) checkRouting(ctx context.Context, m shard.Map) error {
	fsys := l.cfg.fs()
	var sealed []epochlog.Manifest
	err := iofault.Retry(ctx, l.cfg.Backoff, func() error {
		var lerr error
		sealed, lerr = epochlog.ListSealedFS(fsys, l.dir)
		return lerr
	})
	if err != nil {
		return err
	}
	opt := epochlog.Options{MaxAdviceBytes: l.cfg.Limits.MaxAdviceBytes, FS: l.cfg.FS}
	for _, man := range sealed {
		if man.Seq <= l.routedThroughNow() {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		var tr *trace.Trace
		err := iofault.Retry(ctx, l.cfg.Backoff, func() error {
			var rerr error
			tr, _, _, rerr = epochlog.ReadSealed(l.dir, man.Seq, opt)
			return rerr
		})
		if err != nil {
			return fmt.Errorf("routing check, epoch %d: %w", man.Seq, err)
		}
		if rerr := m.CheckRouting(l.shard, tr); rerr != nil {
			l.halt(&Reject{Epoch: man.Seq, Code: core.RejectShardConflict, Reason: rerr.Error()})
			return nil
		}
		l.advanceRouted(man.Seq)
	}
	return nil
}

func (l *lane) haltedNow() *Reject {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.halted
}

func (l *lane) halt(rej *Reject) {
	l.mu.Lock()
	if l.halted == nil {
		l.halted = rej
		l.verdicts = append(l.verdicts, Verdict{Epoch: rej.Epoch, Code: rej.Code, Reason: rej.Reason})
	}
	l.mu.Unlock()
}

func (l *lane) current() *Auditor {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.aud
}

func (l *lane) install(a *Auditor) {
	l.mu.Lock()
	l.aud = a
	l.mu.Unlock()
}

func (l *lane) retire(a *Auditor) {
	st := a.Status()
	l.mu.Lock()
	l.stats.Add(st.Stats)
	l.last = st
	l.restarts++
	l.aud = nil
	l.mu.Unlock()
}

func (l *lane) routedThroughNow() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.routedThrough
}

func (l *lane) advanceRouted(seq uint64) {
	l.mu.Lock()
	if seq > l.routedThrough {
		l.routedThrough = seq
	}
	l.mu.Unlock()
}

// snapshot builds the lane's report and its merge-check outcome.
func (l *lane) snapshot() (ShardReport, shard.Outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.last
	var carry *verifier.CarryState
	unanchored := false
	if l.aud != nil {
		st = l.aud.Status()
		carry = l.aud.Carry()
		unanchored = l.aud.Unanchored()
	}
	st.Stats.Add(l.stats)
	rep := ShardReport{
		Shard:    l.shard,
		Dir:      l.dir,
		Status:   st,
		Restarts: l.restarts,
		Verdicts: append([]Verdict(nil), l.verdicts...),
	}
	out := shard.Outcome{Shard: l.shard, Dir: l.dir}
	switch {
	case l.halted != nil:
		rep.Code, rep.Reason = l.halted.Code, l.halted.Reason
		out.Code, out.Reason = l.halted.Code, l.halted.Reason
	case unanchored:
		rep.Code = core.RejectUnauditable
		rep.Reason = fmt.Sprintf("carry unanchored after epoch %d", st.LastProcessed)
		out.Code, out.Reason = rep.Code, rep.Reason
		out.Unanchored = true
	default:
		out.Carry = carry
	}
	return rep, out
}
