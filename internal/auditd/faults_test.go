package auditd

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
)

var quietBackoff = iofault.Backoff{Sleep: func(time.Duration) {}}

// sealEpochs drives n requests through a collector on cfs, sealing every
// epochRequests, and closes it cleanly.
func sealEpochs(t *testing.T, dir string, cfs iofault.FS, n, epochRequests int) {
	t.Helper()
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          harness.MOTDApp(),
		Dir:           dir,
		EpochRequests: epochRequests,
		FS:            cfs,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	defer ts.Close()
	driveHTTP(t, ts, requestsFor(harness.MOTDApp(), n, 7))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointDirFsyncFailureSurfaces is the regression test for the
// checkpoint durability hole: the parent-directory fsync after the rename
// must be able to fail the write, not be swallowed.
func TestCheckpointDirFsyncFailureSurfaces(t *testing.T) {
	dir := t.TempDir()
	inj := iofault.NewInjector(nil)
	cp := checkpoint{LastAccepted: 3, LastProcessed: 3}
	path := filepath.Join(dir, "auditd.ckpt")
	if err := writeCheckpoint(inj, path, cp); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	if inj.Counts()[iofault.CallSyncDir] != 1 {
		t.Fatalf("writeCheckpoint issued %d directory fsyncs, want 1", inj.Counts()[iofault.CallSyncDir])
	}

	// File fsync passes (After:1), the directory fsync fires the fault.
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: 1, After: 1}); err != nil {
		t.Fatal(err)
	}
	err := writeCheckpoint(inj, path, checkpoint{LastAccepted: 4, LastProcessed: 4})
	if err == nil || !strings.Contains(err.Error(), "directory fsync") {
		t.Fatalf("writeCheckpoint swallowed the directory fsync failure: %v", err)
	}
}

// TestAuditorRetriesTransientReads: transient EIO on the epoch reads is
// absorbed by the retry loop and every epoch still accepts.
func TestAuditorRetriesTransientReads(t *testing.T) {
	dir := t.TempDir()
	sealEpochs(t, dir, nil, 20, 10)

	inj := iofault.NewInjector(nil)
	if err := inj.ArmSpec("transient-eio:11:3", ""); err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Dir: dir, FS: inj, Backoff: quietBackoff})
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.RunOnce(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("RunOnce through transient reads = %d, %v; want 2 accepts", n, err)
	}
	if fired := inj.Fired()[iofault.OpTransientEIO]; fired != 3 {
		t.Fatalf("fired %d transient faults, want the whole schedule consumed", fired)
	}
	st := a.Status()
	if st.Accepted != 2 || st.Rejected != 0 || st.Unauditable != 0 {
		t.Fatalf("status after retried reads: %+v", st)
	}
}

// TestCorruptCheckpointQuarantinedNotFatal: a torn checkpoint file must not
// wedge the auditor — it is quarantined and the audit restarts from zero,
// reaching the same verdicts.
func TestCorruptCheckpointQuarantinedNotFatal(t *testing.T) {
	dir := t.TempDir()
	sealEpochs(t, dir, nil, 20, 10)
	ckpt := filepath.Join(t.TempDir(), "auditd.ckpt")
	if err := os.WriteFile(ckpt, []byte(`{"lastAccepted": 2, "carry`), 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := New(Config{Dir: dir, Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("New on corrupt checkpoint: %v", err)
	}
	if _, err := os.Stat(ckpt + ".corrupt"); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}
	n, err := a.RunOnce(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("audit from zero after quarantine = %d, %v; want both epochs", n, err)
	}
	// The rewritten checkpoint is valid again.
	a2, err := New(Config{Dir: dir, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if st := a2.Status(); st.LastProcessed != 2 {
		t.Fatalf("resumed checkpoint LastProcessed = %d, want 2", st.LastProcessed)
	}
}

// TestOldCheckpointFormatStillResumes: PR-2 checkpoints lack LastProcessed
// and Unauditable; loading one must treat LastAccepted as the cursor.
func TestOldCheckpointFormatStillResumes(t *testing.T) {
	dir := t.TempDir()
	sealEpochs(t, dir, nil, 20, 10)
	ckpt := filepath.Join(t.TempDir(), "auditd.ckpt")
	if err := os.WriteFile(ckpt, []byte(`{"lastAccepted": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Dir: dir, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Status(); st.LastProcessed != 1 || st.LastAccepted != 1 {
		t.Fatalf("old-format resume: %+v", st)
	}
}

// TestDegradedEpochGradesUnauditable: an epoch the collector flagged
// degraded whose audit fails is graded Unauditable — never rejected — and
// later epochs stay unauditable until a Fresh boundary re-anchors.
func TestDegradedEpochGradesUnauditable(t *testing.T) {
	dir := t.TempDir()
	// Epoch 1 seals clean. Epoch 2's advice appends are eaten by ENOSPC, so
	// it seals degraded with lost advice. Epoch 3 seals clean but follows
	// the unauditable epoch without a Fresh boundary.
	cinj := iofault.NewInjector(nil)
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          harness.MOTDApp(),
		Dir:           dir,
		EpochRequests: 10,
		FS:            cinj,
		Backoff:       quietBackoff,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	reqs := requestsFor(harness.MOTDApp(), 30, 7)
	driveHTTP(t, ts, reqs[:10])
	if err := cinj.Arm(iofault.OpENOSPC, iofault.ArmConfig{Times: -1, PathContains: ".advice"}); err != nil {
		t.Fatal(err)
	}
	driveHTTP(t, ts, reqs[10:20])
	cinj.Heal()
	driveHTTP(t, ts, reqs[20:])
	ts.Close()
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	n, err := a.RunOnce(context.Background())
	if err != nil || n != 3 {
		t.Fatalf("RunOnce = %d, %v; want all 3 epochs graded without error", n, err)
	}
	vs := a.Verdicts()
	if len(vs) != 3 {
		t.Fatalf("verdicts = %+v", vs)
	}
	if !vs[0].Accepted() {
		t.Fatalf("clean epoch 1 not accepted: %+v", vs[0])
	}
	if vs[1].Code != core.RejectUnauditable || !strings.Contains(vs[1].Reason, "degraded") {
		t.Fatalf("degraded epoch 2 verdict: %+v", vs[1])
	}
	if vs[2].Code != core.RejectUnauditable || !strings.Contains(vs[2].Reason, "unanchored") {
		t.Fatalf("epoch 3 after unauditable carry: %+v", vs[2])
	}
	st := a.Status()
	if st.Rejected != 0 {
		t.Fatalf("infrastructure fault produced a rejection: %+v", st)
	}
	if st.LastAccepted != 1 || st.LastProcessed != 3 || st.Unauditable != 2 {
		t.Fatalf("status: %+v", st)
	}
}

// TestFreshBoundaryReanchorsAfterUnauditable: a collector restart (Fresh
// manifest) after an unauditable stretch lets the auditor grade again.
func TestFreshBoundaryReanchorsAfterUnauditable(t *testing.T) {
	dir := t.TempDir()
	cinj := iofault.NewInjector(nil)
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          harness.MOTDApp(),
		Dir:           dir,
		EpochRequests: 10,
		FS:            cinj,
		Backoff:       quietBackoff,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	reqs := requestsFor(harness.MOTDApp(), 20, 7)
	driveHTTP(t, ts, reqs[:10])
	// Epoch 2 degrades, then the collector crashes with epoch 2 sealed and
	// nothing stranded.
	if err := cinj.Arm(iofault.OpENOSPC, iofault.ArmConfig{Times: -1, PathContains: ".advice"}); err != nil {
		t.Fatal(err)
	}
	driveHTTP(t, ts, reqs[10:20])
	ts.Close()
	if err := col.Crash(); err != nil {
		t.Fatal(err)
	}

	// Restart: epoch 3 begins Fresh and seals clean.
	col2, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newLoopback(t, col2)
	driveHTTP(t, ts2, requestsFor(harness.MOTDApp(), 10, 8))
	ts2.Close()
	if err := col2.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := a.RunOnce(context.Background()); err != nil || n != 3 {
		t.Fatalf("RunOnce = %d, %v", n, err)
	}
	vs := a.Verdicts()
	if len(vs) != 3 || !vs[0].Accepted() || vs[1].Code != core.RejectUnauditable || !vs[2].Accepted() {
		t.Fatalf("verdicts across fresh boundary: %+v", vs)
	}
}

// TestSupervisorRestartsOnInfraError: an incarnation dying on an
// infrastructure failure (checkpoint fsync) is restarted from the durable
// checkpoint and finishes the backlog with no verdict lost or repeated.
func TestSupervisorRestartsOnInfraError(t *testing.T) {
	dir := t.TempDir()
	sealEpochs(t, dir, nil, 30, 10)
	ckpt := filepath.Join(t.TempDir(), "auditd.ckpt")

	inj := iofault.NewInjector(nil)
	// The second checkpoint write's file fsync fails, killing the first
	// incarnation after epoch 2 was audited but before it was recorded.
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: 1, After: 2, PathContains: ".ckpt"}); err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor(Config{
		Dir:        dir,
		Checkpoint: ckpt,
		FS:         inj,
		Backoff:    quietBackoff,
		Poll:       5 * time.Millisecond,
	}, SupervisorOptions{MaxRestarts: 3, Backoff: iofault.Backoff{Base: time.Millisecond}})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()
	deadline := time.After(10 * time.Second)
	for {
		st, _ := sup.Status()
		if st.LastProcessed >= 3 {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("supervisor exited early: %v", err)
		case <-deadline:
			t.Fatal("supervisor never drained the log")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	_, restarts := sup.Status()
	if restarts != 1 {
		t.Fatalf("restarts = %d, want exactly 1", restarts)
	}
	// Epoch 2's checkpoint died after its audit: the restarted incarnation
	// re-grades epoch 2, so it appears twice with the same verdict — the
	// determinism invariant — and the accepted set is 1,2,3.
	accepted := map[uint64]int{}
	for _, v := range sup.Verdicts() {
		if !v.Accepted() {
			t.Fatalf("infra fault produced non-accept verdict: %+v", v)
		}
		accepted[v.Epoch]++
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if accepted[seq] == 0 {
			t.Fatalf("epoch %d never graded: %v", seq, accepted)
		}
	}
}

// TestSupervisorStopsOnHonestReject: a real rejection must pass through the
// supervisor untouched — restarting cannot and must not change a verdict.
func TestSupervisorStopsOnHonestReject(t *testing.T) {
	dir := t.TempDir()
	sealEpochs(t, dir, nil, 10, 10)
	// Corrupt the advice after sealing: a malformed blob on a non-degraded
	// epoch is an honest reject.
	matches, err := filepath.Glob(filepath.Join(dir, "*.advice"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no advice files: %v %v", matches, err)
	}
	if err := os.WriteFile(matches[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	sup := NewSupervisor(Config{Dir: dir, Poll: 5 * time.Millisecond}, SupervisorOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = sup.Run(ctx)
	var rej *Reject
	if !errors.As(err, &rej) {
		t.Fatalf("supervisor returned %v, want the rejection", err)
	}
	if _, restarts := sup.Status(); restarts != 0 {
		t.Fatalf("supervisor restarted %d times on an honest reject", restarts)
	}
}
