package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/workload"
)

func requestsFor(spec harness.AppSpec, n int, seed int64) []server.Request {
	switch spec.Name {
	case "motd":
		return workload.MOTD(n, workload.Mixed, seed)
	case "stacks":
		return workload.Stacks(n, workload.Mixed, seed, workload.DefaultStacksOptions())
	default:
		return workload.Wiki(n, seed)
	}
}

// TestPipelineAllAppsAccept is the tentpole E2E: every application served
// through the HTTP collector with epochs sealing mid-workload, the follower
// auditing while serving continues, and every epoch accepting.
func TestPipelineAllAppsAccept(t *testing.T) {
	for _, spec := range []harness.AppSpec{harness.MOTDApp(), harness.StacksApp(), harness.WikiApp()} {
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunPipeline(context.Background(), spec, requestsFor(spec, 60, 9), PipelineOptions{
				Dir:           t.TempDir(),
				EpochRequests: 20,
				Seed:          42,
			})
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}
			if res.Served != 60 {
				t.Errorf("served %d, want 60", res.Served)
			}
			if res.Sealed != 3 {
				t.Errorf("sealed %d epochs, want 3", res.Sealed)
			}
			if res.Accepted != res.Sealed || res.Status.Rejected != 0 {
				t.Errorf("accepted %d of %d (rejected %d)", res.Accepted, res.Sealed, res.Status.Rejected)
			}
		})
	}
}

// newLoopback serves the collector on an httptest server torn down with
// the test.
func newLoopback(t *testing.T, col *collectorhttp.Collector) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(col.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// driveHTTP posts each request's input through the collector's /invoke
// endpoint.
func driveHTTP(t *testing.T, ts *httptest.Server, reqs []server.Request) {
	t.Helper()
	for _, r := range reqs {
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke: status %d", resp.StatusCode)
		}
	}
}

// TestCorruptedAdviceRejectsWithCode: corrupting a sealed epoch's advice
// with each faultinject byte operator produces a machine-readable rejection
// (almost always MalformedAdvice — the blob no longer decodes), never a
// panic or an accept.
func TestCorruptedAdviceRejectsWithCode(t *testing.T) {
	ref := t.TempDir()
	spec := harness.WikiApp()
	res, err := RunPipeline(context.Background(), spec, requestsFor(spec, 40, 9), PipelineOptions{
		Dir: ref, EpochRequests: 20, Seed: 42,
	})
	if err != nil || res.Sealed < 2 {
		t.Fatalf("pipeline: sealed %d, err %v", res.Sealed, err)
	}

	for _, op := range faultinject.Catalogue() {
		if op.Kind != faultinject.KindBytes {
			continue
		}
		t.Run(op.Name, func(t *testing.T) {
			dir := t.TempDir()
			ents, err := os.ReadDir(ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, ent := range ents {
				data, err := os.ReadFile(filepath.Join(ref, ent.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, ent.Name()), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			target := filepath.Join(dir, "ep000002.advice")
			wire, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			mutated, err := op.Apply(7, wire)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(target, mutated, 0o644); err != nil {
				t.Fatal(err)
			}

			aud, err := New(Config{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			accepted, err := aud.RunOnce(context.Background())
			if err == nil {
				// The operator may happen to produce a decodable blob that
				// still matches the trace (e.g. a truncation landing on the
				// frame boundary); that counts as no corruption applied.
				if string(mutated) == string(wire) {
					return
				}
				t.Fatalf("corrupted epoch accepted (%d accepted)", accepted)
			}
			var rej *Reject
			if !errors.As(err, &rej) {
				t.Fatalf("corruption produced a non-reject error: %v", err)
			}
			if rej.Epoch != 2 || rej.Code == "" || rej.Code == core.RejectInternalFault {
				t.Fatalf("reject = %+v, want coded rejection of epoch 2", rej)
			}
			if accepted != 1 {
				t.Errorf("accepted %d epochs before the reject, want 1", accepted)
			}
		})
	}
}

// TestCollectorRestartAuditsAccept: restarting the collector rebuilds the
// application from scratch. The restart boundary is recorded on the trusted
// channel (Manifest.Fresh), and the auditor must drop carried prior-epoch
// state there: with stale carry, the post-restart epochs — whose responses
// reflect the rebuilt state, not the pre-restart writes — would falsely
// reject.
func TestCollectorRestartAuditsAccept(t *testing.T) {
	dir := t.TempDir()
	spec := harness.MOTDApp()
	in := func(kv ...any) server.Request { return server.Request{Input: value.Map(kv...)} }

	col1, err := collectorhttp.New(collectorhttp.Config{Spec: spec, Dir: dir, EpochRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newLoopback(t, col1)
	driveHTTP(t, ts1, []server.Request{
		in("op", "set", "scope", "always", "msg", "pre-restart"),
		in("op", "get", "day", "mon"), // epoch 1 seals
		in("op", "get", "day", "tue"),
	})
	if err := col1.Close(); err != nil { // seals epoch 2
		t.Fatal(err)
	}

	// Restart: the "pre-restart" write lives only in epochs 1–2's history;
	// the rebuilt server answers from default state.
	col2, err := collectorhttp.New(collectorhttp.Config{Spec: spec, Dir: dir, EpochRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newLoopback(t, col2)
	driveHTTP(t, ts2, []server.Request{
		in("op", "get", "day", "mon"),
		in("op", "get", "day", "tue"), // epoch 3 seals
	})
	if err := col2.Close(); err != nil {
		t.Fatal(err)
	}

	sealed, err := epochlog.ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 3 || !sealed[2].Fresh {
		t.Fatalf("sealed %d epochs (fresh flags %v %v %v), want 3 with epoch 3 fresh",
			len(sealed), sealed[0].Fresh, sealed[1].Fresh, sealed[2].Fresh)
	}
	aud, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	n, err := aud.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("audit across the restart rejected: %v", err)
	}
	if n != 3 {
		t.Fatalf("accepted %d epochs, want 3", n)
	}
}

// TestManyEpochsSmallWindow: a backlog much larger than the prefetch
// window still audits completely and in order — the window bounds memory,
// not coverage.
func TestManyEpochsSmallWindow(t *testing.T) {
	dir := t.TempDir()
	col, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	driveHTTP(t, ts, requestsFor(harness.MOTDApp(), 9, 3))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	aud, err := New(Config{Dir: dir, Workers: 1}) // look-ahead window of 2
	if err != nil {
		t.Fatal(err)
	}
	n, err := aud.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if n != 9 {
		t.Fatalf("accepted %d epochs, want 9", n)
	}
	if got := aud.Status().LastAccepted; got != 9 {
		t.Fatalf("LastAccepted = %d, want 9", got)
	}
}

// TestCheckpointResume: an auditor that accepted epochs, then died, resumes
// from its checkpoint — auditing only epochs sealed since, and accepting
// them even when they read state written before the restart.
func TestCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cpPath := filepath.Join(t.TempDir(), "checkpoint.json")
	spec := harness.WikiApp()
	reqs := requestsFor(spec, 60, 9)

	col, err := collectorhttp.New(collectorhttp.Config{Spec: spec, Dir: dir, EpochRequests: 15, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	driveHTTP(t, ts, reqs[:30])

	aud1, err := New(Config{Dir: dir, Checkpoint: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	n, err := aud1.RunOnce(context.Background())
	if err != nil || n != 2 {
		t.Fatalf("first auditor accepted %d (err %v), want 2", n, err)
	}

	// Serve more epochs, then "restart": a fresh auditor from the
	// checkpoint must audit only the new epochs.
	driveHTTP(t, ts, reqs[30:])
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	sealed, err := epochlog.ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	aud2, err := New(Config{Dir: dir, Checkpoint: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	if got := aud2.Status().LastAccepted; got != 2 {
		t.Fatalf("restarted auditor resumes at epoch %d, want 2", got)
	}
	n, err = aud2.RunOnce(context.Background())
	if err != nil {
		t.Fatalf("post-restart audit rejected: %v", err)
	}
	if want := len(sealed) - 2; n != want {
		t.Fatalf("restarted auditor audited %d epochs, want %d", n, want)
	}
	if aud2.Status().LastAccepted != sealed[len(sealed)-1].Seq {
		t.Fatalf("restarted auditor stopped at %d of %d", aud2.Status().LastAccepted, sealed[len(sealed)-1].Seq)
	}

	// A third auditor finds nothing pending: accepted epochs are never
	// re-audited.
	aud3, err := New(Config{Dir: dir, Checkpoint: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := aud3.RunOnce(context.Background()); err != nil || n != 0 {
		t.Fatalf("third auditor re-audited %d epochs (err %v)", n, err)
	}
}

// TestPrefetchByteBound: with MaxPrefetchBytes squeezed below a single
// epoch's size, the window degenerates to one epoch in flight (the floor —
// an oversized epoch must stall the window, not wedge it), every epoch
// still audits, and the peak gauges record the boundedness.
func TestPrefetchByteBound(t *testing.T) {
	dir := t.TempDir()
	col, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	driveHTTP(t, ts, requestsFor(harness.MOTDApp(), 6, 5))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	aud, err := New(Config{Dir: dir, Workers: 4, MaxPrefetchBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := aud.RunOnce(context.Background())
	if err != nil || n != 6 {
		t.Fatalf("audited %d epochs (err %v), want 6", n, err)
	}
	st := aud.Status()
	if st.PeakPrefetchEpochs != 1 {
		t.Fatalf("peak prefetch epochs = %d, want 1 (byte bound must floor the window)", st.PeakPrefetchEpochs)
	}
	if st.PeakPrefetchBytes <= 0 {
		t.Fatalf("peak prefetch bytes = %d, want > 0", st.PeakPrefetchBytes)
	}

	// Without the squeeze the same backlog fills the count window.
	aud2, err := New(Config{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aud2.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := aud2.Status().PeakPrefetchEpochs; p != 4 {
		t.Fatalf("peak prefetch epochs = %d, want 4 (2×Workers)", p)
	}
}

// TestReadCheckpointProgress: the advisory lag probe reads the checkpoint
// another auditor wrote; absence or corruption reads as unknown.
func TestReadCheckpointProgress(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "checkpoint.json")
	if _, ok := ReadCheckpointProgress(nil, cpPath); ok {
		t.Fatal("missing checkpoint reported progress")
	}

	dir := t.TempDir()
	col, err := collectorhttp.New(collectorhttp.Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := newLoopback(t, col)
	driveHTTP(t, ts, requestsFor(harness.MOTDApp(), 3, 7))
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	aud, err := New(Config{Dir: dir, Checkpoint: cpPath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := aud.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, ok := ReadCheckpointProgress(nil, cpPath)
	if !ok || got != aud.Status().LastProcessed {
		t.Fatalf("progress = %d, %v; want %d, true", got, ok, aud.Status().LastProcessed)
	}

	if err := os.WriteFile(cpPath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok = ReadCheckpointProgress(nil, cpPath)
	if !ok || got != 0 {
		t.Fatalf("corrupt checkpoint = %d, %v; want 0, true (auditor restarts from zero — real lag, not absence)", got, ok)
	}
}

// TestProbeCheckpointProgress: regression for the missing-vs-corrupt
// conflation. A missing checkpoint means no auditor is attached (no lag
// signal; admission window stays open); a corrupt one means the auditor
// will quarantine it and restart from zero (progress zero is *known*, and
// the window must tighten against the whole sealed prefix). The old probe
// reported both as "unknown", releasing backpressure exactly when a torn
// checkpoint had made the backlog largest.
func TestProbeCheckpointProgress(t *testing.T) {
	cpPath := filepath.Join(t.TempDir(), "checkpoint.json")

	if last, probe := ProbeCheckpointProgress(nil, cpPath); probe != CheckpointMissing || last != 0 {
		t.Fatalf("missing file: probe = %d, %v; want 0, CheckpointMissing", last, probe)
	}
	if _, ok := ReadCheckpointProgress(nil, cpPath); ok {
		t.Fatal("missing checkpoint must read as no-signal (ok=false)")
	}

	if err := os.WriteFile(cpPath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if last, probe := ProbeCheckpointProgress(nil, cpPath); probe != CheckpointCorrupt || last != 0 {
		t.Fatalf("torn file: probe = %d, %v; want 0, CheckpointCorrupt", last, probe)
	}
	if last, ok := ReadCheckpointProgress(nil, cpPath); !ok || last != 0 {
		t.Fatalf("torn file: progress = %d, %v; want 0, true", last, ok)
	}

	if err := os.WriteFile(cpPath, []byte(`{"lastAccepted":3,"lastProcessed":5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if last, probe := ProbeCheckpointProgress(nil, cpPath); probe != CheckpointOK || last != 5 {
		t.Fatalf("good file: probe = %d, %v; want 5, CheckpointOK", last, probe)
	}

	// An unreadable-but-present checkpoint (read fault injected via
	// iofault) is corrupt, not missing: the auditor cannot resume from it.
	inj := iofault.NewInjector(iofault.OS)
	if err := inj.Arm(iofault.OpTransientEIO, iofault.ArmConfig{Times: -1, PathContains: "checkpoint.json"}); err != nil {
		t.Fatal(err)
	}
	if last, probe := ProbeCheckpointProgress(inj, cpPath); probe != CheckpointCorrupt || last != 0 {
		t.Fatalf("read-faulted file: probe = %d, %v; want 0, CheckpointCorrupt", last, probe)
	}
}
