package shard

import (
	"fmt"
	"path/filepath"
	"testing"

	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
)

func TestValidate(t *testing.T) {
	if err := (Map{Shards: 0}).Validate(); err == nil {
		t.Fatal("0-shard map validated")
	}
	if err := (Map{Shards: -2}).Validate(); err == nil {
		t.Fatal("negative-shard map validated")
	}
	if err := (Map{Shards: 1}).Validate(); err != nil {
		t.Fatalf("1-shard map rejected: %v", err)
	}
}

// TestLocalityKey: the first present KeyFields entry wins; inputs missing
// every field (or not map-shaped) hash whole.
func TestLocalityKey(t *testing.T) {
	m := Map{Shards: 4, KeyFields: []string{"id", "page"}}
	render := value.Normalize(value.Map("op", "render", "id", "page-03"))
	comment := value.Normalize(value.Map("op", "comment", "page", "page-03", "text", "hi"))
	if got := m.LocalityKey(render); value.Digest(got) != value.Digest(value.Normalize("page-03")) {
		t.Fatalf("locality key of render = %v, want page-03", got)
	}
	// Two operations touching the same page extract the same key — and so
	// land on the same shard, which is what keeps that page's store keys
	// owned by one shard.
	if m.ShardOf(render) != m.ShardOf(comment) {
		t.Fatal("render and comment on the same page routed to different shards")
	}
	scalar := value.Normalize("just-a-string")
	if got := m.LocalityKey(scalar); value.Digest(got) != value.Digest(scalar) {
		t.Fatalf("scalar locality key = %v, want the input itself", got)
	}
	noField := value.Normalize(value.Map("op", "stats"))
	if got := m.LocalityKey(noField); value.Digest(got) != value.Digest(noField) {
		t.Fatalf("field-less locality key = %v, want the whole input", got)
	}
}

// TestShardOfStableAndInRange: assignment is a pure function of the input
// (recomputable by any auditor) and always lands in range.
func TestShardOfStableAndInRange(t *testing.T) {
	m := Map{Shards: 4, KeyFields: []string{"id", "page"}}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		in := value.Normalize(value.Map("op", "render", "id", pageID(i)))
		s := m.ShardOf(in)
		if s < 0 || s >= m.Shards {
			t.Fatalf("shard %d out of range", s)
		}
		if again := m.ShardOf(in); again != s {
			t.Fatalf("ShardOf not stable: %d then %d", s, again)
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 distinct pages all hashed to %d shard(s); want spread", len(seen))
	}
	one := Map{Shards: 1}
	if s := one.ShardOf(value.Normalize("anything")); s != 0 {
		t.Fatalf("1-shard map assigned shard %d", s)
	}
}

func pageID(i int) string { return fmt.Sprintf("page-%02d", i) }

func TestSharedKey(t *testing.T) {
	m := Map{Shards: 2, SharedKeyPrefixes: []string{"config:", "counter:"}}
	if !m.SharedKey("config:limits") || !m.SharedKey("counter:served") {
		t.Fatal("prefixed keys not shared")
	}
	if m.SharedKey("page:home") || m.SharedKey("conf") {
		t.Fatal("unprefixed keys shared")
	}
}

// TestCheckRouting: every REQ in a shard's trace must belong there by the
// map's own hash; the first misrouted request is named.
func TestCheckRouting(t *testing.T) {
	m := Map{Shards: 4, KeyFields: []string{"id"}}
	// Find two inputs the map routes to different shards.
	a := value.Normalize(value.Map("op", "render", "id", "page-00"))
	var b value.V
	for i := 1; i < 64; i++ {
		cand := value.Normalize(value.Map("op", "render", "id", pageID(i)))
		if m.ShardOf(cand) != m.ShardOf(a) {
			b = cand
			break
		}
	}
	if b == nil {
		t.Fatal("could not find inputs on two shards")
	}
	home := m.ShardOf(a)
	tr := &trace.Trace{Events: []trace.Event{
		{Kind: trace.Req, RID: "r1", Data: a},
		{Kind: trace.Resp, RID: "r1", Data: value.Normalize("ok")},
	}}
	if err := m.CheckRouting(home, tr); err != nil {
		t.Fatalf("well-routed trace flagged: %v", err)
	}
	// Responses are not routing evidence — only REQ arrivals are checked —
	// so a misrouted RESP payload alone cannot fire.
	tr.Events = append(tr.Events, trace.Event{Kind: trace.Req, RID: "r2", Data: b})
	if err := m.CheckRouting(home, tr); err == nil {
		t.Fatal("misrouted request not flagged")
	}
	if err := m.CheckRouting(-1, tr); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := m.CheckRouting(m.Shards, tr); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func TestDirsAndMapRoundTrip(t *testing.T) {
	root := t.TempDir()
	m := Map{Shards: 3, KeyFields: []string{"id", "page"}, SharedKeyPrefixes: []string{"config:"}}
	if got := Dir(root, 2); got != filepath.Join(root, "shard-02") {
		t.Fatalf("Dir = %q", got)
	}
	dirs := m.Dirs(root)
	if len(dirs) != 3 || dirs[0] != filepath.Join(root, "shard-00") {
		t.Fatalf("Dirs = %v", dirs)
	}
	if err := WriteMap(nil, root, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMap(root)
	if err != nil {
		t.Fatal(err)
	}
	if back.Shards != m.Shards || len(back.KeyFields) != 2 || back.KeyFields[0] != "id" ||
		len(back.SharedKeyPrefixes) != 1 || back.SharedKeyPrefixes[0] != "config:" {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := ReadMap(t.TempDir()); err == nil {
		t.Fatal("ReadMap on an empty dir succeeded")
	}
	if err := WriteMap(nil, t.TempDir(), Map{Shards: 0}); err == nil {
		t.Fatal("WriteMap persisted an invalid map")
	}
}
