package shard

import (
	"encoding/json"
	"testing"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/verifier"
)

func carryOf(keys ...string) *verifier.CarryState {
	c := &verifier.CarryState{Store: map[string]verifier.CarriedWrite{}}
	for _, k := range keys {
		c.Store[k] = verifier.CarriedWrite{}
	}
	return c
}

func mergeKey(t *testing.T, r MergeResult) string {
	t.Helper()
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestMergeAccepts: disjoint carries compose to an accept.
func TestMergeAccepts(t *testing.T) {
	m := Map{Shards: 2}
	r := Merge(m, []Outcome{
		{Shard: 0, Carry: carryOf("page:a", "page:b")},
		{Shard: 1, Carry: carryOf("page:c")},
	})
	if !r.Accepted() {
		t.Fatalf("disjoint shards rejected: %+v", r)
	}
}

// TestMergeEmptyShard (satellite edge case): a shard that served nothing —
// nil carry, no verdicts — claims nothing and blocks nothing.
func TestMergeEmptyShard(t *testing.T) {
	m := Map{Shards: 3}
	r := Merge(m, []Outcome{
		{Shard: 0, Carry: carryOf("page:a")},
		{Shard: 1}, // empty: no epochs, no carry
		{Shard: 2, Carry: carryOf("page:b")},
	})
	if !r.Accepted() {
		t.Fatalf("empty shard blocked the merge: %+v", r)
	}
	if r := Merge(m, nil); !r.Accepted() {
		t.Fatalf("no outcomes at all rejected: %+v", r)
	}
}

// TestMergeConflict: a store key claimed by two shards is a ShardConflict
// naming the key and both claimants; SharedKeyPrefixes exempt intentional
// replication.
func TestMergeConflict(t *testing.T) {
	m := Map{Shards: 3, SharedKeyPrefixes: []string{"config:"}}
	outs := []Outcome{
		{Shard: 0, Carry: carryOf("page:a", "config:limits", "page:dup")},
		{Shard: 1, Carry: carryOf("page:b", "config:limits")},
		{Shard: 2, Carry: carryOf("page:dup")},
	}
	r := Merge(m, outs)
	if r.Code != core.RejectShardConflict {
		t.Fatalf("code = %s, want ShardConflict", r.Code)
	}
	if len(r.Conflicts) != 1 || r.Conflicts[0].Key != "page:dup" {
		t.Fatalf("conflicts = %+v, want exactly page:dup", r.Conflicts)
	}
	if got := r.Conflicts[0].Shards; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("claimants = %v, want [0 2]", got)
	}
	// Without the exemption the replicated config key conflicts too, and
	// conflicts come out sorted by key.
	r2 := Merge(Map{Shards: 3}, outs)
	if len(r2.Conflicts) != 2 || r2.Conflicts[0].Key != "config:limits" || r2.Conflicts[1].Key != "page:dup" {
		t.Fatalf("unexempted conflicts = %+v", r2.Conflicts)
	}
}

// TestMergeLaneRejectionWins: a lane's own rejection is sharper than any
// merge-level code, and the lowest shard index wins deterministically.
func TestMergeLaneRejectionWins(t *testing.T) {
	m := Map{Shards: 3}
	r := Merge(m, []Outcome{
		{Shard: 2, Code: core.RejectOutputMismatch, Reason: "resp diverged"},
		{Shard: 1, Code: core.RejectLogMismatch, Reason: "unlogged op"},
		{Shard: 0, Carry: carryOf("page:dup")},
	})
	if r.Code != core.RejectLogMismatch {
		t.Fatalf("code = %s, want the lowest rejecting shard's LogMismatch", r.Code)
	}
	// Even a cross-shard conflict does not mask a per-shard rejection.
	r = Merge(m, []Outcome{
		{Shard: 0, Carry: carryOf("page:dup")},
		{Shard: 1, Carry: carryOf("page:dup")},
		{Shard: 2, Code: core.RejectGraphCycle, Reason: "cycle"},
	})
	if r.Code != core.RejectGraphCycle {
		t.Fatalf("code = %s, want GraphCycle over ShardConflict", r.Code)
	}
}

// TestMergeUnauditableShard (satellite edge case): a lane whose tail is
// unanchored makes the merged verdict Unauditable — the topology's state
// is unknown, not wrong — but a conflict among the anchored shards still
// wins, and an unanchored shard never conflicts (it claims nothing).
func TestMergeUnauditableShard(t *testing.T) {
	m := Map{Shards: 3}
	r := Merge(m, []Outcome{
		{Shard: 0, Carry: carryOf("page:a")},
		{Shard: 1, Code: core.RejectUnauditable, Reason: "carry unanchored", Unanchored: true},
		{Shard: 2, Carry: carryOf("page:b")},
	})
	if r.Code != core.RejectUnauditable {
		t.Fatalf("code = %s, want Unauditable", r.Code)
	}
	// All shards unauditable: still Unauditable, never a rejection.
	all := []Outcome{
		{Shard: 0, Code: core.RejectUnauditable, Unanchored: true},
		{Shard: 1, Code: core.RejectUnauditable, Unanchored: true},
	}
	if r := Merge(Map{Shards: 2}, all); r.Code != core.RejectUnauditable {
		t.Fatalf("all-unauditable code = %s", r.Code)
	}
	// Conflict between the anchored shards beats the unanchored lane's
	// Unauditable: the conflict is proven on evidence we do hold.
	r = Merge(m, []Outcome{
		{Shard: 0, Carry: carryOf("page:dup")},
		{Shard: 1, Code: core.RejectUnauditable, Unanchored: true},
		{Shard: 2, Carry: carryOf("page:dup")},
	})
	if r.Code != core.RejectShardConflict {
		t.Fatalf("code = %s, want ShardConflict over Unauditable", r.Code)
	}
	// A lane re-anchored by a Fresh boundary (Unanchored false, carry from
	// rebuilt state) contributes normally: one shard having crashed and
	// recovered does not block acceptance.
	r = Merge(m, []Outcome{
		{Shard: 0, Carry: carryOf("page:a")},
		{Shard: 1, Carry: carryOf("page:b")}, // post-Fresh carry
		{Shard: 2, Carry: carryOf("page:c")},
	})
	if !r.Accepted() {
		t.Fatalf("re-anchored topology rejected: %+v", r)
	}
}

// TestMergeDeterministic: the merged verdict is a function of the outcome
// set, not the order lanes finished in.
func TestMergeDeterministic(t *testing.T) {
	m := Map{Shards: 4}
	outs := []Outcome{
		{Shard: 0, Carry: carryOf("page:a", "page:dup")},
		{Shard: 1, Code: core.RejectUnauditable, Unanchored: true},
		{Shard: 2, Carry: carryOf("page:dup", "page:z")},
		{Shard: 3, Carry: carryOf("page:q")},
	}
	want := mergeKey(t, Merge(m, outs))
	perms := [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}}
	for _, p := range perms {
		shuffled := make([]Outcome, len(outs))
		for i, j := range p {
			shuffled[i] = outs[j]
		}
		if got := mergeKey(t, Merge(m, shuffled)); got != want {
			t.Fatalf("merge depends on outcome order:\n%s\nvs\n%s", got, want)
		}
	}
}
