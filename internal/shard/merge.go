// Cross-shard soundness: the deferred merge check. Each audit lane proves
// its shard replayed its own trace correctly and ends with a per-shard
// carry — the surviving write of every store key that shard ever
// committed. Those proofs compose into a verdict about the whole
// partitioned deployment only if the shards' state claims are disjoint:
// a key whose surviving write is claimed by two shards means writes to the
// same logical state were audited against two independent histories, and
// neither audit saw the interleaving. The check is deferred (it runs once,
// after every lane drains) and cheap (set intersection over carried keys)
// — the same shape as the parallel engine's deferred cross-group conflict
// checks, lifted from tag groups to shards.
package shard

import (
	"fmt"
	"sort"
	"strings"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/verifier"
)

// Outcome is one audit lane's end state, the merge check's input.
type Outcome struct {
	// Shard is the lane's shard index.
	Shard int
	// Dir is the shard's epoch-log directory (for reporting).
	Dir string
	// Code is the lane's own verdict: "" every graded epoch accepted (or
	// the lane is empty), RejectUnauditable the lane's tail is unanchored,
	// any other code a rejection that halted the lane.
	Code core.RejectCode
	// Reason is the human-readable detail behind a non-accept Code.
	Reason string
	// Carry is the lane's final verified state; nil for an empty shard or
	// an unanchored one.
	Carry *verifier.CarryState
	// Unanchored marks a lane whose carry is unknown because its newest
	// graded epoch was Unauditable: the shard makes no state claims, so it
	// cannot conflict — but the merged verdict cannot vouch for it either.
	Unanchored bool
}

// Conflict is one violation of the state partition: a store key whose
// surviving write is claimed by more than one shard.
type Conflict struct {
	Key    string `json:"key"`
	Shards []int  `json:"shards"`
}

// MergeResult is the composed verdict over all shards.
type MergeResult struct {
	// Code is the combined verdict: "" accept, RejectShardConflict the
	// partition was violated, RejectUnauditable at least one lane ended
	// unanchored (no accusation — the merged state is simply unknown), or
	// a lane's own rejection code, which always wins over the merge-level
	// codes: a proven per-shard misbehavior is the sharper claim.
	Code   core.RejectCode `json:"code,omitempty"`
	Reason string          `json:"reason,omitempty"`
	// Conflicts lists every partition violation, sorted by key.
	Conflicts []Conflict `json:"conflicts,omitempty"`
}

// Accepted reports whether the merged verdict cleared the topology.
func (r MergeResult) Accepted() bool { return r.Code == "" }

// Merge composes per-shard outcomes into one verdict. It is deterministic
// in the outcomes alone: lanes are ordered by shard index, conflicts by
// key, so any two auditors that graded the same shards the same way merge
// to the identical result regardless of lane scheduling.
func Merge(m Map, outs []Outcome) MergeResult {
	ordered := append([]Outcome(nil), outs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Shard < ordered[j].Shard })

	// A lane's own rejection is the sharpest claim: that shard's server
	// provably misbehaved, and no cross-shard composition can soften it.
	for _, o := range ordered {
		if o.Code != "" && o.Code != core.RejectUnauditable {
			return MergeResult{
				Code:   o.Code,
				Reason: fmt.Sprintf("shard %d: %s", o.Shard, o.Reason),
			}
		}
	}

	// The partition check: collect each shard's claimed keys, then flag
	// every key claimed twice. Unanchored lanes claim nothing (their state
	// is unknown, which the verdict accounts for below).
	claims := make(map[string][]int)
	for _, o := range ordered {
		if o.Unanchored || o.Carry == nil {
			continue
		}
		keys := make([]string, 0, len(o.Carry.Store))
		for key := range o.Carry.Store {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if m.SharedKey(key) {
				continue
			}
			claims[key] = append(claims[key], o.Shard)
		}
	}
	var conflicts []Conflict
	keys := make([]string, 0, len(claims))
	for key := range claims {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if owners := claims[key]; len(owners) > 1 {
			conflicts = append(conflicts, Conflict{Key: key, Shards: owners})
		}
	}
	if len(conflicts) > 0 {
		names := make([]string, 0, len(conflicts))
		for _, c := range conflicts {
			names = append(names, fmt.Sprintf("%s claimed by shards %v", c.Key, c.Shards))
		}
		return MergeResult{
			Code:      core.RejectShardConflict,
			Reason:    fmt.Sprintf("%d key(s) violate the shard partition: %s", len(conflicts), strings.Join(names, "; ")),
			Conflicts: conflicts,
		}
	}

	for _, o := range ordered {
		if o.Unanchored || o.Code == core.RejectUnauditable {
			return MergeResult{
				Code:   core.RejectUnauditable,
				Reason: fmt.Sprintf("shard %d ended unanchored: %s", o.Shard, o.Reason),
			}
		}
	}
	return MergeResult{}
}
