// Package shard defines the sharded audit plane's topology: how a request
// stream is partitioned across N collector shards, and how N per-shard
// audits compose back into one verdict about the whole deployment.
//
// The partition is by locality key. Every request input carries (or is) a
// key — a page id, a stack digest, a tenant — and the shard map assigns
// each key to exactly one shard by stable hash. The assignment is a pure
// function of the request contents, so it is deterministic and replayable:
// anyone holding the shard map and the traces can recompute, request by
// request, which shard every request belonged on. That recomputation is
// the first half of the cross-shard soundness check (CheckRouting); the
// second half is the deferred merge check over per-shard carries
// (merge.go), which proves no two shards claim the same state.
//
// The map itself is evidence: WriteMap persists it as shardmap.json in the
// topology root, next to the per-shard epoch-log directories, so an
// offline auditor reconstructs the exact routing the gateway used.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
)

// Map is the shard topology: how many shards exist and how a request's
// locality key is extracted. It is written once when a topology is created
// and never changes for the lifetime of the logs it routes — resharding is
// a new topology, not a mutation, because the assignment of every past
// request must stay recomputable.
type Map struct {
	// Shards is the shard count; RIDs and epoch logs are per shard.
	Shards int `json:"shards"`
	// KeyFields names the input fields tried, in order, as the locality
	// key: the first field present in a map-shaped input wins. An input
	// missing every field (or not map-shaped) hashes whole — still
	// deterministic, just without cross-request locality.
	KeyFields []string `json:"keyFields,omitempty"`
	// SharedKeyPrefixes exempt store-key prefixes from the cross-shard
	// conflict check: keys every shard writes by design (per-shard
	// replicated config, counters) rather than partitioned state.
	SharedKeyPrefixes []string `json:"sharedKeyPrefixes,omitempty"`
}

// Validate rejects unusable topologies.
func (m Map) Validate() error {
	if m.Shards < 1 {
		return fmt.Errorf("shard: map needs at least 1 shard, has %d", m.Shards)
	}
	return nil
}

// LocalityKey extracts the portion of a request input that determines its
// shard: the first present KeyFields entry of a map-shaped input, or the
// whole input when none applies.
func (m Map) LocalityKey(input value.V) value.V {
	obj, ok := input.(map[string]value.V)
	if !ok {
		return input
	}
	for _, f := range m.KeyFields {
		if v, present := obj[f]; present {
			return v
		}
	}
	return input
}

// ShardOf assigns a request input to its shard: the FNV-1a digest of the
// normalized locality key, reduced mod Shards. Stable across processes and
// runs — value.Digest hashes the canonical encoding.
func (m Map) ShardOf(input value.V) int {
	return int(value.Digest(value.Normalize(m.LocalityKey(input))) % uint64(m.Shards))
}

// SharedKey reports whether a store key is exempt from the cross-shard
// conflict check.
func (m Map) SharedKey(key string) bool {
	for _, p := range m.SharedKeyPrefixes {
		if len(key) >= len(p) && key[:len(p)] == p {
			return true
		}
	}
	return false
}

// CheckRouting re-derives every REQ's shard assignment from the trusted
// trace and returns an error naming the first request that does not belong
// on shard s. This is the routing half of cross-shard soundness: each
// shard's audit proves that shard executed *its* trace correctly, and
// CheckRouting proves its trace holds exactly the requests the map sends
// there — a gateway (or a server smuggling requests between shards) cannot
// move state across the partition unobserved.
func (m Map) CheckRouting(s int, tr *trace.Trace) error {
	if s < 0 || s >= m.Shards {
		return fmt.Errorf("shard: shard %d out of range of %d-shard map", s, m.Shards)
	}
	for _, e := range tr.Events {
		if e.Kind != trace.Req {
			continue
		}
		if got := m.ShardOf(e.Data); got != s {
			return fmt.Errorf("shard: request %s belongs on shard %d, found in shard %d's trace", e.RID, got, s)
		}
	}
	return nil
}

// Dir returns shard s's epoch-log directory under the topology root.
func Dir(root string, s int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%02d", s))
}

// Dirs returns every shard's epoch-log directory under root, in shard
// order.
func (m Map) Dirs(root string) []string {
	out := make([]string, m.Shards)
	for s := range out {
		out[s] = Dir(root, s)
	}
	return out
}

// MapFile is the shard map's filename inside the topology root.
const MapFile = "shardmap.json"

// WriteMap persists the topology manifest. The gateway writes it once at
// topology creation; auditors and re-audits read it back so routing is
// checked against the map that actually served, not a reconstruction.
func WriteMap(fsys iofault.FS, root string, m Map) error {
	if fsys == nil {
		fsys = iofault.OS
	}
	if err := m.Validate(); err != nil {
		return err
	}
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return err
	}
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return fsys.WriteFile(filepath.Join(root, MapFile), blob, 0o644)
}

// ReadMap loads and validates the topology manifest from a topology root.
func ReadMap(root string) (Map, error) {
	blob, err := os.ReadFile(filepath.Join(root, MapFile))
	if err != nil {
		return Map{}, err
	}
	var m Map
	if err := json.Unmarshal(blob, &m); err != nil {
		return Map{}, fmt.Errorf("shard: bad %s: %w", MapFile, err)
	}
	if err := m.Validate(); err != nil {
		return Map{}, err
	}
	return m, nil
}
