// Package harness drives the paper's experiments end-to-end: it serves a
// workload through the server runtime (in unmodified, Karousos, or Orochi-JS
// collection modes), times the serving, measures advice size, and runs the
// three verifiers (Karousos, Orochi-JS, sequential re-execution) against the
// resulting trace. The root bench_test.go and cmd/karousos-bench both sit on
// top of this package, so the figures and the go-bench numbers come from the
// same code path.
package harness

import (
	"fmt"
	"io"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/feeds"
	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/apps/stacks"
	"karousos.dev/karousos/internal/apps/wiki"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/seqreexec"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/verifier/memo"
)

// AppSpec describes one auditable application: how to build a fresh instance
// (with its store, when it uses one) and which isolation level the store
// provides.
type AppSpec struct {
	Name      string
	UsesStore bool
	Isolation adya.Level
	// New returns a fresh application and, when UsesStore, a fresh store.
	New func() (*core.App, *kvstore.Store)
}

// MOTDApp returns the message-of-the-day application spec.
func MOTDApp() AppSpec {
	return AppSpec{
		Name: "motd",
		New:  func() (*core.App, *kvstore.Store) { return motd.New(), nil },
	}
}

// StacksApp returns the stack-dump application spec; its store runs
// serializable, which is where the retry-error behavior comes from.
func StacksApp() AppSpec {
	return AppSpec{
		Name:      "stacks",
		UsesStore: true,
		Isolation: adya.Serializable,
		New: func() (*core.App, *kvstore.Store) {
			return stacks.New(), kvstore.New(kvstore.Serializable)
		},
	}
}

// WikiApp returns the wiki application spec.
func WikiApp() AppSpec {
	return AppSpec{
		Name:      "wiki",
		UsesStore: true,
		Isolation: adya.Serializable,
		New: func() (*core.App, *kvstore.Store) {
			return wiki.New(), kvstore.New(kvstore.Serializable)
		},
	}
}

// FeedsApp returns the dashboard-feeds application spec — the steady-state
// recurring workload of the memo-cache experiments (DESIGN.md §18).
func FeedsApp() AppSpec {
	return AppSpec{
		Name: "feeds",
		New:  func() (*core.App, *kvstore.Store) { return feeds.New(), nil },
	}
}

// SpecByName resolves an application by its recorded name — the inverse of
// AppSpec.Name, used by tools that rediscover the app from a run directory
// or epoch log sidecar.
func SpecByName(name string) (AppSpec, error) {
	switch name {
	case "motd":
		return MOTDApp(), nil
	case "stacks":
		return StacksApp(), nil
	case "wiki":
		return WikiApp(), nil
	case "feeds":
		return FeedsApp(), nil
	}
	return AppSpec{}, fmt.Errorf("harness: unknown app %q (motd, stacks, wiki, feeds)", name)
}

// Collect selects which advice the serving run produces.
type Collect uint8

const (
	// CollectNone is the unmodified server baseline.
	CollectNone Collect = iota
	// CollectKarousos collects Karousos advice only.
	CollectKarousos
	// CollectOrochi collects Orochi-JS advice only.
	CollectOrochi
	// CollectBoth collects both advices in one run (how the artifact
	// produces comparable verification inputs from a single trace).
	CollectBoth
)

// ServeResult is one serving run's output.
type ServeResult struct {
	Trace    *trace.Trace
	Karousos *advice.Advice
	Orochi   *advice.Advice
	// Elapsed is the wall time of the dispatch loop over all requests.
	Elapsed time.Duration
	// Conflicts counts store-level transaction aborts.
	Conflicts int
}

// Serve runs the workload at the given admission concurrency and collection
// mode. The scheduler seed makes runs reproducible.
func Serve(spec AppSpec, reqs []server.Request, concurrency int, seed int64, mode Collect) (*ServeResult, error) {
	app, store := spec.New()
	cfg := server.Config{
		App:             app,
		Store:           store,
		Seed:            seed,
		CollectKarousos: mode == CollectKarousos || mode == CollectBoth,
		CollectOrochi:   mode == CollectOrochi || mode == CollectBoth,
	}
	srv := server.New(cfg)
	start := time.Now()
	res, err := srv.Run(reqs, concurrency)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("harness: serve %s: %w", spec.Name, err)
	}
	return &ServeResult{
		Trace:     res.Trace,
		Karousos:  res.Karousos,
		Orochi:    res.Orochi,
		Elapsed:   elapsed,
		Conflicts: res.Conflicts,
	}, nil
}

// VerifyResult is one audit's outcome and cost.
type VerifyResult struct {
	Elapsed time.Duration
	Stats   verifier.Stats
	Err     error // nil iff the audit accepted
}

// VerifyKarousos audits the trace with the Karousos verifier.
func VerifyKarousos(spec AppSpec, tr *trace.Trace, adv *advice.Advice) *VerifyResult {
	return verify(spec, tr, adv, advice.ModeKarousos)
}

// VerifyOrochi audits the trace with the Orochi-JS verifier.
func VerifyOrochi(spec AppSpec, tr *trace.Trace, adv *advice.Advice) *VerifyResult {
	return verify(spec, tr, adv, advice.ModeOrochiJS)
}

func verify(spec AppSpec, tr *trace.Trace, adv *advice.Advice, mode advice.Mode) *VerifyResult {
	return VerifyWith(spec, tr, adv, VerifyOptions{Mode: mode})
}

// VerifyKarousosLimits audits under explicit resource bounds: the wire size
// is checked before decode-side allocation, and the audit runs under lim's
// deadline and graph budgets.
func VerifyKarousosLimits(spec AppSpec, tr *trace.Trace, adv *advice.Advice, lim verifier.Limits) *VerifyResult {
	return VerifyWith(spec, tr, adv, VerifyOptions{Mode: advice.ModeKarousos, Limits: lim, Workers: 1})
}

// VerifyOptions selects the audit configuration beyond the app spec.
type VerifyOptions struct {
	// Mode selects the advice dialect; the zero value is ModeKarousos.
	Mode advice.Mode
	// Limits bounds the audit's resources; the zero value is unbounded.
	Limits verifier.Limits
	// Workers is the audit's parallelism: 0 means GOMAXPROCS, 1 is the
	// sequential engine. The verdict is identical at every setting.
	Workers int
	// DumpGraph, when non-nil, receives the execution graph G in Graphviz
	// DOT format (cycles highlighted on rejection).
	DumpGraph io.Writer
	// Memo, when non-nil, is the cross-epoch replay cache threaded into
	// the audit (verifier.Config.Memo); the caller owns its lifetime.
	Memo *memo.Cache
}

// VerifyWith audits with explicit options; the other Verify helpers are
// shorthands over it.
func VerifyWith(spec AppSpec, tr *trace.Trace, adv *advice.Advice, opt VerifyOptions) *VerifyResult {
	if opt.Mode == "" {
		opt.Mode = advice.ModeKarousos
	}
	return verifyLimits(spec, tr, adv, opt)
}

func verifyLimits(spec AppSpec, tr *trace.Trace, adv *advice.Advice, opt VerifyOptions) *VerifyResult {
	lim := opt.Limits
	app, _ := spec.New()
	cfg := verifier.Config{
		App: app, Mode: opt.Mode, Isolation: spec.Isolation,
		Limits: lim, Workers: opt.Workers, DumpGraph: opt.DumpGraph,
		Memo: opt.Memo,
	}
	// The advice crosses the network in a deployment (§2.1), so the timed
	// region starts from its serialized form: decoding bigger advice is part
	// of what makes the Orochi-JS verifier slower (§6.2).
	wire := adv.MarshalBinary()
	start := time.Now()
	if err := lim.CheckAdviceBytes(len(wire)); err != nil {
		return &VerifyResult{Elapsed: time.Since(start), Err: err}
	}
	parsed, err := advice.UnmarshalBinary(wire)
	if err != nil {
		return &VerifyResult{Elapsed: time.Since(start), Err: err}
	}
	stats, err := verifier.Audit(cfg, tr, parsed)
	return &VerifyResult{Elapsed: time.Since(start), Stats: stats, Err: err}
}

// SequentialResult is the sequential re-execution baseline's outcome.
type SequentialResult struct {
	Elapsed             time.Duration
	Matched, Mismatched int
	Err                 error
}

// VerifySequential replays the trace one request at a time with no advice.
func VerifySequential(spec AppSpec, tr *trace.Trace) *SequentialResult {
	app, store := spec.New()
	start := time.Now()
	res, err := seqreexec.Run(app, store, tr)
	out := &SequentialResult{Elapsed: time.Since(start), Err: err}
	if res != nil {
		out.Matched = res.Matched
		out.Mismatched = res.Mismatched
	}
	return out
}

// MergeRuns combines two serving runs into one alleged run, as a misbehaving
// server would when executing requests against private copies of the state
// ("split brain"). The merged trace presents all requests as concurrent; the
// merged advice is the union of both runs' advice. Whether the audit accepts
// the result depends on whether some legal schedule explains it — which is
// exactly the paper's Soundness condition, so tests and demos use MergeRuns
// to probe both sides of it.
func MergeRuns(a, b *ServeResult) *ServeResult {
	merged := &ServeResult{Trace: &trace.Trace{}}
	for _, src := range []*ServeResult{a, b} {
		for _, e := range src.Trace.Events {
			if e.Kind == trace.Req {
				merged.Trace.Events = append(merged.Trace.Events, e)
			}
		}
	}
	for _, src := range []*ServeResult{a, b} {
		for _, e := range src.Trace.Events {
			if e.Kind == trace.Resp {
				merged.Trace.Events = append(merged.Trace.Events, e)
			}
		}
	}
	merged.Karousos = mergeAdvice(a.Karousos, b.Karousos)
	merged.Orochi = mergeAdvice(a.Orochi, b.Orochi)
	return merged
}

func mergeAdvice(a, b *advice.Advice) *advice.Advice {
	if a == nil || b == nil {
		return nil
	}
	out := a.Clone()
	bb := b.Clone()
	for rid, tag := range bb.Tags {
		out.Tags[rid] = tag
	}
	for rid, c := range bb.OpCounts {
		out.OpCounts[rid] = c
	}
	for rid, at := range bb.ResponseEmittedBy {
		out.ResponseEmittedBy[rid] = at
	}
	for rid, hl := range bb.HandlerLogs {
		out.HandlerLogs[rid] = hl
	}
	for id, entries := range bb.VarLogs {
		out.VarLogs[id] = append(out.VarLogs[id], dedupVarEntries(out.VarLogs[id], entries)...)
	}
	out.TxLogs = append(out.TxLogs, bb.TxLogs...)
	out.WriteOrder = append(out.WriteOrder, bb.WriteOrder...)
	out.Nondet = append(out.Nondet, bb.Nondet...)
	return out
}

// dedupVarEntries drops entries from add that already exist in base (the two
// runs may both have lazily logged the same init write).
func dedupVarEntries(base, add []advice.VarLogEntry) []advice.VarLogEntry {
	seen := make(map[core.Op]bool, len(base))
	for _, e := range base {
		seen[e.Op] = true
	}
	var out []advice.VarLogEntry
	for _, e := range add {
		if !seen[e.Op] {
			out = append(out, e)
		}
	}
	return out
}

// ServeWarm serves warmup+measured requests on one server instance and
// reports the time taken by the measured portion only, reproducing the
// paper's Figure 6 methodology ("each experiment uses the first 120 requests
// to warm up the application; we report time taken to serve the remaining
// 480").
func ServeWarm(spec AppSpec, reqs []server.Request, warmup, concurrency int, seed int64, mode Collect) (time.Duration, error) {
	if warmup > len(reqs) {
		return 0, fmt.Errorf("harness: warmup %d exceeds workload size %d", warmup, len(reqs))
	}
	app, store := spec.New()
	srv := server.New(server.Config{
		App:             app,
		Store:           store,
		Seed:            seed,
		CollectKarousos: mode == CollectKarousos || mode == CollectBoth,
		CollectOrochi:   mode == CollectOrochi || mode == CollectBoth,
	})
	if _, err := srv.Run(reqs[:warmup], concurrency); err != nil {
		return 0, fmt.Errorf("harness: warmup %s: %w", spec.Name, err)
	}
	start := time.Now()
	if _, err := srv.Run(reqs[warmup:], concurrency); err != nil {
		return 0, fmt.Errorf("harness: serve %s: %w", spec.Name, err)
	}
	return time.Since(start), nil
}

// VerifyKarousosUnbatched is the batching ablation: it audits with every
// request in its own control-flow group (singleton tags), disabling both
// grouped re-execution and SIMD-on-demand deduplication while keeping every
// check intact. Comparing it with VerifyKarousos isolates what batching buys
// (§4.1's central trade-off). Completeness is unaffected: singleton groups
// are trivially consistent, and unlogged reads replay through the version
// dictionary exactly as before.
func VerifyKarousosUnbatched(spec AppSpec, tr *trace.Trace, adv *advice.Advice) *VerifyResult {
	solo := adv.Clone()
	for rid := range solo.Tags {
		solo.Tags[rid] = "solo-" + string(rid)
	}
	return verify(spec, tr, solo, advice.ModeKarousos)
}
