package harness

import "testing"

// TestUnbatchedAuditAccepts: the batching ablation must stay complete — the
// same honest advice verifies with singleton groups.
func TestUnbatchedAuditAccepts(t *testing.T) {
	for _, spec := range []AppSpec{MOTDApp(), StacksApp(), WikiApp()} {
		reqs := requestsFor(spec, 80, 3)
		run, err := Serve(spec, reqs, 8, 42, CollectKarousos)
		if err != nil {
			t.Fatal(err)
		}
		v := VerifyKarousosUnbatched(spec, run.Trace, run.Karousos)
		if v.Err != nil {
			t.Errorf("%s: unbatched audit rejected honest run: %v", spec.Name, v.Err)
		}
		if v.Stats.Groups != 80 {
			t.Errorf("%s: unbatched groups = %d, want 80 singletons", spec.Name, v.Stats.Groups)
		}
	}
}

// TestBatchingReducesHandlerRuns: batched re-execution must run each group's
// handler tree once, so it re-runs strictly fewer handlers than the
// singleton ablation whenever groups are larger than one.
func TestBatchingReducesHandlerRuns(t *testing.T) {
	spec := WikiApp()
	reqs := requestsFor(spec, 120, 3)
	run, err := Serve(spec, reqs, 8, 42, CollectKarousos)
	if err != nil {
		t.Fatal(err)
	}
	batched := VerifyKarousos(spec, run.Trace, run.Karousos)
	solo := VerifyKarousosUnbatched(spec, run.Trace, run.Karousos)
	if batched.Err != nil || solo.Err != nil {
		t.Fatalf("audits failed: %v / %v", batched.Err, solo.Err)
	}
	if batched.Stats.HandlersRerun >= solo.Stats.HandlersRerun {
		t.Errorf("batched re-ran %d handlers, singleton %d — batching gained nothing",
			batched.Stats.HandlersRerun, solo.Stats.HandlersRerun)
	}
}
