package harness

import (
	"testing"
	"time"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/workload"
)

func TestServeWarmMeasuresTail(t *testing.T) {
	spec := MOTDApp()
	reqs := workload.MOTD(100, workload.Mixed, 1)
	d, err := ServeWarm(spec, reqs, 20, 4, 42, CollectKarousos)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("non-positive measured duration")
	}
	if _, err := ServeWarm(spec, reqs, 200, 1, 42, CollectNone); err == nil {
		t.Error("warmup larger than workload accepted")
	}
}

func TestServeWarmStateCarriesOver(t *testing.T) {
	// The warm-up requests must execute against the same application state:
	// a set during warm-up is visible to a get in the measured portion.
	spec := MOTDApp()
	reqs := []server.Request{
		{RID: "w1", Input: value.Map("op", "set", "scope", "always", "msg", "warm")},
		{RID: "m1", Input: value.Map("op", "get", "day", "mon")},
	}
	// ServeWarm discards outputs, so replicate its two-phase structure here
	// via the underlying server and check the response.
	app, store := spec.New()
	srv := server.New(server.Config{App: app, Store: store, Seed: 42})
	if _, err := srv.Run(reqs[:1], 1); err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(reqs[1:], 1)
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Trace.Outputs()["m1"], value.Map("msg", "warm", "scope", "always")) {
		t.Errorf("measured request did not see warm-up state: %v", value.String(res.Trace.Outputs()["m1"]))
	}
}

func TestMergeRunsStructure(t *testing.T) {
	spec := MOTDApp()
	a, err := Serve(spec, workload.MOTD(4, workload.Mixed, 1), 1, 1, CollectBoth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Serve(spec, []server.Request{
		{RID: core.RID("zz1"), Input: value.Map("op", "get", "day", "mon")},
	}, 1, 2, CollectBoth)
	if err != nil {
		t.Fatal(err)
	}
	m := MergeRuns(a, b)
	if err := m.Trace.CheckBalanced(); err != nil {
		t.Fatalf("merged trace unbalanced: %v", err)
	}
	if got := len(m.Trace.RIDs()); got != 5 {
		t.Errorf("merged rids = %d, want 5", got)
	}
	if len(m.Karousos.Tags) != 5 || len(m.Orochi.Tags) != 5 {
		t.Error("merged advice missing tags")
	}
	// All requests precede all responses in the merged trace (alleged full
	// concurrency).
	seenResp := false
	for _, e := range m.Trace.Events {
		if e.Kind == 1 { // trace.Resp
			seenResp = true
		} else if seenResp {
			t.Fatal("request after response in merged trace")
		}
	}
}

func TestMergeRunsNilAdvice(t *testing.T) {
	spec := MOTDApp()
	a, _ := Serve(spec, workload.MOTD(2, workload.Mixed, 1), 1, 1, CollectNone)
	b, _ := Serve(spec, []server.Request{
		{RID: core.RID("zz1"), Input: value.Map("op", "get", "day", "mon")},
	}, 1, 2, CollectNone)
	m := MergeRuns(a, b)
	if m.Karousos != nil || m.Orochi != nil {
		t.Error("merge of advice-less runs should carry no advice")
	}
}

func TestVerifyResultTimings(t *testing.T) {
	spec := MOTDApp()
	run, err := Serve(spec, workload.MOTD(30, workload.Mixed, 1), 4, 1, CollectKarousos)
	if err != nil {
		t.Fatal(err)
	}
	v := VerifyKarousos(spec, run.Trace, run.Karousos)
	if v.Err != nil {
		t.Fatal(v.Err)
	}
	if v.Elapsed <= 0 || v.Elapsed > time.Minute {
		t.Errorf("implausible verify time %v", v.Elapsed)
	}
	s := VerifySequential(spec, run.Trace)
	if s.Err != nil || s.Matched+s.Mismatched != 30 {
		t.Errorf("sequential replay accounting: %+v", s)
	}
}
