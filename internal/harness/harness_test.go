package harness

import (
	"testing"

	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/workload"
)

func requestsFor(spec AppSpec, n int, seed int64) []server.Request {
	switch spec.Name {
	case "motd":
		return workload.MOTD(n, workload.Mixed, seed)
	case "stacks":
		return workload.Stacks(n, workload.Mixed, seed, workload.DefaultStacksOptions())
	default:
		return workload.Wiki(n, seed)
	}
}

// TestEndToEndSmoke runs the full pipeline — serve with both advice
// collections, audit with the Karousos and Orochi-JS verifiers, and replay
// sequentially — for every application at two concurrency levels.
func TestEndToEndSmoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec AppSpec
		conc int
	}{
		{"motd-c1", MOTDApp(), 1},
		{"motd-c8", MOTDApp(), 8},
		{"stacks-c1", StacksApp(), 1},
		{"stacks-c8", StacksApp(), 8},
		{"wiki-c1", WikiApp(), 1},
		{"wiki-c8", WikiApp(), 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reqs := requestsFor(tc.spec, 60, 7)
			res, err := Serve(tc.spec, reqs, tc.conc, 42, CollectBoth)
			if err != nil {
				t.Fatalf("serve: %v", err)
			}
			if got := len(res.Trace.RIDs()); got != 60 {
				t.Fatalf("trace has %d requests, want 60", got)
			}
			if vr := VerifyKarousos(tc.spec, res.Trace, res.Karousos); vr.Err != nil {
				t.Errorf("karousos audit rejected honest run: %v", vr.Err)
			}
			if vr := VerifyOrochi(tc.spec, res.Trace, res.Orochi); vr.Err != nil {
				t.Errorf("orochi audit rejected honest run: %v", vr.Err)
			}
			if sr := VerifySequential(tc.spec, res.Trace); sr.Err != nil {
				t.Errorf("sequential replay failed: %v", sr.Err)
			} else if tc.conc == 1 && sr.Mismatched != 0 {
				t.Errorf("sequential replay at concurrency 1 mismatched %d responses", sr.Mismatched)
			}
		})
	}
}
