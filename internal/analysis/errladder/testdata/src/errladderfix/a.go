// Fixture for errladder: raw comparisons, legacy predicates, and silent
// drops next to the blessed errors.Is / defer shapes.
package errladderfix

import (
	"errors"
	"io"
	"os"
)

var errSentinel = errors.New("sentinel")

func rawCompare(err error) bool {
	return err == errSentinel // want `raw error comparison`
}

func rawNotEqual(err error) bool {
	return err != errSentinel // want `raw error comparison`
}

// nil checks are the one raw comparison that is fine.
func nilCompare(err error) bool {
	return err != nil
}

func legacy(err error) bool {
	return os.IsNotExist(err) // want `os.IsNotExist does not unwrap errors`
}

func legacyTimeout(err error) bool {
	return os.IsTimeout(err) // want `os.IsTimeout does not unwrap errors`
}

func blankDrop(f *os.File) {
	_ = f.Close() // want `silently drops an error`
}

func blankSlot(r io.Reader, p []byte) int {
	n, _ := io.ReadFull(r, p) // want `silently drops an error`
	return n
}

func ignored(c io.Closer) {
	c.Close() // want `ignores an error result`
}

// deferred close is exempt by Go convention.
func deferred(f *os.File) error {
	defer f.Close()
	return nil
}

func handled(err error) bool {
	return errors.Is(err, errSentinel)
}
