// True-negative fixture for errladder: every deliberate drop carries a
// reviewed //karousos:errladder-ok directive.
package errladderok

import "os"

func bestEffortClose(f *os.File) {
	_ = f.Close() //karousos:errladder-ok close after successful fsync carries no durability information
}

func cleanupAfterError(f *os.File, err error) error {
	f.Close() //karousos:errladder-ok close-after-error; the original error is the one that surfaces
	return err
}
