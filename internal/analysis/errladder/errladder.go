// Package errladder is the static twin of the iofault degradation ladder
// (DESIGN.md §11): I/O errors in the pipeline packages must flow through
// errors.Is / iofault.Classify / iofault.Retry, never raw comparisons or
// silent drops. A raw == against a sentinel misses wrapped errors and every
// injected *iofault.FaultError; a dropped error turns an infrastructure
// fault into silent evidence loss.
//
// In the packages listed in Packages it flags:
//
//   - binary == / != where an operand is an error and the other is not nil;
//   - the legacy os.IsNotExist / os.IsExist / os.IsPermission / os.IsTimeout
//     predicates (they do not unwrap; use errors.Is or iofault.Classify);
//   - assignments that discard an error result into the blank identifier;
//   - expression statements that call an error-returning function and ignore
//     every result (defer f.Close() is exempt by Go convention).
//
// The escape hatch is //karousos:errladder-ok <reason> on or above the line;
// deliberate drops (close-after-write-error, best-effort directory syncs)
// carry one each, so every swallowed error in the evidence path is a
// reviewed decision.
package errladder

import (
	"go/ast"
	"go/token"
	"go/types"

	"karousos.dev/karousos/internal/analysis"
)

// Packages are the pipeline packages this analyzer self-scopes to.
var Packages = []string{
	"internal/epochlog",
	"internal/collectorhttp",
	"internal/auditd",
}

// Analyzer is the errladder pass.
var Analyzer = &analysis.Analyzer{
	Name: "errladder",
	Doc: "require pipeline I/O errors to flow through errors.Is/iofault.Classify — no raw error comparisons, " +
		"no legacy os.IsNotExist, no silent drops; suppress with //karousos:errladder-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

var legacyPredicates = map[string]string{
	"IsNotExist":   "errors.Is(err, os.ErrNotExist)",
	"IsExist":      "errors.Is(err, os.ErrExist)",
	"IsPermission": "errors.Is(err, os.ErrPermission)",
	"IsTimeout":    "iofault.Classify",
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgInScope(pass.Pkg.Path(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkLegacyPredicate(pass, n)
			case *ast.AssignStmt:
				checkBlankDrop(pass, n)
			case *ast.ExprStmt:
				checkIgnoredCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags err == sentinel / err != sentinel.
func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if isNil(pass.TypesInfo, b.X) || isNil(pass.TypesInfo, b.Y) {
		return
	}
	if isErrorType(pass.TypesInfo.TypeOf(b.X)) || isErrorType(pass.TypesInfo.TypeOf(b.Y)) {
		pass.Reportf(b.Pos(), "raw error comparison misses wrapped errors and injected faults; use errors.Is or iofault.Classify")
	}
}

// checkLegacyPredicate flags os.IsNotExist and friends.
func checkLegacyPredicate(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "os" {
		return
	}
	if repl, ok := legacyPredicates[sel.Sel.Name]; ok {
		pass.Reportf(call.Pos(), "os.%s does not unwrap errors (retry/fault wrappers break it); use %s", sel.Sel.Name, repl)
	}
}

// checkBlankDrop flags `_ = call()` and `n, _ := call()` where the blank
// slot holds an error.
func checkBlankDrop(pass *analysis.Pass, a *ast.AssignStmt) {
	if len(a.Rhs) != 1 {
		return
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	results := callResults(pass.TypesInfo, call)
	if results == nil {
		return
	}
	for i, lhs := range a.Lhs {
		if i >= len(results) {
			break
		}
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && isErrorType(results[i]) {
			pass.Reportf(a.Pos(), "silently drops an error on the evidence path; handle it, classify it, or annotate //karousos:errladder-ok")
			return
		}
	}
}

// checkIgnoredCall flags a statement-position call whose results include an
// error, all ignored.
func checkIgnoredCall(pass *analysis.Pass, s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return
	}
	for _, t := range callResults(pass.TypesInfo, call) {
		if isErrorType(t) {
			pass.Reportf(s.Pos(), "ignores an error result on the evidence path; handle it, classify it, or annotate //karousos:errladder-ok")
			return
		}
	}
}

// callResults returns the call's result types (nil for void or unresolved).
func callResults(info *types.Info, call *ast.CallExpr) []types.Type {
	t := info.TypeOf(call)
	if t == nil {
		return nil
	}
	if tuple, ok := t.(*types.Tuple); ok {
		out := make([]types.Type, tuple.Len())
		for i := 0; i < tuple.Len(); i++ {
			out[i] = tuple.At(i).Type()
		}
		return out
	}
	return []types.Type{t}
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
