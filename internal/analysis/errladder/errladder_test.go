package errladder_test

import (
	"testing"

	"karousos.dev/karousos/internal/analysis/analysistest"
	"karousos.dev/karousos/internal/analysis/errladder"
)

func TestErrladder(t *testing.T) {
	analysistest.Run(t, "testdata", errladder.Analyzer, "errladderfix", "errladderok")
}
