package load

import (
	"go/ast"
	"os"
	"strings"
	"testing"
)

// TestPackagesLoadsModule type-checks a real module package through export
// data, proving the go list -export pipeline works offline.
func TestPackagesLoadsModule(t *testing.T) {
	pkgs, err := Packages("karousos.dev/karousos/internal/core", "karousos.dev/karousos/internal/verifier")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Syntax) == 0 {
			t.Fatalf("%s: incomplete load", p.PkgPath)
		}
		// Type info must actually be populated: every file has a resolved
		// package-level identifier.
		ids := 0
		for _, f := range p.Syntax {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] != nil {
					ids++
				}
				return true
			})
		}
		if ids == 0 {
			t.Fatalf("%s: no resolved identifiers", p.PkgPath)
		}
	}
}

// TestFilesChecksAdHocPackage type-checks an ad-hoc fixture-style package
// that imports both the standard library and a module package.
func TestFilesChecksAdHocPackage(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import (
	"sort"

	"karousos.dev/karousos/internal/core"
)

func Codes() []core.RejectCode {
	out := []core.RejectCode{core.RejectGraphCycle, core.RejectMalformedAdvice}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
`
	path := dir + "/fixture.go"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Files("fixture", []string{path})
	if err != nil {
		t.Fatalf("Files: %v", err)
	}
	if p.Types.Name() != "fixture" {
		t.Fatalf("package name %q", p.Types.Name())
	}
}

// TestPackagesDiagDegradesBrokenPackages proves one broken package costs
// one Problem while healthy packages in the same run still load: the
// failure modes are a syntax error, a type error, and an import with no
// export data.
func TestPackagesDiagDegradesBrokenPackages(t *testing.T) {
	pkgs, problems, err := PackagesDiag(
		"./internal/analysis/load/testdata/src/badpkg",
		"./internal/analysis/load/testdata/src/typeerr",
		"./internal/analysis/load/testdata/src/missingdep",
		"karousos.dev/karousos/internal/core",
	)
	if err != nil {
		t.Fatalf("PackagesDiag run-level error: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "karousos.dev/karousos/internal/core" {
		t.Fatalf("healthy packages = %v, want just internal/core", pkgPaths(pkgs))
	}
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3: %v", len(problems), problems)
	}
	bySuffix := map[string]string{}
	for _, p := range problems {
		parts := strings.Split(p.PkgPath, "/")
		bySuffix[parts[len(parts)-1]] = p.Err.Error()
	}
	if msg, ok := bySuffix["badpkg"]; !ok || !strings.Contains(msg, "expected") {
		t.Errorf("badpkg problem should carry the parse error, got %q", msg)
	}
	if msg, ok := bySuffix["typeerr"]; !ok || !strings.Contains(msg, "type-checking") {
		t.Errorf("typeerr problem should carry the type error, got %q", msg)
	}
	if msg, ok := bySuffix["missingdep"]; !ok {
		t.Errorf("missingdep problem missing entirely: %v", problems)
	} else if !strings.Contains(msg, "export data") && !strings.Contains(msg, "could not import") && !strings.Contains(msg, "doesnotexist") {
		t.Errorf("missingdep problem should name the unresolvable import, got %q", msg)
	}
}

// TestPackagesStillAbortsOnProblems pins the strict mode's compatibility:
// Packages turns the first Problem into an error.
func TestPackagesStillAbortsOnProblems(t *testing.T) {
	_, err := Packages("./internal/analysis/load/testdata/src/typeerr")
	if err == nil {
		t.Fatal("Packages should fail on a type-error package")
	}
}

// TestModuleLoadsForeignStdlibOnlyModule proves the loader against a
// module that is not this one: a temp module importing only the standard
// library, with its own export-data universe.
func TestModuleLoadsForeignStdlibOnlyModule(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/go.mod", "module example.test/stdonly\n\ngo 1.22\n")
	writeFile(t, dir+"/main.go", `package main

import (
	"fmt"
	"sort"
)

func main() {
	xs := []int{3, 1, 2}
	sort.Ints(xs)
	fmt.Println(xs)
}
`)
	pkgs, problems, err := Module(dir, "./...")
	if err != nil {
		t.Fatalf("Module: %v", err)
	}
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	if len(pkgs) != 1 || pkgs[0].PkgPath != "example.test/stdonly" {
		t.Fatalf("packages = %v, want example.test/stdonly", pkgPaths(pkgs))
	}
	if pkgs[0].Types == nil || len(pkgs[0].Syntax) != 1 {
		t.Fatal("stdonly package loaded incompletely")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func pkgPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.PkgPath)
	}
	return out
}
