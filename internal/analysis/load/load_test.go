package load

import (
	"go/ast"
	"os"
	"testing"
)

// TestPackagesLoadsModule type-checks a real module package through export
// data, proving the go list -export pipeline works offline.
func TestPackagesLoadsModule(t *testing.T) {
	pkgs, err := Packages("karousos.dev/karousos/internal/core", "karousos.dev/karousos/internal/verifier")
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Syntax) == 0 {
			t.Fatalf("%s: incomplete load", p.PkgPath)
		}
		// Type info must actually be populated: every file has a resolved
		// package-level identifier.
		ids := 0
		for _, f := range p.Syntax {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] != nil {
					ids++
				}
				return true
			})
		}
		if ids == 0 {
			t.Fatalf("%s: no resolved identifiers", p.PkgPath)
		}
	}
}

// TestFilesChecksAdHocPackage type-checks an ad-hoc fixture-style package
// that imports both the standard library and a module package.
func TestFilesChecksAdHocPackage(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import (
	"sort"

	"karousos.dev/karousos/internal/core"
)

func Codes() []core.RejectCode {
	out := []core.RejectCode{core.RejectGraphCycle, core.RejectMalformedAdvice}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
`
	path := dir + "/fixture.go"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := Files("fixture", []string{path})
	if err != nil {
		t.Fatalf("Files: %v", err)
	}
	if p.Types.Name() != "fixture" {
		t.Fatalf("package name %q", p.Types.Name())
	}
}
