// Package load is the package loader under karousos-vet and the analysis
// tests: a minimal, stdlib-only stand-in for golang.org/x/tools/go/packages
// (which the build container cannot fetch).
//
// It shells out to `go list -export -json -deps` once to learn every
// package's source files and compiled export data, then parses and
// type-checks the requested packages with go/parser + go/types, resolving
// imports (standard library and module-internal alike) through the gc
// export-data importer. Only non-test Go files are loaded: the invariants
// the analyzers prove are about the shipped auditor, and test randomness is
// governed separately (seeded and logged, see DESIGN.md §12).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Problem is one package that failed to load — a build error, a type
// error, or missing export data. Loading continues past it so one broken
// package degrades to one diagnostic instead of aborting the whole vet
// run.
type Problem struct {
	PkgPath string
	Err     error
}

func (p Problem) Error() string { return fmt.Sprintf("%s: %v", p.PkgPath, p.Err) }

// snapshot is one module's resolved export-data universe.
type snapshot struct {
	root    string                // module root directory
	exports map[string]string     // import path -> export data file
	entries map[string]*listEntry // import path -> entry
}

var (
	depOnce sync.Once
	depErr  error
	depSnap *snapshot // this module's snapshot, shared process-wide
)

// moduleRoot locates the directory of the enclosing go.mod, so the loader
// works no matter which package directory the test binary runs in.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("load: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("load: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// newSnapshot builds the export-data map for the module rooted at dir and
// its transitive dependencies, compiling what is stale. With -e, a broken
// package yields an entry carrying its Error and no export data — the
// breakage surfaces later as that package's Problem, not a load abort.
func newSnapshot(dir string) (*snapshot, error) {
	es, err := goList(dir, "-export", "-deps", "./...")
	if err != nil {
		return nil, err
	}
	s := &snapshot{
		root:    dir,
		exports: make(map[string]string),
		entries: make(map[string]*listEntry),
	}
	for _, e := range es {
		s.entries[e.ImportPath] = e
		if e.Export != "" {
			s.exports[e.ImportPath] = e.Export
		}
	}
	return s, nil
}

// depExports returns (building once per process) this module's snapshot.
func depExports() (*snapshot, error) {
	depOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			depErr = err
			return
		}
		depSnap, depErr = newSnapshot(root)
	})
	return depSnap, depErr
}

// goList runs `go list -e -json <args>` in dir and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var es []*listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		es = append(es, &e)
	}
	return es, nil
}

// newImporter returns a types.Importer that resolves every import path
// through the compiled export data `go list -export` produced.
func newImporter(fset *token.FileSet, exp map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exp[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Packages loads, parses, and type-checks the packages matched by patterns
// (e.g. "./..."), excluding standard-library and test files. Any package
// that fails to load aborts the call — the strict mode; drivers that want
// to keep going use PackagesDiag.
func Packages(patterns ...string) ([]*Package, error) {
	pkgs, problems, err := PackagesDiag(patterns...)
	if err != nil {
		return nil, err
	}
	if len(problems) > 0 {
		return nil, fmt.Errorf("load: %w", problems[0])
	}
	return pkgs, nil
}

// PackagesDiag loads the packages matched by patterns, collecting broken
// packages as Problems instead of aborting: a syntax error, a type error,
// or missing export data costs that one package. The returned error is
// reserved for run-level failures (no module, go list itself failing).
func PackagesDiag(patterns ...string) ([]*Package, []Problem, error) {
	snap, err := depExports()
	if err != nil {
		return nil, nil, err
	}
	return snap.load(patterns)
}

// Module loads packages from a different module rooted at dir — its own
// `go list -export -deps` run, nothing shared with this module's snapshot.
// This is how the loader is proven against foreign layouts (e.g. a
// stdlib-only module with no export data beyond the standard library).
func Module(dir string, patterns ...string) ([]*Package, []Problem, error) {
	snap, err := newSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	return snap.load(patterns)
}

// load lists the targets and loads each one, one Problem per broken
// package.
func (s *snapshot) load(patterns []string) ([]*Package, []Problem, error) {
	targets, err := goList(s.root, patterns...)
	if err != nil {
		return nil, nil, err
	}
	var out []*Package
	var problems []Problem
	for _, t := range targets {
		if t.Standard || t.ImportPath == "" {
			continue
		}
		if len(t.GoFiles) == 0 {
			// A listing error with no files at all (unresolvable pattern
			// element, package with no buildable sources) is still worth a
			// diagnostic when go list says so.
			if t.Error != nil {
				problems = append(problems, Problem{PkgPath: t.ImportPath, Err: fmt.Errorf("%s", t.Error.Err)})
			}
			continue
		}
		pkg, err := s.loadOne(t)
		if err != nil {
			problems = append(problems, Problem{PkgPath: t.ImportPath, Err: err})
			continue
		}
		out = append(out, pkg)
	}
	return out, problems, nil
}

// loadOne parses and type-checks a single listed package.
func (s *snapshot) loadOne(t *listEntry) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	var paths []string
	for _, name := range t.GoFiles {
		full := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		paths = append(paths, full)
	}
	pkg, info, err := check(fset, t.ImportPath, files, s.exports)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}
	return &Package{
		PkgPath: t.ImportPath, Dir: t.Dir, GoFiles: paths,
		Fset: fset, Syntax: files, Types: pkg, TypesInfo: info,
	}, nil
}

// Files parses and type-checks an ad-hoc package from explicit .go files —
// the analysistest fixture path. The package may import the standard library
// and any package of this module; pkgPath becomes its import path (fixture
// convention: a bare name with no slash).
func Files(pkgPath string, filenames []string) (*Package, error) {
	snap, err := depExports()
	if err != nil {
		return nil, err
	}
	exp := snap.exports
	fset := token.NewFileSet()
	var files []*ast.File
	for _, full := range filenames {
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	pkg, info, err := check(fset, pkgPath, files, exp)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	var dir string
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{
		PkgPath: pkgPath, Dir: dir, GoFiles: filenames,
		Fset: fset, Syntax: files, Types: pkg, TypesInfo: info,
	}, nil
}

func check(fset *token.FileSet, pkgPath string, files []*ast.File, exp map[string]string) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer: newImporter(fset, exp),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := newInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
