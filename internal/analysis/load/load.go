// Package load is the package loader under karousos-vet and the analysis
// tests: a minimal, stdlib-only stand-in for golang.org/x/tools/go/packages
// (which the build container cannot fetch).
//
// It shells out to `go list -export -json -deps` once to learn every
// package's source files and compiled export data, then parses and
// type-checks the requested packages with go/parser + go/types, resolving
// imports (standard library and module-internal alike) through the gc
// export-data importer. Only non-test Go files are loaded: the invariants
// the analyzers prove are about the shipped auditor, and test randomness is
// governed separately (seeded and logged, see DESIGN.md §12).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

var (
	depOnce sync.Once
	depErr  error
	depRoot string                // module root directory
	exports map[string]string     // import path -> export data file
	entries map[string]*listEntry // import path -> entry
)

// moduleRoot locates the directory of the enclosing go.mod, so the loader
// works no matter which package directory the test binary runs in.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("load: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("load: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// depExports builds (once per process) the export-data map for the whole
// module and its transitive dependencies, compiling what is stale.
func depExports() (map[string]string, map[string]*listEntry, string, error) {
	depOnce.Do(func() {
		depRoot, depErr = moduleRoot()
		if depErr != nil {
			return
		}
		es, err := goList(depRoot, "-export", "-deps", "./...")
		if err != nil {
			depErr = err
			return
		}
		exports = make(map[string]string)
		entries = make(map[string]*listEntry)
		for _, e := range es {
			entries[e.ImportPath] = e
			if e.Export != "" {
				exports[e.ImportPath] = e.Export
			}
		}
	})
	return exports, entries, depRoot, depErr
}

// goList runs `go list -e -json <args>` in dir and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listEntry, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var es []*listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		es = append(es, &e)
	}
	return es, nil
}

// newImporter returns a types.Importer that resolves every import path
// through the compiled export data `go list -export` produced.
func newImporter(fset *token.FileSet, exp map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exp[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Packages loads, parses, and type-checks the packages matched by patterns
// (e.g. "./..."), excluding standard-library and test files.
func Packages(patterns ...string) ([]*Package, error) {
	exp, _, root, err := depExports()
	if err != nil {
		return nil, err
	}
	targets, err := goList(root, patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, t := range targets {
		if t.Standard || t.ImportPath == "" {
			continue
		}
		if t.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		var paths []string
		for _, name := range t.GoFiles {
			full := filepath.Join(t.Dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
			paths = append(paths, full)
		}
		pkg, info, err := check(fset, t.ImportPath, files, exp)
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: t.ImportPath, Dir: t.Dir, GoFiles: paths,
			Fset: fset, Syntax: files, Types: pkg, TypesInfo: info,
		})
	}
	return out, nil
}

// Files parses and type-checks an ad-hoc package from explicit .go files —
// the analysistest fixture path. The package may import the standard library
// and any package of this module; pkgPath becomes its import path (fixture
// convention: a bare name with no slash).
func Files(pkgPath string, filenames []string) (*Package, error) {
	exp, _, _, err := depExports()
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, full := range filenames {
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	pkg, info, err := check(fset, pkgPath, files, exp)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	var dir string
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{
		PkgPath: pkgPath, Dir: dir, GoFiles: filenames,
		Fset: fset, Syntax: files, Types: pkg, TypesInfo: info,
	}, nil
}

func check(fset *token.FileSet, pkgPath string, files []*ast.File, exp map[string]string) (*types.Package, *types.Info, error) {
	var firstErr error
	conf := types.Config{
		Importer: newImporter(fset, exp),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := newInfo()
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
