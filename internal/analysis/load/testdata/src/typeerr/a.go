// typeerr is a committed type-error fixture for the loader's failure-mode
// tests: it parses but does not type-check.
package typeerr

func Mismatched() int {
	var s string = 42
	return s
}
