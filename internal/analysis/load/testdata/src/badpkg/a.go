// badpkg is a committed syntax-error fixture for the loader's
// failure-mode tests. It sits under testdata so ./... never matches it;
// only the explicit-path tests load it.
package badpkg

func broken( {
