// missingdep is a committed fixture whose import cannot be resolved to
// export data: the loader must degrade it to one Problem, not abort.
package missingdep

import "karousos.dev/karousos/internal/doesnotexist"

var _ = doesnotexist.Anything
