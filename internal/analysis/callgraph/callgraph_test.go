package callgraph

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/load"
)

func progFromSource(t *testing.T, src string) *analysis.Program {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := load.Files("cgfixture", []string{path})
	if err != nil {
		t.Fatalf("load.Files: %v", err)
	}
	return analysis.NewProgram([]*analysis.ProgramPackage{{
		PkgPath: p.PkgPath, Fset: p.Fset, Files: p.Syntax,
		Pkg: p.Types, TypesInfo: p.TypesInfo,
	}})
}

const src = `package cgfixture

import "os"

type T struct{ f *os.File }

func (t *T) sync() error { return t.f.Sync() }

func top(t *T) error { return t.sync() }

func viaValue(fn func() error) error { return fn() } // dynamic

func leaf() {}

func caller() { leaf() }
`

func TestBuildResolvesStaticCalls(t *testing.T) {
	prog := progFromSource(t, src)
	g := Of(prog)
	if again := Of(prog); again != g {
		t.Error("Of must cache the graph as a program fact")
	}

	find := func(suffix string) *Node {
		t.Helper()
		for k, n := range g.Nodes {
			if k == "cgfixture."+suffix || k == "(*cgfixture.T)."+suffix {
				return n
			}
		}
		t.Fatalf("no node for %q in %v", suffix, keys(g))
		return nil
	}

	top := find("top")
	if len(top.Calls) != 1 {
		t.Fatalf("top has %d resolved calls, want 1 (t.sync)", len(top.Calls))
	}
	if g.Nodes[top.Calls[0].Callee] == nil {
		t.Errorf("top's callee %q has no node", top.Calls[0].Callee)
	}

	sync := find("sync")
	// t.f.Sync() resolves to (*os.File).Sync — a real static callee whose
	// body is outside the program (no node, but an edge).
	if len(sync.Calls) != 1 {
		t.Fatalf("sync has %d resolved calls, want 1", len(sync.Calls))
	}
	if g.Nodes[sync.Calls[0].Callee] != nil {
		t.Errorf("(*os.File).Sync should have no in-program node")
	}

	dyn := find("viaValue")
	if dyn.Dynamic != 1 || len(dyn.Calls) != 0 {
		t.Errorf("viaValue: dynamic=%d calls=%d, want 1/0", dyn.Dynamic, len(dyn.Calls))
	}

	leaf := find("leaf")
	callers := g.Callers(leaf.Key)
	if len(callers) != 1 || callers[0].Decl.Name.Name != "caller" {
		t.Errorf("Callers(leaf) = %v, want [caller]", callers)
	}
}

func TestTransitiveMatchers(t *testing.T) {
	prog := progFromSource(t, src)
	g := Of(prog)
	matched := g.TransitiveMatchers(func(pp *analysis.ProgramPackage, call *ast.CallExpr) bool {
		fn := StaticCallee(pp.TypesInfo, call)
		return fn != nil && fn.Name() == "Sync"
	})
	wantMatched := []string{"(*cgfixture.T).sync", "cgfixture.top"}
	for _, k := range wantMatched {
		if !matched[k] {
			t.Errorf("%s should transitively reach Sync; matched=%v", k, matched)
		}
	}
	for _, k := range []string{"cgfixture.leaf", "cgfixture.caller", "cgfixture.viaValue"} {
		if matched[k] {
			t.Errorf("%s must not match", k)
		}
	}
}

func keys(g *Graph) []string {
	var out []string
	for k := range g.Nodes {
		out = append(out, k)
	}
	return out
}
