// Package callgraph builds the static call graph of an analysis.Program —
// the shared substrate of the interprocedural analyzers (advicetaint,
// retrysound, conclint) and of detlint's named-goroutine resolution.
//
// The graph is edge-per-call-site over statically resolvable callees:
// direct function calls, qualified package calls, and method calls on
// concrete receivers. Calls through function values, interface methods,
// and reflection are not resolved; each node counts them (Dynamic), and
// every client must treat an unresolved call as "anything may happen" in
// whichever direction keeps its own check sound (taint: result is clean —
// matching advicesize's laundering rule; reachability: target unseen).
// These caveats are documented per analyzer in DESIGN.md §17.
//
// Nodes are keyed by types.Func.FullName() (e.g.
// "(*karousos.dev/karousos/internal/epochlog.Log).committer"), which is
// stable across packages even though the loader type-checks each package
// with a private FileSet: a function seen from source and the same
// function seen through export data key identically.
package callgraph

import (
	"go/ast"
	"go/types"

	"karousos.dev/karousos/internal/analysis"
)

// Node is one function declaration with a body somewhere in the program.
type Node struct {
	// Key is types.Func.FullName().
	Key string
	// Pkg is the program package holding the declaration; positions inside
	// Decl resolve against Pkg.Fset only.
	Pkg  *analysis.ProgramPackage
	Decl *ast.FuncDecl
	Func *types.Func
	// Calls are the statically resolved call sites in Decl's body,
	// including those inside nested function literals.
	Calls []Edge
	// Sites are ALL call expressions in the body — resolved, dynamic, and
	// interface-dispatched alike (conversions and builtins excluded).
	// Matchers that recognize a call by shape (an interface fsync, a
	// selector name) must scan Sites: an unresolved call has no edge.
	Sites []*ast.CallExpr
	// Dynamic counts call sites in the body that could not be resolved
	// (function values, interface methods).
	Dynamic int
}

// Edge is one resolved call site.
type Edge struct {
	// Site is the call expression, positioned in the caller's Fset.
	Site *ast.CallExpr
	// Callee is the target's key. The target may have no Node when its
	// body is outside the program (standard library, export-data-only).
	Callee string
	// Fn is the resolved callee object as seen from the caller's package.
	Fn *types.Func
}

// Graph is the program's static call graph.
type Graph struct {
	Nodes map[string]*Node
	// callers is the reverse adjacency: callee key -> caller keys.
	callers map[string][]string
}

// Of returns the program's call graph, building it once and caching it as
// a program fact shared by every analyzer.
func Of(prog *analysis.Program) *Graph {
	return prog.Fact("callgraph", func() any { return Build(prog) }).(*Graph)
}

// Build constructs the call graph over every function declaration in the
// program.
func Build(prog *analysis.Program) *Graph {
	g := &Graph{Nodes: map[string]*Node{}, callers: map[string][]string{}}
	for _, pp := range prog.Packages {
		for _, f := range pp.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pp.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Key: fn.FullName(), Pkg: pp, Decl: fd, Func: fn}
				ast.Inspect(fd.Body, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					callee := StaticCallee(pp.TypesInfo, call)
					switch {
					case callee != nil:
						key := callee.FullName()
						n.Calls = append(n.Calls, Edge{Site: call, Callee: key, Fn: callee})
						g.callers[key] = append(g.callers[key], n.Key)
						n.Sites = append(n.Sites, call)
					case !isNonCall(pp.TypesInfo, call):
						n.Dynamic++
						n.Sites = append(n.Sites, call)
					}
					return true
				})
				g.Nodes[n.Key] = n
			}
		}
	}
	return g
}

// Node returns the graph node declaring fn, nil when fn's body is outside
// the program.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn.FullName()]
}

// Callers returns the nodes containing a resolved call to key.
func (g *Graph) Callers(key string) []*Node {
	var out []*Node
	seen := map[string]bool{}
	for _, ck := range g.callers[key] {
		if seen[ck] {
			continue
		}
		seen[ck] = true
		if n := g.Nodes[ck]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// TransitiveMatchers computes the set of node keys from which a call site
// matching direct is reachable through resolved edges: a node matches if
// direct reports true for one of its own call sites, or if it calls a
// matching node. This is the shared reachability fact under locklint's
// "holds a lock across blocking I/O" and retrysound's "this loop re-sends
// an HTTP request". The direct matcher is run over Sites — every call
// expression including dynamic and interface-dispatched ones — so a
// shape-based matcher (an interface fsync) still fires where no edge
// exists; only the transitive PROPAGATION is limited to resolved edges. A
// check needing the opposite default must treat Node.Dynamic itself as a
// finding.
func (g *Graph) TransitiveMatchers(direct func(pkg *analysis.ProgramPackage, call *ast.CallExpr) bool) map[string]bool {
	matched := map[string]bool{}
	var queue []string
	for key, n := range g.Nodes {
		for _, site := range n.Sites {
			if direct(n.Pkg, site) {
				matched[key] = true
				queue = append(queue, key)
				break
			}
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, ck := range g.callers[key] {
			if !matched[ck] {
				matched[ck] = true
				queue = append(queue, ck)
			}
		}
	}
	return matched
}

// StaticCallee resolves a call expression to the *types.Func it must
// invoke, nil when the target is dynamic (function value, interface
// method) or not a function call at all (conversion, builtin).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// A method on an interface value dispatches dynamically.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return origin(fn)
		}
		// Qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

// origin normalizes generic instantiations to their declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// isNonCall reports whether call is a conversion or a builtin — call
// expressions that never transfer control.
func isNonCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.Uses[fun].(*types.Builtin); ok {
			return true
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}
