// Package all enumerates every karousos-vet analyzer. Importing it (as
// cmd/karousos-vet does) runs each analyzer's init registration, so the
// check-name registry (analysis.KnownChecks) and this list stay in sync by
// construction — the consistency test in this package proves it both ways.
package all

import (
	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/advicesize"
	"karousos.dev/karousos/internal/analysis/advicetaint"
	"karousos.dev/karousos/internal/analysis/conclint"
	"karousos.dev/karousos/internal/analysis/detlint"
	"karousos.dev/karousos/internal/analysis/errladder"
	"karousos.dev/karousos/internal/analysis/rejectcode"
	"karousos.dev/karousos/internal/analysis/retrysound"
)

// Analyzers is every analyzer karousos-vet runs, in output order.
var Analyzers = []*analysis.Analyzer{
	detlint.Analyzer,
	errladder.Analyzer,
	rejectcode.Analyzer,
	advicesize.Analyzer,
	advicetaint.Analyzer,
	retrysound.Analyzer,
	conclint.Analyzer,
}
