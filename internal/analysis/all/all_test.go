package all

import (
	"testing"

	"karousos.dev/karousos/internal/analysis"
)

// TestRegistryMatchesAnalyzers proves the directive registry and the
// analyzer list agree in both directions: every check name an analyzer
// claims is registered to it, and every registered check is claimed by an
// analyzer in Analyzers. A mismatch means a //karousos:<check>-ok
// directive would be accepted with no analyzer honoring it (or vice
// versa).
func TestRegistryMatchesAnalyzers(t *testing.T) {
	claimed := map[string]string{}
	for _, a := range Analyzers {
		checks := a.Checks
		if len(checks) == 0 {
			checks = []string{a.Name}
		}
		for _, c := range checks {
			if prev, dup := claimed[c]; dup {
				t.Errorf("check %q claimed by both %s and %s", c, prev, a.Name)
			}
			claimed[c] = a.Name
			owner, ok := analysis.AnalyzerForCheck(c)
			if !ok {
				t.Errorf("analyzer %s's check %q is not in the registry (missing analysis.Register in init?)", a.Name, c)
			} else if owner != a.Name {
				t.Errorf("check %q registered to %s but claimed by %s", c, owner, a.Name)
			}
		}
	}
	for _, c := range analysis.KnownChecks() {
		if c == "directive" {
			continue // the directive checker's own diagnostics
		}
		if _, ok := claimed[c]; !ok {
			t.Errorf("registry knows check %q but no analyzer in all.Analyzers claims it", c)
		}
	}
}

// TestSevenAnalyzers pins the analyzer census: four original passes plus
// advicetaint, retrysound, and conclint.
func TestSevenAnalyzers(t *testing.T) {
	if len(Analyzers) != 7 {
		t.Fatalf("got %d analyzers, want 7", len(Analyzers))
	}
	want := map[string]bool{
		"detlint": true, "errladder": true, "rejectcode": true, "advicesize": true,
		"advicetaint": true, "retrysound": true, "conclint": true,
	}
	for _, a := range Analyzers {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("missing analyzer %q", name)
	}
}
