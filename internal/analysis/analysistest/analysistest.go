// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (self-hosted; see
// internal/analysis).
//
// Fixture layout mirrors upstream: <testdata>/src/<pkg>/*.go, where <pkg> is
// a bare package name (no slash — internal/analysis treats slash-free paths
// as always in scope). Fixtures may import the standard library and any
// package of this module.
//
// Expectations are written on the offending line:
//
//	for k := range m { // want `iterates a map`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression; a line with no want comment must produce no diagnostics, and
// every want regexp must be matched by exactly one diagnostic on its line.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/load"
)

// expectation is one want regexp at a (file, line).
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads each fixture package under testdata/src, runs the analyzer, and
// reports mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runOne(t, testdata, a, pkg)
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkgname)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("%s: no fixture files in %s", a.Name, dir)
	}
	sort.Strings(files)
	p, err := load.Files(pkgname, files)
	if err != nil {
		t.Fatalf("%s: loading fixture %s: %v", a.Name, pkgname, err)
	}

	expects, err := parseWants(p.Fset, p.Syntax)
	if err != nil {
		t.Fatalf("%s: %s: %v", a.Name, pkgname, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer: a, Fset: p.Fset, Files: p.Syntax,
		Pkg: p.Types, TypesInfo: p.TypesInfo,
		Report: func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: running over %s: %v", a.Name, pkgname, err)
	}
	analysis.SortDiagnostics(p.Fset, got)

	for _, d := range got {
		pos := p.Fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if e.hit || e.file != pos.Filename || e.line != pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s: expected diagnostic matching %s at %s:%d, got none", a.Name, e.raw, filepath.Base(e.file), e.line)
		}
	}
}

// parseWants extracts every want expectation from the fixture's comments.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", filepath.Base(pos.Filename), pos.Line, err)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %w", filepath.Base(pos.Filename), pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return out, nil
}

// splitPatterns parses a sequence of Go string literals (`...` or "...").
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquoted want pattern")
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			// Find the closing quote, honoring escapes, then unquote.
			i := 1
			for i < len(s) {
				if s[i] == '\\' {
					i += 2
					continue
				}
				if s[i] == '"' {
					break
				}
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated quoted want pattern")
			}
			var err error
			lit, err = strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted want pattern: %w", err)
			}
			s = s[i+1:]
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}
