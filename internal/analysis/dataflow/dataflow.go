// Package dataflow is the interprocedural taint engine under advicetaint:
// flow-approximate propagation of attacker-chosen values from policy
// sources to policy sinks across function boundaries, over the static call
// graph (internal/analysis/callgraph).
//
// # Model
//
// Taint is a bitmask per variable: bit 0 (SourceBit) marks "derived from a
// policy source", bit i+1 (ParamBit(i)) marks "derived from the enclosing
// function's i-th parameter". Each function gets a Summary computed to a
// fixpoint over the call graph:
//
//   - Return: the mask reaching any return value when the function runs
//     with every parameter tainted by its own bit — so a caller knows
//     whether g(x) hands back x's taint (ParamBit) or mints fresh taint
//     from a source inside g (SourceBit);
//   - ParamToSink[i]: parameter i reaches a policy sink unclamped, either
//     directly or through further calls.
//
// Check then replays one function and reports a Finding wherever a
// SourceBit value reaches a sink — locally, or as an argument to a callee
// whose ParamToSink says the value keeps flowing to a sink downstream.
//
// # Approximations (see DESIGN.md §17)
//
// Flow is replayed in source order with no branch joins, exactly like
// advicesize's local pass: a clamp anywhere before the sink in source
// order clears the taint. Calls the graph cannot resolve (function values,
// interface methods) launder their arguments and return clean values —
// advicesize's rule, kept so both passes agree on what a clamp is. The
// escape hatch for the residue is a reviewed //karousos: directive.
package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/callgraph"
)

// Mask is a taint bitmask: SourceBit plus one bit per parameter.
type Mask uint64

// SourceBit marks a value derived from a policy source.
const SourceBit Mask = 1

// maxParams bounds the parameter bits a Mask can carry; parameters past
// the bound are untracked (never tainted) — no real function here comes
// close.
const maxParams = 62

// ParamBit is the mask bit of parameter i; 0 when i is untrackable.
func ParamBit(i int) Mask {
	if i < 0 || i >= maxParams {
		return 0
	}
	return 1 << (uint(i) + 1)
}

// Sink is one sensitive expression inside a call: Expr must not be
// tainted, What names the sink in diagnostics ("make size", "file path").
type Sink struct {
	Expr ast.Expr
	What string
}

// Policy supplies the source/sanitizer/sink vocabulary of one analyzer.
type Policy struct {
	// IsSource reports whether call mints an attacker-chosen value.
	IsSource func(info *types.Info, call *ast.CallExpr) bool
	// IsSanitizer reports whether call clamps its identifier arguments
	// (their taint is cleared).
	IsSanitizer func(info *types.Info, call *ast.CallExpr) bool
	// CallSinks returns the sensitive argument expressions of call.
	CallSinks func(info *types.Info, call *ast.CallExpr) []Sink
	// SanitizeCompare, when set, makes a relational comparison against a
	// non-constant bound (or a constant ≤ MaxConstBound) clear the taint
	// of the compared expression — the `if n > len(rest) { reject }`
	// clamp idiom.
	SanitizeCompare bool
	MaxConstBound   int64
	// LoopBound, when non-empty, makes a tainted for-loop bound a sink
	// with this name.
	LoopBound string
	// Branch, when non-nil, nominates if-statements whose condition must
	// not be tainted (returns the sink name, "" to skip).
	Branch func(info *types.Info, ifStmt *ast.IfStmt) string
}

// Summary is one function's interprocedural taint behavior.
type Summary struct {
	Return      Mask
	ParamToSink []bool
}

// Finding is one source-to-sink flow inside a checked function.
type Finding struct {
	Pos  token.Pos
	What string
	// Callee names the called function when the sink is downstream (the
	// flagged expression is an argument whose taint reaches a sink inside
	// Callee); empty for a sink in the checked function itself.
	Callee string
}

// Engine holds the program, its call graph, and the fixpoint summaries for
// one policy.
type Engine struct {
	Prog  *analysis.Program
	Graph *callgraph.Graph
	pol   Policy
	sums  map[string]*Summary
}

// New builds the engine: call graph (shared program fact) plus taint
// summaries for every function in the program, iterated to a fixpoint.
func New(prog *analysis.Program, pol Policy) *Engine {
	e := &Engine{Prog: prog, Graph: callgraph.Of(prog), pol: pol, sums: map[string]*Summary{}}
	for key, n := range e.Graph.Nodes {
		e.sums[key] = &Summary{ParamToSink: make([]bool, numParams(n.Func))}
	}
	// Masks and ParamToSink only ever grow, so iterate until stable; the
	// bound is a backstop against a pathological graph, not a tuning knob.
	for pass := 0; pass < 32; pass++ {
		changed := false
		for key, n := range e.Graph.Nodes {
			sum := e.summarize(n)
			old := e.sums[key]
			if sum.Return&^old.Return != 0 {
				old.Return |= sum.Return
				changed = true
			}
			for i, s := range sum.ParamToSink {
				if s && !old.ParamToSink[i] {
					old.ParamToSink[i] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// Summary returns fn's fixpoint summary, nil when fn's body is outside the
// program.
func (e *Engine) Summary(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return e.sums[fn.FullName()]
}

// Check replays fd and returns every source-to-sink flow in it.
func (e *Engine) Check(pp *analysis.ProgramPackage, fd *ast.FuncDecl) []Finding {
	w := e.newWalker(pp, fd, true)
	w.walk(fd.Body)
	return w.findings
}

// summarize computes one function's summary from the current fixpoint
// state: parameters run pre-tainted with their own bits.
func (e *Engine) summarize(n *callgraph.Node) *Summary {
	w := e.newWalker(n.Pkg, n.Decl, false)
	w.walk(n.Decl.Body)
	return &Summary{Return: w.ret, ParamToSink: w.paramSink}
}

// walker replays one function body in source order.
type walker struct {
	e       *Engine
	pp      *analysis.ProgramPackage
	collect bool // record findings (Check) vs summarize only

	taint     map[types.Object]Mask
	params    []*types.Var
	ret       Mask
	paramSink []bool
	findings  []Finding
}

func (e *Engine) newWalker(pp *analysis.ProgramPackage, fd *ast.FuncDecl, collect bool) *walker {
	w := &walker{e: e, pp: pp, collect: collect, taint: map[types.Object]Mask{}}
	fn, _ := pp.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn != nil {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			w.params = append(w.params, p)
			if !collect {
				w.taint[p] = ParamBit(i)
			}
		}
	}
	w.paramSink = make([]bool, len(w.params))
	return w
}

func (w *walker) info() *types.Info { return w.pp.TypesInfo }

func (w *walker) walk(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.IfStmt:
			if w.e.pol.Branch != nil {
				if what := w.e.pol.Branch(w.info(), n); what != "" {
					w.sinkMask(w.mask(n.Cond), n.Cond.Pos(), what, "")
				}
			}
			if w.e.pol.SanitizeCompare {
				w.sanitizeCond(n.Cond)
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				if w.e.pol.LoopBound != "" {
					w.loopBoundSink(n)
				}
				if w.e.pol.SanitizeCompare {
					w.sanitizeCond(n.Cond)
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				w.ret |= w.mask(r)
			}
		case *ast.CallExpr:
			w.call(n)
		}
		return true
	})
}

// assign taints LHS objects with their RHS masks (multi-value RHS spreads
// the single mask, as in advicesize).
func (w *walker) assign(a *ast.AssignStmt) {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		m := w.mask(a.Rhs[0])
		for _, l := range a.Lhs {
			w.set(l, m)
		}
		return
	}
	for i, l := range a.Lhs {
		if i < len(a.Rhs) {
			w.set(l, w.mask(a.Rhs[i]))
		}
	}
}

func (w *walker) set(lhs ast.Expr, m Mask) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := w.info().ObjectOf(id)
	if obj == nil {
		return
	}
	if m == 0 {
		delete(w.taint, obj)
	} else {
		w.taint[obj] = m
	}
}

// mask computes the taint mask of an expression: identifiers contribute
// their tracked mask, source calls contribute SourceBit, resolved calls
// contribute their summary applied to the argument masks, unresolved
// calls launder.
func (w *walker) mask(e ast.Expr) Mask {
	var m Mask
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			m |= w.callMask(n)
			return false
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := w.info().ObjectOf(n); obj != nil {
				m |= w.taint[obj]
			}
		}
		return true
	})
	return m
}

func (w *walker) callMask(call *ast.CallExpr) Mask {
	if w.e.pol.IsSource != nil && w.e.pol.IsSource(w.info(), call) {
		return SourceBit
	}
	// A sanitizer's result is clamped by definition — the policy name is
	// authoritative over whatever its body's summary would forward.
	if w.e.pol.IsSanitizer != nil && w.e.pol.IsSanitizer(w.info(), call) {
		return 0
	}
	// Conversions propagate: uint64(n) is still n.
	if tv, ok := w.info().Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.mask(call.Args[0])
	}
	callee := callgraph.StaticCallee(w.info(), call)
	if callee == nil {
		return 0 // dynamic or builtin: launder (documented approximation)
	}
	sum := w.e.sums[callee.FullName()]
	if sum == nil {
		return 0 // body outside the program: launder
	}
	var m Mask
	if sum.Return&SourceBit != 0 {
		m |= SourceBit
	}
	for i := range numParamsOf(callee) {
		if sum.Return&ParamBit(i) != 0 {
			m |= w.argMask(call, callee, i)
		}
	}
	return m
}

// argMask is the taint mask of the argument bound to callee's parameter i.
func (w *walker) argMask(call *ast.CallExpr, callee *types.Func, i int) Mask {
	sig := callee.Type().(*types.Signature)
	// Method value receiver shifts nothing here: callgraph resolves the
	// selector form, where call.Args aligns with sig.Params.
	if sig.Variadic() && i >= sig.Params().Len()-1 {
		var m Mask
		for j := sig.Params().Len() - 1; j < len(call.Args); j++ {
			m |= w.mask(call.Args[j])
		}
		return m
	}
	if i < len(call.Args) {
		return w.mask(call.Args[i])
	}
	return 0
}

// call handles sanitizer calls, call-argument sinks, and taint flowing
// into callees whose parameters reach sinks downstream.
func (w *walker) call(call *ast.CallExpr) {
	if w.e.pol.IsSanitizer != nil && w.e.pol.IsSanitizer(w.info(), call) {
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				w.set(id, 0)
			}
		}
		return
	}
	if w.e.pol.CallSinks != nil {
		for _, s := range w.e.pol.CallSinks(w.info(), call) {
			w.sinkMask(w.mask(s.Expr), s.Expr.Pos(), s.What, "")
		}
	}
	// Interprocedural sink: an argument whose taint a callee forwards to
	// a sink of its own.
	callee := callgraph.StaticCallee(w.info(), call)
	if callee == nil {
		return
	}
	sum := w.e.sums[callee.FullName()]
	if sum == nil {
		return
	}
	for i, reaches := range sum.ParamToSink {
		if !reaches {
			continue
		}
		w.sinkMask(w.argMask(call, callee, i), call.Pos(), "", callee.Name())
	}
}

// sinkMask records the consequences of mask m reaching a sink: a finding
// for SourceBit (when collecting), ParamToSink for parameter bits.
func (w *walker) sinkMask(m Mask, pos token.Pos, what, callee string) {
	if m == 0 {
		return
	}
	if m&SourceBit != 0 && w.collect {
		w.findings = append(w.findings, Finding{Pos: pos, What: what, Callee: callee})
	}
	for i := range w.paramSink {
		if m&ParamBit(i) != 0 {
			w.paramSink[i] = true
		}
	}
}

// loopBoundSink flags a for-loop whose bound side is tainted. The operand
// rooted at a variable declared in the loop's own init is the induction
// variable, not the bound.
func (w *walker) loopBoundSink(f *ast.ForStmt) {
	cmp, ok := f.Cond.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch cmp.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return
	}
	initVars := map[types.Object]bool{}
	if init, ok := f.Init.(*ast.AssignStmt); ok {
		for _, l := range init.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if obj := w.info().ObjectOf(id); obj != nil {
					initVars[obj] = true
				}
			}
		}
	}
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && initVars[w.info().ObjectOf(id)] {
			continue
		}
		w.sinkMask(w.mask(side), side.Pos(), w.e.pol.LoopBound, "")
	}
}

// sanitizeCond clears taint for expressions relationally compared against
// an acceptable bound, walking through && and || — advicesize's clamp
// idiom, applied to whole masks.
func (w *walker) sanitizeCond(cond ast.Expr) {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND, token.LOR:
			w.sanitizeCond(c.X)
			w.sanitizeCond(c.Y)
		case token.GTR, token.GEQ, token.LSS, token.LEQ:
			w.sanitizeSide(c.X, c.Y)
			w.sanitizeSide(c.Y, c.X)
		}
	case *ast.ParenExpr:
		w.sanitizeCond(c.X)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			w.sanitizeCond(c.X)
		}
	}
}

func (w *walker) sanitizeSide(candidate, bound ast.Expr) {
	if tv, ok := w.info().Types[bound]; ok && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); !exact || v <= 0 || v > w.e.pol.MaxConstBound {
			return
		}
	}
	ast.Inspect(candidate, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			w.set(id, 0)
		}
		return true
	})
}

func numParams(fn *types.Func) int {
	if fn == nil {
		return 0
	}
	return numParamsOf(fn)
}

func numParamsOf(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	return sig.Params().Len()
}
