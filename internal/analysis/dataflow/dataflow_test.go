package dataflow

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/load"
)

// The fixture's policy: decode() is the source, clamp() the sanitizer,
// make sizes and loop bounds the sinks.
const src = `package dffixture

func decode() int { return 42 }

func clamp(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

// forward hands its parameter back: Return must carry ParamBit(0).
func forward(n int) int { return n }

// mint launders nothing: it returns a fresh source value.
func mint() int { return decode() }

// alloc sinks its parameter into a make size: ParamToSink[0].
func alloc(n int) []byte { return make([]byte, n) }

// allocVia sinks its parameter through alloc: ParamToSink[0] by fixpoint.
func allocVia(n int) []byte { return alloc(n) }

// bad: source -> forward -> alloc, no clamp anywhere.
func bad() []byte {
	n := decode()
	return alloc(forward(n))
}

// good: the clamp call clears the taint before the sink.
func good() []byte {
	n := decode()
	n = clamp(n)
	return alloc(n)
}

// compared: the comparison clamp idiom clears the taint.
func compared(limit int) []byte {
	n := decode()
	if n > limit {
		return nil
	}
	return make([]byte, n)
}

// spin: a source-derived loop bound.
func spin() int {
	n := mint()
	total := 0
	for i := 0; i < n; i++ {
		total++
	}
	return total
}

// laundered: a dynamic call launders by design (documented approximation).
func laundered(f func(int) int) []byte {
	n := f(decode())
	return make([]byte, n)
}
`

func engineFromSource(t *testing.T, src string) (*Engine, *analysis.ProgramPackage) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "p.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := load.Files("dffixture", []string{path})
	if err != nil {
		t.Fatalf("load.Files: %v", err)
	}
	pp := &analysis.ProgramPackage{
		PkgPath: p.PkgPath, Fset: p.Fset, Files: p.Syntax,
		Pkg: p.Types, TypesInfo: p.TypesInfo,
	}
	prog := analysis.NewProgram([]*analysis.ProgramPackage{pp})
	pol := Policy{
		IsSource: func(info *types.Info, call *ast.CallExpr) bool {
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "decode"
		},
		IsSanitizer: func(info *types.Info, call *ast.CallExpr) bool {
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "clamp"
		},
		CallSinks: func(info *types.Info, call *ast.CallExpr) []Sink {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 2 {
				return []Sink{{Expr: call.Args[1], What: "make size"}}
			}
			return nil
		},
		SanitizeCompare: true,
		MaxConstBound:   1 << 20,
		LoopBound:       "loop bound",
	}
	return New(prog, pol), pp
}

func (e *Engine) summaryByName(t *testing.T, name string) *Summary {
	t.Helper()
	for key, sum := range e.sums {
		if strings.HasSuffix(key, "."+name) {
			return sum
		}
	}
	t.Fatalf("no summary for %q", name)
	return nil
}

func TestSummaries(t *testing.T) {
	e, _ := engineFromSource(t, src)

	// decode's own body returns a constant — the SOURCE is the call site,
	// where the policy's IsSource fires in the caller.
	if sum := e.summaryByName(t, "decode"); sum.Return != 0 {
		t.Errorf("decode: Return=%b, want 0 (source taint is minted at call sites)", sum.Return)
	}
	if sum := e.summaryByName(t, "forward"); sum.Return&ParamBit(0) == 0 {
		t.Errorf("forward: Return=%b, want ParamBit(0) set", sum.Return)
	}
	if sum := e.summaryByName(t, "mint"); sum.Return&SourceBit == 0 {
		t.Errorf("mint: Return=%b, want SourceBit via decode's summary", sum.Return)
	}
	// clamp is the sanitizer by name, but its own body also forwards its
	// param; the sanitizer effect applies at call sites, which is what the
	// findings test checks. Here: alloc/allocVia param-to-sink.
	if sum := e.summaryByName(t, "alloc"); !sum.ParamToSink[0] {
		t.Error("alloc: param 0 must reach the make-size sink")
	}
	if sum := e.summaryByName(t, "allocVia"); !sum.ParamToSink[0] {
		t.Error("allocVia: param 0 must reach the sink transitively through alloc")
	}
	if sum := e.summaryByName(t, "laundered"); sum.ParamToSink[0] {
		t.Error("laundered: a func-value parameter is not itself sunk")
	}
}

func TestFindings(t *testing.T) {
	e, pp := engineFromSource(t, src)
	byFunc := map[string][]Finding{}
	for _, f := range pp.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			byFunc[fd.Name.Name] = e.Check(pp, fd)
		}
	}

	bad := byFunc["bad"]
	if len(bad) != 1 || bad[0].Callee != "alloc" {
		t.Errorf("bad: findings=%+v, want one via-alloc finding", bad)
	}
	spin := byFunc["spin"]
	if len(spin) != 1 || spin[0].What != "loop bound" {
		t.Errorf("spin: findings=%+v, want one loop-bound finding", spin)
	}
	for _, name := range []string{"good", "compared", "laundered", "alloc", "allocVia", "forward"} {
		if got := byFunc[name]; len(got) != 0 {
			t.Errorf("%s: unexpected findings %+v", name, got)
		}
	}
}
