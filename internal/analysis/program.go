package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// ProgramPackage is one loaded package inside a Program. Each package
// carries its own FileSet (the loader type-checks packages independently),
// so positions must always be resolved against the owning package's Fset.
type ProgramPackage struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Program is the whole package set of one karousos-vet run — the scope over
// which interprocedural facts (call graph, dataflow summaries) are built.
// Facts are computed once per Program and shared by every analyzer through
// Fact, so seven analyzers over forty packages pay for one call graph.
type Program struct {
	Packages []*ProgramPackage

	mu    sync.Mutex
	facts map[string]*factEntry
}

// factEntry builds one fact exactly once, outside the program lock, so a
// fact's build function may itself request other facts (the dataflow
// engine asks for the call graph) without deadlocking.
type factEntry struct {
	once sync.Once
	v    any
}

// NewProgram wraps a loaded package set.
func NewProgram(pkgs []*ProgramPackage) *Program {
	return &Program{Packages: pkgs, facts: map[string]*factEntry{}}
}

// Fact returns the cached program-wide fact for key, building it on first
// use. Facts are built once and shared by every analyzer; a build may
// request other facts (different keys only — same-key recursion would
// self-deadlock).
func (p *Program) Fact(key string, build func() any) any {
	p.mu.Lock()
	if p.facts == nil {
		p.facts = map[string]*factEntry{}
	}
	e, ok := p.facts[key]
	if !ok {
		e = &factEntry{}
		p.facts[key] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.v = build() })
	return e.v
}

// PackageOf returns the program package wrapping pkg, nil if absent.
func (p *Program) PackageOf(pkg *types.Package) *ProgramPackage {
	for _, pp := range p.Packages {
		if pp.Pkg == pkg {
			return pp
		}
	}
	return nil
}

// SingletonProgram returns the pass's Program, building (and caching) a
// one-package Program when the driver supplied none (unit tests, fixture
// runs): interprocedural facts then cover exactly the fixture package,
// which is what // want fixtures exercise.
func (p *Pass) SingletonProgram() *Program {
	if p.Program == nil {
		p.Program = NewProgram([]*ProgramPackage{{
			PkgPath:   p.Pkg.Path(),
			Fset:      p.Fset,
			Files:     p.Files,
			Pkg:       p.Pkg,
			TypesInfo: p.TypesInfo,
		}})
	}
	return p.Program
}
