// Package advicetaint is the interprocedural generalization of advicesize:
// the same advice-decode sources and clamp sanitizers (the policy tables
// are imported from advicesize, which stays on as the fast local pre-pass),
// chased across function boundaries over the program call graph, and
// checked against a wider sink set.
//
// A value minted by a raw wire read (advicesize.IsSourceCall) must pass a
// clamp (advicesize.IsSanitizerName, or a relational comparison against an
// acceptable bound) before it reaches:
//
//   - an allocation size: make, io.ReadFull / ReadAtLeast / CopyN — the
//     advicesize sinks, now caught even when the decode and the make live
//     in different functions;
//   - a loop bound: a for-loop condition compared against an unclamped
//     advice-derived count spins the auditor on attacker-chosen work;
//   - a file path: os.Open / OpenFile / Create / ReadFile / WriteFile /
//     Remove / RemoveAll / MkdirAll with an advice-derived path escapes the
//     evidence directory;
//   - a verdict-affecting branch: an equality or boolean test of an
//     unclamped advice value that guards a `return Verdict{...}` lets the
//     server steer the audit outcome. Branches returning a RejectCode are
//     deliberately NOT sinks — rejecting on raw advice is validation;
//     accepting on it is the hazard.
//
// Flows into a callee whose parameter reaches one of these sinks unclamped
// (dataflow.Summary.ParamToSink) are reported at the call site. The
// analysis shares advicesize's approximations — source-order replay, calls
// the graph cannot resolve launder — documented in DESIGN.md §17. The
// escape hatch is //karousos:advicetaint-ok <reason>.
package advicetaint

import (
	"go/ast"
	"go/types"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/advicesize"
	"karousos.dev/karousos/internal/analysis/dataflow"
)

// Packages are the packages whose functions are checked (findings are only
// reported here; taint summaries cover the whole program, so a flow that
// crosses into these packages from outside is still seen).
var Packages = append([]string{"internal/auditd"}, advicesize.Packages...)

// Analyzer is the advicetaint pass.
var Analyzer = &analysis.Analyzer{
	Name: "advicetaint",
	Doc: "interprocedural advice-taint: decode-derived values must pass a clamp before any allocation size, " +
		"loop bound, file path, or verdict-affecting branch, across function boundaries; " +
		"suppress with //karousos:advicetaint-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	if !analysis.PkgInScope(pass.Pkg.Path(), Packages) {
		return nil
	}
	prog := pass.SingletonProgram()
	eng := engineOf(prog)
	pp := prog.PackageOf(pass.Pkg)
	if pp == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fnd := range eng.Check(pp, fd) {
				if fnd.Callee != "" {
					pass.Reportf(fnd.Pos, "passes an unclamped advice-derived value to %s, where it reaches an allocation, loop, path, or verdict sink; clamp before the call", fnd.Callee)
					continue
				}
				pass.Reportf(fnd.Pos, "%s driven by an unclamped advice-derived value; clamp it against remaining input or verifier.Limits first", fnd.What)
			}
		}
	}
	return nil
}

// engineOf builds (once per program, shared across packages via the
// program fact cache) the dataflow engine with the advice-taint policy.
func engineOf(prog *analysis.Program) *dataflow.Engine {
	return prog.Fact("advicetaint.engine", func() any {
		return dataflow.New(prog, dataflow.Policy{
			IsSource:        advicesize.IsSourceCall,
			IsSanitizer:     isSanitizerCall,
			CallSinks:       callSinks,
			SanitizeCompare: true,
			MaxConstBound:   advicesize.MaxConstBound,
			LoopBound:       "loop bound",
			Branch:          verdictBranch,
		})
	}).(*dataflow.Engine)
}

// isSanitizerCall applies advicesize's clamp-name policy to a call.
func isSanitizerCall(info *types.Info, call *ast.CallExpr) bool {
	return advicesize.IsSanitizerName(bareName(call))
}

// bareName is the called function's unqualified name ("" when the callee
// is not a plain identifier or selector).
func bareName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// pathSinkFuncs are the os functions whose first argument is a file path.
var pathSinkFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true,
	"ReadFile": true, "WriteFile": true,
	"Remove": true, "RemoveAll": true, "MkdirAll": true, "Mkdir": true,
}

// callSinks returns the sensitive argument positions of call: allocation
// sizes (advicesize's sink set) and file paths.
func callSinks(info *types.Info, call *ast.CallExpr) []dataflow.Sink {
	// make(T, n[, c]): every size argument.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			var sinks []dataflow.Sink
			for _, sizeArg := range call.Args[1:] {
				sinks = append(sinks, dataflow.Sink{Expr: sizeArg, What: "make size"})
			}
			return sinks
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	switch pn.Imported().Path() {
	case "io":
		switch sel.Sel.Name {
		case "ReadFull":
			if len(call.Args) == 2 {
				return []dataflow.Sink{{Expr: call.Args[1], What: "io.ReadFull buffer"}}
			}
		case "ReadAtLeast", "CopyN":
			if len(call.Args) == 3 {
				return []dataflow.Sink{{Expr: call.Args[2], What: "io." + sel.Sel.Name + " size"}}
			}
		}
	case "os":
		if pathSinkFuncs[sel.Sel.Name] && len(call.Args) > 0 {
			return []dataflow.Sink{{Expr: call.Args[0], What: "os." + sel.Sel.Name + " path"}}
		}
	}
	return nil
}

// verdictBranch nominates if-statements that accept on advice: the
// condition is an equality or boolean test, and the guarded body returns a
// value of a type named Verdict. RejectCode returns are not sinks —
// rejecting raw advice is validation, accepting it is the hazard.
func verdictBranch(info *types.Info, ifStmt *ast.IfStmt) string {
	switch c := ast.Unparen(ifStmt.Cond).(type) {
	case *ast.BinaryExpr:
		if c.Op.String() != "==" && c.Op.String() != "!=" {
			return ""
		}
		// Nil tests (`if err != nil`) check presence, not an advice-chosen
		// value; decode errors carry spread taint but are not steering.
		for _, e := range []ast.Expr{c.X, c.Y} {
			if tv, ok := info.Types[e]; ok && tv.IsNil() {
				return ""
			}
		}
	case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.UnaryExpr:
		// boolean test
	default:
		return ""
	}
	found := ""
	ast.Inspect(ifStmt.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if named, ok := info.TypeOf(r).(*types.Named); ok && named.Obj().Name() == "Verdict" {
				found = "verdict-affecting branch"
				return false
			}
		}
		return true
	})
	return found
}
