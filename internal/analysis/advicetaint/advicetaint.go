// Package advicetaint is the interprocedural generalization of advicesize:
// the same advice-decode sources and clamp sanitizers (the policy tables
// are imported from advicesize, which stays on as the fast local pre-pass),
// chased across function boundaries over the program call graph, and
// checked against a wider sink set.
//
// A value minted by a raw wire read (advicesize.IsSourceCall) must pass a
// clamp (advicesize.IsSanitizerName, or a relational comparison against an
// acceptable bound) before it reaches:
//
//   - an allocation size: make, io.ReadFull / ReadAtLeast / CopyN — the
//     advicesize sinks, now caught even when the decode and the make live
//     in different functions;
//   - a loop bound: a for-loop condition compared against an unclamped
//     advice-derived count spins the auditor on attacker-chosen work;
//   - a file path: os.Open / OpenFile / Create / ReadFile / WriteFile /
//     Remove / RemoveAll / MkdirAll with an advice-derived path escapes the
//     evidence directory;
//   - a verdict-affecting branch: an equality or boolean test of an
//     unclamped advice value that guards a `return Verdict{...}` lets the
//     server steer the audit outcome. Branches returning a RejectCode are
//     deliberately NOT sinks — rejecting on raw advice is validation;
//     accepting on it is the hazard;
//   - a memo-cache index: the key argument of Probe / Insert on a Cache
//     receiver (internal/verifier/memo). The replay cache's soundness
//     reduces to "equal key implies equal input closure", which only holds
//     when keys are content addresses — raw advice bytes used as key
//     material let the server steer which cached effect set a group
//     replays. The clamp for key material is a cryptographic digest:
//     sha256.Sum256 or a digest*-named helper.
//
// Flows into a callee whose parameter reaches one of these sinks unclamped
// (dataflow.Summary.ParamToSink) are reported at the call site. The
// analysis shares advicesize's approximations — source-order replay, calls
// the graph cannot resolve launder — documented in DESIGN.md §17. The
// escape hatch is //karousos:advicetaint-ok <reason>.
package advicetaint

import (
	"go/ast"
	"go/types"
	"strings"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/advicesize"
	"karousos.dev/karousos/internal/analysis/dataflow"
)

// Packages are the packages whose functions are checked (findings are only
// reported here; taint summaries cover the whole program, so a flow that
// crosses into these packages from outside is still seen).
var Packages = append([]string{"internal/auditd"}, advicesize.Packages...)

// Analyzer is the advicetaint pass.
var Analyzer = &analysis.Analyzer{
	Name: "advicetaint",
	Doc: "interprocedural advice-taint: decode-derived values must pass a clamp before any allocation size, " +
		"loop bound, file path, verdict-affecting branch, or memo-cache key, across function boundaries; " +
		"suppress with //karousos:advicetaint-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	if !analysis.PkgInScope(pass.Pkg.Path(), Packages) {
		return nil
	}
	prog := pass.SingletonProgram()
	eng := engineOf(prog)
	pp := prog.PackageOf(pass.Pkg)
	if pp == nil {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, fnd := range eng.Check(pp, fd) {
				switch {
				case fnd.Callee != "":
					pass.Reportf(fnd.Pos, "passes an unclamped advice-derived value to %s, where it reaches an allocation, loop, path, verdict, or cache-key sink; clamp before the call", fnd.Callee)
				case fnd.What == "memo cache key":
					pass.Reportf(fnd.Pos, "memo cache key driven by a raw advice-derived value; content-address it through a digest (sha256.Sum256 or a digest* helper) first")
				default:
					pass.Reportf(fnd.Pos, "%s driven by an unclamped advice-derived value; clamp it against remaining input or verifier.Limits first", fnd.What)
				}
			}
		}
	}
	return nil
}

// engineOf builds (once per program, shared across packages via the
// program fact cache) the dataflow engine with the advice-taint policy.
func engineOf(prog *analysis.Program) *dataflow.Engine {
	return prog.Fact("advicetaint.engine", func() any {
		return dataflow.New(prog, dataflow.Policy{
			IsSource:        advicesize.IsSourceCall,
			IsSanitizer:     isSanitizerCall,
			CallSinks:       callSinks,
			SanitizeCompare: true,
			MaxConstBound:   advicesize.MaxConstBound,
			LoopBound:       "loop bound",
			Branch:          verdictBranch,
		})
	}).(*dataflow.Engine)
}

// isSanitizerCall applies advicesize's clamp-name policy to a call, plus
// the digest convention for memo-key material: a value that has passed
// through sha256.Sum256 (or a digest*-named helper) is a content address,
// not an attacker-steerable index.
func isSanitizerCall(info *types.Info, call *ast.CallExpr) bool {
	name := bareName(call)
	return advicesize.IsSanitizerName(name) || name == "Sum256" || strings.HasPrefix(name, "digest")
}

// bareName is the called function's unqualified name ("" when the callee
// is not a plain identifier or selector).
func bareName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// pathSinkFuncs are the os functions whose first argument is a file path.
var pathSinkFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true,
	"ReadFile": true, "WriteFile": true,
	"Remove": true, "RemoveAll": true, "MkdirAll": true, "Mkdir": true,
}

// callSinks returns the sensitive argument positions of call: allocation
// sizes (advicesize's sink set) and file paths.
func callSinks(info *types.Info, call *ast.CallExpr) []dataflow.Sink {
	// make(T, n[, c]): every size argument.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
			var sinks []dataflow.Sink
			for _, sizeArg := range call.Args[1:] {
				sinks = append(sinks, dataflow.Sink{Expr: sizeArg, What: "make size"})
			}
			return sinks
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Memo-cache indexing: the key argument of Probe/Insert on a Cache
	// receiver must be digest-derived, never raw advice bytes — a
	// server-chosen key could address a cached effect set directly.
	if (sel.Sel.Name == "Probe" || sel.Sel.Name == "Insert") && len(call.Args) > 0 {
		if t := info.TypeOf(sel.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Cache" {
				return []dataflow.Sink{{Expr: call.Args[0], What: "memo cache key"}}
			}
		}
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	switch pn.Imported().Path() {
	case "io":
		switch sel.Sel.Name {
		case "ReadFull":
			if len(call.Args) == 2 {
				return []dataflow.Sink{{Expr: call.Args[1], What: "io.ReadFull buffer"}}
			}
		case "ReadAtLeast", "CopyN":
			if len(call.Args) == 3 {
				return []dataflow.Sink{{Expr: call.Args[2], What: "io." + sel.Sel.Name + " size"}}
			}
		}
	case "os":
		if pathSinkFuncs[sel.Sel.Name] && len(call.Args) > 0 {
			return []dataflow.Sink{{Expr: call.Args[0], What: "os." + sel.Sel.Name + " path"}}
		}
	}
	return nil
}

// verdictBranch nominates if-statements that accept on advice: the
// condition is an equality or boolean test, and the guarded body returns a
// value of a type named Verdict. RejectCode returns are not sinks —
// rejecting raw advice is validation, accepting it is the hazard.
func verdictBranch(info *types.Info, ifStmt *ast.IfStmt) string {
	switch c := ast.Unparen(ifStmt.Cond).(type) {
	case *ast.BinaryExpr:
		if c.Op.String() != "==" && c.Op.String() != "!=" {
			return ""
		}
		// Nil tests (`if err != nil`) check presence, not an advice-chosen
		// value; decode errors carry spread taint but are not steering.
		for _, e := range []ast.Expr{c.X, c.Y} {
			if tv, ok := info.Types[e]; ok && tv.IsNil() {
				return ""
			}
		}
	case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.UnaryExpr:
		// boolean test
	default:
		return ""
	}
	found := ""
	ast.Inspect(ifStmt.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if named, ok := info.TypeOf(r).(*types.Named); ok && named.Obj().Name() == "Verdict" {
				found = "verdict-affecting branch"
				return false
			}
		}
		return true
	})
	return found
}
