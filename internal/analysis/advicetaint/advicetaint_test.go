package advicetaint_test

import (
	"testing"

	"karousos.dev/karousos/internal/analysis/advicetaint"
	"karousos.dev/karousos/internal/analysis/analysistest"
)

func TestAdvicetaint(t *testing.T) {
	analysistest.Run(t, "testdata", advicetaint.Analyzer, "advicetaintfix", "advicetaintok")
}
