// Fixture for advicetaint: seeded interprocedural source-to-sink flows.
// Every flow starts at a raw wire read (binary.Uvarint and friends) and
// reaches a sink without passing a clamp.
package advicetaintfix

import (
	"encoding/binary"
	"os"
)

// Verdict mirrors auditd.Verdict by name: accept/reject outcome.
type Verdict struct{ Code string }

// alloc's parameter reaches a make size unclamped: ParamToSink.
func alloc(n uint64) []byte { return make([]byte, n) }

// forward hands its argument through untouched: Return carries the param.
func forward(n uint64) uint64 { return n }

// pathFor turns a decoded id into a path, preserving taint through
// conversions and its own return.
func pathFor(n uint64) string { return string(rune(n)) }

// interCall: the decode and the allocation live in different functions;
// the flow is reported at the call that hands the value over.
func interCall(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	return alloc(n) // want `passes an unclamped advice-derived value to alloc`
}

// interReturn: taint survives a forwarding callee's summary and reaches a
// local make.
func interReturn(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	m := forward(n)
	return make([]byte, m) // want `make size driven by an unclamped advice-derived value`
}

// spin: an advice-derived loop bound spins the auditor on attacker-chosen
// work.
func spin(buf []byte) int {
	n, _ := binary.Uvarint(buf)
	total := 0
	for i := uint64(0); i < n; i++ { // want `loop bound driven by an unclamped advice-derived value`
		total++
	}
	return total
}

// open: an advice-derived file path escapes the evidence directory, with
// the taint carried through pathFor's return.
func open(buf []byte) ([]byte, error) {
	n, _ := binary.Uvarint(buf)
	return os.ReadFile(pathFor(n)) // want `os.ReadFile path driven by an unclamped advice-derived value`
}

// grade: accepting on a raw advice equality lets the server steer the
// verdict.
func grade(buf []byte, want uint64) Verdict {
	n, _ := binary.Uvarint(buf)
	if n == want { // want `verdict-affecting branch driven by an unclamped advice-derived value`
		return Verdict{}
	}
	return Verdict{Code: "mismatch"}
}

// wideRead: ByteOrder reads are sources too, and io.CopyN-style sized
// sinks are caught across the hop.
func wideRead(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return alloc(uint64(n)) // want `passes an unclamped advice-derived value to alloc`
}

// Key and Cache mirror memo.Key / memo.Cache by name: the content-addressed
// replay cache, indexed by the first argument of Probe / Insert.
type Key [32]byte

type Cache struct{ m map[Key][]byte }

func (c *Cache) Probe(k Key) ([]byte, bool) { v, ok := c.m[k]; return v, ok }

func (c *Cache) Insert(k Key, v []byte) { c.m[k] = v }

// lookup forwards its key argument to the cache index: ParamToSink.
func lookup(c *Cache, k Key) ([]byte, bool) { return c.Probe(k) }

// probeRaw: a decoded value used directly as key material lets the server
// choose which cached effect set a probe addresses.
func probeRaw(c *Cache, buf []byte) ([]byte, bool) {
	n, _ := binary.Uvarint(buf)
	return c.Probe(Key{byte(n)}) // want `memo cache key driven by a raw advice-derived value`
}

// insertRaw: Insert's key position is the same sink.
func insertRaw(c *Cache, buf []byte) {
	n, _ := binary.Uvarint(buf)
	c.Insert(Key{byte(n)}, buf) // want `memo cache key driven by a raw advice-derived value`
}

// probeVia: the raw key crosses a function boundary before it indexes the
// cache; the flow is reported at the hand-over call.
func probeVia(c *Cache, buf []byte) ([]byte, bool) {
	n, _ := binary.Uvarint(buf)
	return lookup(c, Key{byte(n)}) // want `passes an unclamped advice-derived value to lookup`
}
