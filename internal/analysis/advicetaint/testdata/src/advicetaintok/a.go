// Fixture for advicetaint: true negatives — clamped flows, validation
// branches, and presence tests that the analyzer must not flag.
package advicetaintok

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Verdict mirrors auditd.Verdict by name.
type Verdict struct{ Code string }

// RejectCode mirrors core.RejectCode by name.
type RejectCode string

// clampLen is a sanitizer by the clamp* naming convention.
func clampLen(n uint64, limit int) uint64 {
	if n > uint64(limit) {
		return uint64(limit)
	}
	return n
}

// alloc sinks its parameter, but a parameter alone is not a finding — the
// hazard is reported in callers that pass unclamped source values.
func alloc(n uint64) []byte { return make([]byte, n) }

// allocClamped: the sanitizer call clears the taint before the sink.
func allocClamped(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	n = clampLen(n, len(buf))
	return make([]byte, n)
}

// allocCompared: the comparison clamp clears the taint before the value
// crosses into the sinking callee.
func allocCompared(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	if n > uint64(len(buf)) {
		return nil
	}
	return alloc(n)
}

// decodeHeader mints taint for its callers through its return value.
func decodeHeader(buf []byte) (uint64, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return 0, errors.New("short header")
	}
	return n, nil
}

// gradeErr: `err != nil` is a presence test, not advice steering the
// verdict, even though the error came out of a decode.
func gradeErr(buf []byte) (Verdict, error) {
	n, err := decodeHeader(buf)
	if err != nil {
		return Verdict{Code: "unauditable"}, err
	}
	_ = n
	return Verdict{}, nil
}

// validate: REJECTING on raw advice is validation — only accept paths
// (Verdict returns) are verdict sinks.
func validate(buf []byte, want uint64) RejectCode {
	n, _ := binary.Uvarint(buf)
	if n != want {
		return RejectCode("mismatch")
	}
	return ""
}

// spinClamped: a constant clamp within policy bounds clears the loop
// bound.
func spinClamped(buf []byte) int {
	n, _ := binary.Uvarint(buf)
	if n > 64 {
		n = 64
	}
	total := 0
	for i := uint64(0); i < n; i++ {
		total++
	}
	return total
}

// Key and Cache mirror memo.Key / memo.Cache by name.
type Key [32]byte

type Cache struct{ m map[Key][]byte }

func (c *Cache) Probe(k Key) ([]byte, bool) { v, ok := c.m[k]; return v, ok }

func (c *Cache) Insert(k Key, v []byte) { c.m[k] = v }

// digestKey is a sanitizer by the digest* naming convention: its result is
// a content address, whatever fed it.
func digestKey(parts ...uint64) Key {
	var k Key
	for i, p := range parts {
		k[i%len(k)] ^= byte(p)
	}
	return k
}

// probeDigested: the decoded value passes through a digest before it
// indexes the cache, so the key is content-addressed, not server-chosen.
func probeDigested(c *Cache, buf []byte) ([]byte, bool) {
	n, _ := binary.Uvarint(buf)
	return c.Probe(digestKey(n))
}

// insertHashed: sha256.Sum256 is the canonical clamp for key material — a
// cryptographic digest of the closure bytes is exactly what a memo key is
// supposed to be.
func insertHashed(c *Cache, buf []byte) {
	n, _ := binary.Uvarint(buf)
	var raw [8]byte
	binary.LittleEndian.PutUint64(raw[:], n)
	c.Insert(Key(sha256.Sum256(raw[:])), raw[:])
}
