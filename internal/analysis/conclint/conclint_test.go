package conclint_test

import (
	"testing"

	"karousos.dev/karousos/internal/analysis/analysistest"
	"karousos.dev/karousos/internal/analysis/conclint"
)

func TestConclint(t *testing.T) {
	analysistest.Run(t, "testdata", conclint.Analyzer, "conclintfix", "conclintok")
}
