// Package conclint is the concurrency-discipline analyzer for the serving
// and audit planes: two checks over internal/fleet, internal/gateway,
// internal/epochlog, and internal/auditd, each with its own suppression
// name.
//
// # leaklint
//
// Every goroutine needs a join or cancel path — an unjoined goroutine
// outlives its epoch and leaks, or worse, writes evidence after seal. A
// launch is fine when:
//
//   - the launched body (literal, or the named callee's body through the
//     call graph) calls a .Done() — WaitGroup accounting;
//   - the body references a context.Context (including a context
//     parameter) — cancellable;
//   - the body communicates on a channel shared with the launching
//     function (captured, or passed as the argument bound to a channel
//     parameter) — the collector loop is the join;
//   - the launching function calls Close/Shutdown/Stop/Wait/Kill on an
//     object the body also references — teardown reaches it.
//
// `go f()` through a function value is invisible to the call graph and is
// skipped here (detlint already flags unresolvable launches in the
// verdict-affecting packages).
//
// # locklint
//
// No mutex may be held across blocking I/O: an fsync or a network
// round-trip under l.mu stalls every reader behind a disk or a peer.
// Lock regions are replayed in source order per function — X.Lock() /
// X.RLock() opens a region keyed by the receiver expression, X.Unlock() /
// X.RUnlock() closes it, and a deferred Unlock holds to function end.
// The replay is branch-sensitive: lock effects inside an if/switch branch
// that always returns do not leak past the branch, and after a branch a
// lock counts as held only when every surviving path holds it.
// Inside a region, a call that blocks — .Sync() (fsync, concrete or
// through an FS interface), an http send, net.Dial/Listen, or any
// statically resolved callee that transitively blocks — is flagged.
// Group-commit's hold-across-fsync is a reviewed design decision and
// carries //karousos:locklint-ok where it happens.
//
// Suppress with //karousos:leaklint-ok <reason> or
// //karousos:locklint-ok <reason>.
package conclint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/callgraph"
)

// Packages are the concurrency-heavy planes this analyzer self-scopes to.
var Packages = []string{
	"internal/fleet",
	"internal/gateway",
	"internal/epochlog",
	"internal/auditd",
}

// Analyzer is the conclint pass; it owns two check names.
var Analyzer = &analysis.Analyzer{
	Name:   "conclint",
	Checks: []string{"leaklint", "locklint"},
	Doc: "goroutines need a join or cancel path (leaklint) and mutexes must not be held across blocking I/O " +
		"(locklint); suppress with //karousos:leaklint-ok or //karousos:locklint-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	if !analysis.PkgInScope(pass.Pkg.Path(), Packages) {
		return nil
	}
	prog := pass.SingletonProgram()
	g := callgraph.Of(prog)
	blocking := prog.Fact("conclint.blocking", func() any {
		return g.TransitiveMatchers(isBlockingSite)
	}).(map[string]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLeaks(pass, g, fd)
			checkLocks(pass, blocking, fd)
		}
	}
	return nil
}

// ---- leaklint ----

func checkLeaks(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(gs.Call.Fun).(type) {
		case *ast.FuncLit:
			if !literalJoinable(pass, gs, fun, fd) {
				pass.ReportfAs("leaklint", gs.Pos(), "goroutine has no join or cancel path; add WaitGroup accounting, "+
					"a context, or a collector the launcher waits on")
			}
		default:
			fn := callgraph.StaticCallee(pass.TypesInfo, gs.Call)
			if fn == nil {
				return true // function value: detlint's unresolvable-launch check owns this
			}
			node := g.Node(fn)
			if node == nil {
				return true // body outside the program: nothing to inspect
			}
			if !calleeJoinable(node) {
				pass.ReportfAs("leaklint", gs.Pos(), "go launches %s, which has no join or cancel path; give it "+
					"WaitGroup accounting, a context parameter, or a channel the launcher drains", fn.Name())
			}
		}
		return true
	})
}

// literalJoinable applies the leaklint OK-rules to a goroutine literal.
func literalJoinable(pass *analysis.Pass, gs *ast.GoStmt, lit *ast.FuncLit, encl *ast.FuncDecl) bool {
	info := pass.TypesInfo
	if bodyHasDoneOrContext(info, lit.Body) {
		return true
	}
	// Channel shared with the launcher: a captured channel object, or a
	// channel parameter whose argument is rooted in the launcher.
	shared := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || shared {
			return !shared
		}
		obj := info.ObjectOf(id)
		if obj == nil || !isChan(obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			shared = true // captured from outside the literal
			return false
		}
		// A parameter of the literal: substitute the call argument.
		if i := paramIndex(lit, obj); i >= 0 && i < len(gs.Call.Args) {
			if root := rootObj(info, gs.Call.Args[i]); root != nil && root.Pos() < lit.Pos() {
				shared = true
				return false
			}
		}
		return true
	})
	if shared {
		return true
	}
	// Teardown reaches it: the launcher closes/stops an object the body
	// uses.
	return enclosingTeardown(info, encl, lit)
}

// calleeJoinable applies the leaklint OK-rules to a named launch's callee.
func calleeJoinable(node *callgraph.Node) bool {
	sig := node.Func.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	info := node.Pkg.TypesInfo
	if bodyHasDoneOrContext(info, node.Decl.Body) {
		return true
	}
	// A worker draining a channel joins when the channel closes.
	drains := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isChan(info.TypeOf(r.X)) {
			drains = true
			return false
		}
		return !drains
	})
	return drains
}

// bodyHasDoneOrContext reports whether body calls a .Done() (WaitGroup or
// context) or references any context.Context value.
func bodyHasDoneOrContext(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
				return false
			}
		case *ast.Ident:
			if obj := info.ObjectOf(n); obj != nil && isContext(obj.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// teardownNames are launcher-side calls that reach a goroutine's plumbing.
var teardownNames = map[string]bool{
	"Close": true, "Shutdown": true, "Stop": true, "Wait": true, "Kill": true,
}

// enclosingTeardown reports whether encl calls Close/Shutdown/Stop/Wait/
// Kill on an object the literal body also references.
func enclosingTeardown(info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit) bool {
	bodyObjs := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				bodyObjs[obj] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == lit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !teardownNames[sel.Sel.Name] {
			return true
		}
		if root := rootObj(info, sel.X); root != nil && bodyObjs[root] {
			found = true
			return false
		}
		return true
	})
	return found
}

func paramIndex(lit *ast.FuncLit, obj types.Object) int {
	i := 0
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if name.Pos() == obj.Pos() {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

// ---- locklint ----

// checkLocks replays fd in source order tracking mutex-held regions keyed
// by the receiver expression, and flags blocking calls inside a region.
// The replay is branch-sensitive at if/switch/select boundaries: a branch
// that always returns (or panics) cannot leak its lock effects past the
// statement, and after a branch a lock counts as held only when every
// surviving path holds it (must-held — the false-positive-averse
// direction). Function literals run on their own schedule and are
// skipped; deferred calls run at return and are skipped (a deferred
// Unlock means the region holds to function end), though their arguments
// evaluate in place.
func checkLocks(pass *analysis.Pass, blocking map[string]bool, fd *ast.FuncDecl) {
	w := &lockWalker{pass: pass, blocking: blocking}
	w.stmts(fd.Body.List, map[string]bool{})
}

type lockWalker struct {
	pass     *analysis.Pass
	blocking map[string]bool
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, st := range list {
		w.stmt(st, held)
	}
}

func (w *lockWalker) stmt(st ast.Stmt, held map[string]bool) {
	switch st := st.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(st.X, held)
	case *ast.DeferStmt:
		for _, a := range st.Call.Args {
			w.expr(a, held)
		}
	case *ast.GoStmt:
		// The launched call runs on its own schedule; only the arguments
		// evaluate under the caller's locks.
		for _, a := range st.Call.Args {
			w.expr(a, held)
		}
	case *ast.IfStmt:
		w.stmt(st.Init, held)
		w.expr(st.Cond, held)
		then := copyHeld(held)
		w.stmts(st.Body.List, then)
		alt := copyHeld(held)
		w.stmt(st.Else, alt) // no-op copy of the pre-state when Else is nil
		var survivors []map[string]bool
		if !blockTerminates(st.Body) {
			survivors = append(survivors, then)
		}
		if st.Else == nil || !stmtTerminates(st.Else) {
			survivors = append(survivors, alt)
		}
		mergeBranches(held, survivors)
	case *ast.BlockStmt:
		w.stmts(st.List, held)
	case *ast.ForStmt:
		w.stmt(st.Init, held)
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		w.stmts(st.Body.List, held)
		w.stmt(st.Post, held)
	case *ast.RangeStmt:
		w.expr(st.X, held)
		w.stmts(st.Body.List, held)
	case *ast.SwitchStmt:
		w.stmt(st.Init, held)
		if st.Tag != nil {
			w.expr(st.Tag, held)
		}
		w.clauses(st.Body.List, held)
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init, held)
		w.stmt(st.Assign, held)
		w.clauses(st.Body.List, held)
	case *ast.SelectStmt:
		w.clauses(st.Body.List, held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e, held)
		}
		for _, e := range st.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e, held)
		}
	case *ast.SendStmt:
		w.expr(st.Chan, held)
		w.expr(st.Value, held)
	case *ast.IncDecStmt:
		w.expr(st.X, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, held)
	}
}

// clauses replays switch/select clause bodies, each against a copy of the
// entry state, then merges: a clause that terminates contributes nothing,
// and without a default clause the entry state itself survives.
func (w *lockWalker) clauses(list []ast.Stmt, held map[string]bool) {
	var survivors []map[string]bool
	hasDefault := false
	for _, c := range list {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.expr(e, held)
			}
			hasDefault = hasDefault || c.List == nil
			body = c.Body
		case *ast.CommClause:
			branch := copyHeld(held)
			w.stmt(c.Comm, branch)
			hasDefault = hasDefault || c.Comm == nil
			w.stmts(c.Body, branch)
			if !listTerminates(c.Body) {
				survivors = append(survivors, branch)
			}
			continue
		default:
			continue
		}
		branch := copyHeld(held)
		w.stmts(body, branch)
		if !listTerminates(body) {
			survivors = append(survivors, branch)
		}
	}
	if !hasDefault {
		survivors = append(survivors, copyHeld(held))
	}
	mergeBranches(held, survivors)
}

// expr scans one expression in source order for lock transitions and
// blocking calls. Function literals are opaque.
func (w *lockWalker) expr(e ast.Expr, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				key := types.ExprString(sel.X)
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if isMutex(w.pass.TypesInfo.TypeOf(sel.X)) {
						held[key] = true
						return true
					}
				case "Unlock", "RUnlock":
					delete(held, key)
					return true
				}
			}
			if len(held) == 0 {
				return true
			}
			if what := blockingKind(w.pass.TypesInfo, w.blocking, n); what != "" {
				w.pass.ReportfAs("locklint", n.Pos(), "%s while holding %s; release the mutex before blocking I/O "+
					"or queue the work for a committer", what, heldNames(held))
			}
		}
		return true
	})
}

// copyHeld clones a held-lock set for branch replay.
func copyHeld(h map[string]bool) map[string]bool {
	c := make(map[string]bool, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// mergeBranches replaces held with the intersection of the surviving
// branch states. With no survivors every path terminated and the state
// after the statement is unreachable; held is left as the entry state.
func mergeBranches(held map[string]bool, survivors []map[string]bool) {
	if len(survivors) == 0 {
		return
	}
	for k := range held {
		delete(held, k)
	}
next:
	for k := range survivors[0] {
		for _, s := range survivors[1:] {
			if !s[k] {
				continue next
			}
		}
		held[k] = true
	}
}

// blockTerminates reports whether a block's last statement always leaves
// the function: a return, a panic, or an if whose arms both terminate.
func blockTerminates(b *ast.BlockStmt) bool {
	return listTerminates(b.List)
}

func listTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return stmtTerminates(list[len(list)-1])
}

func stmtTerminates(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return blockTerminates(st)
	case *ast.IfStmt:
		return blockTerminates(st.Body) && st.Else != nil && stmtTerminates(st.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(st.Stmt)
	}
	return false
}

// blockingKind classifies a call as blocking I/O: "" when it is not.
func blockingKind(info *types.Info, blocking map[string]bool, call *ast.CallExpr) string {
	// fsync by name covers both *os.File and FS-interface files.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && len(call.Args) == 0 {
		if _, isPkg := info.Uses[selRootIdent(sel)].(*types.PkgName); !isPkg {
			return "fsync"
		}
	}
	fn := callgraph.StaticCallee(info, call)
	if fn == nil {
		return ""
	}
	if isDirectBlocking(fn) {
		return "network call"
	}
	if blocking[fn.FullName()] {
		return "call to " + fn.Name() + " (which blocks on I/O)"
	}
	return ""
}

// isBlockingSite is the direct matcher under the transitive reachability
// fact: fsyncs and network round-trips.
func isBlockingSite(pp *analysis.ProgramPackage, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sync" && len(call.Args) == 0 {
		if _, isPkg := pp.TypesInfo.Uses[selRootIdent(sel)].(*types.PkgName); !isPkg {
			return true
		}
	}
	fn := callgraph.StaticCallee(pp.TypesInfo, call)
	return fn != nil && isDirectBlocking(fn)
}

var httpSendNames = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func isDirectBlocking(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "net/http":
		return httpSendNames[fn.Name()]
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout", "Listen":
			return true
		}
	}
	return false
}

// heldNames joins the held mutexes' receiver expressions for diagnostics.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ---- shared helpers ----

func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id
	}
	return nil
}

func isMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isContext(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
