// Fixture for conclint: true negatives — every join/cancel idiom the
// serving and audit planes actually use, and lock regions that release
// before blocking.
package conclintok

import (
	"context"
	"net/http"
	"os"
	"sync"
)

// waited: WaitGroup accounting in the literal.
func waited(items []int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// cancellable: the body watches a context.
func cancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// collected: the launcher drains the channel the body sends on.
func collected(n int) {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			ch <- 1
		}()
	}
	for i := 0; i < n; i++ {
		<-ch
	}
}

// passedChan: the channel arrives as an argument bound to a parameter.
func passedChan() {
	results := make(chan int, 1)
	go func(out chan int) {
		out <- 1
	}(results)
	<-results
}

type server struct{}

func (s *server) Serve() error { return nil }
func (s *server) Close() error { return nil }

// tornDown: the launcher's deferred Close reaches the body's server.
func tornDown() {
	s := &server{}
	go func() {
		s.Serve() //karousos:errladder-ok fixture
	}()
	defer s.Close()
}

// monitor mirrors fleet's named launch: the callee does the accounting.
type sup struct {
	wg sync.WaitGroup
}

func (s *sup) monitor() {
	defer s.wg.Done()
}

func (s *sup) spawn() {
	s.wg.Add(1)
	go s.monitor()
}

// waitReady mirrors the context-parameter idiom.
func (s *sup) waitReady(ctx context.Context) error {
	return ctx.Err()
}

func (s *sup) restart() {
	go s.waitReady(context.Background()) //karousos:errladder-ok fixture
}

// committer mirrors epochlog: the worker drains a channel and joins when
// the launcher closes it.
type log struct {
	commitCh chan int
}

func (l *log) committer() {
	for range l.commitCh {
	}
}

func (l *log) start() {
	go l.committer()
}

// lock discipline: release before blocking.
type store struct {
	mu sync.Mutex
	f  *os.File
	n  int
}

func (s *store) syncAfterUnlock() error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.f.Sync()
}

// literalElsewhere: the Sync lives in a literal that runs on its own
// schedule, not under this lock region.
func (s *store) literalElsewhere() func() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return func() error { return s.f.Sync() }
}

// plainHold: holding a lock over pure computation is fine.
func (s *store) plainHold(url string) error {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

type gate struct {
	mu sync.RWMutex
	f  *os.File
	n  int
}

// branchLocal mirrors group-commit's Append: the read-locked branch always
// returns, so its region must not leak onto the fsync after the if.
func (g *gate) branchLocal(queued bool) error {
	if queued {
		g.mu.RLock()
		defer g.mu.RUnlock()
		g.n++
		return nil
	}
	return g.f.Sync()
}

// maybeLocked: only one non-returning arm locks; must-held merging says
// the lock is not definitely held at the fsync.
func (g *gate) maybeLocked(b bool) error {
	if b {
		g.mu.Lock()
	} else {
		g.n++
	}
	err := g.f.Sync()
	if b {
		g.mu.Unlock()
	}
	return err
}
