// Fixture for conclint: seeded leaks and lock-across-I/O violations.
package conclintfix

import (
	"net/http"
	"os"
	"sync"
)

var counter int

// fireAndForget leaks: no WaitGroup, no context, no channel, no teardown.
func fireAndForget() {
	go func() { // want `goroutine has no join or cancel path`
		counter++
	}()
}

// worker has no join evidence of its own.
func worker() {
	counter++
}

func launchWorker() {
	go worker() // want `go launches worker, which has no join or cancel path`
}

type store struct {
	mu sync.Mutex
	f  *os.File
	n  int
}

// syncUnderLock holds mu across the fsync.
func (s *store) syncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.f.Sync() // want `fsync while holding s.mu`
}

// fetchUnderLock holds mu across a network round-trip.
func (s *store) fetchUnderLock(url string) error {
	s.mu.Lock()
	resp, err := http.Get(url) // want `network call while holding s.mu`
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// flush fsyncs; holding a lock across a call to it blocks just the same.
func (s *store) flush() error {
	return s.f.Sync()
}

func (s *store) flushUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush() // want `call to flush \(which blocks on I/O\) while holding s.mu`
}

// stillHeld: the early-unlock branch always returns, so the fall-through
// path still holds the lock at the fsync — the branch's Unlock must not
// erase the outer region.
func (s *store) stillHeld(bad bool) error {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return nil
	}
	err := s.f.Sync() // want `fsync while holding s.mu`
	s.mu.Unlock()
	return err
}
