// True-negative fixture for detlint: every would-be finding carries a
// reviewed //karousos:nondeterminism-ok directive, so the analyzer must stay
// silent.
package detlintok

import "time"

func stamp() time.Time {
	//karousos:nondeterminism-ok operator log timestamp, not part of any verdict
	return time.Now()
}

func drain(done chan struct{}, c chan int) int {
	n := 0
	//karousos:nondeterminism-ok daemon plumbing; the result does not depend on case choice
	select {
	case <-done:
	case v := <-c:
		n = v
	}
	return n
}

func firstKey(m map[string]int) string {
	for k := range m { //karousos:nondeterminism-ok any representative key serves; callers treat the result as unordered
		return k
	}
	return ""
}

// fanOut is the deterministic fan-out idiom the goroutine check must bless
// with no directive: inline func literals, goroutine-local state, results in
// indexed slots, merged in canonical order after the pool drains.
func fanOut(items []int) []int {
	results := make([]int, len(items))
	done := make(chan struct{}, len(items))
	for i := range items {
		go func(i int) {
			v := items[i] * 2  // goroutine-local
			results[i] = v     // indexed slot: per-goroutine ownership
			done <- struct{}{} // channel send
		}(i)
	}
	for range items {
		<-done
	}
	return results // canonical (index) order, schedule-independent
}
