// True-negative fixture for detlint: every would-be finding carries a
// reviewed //karousos:nondeterminism-ok directive, so the analyzer must stay
// silent.
package detlintok

import "time"

func stamp() time.Time {
	//karousos:nondeterminism-ok operator log timestamp, not part of any verdict
	return time.Now()
}

func drain(done chan struct{}, c chan int) int {
	n := 0
	//karousos:nondeterminism-ok daemon plumbing; the result does not depend on case choice
	select {
	case <-done:
	case v := <-c:
		n = v
	}
	return n
}

func firstKey(m map[string]int) string {
	for k := range m { //karousos:nondeterminism-ok any representative key serves; callers treat the result as unordered
		return k
	}
	return ""
}
