// Fixture for detlint: seeded nondeterminism next to the benign shapes the
// analyzer must not flag.
package detlintfix

import (
	"fmt"
	"math/rand" // want `imports math/rand`
	"sort"
	"time"
)

// sum is order-insensitive: integer accumulation commutes.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// leak collects map keys but never sorts them, so iteration order escapes.
func leak(m map[string]int) []string {
	var out []string
	for k := range m { // want `never sorted in this function`
		out = append(out, k)
	}
	return out
}

// collectSorted is the blessed collect-then-sort idiom.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// escapes returns whichever key iteration happens to visit first.
func escapes(m map[string]int) string {
	for k := range m { // want `iterates a map in nondeterministic order`
		return k
	}
	return ""
}

// invert writes only map entries keyed per iteration: commutes.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func wallClock() time.Time {
	return time.Now() // want `calls time.Now`
}

func pick(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// one-case select blocks deterministically.
func one(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

func use() { fmt.Println(rand.Int()) }

// named goroutine launch: the callee's writes are invisible to the checker.
func launchNamed(done chan struct{}) {
	go helper(done) // want `launches a named function`
	<-done
}

func helper(done chan struct{}) { close(done) }

// outerWrite races the goroutines' merge order into shared state.
func outerWrite(items []int) int {
	total := 0
	done := make(chan struct{}, len(items))
	for range items {
		go func() {
			total++ // want `assigns outer variable "total"`
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
	return total
}

// outerAssign is the same defect through a plain assignment.
func outerAssign(c chan int) {
	last := 0
	go func() {
		last = <-c // want `assigns outer variable "last"`
	}()
	_ = last
}
