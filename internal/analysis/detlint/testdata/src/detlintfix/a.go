// Fixture for detlint: seeded nondeterminism next to the benign shapes the
// analyzer must not flag.
package detlintfix

import (
	"fmt"
	"math/rand" // want `imports math/rand`
	"sort"
	"time"
)

// sum is order-insensitive: integer accumulation commutes.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// leak collects map keys but never sorts them, so iteration order escapes.
func leak(m map[string]int) []string {
	var out []string
	for k := range m { // want `never sorted in this function`
		out = append(out, k)
	}
	return out
}

// collectSorted is the blessed collect-then-sort idiom.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// escapes returns whichever key iteration happens to visit first.
func escapes(m map[string]int) string {
	for k := range m { // want `iterates a map in nondeterministic order`
		return k
	}
	return ""
}

// invert writes only map entries keyed per iteration: commutes.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func wallClock() time.Time {
	return time.Now() // want `calls time.Now`
}

func pick(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// one-case select blocks deterministically.
func one(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

func use() { fmt.Println(rand.Int()) }

// named goroutine launch resolved through the call graph: helper writes no
// shared state, so this is the fan-out idiom one hop removed — clean.
func launchNamed(done chan struct{}) {
	go helper(done)
	<-done
}

func helper(done chan struct{}) { close(done) }

var sharedCounter int

// helperDirty accumulates into package state; launching it races the merge
// order into the verdict exactly like an outer-variable write in a literal.
func helperDirty(n int) { sharedCounter += n }

func launchDirty(done chan struct{}) {
	go helperDirty(1) // want `assigns shared state "sharedCounter"`
	<-done
}

// a function value is opaque to the call graph: uncheckable, flagged.
func launchValue(f func(), done chan struct{}) {
	go f() // want `cannot resolve`
	<-done
}

// outerWrite races the goroutines' merge order into shared state.
func outerWrite(items []int) int {
	total := 0
	done := make(chan struct{}, len(items))
	for range items {
		go func() {
			total++ // want `assigns outer variable "total"`
			done <- struct{}{}
		}()
	}
	for range items {
		<-done
	}
	return total
}

// outerAssign is the same defect through a plain assignment.
func outerAssign(c chan int) {
	last := 0
	go func() {
		last = <-c // want `assigns outer variable "last"`
	}()
	_ = last
}
