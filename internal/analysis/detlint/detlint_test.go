package detlint_test

import (
	"testing"

	"karousos.dev/karousos/internal/analysis/analysistest"
	"karousos.dev/karousos/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, "testdata", detlint.Analyzer, "detlintfix", "detlintok")
}
