// Package detlint proves, at compile time, that the verdict-affecting
// packages compute a deterministic function of (trace, advice) — the paper's
// acceptance guarantee (§4, Appendix C) collapses if re-execution order or
// rejection reasons can vary between runs on identical input.
//
// In the packages listed in Packages it flags:
//
//   - range over a map, unless the loop body is provably order-insensitive
//     (only map writes, deletes, and integer accumulation) or it is the
//     collect-keys idiom whose slice is sorted later in the same function;
//   - time.Now / time.Since calls (wall-clock reads);
//   - importing math/rand or math/rand/v2;
//   - select statements with two or more communication cases (the runtime
//     picks a ready case pseudo-randomly);
//   - goroutine launches that are not the deterministic fan-out idiom: the
//     launched body — an inline func literal, or a named function resolved
//     through the program call graph (internal/analysis/callgraph) — may
//     write to outer state only through indexed slots (results[i] = ...) or
//     channels — per-goroutine slots merged in canonical order by the
//     spawner keep the verdict schedule-independent, whereas a direct
//     assignment to an outer variable (or, for a named callee, to package
//     state) races the merge order into the verdict. A launch the call
//     graph cannot resolve (function value, interface method) is flagged:
//     its writes are uncheckable.
//
// The only escape hatch is an explicit, reasoned directive on or above the
// flagged line:
//
//	//karousos:nondeterminism-ok <reason>
//
// Test files are not analyzed: test randomness is legitimate when seeded and
// logged (see internal/verifier/completeness_test.go).
package detlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/callgraph"
)

// Packages are the verdict-affecting packages this analyzer self-scopes to
// (matched by import-path suffix; slash-free fixture packages always match).
var Packages = []string{
	"internal/verifier",
	"internal/graph",
	"internal/adya",
	"internal/seqreexec",
	"internal/mv",
	"internal/auditd",
	"internal/shard",
}

// Analyzer is the detlint pass.
var Analyzer = &analysis.Analyzer{
	Name:   "detlint",
	Checks: []string{"nondeterminism"},
	Doc: "flag nondeterminism (unsorted map iteration, wall-clock reads, math/rand, multi-case select) " +
		"in verdict-affecting packages; suppress with //karousos:nondeterminism-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	if !analysis.PkgInScope(pass.Pkg.Path(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "imports %s in a verdict-affecting package; verdicts must be deterministic functions of (trace, advice)", path)
			}
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// checkFunc walks one function body. FuncLits are walked with their own
// body as the enclosing scope for the collect-then-sort check.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFunc(pass, n.Body)
			return false
		case *ast.RangeStmt:
			if isMapType(pass.TypesInfo.TypeOf(n.X)) {
				checkMapRange(pass, body, n)
			}
		case *ast.CallExpr:
			if pkg, name := calleePkgFunc(pass.TypesInfo, n); pkg == "time" && (name == "Now" || name == "Since") {
				pass.Reportf(n.Pos(), "calls time.%s on a verdict path; wall-clock reads make re-execution nondeterministic", name)
			}
		case *ast.SelectStmt:
			comms := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				pass.Reportf(n.Pos(), "select with %d communication cases chooses pseudo-randomly among ready channels on a verdict path", comms)
			}
		case *ast.GoStmt:
			checkGoStmt(pass, n)
		}
		return true
	})
}

// checkGoStmt constrains goroutine launches on verdict paths to the
// deterministic fan-out idiom: collect results in per-goroutine indexed
// slots (or over channels) and merge in canonical order after the pool
// drains. An inline func literal is checked directly for writes to outer
// variables; a named function is resolved through the program call graph
// and its body checked for writes to state declared outside it (package
// variables) — the same shared-state-races-the-merge-order defect, one
// hop removed. Only an unresolvable launch (function value, interface
// method) is flagged unconditionally: its writes cannot be checked.
func checkGoStmt(pass *analysis.Pass, g *ast.GoStmt) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		reportWrites(lit.Body, pass.TypesInfo, func(lhs ast.Expr, root *ast.Ident, obj types.Object) {
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				return // the goroutine's own local (or parameter)
			}
			pass.Reportf(lhs.Pos(), "goroutine assigns outer variable %q directly; shared state then depends on scheduling — write to an indexed slot (%s[i] = ...) and merge in canonical order after the pool drains", root.Name, root.Name)
		})
		return
	}
	fn := callgraph.StaticCallee(pass.TypesInfo, g.Call)
	node := callgraph.Of(pass.SingletonProgram()).Node(fn)
	if node == nil {
		pass.Reportf(g.Pos(), "go launches a function the call graph cannot resolve on a verdict path; spawn an inline func literal (or a named function) so the goroutine's writes are checkable (deterministic fan-out idiom)")
		return
	}
	reportWrites(node.Decl.Body, node.Pkg.TypesInfo, func(lhs ast.Expr, root *ast.Ident, obj types.Object) {
		if obj.Pos() >= node.Decl.Pos() && obj.Pos() <= node.Decl.End() {
			return // the callee's own local, parameter, or receiver
		}
		pass.Reportf(g.Pos(), "go launches %s, which assigns shared state %q; shared state then depends on scheduling — write to an indexed slot and merge in canonical order after the pool drains", fn.Name(), root.Name)
	})
}

// reportWrites walks a goroutine body and hands every checkable assignment
// target (plain identifier roots; indexed slots, dereferences, and blanks
// are allowed by the slot-ownership argument) to flag.
func reportWrites(body *ast.BlockStmt, info *types.Info, flag func(lhs ast.Expr, root *ast.Ident, obj types.Object)) {
	check := func(lhs ast.Expr) {
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			return
		}
		if _, indexed := lhs.(*ast.IndexExpr); indexed {
			return
		}
		if _, deref := lhs.(*ast.StarExpr); deref {
			return
		}
		obj := info.ObjectOf(root)
		if obj == nil {
			return
		}
		flag(lhs, root, obj)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
		return true
	})
}

// rootIdent unwraps selectors, indexes, stars, and parens to the base
// identifier of an assignment target; nil when the base is not an ident
// (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// calleePkgFunc resolves a call like time.Now() to ("time", "Now");
// ("", "") for anything that is not a direct package-level call.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// checkMapRange decides whether one map-range statement is benign.
func checkMapRange(pass *analysis.Pass, enclBody *ast.BlockStmt, rs *ast.RangeStmt) {
	targets := map[types.Object]bool{}
	if bodyOrderInsensitive(pass.TypesInfo, rs.Body.List, targets) {
		for obj := range targets {
			if !sortedAfter(pass, enclBody, rs, obj) {
				pass.Reportf(rs.Pos(), "map iteration order escapes through %q, which is never sorted in this function; sort it or annotate //karousos:nondeterminism-ok", obj.Name())
				return
			}
		}
		return
	}
	pass.Reportf(rs.Pos(), "iterates a map in nondeterministic order on a verdict path; iterate sorted keys, make the body order-insensitive, or annotate //karousos:nondeterminism-ok")
}

// bodyOrderInsensitive reports whether executing stmts for the map's entries
// in any order yields identical state. Allowed: writes to map entries,
// delete, integer accumulation (x += e, x++, x |= e, x ^= e, x &= e), local
// declarations, continue, nested if/range obeying the same rules — and
// appends `x = append(x, ...)`, whose target objects are collected into
// targets for the caller's sorted-later check.
func bodyOrderInsensitive(info *types.Info, stmts []ast.Stmt, targets map[types.Object]bool) bool {
	for _, s := range stmts {
		if !stmtOrderInsensitive(info, s, targets) {
			return false
		}
	}
	return true
}

func stmtOrderInsensitive(info *types.Info, s ast.Stmt, targets map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if obj := appendTarget(info, s); obj != nil {
			targets[obj] = true
			return true
		}
		switch s.Tok {
		case token.DEFINE:
			// Locals are scoped per iteration.
			return true
		case token.ASSIGN:
			// Plain assignments must all hit map entries (distinct keys per
			// iteration commute) or the blank identifier.
			for _, lhs := range s.Lhs {
				if !isMapIndexOrBlank(info, lhs) {
					return false
				}
			}
			return true
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
			return len(s.Lhs) == 1 && isIntegerExpr(info, s.Lhs[0])
		}
		return false
	case *ast.IncDecStmt:
		return isIntegerExpr(info, s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && isBuiltin(info, id, "delete")
	case *ast.DeclStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if s.Init != nil && !stmtOrderInsensitive(info, s.Init, targets) {
			return false
		}
		if !bodyOrderInsensitive(info, s.Body.List, targets) {
			return false
		}
		if s.Else != nil {
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				return bodyOrderInsensitive(info, eb.List, targets)
			}
			return stmtOrderInsensitive(info, s.Else, targets)
		}
		return true
	case *ast.RangeStmt:
		// A nested range over a slice (deterministic order) with a conforming
		// body is fine; a nested map range is checked on its own.
		if isMapType(info.TypeOf(s.X)) {
			return false
		}
		return bodyOrderInsensitive(info, s.Body.List, targets)
	}
	return false
}

// isMapIndexOrBlank reports whether lhs is m[k] (m a map) or _.
func isMapIndexOrBlank(info *types.Info, lhs ast.Expr) bool {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return true
	}
	ix, ok := lhs.(*ast.IndexExpr)
	return ok && isMapType(info.TypeOf(ix.X))
}

// isIntegerExpr reports whether e has an integer type (accumulation with
// +=/|=/^=/&=/++ over integers commutes; float addition does not).
func isIntegerExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// appendTarget matches `x = append(x, ...)` (also +=-free grow-only form
// with := redeclaration) and returns x's object.
func appendTarget(info *types.Info, s *ast.AssignStmt) types.Object {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || !isBuiltin(info, fn, "append") || len(call.Args) == 0 {
		return nil
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	lobj := info.ObjectOf(lhs)
	if lobj == nil || lobj != info.ObjectOf(first) {
		return nil
	}
	return lobj
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement, within the same function body.
func sortedAfter(pass *analysis.Pass, enclBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		pkg, _ := calleePkgFunc(pass.TypesInfo, call)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
