// Package rejectcode proves the rejection taxonomy is airtight: every error
// crossing the Audit boundary carries a core.RejectCode, and every place
// that enumerates RejectCode values — switch statements and the
// AllRejectCodes registry — is exhaustive over the constants declared next
// to the type. The CLI's exit-status logic and the README's reason-code
// table both key on these codes; an uncoded rejection or a forgotten enum
// row silently downgrades a machine-readable verdict to prose.
//
// Checks (all packages):
//
//   - a switch whose tag has type RejectCode and no default clause must
//     cover every declared RejectCode constant;
//   - a function named AllRejectCodes must return a composite literal
//     listing every declared RejectCode constant;
//   - in functions whose name begins with Audit/audit and which return an
//     error, returning a bare errors.New(...) or a fmt.Errorf(...) without
//     %w is flagged: construct a core.Reject (which carries a code) or wrap
//     the coded cause with %w.
//
// The escape hatch is //karousos:rejectcode-ok <reason>.
package rejectcode

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"karousos.dev/karousos/internal/analysis"
)

// Analyzer is the rejectcode pass. It scopes itself to any package that
// mentions a RejectCode type, so it runs usefully over ./... .
var Analyzer = &analysis.Analyzer{
	Name: "rejectcode",
	Doc: "require RejectCode switches and the AllRejectCodes registry to be exhaustive, and Audit-boundary " +
		"errors to carry a code; suppress with //karousos:rejectcode-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.FuncDecl:
				if n.Name.Name == "AllRejectCodes" {
					checkRegistry(pass, n)
				}
				checkAuditBoundary(pass, n)
			}
			return true
		})
	}
	return nil
}

// rejectCodeType returns the named RejectCode type of t, nil otherwise.
func rejectCodeType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "RejectCode" {
		return nil
	}
	return named
}

// declaredCodes enumerates the RejectCode constants declared in the type's
// own package (works for core via export data and for fixture-local types).
func declaredCodes(named *types.Named) map[string]bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	out := map[string]bool{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if ct := rejectCodeType(c.Type()); ct != nil && ct.Obj() == named.Obj() {
			out[constant.StringVal(c.Val())] = true
		}
	}
	return out
}

// checkSwitch enforces exhaustiveness on RejectCode switches without a
// default clause.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named := rejectCodeType(pass.TypesInfo.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	universe := declaredCodes(named)
	if len(universe) == 0 {
		return
	}
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: the switch handles unknown codes
		}
		for _, e := range cc.List {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				covered[constant.StringVal(tv.Value)] = true
			}
		}
	}
	missing := diff(universe, covered)
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "RejectCode switch without default is missing %s; add the cases or a default", strings.Join(missing, ", "))
	}
}

// checkRegistry enforces that AllRejectCodes' composite literal lists every
// declared constant.
func checkRegistry(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 || fd.Body == nil {
		return
	}
	var named *types.Named
	if slice, ok := pass.TypesInfo.TypeOf(fd.Type.Results.List[0].Type).(*types.Slice); ok {
		named = rejectCodeType(slice.Elem())
	}
	if named == nil {
		return
	}
	universe := declaredCodes(named)
	listed := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, e := range cl.Elts {
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
				listed[constant.StringVal(tv.Value)] = true
			}
		}
		return true
	})
	missing := diff(universe, listed)
	if len(missing) > 0 {
		pass.Reportf(fd.Pos(), "AllRejectCodes registry is missing %s; every declared code must be listed", strings.Join(missing, ", "))
	}
}

// checkAuditBoundary flags uncoded error constructions returned from
// Audit-boundary functions.
func checkAuditBoundary(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || !strings.HasPrefix(strings.ToLower(fd.Name.Name), "audit") {
		return
	}
	if fd.Type.Results == nil {
		return
	}
	errIdx := -1
	idx := 0
	for _, field := range fd.Type.Results.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if isErrorType(pass.TypesInfo.TypeOf(field.Type)) {
				errIdx = idx
			}
			idx++
		}
	}
	if errIdx < 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its returns belong to the literal
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) <= errIdx {
			return true
		}
		if call, ok := ret.Results[errIdx].(*ast.CallExpr); ok && isUncodedErrorCtor(pass, call) {
			pass.Reportf(ret.Pos(), "returns an uncoded error across the Audit boundary; construct a core.Reject with a RejectCode or wrap the coded cause with %%w")
		}
		return true
	})
}

// isUncodedErrorCtor matches errors.New(...) and fmt.Errorf without a %w
// verb — error constructions that cannot carry a RejectCode.
func isUncodedErrorCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch {
	case pn.Imported().Path() == "errors" && sel.Sel.Name == "New":
		return true
	case pn.Imported().Path() == "fmt" && sel.Sel.Name == "Errorf":
		if len(call.Args) == 0 {
			return false
		}
		if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
			return !strings.Contains(constant.StringVal(tv.Value), "%w")
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// diff returns universe − covered, sorted.
func diff(universe, covered map[string]bool) []string {
	var missing []string
	for code := range universe {
		if !covered[code] {
			missing = append(missing, code)
		}
	}
	sort.Strings(missing)
	return missing
}
