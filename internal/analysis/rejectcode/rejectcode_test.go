package rejectcode_test

import (
	"testing"

	"karousos.dev/karousos/internal/analysis/analysistest"
	"karousos.dev/karousos/internal/analysis/rejectcode"
)

func TestRejectcode(t *testing.T) {
	analysistest.Run(t, "testdata", rejectcode.Analyzer, "rejectcodefix", "rejectcodeok")
}
