// True-negative fixture for rejectcode: suppressions carry reviewed
// //karousos:rejectcode-ok directives.
package rejectcodeok

import "errors"

type RejectCode string

const (
	CodeA RejectCode = "A"
	CodeB RejectCode = "B"
)

func auditLegacy() error {
	//karousos:rejectcode-ok legacy shim scheduled for removal; callers map this to CodeA
	return errors.New("legacy")
}

func partial(c RejectCode) string {
	//karousos:rejectcode-ok CodeB cannot reach this shim; its caller filters it out
	switch c {
	case CodeA:
		return "a"
	}
	return ""
}
