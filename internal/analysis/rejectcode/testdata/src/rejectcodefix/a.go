// Fixture for rejectcode: a local RejectCode enum with a non-exhaustive
// switch, an incomplete registry, and uncoded Audit-boundary errors.
package rejectcodefix

import (
	"errors"
	"fmt"
)

type RejectCode string

const (
	CodeA RejectCode = "A"
	CodeB RejectCode = "B"
	CodeC RejectCode = "C"
)

func describe(c RejectCode) string {
	switch c { // want `RejectCode switch without default is missing C`
	case CodeA:
		return "a"
	case CodeB:
		return "b"
	}
	return ""
}

// exhaustive switches and defaulted switches are fine.
func describeAll(c RejectCode) string {
	switch c {
	case CodeA, CodeB, CodeC:
		return "known"
	}
	return ""
}

func describeDefault(c RejectCode) string {
	switch c {
	case CodeA:
		return "a"
	default:
		return "other"
	}
}

func AllRejectCodes() []RejectCode { // want `AllRejectCodes registry is missing C`
	return []RejectCode{CodeA, CodeB}
}

func AuditBlob(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty blob") // want `uncoded error across the Audit boundary`
	}
	if b[0] == 0xff {
		return fmt.Errorf("bad magic %x", b[0]) // want `uncoded error across the Audit boundary`
	}
	return nil
}

// auditWrapped wraps the coded cause with %w: allowed.
func auditWrapped(cause error) error {
	if cause != nil {
		return fmt.Errorf("audit: %w", cause)
	}
	return nil
}

// notBoundary is not an Audit-prefixed function; uncoded errors are its
// caller's concern.
func notBoundary() error {
	return errors.New("plain")
}
