package retrysound_test

import (
	"testing"

	"karousos.dev/karousos/internal/analysis/analysistest"
	"karousos.dev/karousos/internal/analysis/retrysound"
)

func TestRetrysound(t *testing.T) {
	analysistest.Run(t, "testdata", retrysound.Analyzer, "retrysoundfix", "retrysoundok")
}
