// Package retrysound is the static twin of the gateway's retry rule
// (DESIGN.md §14): /invoke is not idempotent, so a request may be re-sent
// only when the netfault ladder proves it never reached the peer. Two
// checks over internal/gateway and internal/netfault:
//
//   - Retry loops: a for-loop (non-range — range loops are fan-out over
//     distinct shards, not resends) that performs an HTTP send, directly or
//     through any statically resolved callee, must consult the ladder: the
//     loop body must compare a Classify(...) result against ClassRetryable.
//     Sends inside nested function literals do not count as loop sends
//     (they execute on their own schedule, e.g. hedge goroutines), and a
//     guard inside a literal does not guard the loop.
//
//   - Ladder closure: a function named Classify returning a type named
//     Class must end with `return ClassAmbiguous`. The ladder is
//     ambiguous-by-default — an unknown error means the peer may have
//     executed the request, and a new error kind must never fall through
//     to "safe to retry".
//
// Reachability comes from the shared program call graph; calls through
// function values or interfaces are invisible to it, which is the sound
// direction here (an unseen send cannot un-guard a loop, and the hedge
// path sends through a literal by design). The escape hatch is
// //karousos:retrysound-ok <reason>.
package retrysound

import (
	"go/ast"
	"go/token"
	"go/types"

	"karousos.dev/karousos/internal/analysis"
	"karousos.dev/karousos/internal/analysis/callgraph"
)

// Packages are the packages this analyzer self-scopes to: the resend site
// and the ladder.
var Packages = []string{
	"internal/gateway",
	"internal/netfault",
}

// Analyzer is the retrysound pass.
var Analyzer = &analysis.Analyzer{
	Name: "retrysound",
	Doc: "require HTTP resend loops to be gated on netfault.Classify == ClassRetryable and the Classify ladder " +
		"to stay ambiguous-by-default; suppress with //karousos:retrysound-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

// httpSendNames are the net/http calls that put request bytes on the wire.
var httpSendNames = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgInScope(pass.Pkg.Path(), Packages) {
		return nil
	}
	prog := pass.SingletonProgram()
	g := callgraph.Of(prog)
	sends := prog.Fact("retrysound.sends", func() any {
		return g.TransitiveMatchers(isHTTPSendSite)
	}).(map[string]bool)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLadder(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				loop, ok := n.(*ast.ForStmt)
				if !ok {
					return true
				}
				if loopSends(pass.TypesInfo, sends, loop) && !loopGuarded(pass.TypesInfo, loop) {
					pass.Reportf(loop.Pos(), "loop re-sends an HTTP request without consulting netfault.Classify; "+
						"gate the retry on Classify(err) == ClassRetryable — /invoke is not idempotent")
				}
				return true
			})
		}
	}
	return nil
}

// isHTTPSendSite reports whether call resolves to a net/http send.
func isHTTPSendSite(pp *analysis.ProgramPackage, call *ast.CallExpr) bool {
	return isHTTPSend(pp.TypesInfo, call)
}

func isHTTPSend(info *types.Info, call *ast.CallExpr) bool {
	fn := callgraph.StaticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && httpSendNames[fn.Name()]
}

// loopSends reports whether the loop body sends an HTTP request on the
// loop's own schedule: a direct send call, or a call into a function the
// call graph proves sends. Function literals are skipped — their bodies
// run when invoked, not per iteration of this loop.
func loopSends(info *types.Info, sends map[string]bool, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isHTTPSend(info, call) {
			found = true
			return false
		}
		if fn := callgraph.StaticCallee(info, call); fn != nil && sends[fn.FullName()] {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopGuarded reports whether the loop body compares a Classify(...)
// result against ClassRetryable (either == or != — both shapes gate the
// resend). Guards inside function literals do not count.
func loopGuarded(info *types.Info, loop *ast.ForStmt) bool {
	guarded := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		if (isClassifyCall(b.X) && exprName(b.Y) == "ClassRetryable") ||
			(isClassifyCall(b.Y) && exprName(b.X) == "ClassRetryable") {
			guarded = true
			return false
		}
		return true
	})
	return guarded
}

func isClassifyCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && exprName(call.Fun) == "Classify"
}

// exprName is the bare name of an identifier or selector, "" otherwise.
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// checkLadder enforces ambiguous-by-default on Classify ladders: the final
// statement of func Classify(...) Class must be `return ClassAmbiguous`.
func checkLadder(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Name.Name != "Classify" || fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return
	}
	named, ok := pass.TypesInfo.TypeOf(fd.Type.Results.List[0].Type).(*types.Named)
	if !ok || named.Obj().Name() != "Class" {
		return
	}
	if len(fd.Body.List) == 0 {
		return
	}
	last := fd.Body.List[len(fd.Body.List)-1]
	if ret, ok := last.(*ast.ReturnStmt); ok {
		if len(ret.Results) == 1 && exprName(ret.Results[0]) == "ClassAmbiguous" {
			return
		}
	}
	pass.Reportf(last.Pos(), "Classify must end by returning ClassAmbiguous: the ladder is closed and an "+
		"unclassified error must never fall through to retryable")
}
