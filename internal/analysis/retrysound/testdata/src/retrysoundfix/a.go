// Fixture for retrysound: unguarded resend loops and a leaky ladder.
package retrysoundfix

import "net/http"

type Class int

const (
	ClassNone Class = iota
	ClassRetryable
	ClassAmbiguous
)

// Classify's default leaks to retryable: a new error kind silently becomes
// "safe to resend".
func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	return ClassRetryable // want `Classify must end by returning ClassAmbiguous`
}

// hammer resends without consulting the ladder at all.
func hammer(url string) error {
	var last error
	for i := 0; i < 3; i++ { // want `re-sends an HTTP request without consulting netfault.Classify`
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return nil
		}
		last = err
	}
	return last
}

// sendOnce hides the send one call away; the call graph still sees it.
func sendOnce(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

func hammerVia(url string) error {
	for { // want `re-sends an HTTP request without consulting netfault.Classify`
		if err := sendOnce(url); err == nil {
			return nil
		}
	}
}
