// Fixture for retrysound: true negatives — the guarded retry loop, range
// fan-outs, hedge-shaped literals, and a closed ladder.
package retrysoundok

import (
	"net/http"

	"karousos.dev/karousos/internal/netfault"
)

// forward mirrors the gateway's retry loop: only provably-unsent requests
// go again.
func forward(url string) error {
	var last error
	for i := 0; i < 3; i++ {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if netfault.Classify(err) != netfault.ClassRetryable {
			return err
		}
		last = err
	}
	return last
}

// fanOut sends once per shard — a range loop is distribution, not resend.
func fanOut(urls []string) {
	for _, u := range urls {
		if resp, err := http.Get(u); err == nil {
			resp.Body.Close()
		}
	}
}

// hedged collects results; the sends live in a literal launched on the
// hedge schedule, not per loop iteration.
func hedged(url string, n int) {
	ch := make(chan error, n)
	launch := func() {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
		}
		ch <- err
	}
	for i := 0; i < n; i++ {
		go launch()
	}
	for got := 0; got < n; got++ {
		<-ch
	}
}

// Class mirrors the netfault ladder with the closed default.
type Class int

const (
	ClassNone Class = iota
	ClassRetryable
	ClassAmbiguous
)

func Classify(err error) Class {
	if err == nil {
		return ClassNone
	}
	return ClassAmbiguous
}
