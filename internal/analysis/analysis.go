// Package analysis is the repo's static-analysis framework: the core types
// of a golang.org/x/tools/go/analysis-shaped pass (Analyzer, Pass,
// Diagnostic) plus the //karousos: suppression-directive grammar shared by
// every checker.
//
// The container this repo builds in has no module proxy access, so the
// framework is self-hosted on the standard library alone: packages are
// loaded by internal/analysis/load (go list -export + go/types) and the
// Analyzer API mirrors x/tools closely enough that a pass written here ports
// to the upstream driver by changing imports.
//
// The analyzers in the subpackages prove, at compile time, invariants the
// dynamic layers (chaos scenarios, fuzzers, verifier.Limits) only sample:
//
//   - detlint:    the verdict is a deterministic function of (trace, advice) —
//     no unsorted map iteration, wall-clock reads, math/rand, or
//     multi-case selects on verdict paths.
//   - advicesize: every advice-derived length is clamped before it reaches an
//     allocation.
//   - errladder:  I/O errors in the pipeline flow through the iofault
//     classification ladder, never raw == comparisons or silent drops.
//   - rejectcode: errors crossing the Audit boundary carry a core.RejectCode
//     and RejectCode switches/registries are exhaustive.
//
// # Directive grammar
//
// A finding is suppressed only by an explicit, reasoned directive on the
// flagged line or the line directly above it:
//
//	//karousos:<check>-ok <reason>
//
// where <check> is a check name some registered analyzer owns (Register),
// e.g. "nondeterminism" (detlint) or "leaklint" (conclint), and <reason> is
// non-empty free text read by the reviewer, not the tool. A directive with
// an unknown check name or an empty reason is itself a diagnostic
// (CheckDirectives), so the escape hatch cannot rot into bare unexplained
// pragmas.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name is the short command-line name (e.g. "detlint").
	Name string
	// Doc is the one-paragraph description printed by karousos-vet -list.
	Doc string
	// Checks are the suppression-directive check names this analyzer owns.
	// Empty means one check named after the analyzer. The first entry is
	// the default check Reportf uses; multi-check analyzers (conclint's
	// leaklint/locklint) report the rest through ReportfAs.
	Checks []string
	// Run executes the pass over one package, reporting findings through
	// pass.Report.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked state to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Program, when the driver sets it, is the whole loaded package set —
	// the interprocedural analyzers (advicetaint, retrysound, conclint)
	// build their call graph and dataflow summaries from it. nil restricts
	// those analyzers to the pass's own package.
	Program *Program
	// Report delivers one diagnostic. The driver sets it; analyzers call
	// Reportf.
	Report func(Diagnostic)
	// ReportSuppressed, when set by the driver (karousos-vet -json),
	// delivers findings covered by a //karousos: directive with
	// Diagnostic.Suppressed=true instead of dropping them, so the machine-
	// readable output carries the full suppression state.
	ReportSuppressed bool

	directives []Directive // lazily built
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	// Check is the directive check name that suppresses this finding.
	Check   string
	Message string
	// Suppressed marks a finding covered by a reviewed directive; only
	// delivered when Pass.ReportSuppressed is set.
	Suppressed bool
}

// Reportf reports a finding at pos under the analyzer's default check name
// unless a matching //karousos: directive suppresses it there.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfAs(p.Analyzer.check(), pos, format, args...)
}

// ReportfAs reports a finding under an explicit check name — the path for
// analyzers that own more than one check (conclint).
func (p *Pass) ReportfAs(check string, pos token.Pos, format string, args ...any) {
	d := Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Check: check, Message: fmt.Sprintf(format, args...)}
	if p.Suppressed(check, pos) {
		if !p.ReportSuppressed {
			return
		}
		d.Suppressed = true
	}
	p.Report(d)
}

// check is the analyzer's default directive check name.
func (a *Analyzer) check() string {
	if len(a.Checks) > 0 {
		return a.Checks[0]
	}
	return a.Name
}

// checkNames is every check name the analyzer owns.
func (a *Analyzer) checkNames() []string {
	if len(a.Checks) > 0 {
		return a.Checks
	}
	return []string{a.Name}
}

// registry maps directive check names to the analyzer that owns them.
// Analyzers register themselves in init, so importing an analyzer package
// is what makes its suppressions well-formed — a directive for a check
// nobody registered is flagged by CheckDirectives.
var registry = struct {
	sync.Mutex
	checks map[string]string // check name -> analyzer name
}{checks: map[string]string{}}

// Register records an analyzer's check names in the directive registry.
// Analyzer packages call it from init. Registering the same (check,
// analyzer) pair twice is a no-op; claiming another analyzer's check name
// panics — two analyzers must not share an escape hatch.
func Register(a *Analyzer) {
	registry.Lock()
	defer registry.Unlock()
	for _, c := range a.checkNames() {
		if owner, ok := registry.checks[c]; ok && owner != a.Name {
			panic(fmt.Sprintf("analysis: check %q registered by both %s and %s", c, owner, a.Name))
		}
		registry.checks[c] = a.Name
	}
}

// KnownChecks returns the registered directive check names, sorted.
func KnownChecks() []string {
	registry.Lock()
	defer registry.Unlock()
	out := make([]string, 0, len(registry.checks))
	for c := range registry.checks {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// AnalyzerForCheck resolves a check name to its owning analyzer's name.
func AnalyzerForCheck(check string) (string, bool) {
	registry.Lock()
	defer registry.Unlock()
	a, ok := registry.checks[check]
	return a, ok
}

// Directive is one parsed //karousos: comment.
type Directive struct {
	Pos    token.Pos
	File   string
	Line   int
	Check  string // e.g. "nondeterminism"
	Reason string // free text after the check; must be non-empty
	Raw    string
}

var directiveRE = regexp.MustCompile(`^//karousos:([a-z][a-z-]*)-ok(?:[ \t]+(.*))?$`)

// parseDirectives scans every comment in the pass's files.
func (p *Pass) parseDirectives() []Directive {
	if p.directives != nil {
		return p.directives
	}
	var out []Directive
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				out = append(out, Directive{
					Pos:    c.Pos(),
					File:   pos.Filename,
					Line:   pos.Line,
					Check:  m[1],
					Reason: strings.TrimSpace(m[2]),
					Raw:    c.Text,
				})
			}
		}
	}
	if out == nil {
		out = []Directive{} // mark "parsed, none found"
	}
	p.directives = out
	return out
}

// Suppressed reports whether a well-formed //karousos:<check>-ok directive
// covers pos: same line, or the line directly above (a comment hanging over
// the flagged statement). Malformed directives (unknown check, no reason)
// never suppress — CheckDirectives flags them instead.
func (p *Pass) Suppressed(check string, pos token.Pos) bool {
	where := p.Fset.Position(pos)
	for _, d := range p.parseDirectives() {
		if d.Check != check || d.Reason == "" {
			continue
		}
		if d.File == where.Filename && (d.Line == where.Line || d.Line == where.Line-1) {
			return true
		}
	}
	return false
}

// CheckDirectives validates every //karousos: directive in the pass's files:
// the check name must be known and the reason non-empty. The driver runs it
// once per package, independent of which analyzers are selected, so a typoed
// or bare directive can never silently suppress nothing.
func CheckDirectives(p *Pass) []Diagnostic {
	var out []Diagnostic
	known := KnownChecks()
	for _, d := range p.parseDirectives() {
		switch {
		case !slicesContains(known, d.Check):
			out = append(out, Diagnostic{Pos: d.Pos, Analyzer: "directive", Check: "directive",
				Message: fmt.Sprintf("unknown karousos directive check %q (known: %s)", d.Check, strings.Join(known, ", "))})
		case d.Reason == "":
			out = append(out, Diagnostic{Pos: d.Pos, Analyzer: "directive", Check: "directive",
				Message: fmt.Sprintf("karousos:%s-ok directive needs a reason", d.Check)})
		}
	}
	return out
}

func slicesContains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// PkgInScope reports whether pkgPath is one of the packages an analyzer
// self-scopes to. Paths are matched by suffix ("internal/verifier" matches
// "karousos.dev/karousos/internal/verifier"); a path with no slash at all is
// an analysistest fixture package and is always in scope.
func PkgInScope(pkgPath string, suffixes []string) bool {
	if !strings.Contains(pkgPath, "/") {
		return true
	}
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
