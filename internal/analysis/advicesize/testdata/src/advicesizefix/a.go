// Fixture for advicesize: wire-decoded lengths reaching allocation sinks
// with and without clamps.
package advicesizefix

import (
	"encoding/binary"
	"io"
	"math"
)

func decodeUnclamped(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	out := make([]byte, n) // want `make sized by an unclamped advice-derived length`
	return out
}

// decodeClamped bounds the length against the remaining input first.
func decodeClamped(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	if n > uint64(len(buf)) {
		return nil
	}
	return make([]byte, n)
}

// magnitudeOnly checks against MaxInt32 — a sign/overflow check, not an
// allocation clamp: 2^31 elements is still an allocation bomb.
func magnitudeOnly(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	if n > math.MaxInt32 {
		return nil
	}
	return make([]byte, n) // want `make sized by an unclamped advice-derived length`
}

// signCheckOnly proves n > 0 does not count as a clamp either.
func signCheckOnly(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	if n > 0 {
		return make([]byte, n) // want `make sized by an unclamped advice-derived length`
	}
	return nil
}

func readBody(r io.Reader, hdr []byte) ([]byte, error) {
	n := binary.LittleEndian.Uint32(hdr)
	buf := make([]byte, int(n)) // want `make sized by an unclamped advice-derived length`
	_, err := io.ReadFull(r, buf)
	return buf, err
}

func copyBody(dst io.Writer, src io.Reader, hdr []byte) error {
	n := binary.LittleEndian.Uint64(hdr)
	_, err := io.CopyN(dst, src, int64(n)) // want `io.CopyN sized by an unclamped advice-derived length`
	return err
}

// viaClampFn passes the length through a clamp* function before allocating.
func viaClampFn(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	clampFrame(n)
	return make([]byte, n)
}

func clampFrame(n uint64) {}

// constBound clamps against a small constant: acceptable.
func constBound(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	if n > 4096 {
		return nil
	}
	return make([]byte, n)
}
