// True-negative fixture for advicesize: the one unclamped allocation carries
// a reviewed //karousos:advicesize-ok directive.
package advicesizeok

import "encoding/binary"

func decode(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	//karousos:advicesize-ok bounded by the 4 KiB frame cap this fixture's protocol enforces upstream
	return make([]byte, n)
}
