// Package advicesize is the static twin of the codec's hostile-length
// clamps (verifier.Limits, decoder.lengthElems): a taint pass from
// advice-decode primitives to allocation sites.
//
// Within each function of the scoped packages it taints values produced by
// raw wire reads — binary.Uvarint / binary.ReadUvarint / ByteOrder.UintNN
// and the decoder helpers named uvarint/intv — and reports any make,
// io.ReadFull/ReadAtLeast, or io.CopyN whose size argument is still tainted
// when it reaches the sink. Taint is cleared by a clamp:
//
//   - a relational comparison against a non-constant bound (the
//     `if n > len(rest)-frameHeader { ... }` shape of lengthElems and
//     nextFrame) or a constant bound ≤ 1<<20;
//   - passing the value to a clamp function (lengthElems, length,
//     CheckAdviceBytes, clamp*).
//
// A magnitude check against math.MaxInt32 (decoder.intv) deliberately does
// NOT clear taint: 2^31 elements is still an allocation bomb. The analysis
// is intra-procedural and flow-approximate by source position; the escape
// hatch is //karousos:advicesize-ok <reason>.
package advicesize

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"karousos.dev/karousos/internal/analysis"
)

// Packages are the wire-decode packages this analyzer self-scopes to.
var Packages = []string{
	"internal/advice",
	"internal/value",
	"internal/trace",
	"internal/epochlog",
	"internal/collectorhttp",
	"internal/verifier",
}

// MaxConstBound is the largest constant a comparison may clamp to and
// still count as a sanitizer. Exported: advicetaint, the interprocedural
// generalization of this pass, applies the identical clamp policy.
const MaxConstBound = 1 << 20

// SanitizerNames are functions/methods whose call clamps a length argument
// (or whose result is already clamped). Shared with advicetaint.
var SanitizerNames = map[string]bool{
	"length":           true,
	"lengthElems":      true,
	"CheckAdviceBytes": true,
}

// IsSanitizerName reports whether a called function's bare name counts as
// a clamp (SanitizerNames plus the clamp* convention).
func IsSanitizerName(name string) bool {
	return SanitizerNames[name] || strings.HasPrefix(name, "clamp")
}

// sourceNames are decoder helper methods whose results are attacker-chosen
// numbers.
var sourceNames = map[string]bool{
	"uvarint": true,
	"intv":    true,
}

// Analyzer is the advicesize pass.
var Analyzer = &analysis.Analyzer{
	Name: "advicesize",
	Doc: "require every advice-derived length to pass a clamp (lengthElems / Limits / bounded comparison) " +
		"before reaching make/io.ReadFull; suppress with //karousos:advicesize-ok <reason>",
	Run: run,
}

func init() { analysis.Register(Analyzer) }

func run(pass *analysis.Pass) error {
	if !analysis.PkgInScope(pass.Pkg.Path(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
	}
	return nil
}

// taintState tracks which objects hold unclamped attacker-chosen numbers,
// replayed in source order over one function body.
type taintState struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	st := &taintState{pass: pass, tainted: map[types.Object]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(n)
		case *ast.IfStmt:
			st.sanitizeCond(n.Cond)
		case *ast.ForStmt:
			if n.Cond != nil {
				st.sanitizeCond(n.Cond)
			}
		case *ast.CallExpr:
			st.call(n)
		}
		return true
	})
}

// assign taints LHS objects whose RHS carries a source.
func (st *taintState) assign(a *ast.AssignStmt) {
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// Multi-value: x, n := binary.Uvarint(...) taints every LHS.
		if st.exprTainted(a.Rhs[0]) {
			for _, l := range a.Lhs {
				st.setTaint(l, true)
			}
		} else {
			for _, l := range a.Lhs {
				st.setTaint(l, false)
			}
		}
		return
	}
	for i, l := range a.Lhs {
		if i < len(a.Rhs) {
			st.setTaint(l, st.exprTainted(a.Rhs[i]))
		}
	}
}

func (st *taintState) setTaint(lhs ast.Expr, tainted bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := st.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if tainted {
		st.tainted[obj] = true
	} else {
		delete(st.tainted, obj)
	}
}

// exprTainted reports whether e contains a source call or a currently
// tainted identifier. Calls to non-source functions do not propagate their
// arguments' taint (their result is a new value with its own provenance) —
// except conversions and arithmetic, which ast.Inspect naturally walks.
func (st *taintState) exprTainted(e ast.Expr) bool {
	tainted := false
	ast.Inspect(e, func(n ast.Node) bool {
		if tainted {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if st.isSourceCall(n) {
				tainted = true
				return false
			}
			if fnName(n) != "" && !isConversion(st.pass.TypesInfo, n) {
				// A real function call launders its arguments; only its own
				// sourceness matters.
				return false
			}
		case *ast.Ident:
			if obj := st.pass.TypesInfo.ObjectOf(n); obj != nil && st.tainted[obj] {
				tainted = true
				return false
			}
		}
		return true
	})
	return tainted
}

// isSourceCall matches binary.Uvarint / binary.ReadUvarint / ByteOrder
// UintNN reads and decoder methods named uvarint/intv.
func (st *taintState) isSourceCall(call *ast.CallExpr) bool {
	return IsSourceCall(st.pass.TypesInfo, call)
}

// IsSourceCall reports whether call produces an attacker-chosen number: a
// raw wire read (binary.Uvarint / ReadUvarint / ByteOrder UintNN) or a
// decoder helper named uvarint/intv. Shared with advicetaint, which chases
// these values across function boundaries.
func IsSourceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	// Package-level binary.Uvarint / binary.ReadUvarint / binary.Varint...
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			p := pn.Imported().Path()
			if p == "encoding/binary" && (name == "Uvarint" || name == "Varint" || name == "ReadUvarint" || name == "ReadVarint") {
				return true
			}
			return false
		}
	}
	// ByteOrder reads: binary.LittleEndian.Uint32(...), order.Uint64(...).
	if name == "Uint16" || name == "Uint32" || name == "Uint64" {
		if t := info.TypeOf(sel.X); t != nil && strings.Contains(t.String(), "encoding/binary.") {
			return true
		}
	}
	// Decoder helpers: d.uvarint(), d.intv().
	return sourceNames[name]
}

// call handles sinks and sanitizer calls.
func (st *taintState) call(call *ast.CallExpr) {
	// Sanitizer call: clamp functions clear the taint of identifier args.
	if name := fnName(call); IsSanitizerName(name) {
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				st.setTaint(id, false)
			}
		}
		return
	}

	// Sink: make(T, n[, c]).
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltin(st.pass.TypesInfo, id, "make") {
		for _, sizeArg := range call.Args[1:] {
			if st.exprTainted(sizeArg) {
				st.pass.Reportf(call.Pos(), "make sized by an unclamped advice-derived length; clamp it against remaining input or verifier.Limits first")
				return
			}
		}
		return
	}

	// Sink: io.ReadFull / io.ReadAtLeast buffer, io.CopyN count.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := st.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "io" {
				var sized ast.Expr
				switch sel.Sel.Name {
				case "ReadFull":
					if len(call.Args) == 2 {
						sized = call.Args[1]
					}
				case "ReadAtLeast":
					if len(call.Args) == 3 {
						sized = call.Args[2]
					}
				case "CopyN":
					if len(call.Args) == 3 {
						sized = call.Args[2]
					}
				}
				if sized != nil && st.exprTainted(sized) {
					st.pass.Reportf(call.Pos(), "io.%s sized by an unclamped advice-derived length; clamp it before reading", sel.Sel.Name)
				}
			}
		}
	}
}

// sanitizeCond clears taint for identifiers relationally compared against an
// acceptable bound anywhere in cond (walking through && and ||).
func (st *taintState) sanitizeCond(cond ast.Expr) {
	switch c := cond.(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND, token.LOR:
			st.sanitizeCond(c.X)
			st.sanitizeCond(c.Y)
		case token.GTR, token.GEQ, token.LSS, token.LEQ:
			st.sanitizeSide(c.X, c.Y)
			st.sanitizeSide(c.Y, c.X)
		}
	case *ast.ParenExpr:
		st.sanitizeCond(c.X)
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			st.sanitizeCond(c.X)
		}
	}
}

// sanitizeSide clears taint of identifiers inside candidate when bound is an
// acceptable clamp: non-constant, or a constant no larger than
// maxConstBound. (A comparison against math.MaxInt32 is a magnitude check,
// not an allocation clamp.)
func (st *taintState) sanitizeSide(candidate, bound ast.Expr) {
	if tv, ok := st.pass.TypesInfo.Types[bound]; ok && tv.Value != nil {
		// A zero/negative constant is a sign check, not a clamp.
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); !exact || v <= 0 || v > MaxConstBound {
			return
		}
	}
	ast.Inspect(candidate, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			st.setTaint(id, false)
		}
		return true
	})
}

// fnName returns the bare called-function or method name of a call, "" if
// not a named call.
func fnName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func isBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// isConversion reports whether call is a type conversion like uint64(x),
// which propagates taint.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
