package advicesize_test

import (
	"testing"

	"karousos.dev/karousos/internal/analysis/advicesize"
	"karousos.dev/karousos/internal/analysis/analysistest"
)

func TestAdvicesize(t *testing.T) {
	analysistest.Run(t, "testdata", advicesize.Analyzer, "advicesizefix", "advicesizeok")
}
