package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parsePass(t *testing.T, src string) *Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Pass{
		Analyzer: &Analyzer{Name: "detlint"},
		Fset:     fset,
		Files:    []*ast.File{f},
	}
}

func TestSuppressionSameLineAndAbove(t *testing.T) {
	src := `package p

func f() {
	//karousos:nondeterminism-ok reviewed reason
	_ = 1
	_ = 2 //karousos:nondeterminism-ok trailing reason

	_ = 3
}
`
	p := parsePass(t, src)
	line := func(n int) token.Pos {
		return p.Fset.File(p.Files[0].Pos()).LineStart(n)
	}
	if !p.Suppressed("nondeterminism", line(5)) {
		t.Error("directive on the line above must suppress")
	}
	if !p.Suppressed("nondeterminism", line(6)) {
		t.Error("trailing directive on the same line must suppress")
	}
	if p.Suppressed("nondeterminism", line(8)) {
		t.Error("an unannotated line must not be suppressed")
	}
	if p.Suppressed("errladder", line(5)) {
		t.Error("a directive for a different check must not suppress")
	}
}

func TestRegisterOwnsChecks(t *testing.T) {
	Register(&Analyzer{Name: "detlint", Checks: []string{"nondeterminism"}})
	Register(&Analyzer{Name: "errladder"})
	// Re-registering the same pair is a no-op.
	Register(&Analyzer{Name: "errladder"})
	known := KnownChecks()
	for _, want := range []string{"nondeterminism", "errladder"} {
		if !slicesContains(known, want) {
			t.Errorf("KnownChecks() = %v, missing %q", known, want)
		}
	}
	if owner, ok := AnalyzerForCheck("nondeterminism"); !ok || owner != "detlint" {
		t.Errorf("AnalyzerForCheck(nondeterminism) = %q, %v", owner, ok)
	}
	// A check name may not change hands between analyzers.
	defer func() {
		if recover() == nil {
			t.Error("registering another analyzer's check name must panic")
		}
	}()
	Register(&Analyzer{Name: "impostor", Checks: []string{"nondeterminism"}})
}

func TestCheckDirectivesFlagsMalformed(t *testing.T) {
	Register(&Analyzer{Name: "detlint", Checks: []string{"nondeterminism"}})
	Register(&Analyzer{Name: "errladder"})
	src := `package p

func f() {
	//karousos:nondeterminism-ok
	//karousos:typo-check-ok some reason
	//karousos:errladder-ok a fine reason
	_ = 1
}
`
	p := parsePass(t, src)
	ds := CheckDirectives(p)
	if len(ds) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(ds), ds)
	}
	var msgs []string
	for _, d := range ds {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "needs a reason") {
		t.Errorf("missing reasonless-directive diagnostic in %q", joined)
	}
	if !strings.Contains(joined, "unknown karousos directive check") {
		t.Errorf("missing unknown-check diagnostic in %q", joined)
	}
	// A reasonless directive must not suppress anything.
	line4 := p.Fset.File(p.Files[0].Pos()).LineStart(5)
	if p.Suppressed("nondeterminism", line4) {
		t.Error("a reasonless directive suppressed a finding")
	}
}

func TestPkgInScope(t *testing.T) {
	scope := []string{"internal/verifier", "internal/graph"}
	cases := []struct {
		path string
		want bool
	}{
		{"karousos.dev/karousos/internal/verifier", true},
		{"internal/graph", true},
		{"karousos.dev/karousos/internal/epochlog", false},
		{"karousos.dev/karousos/internal/verifierx", false},
		{"detlintfix", true}, // slash-free fixture package
	}
	for _, c := range cases {
		if got := PkgInScope(c.path, scope); got != c.want {
			t.Errorf("PkgInScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
