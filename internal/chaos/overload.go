// Overload scenarios: where chaos.Run scripts infrastructure *faults*,
// RunOverload scripts infrastructure *pressure* — an open-loop arrival
// stream offered well past the collector's admission window, optionally
// with slow fsyncs or slow clients stirred in. The invariants are the
// serving-path promises of DESIGN.md §14:
//
//   - overload is shed, never queued without bound: every arrival resolves
//     to 200 or 429, and the admission gauges never exceed their
//     configured ceilings;
//   - shedding loses no evidence: every 200-acked request appears as a
//     REQ in some sealed epoch;
//   - the accepted load audits clean, and the verdict — including the
//     verifier's work counters — is identical at every audit parallelism.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/loadgen"
	"karousos.dev/karousos/internal/verifier"
)

// Overload chaos ingredients.
const (
	// OverloadNone is pure burst arrival against a small admission window.
	OverloadNone = ""
	// OverloadSlowFsync injects latency into every trace-file I/O call, so
	// group commits (the fsync the whole batch waits on) run slow and
	// backpressure builds behind the commit queue.
	OverloadSlowFsync = "slow-fsync"
	// OverloadSlowClient trickles every Nth request body a few bytes at a
	// time — the slowloris shape. Slow bodies must tie up neither admission
	// slots nor the commit path.
	OverloadSlowClient = "slow-client"
)

// OverloadScenario scripts one overload run.
type OverloadScenario struct {
	// App names the application (harness.SpecByName). "" means motd.
	App string `json:"app"`
	// Seed seeds the workload generator and the collector's scheduler.
	Seed int64 `json:"seed"`
	// Requests is how many arrivals the generator offers.
	Requests int `json:"requests"`
	// EpochRequests is the collector's seal threshold.
	EpochRequests int `json:"epochRequests"`
	// MaxInflight is the collector's admission window. <=0 means 8. The
	// generator always offers 4× this concurrently, so the run is
	// overloaded by construction.
	MaxInflight int `json:"maxInflight"`
	// MaxQueuedBytes is the collector's queued-bytes ceiling. <=0 means
	// 1 MiB.
	MaxQueuedBytes int64 `json:"maxQueuedBytes"`
	// Rate is the open-loop arrival rate (req/s); 0 is a pure burst.
	Rate float64 `json:"rate,omitempty"`
	// Chaos selects the extra pressure ingredient: OverloadNone,
	// OverloadSlowFsync, or OverloadSlowClient.
	Chaos string `json:"chaos,omitempty"`
	// SlowEvery trickles every Nth request body when Chaos is
	// OverloadSlowClient. <=0 means 4.
	SlowEvery int `json:"slowEvery,omitempty"`
}

// OverloadResult is what an overload run observed.
type OverloadResult struct {
	// Load is the generator-side ledger: every arrival in exactly one
	// bucket.
	Load *loadgen.Result `json:"load"`
	// Admission is the collector's admission state at shutdown, including
	// the peak gauges the boundedness invariant checks.
	Admission collectorhttp.AdmissionState `json:"admission"`
	Sealed    int                          `json:"sealed"`
	// Verdicts is the sequential (workers=1) re-audit of every sealed
	// epoch; Stats1 and Stats4 are the summed verifier work counters at
	// parallelism 1 and 4, which must be identical.
	Verdicts []auditd.Verdict `json:"verdicts"`
	Stats1   verifier.Stats   `json:"stats1"`
	Stats4   verifier.Stats   `json:"stats4"`
	// Violations are overload-invariant breaches; empty on a sound run.
	Violations []string `json:"violations,omitempty"`
}

// AuditSealedAt re-audits every sealed epoch in dir at the given verifier
// parallelism and returns the verdict sequence plus the summed work
// counters. It mirrors the auditor's grading semantics — Fresh re-anchors
// the carry, a degraded epoch whose audit fails grades Unauditable and
// unanchors until the next Fresh manifest, a clean rejection halts — but
// keeps the Stats the auditor discards, so two passes at different worker
// counts can be compared counter for counter.
func AuditSealedAt(ctx context.Context, dir string, workers int) ([]auditd.Verdict, verifier.Stats, error) {
	var total verifier.Stats
	meta, err := collectorhttp.ReadMeta(dir)
	if err != nil {
		return nil, total, err
	}
	spec, err := harness.SpecByName(meta.App)
	if err != nil {
		return nil, total, err
	}

	sealed, err := epochlog.ListSealed(dir)
	if err != nil {
		return nil, total, err
	}
	var (
		verdicts   []auditd.Verdict
		carry      *verifier.CarryState
		unanchored bool
	)
	for _, m := range sealed {
		if m.Fresh {
			carry, unanchored = nil, false
		}
		if unanchored {
			verdicts = append(verdicts, auditd.Verdict{Epoch: m.Seq, Code: core.RejectUnauditable, Reason: "unanchored: an earlier epoch graded unauditable"})
			continue
		}
		tr, blob, _, err := epochlog.ReadSealed(dir, m.Seq, epochlog.Options{})
		if err != nil {
			return verdicts, total, err
		}
		grade := func(auditErr error) auditd.Verdict {
			code := core.RejectCodeOf(auditErr)
			if code == "" {
				code = core.RejectMalformedAdvice
			}
			if m.Degraded != "" && code != core.RejectInternalFault {
				unanchored, carry = true, nil
				return auditd.Verdict{Epoch: m.Seq, Code: core.RejectUnauditable,
					Reason: fmt.Sprintf("degraded (%s); audit failed [%s]: %s", m.Degraded, code, auditErr)}
			}
			return auditd.Verdict{Epoch: m.Seq, Code: code, Reason: auditErr.Error()}
		}
		adv, err := advice.UnmarshalBinary(blob)
		if err != nil {
			v := grade(core.Reject{Code: core.RejectMalformedAdvice, Reason: err.Error()})
			verdicts = append(verdicts, v)
			if v.Code != core.RejectUnauditable {
				return verdicts, total, nil
			}
			continue
		}
		app, _ := spec.New()
		st, next, err := verifier.AuditCarry(ctx, verifier.Config{
			App:       app,
			Mode:      meta.Mode,
			Isolation: spec.Isolation,
			Carry:     carry,
			Workers:   workers,
		}, tr, adv)
		total.Add(st)
		if err != nil {
			v := grade(err)
			verdicts = append(verdicts, v)
			if v.Code != core.RejectUnauditable {
				// A clean rejection halts grading, exactly as the live
				// auditor halts: nothing past an accusation is trusted.
				return verdicts, total, nil
			}
			continue
		}
		carry = next
		verdicts = append(verdicts, auditd.Verdict{Epoch: m.Seq})
	}
	return verdicts, total, nil
}

// RunOverload replays the overload scenario in dir (a scratch directory
// the caller owns). The error return is for runner breakage — invariant
// violations land in Result.Violations.
func RunOverload(dir string, sc OverloadScenario) (*OverloadResult, error) {
	if sc.App == "" {
		sc.App = "motd"
	}
	spec, err := harness.SpecByName(sc.App)
	if err != nil {
		return nil, err
	}
	if sc.Requests <= 0 || sc.EpochRequests <= 0 {
		return nil, fmt.Errorf("chaos: overload scenario needs positive Requests and EpochRequests")
	}
	if sc.MaxInflight <= 0 {
		sc.MaxInflight = 8
	}
	if sc.MaxQueuedBytes <= 0 {
		sc.MaxQueuedBytes = 1 << 20
	}
	slowEvery := 0
	inj := iofault.NewInjector(nil)
	switch sc.Chaos {
	case OverloadNone:
	case OverloadSlowFsync:
		// Latency on every trace-file call slows the group commit's
		// write+fsync, which is exactly the stall the commit queue and the
		// admission window have to absorb without growing unboundedly.
		inj.Arm(iofault.OpLatency, iofault.ArmConfig{Times: -1, PathContains: ".trace"})
	case OverloadSlowClient:
		slowEvery = sc.SlowEvery
		if slowEvery <= 0 {
			slowEvery = 4
		}
	default:
		return nil, fmt.Errorf("chaos: unknown overload chaos %q", sc.Chaos)
	}

	logDir := filepath.Join(dir, "log")
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:           spec,
		Dir:            logDir,
		Seed:           sc.Seed,
		EpochRequests:  sc.EpochRequests,
		Commit:         collectorhttp.CommitGroup,
		MaxInflight:    sc.MaxInflight,
		MaxQueuedBytes: sc.MaxQueuedBytes,
		RetryAfter:     50 * time.Millisecond,
		FS:             inj,
		Backoff:        iofault.Backoff{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(col.Handler())
	defer ts.Close()
	defer col.Close()

	res := &OverloadResult{}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	load, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:        ts.URL,
		App:            sc.App,
		Requests:       sc.Requests,
		Rate:           sc.Rate,
		MaxOutstanding: 4 * sc.MaxInflight,
		Seed:           sc.Seed,
		SlowEvery:      slowEvery,
		Client:         ts.Client(),
	})
	if err != nil {
		return res, err
	}
	res.Load = load

	// Snapshot the admission gauges over HTTP before shutdown, the same
	// view an operator's scrape would get.
	var health collectorhttp.Health
	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		return res, err
	}
	err = json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close() //karousos:errladder-ok response body fully consumed by the decoder; Close here only returns the connection
	if err != nil || hr.StatusCode != http.StatusOK {
		return res, fmt.Errorf("chaos: healthz scrape: status %d, %v", hr.StatusCode, err)
	}
	res.Admission = health.Admission

	ts.Close()
	if err := col.Close(); err != nil {
		violate("final seal failed: %v", err)
	}

	// Invariant: overload resolves every arrival to 200 or 429 (or a local
	// shed at the generator) — never a 5xx, a hang, or a mystery status.
	if load.ServerErr != 0 || load.NetErr != 0 || load.OtherStatus != 0 {
		violate("overload produced non-200/429 outcomes: serverErr %d netErr %d other %d",
			load.ServerErr, load.NetErr, load.OtherStatus)
	}
	if load.OK+load.Shed429+load.ShedLocal != load.Offered {
		violate("arrival ledger does not balance: %+v", load)
	}

	// Invariant: the admission gauges never exceeded their ceilings — the
	// collector shed rather than queued.
	if res.Admission.PeakInflight > sc.MaxInflight {
		violate("peak inflight %d exceeded window %d", res.Admission.PeakInflight, sc.MaxInflight)
	}
	if res.Admission.PeakQueuedBytes > sc.MaxQueuedBytes {
		violate("peak queued bytes %d exceeded ceiling %d", res.Admission.PeakQueuedBytes, sc.MaxQueuedBytes)
	}

	// Invariant: zero evidence loss — every 200-acked RID is a REQ in some
	// sealed epoch.
	sealed, err := epochlog.ListSealed(logDir)
	if err != nil {
		return res, err
	}
	res.Sealed = len(sealed)
	inLog := map[string]bool{}
	for _, m := range sealed {
		tr, _, _, err := epochlog.ReadSealed(logDir, m.Seq, epochlog.Options{})
		if err != nil {
			return res, err
		}
		if err := tr.CheckBalanced(); err != nil {
			violate("epoch %d sealed unbalanced: %v", m.Seq, err)
		}
		for _, rid := range tr.RIDs() {
			inLog[rid] = true
		}
	}
	for _, rid := range load.AckedRIDs {
		if !inLog[rid] {
			violate("acked rid %s missing from the sealed log", rid)
		}
	}

	// Invariant: the admitted load audits to Accept, and the verdict and
	// work counters are identical at audit parallelism 1 and 4.
	ctx := context.Background()
	v1, s1, err := AuditSealedAt(ctx, logDir, 1)
	if err != nil {
		return res, err
	}
	v4, s4, err := AuditSealedAt(ctx, logDir, 4)
	if err != nil {
		return res, err
	}
	res.Verdicts, res.Stats1, res.Stats4 = v1, s1, s4
	for _, v := range v1 {
		if !v.Accepted() {
			violate("epoch %d graded %s under overload: %s", v.Epoch, v.Code, v.Reason)
		}
	}
	if len(v1) != len(v4) {
		violate("audit graded %d epochs at workers=1 but %d at workers=4", len(v1), len(v4))
	} else {
		for i := range v1 {
			if v1[i].Epoch != v4[i].Epoch || v1[i].Code != v4[i].Code {
				violate("epoch %d verdict differs across worker counts: %q vs %q", v1[i].Epoch, v1[i].Code, v4[i].Code)
			}
		}
	}
	if s1 != s4 {
		violate("audit stats differ across worker counts: %+v vs %+v", s1, s4)
	}
	return res, nil
}
