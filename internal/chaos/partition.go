// Partition scenarios: where RunShardChaos kills a collector process,
// RunPartition breaks the *network* between the gateway and its shards —
// blackholed links, flapping dials, a gateway restart — using
// netfault.Injector as the gateway's transport. The invariants are the
// partition-tolerance promises of DESIGN.md §16:
//
//   - the gateway answers every arrival with 200, 429 or 503 — no hangs
//     past the per-try budget, no 5xx storms, and every 503 carries a
//     Retry-After hint;
//   - a dark shard degrades only its own keyspace: requests routing to
//     the survivors keep returning 200 throughout;
//   - no acknowledged evidence is lost: every 200-acked RID appears in a
//     sealed epoch of the shard that served it, partition or not;
//   - the post-run sharded audit never turns infrastructure failure into
//     an accusation: the victim's losses grade Unauditable at worst, the
//     combined verdict is bit-identical at every lane count, and no shard
//     is falsely rejected.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/netfault"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

// Partition fault ingredients.
const (
	// PartitionNone runs no network fault (gateway-restart scenarios).
	PartitionNone = ""
	// PartitionBlackhole drops every packet to the victim: requests stall
	// to the per-try budget, then classify ambiguous. The breaker is what
	// turns this from N slow failures into fast 503s.
	PartitionBlackhole = "blackhole"
	// PartitionFlap refuses dials to the victim in seed-derived bursts —
	// the retry budget's natural prey, and provably-unsent, so retries are
	// sound.
	PartitionFlap = "flap"
)

// PartitionScenario scripts misfortune against the network of a
// gateway-fronted shard topology.
type PartitionScenario struct {
	// App names the application; only "wiki" is shardable.
	App  string `json:"app"`
	Seed int64  `json:"seed"`
	// Shards is the topology width; Requests and EpochRequests as in
	// ShardScenario.
	Shards        int `json:"shards"`
	Requests      int `json:"requests"`
	EpochRequests int `json:"epochRequests"`
	// Victim is the shard whose network (and optionally process) suffers.
	Victim int `json:"victim"`
	// Fault is the network condition against the victim's backend:
	// PartitionBlackhole, PartitionFlap, or PartitionNone.
	Fault string `json:"fault,omitempty"`
	// FaultAt arms the fault at the first request index >= FaultAt where
	// the victim's open epoch is nonempty ("mid-epoch", so a subsequent
	// kill provably has partial evidence in flight). HealAt heals it
	// (-1 = never).
	FaultAt int `json:"faultAt,omitempty"`
	HealAt  int `json:"healAt,omitempty"`
	// KillAt crashes the victim's collector at that request index
	// (-1 = never) — the partitioned node dying, in-memory advice lost.
	// RestartAt boots a fresh incarnation (-1 = after the run).
	KillAt    int `json:"killAt,omitempty"`
	RestartAt int `json:"restartAt,omitempty"`
	// GatewayRestartAt swaps in a fresh gateway instance mid-run
	// (0 = never): the front door is stateless, so nothing may change.
	GatewayRestartAt int `json:"gatewayRestartAt,omitempty"`
	// ExpectUnauditable asserts the victim ends with at least one epoch
	// graded Unauditable — set when the scenario kills mid-epoch.
	ExpectUnauditable bool `json:"expectUnauditable,omitempty"`
}

// PartitionResult is what a partition run observed.
type PartitionResult struct {
	Served   int `json:"served"`
	Degraded int `json:"degraded"` // 503s, all with Retry-After
	Shed     int `json:"shed"`     // 429s passed through
	// Retries/FastFails are the gateway's own counters for the victim.
	Victim gateway.ShardCounters `json:"victim"`
	// Shards/Merge are the full-width audit's per-lane reports and
	// combined verdict; the verdict tallies span the whole topology.
	Shards      []auditd.ShardReport `json:"shards"`
	Merge       shard.MergeResult    `json:"merge"`
	Accepted    int                  `json:"accepted"`
	Rejected    int                  `json:"rejected"`
	Unauditable int                  `json:"unauditable"`
	// Violations are partition-invariant breaches; empty on a sound run.
	Violations []string `json:"violations,omitempty"`
}

// PartitionAcceptanceScenario is the fixed-seed partition criterion: the
// victim is blackholed mid-epoch, its collector killed while dark (losing
// the partial epoch's advice), then the link heals and a fresh
// incarnation rejoins. Expected outcome: only 200/429/503 at the
// gateway, survivors unaffected, acked⊆sealed everywhere, and the victim
// graded Unauditable — never accused.
func PartitionAcceptanceScenario(shards int, seed int64) PartitionScenario {
	if shards <= 0 {
		shards = 4
	}
	return PartitionScenario{
		App: "wiki", Seed: seed, Shards: shards,
		Requests: 80, EpochRequests: 5,
		Victim: 1 % shards,
		Fault:  PartitionBlackhole, FaultAt: 25, HealAt: 55,
		KillAt: 40, RestartAt: 55,
		ExpectUnauditable: true,
	}
}

// FlappingScenario: the victim's link refuses dials in bursts for the
// middle of the run, with no process death. Refused dials are provably
// unsent, so the gateway's retries are sound; everything the clients saw
// acked must audit clean.
func FlappingScenario(shards int, seed int64) PartitionScenario {
	if shards <= 0 {
		shards = 4
	}
	return PartitionScenario{
		App: "wiki", Seed: seed, Shards: shards,
		Requests: 60, EpochRequests: 5,
		Victim: 1 % shards,
		Fault:  PartitionFlap, FaultAt: 15, HealAt: 45,
		KillAt: -1, RestartAt: -1,
	}
}

// GatewayRestartScenario: the stateless front door restarts mid-run with
// no network fault. Nothing observable may change: every request serves,
// routing echoes are identical, and the audit is clean.
func GatewayRestartScenario(shards int, seed int64) PartitionScenario {
	if shards <= 0 {
		shards = 4
	}
	return PartitionScenario{
		App: "wiki", Seed: seed, Shards: shards,
		Requests: 40, EpochRequests: 5,
		Victim: 0, Fault: PartitionNone,
		KillAt: -1, RestartAt: -1,
		GatewayRestartAt: 20,
	}
}

// RunPartition replays the scenario in dir (a scratch directory the
// caller owns). The error return is for runner breakage — invariant
// violations land in PartitionResult.Violations.
func RunPartition(dir string, sc PartitionScenario) (*PartitionResult, error) {
	if sc.App == "" {
		sc.App = "wiki"
	}
	if sc.App != "wiki" {
		return nil, fmt.Errorf("chaos: partition scenario needs a shardable app; %q's store keys cross shards", sc.App)
	}
	if sc.Shards <= 0 || sc.Requests <= 0 || sc.EpochRequests <= 0 {
		return nil, fmt.Errorf("chaos: partition scenario needs positive Shards, Requests and EpochRequests")
	}
	if sc.Victim < 0 || sc.Victim >= sc.Shards {
		return nil, fmt.Errorf("chaos: victim shard %d out of range", sc.Victim)
	}
	switch sc.Fault {
	case PartitionNone, PartitionBlackhole, PartitionFlap:
	default:
		return nil, fmt.Errorf("chaos: unknown partition fault %q", sc.Fault)
	}

	inj := netfault.NewInjector()
	// Keep a dark shard's discovery latency test-sized: a blackholed try
	// stalls at most MaxBlock, and the gateway gives up each try at
	// PerTryTimeout. Tight breaker + backoff keep the run deterministic in
	// shape without real-time sleeps dominating.
	inj.MaxBlock = 50 * time.Millisecond
	tuning := gateway.Tuning{
		PerTryTimeout:   250 * time.Millisecond,
		MaxRetries:      2,
		BreakerFailures: 3,
		BreakerOpenFor:  150 * time.Millisecond,
		RetryAfter:      time.Second,
		Backoff:         netfault.Backoff{Base: time.Millisecond, Max: 4 * time.Millisecond},
	}

	root := filepath.Join(dir, "shards")
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec:          harness.WikiApp(),
		Root:          root,
		Map:           shard.Map{Shards: sc.Shards, KeyFields: []string{"id", "page"}},
		EpochRequests: sc.EpochRequests,
		Seed:          sc.Seed,
		Limits:        verifier.DefaultLimits(),
		Transport:     inj.Transport(nil),
		Tuning:        tuning,
	})
	if err != nil {
		return nil, err
	}
	defer top.Close()
	// The server wraps Local.Handler, not a specific gateway instance, so
	// RestartGateway is seamless — exactly like a load balancer repointing
	// at the replacement front-door process.
	ts := httptest.NewServer(top.Handler())
	defer ts.Close()
	victimHost := strings.TrimPrefix(top.BackendURL(sc.Victim), "http://")

	res := &PartitionResult{}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	ackedByShard := make(map[int]map[string]bool)
	victimServed := 0
	faultArmed, down := false, false
	m := top.Map
	for i, req := range workload.Wiki(sc.Requests, sc.Seed) {
		// Fault arming waits for "mid-epoch": the victim must hold a
		// nonempty open epoch so a kill while dark provably strands
		// evidence.
		if sc.Fault != PartitionNone && !faultArmed && i >= sc.FaultAt &&
			victimServed%sc.EpochRequests != 0 {
			op := netfault.OpBlackhole
			if sc.Fault == PartitionFlap {
				op = netfault.OpFlap
			}
			if err := inj.Arm(op, netfault.ArmConfig{Seed: sc.Seed, Times: -1, TargetContains: victimHost}); err != nil {
				return res, err
			}
			faultArmed = true
		}
		if faultArmed && sc.HealAt >= 0 && i >= sc.HealAt {
			inj.HealTarget(victimHost)
			faultArmed = false
		}
		if sc.KillAt >= 0 && i >= sc.KillAt && !down && top.Collector(sc.Victim) != nil {
			if err := top.Crash(sc.Victim); err != nil {
				return res, fmt.Errorf("chaos: crashing shard %d: %w", sc.Victim, err)
			}
			down = true
		}
		if down && sc.RestartAt >= 0 && i >= sc.RestartAt {
			if err := top.Restart(sc.Victim); err != nil {
				return res, fmt.Errorf("chaos: restarting shard %d: %w", sc.Victim, err)
			}
			down = false
		}
		if sc.GatewayRestartAt > 0 && i == sc.GatewayRestartAt {
			if err := top.RestartGateway(); err != nil {
				return res, fmt.Errorf("chaos: restarting gateway: %w", err)
			}
		}

		body, err := json.Marshal(map[string]any{"input": req.Input})
		if err != nil {
			return res, err
		}
		resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			// The gateway itself must always answer; only the shards may
			// be dark.
			violate("request %d: gateway unreachable: %v", i, err)
			continue
		}
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //karousos:errladder-ok scenario-side read; status carries the verdict
		resp.Body.Close()

		wantShard := m.ShardOf(value.Normalize(req.Input))
		if got := resp.Header.Get(gateway.ShardHeader); got != strconv.Itoa(wantShard) {
			violate("request %d: shard header %q, map says %d", i, got, wantShard)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			res.Served++
			var out struct {
				RID string `json:"rid"`
			}
			if err := json.Unmarshal(blob, &out); err != nil || out.RID == "" {
				violate("request %d: 200 with no rid: %v", i, err)
				break
			}
			if ackedByShard[wantShard] == nil {
				ackedByShard[wantShard] = map[string]bool{}
			}
			ackedByShard[wantShard][out.RID] = true
			if wantShard == sc.Victim {
				victimServed++
			}
		case http.StatusTooManyRequests:
			res.Shed++
		case http.StatusServiceUnavailable:
			res.Degraded++
			if resp.Header.Get("Retry-After") == "" {
				violate("request %d: 503 without Retry-After", i)
			}
			if wantShard != sc.Victim {
				violate("request %d: survivor shard %d degraded (victim is %d)", i, wantShard, sc.Victim)
			}
		default:
			violate("request %d: status %d — partition must surface as 200/429/503, nothing else", i, resp.StatusCode)
		}
	}
	res.Victim = top.Gateway.Counters()[sc.Victim]

	// Heal and restart everything so the final seal covers every shard —
	// the recovered incarnation is what seals the victim's stranded tail.
	inj.Heal()
	if down {
		if err := top.Restart(sc.Victim); err != nil {
			return res, fmt.Errorf("chaos: restarting shard %d: %w", sc.Victim, err)
		}
	}
	if err := top.Close(); err != nil {
		return res, fmt.Errorf("chaos: sealing topology: %w", err)
	}

	evidence, err := shardEvidence(root, sc.Shards)
	if err != nil {
		return res, err
	}

	// Invariant: acked⊆sealed per shard — every RID a client saw 200 for
	// is a REQ in a sealed epoch of the shard that served it.
	for s := 0; s < sc.Shards; s++ {
		if len(ackedByShard[s]) == 0 {
			continue
		}
		sealedRIDs := map[string]bool{}
		dirS := shard.Dir(root, s)
		manifests, err := epochlog.ListSealed(dirS)
		if err != nil {
			return res, err
		}
		for _, man := range manifests {
			tr, _, _, err := epochlog.ReadSealed(dirS, man.Seq, epochlog.Options{})
			if err != nil {
				return res, err
			}
			for _, rid := range tr.RIDs() {
				sealedRIDs[rid] = true
			}
		}
		for rid := range ackedByShard[s] {
			if !sealedRIDs[rid] {
				violate("shard %d: acked rid %s missing from the sealed log", s, rid)
			}
		}
	}

	// The lane differential: per-shard verdicts, merge and stats must be
	// bit-identical audited with one lane per shard and with one lane.
	ctx := context.Background()
	var keys []string
	for _, lanes := range []int{sc.Shards, 1} {
		sh, err := auditd.NewSharded(auditd.ShardedConfig{
			Root: root, Lanes: lanes, Limits: verifier.DefaultLimits(),
		})
		if err != nil {
			return res, err
		}
		out, err := sh.Audit(ctx)
		if err != nil {
			return res, err
		}
		keys = append(keys, shardVerdictKey(out))
		if lanes != sc.Shards {
			continue
		}
		res.Shards, res.Merge = out.Shards, out.Merge
		victimUnauditable := false
		for _, rep := range out.Shards {
			for _, v := range rep.Verdicts {
				switch v.Code {
				case "":
					res.Accepted++
				case core.RejectUnauditable:
					res.Unauditable++
					if rep.Shard == sc.Victim {
						victimUnauditable = true
					} else {
						violate("surviving shard %d graded unauditable: epoch %d %s", rep.Shard, v.Epoch, v.Reason)
					}
				default:
					res.Rejected++
					violate("false reject: shard %d epoch %d [%s] %s", rep.Shard, v.Epoch, v.Code, v.Reason)
				}
			}
		}
		if sc.ExpectUnauditable && !victimUnauditable {
			violate("victim shard %d has no unauditable epoch: the kill-while-dark left no stranded evidence to grade", sc.Victim)
		}
		if !sc.ExpectUnauditable && res.Unauditable > 0 {
			violate("scenario without a kill graded %d epochs unauditable", res.Unauditable)
		}
		switch out.Merge.Code {
		case "":
		case core.RejectUnauditable:
			if !sc.ExpectUnauditable {
				violate("combined verdict unauditable without a kill: %s", out.Merge.Reason)
			}
		default:
			violate("combined verdict accuses after an infrastructure fault: [%s] %s", out.Merge.Code, out.Merge.Reason)
		}
	}
	if keys[0] != keys[1] {
		violate("lane-count divergence:\n%d lanes: %s\n1 lane:  %s", sc.Shards, keys[0], keys[1])
	}

	// Evidence preservation: nothing the shards sealed disappears under
	// audit.
	after, err := shardEvidence(root, sc.Shards)
	if err != nil {
		return res, err
	}
	for name := range evidence {
		if !after[name] {
			violate("evidence deleted: %s", name)
		}
	}
	return res, nil
}
