package chaos

import (
	"strings"
	"testing"
)

// TestPartitionAcceptance: the fixed-seed blackhole + kill-while-dark
// scenario holds every invariant — only 200/429/503 at the gateway,
// survivors unaffected, acked⊆sealed, evidence preserved, lane-identical
// verdicts — and grades the victim Unauditable, never accused.
func TestPartitionAcceptance(t *testing.T) {
	sc := PartitionAcceptanceScenario(4, 11)
	res, err := RunPartition(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %s", strings.Join(res.Violations, "\n"))
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0", res.Rejected)
	}
	if res.Unauditable == 0 {
		t.Fatal("no epoch graded unauditable; the kill-while-dark stranded nothing")
	}
	if res.Accepted == 0 {
		t.Fatal("no epoch accepted; the scenario audited nothing")
	}
	if res.Served == 0 || res.Degraded == 0 {
		t.Fatalf("scenario did not exercise both sides: served=%d degraded=%d", res.Served, res.Degraded)
	}
	if res.Victim.FastFails == 0 {
		t.Fatalf("victim breaker never fast-failed: %+v — the blackhole was paid for on every request", res.Victim)
	}
}

// TestPartitionFlapping: a flapping link costs at most availability on
// the victim's keyspace; retries absorb part of it, nothing strands, and
// the audit is fully clean (no kill → no Unauditable anywhere).
func TestPartitionFlapping(t *testing.T) {
	sc := FlappingScenario(4, 11)
	res, err := RunPartition(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %s", strings.Join(res.Violations, "\n"))
	}
	if res.Unauditable != 0 || res.Rejected != 0 {
		t.Fatalf("flap without a kill graded unauditable=%d rejected=%d, want 0/0", res.Unauditable, res.Rejected)
	}
	if res.Merge.Code != "" {
		t.Fatalf("combined verdict %q, want accept", res.Merge.Code)
	}
	if res.Victim.Retries == 0 {
		t.Fatalf("no retry absorbed the flapping: %+v", res.Victim)
	}
}

// TestPartitionGatewayRestart: restarting the stateless front door
// mid-run changes nothing observable — every request serves and the
// audit is clean.
func TestPartitionGatewayRestart(t *testing.T) {
	sc := GatewayRestartScenario(3, 23)
	res, err := RunPartition(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %s", strings.Join(res.Violations, "\n"))
	}
	if res.Served != sc.Requests {
		t.Fatalf("served %d of %d: a gateway restart dropped traffic", res.Served, sc.Requests)
	}
	if res.Unauditable != 0 || res.Rejected != 0 || res.Merge.Code != "" {
		t.Fatalf("clean restart graded unauditable=%d rejected=%d merge=%q", res.Unauditable, res.Rejected, res.Merge.Code)
	}
}

// TestPartitionDeterministic: same seed, same tallies — the scenario is
// replayable evidence, not noise.
func TestPartitionDeterministic(t *testing.T) {
	sc := PartitionAcceptanceScenario(2, 23)
	a, err := RunPartition(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPartition(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations)+len(b.Violations) > 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.Accepted != b.Accepted || a.Unauditable != b.Unauditable || a.Merge.Code != b.Merge.Code {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

// TestPartitionScenarioValidation: malformed scripts are runner errors,
// not violations.
func TestPartitionScenarioValidation(t *testing.T) {
	if _, err := RunPartition(t.TempDir(), PartitionScenario{App: "motd", Shards: 2, Requests: 10, EpochRequests: 5}); err == nil {
		t.Fatal("unshardable app accepted")
	}
	if _, err := RunPartition(t.TempDir(), PartitionScenario{App: "wiki", Shards: 2, Requests: 10, EpochRequests: 5, Victim: 5}); err == nil {
		t.Fatal("out-of-range victim accepted")
	}
	if _, err := RunPartition(t.TempDir(), PartitionScenario{App: "wiki", Shards: 2, Requests: 10, EpochRequests: 5, Fault: "emp"}); err == nil {
		t.Fatal("unknown fault accepted")
	}
}
