// Package chaos is a deterministic fault-scenario runner for the
// continuous-audit pipeline. A Scenario scripts a workload interleaved
// with infrastructure misfortune — injected I/O faults armed and healed at
// chosen points, collector crashes, auditor kills — and Run replays it
// single-threaded so the same seed always produces the same sequence of
// faults, seals, and verdicts.
//
// The runner exists to check the robustness invariants the rest of this
// module promises (DESIGN.md §11):
//
//   - infrastructure faults never manufacture accusations: an honest
//     server under chaos is graded Accepted or Unauditable, never rejected;
//   - verdicts are deterministic: an epoch graded more than once (auditor
//     restarts, lost checkpoints) always re-grades to the same code;
//   - evidence is never destroyed: every trace/advice/manifest file that
//     ever existed still exists afterwards, possibly quarantined, never
//     deleted;
//   - the sealed prefix only grows.
//
// Violations are collected in Result.Violations rather than returned as
// errors, so a scenario can observe several at once.
package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/workload"
)

// Fault arms one iofault operator on one component.
type Fault struct {
	// Component is "collector" or "auditd".
	Component string `json:"component"`
	// Spec is an iofault "op[:seed[:times]]" spec.
	Spec string `json:"spec"`
	// PathContains restricts the operator to matching paths ("" = all).
	PathContains string `json:"pathContains,omitempty"`
}

// Event is one scripted step, applied before driving request AtRequest
// (0-based). Multiple events may share an index; they apply in order.
type Event struct {
	AtRequest int     `json:"atRequest"`
	Arm       []Fault `json:"arm,omitempty"`
	// HealCollector / HealAuditor disarm every operator on that component.
	HealCollector bool `json:"healCollector,omitempty"`
	HealAuditor   bool `json:"healAuditor,omitempty"`
	// CrashCollector kills the collector without sealing and restarts it,
	// exactly as a process kill + supervisor restart would.
	CrashCollector bool `json:"crashCollector,omitempty"`
	// CrashAuditor discards the auditor instance (its in-memory carry dies
	// with it) and rebuilds from the durable checkpoint.
	CrashAuditor bool `json:"crashAuditor,omitempty"`
}

// Scenario is a deterministic chaos script.
type Scenario struct {
	// App names the application (harness.SpecByName).
	App string `json:"app"`
	// Seed seeds the workload generator and the collector's scheduler.
	Seed int64 `json:"seed"`
	// Requests is the total workload length.
	Requests int `json:"requests"`
	// EpochRequests is the collector's seal threshold.
	EpochRequests int     `json:"epochRequests"`
	Events        []Event `json:"events,omitempty"`
}

// Result is what a scenario run observed.
type Result struct {
	Served  int `json:"served"`
	Refused int `json:"refused"`
	Sealed  int `json:"sealed"`
	// Verdicts is the final verdict per epoch, ordered by epoch.
	Verdicts []auditd.Verdict `json:"verdicts"`
	// Grades counts final verdicts by code ("" = accepted).
	Accepted    int `json:"accepted"`
	Rejected    int `json:"rejected"`
	Unauditable int `json:"unauditable"`
	// AuditorRestarts counts infra-fault rebuilds plus scripted kills.
	AuditorRestarts  int `json:"auditorRestarts"`
	CollectorCrashes int `json:"collectorCrashes"`
	// Violations are robustness-invariant breaches; empty on a sound run.
	Violations []string `json:"violations,omitempty"`
}

// VerdictKey renders the verdict sequence as a comparable string — epoch
// and code only, since reasons embed scratch-directory paths.
func (r *Result) VerdictKey() string {
	var b strings.Builder
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "%d=%s;", v.Epoch, v.Code)
	}
	return b.String()
}

// maxAuditorRebuilds bounds mini-supervision so a scenario whose faults
// never heal terminates instead of spinning.
const maxAuditorRebuilds = 16

type runner struct {
	sc     Scenario
	spec   harness.AppSpec
	logDir string
	ckpt   string

	cInj *iofault.Injector
	aInj *iofault.Injector
	back iofault.Backoff

	col *collectorhttp.Collector
	ts  *httptest.Server
	aud *auditd.Auditor

	res *Result
	// graded remembers each epoch's first verdict code to check that
	// re-grades never flip, and last holds the most recent verdict.
	graded map[uint64]core.RejectCode
	last   map[uint64]auditd.Verdict
	// evidence is every evidence filename ever observed in logDir.
	evidence   map[string]bool
	prevSealed int
	// halted is set when an honest rejection stopped the audit.
	halted *auditd.Reject
}

// Run replays the scenario in dir (a scratch directory the caller owns)
// and reports what happened. The error return is for runner breakage —
// invariant violations land in Result.Violations instead.
func Run(dir string, sc Scenario) (*Result, error) {
	spec, err := harness.SpecByName(sc.App)
	if err != nil {
		return nil, err
	}
	if sc.Requests <= 0 || sc.EpochRequests <= 0 {
		return nil, fmt.Errorf("chaos: scenario needs positive Requests and EpochRequests")
	}
	r := &runner{
		sc:       sc,
		spec:     spec,
		logDir:   filepath.Join(dir, "log"),
		ckpt:     filepath.Join(dir, "auditd.ckpt"),
		cInj:     iofault.NewInjector(nil),
		aInj:     iofault.NewInjector(nil),
		back:     iofault.Backoff{Sleep: func(time.Duration) {}},
		res:      &Result{},
		graded:   map[uint64]core.RejectCode{},
		last:     map[uint64]auditd.Verdict{},
		evidence: map[string]bool{},
	}
	if err := r.openCollector(); err != nil {
		return nil, err
	}
	defer func() {
		if r.ts != nil {
			r.ts.Close()
		}
		if r.col != nil {
			r.col.Close()
		}
	}()
	if err := r.newAuditor(); err != nil {
		return nil, err
	}

	events := map[int][]Event{}
	for _, ev := range sc.Events {
		events[ev.AtRequest] = append(events[ev.AtRequest], ev)
	}
	reqs := requestsFor(spec, sc.Requests, sc.Seed)
	ctx := context.Background()

	for i, req := range reqs {
		for _, ev := range events[i] {
			if err := r.apply(ev); err != nil {
				return r.res, err
			}
		}
		r.invoke(req)
		if err := r.auditStep(ctx); err != nil {
			return r.res, err
		}
		r.checkInvariants()
	}

	// Shutdown: the collector seals its final partial epoch, then the
	// auditor drains everything sealed.
	r.ts.Close()
	r.ts = nil
	if err := r.col.Close(); err != nil && r.res != nil {
		r.res.Violations = append(r.res.Violations, "final seal failed: "+err.Error())
	}
	r.col = nil
	sealed, err := epochlog.ListSealed(r.logDir)
	if err != nil {
		return r.res, err
	}
	r.res.Sealed = len(sealed)
	var lastSeq uint64
	if len(sealed) > 0 {
		lastSeq = sealed[len(sealed)-1].Seq
	}
	// A rebuilt auditor resumes from the checkpoint, which may sit behind
	// the epoch whose grade died with the incarnation — so a step without
	// forward progress is normal right after a rebuild. Only a long run of
	// them means the drain is actually wedged.
	stuck := 0
	for r.halted == nil {
		before := r.aud.Status().LastProcessed
		if before >= lastSeq {
			break
		}
		if err := r.auditStep(ctx); err != nil {
			return r.res, err
		}
		if r.aud.Status().LastProcessed <= before {
			if stuck++; stuck > 2*maxAuditorRebuilds {
				return r.res, fmt.Errorf("chaos: audit drain stuck at epoch %d of %d", before, lastSeq)
			}
		} else {
			stuck = 0
		}
	}
	r.checkInvariants()
	r.finish()
	return r.res, nil
}

func requestsFor(spec harness.AppSpec, n int, seed int64) []server.Request {
	switch spec.Name {
	case "motd":
		return workload.MOTD(n, workload.Mixed, seed)
	case "stacks":
		return workload.Stacks(n, workload.Mixed, seed, workload.DefaultStacksOptions())
	default:
		return workload.Wiki(n, seed)
	}
}

func (r *runner) openCollector() error {
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          r.spec,
		Dir:           r.logDir,
		EpochRequests: r.sc.EpochRequests,
		Seed:          r.sc.Seed,
		FS:            r.cInj,
		Backoff:       r.back,
	})
	if err != nil {
		return fmt.Errorf("chaos: collector: %w", err)
	}
	r.col = col
	r.ts = httptest.NewServer(col.Handler())
	return nil
}

func (r *runner) newAuditor() error {
	a, err := auditd.New(auditd.Config{
		Dir:        r.logDir,
		Spec:       r.spec,
		Checkpoint: r.ckpt,
		Workers:    1, // keep the injector's fault schedule single-threaded
		FS:         r.aInj,
		Backoff:    r.back,
		OnVerdict:  r.onVerdict,
	})
	if err != nil {
		return fmt.Errorf("chaos: auditor: %w", err)
	}
	r.aud = a
	return nil
}

func (r *runner) apply(ev Event) error {
	for _, f := range ev.Arm {
		inj := r.cInj
		if f.Component == "auditd" {
			inj = r.aInj
		} else if f.Component != "collector" {
			return fmt.Errorf("chaos: unknown component %q", f.Component)
		}
		if err := inj.ArmSpec(f.Spec, f.PathContains); err != nil {
			return fmt.Errorf("chaos: arming %q on %s: %w", f.Spec, f.Component, err)
		}
	}
	if ev.HealCollector {
		r.cInj.Heal()
	}
	if ev.HealAuditor {
		r.aInj.Heal()
	}
	if ev.CrashCollector {
		r.ts.Close()
		if err := r.col.Crash(); err != nil {
			return fmt.Errorf("chaos: crashing collector: %w", err)
		}
		r.res.CollectorCrashes++
		if err := r.openCollector(); err != nil {
			return err
		}
	}
	if ev.CrashAuditor {
		r.res.AuditorRestarts++
		if err := r.newAuditor(); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) invoke(req server.Request) {
	body, err := json.Marshal(map[string]any{"input": req.Input})
	if err != nil {
		r.res.Violations = append(r.res.Violations, "request marshal: "+err.Error())
		return
	}
	resp, err := r.ts.Client().Post(r.ts.URL+"/invoke", "application/json", strings.NewReader(string(body)))
	if err != nil {
		r.res.Refused++
		return
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		r.res.Served++
	} else {
		r.res.Refused++
	}
}

// auditStep runs one RunOnce under mini-supervision: honest rejections
// halt the audit (recorded, not an error); anything else — infrastructure
// errors, InternalFault — rebuilds the auditor from its checkpoint.
func (r *runner) auditStep(ctx context.Context) error {
	if r.halted != nil {
		return nil
	}
	_, err := r.aud.RunOnce(ctx)
	if err == nil {
		return nil
	}
	var rej *auditd.Reject
	if errors.As(err, &rej) && rej.Code != core.RejectInternalFault {
		r.halted = rej
		return nil
	}
	r.res.AuditorRestarts++
	if r.res.AuditorRestarts > maxAuditorRebuilds {
		return fmt.Errorf("chaos: auditor exceeded %d rebuilds; last error: %w", maxAuditorRebuilds, err)
	}
	return r.newAuditor()
}

func (r *runner) onVerdict(v auditd.Verdict) {
	if first, ok := r.graded[v.Epoch]; ok {
		if first != v.Code {
			r.res.Violations = append(r.res.Violations, fmt.Sprintf(
				"verdict flip: epoch %d graded %q then %q", v.Epoch, first, v.Code))
		}
	} else {
		r.graded[v.Epoch] = v.Code
	}
	r.last[v.Epoch] = v
}

// checkInvariants scans the log directory with the real OS filesystem (so
// the probes never consume injected fault schedules).
func (r *runner) checkInvariants() {
	entries, err := os.ReadDir(r.logDir)
	if err != nil {
		r.res.Violations = append(r.res.Violations, "evidence scan: "+err.Error())
		return
	}
	present := map[string]bool{}
	for _, ent := range entries {
		name := ent.Name()
		present[name] = true
		if isEvidence(name) {
			r.evidence[strings.TrimSuffix(name, ".quarantined")] = true
		}
	}
	for name := range r.evidence {
		if !present[name] && !present[name+".quarantined"] {
			r.res.Violations = append(r.res.Violations, "evidence deleted: "+name)
		}
	}
	sealed, err := epochlog.ListSealed(r.logDir)
	if err != nil {
		// Transient listing trouble is the auditor's problem, not an
		// invariant breach; the next probe re-checks.
		return
	}
	if len(sealed) < r.prevSealed {
		r.res.Violations = append(r.res.Violations, fmt.Sprintf(
			"sealed prefix shrank: %d -> %d", r.prevSealed, len(sealed)))
	}
	r.prevSealed = len(sealed)
}

func isEvidence(name string) bool {
	base := strings.TrimSuffix(name, ".quarantined")
	return strings.HasPrefix(base, "ep") &&
		(strings.HasSuffix(base, ".trace") || strings.HasSuffix(base, ".advice") || strings.HasSuffix(base, ".manifest"))
}

// finish turns the per-epoch verdict map into the ordered final tally and
// applies the honest-run grading invariant: this runner only scripts
// infrastructure faults, so a Rejected verdict is always a violation.
func (r *runner) finish() {
	epochs := make([]uint64, 0, len(r.last))
	for seq := range r.last {
		epochs = append(epochs, seq)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, seq := range epochs {
		v := r.last[seq]
		r.res.Verdicts = append(r.res.Verdicts, v)
		switch v.Code {
		case "":
			r.res.Accepted++
		case core.RejectUnauditable:
			r.res.Unauditable++
		default:
			r.res.Rejected++
			r.res.Violations = append(r.res.Violations, fmt.Sprintf(
				"false reject: epoch %d [%s] %s", v.Epoch, v.Code, v.Reason))
		}
	}
}

// AcceptanceScenario is the ISSUE's fixed-seed criterion: a collector
// crash, transient EIO on the auditor's reads, and an advice outage for
// one epoch. Expected outcome: zero rejects, exactly one Unauditable epoch
// (the outage epoch), every other epoch accepted, and identical verdicts
// on every run with the same seed.
func AcceptanceScenario(app string, seed int64) Scenario {
	return Scenario{
		App:           app,
		Seed:          seed,
		Requests:      40,
		EpochRequests: 10,
		Events: []Event{
			// Transient read trouble for the auditor from the start.
			{AtRequest: 0, Arm: []Fault{{Component: "auditd", Spec: fmt.Sprintf("transient-eio:%d:3", seed)}}},
			// Epoch 2 (requests 10-19) loses its advice channel to a full
			// disk; the trusted trace keeps flowing. Seed 0 keeps the
			// operator gapless — a disk stays full, it does not flicker.
			{AtRequest: 10, Arm: []Fault{{Component: "collector", Spec: "enospc:0:-1", PathContains: ".advice"}}},
			// Disk recovers; the collector process dies and restarts with
			// epoch 2 sealed, so epoch 3 begins at a Fresh boundary.
			{AtRequest: 20, HealCollector: true, CrashCollector: true},
		},
	}
}
