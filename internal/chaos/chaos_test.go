package chaos

import (
	"testing"

	"karousos.dev/karousos/internal/core"
)

// TestAcceptanceScenario is the ISSUE's acceptance criterion: collector
// crash + transient EIO on auditor reads + a one-epoch advice outage must
// finish with zero false rejects, exactly one Unauditable epoch, and every
// other epoch accepted.
func TestAcceptanceScenario(t *testing.T) {
	res, err := Run(t.TempDir(), AcceptanceScenario("motd", 11))
	if err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("invariant violations: %v", res.Violations)
	}
	if res.Rejected != 0 {
		t.Fatalf("false rejects: %+v", res.Verdicts)
	}
	if res.Unauditable != 1 {
		t.Fatalf("unauditable epochs = %d, want exactly 1: %+v", res.Unauditable, res.Verdicts)
	}
	if res.Sealed != 4 || res.Accepted != 3 {
		t.Fatalf("sealed=%d accepted=%d, want 4 sealed / 3 accepted: %+v", res.Sealed, res.Accepted, res.Verdicts)
	}
	if res.Verdicts[1].Code != core.RejectUnauditable {
		t.Fatalf("the outage epoch (2) should be the unauditable one: %+v", res.Verdicts)
	}
	if res.CollectorCrashes != 1 {
		t.Fatalf("collector crashes = %d, want 1", res.CollectorCrashes)
	}
	if res.Served != 40 || res.Refused != 0 {
		t.Fatalf("served=%d refused=%d, want all 40 served", res.Served, res.Refused)
	}
}

// TestAcceptanceScenarioDeterministic: the same seed yields the same
// verdict sequence run after run.
func TestAcceptanceScenarioDeterministic(t *testing.T) {
	a, err := Run(t.TempDir(), AcceptanceScenario("motd", 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(t.TempDir(), AcceptanceScenario("motd", 11))
	if err != nil {
		t.Fatal(err)
	}
	if a.VerdictKey() != b.VerdictKey() {
		t.Fatalf("verdicts diverged across runs:\n  %s\n  %s", a.VerdictKey(), b.VerdictKey())
	}
	if a.Served != b.Served || a.Sealed != b.Sealed || a.Unauditable != b.Unauditable {
		t.Fatalf("run shape diverged: %+v vs %+v", a, b)
	}
}

// TestAllAppsSurviveAcceptance: the scenario holds for every application,
// not just MOTD.
func TestAllAppsSurviveAcceptance(t *testing.T) {
	for _, app := range []string{"motd", "stacks", "wiki"} {
		t.Run(app, func(t *testing.T) {
			res, err := Run(t.TempDir(), AcceptanceScenario(app, 23))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 || res.Rejected != 0 {
				t.Fatalf("app %s: violations %v, verdicts %+v", app, res.Violations, res.Verdicts)
			}
			if res.Unauditable != 1 {
				t.Fatalf("app %s: unauditable = %d, want 1: %+v", app, res.Unauditable, res.Verdicts)
			}
		})
	}
}

// TestHonestRunUnderAuditorKills: repeatedly killing the auditor (losing
// its in-memory carry every time) must not change any verdict — the
// checkpoint plus determinism make every re-grade converge.
func TestHonestRunUnderAuditorKills(t *testing.T) {
	sc := Scenario{
		App:           "motd",
		Seed:          5,
		Requests:      40,
		EpochRequests: 10,
		Events: []Event{
			{AtRequest: 12, CrashAuditor: true},
			{AtRequest: 25, CrashAuditor: true},
			{AtRequest: 33, CrashAuditor: true},
		},
	}
	res, err := Run(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Accepted != res.Sealed || res.Rejected != 0 || res.Unauditable != 0 {
		t.Fatalf("kills changed grading: %+v", res)
	}
	if res.AuditorRestarts < 3 {
		t.Fatalf("auditor restarts = %d, want at least the 3 scripted kills", res.AuditorRestarts)
	}
}

// TestCheckpointFaultsDoNotFlipVerdicts: fsync failures on the checkpoint
// path force auditor rebuilds mid-run; every epoch still accepts and no
// verdict flips (the flip check lives in onVerdict).
func TestCheckpointFaultsDoNotFlipVerdicts(t *testing.T) {
	sc := Scenario{
		App:           "motd",
		Seed:          7,
		Requests:      30,
		EpochRequests: 10,
		Events: []Event{
			{AtRequest: 8, Arm: []Fault{{Component: "auditd", Spec: "fsync-fail:7:2", PathContains: ".ckpt"}}},
		},
	}
	res, err := Run(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Accepted != res.Sealed || res.Rejected != 0 {
		t.Fatalf("checkpoint faults changed grading: %+v", res)
	}
}
