package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/verifier"
)

// requireSound fails the test on any recorded invariant violation and on
// an empty run (a scenario that admitted nothing proves nothing).
func requireSound(t *testing.T, res *OverloadResult) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Load.OK == 0 {
		t.Fatalf("overload run admitted nothing: %+v", res.Load)
	}
	if res.Sealed == 0 {
		t.Fatalf("overload run sealed nothing")
	}
	if len(res.Verdicts) != res.Sealed {
		t.Fatalf("%d verdicts for %d sealed epochs", len(res.Verdicts), res.Sealed)
	}
	if res.Stats1.Requests != res.Load.OK {
		t.Fatalf("audit re-executed %d requests, collector acked %d", res.Stats1.Requests, res.Load.OK)
	}
}

// TestOverloadBurst offers a pure burst at 4× the admission window: the
// run must shed the excess (locally or with 429s), keep the admission
// gauges bounded, lose no acked evidence, and audit clean at both worker
// counts.
func TestOverloadBurst(t *testing.T) {
	res, err := RunOverload(t.TempDir(), OverloadScenario{
		App:           "motd",
		Seed:          42,
		Requests:      96,
		EpochRequests: 16,
		MaxInflight:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSound(t, res)
	if res.Load.Shed429+res.Load.ShedLocal == 0 {
		t.Fatalf("a 4x-window burst shed nothing: %+v", res.Load)
	}
	if res.Load.Shed429 > 0 && !res.Load.RetryAfterSeen {
		t.Fatalf("429s carried no Retry-After hint: %+v", res.Load)
	}
}

// TestOverloadSlowFsync slows every trace-file I/O call, so each group
// commit's fsync stalls and pressure backs up into the admission window.
func TestOverloadSlowFsync(t *testing.T) {
	res, err := RunOverload(t.TempDir(), OverloadScenario{
		App:           "motd",
		Seed:          7,
		Requests:      48,
		EpochRequests: 8,
		MaxInflight:   4,
		Chaos:         OverloadSlowFsync,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSound(t, res)
}

// TestOverloadSlowClient trickles every 4th request body a few bytes at a
// time. Slow bodies are read before admission, so they must tie up neither
// admission slots nor the commit path — and everything admitted still
// audits clean.
func TestOverloadSlowClient(t *testing.T) {
	res, err := RunOverload(t.TempDir(), OverloadScenario{
		App:           "stacks",
		Seed:          13,
		Requests:      32,
		EpochRequests: 8,
		MaxInflight:   4,
		Chaos:         OverloadSlowClient,
		SlowEvery:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireSound(t, res)
}

// TestCommitModeDifferential drives the identical sequential workload
// through a group-commit collector and a per-request-fsync collector: the
// sealed evidence must be bit-identical (same epoch trace digests) and the
// audit must reach the same verdicts with the same work counters. Group
// commit is a durability batching strategy, never a semantic one.
func TestCommitModeDifferential(t *testing.T) {
	spec, err := harness.SpecByName("motd")
	if err != nil {
		t.Fatal(err)
	}
	reqs := requestsFor(spec, 24, 11)

	type observed struct {
		digests  []string
		verdicts string
		stats    verifier.Stats
	}
	runMode := func(mode collectorhttp.CommitMode) observed {
		t.Helper()
		dir := t.TempDir()
		c, err := collectorhttp.New(collectorhttp.Config{
			Spec:          spec,
			Dir:           dir,
			Seed:          11,
			EpochRequests: 8,
			Commit:        mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(c.Handler())
		for _, r := range reqs {
			body, err := json.Marshal(map[string]any{"input": r.Input})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("mode %q: invoke status %d", mode, resp.StatusCode)
			}
		}
		ts.Close()
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}

		sealed, err := epochlog.ListSealed(dir)
		if err != nil {
			t.Fatal(err)
		}
		var o observed
		for _, m := range sealed {
			o.digests = append(o.digests, fmt.Sprintf("%d:%s", m.Seq, m.TraceDigest))
		}
		verdicts, stats, err := AuditSealedAt(context.Background(), dir, 1)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, v := range verdicts {
			fmt.Fprintf(&b, "%d=%s;", v.Epoch, v.Code)
			if !v.Accepted() {
				t.Fatalf("mode %q: epoch %d graded %s: %s", mode, v.Epoch, v.Code, v.Reason)
			}
		}
		o.verdicts, o.stats = b.String(), stats
		return o
	}

	group := runMode(collectorhttp.CommitGroup)
	perReq := runMode(collectorhttp.CommitPerRequest)

	if len(group.digests) != len(perReq.digests) {
		t.Fatalf("epoch counts differ: group %d, per-request %d", len(group.digests), len(perReq.digests))
	}
	for i := range group.digests {
		if group.digests[i] != perReq.digests[i] {
			t.Fatalf("epoch digest %d differs:\n  group       %s\n  per-request %s",
				i, group.digests[i], perReq.digests[i])
		}
	}
	if group.verdicts != perReq.verdicts {
		t.Fatalf("verdicts differ: group %q, per-request %q", group.verdicts, perReq.verdicts)
	}
	if group.stats != perReq.stats {
		t.Fatalf("audit stats differ: group %+v, per-request %+v", group.stats, perReq.stats)
	}
}
