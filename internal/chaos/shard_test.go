package chaos

import (
	"strings"
	"testing"
)

// TestShardChaosAcceptance: the fixed-seed shard-kill scenario holds
// every invariant — no accusation, lane-count-identical verdicts,
// evidence preserved — and the surviving shards' epochs all accept.
func TestShardChaosAcceptance(t *testing.T) {
	sc := ShardAcceptanceScenario(4, 11)
	res, err := RunShardChaos(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %s", strings.Join(res.Violations, "\n"))
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0", res.Rejected)
	}
	if res.Accepted == 0 {
		t.Fatal("no epoch accepted; the scenario audited nothing")
	}
	if res.Served == 0 {
		t.Fatal("no request served")
	}
	if len(res.Shards) != 4 {
		t.Fatalf("reports for %d shards, want 4", len(res.Shards))
	}
}

// TestShardChaosDeterministic: same seed, same verdict tallies and
// combined code — the scenario is replayable evidence, not noise.
func TestShardChaosDeterministic(t *testing.T) {
	sc := ShardAcceptanceScenario(2, 23)
	a, err := RunShardChaos(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShardChaos(t.TempDir(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Violations)+len(b.Violations) > 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
	if a.Accepted != b.Accepted || a.Unauditable != b.Unauditable || a.Merge.Code != b.Merge.Code {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

// TestShardScenarioValidation: malformed scripts are runner errors, not
// violations.
func TestShardScenarioValidation(t *testing.T) {
	if _, err := RunShardChaos(t.TempDir(), ShardScenario{App: "motd", Shards: 2, Requests: 10, EpochRequests: 5, RestartAt: 5}); err == nil {
		t.Fatal("unshardable app accepted")
	}
	if _, err := RunShardChaos(t.TempDir(), ShardScenario{App: "wiki", Shards: 0, Requests: 10, EpochRequests: 5}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := RunShardChaos(t.TempDir(), ShardScenario{App: "wiki", Shards: 2, Requests: 10, EpochRequests: 5, KillAt: 8, RestartAt: 4}); err == nil {
		t.Fatal("restart before kill accepted")
	}
}
