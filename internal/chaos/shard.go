package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

// ShardScenario scripts misfortune against a gateway-fronted shard
// topology: a workload fanned across shards with one shard's collector
// killed (no seal, its active epoch's tail abandoned) and later
// restarted. The invariants are the sharded restatement of this
// package's doc comment: the kill may cost auditability of the partial
// epoch, never an accusation; the combined verdict is identical whether
// the shard logs are audited by one lane or one lane per shard; and no
// evidence file any shard ever sealed disappears.
type ShardScenario struct {
	// App names the application; only "wiki" is shardable (its store keys
	// are page-local), so that is the default and the only accepted value.
	App  string `json:"app"`
	Seed int64  `json:"seed"`
	// Shards is the topology width.
	Shards int `json:"shards"`
	// Requests and EpochRequests are as in Scenario, per the whole
	// topology (EpochRequests is each shard's seal threshold).
	Requests      int `json:"requests"`
	EpochRequests int `json:"epochRequests"`
	// KillShard is crashed after KillAt requests and restarted after
	// RestartAt requests (KillAt <= RestartAt < Requests).
	KillShard int `json:"killShard"`
	KillAt    int `json:"killAt"`
	RestartAt int `json:"restartAt"`
}

// ShardResult is what a shard scenario run observed.
type ShardResult struct {
	Served  int `json:"served"`
	Refused int `json:"refused"`
	// Shards is the per-lane report of the full-width audit; Merge its
	// combined verdict.
	Shards []auditd.ShardReport `json:"shards"`
	Merge  shard.MergeResult    `json:"merge"`
	// Accepted/Unauditable/Rejected tally per-shard epoch verdicts across
	// the topology.
	Accepted    int `json:"accepted"`
	Rejected    int `json:"rejected"`
	Unauditable int `json:"unauditable"`
	// Violations are robustness-invariant breaches; empty on a sound run.
	Violations []string `json:"violations,omitempty"`
}

// ShardAcceptanceScenario is the fixed-seed shard-chaos criterion: a
// mid-run kill+restart of one shard under a wiki workload wide enough to
// touch every shard. Expected outcome: no rejection anywhere, at most
// Unauditable for the killed shard's partial epoch, and a combined
// verdict identical at every lane count.
func ShardAcceptanceScenario(shards int, seed int64) ShardScenario {
	if shards <= 0 {
		shards = 4
	}
	return ShardScenario{
		App:           "wiki",
		Seed:          seed,
		Shards:        shards,
		Requests:      60,
		EpochRequests: 5,
		KillShard:     1 % shards,
		KillAt:        30,
		RestartAt:     30,
	}
}

// RunShardChaos replays the scenario in dir (a scratch directory the
// caller owns). The error return is for runner breakage — invariant
// violations land in ShardResult.Violations.
func RunShardChaos(dir string, sc ShardScenario) (*ShardResult, error) {
	if sc.App == "" {
		sc.App = "wiki"
	}
	if sc.App != "wiki" {
		return nil, fmt.Errorf("chaos: shard scenario needs a shardable app; %q's store keys cross shards", sc.App)
	}
	if sc.Shards <= 0 || sc.Requests <= 0 || sc.EpochRequests <= 0 {
		return nil, fmt.Errorf("chaos: shard scenario needs positive Shards, Requests and EpochRequests")
	}
	if sc.KillShard < 0 || sc.KillShard >= sc.Shards || sc.KillAt > sc.RestartAt || sc.RestartAt >= sc.Requests {
		return nil, fmt.Errorf("chaos: shard scenario kill schedule out of range")
	}
	root := filepath.Join(dir, "shards")
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec:          harness.WikiApp(),
		Root:          root,
		Map:           shard.Map{Shards: sc.Shards, KeyFields: []string{"id", "page"}},
		EpochRequests: sc.EpochRequests,
		Seed:          sc.Seed,
		Limits:        verifier.DefaultLimits(),
	})
	if err != nil {
		return nil, err
	}
	defer top.Close()
	ts := httptest.NewServer(top.Gateway.Handler())
	defer ts.Close()

	res := &ShardResult{}
	down := false
	for i, req := range workload.Wiki(sc.Requests, sc.Seed) {
		if i == sc.KillAt && !down {
			if err := top.Crash(sc.KillShard); err != nil {
				return res, fmt.Errorf("chaos: crashing shard %d: %w", sc.KillShard, err)
			}
			down = true
		}
		if i == sc.RestartAt && down {
			if err := top.Restart(sc.KillShard); err != nil {
				return res, fmt.Errorf("chaos: restarting shard %d: %w", sc.KillShard, err)
			}
			down = false
		}
		body, err := json.Marshal(map[string]any{"input": req.Input})
		if err != nil {
			return res, err
		}
		resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			res.Refused++
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			res.Served++
		} else {
			// The killed shard's requests bounce off the gateway as 503
			// until the restart; that is load shedding, not a violation.
			res.Refused++
		}
	}
	if down {
		if err := top.Restart(sc.KillShard); err != nil {
			return res, fmt.Errorf("chaos: restarting shard %d: %w", sc.KillShard, err)
		}
	}
	if err := top.Close(); err != nil {
		return res, fmt.Errorf("chaos: sealing topology: %w", err)
	}

	evidence, err := shardEvidence(root, sc.Shards)
	if err != nil {
		return res, err
	}

	// The differential: the same shard logs audited with one lane per
	// shard and with a single lane must reach bit-identical per-shard
	// verdicts, merged verdict, and summed Stats.
	ctx := context.Background()
	var keys []string
	for _, lanes := range []int{sc.Shards, 1} {
		sh, err := auditd.NewSharded(auditd.ShardedConfig{
			Root: root, Lanes: lanes, Limits: verifier.DefaultLimits(),
		})
		if err != nil {
			return res, err
		}
		out, err := sh.Audit(ctx)
		if err != nil {
			return res, err
		}
		keys = append(keys, shardVerdictKey(out))
		if lanes != sc.Shards {
			continue
		}
		res.Shards, res.Merge = out.Shards, out.Merge
		for _, rep := range out.Shards {
			for _, v := range rep.Verdicts {
				switch v.Code {
				case "":
					res.Accepted++
				case core.RejectUnauditable:
					res.Unauditable++
				default:
					res.Rejected++
					res.Violations = append(res.Violations, fmt.Sprintf(
						"false reject: shard %d epoch %d [%s] %s", rep.Shard, v.Epoch, v.Code, v.Reason))
				}
			}
		}
		switch out.Merge.Code {
		case "", core.RejectUnauditable:
		default:
			res.Violations = append(res.Violations, fmt.Sprintf(
				"combined verdict accuses after an infrastructure kill: [%s] %s", out.Merge.Code, out.Merge.Reason))
		}
	}
	if keys[0] != keys[1] {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"lane-count divergence:\n%d lanes: %s\n1 lane:  %s", sc.Shards, keys[0], keys[1]))
	}

	// Every evidence file sealed before the audits must still exist: an
	// auditor never destroys what it grades.
	after, err := shardEvidence(root, sc.Shards)
	if err != nil {
		return res, err
	}
	for name := range evidence {
		if !after[name] {
			res.Violations = append(res.Violations, "evidence deleted: "+name)
		}
	}
	return res, nil
}

// shardVerdictKey renders a sharded audit's verdict-affecting content as
// one comparable string, mirroring Result.VerdictKey.
func shardVerdictKey(res auditd.ShardedResult) string {
	var b strings.Builder
	for _, rep := range res.Shards {
		fmt.Fprintf(&b, "shard%d[%s]:", rep.Shard, rep.Code)
		for _, v := range rep.Verdicts {
			fmt.Fprintf(&b, "%d=%s;", v.Epoch, v.Code)
		}
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "merge=%s conflicts=%d stats=%+v", res.Merge.Code, len(res.Merge.Conflicts), res.Stats)
	return b.String()
}

// shardEvidence lists every evidence file across all shard directories,
// keyed shard-relative, using the real OS filesystem.
func shardEvidence(root string, shards int) (map[string]bool, error) {
	present := map[string]bool{}
	for s := 0; s < shards; s++ {
		dir := shard.Dir(root, s)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("chaos: evidence scan of shard %d: %w", s, err)
		}
		for _, ent := range entries {
			if isEvidence(ent.Name()) {
				present[fmt.Sprintf("shard-%02d/%s", s, strings.TrimSuffix(ent.Name(), ".quarantined"))] = true
			}
		}
	}
	return present, nil
}
