package collectorhttp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
)

func newFaulted(t *testing.T, inj *iofault.Injector, epochRequests int) (*Collector, *httptest.Server) {
	t.Helper()
	c, err := New(Config{
		Spec:          harness.MOTDApp(),
		Dir:           t.TempDir(),
		EpochRequests: epochRequests,
		FS:            inj,
		Backoff:       iofault.Backoff{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

// TestInvokeRetriesTransientAppend: a transient EIO on the trusted append
// is absorbed by the retry loop — the client sees a plain 200 and the
// trace stays balanced.
func TestInvokeRetriesTransientAppend(t *testing.T) {
	inj := iofault.NewInjector(nil)
	c, ts := newFaulted(t, inj, 0)
	defer c.Close()

	if err := inj.Arm(iofault.OpTransientEIO, iofault.ArmConfig{Times: 2, PathContains: ".trace"}); err != nil {
		t.Fatal(err)
	}
	out := invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	if out["rid"] == "" {
		t.Fatalf("invoke through transient fault: %v", out)
	}
	if fired := inj.Fired()[iofault.OpTransientEIO]; fired != 2 {
		t.Fatalf("fired %d transient faults, want both absorbed", fired)
	}
	if got := c.HealthSnapshot().Degraded; got != "" {
		t.Fatalf("absorbed transient degraded the epoch: %q", got)
	}
}

// TestInvokeRefusedWhenRequestAppendFails: if the REQ append fails past the
// retry budget, the request must be refused — never served off the record.
func TestInvokeRefusedWhenRequestAppendFails(t *testing.T) {
	inj := iofault.NewInjector(nil)
	c, ts := newFaulted(t, inj, 0)
	defer c.Close()

	if err := inj.Arm(iofault.OpTransientEIO, iofault.ArmConfig{Times: -1, PathContains: ".trace"}); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"input": map[string]any{"op": "get", "day": "mon"}})
	resp, _ := post(t, ts.URL+"/invoke", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("invoke with dead trusted channel: status %d, want 503", resp.StatusCode)
	}
	inj.Heal()
	if st := c.Status(); st.Served != 0 || st.ActiveEvents != 0 {
		t.Fatalf("refused request left state behind: %+v", st)
	}
	// The channel healed: serving resumes without a restart.
	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
}

// TestResponseAppendFailureDegradesButServes: once the response exists the
// client gets it; the epoch is flagged degraded instead of the request
// failing.
func TestResponseAppendFailureDegradesButServes(t *testing.T) {
	inj := iofault.NewInjector(nil)
	c, ts := newFaulted(t, inj, 0)
	defer c.Close()

	// Skip the REQ append; fail every later trace append in this epoch.
	if err := inj.Arm(iofault.OpTransientEIO, iofault.ArmConfig{Times: -1, After: 1, PathContains: ".trace"}); err != nil {
		t.Fatal(err)
	}
	out := invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	if out["output"] == nil {
		t.Fatalf("degraded invoke dropped the output: %v", out)
	}
	h := c.HealthSnapshot()
	if !strings.Contains(h.Degraded, "response append failed") {
		t.Fatalf("health degraded = %q, want response-append reason", h.Degraded)
	}
	inj.Heal()
	if m, err := c.Seal(); err != nil || m == nil || m.Degraded == "" {
		t.Fatalf("sealed degraded epoch = %+v, %v", m, err)
	}
}

// TestAdviceENOSPCDegradesNotFails: disk-full on the advice channel returns
// 507, flags the epoch, and leaves the trusted path serving.
func TestAdviceENOSPCDegradesNotFails(t *testing.T) {
	inj := iofault.NewInjector(nil)
	c, ts := newFaulted(t, inj, 0)
	defer c.Close()

	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	if err := inj.Arm(iofault.OpENOSPC, iofault.ArmConfig{Times: -1, PathContains: ".advice"}); err != nil {
		t.Fatal(err)
	}
	resp, body := post(t, ts.URL+"/advice", []byte("uploaded-advice"))
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("advice upload on full disk: status %d (%s), want 507", resp.StatusCode, body)
	}
	if h := c.HealthSnapshot(); !strings.Contains(h.Degraded, "advice append failed") {
		t.Fatalf("health degraded = %q, want advice-append reason", h.Degraded)
	}
	// Trusted path unaffected: the .advice filter spares the trace.
	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
}

// TestSealAdviceLossDegradesButSeals: when the drained advice cannot be
// appended at seal time, the seal still completes with the epoch flagged —
// the trusted trace is never held hostage to the advice channel.
func TestSealAdviceLossDegradesButSeals(t *testing.T) {
	inj := iofault.NewInjector(nil)
	c, ts := newFaulted(t, inj, 0)
	defer c.Close()

	invoke(t, ts.URL, map[string]any{"op": "set", "scope": "always", "msg": "x"})
	if err := inj.Arm(iofault.OpENOSPC, iofault.ArmConfig{Times: -1, PathContains: ".advice"}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Seal()
	if err != nil || m == nil {
		t.Fatalf("seal with advice channel down = %+v, %v", m, err)
	}
	if !strings.Contains(m.Degraded, "advice lost at seal") {
		t.Fatalf("manifest degraded = %q, want advice-loss reason", m.Degraded)
	}
}

// TestHealthAndReadyEndpoints: /healthz always answers with epoch-log
// detail; /readyz flips to 503 when sealing is stuck and again once closed.
func TestHealthAndReadyEndpoints(t *testing.T) {
	inj := iofault.NewInjector(nil)
	c, ts := newFaulted(t, inj, 2)

	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.App != "motd" || h.ActiveSeq != 1 || h.ActiveRequests != 1 || h.OpenEpochAgeMS < 0 {
		t.Fatalf("healthz body: %+v", h)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while healthy: %d", resp.StatusCode)
	}

	// Break sealing: the threshold seal fails, the response still flows,
	// and readiness flips. The fault targets only the manifest fsync — the
	// trace's group-commit fsync must keep working or the second invoke
	// would (correctly) be refused before it ever reached the seal.
	if err := inj.Arm(iofault.OpFsyncFail, iofault.ArmConfig{Times: -1, PathContains: ".manifest"}); err != nil {
		t.Fatal(err)
	}
	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("seal failing")) {
		t.Fatalf("readyz with stuck seal: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("lastSealError")) {
		t.Fatalf("healthz with stuck seal: %d %s", resp.StatusCode, body)
	}

	// Heal and re-seal: readiness recovers.
	inj.Heal()
	if _, err := c.Seal(); err != nil {
		t.Fatal(err)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: %d", resp.StatusCode)
	}

	c.Close()
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after close: %d", resp.StatusCode)
	}
}

// TestCrashLeavesPartialForRecovery: Crash abandons the active epoch
// unsealed; the next incarnation seals it flagged degraded and serves on.
func TestCrashLeavesPartialForRecovery(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	invoke(t, ts.URL, map[string]any{"op": "set", "scope": "always", "msg": "pre-crash"})
	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	if _, err := c.Seal(); err != nil {
		t.Fatal(err)
	}
	invoke(t, ts.URL, map[string]any{"op": "get", "day": "tue"}) // stranded in epoch 2
	ts.Close()
	if err := c.Crash(); err != nil {
		t.Fatal(err)
	}

	c2, err := New(Config{Spec: harness.MOTDApp(), Dir: dir})
	if err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	defer c2.Close()
	sealed := c2.log.Sealed()
	if len(sealed) != 2 {
		t.Fatalf("sealed epochs after recovery = %d, want 2", len(sealed))
	}
	if sealed[0].Degraded != "" {
		t.Fatalf("cleanly sealed epoch 1 flagged degraded: %q", sealed[0].Degraded)
	}
	if !strings.Contains(sealed[1].Degraded, "recovered partial") {
		t.Fatalf("recovered epoch 2 degraded = %q, want recovered-partial reason", sealed[1].Degraded)
	}
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}
