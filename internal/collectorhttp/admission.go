package collectorhttp

import (
	"sync"
)

// admission is the collector's bounded intake: a request is admitted only
// if both the in-flight count and the summed admitted body bytes fit the
// window; everything beyond is shed immediately with 429. The alternative
// — an unbounded queue in front of a disk that cannot keep up — is exactly
// how a collector dies still holding evidence it never made durable
// (DESIGN.md §14). The window also tightens when the auditor falls behind:
// serving faster than the audit pipeline can check is racing ahead of the
// only thing that makes the responses trustworthy.
type admission struct {
	mu          sync.Mutex
	maxInflight int
	maxBytes    int64
	lagLimit    int // epochs of audit lag tolerated before tightening; 0 = never

	inflight     int
	bytes        int64
	lag          int // latest observed audit lag, in epochs
	peakInflight int
	peakBytes    int64
	shed         uint64
}

// AdmissionState is the admission window's observable state, served on
// /healthz and folded into /readyz.
type AdmissionState struct {
	Inflight       int   `json:"inflight"`
	QueuedBytes    int64 `json:"queuedBytes"`
	MaxInflight    int   `json:"maxInflight"`
	MaxQueuedBytes int64 `json:"maxQueuedBytes"`
	// EffectiveWindow is MaxInflight after lag-based tightening.
	EffectiveWindow int `json:"effectiveWindow"`
	// PeakInflight and PeakQueuedBytes are high-water marks since boot —
	// the overload scenarios assert boundedness against them.
	PeakInflight    int    `json:"peakInflight"`
	PeakQueuedBytes int64  `json:"peakQueuedBytes"`
	Shed            uint64 `json:"shed"`
	AuditLag        int    `json:"auditLag"`
	MaxAuditLag     int    `json:"maxAuditLag,omitempty"`
	// Saturated means the next arrival would be shed; /readyz flips on it
	// so load balancers drain traffic before clients start seeing 429s.
	Saturated bool `json:"saturated"`
}

func newAdmission(maxInflight int, maxBytes int64, lagLimit int) *admission {
	return &admission{maxInflight: maxInflight, maxBytes: maxBytes, lagLimit: lagLimit}
}

// effectiveWindowLocked scales the in-flight window down in proportion to
// how far the auditor has fallen behind: at lag = 2×limit the window
// halves, and it never drops below 1. This is backpressure, not a
// brown-out — the collector keeps serving, at the rate the audit pipeline
// can absorb. Caller holds a.mu.
func (a *admission) effectiveWindowLocked() int {
	w := a.maxInflight
	if a.lagLimit > 0 && a.lag > a.lagLimit {
		w = a.maxInflight * a.lagLimit / a.lag
		if w < 1 {
			w = 1
		}
	}
	return w
}

// tryAdmit claims one in-flight slot and n body bytes; false sheds the
// arrival (the caller answers 429 and must not call release).
func (a *admission) tryAdmit(n int64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight+1 > a.effectiveWindowLocked() || a.bytes+n > a.maxBytes {
		a.shed++
		return false
	}
	a.inflight++
	a.bytes += n
	if a.inflight > a.peakInflight {
		a.peakInflight = a.inflight
	}
	if a.bytes > a.peakBytes {
		a.peakBytes = a.bytes
	}
	return true
}

// release returns an admitted request's slot and bytes.
func (a *admission) release(n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	a.bytes -= n
}

// noteShed counts a shed that happened past admission (a full commit
// queue), so the shed counter covers every 429 the collector sends.
func (a *admission) noteShed() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.shed++
}

// observeLag feeds the latest audit lag (in epochs) into the window.
func (a *admission) observeLag(lag int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lag = lag
}

func (a *admission) snapshot() AdmissionState {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := a.effectiveWindowLocked()
	return AdmissionState{
		Inflight:        a.inflight,
		QueuedBytes:     a.bytes,
		MaxInflight:     a.maxInflight,
		MaxQueuedBytes:  a.maxBytes,
		EffectiveWindow: w,
		PeakInflight:    a.peakInflight,
		PeakQueuedBytes: a.peakBytes,
		Shed:            a.shed,
		AuditLag:        a.lag,
		MaxAuditLag:     a.lagLimit,
		Saturated:       a.inflight >= w,
	}
}
