// Package collectorhttp serves an auditable application as a real network
// endpoint and records the audit's ground truth as it serves.
//
// The trust split mirrors the paper's deployment (§2.1): the trace — which
// requests arrived and which responses left — is recorded by the collector
// itself on the trusted path, appended to a durable epoch log before and
// after each invocation. The advice is untrusted: the serving runtime
// produces it, and nothing the advice says can change what the trace
// records. A separate endpoint accepts (re-)uploaded advice blobs for the
// active epoch, so a deployment where the server process is distinct from
// the collector uses the same wire path our in-process pipeline does.
//
// Epochs seal on a request-count threshold, on age, or on demand; sealing
// drains the server's accumulated advice (rebasing its in-memory state onto
// carry identities, see server.DrainAdvice) and makes the epoch visible to
// the incremental auditor.
package collectorhttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
)

// Config describes one collector instance.
type Config struct {
	// Spec is the application to serve.
	Spec harness.AppSpec
	// Dir is the epoch log directory; created if absent.
	Dir string
	// Mode selects which advice the runtime collects. Defaults to Karousos.
	Mode advice.Mode
	// EpochRequests seals the active epoch once it holds this many
	// requests. 0 disables count-based sealing.
	EpochRequests int
	// EpochMaxAge seals a non-empty active epoch older than this. 0
	// disables age-based sealing.
	EpochMaxAge time.Duration
	// Seed seeds the dispatch loop's scheduler.
	Seed int64
	// Limits clamps the advice size accepted into the log; its
	// MaxAdviceBytes is enforced on upload and again on replay.
	Limits verifier.Limits
	// FS is the filesystem the collector and its epoch log write through.
	// nil means the real OS; tests and chaos scenarios pass an
	// iofault.Injector.
	FS iofault.FS
	// Backoff bounds the retry loop around trusted-channel appends.
	// Zero-valued fields take iofault's defaults.
	Backoff iofault.Backoff
}

func (cfg Config) fs() iofault.FS {
	if cfg.FS == nil {
		return iofault.OS
	}
	return cfg.FS
}

// Meta is the sidecar record written next to the epoch log so offline tools
// (karousos-audit, karousos-auditd) know how to re-execute the epochs.
type Meta struct {
	App  string      `json:"app"`
	Mode advice.Mode `json:"mode"`
}

// MetaFile is the name of the sidecar inside the epoch log directory.
const MetaFile = "meta.json"

// Collector is the HTTP front-end plus its serving runtime and epoch log.
type Collector struct {
	cfg Config

	mu          sync.Mutex
	srv         *server.Server
	log         *epochlog.Log
	nextRID     uint64
	served      int
	lastSeal    time.Time
	lastSealErr error
	closed      bool
	ageTicker   *time.Ticker
	ageDone     chan struct{}
}

// New opens (or creates) the epoch log and boots a fresh application
// instance behind it. Reopening a directory a previous incarnation wrote
// to is a restart: the recovered partial epoch (if any) is sealed as-is,
// the RID counter resumes past every RID the log has seen, and the next
// epoch is marked fresh so the auditor knows the application state was
// rebuilt (see recoverIncarnation).
func New(cfg Config) (*Collector, error) {
	if cfg.Mode == "" {
		cfg.Mode = advice.ModeKarousos
	}
	if err := cfg.fs().MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeMeta(cfg.fs(), cfg.Dir, Meta{App: cfg.Spec.Name, Mode: cfg.Mode}); err != nil {
		return nil, err
	}
	l, err := epochlog.Open(cfg.Dir, epochlog.Options{MaxAdviceBytes: cfg.Limits.MaxAdviceBytes, FS: cfg.FS})
	if err != nil {
		return nil, err
	}
	nextRID, err := recoverIncarnation(l)
	if err != nil {
		l.Close() //karousos:errladder-ok close-after-error cleanup; the recovery failure is the error that surfaces
		return nil, err
	}
	app, store := cfg.Spec.New()
	srv := server.New(server.Config{
		App:             app,
		Store:           store,
		Seed:            cfg.Seed,
		CollectKarousos: cfg.Mode == advice.ModeKarousos,
		CollectOrochi:   cfg.Mode == advice.ModeOrochiJS,
	})
	c := &Collector{cfg: cfg, srv: srv, log: l, nextRID: nextRID, lastSeal: time.Now()}
	if cfg.EpochMaxAge > 0 {
		c.ageTicker = time.NewTicker(cfg.EpochMaxAge / 2)
		c.ageDone = make(chan struct{})
		go c.ageLoop()
	}
	return c, nil
}

// recoverIncarnation reconciles a freshly built application instance with
// an epoch log a previous collector incarnation wrote to. The previous
// incarnation's in-memory state is gone, so three things must happen before
// serving resumes: any recovered partial epoch is sealed as-is (its advice,
// if the crash lost part of it, honestly rejects — it cannot be completed
// by a runtime that never served those requests); the RID counter is
// recovered from the sealed manifests so RIDs never repeat across
// incarnations (server.DrainAdvice's carry rebasing depends on that); and
// the new active epoch is marked fresh on the trusted channel so the
// auditor drops prior-epoch carry instead of falsely rejecting the rebuilt
// state. On a pristine directory it returns 0 and marks nothing.
func recoverIncarnation(l *epochlog.Log) (uint64, error) {
	if events, _ := l.ActiveEvents(); events > 0 {
		// The epoch is sealed with whatever advice survived the crash, and
		// flagged degraded on the trusted channel: its evidence may be
		// incomplete through no fault of the server, so a failed audit of it
		// is Unauditable, not a rejection.
		l.MarkDegraded("recovered partial epoch from crashed incarnation")
		if _, err := l.Seal(); err != nil {
			return 0, fmt.Errorf("collectorhttp: sealing recovered partial epoch: %w", err)
		}
	}
	sealed := l.Sealed()
	if len(sealed) == 0 {
		return 0, nil
	}
	var next uint64
	for _, m := range sealed {
		if m.LastRID == "" {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(m.LastRID, "r%d", &n); err != nil {
			return 0, fmt.Errorf("collectorhttp: cannot recover request counter: epoch %d last rid %q: %v", m.Seq, m.LastRID, err)
		}
		if n > next {
			next = n
		}
	}
	if next == 0 {
		return 0, fmt.Errorf("collectorhttp: cannot recover request counter: none of the %d sealed epochs records a last rid", len(sealed))
	}
	if err := l.MarkFresh(); err != nil {
		return 0, err
	}
	return next, nil
}

func writeMeta(fsys iofault.FS, dir string, m Meta) error {
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return fsys.WriteFile(filepath.Join(dir, MetaFile), blob, 0o644)
}

// ReadMeta loads the sidecar record from an epoch log directory.
func ReadMeta(dir string) (Meta, error) {
	blob, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(blob, &m); err != nil {
		return Meta{}, fmt.Errorf("collectorhttp: bad %s: %w", MetaFile, err)
	}
	return m, nil
}

func (c *Collector) ageLoop() {
	for {
		select {
		case <-c.ageDone:
			return
		case <-c.ageTicker.C:
			c.mu.Lock()
			if !c.closed && time.Since(c.lastSeal) >= c.cfg.EpochMaxAge {
				_, _ = c.sealLocked() //karousos:errladder-ok seal failure is held in lastSealErr (flips /readyz) and retried
			}
			c.mu.Unlock()
		}
	}
}

// Handler returns the collector's HTTP mux:
//
//	POST /invoke  {"input": <value>} → {"rid": "...", "output": <value>}
//	POST /advice  raw advice blob for the active epoch (untrusted)
//	POST /seal    force-seal the active epoch → manifest (204 when empty)
//	GET  /status  counters and epoch positions
//	GET  /healthz epoch-log health detail, always 200 while the process lives
//	GET  /readyz  200 when accepting traffic, 503 when closed or seal-stuck
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", c.handleInvoke)
	mux.HandleFunc("POST /advice", c.handleAdvice)
	mux.HandleFunc("POST /seal", c.handleSeal)
	mux.HandleFunc("GET /status", c.handleStatus)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	return mux
}

// retryAppend re-issues a trusted-channel append through transient faults.
// The caller holds c.mu; the backoff is bounded, so holding the lock across
// retries keeps the trace ordered without starving other requests for long.
func (c *Collector) retryAppend(ctx context.Context, e trace.Event) error {
	return iofault.Retry(ctx, c.cfg.Backoff, func() error {
		return c.log.AppendEvent(e)
	})
}

func (c *Collector) handleInvoke(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Input json.RawMessage `json:"input"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var input value.V
	if len(body.Input) > 0 {
		if err := json.Unmarshal(body.Input, &input); err != nil {
			http.Error(w, "bad input value: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	input = value.Normalize(input)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		http.Error(w, "collector closed", http.StatusServiceUnavailable)
		return
	}
	c.nextRID++
	rid := core.RID(fmt.Sprintf("r%08d", c.nextRID))

	// Trusted path: the request is ground truth the moment it is admitted,
	// before any untrusted execution runs. Transient I/O faults are retried
	// here; if the append still fails the request is refused outright —
	// serving a request the trace never admitted would make the collector
	// itself the gap in the evidence. The RID is not rolled back: RIDs must
	// only ever grow, and audit keys on the trace, not the counter.
	if err := c.retryAppend(r.Context(), trace.Event{Kind: trace.Req, RID: string(rid), Data: input}); err != nil {
		http.Error(w, "epoch log: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	out, serveErr := c.srv.ServeOne(server.Request{RID: rid, Input: input})
	if serveErr != nil {
		// The request was admitted, so the trace must still balance: record
		// the failure as the response the client observed. An audit of this
		// epoch will reject — correctly, since re-execution cannot
		// reproduce a response the handler never produced.
		out = value.Normalize(value.Map("error", serveErr.Error()))
	}
	if err := c.retryAppend(r.Context(), trace.Event{Kind: trace.Resp, RID: string(rid), Data: out}); err != nil {
		// The response already left the application; refusing it now would
		// lose work the client may retry non-idempotently. Keep serving,
		// flag the epoch: its trace is unbalanced through an infrastructure
		// fault, so the auditor grades it Unauditable rather than rejected.
		c.log.MarkDegraded("response append failed for " + string(rid) + ": " + err.Error())
	}
	// The internal collector recorded the same pair; drain it so a
	// long-running collector's memory stays bounded. The epoch log copy is
	// the ground truth the auditor reads.
	_ = c.srv.TakeTrace()
	c.served++

	if c.cfg.EpochRequests > 0 {
		if _, reqs := c.log.ActiveEvents(); reqs >= c.cfg.EpochRequests {
			// A failed threshold seal must not fail the request that tripped
			// it — the response is already computed and recorded. The error
			// is held in lastSealErr (flips /readyz) and the seal retries on
			// the next request or age tick.
			//karousos:errladder-ok seal failure must not fail the admitted request; held in lastSealErr and retried
			_, _ = c.sealLocked()
		}
	}

	status := http.StatusOK
	if serveErr != nil {
		status = http.StatusInternalServerError
	}
	writeJSON(w, status, map[string]any{"rid": string(rid), "output": out})
}

func (c *Collector) handleAdvice(w http.ResponseWriter, r *http.Request) {
	max := int64(c.cfg.Limits.MaxAdviceBytes)
	if max <= 0 {
		max = 1 << 30
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, max))
	if err != nil {
		// A partial body (client disconnect mid-upload) must never land in
		// the log as a complete record: the last intact record wins at
		// seal, so a truncated re-upload would clobber good advice.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "advice exceeds byte limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading advice body: "+err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		http.Error(w, "collector closed", http.StatusServiceUnavailable)
		return
	}
	err = iofault.Retry(r.Context(), c.cfg.Backoff, func() error {
		return c.log.AppendAdvice(blob)
	})
	if err != nil {
		if errors.Is(err, epochlog.ErrAdviceTooLarge) {
			// Client fault, not infrastructure: the epoch is not degraded.
			http.Error(w, "epoch log: "+err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		// The advice channel is untrusted and lossy by design: losing an
		// upload never stops the collector from recording the trace, it only
		// flags the epoch so a failed audit grades Unauditable.
		c.log.MarkDegraded("advice append failed: " + err.Error())
		status := http.StatusInternalServerError
		if iofault.Classify(err) == iofault.ClassDegraded {
			status = http.StatusInsufficientStorage
		}
		http.Error(w, "epoch log: "+err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Collector) handleSeal(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	m, err := c.sealLocked()
	c.mu.Unlock()
	if err != nil {
		http.Error(w, "seal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if m == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// Status is the collector's observable state.
type Status struct {
	App            string `json:"app"`
	Mode           string `json:"mode"`
	Served         int    `json:"served"`
	ActiveSeq      uint64 `json:"activeSeq"`
	ActiveEvents   int    `json:"activeEvents"`
	ActiveRequests int    `json:"activeRequests"`
	SealedEpochs   int    `json:"sealedEpochs"`
}

func (c *Collector) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Status reports the collector's counters.
func (c *Collector) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	events, reqs := c.log.ActiveEvents()
	return Status{
		App:            c.cfg.Spec.Name,
		Mode:           string(c.cfg.Mode),
		Served:         c.served,
		ActiveSeq:      c.log.ActiveSeq(),
		ActiveEvents:   events,
		ActiveRequests: reqs,
		SealedEpochs:   len(c.log.Sealed()),
	}
}

// Health is the epoch-log health detail served on /healthz.
type Health struct {
	App            string `json:"app"`
	Mode           string `json:"mode"`
	ActiveSeq      uint64 `json:"activeSeq"`
	ActiveEvents   int    `json:"activeEvents"`
	ActiveRequests int    `json:"activeRequests"`
	SealedEpochs   int    `json:"sealedEpochs"`
	// OpenEpochAgeMS is how long ago the last seal completed — how stale
	// the auditable prefix is.
	OpenEpochAgeMS int64 `json:"openEpochAgeMs"`
	// LastSealError is the most recent seal attempt's failure, "" once a
	// seal succeeds again.
	LastSealError string `json:"lastSealError,omitempty"`
	// Degraded is the active epoch's degradation reason, "" when the
	// current evidence is complete.
	Degraded string `json:"degraded,omitempty"`
	Closed   bool   `json:"closed,omitempty"`
}

// HealthSnapshot reports the collector's epoch-log health.
func (c *Collector) HealthSnapshot() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	events, reqs := c.log.ActiveEvents()
	h := Health{
		App:            c.cfg.Spec.Name,
		Mode:           string(c.cfg.Mode),
		ActiveSeq:      c.log.ActiveSeq(),
		ActiveEvents:   events,
		ActiveRequests: reqs,
		SealedEpochs:   len(c.log.Sealed()),
		OpenEpochAgeMS: time.Since(c.lastSeal).Milliseconds(),
		Degraded:       c.log.Degraded(),
		Closed:         c.closed,
	}
	if c.lastSealErr != nil {
		h.LastSealError = c.lastSealErr.Error()
	}
	return h
}

func (c *Collector) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.HealthSnapshot())
}

func (c *Collector) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := c.HealthSnapshot()
	switch {
	case h.Closed:
		http.Error(w, "collector closed", http.StatusServiceUnavailable)
	case h.LastSealError != "":
		http.Error(w, "seal failing: "+h.LastSealError, http.StatusServiceUnavailable)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// Seal drains the runtime's advice into the active epoch and seals it.
// Sealing an empty epoch is a no-op returning (nil, nil).
func (c *Collector) Seal() (*epochlog.Manifest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sealLocked()
}

func (c *Collector) sealLocked() (*epochlog.Manifest, error) {
	if events, _ := c.log.ActiveEvents(); events == 0 {
		return nil, nil
	}
	kar, oro := c.srv.DrainAdvice()
	adv := kar
	if c.cfg.Mode == advice.ModeOrochiJS {
		adv = oro
	}
	if adv != nil {
		err := iofault.Retry(context.Background(), c.cfg.Backoff, func() error {
			return c.log.AppendAdvice(adv.MarshalBinary())
		})
		if err != nil {
			// The drain already consumed the runtime's advice; it cannot be
			// re-produced. Seal anyway with the epoch flagged degraded — the
			// trusted trace is intact and must not be held hostage to the
			// advice channel.
			c.log.MarkDegraded("advice lost at seal: " + err.Error())
		}
	}
	m, err := c.log.Seal()
	c.lastSealErr = err
	if m != nil {
		// Even when rotation failed (m != nil with an error), the manifest
		// is durable: the epoch is sealed and the age clock restarts.
		c.lastSeal = time.Now()
	}
	return m, err
}

// Crash abandons the collector the way a killed process would: no seal,
// the active epoch's tail left on disk for the next incarnation to recover.
// Chaos scenarios use it; production code wants Close.
func (c *Collector) Crash() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.ageTicker != nil {
		c.ageTicker.Stop()
		close(c.ageDone)
	}
	return c.log.Close()
}

// Close seals any partial epoch and releases the log. Safe to call once.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.ageTicker != nil {
		c.ageTicker.Stop()
		close(c.ageDone)
	}
	_, sealErr := c.sealLocked()
	logErr := c.log.Close()
	c.mu.Unlock()
	if sealErr != nil {
		return sealErr
	}
	return logErr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //karousos:errladder-ok best-effort response body; the status header is already sent
}
