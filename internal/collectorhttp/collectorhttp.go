// Package collectorhttp serves an auditable application as a real network
// endpoint and records the audit's ground truth as it serves.
//
// The trust split mirrors the paper's deployment (§2.1): the trace — which
// requests arrived and which responses left — is recorded by the collector
// itself on the trusted path, appended to a durable epoch log before and
// after each invocation. The advice is untrusted: the serving runtime
// produces it, and nothing the advice says can change what the trace
// records. A separate endpoint accepts (re-)uploaded advice blobs for the
// active epoch, so a deployment where the server process is distinct from
// the collector uses the same wire path our in-process pipeline does.
//
// The serving path is built to survive overload (DESIGN.md §14). Admission
// is bounded: past a window of in-flight requests and queued body bytes,
// arrivals are shed immediately with 429 and a jittered Retry-After —
// never queued without bound. Admitted requests ride the epoch log's group
// commit, so concurrent arrivals amortize one fsync instead of paying one
// each, and a request is only ever acknowledged after its evidence is
// durable. When the audit pipeline falls behind, the admission window
// tightens in proportion to the lag: the collector serves at the rate its
// responses can actually be checked.
//
// Epochs seal on a request-count threshold, on age, or on demand; sealing
// drains the server's accumulated advice (rebasing its in-memory state onto
// carry identities, see server.DrainAdvice) and makes the epoch visible to
// the incremental auditor. The seal itself is split so serving never stalls
// behind an fsync: the rotation under the epoch gate is memory-only, and
// the durable half (data fsync, manifest) runs after the gate is released.
package collectorhttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/iofault"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
)

// CommitMode selects the trusted channel's durability discipline.
type CommitMode string

const (
	// CommitGroup (the default) makes every append durable before its
	// request is acknowledged, amortizing fsyncs across concurrent
	// arrivals via the epoch log's group commit.
	CommitGroup CommitMode = "group"
	// CommitPerRequest fsyncs every append individually — the naive
	// durable baseline the bench panel compares group commit against.
	CommitPerRequest CommitMode = "per-request"
	// CommitAsync is the legacy mode: appends are buffered by the OS and
	// only the seal fsyncs. Cheapest, but a crash can lose acknowledged
	// requests (the recovered epoch seals degraded).
	CommitAsync CommitMode = "async"
)

// Config describes one collector instance.
type Config struct {
	// Spec is the application to serve.
	Spec harness.AppSpec
	// Dir is the epoch log directory; created if absent.
	Dir string
	// Mode selects which advice the runtime collects. Defaults to Karousos.
	Mode advice.Mode
	// EpochRequests seals the active epoch once it holds this many
	// requests. 0 disables count-based sealing.
	EpochRequests int
	// EpochMaxAge seals a non-empty active epoch older than this. 0
	// disables age-based sealing.
	EpochMaxAge time.Duration
	// Seed seeds the dispatch loop's scheduler.
	Seed int64
	// Limits clamps the advice size accepted into the log; its
	// MaxAdviceBytes is enforced on upload and again on replay.
	Limits verifier.Limits
	// FS is the filesystem the collector and its epoch log write through.
	// nil means the real OS; tests and chaos scenarios pass an
	// iofault.Injector.
	FS iofault.FS
	// Backoff bounds the retry loops around trusted-channel appends.
	// Zero-valued fields take iofault's defaults.
	Backoff iofault.Backoff

	// Commit selects the trusted channel's durability discipline; ""
	// means CommitGroup.
	Commit CommitMode
	// MaxInflight bounds concurrently admitted /invoke requests; arrivals
	// beyond the window are shed with 429. <=0 means 256.
	MaxInflight int
	// MaxQueuedBytes bounds the summed body bytes of admitted requests.
	// <=0 means 32 MiB.
	MaxQueuedBytes int64
	// MaxRequestBytes bounds one /invoke body (413 past it). <=0 means
	// 1 MiB.
	MaxRequestBytes int64
	// RetryAfter is the base retry hint attached to 429s; the value sent
	// is jittered across [RetryAfter, 2×RetryAfter). <=0 means 1s.
	RetryAfter time.Duration
	// RequestTimeout bounds one admitted request end to end, including
	// its wait in the commit queue. 0 disables the collector-side
	// deadline (the client's context still applies).
	RequestTimeout time.Duration
	// AuditProgress, when set, reports the audit pipeline's progress as
	// the last fully audited epoch seq (ok=false while unknown). The
	// collector polls it and tightens admission when the auditor falls
	// behind the sealed frontier.
	AuditProgress func() (lastAudited uint64, ok bool)
	// MaxAuditLag is how many sealed-but-unaudited epochs the collector
	// tolerates before tightening admission and failing /readyz. <=0
	// means 64 when AuditProgress is set, disabled otherwise.
	MaxAuditLag int
	// AuditMemo, when set, reports the audit pipeline's memo-cache
	// counters (ok=false while unknown or memoization is off); /healthz
	// includes them so warm-cache behavior is observable from the serving
	// side. Advisory only — never feeds admission.
	AuditMemo func() (AuditMemoState, bool)
}

// AuditMemoState is the auditor's cumulative memo-cache traffic as
// surfaced on /healthz.
type AuditMemoState struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Evictions int `json:"evictions,omitempty"`
}

func (cfg Config) fs() iofault.FS {
	if cfg.FS == nil {
		return iofault.OS
	}
	return cfg.FS
}

func (cfg Config) commitMode() CommitMode {
	if cfg.Commit == "" {
		return CommitGroup
	}
	return cfg.Commit
}

// Meta is the sidecar record written next to the epoch log so offline tools
// (karousos-audit, karousos-auditd) know how to re-execute the epochs.
type Meta struct {
	App  string      `json:"app"`
	Mode advice.Mode `json:"mode"`
}

// MetaFile is the name of the sidecar inside the epoch log directory.
const MetaFile = "meta.json"

// Collector is the HTTP front-end plus its serving runtime and epoch log.
type Collector struct {
	cfg    Config
	commit CommitMode
	adm    *admission

	srv *server.Server // immutable; ServeOne under serveMu, DrainAdvice under the gate's write lock
	log *epochlog.Log  // immutable pointer; the log is internally synchronized

	// gate is the epoch gate: a request holds it shared from its REQ
	// append through its RESP append, and a rotation holds it exclusively
	// — so a seal can never split a REQ/RESP pair across epochs.
	gate sync.RWMutex
	// ridMu orders RID assignment with the REQ enqueue, so the trace
	// admits requests in RID order even under concurrency.
	ridMu   sync.Mutex
	nextRID uint64
	// serveMu serializes the deterministic dispatch loop: server.ServeOne
	// is single-threaded by design, the concurrency lives in the commit
	// path on either side of it.
	serveMu sync.Mutex
	// sealMu serializes whole seals (rotate + finish) across their
	// triggers: threshold, age, /seal, Close.
	sealMu sync.Mutex

	mu          sync.Mutex // guards the mutable state below
	served      int
	lastSeal    time.Time
	lastSealErr error
	closed      bool

	loopTicker *time.Ticker
	loopDone   chan struct{}
}

// New opens (or creates) the epoch log and boots a fresh application
// instance behind it. Reopening a directory a previous incarnation wrote
// to is a restart: the recovered partial epoch (if any) is sealed as-is,
// the RID counter resumes past every RID the log has seen, and the next
// epoch is marked fresh so the auditor knows the application state was
// rebuilt (see recoverIncarnation).
func New(cfg Config) (*Collector, error) {
	if cfg.Mode == "" {
		cfg.Mode = advice.ModeKarousos
	}
	commit := cfg.commitMode()
	switch commit {
	case CommitGroup, CommitPerRequest, CommitAsync:
	default:
		return nil, fmt.Errorf("collectorhttp: unknown commit mode %q", commit)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256
	}
	if cfg.MaxQueuedBytes <= 0 {
		cfg.MaxQueuedBytes = 32 << 20
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 1 << 20
	}
	if cfg.AuditProgress != nil && cfg.MaxAuditLag <= 0 {
		cfg.MaxAuditLag = 64
	}
	if err := cfg.fs().MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeMeta(cfg.fs(), cfg.Dir, Meta{App: cfg.Spec.Name, Mode: cfg.Mode}); err != nil {
		return nil, err
	}
	l, err := epochlog.Open(cfg.Dir, epochlog.Options{
		MaxAdviceBytes: cfg.Limits.MaxAdviceBytes,
		FS:             cfg.FS,
		GroupCommit:    commit == CommitGroup,
		Backoff:        cfg.Backoff,
	})
	if err != nil {
		return nil, err
	}
	nextRID, err := recoverIncarnation(l)
	if err != nil {
		l.Close() //karousos:errladder-ok close-after-error cleanup; the recovery failure is the error that surfaces
		return nil, err
	}
	app, store := cfg.Spec.New()
	srv := server.New(server.Config{
		App:             app,
		Store:           store,
		Seed:            cfg.Seed,
		CollectKarousos: cfg.Mode == advice.ModeKarousos,
		CollectOrochi:   cfg.Mode == advice.ModeOrochiJS,
	})
	lagLimit := 0
	if cfg.AuditProgress != nil {
		lagLimit = cfg.MaxAuditLag
	}
	c := &Collector{
		cfg:      cfg,
		commit:   commit,
		adm:      newAdmission(cfg.MaxInflight, cfg.MaxQueuedBytes, lagLimit),
		srv:      srv,
		log:      l,
		nextRID:  nextRID,
		lastSeal: time.Now(),
	}
	if cfg.EpochMaxAge > 0 || cfg.AuditProgress != nil {
		interval := 250 * time.Millisecond
		if cfg.EpochMaxAge > 0 {
			interval = cfg.EpochMaxAge / 2
		}
		c.loopTicker = time.NewTicker(interval)
		c.loopDone = make(chan struct{})
		go c.maintenanceLoop()
	}
	return c, nil
}

// recoverIncarnation reconciles a freshly built application instance with
// an epoch log a previous collector incarnation wrote to. The previous
// incarnation's in-memory state is gone, so three things must happen before
// serving resumes: any recovered partial epoch is sealed as-is (its advice,
// if the crash lost part of it, honestly rejects — it cannot be completed
// by a runtime that never served those requests); the RID counter is
// recovered from the sealed manifests so RIDs never repeat across
// incarnations (server.DrainAdvice's carry rebasing depends on that); and
// the new active epoch is marked fresh on the trusted channel so the
// auditor drops prior-epoch carry instead of falsely rejecting the rebuilt
// state. On a pristine directory it returns 0 and marks nothing.
func recoverIncarnation(l *epochlog.Log) (uint64, error) {
	if events, _ := l.ActiveEvents(); events > 0 {
		// The epoch is sealed with whatever advice survived the crash, and
		// flagged degraded on the trusted channel: its evidence may be
		// incomplete through no fault of the server, so a failed audit of it
		// is Unauditable, not a rejection.
		l.MarkDegraded("recovered partial epoch from crashed incarnation")
		if _, err := l.Seal(); err != nil {
			return 0, fmt.Errorf("collectorhttp: sealing recovered partial epoch: %w", err)
		}
	}
	sealed := l.Sealed()
	if len(sealed) == 0 {
		return 0, nil
	}
	var next uint64
	for _, m := range sealed {
		if m.LastRID == "" {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(m.LastRID, "r%d", &n); err != nil {
			return 0, fmt.Errorf("collectorhttp: cannot recover request counter: epoch %d last rid %q: %v", m.Seq, m.LastRID, err)
		}
		if n > next {
			next = n
		}
	}
	if next == 0 {
		return 0, fmt.Errorf("collectorhttp: cannot recover request counter: none of the %d sealed epochs records a last rid", len(sealed))
	}
	if err := l.MarkFresh(); err != nil {
		return 0, err
	}
	return next, nil
}

func writeMeta(fsys iofault.FS, dir string, m Meta) error {
	blob, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return fsys.WriteFile(filepath.Join(dir, MetaFile), blob, 0o644)
}

// ReadMeta loads the sidecar record from an epoch log directory.
func ReadMeta(dir string) (Meta, error) {
	blob, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(blob, &m); err != nil {
		return Meta{}, fmt.Errorf("collectorhttp: bad %s: %w", MetaFile, err)
	}
	return m, nil
}

// maintenanceLoop is the collector's background tick: it refreshes the
// audit-lag signal feeding the admission window, and seals the active
// epoch when it outlives EpochMaxAge.
func (c *Collector) maintenanceLoop() {
	for {
		select {
		case <-c.loopDone:
			return
		case <-c.loopTicker.C:
			c.refreshLag()
			if c.cfg.EpochMaxAge <= 0 {
				continue
			}
			c.mu.Lock()
			due := !c.closed && time.Since(c.lastSeal) >= c.cfg.EpochMaxAge
			c.mu.Unlock()
			if due {
				//karousos:errladder-ok seal failure is held in lastSealErr (flips /readyz) and retried on the next tick
				_, _ = c.seal()
			}
		}
	}
}

// refreshLag polls the auditor's progress and feeds the admission window.
// Lag is measured in sealed-but-unaudited epochs: the distance between the
// newest epoch the collector has made auditable and the newest one the
// auditor has actually graded.
func (c *Collector) refreshLag() {
	if c.cfg.AuditProgress == nil {
		return
	}
	audited, ok := c.cfg.AuditProgress()
	if !ok {
		return
	}
	sealedThrough := c.log.ActiveSeq() - 1
	lag := 0
	if sealedThrough > audited {
		lag = int(sealedThrough - audited)
	}
	c.adm.observeLag(lag)
}

// Handler returns the collector's HTTP mux:
//
//	POST /invoke  {"input": <value>} → {"rid": "...", "output": <value>}
//	POST /advice  raw advice blob for the active epoch (untrusted)
//	POST /seal    force-seal the active epoch → manifest (204 when empty)
//	GET  /status  counters and epoch positions
//	GET  /healthz epoch-log + admission detail, always 200 while the process lives
//	GET  /readyz  200 when accepting traffic, 503 when closed, seal-stuck,
//	              saturated, or too far ahead of the auditor
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", c.handleInvoke)
	mux.HandleFunc("POST /advice", c.handleAdvice)
	mux.HandleFunc("POST /seal", c.handleSeal)
	mux.HandleFunc("GET /status", c.handleStatus)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	return mux
}

// ack is the durability handle of one trusted-channel append, whichever
// commit mode produced it.
type ack interface{ Wait() error }

// doneAck is an already-resolved ack (the CommitAsync path, where the
// append returns before anything is durable).
type doneAck struct{ err error }

func (a doneAck) Wait() error { return a.err }

// appendAsync starts one trusted-channel append in the configured commit
// mode. The durable modes (group, per-request) hand the frame to the epoch
// log's commit path, which retries transient faults internally; the legacy
// async mode keeps the retry loop here and defers durability to the seal.
func (c *Collector) appendAsync(ctx context.Context, e trace.Event) ack {
	if c.commit == CommitAsync {
		return doneAck{err: iofault.Retry(ctx, c.cfg.Backoff, func() error {
			return c.log.AppendEvent(e)
		})}
	}
	return c.log.AppendEventAsync(ctx, e)
}

// shed refuses an arrival with 429 and a jittered Retry-After hint, so a
// synchronized burst's retries do not come back in phase.
func (c *Collector) shed(w http.ResponseWriter, reason string) {
	base := c.cfg.RetryAfter
	if base <= 0 {
		base = time.Second
	}
	d := base + time.Duration(rand.Int63n(int64(base)))
	secs := int((d + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, reason, http.StatusTooManyRequests)
}

func (c *Collector) handleInvoke(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxRequestBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request exceeds byte limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var body struct {
		Input json.RawMessage `json:"input"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var input value.V
	if len(body.Input) > 0 {
		if err := json.Unmarshal(body.Input, &input); err != nil {
			http.Error(w, "bad input value: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	input = value.Normalize(input)

	// Admission: claim a slot in the bounded window or shed now. Queuing
	// past the window would only move the overload into an unbounded
	// queue the disk cannot drain — and a collector that dies with a deep
	// queue dies holding evidence it never made durable.
	cost := int64(len(raw))
	if !c.adm.tryAdmit(cost) {
		c.shed(w, "admission window full")
		return
	}
	defer c.adm.release(cost)

	ctx := r.Context()
	if c.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}

	rid, out, status, refuse := c.serveAdmitted(ctx, input)
	if refuse != "" {
		if status == http.StatusTooManyRequests {
			// Shed past admission (the commit queue itself is full); count
			// it so the shed gauge covers every 429 the collector sends.
			c.adm.noteShed()
			c.shed(w, refuse)
			return
		}
		http.Error(w, refuse, status)
		return
	}

	if c.cfg.EpochRequests > 0 {
		if _, reqs := c.log.ActiveEvents(); reqs >= c.cfg.EpochRequests {
			// A failed threshold seal must not fail the request that tripped
			// it — the response is already computed and recorded. The error
			// is held in lastSealErr (flips /readyz) and the seal retries on
			// the next request or age tick.
			//karousos:errladder-ok seal failure must not fail the admitted request; held in lastSealErr and retried
			_, _ = c.seal()
		}
	}
	writeJSON(w, status, map[string]any{"rid": string(rid), "output": out})
}

// serveAdmitted runs one admitted request under the epoch gate: REQ
// append, execution, and RESP append all happen inside one shared hold, so
// a concurrent rotation can never split the pair across epochs. It returns
// either a served result (refuse == "", status 200/500) or a refusal
// (refuse != "" with its status code).
func (c *Collector) serveAdmitted(ctx context.Context, input value.V) (core.RID, value.V, int, string) {
	c.gate.RLock()
	defer c.gate.RUnlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return "", nil, http.StatusServiceUnavailable, "collector closed"
	}

	// Trusted path: the request is ground truth the moment it is admitted,
	// before any untrusted execution runs. RID assignment and the REQ
	// enqueue share one critical section so the trace admits requests in
	// RID order. If the append fails past the retry budget the request is
	// refused outright — serving a request the trace never admitted would
	// make the collector itself the gap in the evidence. The RID is not
	// rolled back: RIDs must only ever grow, and audit keys on the trace,
	// not the counter.
	c.ridMu.Lock()
	c.nextRID++
	rid := core.RID(fmt.Sprintf("r%08d", c.nextRID))
	reqAck := c.appendAsync(ctx, trace.Event{Kind: trace.Req, RID: string(rid), Data: input})
	c.ridMu.Unlock()
	if err := reqAck.Wait(); err != nil {
		if errors.Is(err, epochlog.ErrCommitQueueFull) {
			return "", nil, http.StatusTooManyRequests, "epoch log: " + err.Error()
		}
		return "", nil, http.StatusServiceUnavailable, "epoch log: " + err.Error()
	}

	c.serveMu.Lock()
	out, serveErr := c.srv.ServeOne(server.Request{RID: rid, Input: input})
	// The internal collector recorded the same pair; drain it so a
	// long-running collector's memory stays bounded. The epoch log copy is
	// the ground truth the auditor reads.
	_ = c.srv.TakeTrace()
	c.serveMu.Unlock()
	if serveErr != nil {
		// The request was admitted, so the trace must still balance: record
		// the failure as the response the client observed. An audit of this
		// epoch will reject — correctly, since re-execution cannot
		// reproduce a response the handler never produced.
		out = value.Normalize(value.Map("error", serveErr.Error()))
	}

	// The RESP rides a background context: the response already left the
	// application, so its record must not be abandoned to a client
	// deadline — the trace has to balance. If the append still fails, the
	// client keeps its response (refusing it now would lose work a client
	// may retry non-idempotently) and the epoch is flagged: its trace is
	// unbalanced through an infrastructure fault, so the auditor grades it
	// Unauditable rather than rejected.
	respAck := c.appendAsync(context.Background(), trace.Event{Kind: trace.Resp, RID: string(rid), Data: out})
	if err := respAck.Wait(); err != nil {
		c.log.MarkDegraded("response append failed for " + string(rid) + ": " + err.Error())
	}

	c.mu.Lock()
	c.served++
	c.mu.Unlock()
	status := http.StatusOK
	if serveErr != nil {
		status = http.StatusInternalServerError
	}
	return rid, out, status, ""
}

func (c *Collector) handleAdvice(w http.ResponseWriter, r *http.Request) {
	max := int64(c.cfg.Limits.MaxAdviceBytes)
	if max <= 0 {
		max = 1 << 30
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, max))
	if err != nil {
		// A partial body (client disconnect mid-upload) must never land in
		// the log as a complete record: the last intact record wins at
		// seal, so a truncated re-upload would clobber good advice.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "advice exceeds byte limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading advice body: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The upload holds the epoch gate shared so the blob cannot straddle a
	// rotation and land in an epoch it does not describe.
	c.gate.RLock()
	defer c.gate.RUnlock()
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		http.Error(w, "collector closed", http.StatusServiceUnavailable)
		return
	}
	err = iofault.Retry(r.Context(), c.cfg.Backoff, func() error {
		return c.log.AppendAdvice(blob)
	})
	if err != nil {
		if errors.Is(err, epochlog.ErrAdviceTooLarge) {
			// Client fault, not infrastructure: the epoch is not degraded.
			http.Error(w, "epoch log: "+err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		// The advice channel is untrusted and lossy by design: losing an
		// upload never stops the collector from recording the trace, it only
		// flags the epoch so a failed audit grades Unauditable.
		c.log.MarkDegraded("advice append failed: " + err.Error())
		status := http.StatusInternalServerError
		if iofault.Classify(err) == iofault.ClassDegraded {
			status = http.StatusInsufficientStorage
		}
		http.Error(w, "epoch log: "+err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Collector) handleSeal(w http.ResponseWriter, r *http.Request) {
	m, err := c.seal()
	if err != nil {
		http.Error(w, "seal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	if m == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// Status is the collector's observable state.
type Status struct {
	App            string `json:"app"`
	Mode           string `json:"mode"`
	Served         int    `json:"served"`
	ActiveSeq      uint64 `json:"activeSeq"`
	ActiveEvents   int    `json:"activeEvents"`
	ActiveRequests int    `json:"activeRequests"`
	SealedEpochs   int    `json:"sealedEpochs"`
	// Shed counts arrivals refused with 429 since boot.
	Shed uint64 `json:"shed,omitempty"`
}

func (c *Collector) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Status reports the collector's counters.
func (c *Collector) Status() Status {
	c.mu.Lock()
	served := c.served
	c.mu.Unlock()
	events, reqs := c.log.ActiveEvents()
	return Status{
		App:            c.cfg.Spec.Name,
		Mode:           string(c.cfg.Mode),
		Served:         served,
		ActiveSeq:      c.log.ActiveSeq(),
		ActiveEvents:   events,
		ActiveRequests: reqs,
		SealedEpochs:   len(c.log.Sealed()),
		Shed:           c.adm.snapshot().Shed,
	}
}

// Health is the epoch-log and admission health detail served on /healthz.
type Health struct {
	App            string `json:"app"`
	Mode           string `json:"mode"`
	CommitMode     string `json:"commitMode"`
	ActiveSeq      uint64 `json:"activeSeq"`
	ActiveEvents   int    `json:"activeEvents"`
	ActiveRequests int    `json:"activeRequests"`
	SealedEpochs   int    `json:"sealedEpochs"`
	// PendingSeals counts epochs rotated out but not yet durably sealed.
	PendingSeals int `json:"pendingSeals,omitempty"`
	// OpenEpochAgeMS is how long ago the last seal completed — how stale
	// the auditable prefix is.
	OpenEpochAgeMS int64 `json:"openEpochAgeMs"`
	// LastSealError is the most recent seal attempt's failure, "" once a
	// seal succeeds again.
	LastSealError string `json:"lastSealError,omitempty"`
	// Degraded is the active epoch's degradation reason, "" when the
	// current evidence is complete.
	Degraded string `json:"degraded,omitempty"`
	Closed   bool   `json:"closed,omitempty"`
	// Admission is the bounded intake's state, including the audit-lag
	// signal it tightens on.
	Admission AdmissionState `json:"admission"`
	// AuditMemo is the audit pipeline's memo-cache traffic, present only
	// when Config.AuditMemo reports it.
	AuditMemo *AuditMemoState `json:"auditMemo,omitempty"`
}

// HealthSnapshot reports the collector's epoch-log and admission health.
func (c *Collector) HealthSnapshot() Health {
	c.mu.Lock()
	lastSeal, lastSealErr, closed := c.lastSeal, c.lastSealErr, c.closed
	c.mu.Unlock()
	events, reqs := c.log.ActiveEvents()
	h := Health{
		App:            c.cfg.Spec.Name,
		Mode:           string(c.cfg.Mode),
		CommitMode:     string(c.commit),
		ActiveSeq:      c.log.ActiveSeq(),
		ActiveEvents:   events,
		ActiveRequests: reqs,
		SealedEpochs:   len(c.log.Sealed()),
		PendingSeals:   c.log.PendingSeals(),
		OpenEpochAgeMS: time.Since(lastSeal).Milliseconds(),
		Degraded:       c.log.Degraded(),
		Closed:         closed,
		Admission:      c.adm.snapshot(),
	}
	if lastSealErr != nil {
		h.LastSealError = lastSealErr.Error()
	}
	if c.cfg.AuditMemo != nil {
		if ms, ok := c.cfg.AuditMemo(); ok {
			h.AuditMemo = &ms
		}
	}
	return h
}

func (c *Collector) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.refreshLag()
	writeJSON(w, http.StatusOK, c.HealthSnapshot())
}

func (c *Collector) handleReadyz(w http.ResponseWriter, r *http.Request) {
	c.refreshLag()
	h := c.HealthSnapshot()
	switch {
	case h.Closed:
		http.Error(w, "collector closed", http.StatusServiceUnavailable)
	case h.LastSealError != "":
		http.Error(w, "seal failing: "+h.LastSealError, http.StatusServiceUnavailable)
	case h.Admission.Saturated:
		// Not an error state — the collector is doing its job — but a load
		// balancer should drain traffic before clients start seeing 429s.
		http.Error(w, "admission window saturated", http.StatusServiceUnavailable)
	case h.Admission.MaxAuditLag > 0 && h.Admission.AuditLag > h.Admission.MaxAuditLag:
		http.Error(w, fmt.Sprintf("audit lag %d epochs exceeds %d", h.Admission.AuditLag, h.Admission.MaxAuditLag), http.StatusServiceUnavailable)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// Seal drains the runtime's advice into the active epoch and seals it.
// Sealing an empty epoch is a no-op returning (nil, nil) — unless earlier
// rotated epochs are still pending their durable seal, in which case those
// are finished.
func (c *Collector) Seal() (*epochlog.Manifest, error) {
	return c.seal()
}

// seal rotates the active epoch out and finishes its durable seal. The
// rotation runs under the epoch gate's write lock — no request holds the
// gate, so no REQ/RESP pair can straddle the boundary — and is memory-only;
// the fsync-heavy half runs after the gate is released, so in-flight
// traffic resumes while the rotated epoch syncs. sealMu keeps concurrent
// seal triggers from interleaving, and a failed finish stays pending:
// the next seal attempt retries it before anything newer.
func (c *Collector) seal() (*epochlog.Manifest, error) {
	c.sealMu.Lock()
	defer c.sealMu.Unlock()
	c.gate.Lock()
	err := c.rotateGated()
	c.gate.Unlock()
	var m *epochlog.Manifest
	if err == nil {
		m, err = c.log.FinishSeals()
	}
	c.mu.Lock()
	c.lastSealErr = err
	if m != nil {
		// Even a partially failed finish that sealed something restarts the
		// age clock: the auditable prefix did advance.
		c.lastSeal = time.Now()
	}
	c.mu.Unlock()
	c.refreshLag()
	return m, err
}

// rotateGated drains the runtime's advice into the active epoch and
// rotates it out. Caller holds c.gate exclusively and c.sealMu.
func (c *Collector) rotateGated() error {
	if events, _ := c.log.ActiveEvents(); events == 0 {
		return nil
	}
	kar, oro := c.srv.DrainAdvice()
	adv := kar
	if c.cfg.Mode == advice.ModeOrochiJS {
		adv = oro
	}
	if adv != nil {
		err := iofault.Retry(context.Background(), c.cfg.Backoff, func() error {
			return c.log.AppendAdvice(adv.MarshalBinary())
		})
		if err != nil {
			// The drain already consumed the runtime's advice; it cannot be
			// re-produced. Seal anyway with the epoch flagged degraded — the
			// trusted trace is intact and must not be held hostage to the
			// advice channel.
			c.log.MarkDegraded("advice lost at seal: " + err.Error())
		}
	}
	_, err := c.log.Rotate()
	return err
}

// Crash abandons the collector the way a killed process would: no seal,
// the active epoch's tail left on disk for the next incarnation to recover.
// Chaos scenarios use it; production code wants Close.
func (c *Collector) Crash() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.stopLoopLocked()
	c.mu.Unlock()
	return c.log.Close()
}

// Close seals any partial epoch and releases the log. Safe to call once.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.stopLoopLocked()
	c.mu.Unlock()
	// In-flight requests finish under the gate before the final seal's
	// rotation; new arrivals see closed and are refused.
	_, sealErr := c.seal()
	logErr := c.log.Close()
	if sealErr != nil {
		return sealErr
	}
	return logErr
}

// stopLoopLocked stops the maintenance loop. Caller holds c.mu.
func (c *Collector) stopLoopLocked() {
	if c.loopTicker != nil {
		c.loopTicker.Stop()
		close(c.loopDone)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //karousos:errladder-ok best-effort response body; the status header is already sent
}
