package collectorhttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/verifier"
)

func post(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func invoke(t *testing.T, base string, input any) map[string]any {
	t.Helper()
	body, err := json.Marshal(map[string]any{"input": input})
	if err != nil {
		t.Fatal(err)
	}
	resp, out := post(t, base+"/invoke", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke: status %d: %s", resp.StatusCode, out)
	}
	var decoded map[string]any
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("invoke response not JSON: %v (%s)", err, out)
	}
	return decoded
}

// TestInvokeRecordsAndSeals drives MOTD requests over HTTP, checks the
// responses flow back, and checks the count threshold seals epochs whose
// recorded trace matches what the client observed.
func TestInvokeRecordsAndSeals(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	set := map[string]any{"op": "set", "scope": "always", "msg": "over-http"}
	get := map[string]any{"op": "get", "day": "mon"}
	invoke(t, ts.URL, set)
	invoke(t, ts.URL, get) // epoch 1 seals here
	out := invoke(t, ts.URL, get)
	msg, _ := out["output"].(map[string]any)
	if msg["msg"] != "over-http" {
		t.Fatalf("cross-epoch read returned %v, want over-http", out["output"])
	}

	st := c.Status()
	if st.SealedEpochs != 1 || st.ActiveRequests != 1 || st.Served != 3 {
		t.Fatalf("status after 3 invokes: %+v", st)
	}
	if err := c.Close(); err != nil { // seals the partial second epoch
		t.Fatal(err)
	}

	sealed, err := epochlog.ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 2 {
		t.Fatalf("found %d sealed epochs, want 2", len(sealed))
	}
	for _, m := range sealed {
		tr, blob, _, err := epochlog.ReadSealed(dir, m.Seq, epochlog.Options{})
		if err != nil {
			t.Fatalf("epoch %d: %v", m.Seq, err)
		}
		if err := tr.CheckBalanced(); err != nil {
			t.Fatalf("epoch %d trace unbalanced: %v", m.Seq, err)
		}
		if _, err := advice.UnmarshalBinary(blob); err != nil {
			t.Fatalf("epoch %d advice does not decode: %v", m.Seq, err)
		}
	}
	meta, err := ReadMeta(dir)
	if err != nil || meta.App != "motd" || meta.Mode != advice.ModeKarousos {
		t.Fatalf("meta = %+v, err %v", meta, err)
	}
}

// TestAdviceEndpointLastWins: uploads to /advice land in the active epoch
// and the last intact record wins over the collector's own drain — the
// upload path is how an out-of-process server supplies its advice.
func TestAdviceEndpointLastWins(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	resp, _ := post(t, ts.URL+"/advice", []byte("not-the-winner"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("advice upload: status %d", resp.StatusCode)
	}
	resp, body := post(t, ts.URL+"/seal", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seal: status %d", resp.StatusCode)
	}
	var m epochlog.Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	c.Close()

	_, blob, _, err := epochlog.ReadSealed(dir, m.Seq, epochlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The collector drains its own advice at seal time, after the upload.
	if adv, err := advice.UnmarshalBinary(blob); err != nil {
		t.Fatalf("winning record is not the drained advice: %v", err)
	} else if adv.Mode != advice.ModeKarousos {
		t.Fatalf("winning advice mode = %s", adv.Mode)
	}
}

// TestAdviceByteLimitOverHTTP: an oversized upload is refused with 413 and
// never reaches the log.
func TestAdviceByteLimitOverHTTP(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{
		Spec:   harness.MOTDApp(),
		Dir:    dir,
		Limits: verifier.Limits{MaxAdviceBytes: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	defer c.Close()

	resp, _ := post(t, ts.URL+"/advice", bytes.Repeat([]byte("x"), 65))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized advice: status %d, want 413", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/advice", []byte("small"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("in-limit advice: status %d", resp.StatusCode)
	}
}

// TestAgeBasedSeal: a non-empty epoch older than EpochMaxAge seals without
// further requests.
func TestAgeBasedSeal(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir, EpochMaxAge: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
	deadline := time.Now().Add(5 * time.Second)
	for c.Status().SealedEpochs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("age-based seal never happened")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRestartResumesRIDsAndMarksFresh: reopening a collector over a
// directory a previous incarnation wrote to must seal the recovered partial
// epoch, resume the RID counter past every RID the log has seen (a fresh
// counter would reuse RIDs across epochs, which the verifier's carry
// rebasing forbids), and mark the next epoch fresh on the trusted channel.
func TestRestartResumesRIDsAndMarksFresh(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())
	var rids []string
	for i := 0; i < 3; i++ { // epoch 1 seals after 2; 1 request left active
		out := invoke(t, ts1.URL, map[string]any{"op": "get", "day": fmt.Sprint(i)})
		rids = append(rids, out["rid"].(string))
	}
	// Crash: drop the file handles without sealing the partial epoch.
	c1.log.Close()
	ts1.Close()

	c2, err := New(Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	defer ts2.Close()
	for i := 0; i < 2; i++ {
		out := invoke(t, ts2.URL, map[string]any{"op": "get", "day": fmt.Sprint(i)})
		rids = append(rids, out["rid"].(string))
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{}
	for _, rid := range rids {
		if seen[rid] {
			t.Fatalf("rid %q repeated across the restart", rid)
		}
		seen[rid] = true
	}
	sealed, err := epochlog.ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 (pre-crash), epoch 2 (recovered partial, sealed at boot),
	// epoch 3 (post-restart).
	if len(sealed) != 3 {
		t.Fatalf("sealed %d epochs, want 3", len(sealed))
	}
	if sealed[0].Fresh || sealed[1].Fresh {
		t.Fatal("pre-restart epochs marked fresh")
	}
	if !sealed[2].Fresh {
		t.Fatal("first post-restart epoch not marked fresh")
	}
	if sealed[2].LastRID != "r00000005" {
		t.Fatalf("post-restart epoch LastRID = %q, want r00000005", sealed[2].LastRID)
	}
}

// brokenBody yields some bytes, then fails — a client disconnecting
// mid-upload.
type brokenBody struct{ sent bool }

func (b *brokenBody) Read(p []byte) (int, error) {
	if !b.sent {
		b.sent = true
		return copy(p, "partial-advice"), nil
	}
	return 0, fmt.Errorf("client disconnected")
}
func (b *brokenBody) Close() error { return nil }

// TestAdvicePartialBodyNotAppended: a body-read failure returns 400 and the
// partial bytes never reach the log — an appended truncation would win over
// an earlier intact record at seal time.
func TestAdvicePartialBodyNotAppended(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	good := []byte("good-blob")
	resp, _ := post(t, ts.URL+"/advice", good)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("intact upload: status %d", resp.StatusCode)
	}
	req := httptest.NewRequest(http.MethodPost, "/advice", &brokenBody{})
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("partial upload: status %d, want 400", rec.Code)
	}
	// Exactly one frame on disk: header + the intact record.
	data, err := os.ReadFile(filepath.Join(dir, "ep000001.advice"))
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 + len(good); len(data) != want {
		t.Fatalf("advice file is %d bytes, want %d (partial body appended?)", len(data), want)
	}
}

// TestRIDsMonotonicAcrossEpochs: rids never repeat across epochs (the carry
// rebasing depends on it).
func TestRIDsMonotonicAcrossEpochs(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	seen := map[string]bool{}
	for i := 0; i < 5; i++ {
		out := invoke(t, ts.URL, map[string]any{"op": "get", "day": fmt.Sprint(i)})
		rid, _ := out["rid"].(string)
		if rid == "" || seen[rid] {
			t.Fatalf("rid %q empty or repeated", rid)
		}
		seen[rid] = true
	}
	c.Close()
	sealed, err := epochlog.ListSealed(dir)
	if err != nil || len(sealed) != 5 {
		t.Fatalf("sealed %d epochs (err %v), want 5", len(sealed), err)
	}
}
