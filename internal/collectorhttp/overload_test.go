package collectorhttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/harness"
)

// TestAdmissionWindow exercises the bounded intake directly: slots, bytes,
// lag-proportional tightening, peaks, and the saturation flag.
func TestAdmissionWindow(t *testing.T) {
	a := newAdmission(8, 100, 4)
	if !a.tryAdmit(50) || !a.tryAdmit(50) {
		t.Fatal("window refused admissions that fit")
	}
	if a.tryAdmit(1) {
		t.Fatal("admitted past the byte bound")
	}
	a.release(50)
	if !a.tryAdmit(50) {
		t.Fatal("released bytes not reusable")
	}
	st := a.snapshot()
	if st.Inflight != 2 || st.QueuedBytes != 100 || st.PeakInflight != 2 || st.PeakQueuedBytes != 100 || st.Shed != 1 {
		t.Fatalf("snapshot after churn: %+v", st)
	}

	// Lag at 2× the limit halves the window; absurd lag floors it at 1.
	a.observeLag(8)
	if w := a.snapshot().EffectiveWindow; w != 4 {
		t.Fatalf("window at lag 8 (limit 4) = %d, want 4", w)
	}
	a.observeLag(10_000)
	if w := a.snapshot().EffectiveWindow; w != 1 {
		t.Fatalf("window at absurd lag = %d, want floor 1", w)
	}
	// One request is already in flight, so a tightened window of 1 is
	// saturated and the next arrival sheds on the slot bound.
	if st := a.snapshot(); !st.Saturated {
		t.Fatalf("window 1 with 2 inflight not saturated: %+v", st)
	}
	a.release(50)
	// One request still in flight fills the floored window of 1.
	if a.tryAdmit(10) {
		t.Fatal("admitted past the tightened window")
	}
	a.observeLag(0)
	if !a.tryAdmit(10) {
		t.Fatal("window did not reopen once the lag cleared")
	}
}

// TestOverWindowSheds429: arrivals beyond the admission window get 429
// with a jittered Retry-After hint, and the shed counter records them.
func TestOverWindowSheds429(t *testing.T) {
	c, err := New(Config{
		Spec:           harness.MOTDApp(),
		Dir:            t.TempDir(),
		MaxQueuedBytes: 1, // every real body exceeds this: all arrivals shed
		RetryAfter:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"input": map[string]any{"op": "get", "day": "mon"}})
	for i := 0; i < 2; i++ {
		resp, out := post(t, ts.URL+"/invoke", body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-window invoke: status %d (%s), want 429", resp.StatusCode, out)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 2 || ra > 4 {
			t.Fatalf("Retry-After = %q, want integer in [2,4]", resp.Header.Get("Retry-After"))
		}
	}
	if st := c.Status(); st.Shed != 2 || st.Served != 0 || st.ActiveEvents != 0 {
		t.Fatalf("status after sheds: %+v (shed requests must leave no trace)", st)
	}
}

// TestLagBackpressure: when the (stubbed) auditor falls behind, the window
// tightens and /readyz flips; when it catches up, both recover. Threshold
// seals make the lag deterministic — every invoke seals one epoch.
func TestLagBackpressure(t *testing.T) {
	var audited atomic.Uint64
	c, err := New(Config{
		Spec:          harness.MOTDApp(),
		Dir:           t.TempDir(),
		EpochRequests: 1,
		MaxInflight:   9,
		MaxAuditLag:   1,
		AuditProgress: func() (uint64, bool) { return audited.Load(), true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		invoke(t, ts.URL, map[string]any{"op": "get", "day": fmt.Sprint(i)})
	}
	// 3 epochs sealed, none audited: lag 3 over a limit of 1.
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.CommitMode != "group" {
		t.Fatalf("default commit mode = %q, want group", h.CommitMode)
	}
	if h.Admission.AuditLag != 3 || h.Admission.EffectiveWindow != 3 {
		t.Fatalf("admission under lag 3 (limit 1, max 9) = %+v, want window 9*1/3=3", h.Admission)
	}
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("audit lag")) {
		t.Fatalf("readyz under audit lag: %d %s", resp.StatusCode, body)
	}

	// The auditor catches up: the next poll reopens the window.
	audited.Store(3)
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after auditor caught up: %d", resp.StatusCode)
	}
	if w := c.adm.snapshot().EffectiveWindow; w != 9 {
		t.Fatalf("window after catch-up = %d, want 9", w)
	}
}

// TestRequestDeadlineAbandonsCommit: an already-expired request deadline
// fails the REQ append before its frame touches the disk — the refused
// request leaves no state behind.
func TestRequestDeadlineAbandonsCommit(t *testing.T) {
	c, err := New(Config{
		Spec:           harness.MOTDApp(),
		Dir:            t.TempDir(),
		RequestTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"input": map[string]any{"op": "get", "day": "mon"}})
	resp, out := post(t, ts.URL+"/invoke", body)
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(out, []byte("commit abandoned")) {
		t.Fatalf("expired-deadline invoke: %d %s, want 503 commit-abandoned", resp.StatusCode, out)
	}
	if st := c.Status(); st.Served != 0 || st.ActiveEvents != 0 {
		t.Fatalf("abandoned request left state behind: %+v", st)
	}
}

// TestCommitModesServeAndSeal: each commit discipline serves the same
// little workload to balanced, auditable epochs; unknown modes are refused
// at construction.
func TestCommitModesServeAndSeal(t *testing.T) {
	if _, err := New(Config{Spec: harness.MOTDApp(), Dir: t.TempDir(), Commit: "bogus"}); err == nil {
		t.Fatal("New accepted an unknown commit mode")
	}
	for _, mode := range []CommitMode{CommitGroup, CommitPerRequest, CommitAsync} {
		t.Run(string(mode), func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir, Commit: mode, EpochRequests: 2})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(c.Handler())
			defer ts.Close()
			invoke(t, ts.URL, map[string]any{"op": "set", "scope": "always", "msg": string(mode)})
			out := invoke(t, ts.URL, map[string]any{"op": "get", "day": "mon"})
			if msg, _ := out["output"].(map[string]any); msg["msg"] != string(mode) {
				t.Fatalf("served output %v", out["output"])
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			sealed, err := epochlog.ListSealed(dir)
			if err != nil || len(sealed) != 1 {
				t.Fatalf("sealed %d epochs (err %v), want 1", len(sealed), err)
			}
			tr, _, _, err := epochlog.ReadSealed(dir, 1, epochlog.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.CheckBalanced(); err != nil {
				t.Fatalf("mode %s trace unbalanced: %v", mode, err)
			}
		})
	}
}

// TestConcurrentInvokesStayOrderedAndSealed: many goroutines invoke at
// once; every REQ/RESP pair stays inside one epoch, every trace balances,
// and nothing is double-counted. The -race run of this test is the lock
// discipline's proof.
func TestConcurrentInvokesStayOrderedAndSealed(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Spec: harness.MOTDApp(), Dir: dir, EpochRequests: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	const workers, per = 16, 4
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				body, _ := json.Marshal(map[string]any{"input": map[string]any{"op": "get", "day": fmt.Sprintf("w%d-%d", g, i)}})
				resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := c.Status(); st.Served != workers*per {
		t.Fatalf("served %d, want %d", st.Served, workers*per)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	sealed, err := epochlog.ListSealed(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range sealed {
		tr, _, _, err := epochlog.ReadSealed(dir, m.Seq, epochlog.Options{})
		if err != nil {
			t.Fatalf("epoch %d: %v", m.Seq, err)
		}
		if err := tr.CheckBalanced(); err != nil {
			t.Fatalf("epoch %d trace split a request pair: %v", m.Seq, err)
		}
		total += m.Requests
	}
	if total != workers*per {
		t.Fatalf("sealed epochs hold %d requests, want %d", total, workers*per)
	}
}

// TestHealthSurfacesAuditMemo: when an audit-memo probe is wired, /healthz
// carries the counters verbatim; when the probe reports no data (no
// checkpoint yet, or memo disabled) the field is omitted entirely.
func TestHealthSurfacesAuditMemo(t *testing.T) {
	var have atomic.Bool
	c, err := New(Config{
		Spec:          harness.MOTDApp(),
		Dir:           t.TempDir(),
		EpochRequests: 1,
		AuditMemo: func() (AuditMemoState, bool) {
			return AuditMemoState{Hits: 12, Misses: 3, Evictions: 1}, have.Load()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	_, body := get(t, ts.URL+"/healthz")
	if bytes.Contains(body, []byte("auditMemo")) {
		t.Fatalf("healthz reports auditMemo before the probe has data: %s", body)
	}
	have.Store(true)
	_, body = get(t, ts.URL+"/healthz")
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.AuditMemo == nil || h.AuditMemo.Hits != 12 || h.AuditMemo.Misses != 3 || h.AuditMemo.Evictions != 1 {
		t.Fatalf("healthz auditMemo = %+v, want {12 3 1}", h.AuditMemo)
	}
}
