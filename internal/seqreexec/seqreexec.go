// Package seqreexec is the sequential re-execution baseline of the paper's
// evaluation (§6, "Baselines"): the application server, replaying the trusted
// trace one request at a time with no advice and no batching.
//
// The paper notes this baseline is pessimistic for Karousos: a real
// re-execution-based verifier would additionally need to consult advice to
// reproduce concurrent interleavings, so it would be at least as slow. We
// replay requests in trace order at admission concurrency 1 and report how
// many responses match the trace; under concurrent original executions some
// responses may legitimately differ (the baseline has no way to reproduce the
// original schedule), which is exactly the limitation the paper's design
// addresses.
package seqreexec

import (
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
)

// Result reports a sequential replay.
type Result struct {
	// Matched counts responses identical to the trace; Mismatched counts the
	// rest.
	Matched, Mismatched int
}

// Run replays the trace's requests sequentially against a fresh application
// instance and compares outputs. app and store must be fresh (unused)
// instances of the audited application.
func Run(app *core.App, store *kvstore.Store, tr *trace.Trace) (*Result, error) {
	inputs := tr.Inputs()
	var reqs []server.Request
	for _, rid := range tr.RIDs() {
		reqs = append(reqs, server.Request{RID: core.RID(rid), Input: inputs[rid]})
	}
	srv := server.New(server.Config{App: app, Store: store})
	res, err := srv.Run(reqs, 1)
	if err != nil {
		return nil, err
	}
	want := tr.Outputs()
	got := res.Trace.Outputs()
	out := &Result{}
	for rid, w := range want {
		if g, ok := got[rid]; ok && value.Equal(g, w) {
			out.Matched++
		} else {
			out.Mismatched++
		}
	}
	return out, nil
}
