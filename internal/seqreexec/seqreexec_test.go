package seqreexec_test

import (
	"testing"

	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/apps/stacks"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/seqreexec"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/workload"
)

func TestSequentialReplayMatchesSequentialOriginal(t *testing.T) {
	// A trace produced at concurrency 1 replays exactly.
	reqs := workload.MOTD(60, workload.Mixed, 4)
	srv := server.New(server.Config{App: motd.New(), Seed: 9})
	res, err := srv.Run(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := seqreexec.Run(motd.New(), nil, res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if out.Mismatched != 0 || out.Matched != 60 {
		t.Errorf("matched=%d mismatched=%d", out.Matched, out.Mismatched)
	}
}

func TestSequentialReplayDivergesOnConcurrentTrace(t *testing.T) {
	// A concurrent original can interleave writes between another request's
	// read-modify-write; sequential replay cannot reproduce that schedule, so
	// some responses may differ. The baseline must report this honestly
	// rather than erroring out.
	reqs := workload.Stacks(80, workload.Mixed, 4, workload.DefaultStacksOptions())
	srv := server.New(server.Config{App: stacks.New(), Store: kvstore.New(kvstore.Serializable), Seed: 9})
	res, err := srv.Run(reqs, 10)
	if err != nil {
		t.Fatal(err)
	}
	out, err := seqreexec.Run(stacks.New(), kvstore.New(kvstore.Serializable), res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if out.Matched+out.Mismatched != 80 {
		t.Errorf("accounted %d responses, want 80", out.Matched+out.Mismatched)
	}
	if out.Matched == 0 {
		t.Error("sequential replay matched nothing; replay is broken, not just reordered")
	}
}

func TestSequentialReplayStacksAtConcurrencyOne(t *testing.T) {
	reqs := workload.Stacks(50, workload.Mixed, 4, workload.DefaultStacksOptions())
	srv := server.New(server.Config{App: stacks.New(), Store: kvstore.New(kvstore.Serializable), Seed: 9})
	res, err := srv.Run(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := seqreexec.Run(stacks.New(), kvstore.New(kvstore.Serializable), res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// At concurrency 1 the only nondeterminism is sibling scheduling within
	// one request; the stacks application's responses do not depend on it
	// except through refresh ordering, which writes the same cache values.
	if out.Mismatched != 0 {
		t.Errorf("mismatched=%d at concurrency 1", out.Mismatched)
	}
}
