// Package adya implements the portion of Adya's isolation theory [Adya'99]
// that the Karousos verifier runs over the server's alleged transaction
// history (paper §4.4, Figure 17).
//
// Given a history — the committed transactions, a per-key version (write)
// order, and the set of read-from facts — the package builds the Direct
// Serialization Graph (DSG) with read-dependency (wr), write-dependency (ww)
// and anti-dependency (rw) edges, and tests the phenomena that define each
// isolation level:
//
//   - read uncommitted: no G0 (no cycle of ww edges);
//   - read committed:   no G1c (no cycle of ww+wr edges);
//   - serializability:  no G2 (no cycle of ww+wr+rw edges).
//
// The verification is *provisional* exactly as in the paper: the history
// here is alleged by an untrusted server, so the verifier separately checks
// that the history is consistent with re-execution and the rest of the
// advice (those checks live in the verifier package).
package adya

import (
	"fmt"
	"sort"

	"karousos.dev/karousos/internal/graph"
)

// Level is the isolation level to verify.
type Level uint8

const (
	ReadUncommitted Level = iota
	ReadCommitted
	Serializable
	// SnapshotIsolation is checked through CheckSI, which additionally
	// needs the alleged begin/commit ordering.
	SnapshotIsolation
)

func (l Level) String() string {
	switch l {
	case ReadUncommitted:
		return "read uncommitted"
	case ReadCommitted:
		return "read committed"
	case Serializable:
		return "serializable"
	case SnapshotIsolation:
		return "snapshot isolation"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// TxKey identifies a transaction node of the DSG: the paper indexes
// transactions by (request id, transaction id).
type TxKey struct {
	RID string
	TID string
}

func (t TxKey) String() string { return t.RID + "/" + t.TID }

// Write identifies an installed write: the Pos-th operation of transaction
// Tx (positions are opaque to this package; they only need to be distinct
// per transaction).
type Write struct {
	Tx  TxKey
	Pos int
}

// Read is one read-from fact: transaction By read (at its own position
// ByPos) the version installed by From.
type Read struct {
	From  Write
	By    TxKey
	ByPos int
}

// History is the alleged execution history handed to the isolation test.
type History struct {
	// Committed lists the committed transactions; they are the DSG nodes.
	Committed []TxKey
	// WriteOrderPerKey gives, per key, the total order of installed
	// (committed) versions — Adya's version order.
	WriteOrderPerKey map[string][]Write
	// Reads lists every read-from fact involving a committed reader.
	Reads []Read
}

// sortedWriteKeys returns WriteOrderPerKey's keys in sorted order. Edge
// insertion order decides which cycle FindCycle reports — and so the
// rejection Reason operators see — so the sweep must not follow Go's
// randomized map iteration.
func sortedWriteKeys(h *History) []string {
	keys := make([]string, 0, len(h.WriteOrderPerKey))
	for k := range h.WriteOrderPerKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DSG builds the direct serialization graph with the edge families required
// by the given level. Nodes are exactly the committed transactions; edges
// never connect a transaction to itself.
func DSG(h *History, level Level) *graph.Graph[TxKey] {
	committed := make(map[TxKey]bool, len(h.Committed))
	dg := graph.New[TxKey]()
	for _, t := range h.Committed {
		committed[t] = true
		dg.AddNode(t)
	}

	// ww (write-depend) edges: consecutive installed versions of a key.
	for _, key := range sortedWriteKeys(h) {
		order := h.WriteOrderPerKey[key]
		for j := 0; j+1 < len(order); j++ {
			a, b := order[j].Tx, order[j+1].Tx
			if a != b && committed[a] && committed[b] {
				dg.AddEdge(a, b)
			}
		}
	}

	if level == ReadUncommitted {
		return dg
	}

	// wr (read-depend) edges: reader reads a version the writer installed.
	for _, r := range h.Reads {
		a, b := r.From.Tx, r.By
		if a != b && committed[a] && committed[b] {
			dg.AddEdge(a, b)
		}
	}

	if level == ReadCommitted {
		return dg
	}

	// rw (anti-depend) edges: a committed transaction read version v of a
	// key, and another transaction installed the version immediately after
	// v in the version order.
	readersOf := make(map[Write][]TxKey)
	for _, r := range h.Reads {
		if committed[r.By] {
			readersOf[r.From] = append(readersOf[r.From], r.By)
		}
	}
	for _, key := range sortedWriteKeys(h) {
		order := h.WriteOrderPerKey[key]
		for j := 0; j+1 < len(order); j++ {
			next := order[j+1].Tx
			for _, reader := range readersOf[order[j]] {
				if reader != next && committed[reader] && committed[next] {
					dg.AddEdge(reader, next)
				}
			}
		}
	}
	return dg
}

// Check verifies that the history satisfies the isolation level: it builds
// the level's DSG and reports the phenomenon (a cycle) if one exists.
func Check(h *History, level Level) error {
	dg := DSG(h, level)
	if cycle := dg.FindCycle(); cycle != nil {
		return &ViolationError{Level: level, Cycle: cycle}
	}
	return nil
}

// ViolationError reports an isolation violation: a cycle of dependency edges
// in the DSG (phenomenon G0, G1c, or G2 depending on the level checked).
type ViolationError struct {
	Level Level
	Cycle []TxKey
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("adya: %s violated: dependency cycle %v", e.Level, e.Cycle)
}

// Snapshot isolation support (an extension past the paper's implementation;
// its §1 lists snapshot isolation as future work). Adya defines PL-SI via
// phenomena over the history's begin/commit ordering:
//
//	G-SIa (interference): every read- or write-dependency edge Ti→Tj must
//	have Ti's commit before Tj's begin — Tj's snapshot either saw all of
//	Ti or none of it.
//	G-SIb (missed effects): no cycle with exactly one anti-dependency
//	edge — two concurrent transactions cannot both miss each other's
//	writes and still be ordered by a dependency path.
//
// Write skew (a cycle with TWO anti-dependency edges) is permitted, exactly
// as real SI permits it.

// TxTimes gives each committed transaction's position in the alleged
// begin/commit order: smaller means earlier. Both positions are indexes into
// one global event sequence.
type TxTimes struct {
	Begin, Commit int
}

// CheckSI verifies the history against snapshot isolation given the alleged
// begin/commit ordering of every committed transaction.
func CheckSI(h *History, times map[TxKey]TxTimes) error {
	// SI forbids the G1 phenomena as well.
	if err := Check(h, ReadCommitted); err != nil {
		return err
	}
	committed := make(map[TxKey]bool, len(h.Committed))
	for _, t := range h.Committed {
		committed[t] = true
		tt, ok := times[t]
		if !ok {
			return fmt.Errorf("adya: committed transaction %v has no begin/commit times", t)
		}
		if tt.Begin >= tt.Commit {
			return fmt.Errorf("adya: transaction %v commits at %d before beginning at %d", t, tt.Commit, tt.Begin)
		}
	}

	// Dependency (ww+wr) edges, for G-SIa and the G-SIb reachability test.
	dep := graph.New[TxKey]()
	for _, t := range h.Committed {
		dep.AddNode(t)
	}
	checkDep := func(a, b TxKey) error {
		if a == b || !committed[a] || !committed[b] {
			return nil
		}
		if times[a].Commit >= times[b].Begin {
			return fmt.Errorf("adya: snapshot isolation violated (G-SIa): %v depends on %v, which committed at %d, after %v began at %d",
				b, a, times[a].Commit, b, times[b].Begin)
		}
		dep.AddEdge(a, b)
		return nil
	}
	for _, key := range sortedWriteKeys(h) {
		order := h.WriteOrderPerKey[key]
		for j := 0; j+1 < len(order); j++ {
			if err := checkDep(order[j].Tx, order[j+1].Tx); err != nil {
				return err
			}
		}
	}
	for _, r := range h.Reads {
		if err := checkDep(r.From.Tx, r.By); err != nil {
			return err
		}
	}

	// G-SIb: an anti-dependency edge a→b closing a dependency-only path
	// b→…→a forms a cycle with exactly one anti-dependency edge.
	readersOf := make(map[Write][]TxKey)
	for _, r := range h.Reads {
		if committed[r.By] {
			readersOf[r.From] = append(readersOf[r.From], r.By)
		}
	}
	for _, key := range sortedWriteKeys(h) {
		order := h.WriteOrderPerKey[key]
		for j := 0; j+1 < len(order); j++ {
			next := order[j+1].Tx
			for _, reader := range readersOf[order[j]] {
				if reader == next || !committed[reader] || !committed[next] {
					continue
				}
				if next == reader {
					continue
				}
				if dep.Reachable(next, reader) {
					return fmt.Errorf("adya: snapshot isolation violated (G-SIb): anti-dependency %v→%v closes a dependency cycle", reader, next)
				}
			}
		}
	}
	return nil
}
