package adya

import (
	"strings"
	"testing"
)

// times builds a TxTimes map from alternating name, begin, commit triples.
func times(items ...any) map[TxKey]TxTimes {
	m := map[TxKey]TxTimes{}
	for i := 0; i < len(items); i += 3 {
		m[tx(items[i].(string))] = TxTimes{Begin: items[i+1].(int), Commit: items[i+2].(int)}
	}
	return m
}

func TestSISerialHistoryPasses(t *testing.T) {
	h := serialHistory() // T1 then T2, T2 reads T1's writes
	tt := times("T1", 0, 1, "T2", 2, 3)
	if err := CheckSI(h, tt); err != nil {
		t.Errorf("serial history rejected under SI: %v", err)
	}
}

func TestSIWriteSkewAllowed(t *testing.T) {
	// The write-skew history from TestWriteSkewG2: two rw edges close the
	// cycle, which SI permits.
	h := &History{
		Committed: []TxKey{tx("T0"), tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T0", 1), w("T2", 2)},
			"y": {w("T0", 2), w("T1", 2)},
		},
		Reads: []Read{
			{From: w("T0", 1), By: tx("T1"), ByPos: 1},
			{From: w("T0", 2), By: tx("T2"), ByPos: 1},
		},
	}
	// T0 commits, then T1 and T2 run concurrently.
	tt := times("T0", 0, 1, "T1", 2, 4, "T2", 3, 5)
	if err := CheckSI(h, tt); err != nil {
		t.Errorf("write skew must be SI-legal: %v", err)
	}
	if err := Check(h, Serializable); err == nil {
		t.Error("write skew accepted as serializable")
	}
}

func TestSIGSIaViolation(t *testing.T) {
	// T2 reads T1's write, but T2 began before T1 committed — the snapshot
	// could not have contained it.
	h := &History{
		Committed: []TxKey{tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1)},
		},
		Reads: []Read{
			{From: w("T1", 1), By: tx("T2"), ByPos: 1},
		},
	}
	tt := times("T1", 0, 3, "T2", 1, 4) // T2 begins at 1 < T1's commit at 3
	err := CheckSI(h, tt)
	if err == nil || !strings.Contains(err.Error(), "G-SIa") {
		t.Errorf("G-SIa violation not caught: %v", err)
	}
	// With T2 beginning after T1's commit the same history is fine.
	if err := CheckSI(h, times("T1", 0, 1, "T2", 2, 3)); err != nil {
		t.Errorf("legal read-after-commit rejected: %v", err)
	}
}

func TestSIGSIbViolation(t *testing.T) {
	// rw edge T1→T2 (T1 read the version T2 overwrote) plus a wr edge T2→T1
	// (T1 also read one of T2's writes): a cycle with exactly one
	// anti-dependency, forbidden by G-SIb.
	h := &History{
		Committed: []TxKey{tx("T0"), tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T0", 1), w("T2", 2)}, // T1 reads x@T0, T2 installs next → rw T1→T2
			"y": {w("T2", 3)},
		},
		Reads: []Read{
			{From: w("T0", 1), By: tx("T1"), ByPos: 1},
			{From: w("T2", 3), By: tx("T1"), ByPos: 2}, // wr T2→T1
		},
	}
	tt := times("T0", 0, 1, "T2", 2, 3, "T1", 4, 5)
	err := CheckSI(h, tt)
	if err == nil || !strings.Contains(err.Error(), "G-SIb") {
		t.Errorf("G-SIb violation not caught: %v", err)
	}
}

func TestSIRequiresTimes(t *testing.T) {
	h := serialHistory()
	if err := CheckSI(h, times("T1", 0, 1)); err == nil {
		t.Error("missing times for a committed transaction accepted")
	}
	if err := CheckSI(h, times("T1", 2, 1, "T2", 3, 4)); err == nil {
		t.Error("commit-before-begin accepted")
	}
}

func TestSIInheritsG1(t *testing.T) {
	// A G1c (wr+ww) cycle must also fail under SI.
	h := &History{
		Committed: []TxKey{tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T2", 2)},
			"y": {w("T2", 1)},
		},
		Reads: []Read{
			{From: w("T2", 1), By: tx("T1"), ByPos: 2},
		},
	}
	tt := times("T1", 0, 1, "T2", 2, 3)
	if err := CheckSI(h, tt); err == nil {
		t.Error("G1c cycle accepted under SI")
	}
}

func TestSIUncommittedIgnored(t *testing.T) {
	// Edges through uncommitted transactions contribute nothing; times for
	// them are not required.
	h := &History{
		Committed: []TxKey{tx("T1")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T9", 2)}, // T9 uncommitted
		},
		Reads: []Read{
			{From: w("T9", 2), By: tx("T9"), ByPos: 3},
		},
	}
	if err := CheckSI(h, times("T1", 0, 1)); err != nil {
		t.Errorf("uncommitted edges should be ignored: %v", err)
	}
}
