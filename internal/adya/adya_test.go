package adya

import (
	"errors"
	"testing"
)

func tx(name string) TxKey { return TxKey{RID: "r", TID: name} }

func w(name string, pos int) Write { return Write{Tx: tx(name), Pos: pos} }

// serialHistory builds T1 then T2 executing serially: T1 writes x,y; T2 reads
// both and overwrites x.
func serialHistory() *History {
	return &History{
		Committed: []TxKey{tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T2", 4)},
			"y": {w("T1", 2)},
		},
		Reads: []Read{
			{From: w("T1", 1), By: tx("T2"), ByPos: 2},
			{From: w("T1", 2), By: tx("T2"), ByPos: 3},
		},
	}
}

func TestSerialHistoryPassesAllLevels(t *testing.T) {
	h := serialHistory()
	for _, lvl := range []Level{ReadUncommitted, ReadCommitted, Serializable} {
		if err := Check(h, lvl); err != nil {
			t.Errorf("%v: serial history rejected: %v", lvl, err)
		}
	}
}

func TestEmptyHistoryPasses(t *testing.T) {
	h := &History{WriteOrderPerKey: map[string][]Write{}}
	for _, lvl := range []Level{ReadUncommitted, ReadCommitted, Serializable} {
		if err := Check(h, lvl); err != nil {
			t.Errorf("%v: empty history rejected: %v", lvl, err)
		}
	}
}

// TestG0DirtyWriteCycle: T1 and T2 interleave their writes to x and y in
// opposite orders — a ww cycle (phenomenon G0) that even read uncommitted
// must reject.
func TestG0DirtyWriteCycle(t *testing.T) {
	h := &History{
		Committed: []TxKey{tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T2", 2)},
			"y": {w("T2", 1), w("T1", 2)},
		},
	}
	for _, lvl := range []Level{ReadUncommitted, ReadCommitted, Serializable} {
		err := Check(h, lvl)
		if err == nil {
			t.Errorf("%v: G0 history accepted", lvl)
			continue
		}
		var viol *ViolationError
		if !errors.As(err, &viol) {
			t.Errorf("%v: error is not a ViolationError: %v", lvl, err)
		}
	}
}

// TestG1cCycle: T1 reads from T2 while T2's write to another key is ordered
// after T1's — a wr+ww cycle (G1c) invisible to read uncommitted but fatal
// at read committed and above.
func TestG1cCycle(t *testing.T) {
	h := &History{
		Committed: []TxKey{tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T2", 2)}, // ww: T1 → T2
			"y": {w("T2", 1)},
		},
		Reads: []Read{
			{From: w("T2", 1), By: tx("T1"), ByPos: 2}, // wr: T2 → T1
		},
	}
	if err := Check(h, ReadUncommitted); err != nil {
		t.Errorf("read uncommitted should tolerate G1c: %v", err)
	}
	if err := Check(h, ReadCommitted); err == nil {
		t.Error("read committed accepted G1c")
	}
	if err := Check(h, Serializable); err == nil {
		t.Error("serializable accepted G1c")
	}
}

// TestWriteSkewG2: the classic write-skew anomaly — T1 reads x writes y, T2
// reads y writes x, both from the initial versions. Only rw (anti-dependency)
// edges close the cycle, so only serializability rejects it.
func TestWriteSkewG2(t *testing.T) {
	init := tx("T0")
	h := &History{
		Committed: []TxKey{init, tx("T1"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T0", 1), w("T2", 2)},
			"y": {w("T0", 2), w("T1", 2)},
		},
		Reads: []Read{
			{From: w("T0", 1), By: tx("T1"), ByPos: 1}, // T1 reads x@T0; T2 installs next x ⇒ rw T1→T2
			{From: w("T0", 2), By: tx("T2"), ByPos: 1}, // T2 reads y@T0; T1 installs next y ⇒ rw T2→T1
		},
	}
	if err := Check(h, ReadUncommitted); err != nil {
		t.Errorf("read uncommitted should accept write skew: %v", err)
	}
	if err := Check(h, ReadCommitted); err != nil {
		t.Errorf("read committed should accept write skew: %v", err)
	}
	if err := Check(h, Serializable); err == nil {
		t.Error("serializable accepted write skew (G2)")
	}
}

// TestUncommittedTransactionsExcluded: edges to or from uncommitted
// transactions must not appear in the DSG.
func TestUncommittedTransactionsExcluded(t *testing.T) {
	h := &History{
		Committed: []TxKey{tx("T1")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T2", 2)}, // T2 never committed
			"y": {w("T2", 1), w("T1", 2)},
		},
	}
	if err := Check(h, Serializable); err != nil {
		t.Errorf("cycle through uncommitted transaction should not count: %v", err)
	}
	dg := DSG(h, Serializable)
	if dg.NumNodes() != 1 {
		t.Errorf("DSG nodes = %d, want 1 (committed only)", dg.NumNodes())
	}
}

// TestSelfEdgesSkipped: a transaction overwriting its own version or reading
// its own write contributes no edge.
func TestSelfEdgesSkipped(t *testing.T) {
	h := &History{
		Committed: []TxKey{tx("T1")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T1", 3)},
		},
		Reads: []Read{
			{From: w("T1", 1), By: tx("T1"), ByPos: 2},
		},
	}
	dg := DSG(h, Serializable)
	if dg.NumEdges() != 0 {
		t.Errorf("self edges present: %d", dg.NumEdges())
	}
}

// TestRWEdgeOnlyForCommittedReaders: an uncommitted reader must not induce
// anti-dependency edges.
func TestRWEdgeOnlyForCommittedReaders(t *testing.T) {
	h := &History{
		Committed: []TxKey{tx("T0"), tx("T2")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T0", 1), w("T2", 1)},
		},
		Reads: []Read{
			{From: w("T0", 1), By: tx("T1"), ByPos: 1}, // T1 uncommitted
		},
	}
	dg := DSG(h, Serializable)
	// Only the ww edge T0→T2 should exist.
	if dg.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", dg.NumEdges())
	}
}

func TestThreeTxSerializableChain(t *testing.T) {
	h := &History{
		Committed: []TxKey{tx("T1"), tx("T2"), tx("T3")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T2", 1), w("T3", 1)},
		},
		Reads: []Read{
			{From: w("T1", 1), By: tx("T2"), ByPos: 2},
			{From: w("T2", 1), By: tx("T3"), ByPos: 2},
		},
	}
	if err := Check(h, Serializable); err != nil {
		t.Errorf("serial chain rejected: %v", err)
	}
}

func TestThreeTxCycle(t *testing.T) {
	// T1 → T2 (ww on x), T2 → T3 (wr on y), T3 → T1 (rw on z).
	h := &History{
		Committed: []TxKey{tx("T1"), tx("T2"), tx("T3")},
		WriteOrderPerKey: map[string][]Write{
			"x": {w("T1", 1), w("T2", 2)},
			"y": {w("T2", 1)},
			"z": {w("T0", 1), w("T1", 2)},
		},
		Reads: []Read{
			{From: w("T2", 1), By: tx("T3"), ByPos: 1}, // wr T2→T3
			{From: w("T0", 1), By: tx("T3"), ByPos: 2}, // T3 reads z@T0, T1 installs next ⇒ rw T3→T1
		},
	}
	if err := Check(h, Serializable); err == nil {
		t.Error("three-transaction G2 cycle accepted")
	}
	if err := Check(h, ReadCommitted); err != nil {
		t.Errorf("read committed should accept (cycle needs rw): %v", err)
	}
}

func TestLevelString(t *testing.T) {
	if ReadUncommitted.String() == "" || ReadCommitted.String() == "" || Serializable.String() == "" {
		t.Error("empty level strings")
	}
	if Level(99).String() == "" {
		t.Error("unknown level should still render")
	}
}

func TestViolationErrorMessage(t *testing.T) {
	err := &ViolationError{Level: Serializable, Cycle: []TxKey{tx("T1"), tx("T2"), tx("T1")}}
	if err.Error() == "" {
		t.Error("empty violation message")
	}
}
