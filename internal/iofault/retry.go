package iofault

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"syscall"
	"time"
)

// Class sorts an I/O error into the degradation ladder's rungs (DESIGN.md
// §11): retry it, degrade around it, or halt on it.
type Class int

const (
	// ClassPermanent: retrying the same operation cannot help. The caller
	// must fail the operation and let the layer above decide (supervisor
	// restart, loud error).
	ClassPermanent Class = iota
	// ClassTransient: the identical operation may succeed if re-issued —
	// EIO on a read path, EINTR, EAGAIN, an injected transient fault.
	ClassTransient
	// ClassDegraded: resource exhaustion (ENOSPC, EDQUOT). Retrying is
	// futile until an operator intervenes, but the pipeline can keep its
	// trusted trace flowing and seal epochs flagged degraded.
	ClassDegraded
)

func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassDegraded:
		return "degraded"
	default:
		return "permanent"
	}
}

// Classify maps an error to its ladder rung. An injected *FaultError
// carries its own transience; for real errnos, EIO/EINTR/EAGAIN/timeouts
// are transient and ENOSPC/EDQUOT degrade. Anything else — including nil —
// is permanent: retrying cannot change a nil error, and an unknown failure
// must surface rather than spin.
func Classify(err error) Class {
	if err == nil {
		return ClassPermanent
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		if fe.Transient {
			return ClassTransient
		}
		if errors.Is(fe.Err, syscall.ENOSPC) || errors.Is(fe.Err, syscall.EDQUOT) {
			return ClassDegraded
		}
		return ClassPermanent
	}
	switch {
	case errors.Is(err, syscall.ENOSPC), errors.Is(err, syscall.EDQUOT):
		return ClassDegraded
	case errors.Is(err, syscall.EIO), errors.Is(err, syscall.EINTR),
		errors.Is(err, syscall.EAGAIN), errors.Is(err, syscall.ETIMEDOUT),
		errors.Is(err, os.ErrDeadlineExceeded):
		return ClassTransient
	}
	return ClassPermanent
}

// Backoff bounds a retry loop: exponential delay from Base doubling up to
// Max, at most Attempts tries, with jitter in [delay/2, delay] so retriers
// that share a fault do not stampede in phase. Sleeping never affects
// verdicts, so the jitter needs no seed.
type Backoff struct {
	// Base is the first delay (default 2ms).
	Base time.Duration
	// Max caps the delay (default 100ms).
	Max time.Duration
	// Attempts is the total number of tries including the first (default 6).
	Attempts int
	// Sleep replaces time.Sleep in tests; nil uses the real clock.
	Sleep func(time.Duration)
}

// WithDefaults returns the backoff with zero-valued fields filled in.
func (b Backoff) WithDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 2 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Attempts <= 0 {
		b.Attempts = 6
	}
	if b.Sleep == nil {
		b.Sleep = time.Sleep
	}
	return b
}

// Retry runs op, re-issuing it with backoff while the error classifies
// transient. It returns nil on success, the first non-transient error
// immediately, or the last transient error once attempts are exhausted.
// The context is only polled between attempts; a cancelled context returns
// the context's error wrapped around the last I/O error.
func Retry(ctx context.Context, b Backoff, op func() error) error {
	b = b.WithDefaults()
	var err error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if err = op(); err == nil || Classify(err) != ClassTransient {
			return err
		}
		if attempt == b.Attempts-1 {
			break
		}
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return errors.Join(cerr, err)
			}
		}
		delay := b.Base << attempt
		if delay > b.Max {
			delay = b.Max
		}
		delay = delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		b.Sleep(delay)
	}
	return err
}
