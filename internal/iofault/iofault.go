// Package iofault is the pipeline's injectable I/O layer: a minimal VFS
// abstraction (FS/File) covering exactly the filesystem calls the evidence
// path makes — open, read, write, fsync, rename, readdir, stat, truncate,
// remove, mkdir, directory fsync — with an OS backend and an Injector that
// wraps any backend with deterministic, seedable fault operators.
//
// The operator catalogue mirrors internal/faultinject's "op:seed" spec
// style, but where faultinject corrupts the *untrusted advice*, iofault
// breaks the *infrastructure underneath the trusted trace*: transient EIO,
// short writes, fsync failures, rename failures, ENOSPC, latency. The
// invariant the chaos harness uses this package to enforce is the dual of
// faultinject's: an infrastructure fault must never surface as a false
// reject or a dead pipeline — it is retried (transient), degraded around
// (disk full, advice outage), or halts loudly (permanent) per the ladder in
// DESIGN.md §11.
//
// Every armed operator fires on a deterministic schedule derived from its
// seed and the sequence of matching calls, so a chaos scenario replayed
// with the same seed injects byte-identical fault histories.
package iofault

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// FS is the filesystem surface the pipeline writes evidence through.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so freshly created or renamed entries are
	// durable (a no-op error on filesystems that do not support it).
	SyncDir(dir string) error
}

// File is an open file handle on the write path.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the passthrough backend: the real filesystem, no faults.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Call names one VFS entry point; operators declare which calls they
// intercept, and the Injector counts every call by this name.
type Call string

const (
	CallOpen     Call = "open"
	CallRead     Call = "read"
	CallWrite    Call = "write"
	CallSync     Call = "sync"
	CallSyncDir  Call = "syncdir"
	CallRename   Call = "rename"
	CallReadDir  Call = "readdir"
	CallRemove   Call = "remove"
	CallTruncate Call = "truncate"
	CallStat     Call = "stat"
	CallMkdir    Call = "mkdir"
)

// FaultError is an injected failure. Transient tells the Classify/Retry
// layer whether re-issuing the operation may succeed.
type FaultError struct {
	Op        string // operator name
	Call      Call   // intercepted VFS call
	Path      string
	Transient bool
	Err       error // underlying errno (syscall.EIO, syscall.ENOSPC, ...)
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("iofault: %s on %s %s: %v", e.Op, e.Call, e.Path, e.Err)
}
func (e *FaultError) Unwrap() error { return e.Err }

// Operator names. Each models one infrastructure failure class.
const (
	// OpTransientEIO fails open/read/readdir/stat/write calls with EIO;
	// the identical retried call succeeds once the schedule is consumed.
	OpTransientEIO = "transient-eio"
	// OpShortWrite lands a prefix of the buffer and fails the rest (torn
	// write: the frame CRC layer must truncate it on recovery).
	OpShortWrite = "short-write"
	// OpFsyncFail fails Sync and SyncDir. Not transient: after a failed
	// fsync the kernel may have dropped the dirty pages, so blind re-sync
	// is unsound — callers must rewrite the data or abort the seal.
	OpFsyncFail = "fsync-fail"
	// OpRenameFail fails Rename with EIO (transient).
	OpRenameFail = "rename-fail"
	// OpENOSPC fails write-side calls with ENOSPC until healed: the
	// degradation ladder, not the retry loop, must absorb it.
	OpENOSPC = "enospc"
	// OpLatency sleeps 1–4ms on every matching call without erroring.
	OpLatency = "latency"
)

// operatorCalls maps each operator to the calls it intercepts.
var operatorCalls = map[string][]Call{
	OpTransientEIO: {CallOpen, CallRead, CallReadDir, CallStat, CallWrite},
	OpShortWrite:   {CallWrite},
	OpFsyncFail:    {CallSync, CallSyncDir},
	OpRenameFail:   {CallRename},
	OpENOSPC:       {CallWrite, CallMkdir},
	OpLatency: {CallOpen, CallRead, CallWrite, CallSync, CallSyncDir, CallRename,
		CallReadDir, CallRemove, CallTruncate, CallStat, CallMkdir},
}

// Names lists the operator catalogue, sorted.
func Names() []string {
	names := make([]string, 0, len(operatorCalls))
	for name := range operatorCalls {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ArmConfig schedules one armed operator.
type ArmConfig struct {
	// Seed derives the gaps between fires; 0 fires on consecutive matching
	// calls.
	Seed int64
	// Times bounds total fires: 0 means 1, negative means until Heal.
	Times int
	// After lets this many matching calls through before the schedule
	// starts (deterministic offset for precision tests).
	After int
	// PathContains restricts matching to paths containing the substring
	// ("" matches everything).
	PathContains string
}

// ParseSpec parses an "op", "op:seed", or "op:seed:times" spec.
func ParseSpec(spec string) (string, ArmConfig, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	if _, ok := operatorCalls[name]; !ok {
		return "", ArmConfig{}, fmt.Errorf("iofault: unknown operator %q (have %s)", name, strings.Join(Names(), ", "))
	}
	var cfg ArmConfig
	if len(parts) > 3 {
		return "", ArmConfig{}, fmt.Errorf("iofault: bad spec %q: want op[:seed[:times]]", spec)
	}
	if len(parts) >= 2 {
		seed, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return "", ArmConfig{}, fmt.Errorf("iofault: bad seed in spec %q: %v", spec, err)
		}
		cfg.Seed = seed
	}
	if len(parts) == 3 {
		times, err := strconv.Atoi(parts[2])
		if err != nil {
			return "", ArmConfig{}, fmt.Errorf("iofault: bad times in spec %q: %v", spec, err)
		}
		cfg.Times = times
	}
	return name, cfg, nil
}

// armed is one scheduled operator instance.
type armed struct {
	name      string
	cfg       ArmConfig
	r         *rand.Rand
	calls     map[Call]bool
	remaining int // fires left; -1 = unbounded
	skip      int // matching calls to let through before the next fire
	fired     int
}

func (a *armed) matches(call Call, path string) bool {
	if !a.calls[call] {
		return false
	}
	return a.cfg.PathContains == "" || strings.Contains(path, a.cfg.PathContains)
}

// next consumes one matching call and reports whether the operator fires.
func (a *armed) next() bool {
	if a.remaining == 0 {
		return false
	}
	if a.skip > 0 {
		a.skip--
		return false
	}
	if a.remaining > 0 {
		a.remaining--
	}
	a.fired++
	if a.r != nil {
		a.skip = a.r.Intn(3)
	}
	return true
}

// Injector wraps a backend FS with armed fault operators. It is safe for
// concurrent use; the fault schedule is serialized under one mutex, so a
// single-threaded caller sees a fully deterministic fault history.
type Injector struct {
	base FS

	mu      sync.Mutex
	armedO  []*armed
	counts  map[Call]int
	retired map[string]int // fire counts of healed operators
}

// NewInjector wraps base (OS when nil) with an empty fault plan.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{base: base, counts: make(map[Call]int)}
}

// Arm schedules one operator. Unknown names error; arming is additive.
func (in *Injector) Arm(name string, cfg ArmConfig) error {
	calls, ok := operatorCalls[name]
	if !ok {
		return fmt.Errorf("iofault: unknown operator %q (have %s)", name, strings.Join(Names(), ", "))
	}
	a := &armed{name: name, cfg: cfg, calls: make(map[Call]bool, len(calls))}
	for _, c := range calls {
		a.calls[c] = true
	}
	a.remaining = cfg.Times
	if cfg.Times == 0 {
		a.remaining = 1
	}
	a.skip = cfg.After
	if cfg.Seed != 0 {
		a.r = rand.New(rand.NewSource(cfg.Seed))
		a.skip += a.r.Intn(3)
	}
	in.mu.Lock()
	in.armedO = append(in.armedO, a)
	in.mu.Unlock()
	return nil
}

// ArmSpec arms from an "op[:seed[:times]]" spec with an optional path
// filter.
func (in *Injector) ArmSpec(spec, pathContains string) error {
	name, cfg, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	cfg.PathContains = pathContains
	if name == OpLatency && cfg.Times == 0 {
		cfg.Times = -1 // a single 1–4ms sleep is not a scenario
	}
	return in.Arm(name, cfg)
}

// Heal disarms every operator: the fault condition is over. Counters
// survive.
func (in *Injector) Heal() {
	in.mu.Lock()
	for _, a := range in.armedO {
		if in.retired == nil {
			in.retired = make(map[string]int)
		}
		in.retired[a.name] += a.fired
	}
	in.armedO = nil
	in.mu.Unlock()
}

// Counts returns how many calls of each kind the injector has seen
// (faulted or not), for assertions like "the checkpoint writer fsyncs its
// directory".
func (in *Injector) Counts() map[Call]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Call]int, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}

// Fired returns fire counts by operator name, armed and healed alike.
func (in *Injector) Fired() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int)
	for _, a := range in.armedO {
		out[a.name] += a.fired
	}
	for name, n := range in.retired {
		out[name] += n
	}
	return out
}

// fault consults the schedule for one call and returns the injected error
// (nil to proceed). Latency sleeps here; short writes are handled by the
// caller via the returned *FaultError with Op == OpShortWrite.
func (in *Injector) fault(call Call, path string) *FaultError {
	in.mu.Lock()
	in.counts[call]++
	var hit *armed
	for _, a := range in.armedO {
		if a.matches(call, path) && a.next() {
			hit = a
			break
		}
	}
	in.mu.Unlock()
	if hit == nil {
		return nil
	}
	switch hit.name {
	case OpLatency:
		d := time.Millisecond
		if hit.r != nil {
			d = time.Duration(1+hit.r.Intn(4)) * time.Millisecond
		}
		time.Sleep(d)
		return nil
	case OpTransientEIO, OpRenameFail:
		return &FaultError{Op: hit.name, Call: call, Path: path, Transient: true, Err: syscall.EIO}
	case OpShortWrite:
		return &FaultError{Op: hit.name, Call: call, Path: path, Transient: true, Err: io.ErrShortWrite}
	case OpFsyncFail:
		return &FaultError{Op: hit.name, Call: call, Path: path, Err: syscall.EIO}
	case OpENOSPC:
		return &FaultError{Op: hit.name, Call: call, Path: path, Err: syscall.ENOSPC}
	}
	return nil
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if fe := in.fault(CallOpen, name); fe != nil {
		return nil, fe
	}
	f, err := in.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, name: name}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if fe := in.fault(CallRead, name); fe != nil {
		return nil, fe
	}
	return in.base.ReadFile(name)
}

func (in *Injector) WriteFile(name string, data []byte, perm os.FileMode) error {
	if fe := in.fault(CallWrite, name); fe != nil {
		if fe.Op == OpShortWrite && len(data) > 0 {
			_ = in.base.WriteFile(name, data[:len(data)/2], perm)
		}
		return fe
	}
	return in.base.WriteFile(name, data, perm)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if fe := in.fault(CallReadDir, name); fe != nil {
		return nil, fe
	}
	return in.base.ReadDir(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if fe := in.fault(CallRename, oldpath); fe != nil {
		return fe
	}
	return in.base.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if fe := in.fault(CallRemove, name); fe != nil {
		return fe
	}
	return in.base.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if fe := in.fault(CallTruncate, name); fe != nil {
		return fe
	}
	return in.base.Truncate(name, size)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if fe := in.fault(CallStat, name); fe != nil {
		return nil, fe
	}
	return in.base.Stat(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if fe := in.fault(CallMkdir, path); fe != nil {
		return fe
	}
	return in.base.MkdirAll(path, perm)
}

func (in *Injector) SyncDir(dir string) error {
	if fe := in.fault(CallSyncDir, dir); fe != nil {
		return fe
	}
	return in.base.SyncDir(dir)
}

// injFile threads writes and syncs of an open handle back through the
// injector's schedule.
type injFile struct {
	in   *Injector
	f    File
	name string
}

func (p *injFile) Write(b []byte) (int, error) {
	if fe := p.in.fault(CallWrite, p.name); fe != nil {
		if fe.Op == OpShortWrite && len(b) > 0 {
			n, _ := p.f.Write(b[:len(b)/2])
			return n, fe
		}
		return 0, fe
	}
	return p.f.Write(b)
}

func (p *injFile) Sync() error {
	if fe := p.in.fault(CallSync, p.name); fe != nil {
		return fe
	}
	return p.f.Sync()
}

func (p *injFile) Close() error { return p.f.Close() }
