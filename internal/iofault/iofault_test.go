package iofault

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestPassthroughAndCounts: an injector with no armed operators behaves
// like the OS and counts every call.
func TestPassthroughAndCounts(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	p := filepath.Join(dir, "a")
	if err := in.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := in.ReadFile(p)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := in.Rename(p, p+"2"); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	c := in.Counts()
	for _, call := range []Call{CallWrite, CallRead, CallRename, CallSyncDir} {
		if c[call] != 1 {
			t.Errorf("count[%s] = %d, want 1", call, c[call])
		}
	}
}

// TestTransientEIOFiresThenHeals: a Times-bounded transient operator fails
// exactly that many matching calls and then lets the retried call through.
func TestTransientEIOFiresThenHeals(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(nil)
	if err := in.Arm(OpTransientEIO, ArmConfig{Times: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, err := in.ReadFile(p)
		if Classify(err) != ClassTransient {
			t.Fatalf("read %d: err %v classifies %v, want transient", i, err, Classify(err))
		}
		if !errors.Is(err, syscall.EIO) {
			t.Fatalf("read %d: %v does not unwrap to EIO", i, err)
		}
	}
	if _, err := in.ReadFile(p); err != nil {
		t.Fatalf("read after schedule consumed: %v", err)
	}
	if in.Fired()[OpTransientEIO] != 2 {
		t.Fatalf("fired = %v, want transient-eio:2", in.Fired())
	}
}

// TestDeterministicSchedule: two injectors armed from the same spec fire
// on the same call indices.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		p := filepath.Join(dir, "a")
		os.WriteFile(p, []byte("x"), 0o644)
		in := NewInjector(nil)
		if err := in.ArmSpec("transient-eio:12345:5", ""); err != nil {
			t.Fatal(err)
		}
		var fires []bool
		for i := 0; i < 30; i++ {
			_, err := in.ReadFile(p)
			fires = append(fires, err != nil)
		}
		return fires
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d: %v vs %v", i, a, b)
		}
	}
}

// TestShortWriteLandsPrefix: the short-write operator tears the buffer —
// a prefix reaches the file, the call errors transient.
func TestShortWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	in := NewInjector(nil)
	if err := in.Arm(OpShortWrite, ArmConfig{Times: 1, After: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := in.OpenFile(p, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	n, err := f.Write([]byte("bbbb"))
	if err == nil || Classify(err) != ClassTransient {
		t.Fatalf("second write: n=%d err=%v, want transient fault", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(p)
	if string(got) != "aaaa"+"bb" {
		t.Fatalf("file = %q, want torn prefix aaaabb", got)
	}
}

// TestENOSPCClassifiesDegraded: disk-full faults are not retryable; they
// degrade.
func TestENOSPCClassifiesDegraded(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	if err := in.Arm(OpENOSPC, ArmConfig{Times: -1, PathContains: ".advice"}); err != nil {
		t.Fatal(err)
	}
	err := in.WriteFile(filepath.Join(dir, "ep1.advice"), []byte("x"), 0o644)
	if Classify(err) != ClassDegraded {
		t.Fatalf("advice write err %v classifies %v, want degraded", err, Classify(err))
	}
	// The path filter protects the trusted channel.
	if err := in.WriteFile(filepath.Join(dir, "ep1.trace"), []byte("x"), 0o644); err != nil {
		t.Fatalf("trace write should pass the .advice filter: %v", err)
	}
	in.Heal()
	if err := in.WriteFile(filepath.Join(dir, "ep2.advice"), []byte("x"), 0o644); err != nil {
		t.Fatalf("write after Heal: %v", err)
	}
	if in.Fired()[OpENOSPC] != 1 {
		t.Fatalf("fired = %v, want enospc:1 surviving Heal", in.Fired())
	}
}

// TestRetryAbsorbsTransients: Retry re-issues through a transient schedule
// and succeeds without surfacing the fault.
func TestRetryAbsorbsTransients(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a")
	os.WriteFile(p, []byte("x"), 0o644)
	in := NewInjector(nil)
	if err := in.Arm(OpTransientEIO, ArmConfig{Times: 3}); err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	b := Backoff{Base: time.Millisecond, Attempts: 5, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	err := Retry(context.Background(), b, func() error {
		_, err := in.ReadFile(p)
		return err
	})
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
}

// TestRetryStopsOnPermanent: non-transient errors return immediately.
func TestRetryStopsOnPermanent(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Sleep: func(time.Duration) {}}, func() error {
		calls++
		return os.ErrPermission
	})
	if !errors.Is(err, os.ErrPermission) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want ErrPermission after 1 call", err, calls)
	}
}

// TestRetryExhaustsAttempts: a fault outlasting the budget surfaces as the
// last transient error.
func TestRetryExhaustsAttempts(t *testing.T) {
	in := NewInjector(nil)
	if err := in.Arm(OpTransientEIO, ArmConfig{Times: -1}); err != nil {
		t.Fatal(err)
	}
	err := Retry(context.Background(), Backoff{Attempts: 3, Sleep: func(time.Duration) {}}, func() error {
		_, err := in.ReadFile("nowhere")
		return err
	})
	if Classify(err) != ClassTransient {
		t.Fatalf("exhausted retry returned %v, want the transient fault", err)
	}
	if in.Fired()[OpTransientEIO] != 3 {
		t.Fatalf("fired %v, want 3 attempts", in.Fired())
	}
}

// TestParseSpec covers the accepted spec grammar and its failure modes.
func TestParseSpec(t *testing.T) {
	name, cfg, err := ParseSpec("enospc:9:-1")
	if err != nil || name != OpENOSPC || cfg.Seed != 9 || cfg.Times != -1 {
		t.Fatalf("ParseSpec(enospc:9:-1) = %s %+v %v", name, cfg, err)
	}
	if _, _, err := ParseSpec("no-such-op:1"); err == nil {
		t.Fatal("unknown operator accepted")
	}
	if _, _, err := ParseSpec("enospc:x"); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, _, err := ParseSpec("enospc:1:2:3"); err == nil {
		t.Fatal("over-long spec accepted")
	}
}

// TestFsyncFailNotTransient: failed fsync must not be blindly retried —
// the classification makes Retry surface it at once.
func TestFsyncFailNotTransient(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	if err := in.Arm(OpFsyncFail, ArmConfig{Times: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := in.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	serr := f.Sync()
	if serr == nil || Classify(serr) != ClassPermanent {
		t.Fatalf("injected fsync failure %v classifies %v, want permanent", serr, Classify(serr))
	}
}
