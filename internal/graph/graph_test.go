package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := New[int]()
	if g.HasCycle() {
		t.Error("empty graph reported cyclic")
	}
	if order, ok := g.TopoSort(); !ok || len(order) != 0 {
		t.Error("empty graph toposort failed")
	}
}

func TestSingleNodeNoCycle(t *testing.T) {
	g := New[string]()
	g.AddNode("a")
	if g.HasCycle() {
		t.Error("single node reported cyclic")
	}
	if g.NumNodes() != 1 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
}

func TestSelfLoop(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 1)
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("self loop not detected")
	}
	if cycle[0] != cycle[len(cycle)-1] {
		t.Error("cycle should start and end at the same node")
	}
}

func TestChainAcyclic(t *testing.T) {
	g := New[int]()
	for i := 0; i < 100; i++ {
		g.AddEdge(i, i+1)
	}
	if g.HasCycle() {
		t.Error("chain reported cyclic")
	}
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("chain toposort failed")
	}
	pos := make(map[int]int)
	for i, n := range order {
		pos[n] = i
	}
	for i := 0; i < 100; i++ {
		if pos[i] > pos[i+1] {
			t.Fatalf("toposort violates edge %d→%d", i, i+1)
		}
	}
}

func TestTwoNodeCycle(t *testing.T) {
	g := New[string]()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	if !g.HasCycle() {
		t.Error("2-cycle not detected")
	}
	if _, ok := g.TopoSort(); ok {
		t.Error("toposort of cyclic graph should fail")
	}
}

func TestLongCycleThroughDAGPortion(t *testing.T) {
	g := New[int]()
	// A diamond DAG plus a back edge deep in the graph.
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	if g.HasCycle() {
		t.Fatal("diamond DAG reported cyclic")
	}
	g.AddEdge(5, 1)
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("cycle via back edge not detected")
	}
	// Verify the returned cycle is a real cycle: consecutive edges exist.
	for i := 0; i+1 < len(cycle); i++ {
		if !g.HasEdge(cycle[i], cycle[i+1]) {
			t.Errorf("reported cycle uses missing edge %v→%v", cycle[i], cycle[i+1])
		}
	}
}

func TestParallelEdges(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (parallel edges kept)", g.NumEdges())
	}
	if g.HasCycle() {
		t.Error("parallel edges are not a cycle")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Error("HasEdge wrong")
	}
}

func TestReachable(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	if !g.Reachable(1, 3) {
		t.Error("1 should reach 3")
	}
	if g.Reachable(3, 1) {
		t.Error("3 should not reach 1")
	}
	if g.Reachable(1, 5) {
		t.Error("1 should not reach 5")
	}
	// Reachability requires a non-empty path: a node with no self loop does
	// not reach itself.
	if g.Reachable(1, 1) {
		t.Error("1 should not trivially reach itself")
	}
	g.AddEdge(3, 1)
	if !g.Reachable(1, 1) {
		t.Error("1 should reach itself around the cycle")
	}
}

func TestDeepGraphNoStackOverflow(t *testing.T) {
	// A recursive DFS would blow the stack on a million-node chain; the
	// iterative one must not.
	g := New[int]()
	const n = 1_000_000
	for i := 0; i < n; i++ {
		g.AddEdge(i, i+1)
	}
	if g.HasCycle() {
		t.Error("long chain reported cyclic")
	}
	g.AddEdge(n, 0)
	if !g.HasCycle() {
		t.Error("long cycle not detected")
	}
}

func TestSucc(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	if len(g.Succ(1)) != 2 {
		t.Errorf("Succ(1) = %v", g.Succ(1))
	}
	if len(g.Succ(2)) != 0 {
		t.Errorf("Succ(2) = %v", g.Succ(2))
	}
}

func TestNodes(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddNode(7)
	nodes := g.Nodes()
	if len(nodes) != 3 {
		t.Errorf("Nodes = %v", nodes)
	}
}

// TestQuickRandomDAGIsAcyclic: edges only from lower to higher indices can
// never form a cycle, and a topological order always exists.
func TestQuickRandomDAGIsAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := New[int]()
		for i := 0; i < n; i++ {
			g.AddNode(i)
		}
		for e := 0; e < n*2; e++ {
			a, b := r.Intn(n), r.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			g.AddEdge(a, b)
		}
		if g.HasCycle() {
			return false
		}
		order, ok := g.TopoSort()
		if !ok || len(order) != n {
			return false
		}
		pos := make(map[int]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, from := range g.Nodes() {
			for _, to := range g.Succ(from) {
				if pos[from] > pos[to] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickPlantedCycleIsFound: planting a random directed cycle into a
// random graph must always be detected, and the reported cycle must be real.
func TestQuickPlantedCycleIsFound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		g := New[int]()
		for e := 0; e < n; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		// Plant a cycle over a random subset.
		k := 2 + r.Intn(n-2)
		perm := r.Perm(n)[:k]
		for i := 0; i < k; i++ {
			g.AddEdge(perm[i], perm[(i+1)%k])
		}
		cycle := g.FindCycle()
		if cycle == nil {
			return false
		}
		if cycle[0] != cycle[len(cycle)-1] || len(cycle) < 2 {
			return false
		}
		for i := 0; i+1 < len(cycle); i++ {
			if !g.HasEdge(cycle[i], cycle[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCycleDetectMatchesNaive compares against a naive O(n·m)
// reachability-based cycle check on small random graphs.
func TestQuickCycleDetectMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		g := New[int]()
		for i := 0; i < n; i++ {
			g.AddNode(i)
		}
		m := r.Intn(2 * n)
		for e := 0; e < m; e++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		naiveCyclic := false
		for i := 0; i < n; i++ {
			if g.Reachable(i, i) {
				naiveCyclic = true
				break
			}
		}
		return naiveCyclic == g.HasCycle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
