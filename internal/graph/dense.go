// Dense is the allocation-lean sibling of Graph for the verifier's hot path:
// nodes are uint32 IDs assigned by the caller from a layout computed up-front
// (trace length + opcount totals), so presence is a bitmap and the edge list
// is one flat []uint32 — no per-node map entries, no per-node slice headers.
// Traversals (cycle check, topological sort, reachability) build a CSR index
// on demand with a stable counting sort, so successor order — and therefore
// every reported cycle — is the edge-insertion order, exactly like Graph.
package graph

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
)

// Dense is a directed graph over dense uint32 node IDs. The zero value is
// usable; NewDense pre-sizes it. Like Graph, adding an edge implicitly adds
// its endpoints and parallel edges are kept as-is.
type Dense struct {
	present []uint64 // bitmap over IDs; bit set ⇔ node added
	nodes   int
	pairs   []uint32 // edges, interleaved from,to — insertion order
}

// NewDense returns a graph pre-sized for IDs in [0, capacity).
func NewDense(capacity int) *Dense {
	d := &Dense{}
	d.Grow(capacity)
	d.pairs = make([]uint32, 0, 4*capacity)
	return d
}

// Capacity returns the exclusive upper bound on IDs addable without growing.
func (d *Dense) Capacity() int { return len(d.present) * 64 }

// Grow extends the ID space to at least capacity.
func (d *Dense) Grow(capacity int) {
	words := (capacity + 63) / 64
	if words <= len(d.present) {
		return
	}
	p := make([]uint64, words)
	copy(p, d.present)
	d.present = p
}

// AddNode ensures id is present (possibly with no edges).
func (d *Dense) AddNode(id uint32) {
	w := int(id >> 6)
	if w >= len(d.present) {
		d.Grow(int(id) + 1)
	}
	bit := uint64(1) << (id & 63)
	if d.present[w]&bit == 0 {
		d.present[w] |= bit
		d.nodes++
	}
}

// HasNode reports whether id has been added.
func (d *Dense) HasNode(id uint32) bool {
	w := int(id >> 6)
	return w < len(d.present) && d.present[w]&(1<<(id&63)) != 0
}

// AddEdge inserts the directed edge from→to, adding both endpoints if needed.
func (d *Dense) AddEdge(from, to uint32) {
	d.AddNode(from)
	d.AddNode(to)
	d.pairs = append(d.pairs, from, to)
}

// AddEdges appends a batch of interleaved from,to pairs (len(pairs) even),
// adding endpoints as needed. This is the merge path for shard buffers.
func (d *Dense) AddEdges(pairs []uint32) {
	for i := 0; i < len(pairs); i += 2 {
		d.AddNode(pairs[i])
		d.AddNode(pairs[i+1])
	}
	d.pairs = append(d.pairs, pairs...)
}

// NumNodes returns the number of nodes.
func (d *Dense) NumNodes() int { return d.nodes }

// NumEdges returns the number of edges, counting duplicates.
func (d *Dense) NumEdges() int { return len(d.pairs) / 2 }

// HasEdge reports whether the directed edge from→to is present. It scans the
// flat edge list; it exists for tests, not for hot paths.
func (d *Dense) HasEdge(from, to uint32) bool {
	for i := 0; i < len(d.pairs); i += 2 {
		if d.pairs[i] == from && d.pairs[i+1] == to {
			return true
		}
	}
	return false
}

// EachNode calls fn for every node in ascending ID order.
func (d *Dense) EachNode(fn func(id uint32)) {
	for w, word := range d.present {
		for word != 0 {
			id := uint32(w<<6) + uint32(bits.TrailingZeros64(word))
			fn(id)
			word &= word - 1
		}
	}
}

// EachEdge calls fn for every edge in insertion order.
func (d *Dense) EachEdge(fn func(from, to uint32)) {
	for i := 0; i < len(d.pairs); i += 2 {
		fn(d.pairs[i], d.pairs[i+1])
	}
}

// csr is the compressed-sparse-row index over pairs: succ[start[v]:start[v+1]]
// are v's successors in edge-insertion order.
type csr struct {
	start []uint32 // len = maxID+2
	succ  []uint32
}

// buildCSR indexes the current edge list with a stable counting sort. O(V+E),
// two passes, no per-node allocation.
func (d *Dense) buildCSR() csr {
	maxID := uint32(0)
	if n := d.Capacity(); n > 0 {
		maxID = uint32(n - 1)
	}
	start := make([]uint32, int(maxID)+2)
	for i := 0; i < len(d.pairs); i += 2 {
		start[d.pairs[i]+1]++
	}
	for i := 1; i < len(start); i++ {
		start[i] += start[i-1]
	}
	succ := make([]uint32, len(d.pairs)/2)
	fill := make([]uint32, len(start))
	copy(fill, start)
	for i := 0; i < len(d.pairs); i += 2 {
		from, to := d.pairs[i], d.pairs[i+1]
		succ[fill[from]] = to
		fill[from]++
	}
	return csr{start: start, succ: succ}
}

// FindCycle returns a cycle as an ID sequence (first == last) if the graph is
// cyclic, and nil otherwise. Detection is an iterative three-color DFS over
// the CSR arrays; roots are visited in ascending ID order, so the reported
// cycle is a pure function of the edge set.
func (d *Dense) FindCycle() []uint32 {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	g := d.buildCSR()
	n := len(g.start) - 1
	color := make([]int8, n)
	parent := make([]uint32, n)

	type frame struct {
		node uint32
		next uint32
	}
	var stack []frame
	var cyc []uint32
	d.EachNode(func(root uint32) {
		if cyc != nil || color[root] != white {
			return
		}
		stack = append(stack[:0], frame{node: root})
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			lo, hi := g.start[f.node], g.start[f.node+1]
			if i := lo + f.next; i < hi {
				child := g.succ[i]
				f.next++
				switch color[child] {
				case white:
					color[child] = gray
					parent[child] = f.node
					stack = append(stack, frame{node: child})
				case gray:
					// Back edge f.node→child: reconstruct the cycle.
					cyc = []uint32{child}
					for v := f.node; ; v = parent[v] {
						cyc = append(cyc, v)
						if v == child {
							break
						}
					}
					reverse(cyc)
					return
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	})
	return cyc
}

// HasCycle reports whether the graph contains a directed cycle.
func (d *Dense) HasCycle() bool { return d.FindCycle() != nil }

// TopoSort returns the node IDs in a topological order (Kahn's algorithm over
// the CSR arrays), or ok=false if the graph is cyclic. Among ready nodes the
// highest ID is taken first, mirroring Graph.TopoSort's stack discipline.
func (d *Dense) TopoSort() (order []uint32, ok bool) {
	g := d.buildCSR()
	n := len(g.start) - 1
	indeg := make([]int32, n)
	for i := 1; i < len(d.pairs); i += 2 {
		indeg[d.pairs[i]]++
	}
	queue := make([]uint32, 0, d.nodes)
	d.EachNode(func(id uint32) {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	})
	order = make([]uint32, 0, d.nodes)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, t := range g.succ[g.start[v]:g.start[v+1]] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != d.nodes {
		return nil, false
	}
	return order, true
}

// Reachable reports whether to is reachable from from by a non-empty path.
func (d *Dense) Reachable(from, to uint32) bool {
	g := d.buildCSR()
	n := len(g.start) - 1
	seen := make([]bool, n)
	stack := append([]uint32(nil), g.succ[g.start[from]:g.start[from+1]]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == to {
			return true
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, g.succ[g.start[v]:g.start[v+1]]...)
	}
	return false
}

// DOT writes the graph in Graphviz DOT format, mirroring Graph.DOT: node
// declarations in ascending ID order, edges in insertion order, highlight
// path filled salmon with red edges.
func (d *Dense) DOT(w io.Writer, name string, label func(uint32) string, highlight []uint32) error {
	lit := func(id uint32) string {
		return strconv.Quote(label(id))
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", name); err != nil {
		return err
	}
	hl := make(map[uint32]bool, len(highlight))
	for _, id := range highlight {
		hl[id] = true
	}
	var werr error
	d.EachNode(func(id uint32) {
		if werr != nil {
			return
		}
		attrs := ""
		if hl[id] {
			attrs = " [style=filled, fillcolor=salmon]"
		}
		_, werr = fmt.Fprintf(w, "  %s%s;\n", lit(id), attrs)
	})
	if werr != nil {
		return werr
	}
	for i := 0; i < len(d.pairs); i += 2 {
		from, to := d.pairs[i], d.pairs[i+1]
		attrs := ""
		if hl[from] && hl[to] {
			attrs = " [color=red, penwidth=2]"
		}
		if _, err := fmt.Fprintf(w, "  %s -> %s%s;\n", lit(from), lit(to), attrs); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
