package graph

import (
	"errors"
	"strconv"
	"strings"
	"testing"
)

func TestDOTRendersNodesAndEdges(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddNode(9)
	var b strings.Builder
	if err := g.DOT(&b, "test", func(n int) string { return "n" + strconv.Itoa(n) }, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`digraph "test"`, `"n1"`, `"n9"`, `"n1" -> "n2"`, `"n2" -> "n3"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "salmon") {
		t.Error("no highlight requested but highlight attributes present")
	}
}

func TestDOTHighlightsCycle(t *testing.T) {
	g := New[string]()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	g.AddEdge("a", "c")
	cycle := g.FindCycle()
	if cycle == nil {
		t.Fatal("cycle not found")
	}
	var b strings.Builder
	if err := g.DOT(&b, "cyc", func(n string) string { return n }, cycle); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "salmon") {
		t.Error("cycle nodes not highlighted")
	}
	if !strings.Contains(out, "color=red") {
		t.Error("cycle edges not highlighted")
	}
	// The edge to c is outside the cycle and must not be red.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `"a" -> "c"`) && strings.Contains(line, "red") {
			t.Error("non-cycle edge highlighted")
		}
	}
}

// failingWriter errors after a few bytes so DOT's error paths are exercised.
type failingWriter struct{ left int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errors.New("disk full")
	}
	w.left -= len(p)
	return len(p), nil
}

func TestDOTPropagatesWriteErrors(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	if err := g.DOT(&failingWriter{left: 5}, "x", func(n int) string { return strconv.Itoa(n) }, nil); err == nil {
		t.Error("write error not propagated")
	}
}
