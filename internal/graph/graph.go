// Package graph provides the directed graphs the Karousos verifier builds:
// the execution graph G over operations (paper §4.3, Figures 14–16, 21) and
// the Adya dependency graph DG over transactions (Figure 17). Both audits
// reduce to "insist the graph is acyclic", so the central export is an
// iterative cycle detector that does not recurse (execution graphs over
// 600-request audits reach tens of thousands of nodes).
package graph

import (
	"fmt"
	"io"
	"strconv"
)

// Graph is a directed graph over comparable node keys. The zero value is not
// usable; construct with New. Adding an edge implicitly adds its endpoints.
//
// Parallel edges are stored as-is rather than deduplicated: the verifier adds
// the same ordering fact from several advice sources, cycle detection and
// topological sorting are indifferent to duplicates, and skipping the
// dedup-map lookup keeps AddEdge — the hottest graph operation in an audit —
// to a single map access.
type Graph[N comparable] struct {
	adj   map[N][]N
	nodes []N // insertion order; every iteration walks this, never the map
	n     int // edge count, duplicates included
}

// New returns an empty graph.
func New[N comparable]() *Graph[N] {
	return &Graph[N]{adj: make(map[N][]N)}
}

// AddNode ensures n is present (possibly with no edges).
func (g *Graph[N]) AddNode(n N) {
	if _, ok := g.adj[n]; !ok {
		g.adj[n] = nil
		g.nodes = append(g.nodes, n)
	}
}

// HasNode reports whether n has been added.
func (g *Graph[N]) HasNode(n N) bool {
	_, ok := g.adj[n]
	return ok
}

// AddEdge inserts the directed edge from→to, adding both endpoints if needed.
func (g *Graph[N]) AddEdge(from, to N) {
	g.AddNode(from)
	g.AddNode(to)
	g.adj[from] = append(g.adj[from], to)
	g.n++
}

// HasEdge reports whether the directed edge from→to is present. It scans the
// successor list; it exists for tests, not for hot paths.
func (g *Graph[N]) HasEdge(from, to N) bool {
	for _, t := range g.adj[from] {
		if t == to {
			return true
		}
	}
	return false
}

// NumNodes returns the number of nodes.
func (g *Graph[N]) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges, counting duplicates.
func (g *Graph[N]) NumEdges() int { return g.n }

// Succ returns a copy of the successor list of n. Handing out the internal
// slice was an aliasing hazard — a caller's append or sort could silently
// rewrite edges under a concurrent merge — so callers own what they get.
func (g *Graph[N]) Succ(n N) []N {
	s := g.adj[n]
	if len(s) == 0 {
		return nil
	}
	return append([]N(nil), s...)
}

// Nodes returns all nodes in insertion order. The order is deterministic so
// that everything derived from a node sweep — cycle reports, topological
// sorts, DOT dumps — is a pure function of the call sequence that built the
// graph, never of Go's randomized map iteration.
func (g *Graph[N]) Nodes() []N {
	return append([]N(nil), g.nodes...)
}

// FindCycle returns a cycle as a node sequence (first == last) if the graph
// is cyclic, and nil otherwise. Detection is an iterative three-color DFS;
// the explicit stack keeps worst-case audits from exhausting goroutine stack
// space.
func (g *Graph[N]) FindCycle() []N {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[N]int8, len(g.adj))
	parent := make(map[N]N, len(g.adj))

	type frame struct {
		node N
		next int
	}
	// Starting roots in insertion order makes the *reported* cycle — and so
	// the rejection Reason shown to operators — deterministic for a given
	// build sequence.
	for _, start := range g.nodes {
		if color[start] != white {
			continue
		}
		stack := []frame{{node: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			succ := g.adj[f.node]
			if f.next < len(succ) {
				child := succ[f.next]
				f.next++
				switch color[child] {
				case white:
					color[child] = gray
					parent[child] = f.node
					stack = append(stack, frame{node: child})
				case gray:
					// Found a back edge f.node→child: reconstruct the cycle.
					cycle := []N{child}
					for n := f.node; ; n = parent[n] {
						cycle = append(cycle, n)
						if n == child {
							break
						}
					}
					reverse(cycle)
					return cycle
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

// HasCycle reports whether the graph contains a directed cycle.
func (g *Graph[N]) HasCycle() bool { return g.FindCycle() != nil }

// TopoSort returns the nodes in a topological order, or ok=false if the
// graph is cyclic. The verifier's proofs work with topological sorts of G
// (well-formed op schedules, Appendix C.2); tests use TopoSort to derive
// schedules.
func (g *Graph[N]) TopoSort() (order []N, ok bool) {
	indeg := make(map[N]int, len(g.adj))
	for n := range g.adj {
		indeg[n] += 0
	}
	for _, succ := range g.adj {
		for _, t := range succ {
			indeg[t]++
		}
	}
	queue := make([]N, 0, len(g.adj))
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	order = make([]N, 0, len(g.adj))
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, n)
		for _, t := range g.adj[n] {
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) != len(g.adj) {
		return nil, false
	}
	return order, true
}

// Reachable reports whether to is reachable from from by a non-empty path.
func (g *Graph[N]) Reachable(from, to N) bool {
	seen := make(map[N]bool)
	stack := append([]N(nil), g.adj[from]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.adj[n]...)
	}
	return false
}

func reverse[N any](s []N) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// DOT writes the graph in Graphviz DOT format, labeling nodes with label and
// (when highlight is non-nil) coloring the nodes of one path — typically a
// cycle the audit rejected on. The verifier exposes this for debugging; it
// is not on any hot path.
func (g *Graph[N]) DOT(w io.Writer, name string, label func(N) string, highlight []N) error {
	lit := func(n N) string {
		return strconv.Quote(label(n))
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n", name); err != nil {
		return err
	}
	hl := make(map[N]bool, len(highlight))
	for _, n := range highlight {
		hl[n] = true
	}
	for _, n := range g.Nodes() {
		attrs := ""
		if hl[n] {
			attrs = " [style=filled, fillcolor=salmon]"
		}
		if _, err := fmt.Fprintf(w, "  %s%s;\n", lit(n), attrs); err != nil {
			return err
		}
	}
	for _, from := range g.nodes {
		for _, to := range g.adj[from] {
			attrs := ""
			if hl[from] && hl[to] {
				attrs = " [color=red, penwidth=2]"
			}
			if _, err := fmt.Fprintf(w, "  %s -> %s%s;\n", lit(from), lit(to), attrs); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
