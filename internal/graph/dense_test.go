package graph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDenseEmpty(t *testing.T) {
	d := NewDense(0)
	if d.HasCycle() {
		t.Error("empty dense graph reported cyclic")
	}
	if order, ok := d.TopoSort(); !ok || len(order) != 0 {
		t.Error("empty dense graph toposort failed")
	}
	if d.NumNodes() != 0 || d.NumEdges() != 0 {
		t.Errorf("NumNodes=%d NumEdges=%d", d.NumNodes(), d.NumEdges())
	}
}

func TestDenseBasics(t *testing.T) {
	d := NewDense(10)
	d.AddNode(3)
	d.AddNode(3)
	d.AddEdge(1, 2)
	d.AddEdge(1, 2) // parallel edges kept, like Graph
	if d.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", d.NumNodes())
	}
	if d.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", d.NumEdges())
	}
	if !d.HasNode(3) || !d.HasNode(1) || d.HasNode(0) {
		t.Error("HasNode wrong")
	}
	if !d.HasEdge(1, 2) || d.HasEdge(2, 1) {
		t.Error("HasEdge wrong")
	}
	if d.HasCycle() {
		t.Error("parallel edges are not a cycle")
	}
}

func TestDenseAutoGrow(t *testing.T) {
	d := NewDense(4)
	d.AddEdge(1000, 2000) // beyond capacity: must grow, not panic
	if !d.HasNode(1000) || !d.HasNode(2000) {
		t.Fatal("auto-grow lost nodes")
	}
	if d.Capacity() < 2001 {
		t.Errorf("Capacity = %d, want >= 2001", d.Capacity())
	}
	if d.HasCycle() {
		t.Error("single edge reported cyclic")
	}
	d.AddEdge(2000, 1000)
	cyc := d.FindCycle()
	if cyc == nil || cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("cycle = %v", cyc)
	}
}

func TestDenseSelfLoop(t *testing.T) {
	d := NewDense(4)
	d.AddEdge(2, 2)
	cyc := d.FindCycle()
	if cyc == nil {
		t.Fatal("self loop not detected")
	}
	if cyc[0] != cyc[len(cyc)-1] {
		t.Error("cycle should start and end at the same node")
	}
}

func TestDenseEachNodeAscending(t *testing.T) {
	d := NewDense(256)
	for _, id := range []uint32{200, 5, 63, 64, 0, 127, 128} {
		d.AddNode(id)
	}
	var got []uint32
	d.EachNode(func(id uint32) { got = append(got, id) })
	want := []uint32{0, 5, 63, 64, 127, 128, 200}
	if len(got) != len(want) {
		t.Fatalf("EachNode visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EachNode visited %v, want %v", got, want)
		}
	}
}

func TestDenseEachEdgeInsertionOrder(t *testing.T) {
	d := NewDense(8)
	edges := [][2]uint32{{3, 1}, {0, 2}, {3, 0}, {0, 2}}
	for _, e := range edges {
		d.AddEdge(e[0], e[1])
	}
	i := 0
	d.EachEdge(func(from, to uint32) {
		if from != edges[i][0] || to != edges[i][1] {
			t.Fatalf("edge %d = %d→%d, want %d→%d", i, from, to, edges[i][0], edges[i][1])
		}
		i++
	})
	if i != len(edges) {
		t.Fatalf("EachEdge visited %d edges, want %d", i, len(edges))
	}
}

func TestDenseAddEdgesBatch(t *testing.T) {
	d := NewDense(8)
	d.AddEdges([]uint32{0, 1, 1, 2, 5, 6})
	if d.NumEdges() != 3 || d.NumNodes() != 5 {
		t.Fatalf("NumEdges=%d NumNodes=%d", d.NumEdges(), d.NumNodes())
	}
	if !d.HasEdge(5, 6) {
		t.Error("batch edge missing")
	}
}

func TestDenseDeepChainNoStackOverflow(t *testing.T) {
	d := NewDense(1_000_001)
	const n = 1_000_000
	for i := uint32(0); i < n; i++ {
		d.AddEdge(i, i+1)
	}
	if d.HasCycle() {
		t.Error("long chain reported cyclic")
	}
	d.AddEdge(n, 0)
	if !d.HasCycle() {
		t.Error("long cycle not detected")
	}
}

func TestDenseDOTMatchesShape(t *testing.T) {
	d := NewDense(4)
	d.AddEdge(0, 1)
	d.AddNode(3)
	var sb strings.Builder
	if err := d.DOT(&sb, "g", func(id uint32) string { return fmt.Sprintf("n%d", id) }, []uint32{0, 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"g\"",
		"\"n0\" [style=filled, fillcolor=salmon];",
		"\"n3\";",
		"\"n0\" -> \"n1\" [color=red, penwidth=2];",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

// TestDenseMatchesGenericOnRandomGraphs checks that the dense graph agrees
// with the generic graph on cyclicity, node/edge counts, reachability, and
// topological validity over random graphs built with the identical call
// sequence.
func TestDenseMatchesGenericOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := New[int]()
		d := NewDense(n)
		for e := 0; e < n*2; e++ {
			a, b := r.Intn(n), r.Intn(n)
			g.AddEdge(a, b)
			d.AddEdge(uint32(a), uint32(b))
		}
		if g.NumNodes() != d.NumNodes() || g.NumEdges() != d.NumEdges() {
			return false
		}
		if g.HasCycle() != d.HasCycle() {
			return false
		}
		// Reachability must agree on a sample of pairs.
		for i := 0; i < 10; i++ {
			a, b := r.Intn(n), r.Intn(n)
			if g.Reachable(a, b) != d.Reachable(uint32(a), uint32(b)) {
				return false
			}
		}
		if cyc := d.FindCycle(); cyc != nil {
			if cyc[0] != cyc[len(cyc)-1] || len(cyc) < 2 {
				return false
			}
			for i := 0; i+1 < len(cyc); i++ {
				if !d.HasEdge(cyc[i], cyc[i+1]) {
					return false
				}
			}
		} else {
			order, ok := d.TopoSort()
			if !ok || len(order) != d.NumNodes() {
				return false
			}
			pos := make(map[uint32]int, len(order))
			for i, v := range order {
				pos[v] = i
			}
			bad := false
			d.EachEdge(func(from, to uint32) {
				if pos[from] > pos[to] {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDenseFindCycleDeterministic: the reported cycle is a pure function of
// the edge set — repeated calls and rebuilt graphs agree exactly.
func TestDenseFindCycleDeterministic(t *testing.T) {
	build := func() *Dense {
		d := NewDense(64)
		r := rand.New(rand.NewSource(7))
		for e := 0; e < 120; e++ {
			d.AddEdge(uint32(r.Intn(60)), uint32(r.Intn(60)))
		}
		return d
	}
	d := build()
	first := d.FindCycle()
	if first == nil {
		t.Skip("seed produced an acyclic graph")
	}
	for i := 0; i < 5; i++ {
		again := build().FindCycle()
		if len(again) != len(first) {
			t.Fatalf("run %d cycle %v != %v", i, again, first)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d cycle %v != %v", i, again, first)
			}
		}
	}
}

// TestSuccReturnsCopy pins the aliasing fix: mutating the slice Succ returns
// must not corrupt the graph's own adjacency.
func TestSuccReturnsCopy(t *testing.T) {
	g := New[int]()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	s := g.Succ(1)
	s[0] = 99
	if !g.HasEdge(1, 2) {
		t.Fatal("mutating Succ's result corrupted the graph")
	}
	s = append(s[:1], 42)
	if g.HasEdge(1, 42) {
		t.Fatal("appending through Succ's result grew the graph's adjacency")
	}
	if g.Succ(4) != nil {
		t.Error("Succ of absent node should be nil")
	}
}

// --- interned-graph microbenchmarks (ISSUE 5 satellite): AddNode / AddEdge /
// cycle check at 10^5–10^6 nodes, dense vs generic. ---

func buildDenseChain(n int) *Dense {
	d := NewDense(n)
	for i := uint32(0); i+1 < uint32(n); i++ {
		d.AddEdge(i, i+1)
	}
	return d
}

func benchmarkDenseAdd(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDense(n)
		for id := uint32(0); id < uint32(n); id++ {
			d.AddNode(id)
		}
		for id := uint32(0); id+1 < uint32(n); id++ {
			d.AddEdge(id, id+1)
		}
	}
}

func benchmarkGenericAdd(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := New[int]()
		for id := 0; id < n; id++ {
			g.AddNode(id)
		}
		for id := 0; id+1 < n; id++ {
			g.AddEdge(id, id+1)
		}
	}
}

func BenchmarkDenseAdd100k(b *testing.B)   { benchmarkDenseAdd(b, 100_000) }
func BenchmarkDenseAdd1M(b *testing.B)     { benchmarkDenseAdd(b, 1_000_000) }
func BenchmarkGenericAdd100k(b *testing.B) { benchmarkGenericAdd(b, 100_000) }
func BenchmarkGenericAdd1M(b *testing.B)   { benchmarkGenericAdd(b, 1_000_000) }

func benchmarkDenseFindCycle(b *testing.B, n int) {
	d := buildDenseChain(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.FindCycle() != nil {
			b.Fatal("chain reported cyclic")
		}
	}
}

func benchmarkGenericFindCycle(b *testing.B, n int) {
	g := New[int]()
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.FindCycle() != nil {
			b.Fatal("chain reported cyclic")
		}
	}
}

func BenchmarkDenseFindCycle100k(b *testing.B)   { benchmarkDenseFindCycle(b, 100_000) }
func BenchmarkDenseFindCycle1M(b *testing.B)     { benchmarkDenseFindCycle(b, 1_000_000) }
func BenchmarkGenericFindCycle100k(b *testing.B) { benchmarkGenericFindCycle(b, 100_000) }
func BenchmarkGenericFindCycle1M(b *testing.B)   { benchmarkGenericFindCycle(b, 1_000_000) }
