package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/gateway"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/shard"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

// shardLevels is the Figure-14 sweep: topology widths the scaling panel
// builds and audits.
func shardLevels() []int { return []int{1, 2, 4, 8} }

// shardEpochRequests keeps several epochs per shard even at the widest
// topology, so every lane exercises the cross-epoch carry.
func shardEpochRequests(requests, shards int) int {
	per := requests / shards / 4
	if per < 2 {
		per = 2
	}
	return per
}

// BuildShardTopology serves the wiki workload through a local gateway
// over the given shard count and leaves the sealed topology under root:
// shardmap.json plus one epoch log per shard, exactly what
// karousos-auditd audit -shards consumes.
func BuildShardTopology(root string, shards, requests int, seed int64) error {
	top, err := gateway.NewLocal(gateway.LocalConfig{
		Spec:          harness.WikiApp(),
		Root:          root,
		Map:           shard.Map{Shards: shards, KeyFields: []string{"id", "page"}},
		EpochRequests: shardEpochRequests(requests, shards),
		Seed:          seed,
		Limits:        verifier.DefaultLimits(),
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(top.Gateway.Handler())
	for _, r := range workload.Wiki(requests, seed) {
		body, err := json.Marshal(map[string]any{"input": r.Input})
		if err != nil {
			ts.Close()
			top.Close()
			return err
		}
		resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
		if err != nil {
			ts.Close()
			top.Close()
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			ts.Close()
			top.Close()
			return fmt.Errorf("experiments: shard topology invoke: status %d", resp.StatusCode)
		}
	}
	ts.Close()
	return top.Close()
}

// auditShardTopology audits a sealed topology from scratch (no
// checkpoints, so every trial grades the full log) and returns the wall
// time with the result. AuditWorkers is pinned to 1 so the measured
// speedup isolates shard-level parallelism from the per-epoch parallel
// engine.
func auditShardTopology(root string, lanes int) (time.Duration, auditd.ShardedResult, error) {
	sh, err := auditd.NewSharded(auditd.ShardedConfig{
		Root:         root,
		Lanes:        lanes,
		Limits:       verifier.DefaultLimits(),
		AuditWorkers: 1,
	})
	if err != nil {
		return 0, auditd.ShardedResult{}, err
	}
	start := time.Now()
	res, err := sh.Audit(context.Background())
	return time.Since(start), res, err
}

// ShardScalingPanel is the Figure-14 panel behind the sharded audit
// plane (DESIGN.md §15): the same total workload served over 1/2/4/8
// shards, each topology audited with one lane per shard. Audit
// throughput (requests graded per second) is the scaling claim; the
// panel also re-audits each topology with a single lane and asserts the
// combined verdict and summed Stats are identical — lane scheduling
// never reaches the verdict.
func ShardScalingPanel(cfg Config) Panel {
	p := Panel{
		Title:  fmt.Sprintf("shard scaling — wiki, %d requests, lanes = shards, audit workers 1", cfg.Requests),
		Header: []string{"shards", "audit", "throughput", "speedup", "handlers-rerun"},
	}
	var base time.Duration
	for _, shards := range shardLevels() {
		root, err := os.MkdirTemp("", "karousos-shard-panel-")
		must(err)
		must(BuildShardTopology(root, shards, cfg.Requests, cfg.Seed))
		var ds []time.Duration
		var res auditd.ShardedResult
		for tr := 0; tr < cfg.Trials; tr++ {
			d, r, err := auditShardTopology(root, shards)
			must(err)
			if !r.Accepted() {
				panic(fmt.Sprintf("experiments: shard panel rejected at %d shards: [%s] %s", shards, r.Merge.Code, r.Merge.Reason))
			}
			ds = append(ds, d)
			res = r
		}
		// The lane-count differential: one lane over the same logs must
		// land on the same verdict and the same work counters.
		_, seq, err := auditShardTopology(root, 1)
		must(err)
		if seq.Merge.Code != res.Merge.Code || seq.Stats != res.Stats {
			panic(fmt.Sprintf("experiments: shard panel diverged at %d shards: lanes=%d %+v vs lanes=1 %+v",
				shards, shards, res.Stats, seq.Stats))
		}
		os.RemoveAll(root)

		m := median(ds)
		if base == 0 {
			base = m
		}
		p.Rows = append(p.Rows, []string{
			fmt.Sprint(shards),
			fdur(m),
			fmt.Sprintf("%.0f req/s", float64(cfg.Requests)/m.Seconds()),
			fmt.Sprintf("%.2fx", float64(base)/float64(m)),
			fmt.Sprint(res.Stats.HandlersRerun),
		})
	}
	return p
}
