// Package experiments regenerates the paper's evaluation (§6, Figures 6–12):
// each figure maps to panels of rows — one row per concurrency level — that
// report medians over several trials, exactly the quantities the paper
// plots. cmd/karousos-bench prints these panels; bench_test.go exercises the
// same code paths under testing.B.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/workload"
)

// Config holds the sweep parameters. The paper's defaults are 600 requests,
// 120 of which warm the server-overhead experiments, swept over 1–60
// concurrent requests.
type Config struct {
	Requests int
	Warmup   int
	Trials   int
	Conc     []int
	Seed     int64
	// Workers are the audit parallelism levels the worker-sweep panel
	// measures; empty means {1, 2, 4, GOMAXPROCS} deduplicated.
	Workers []int
}

// DefaultConfig matches the paper's §6 setup.
func DefaultConfig() Config {
	return Config{Requests: 600, Warmup: 120, Trials: 3, Conc: []int{1, 15, 30, 45, 60}, Seed: 42}
}

// workerLevels resolves cfg.Workers, defaulting to a 1/2/4/GOMAXPROCS sweep
// with duplicates collapsed (on a 4-core machine: 1, 2, 4).
func (cfg Config) workerLevels() []int {
	if len(cfg.Workers) > 0 {
		return cfg.Workers
	}
	levels := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(levels)
	out := levels[:1]
	for _, w := range levels[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	return out
}

// Panel is one plot of a figure, rendered as a table.
type Panel struct {
	Title  string
	Header []string
	Rows   [][]string
}

// workloadFor builds the named application's paper workload.
func workloadFor(app string, mix workload.Mix, n int, seed int64) (harness.AppSpec, []server.Request) {
	switch app {
	case "motd":
		return harness.MOTDApp(), workload.MOTD(n, mix, seed)
	case "stacks":
		return harness.StacksApp(), workload.Stacks(n, mix, seed, workload.DefaultStacksOptions())
	case "wiki":
		return harness.WikiApp(), workload.Wiki(n, seed)
	case "feeds":
		return harness.FeedsApp(), workload.Feeds(n, mix, seed)
	}
	panic("experiments: unknown app " + app)
}

func median(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

func fdur(d time.Duration) string { return d.Round(10 * time.Microsecond).String() }

// ServerOverheadPanel reproduces a Figure 6-style panel: processing time of
// the measured requests for the unmodified server and the Karousos server,
// and the overhead factor (§6.1).
func ServerOverheadPanel(app string, mix workload.Mix, cfg Config) Panel {
	p := Panel{
		Title:  fmt.Sprintf("server processing time — %s (%s), %d requests after %d warm-up", app, mix, cfg.Requests-cfg.Warmup, cfg.Warmup),
		Header: []string{"conc", "unmodified", "karousos", "overhead"},
	}
	for _, conc := range cfg.Conc {
		var unmod, kar []time.Duration
		for tr := 0; tr < cfg.Trials; tr++ {
			seed := cfg.Seed + int64(tr)
			spec, reqs := workloadFor(app, mix, cfg.Requests, cfg.Seed)
			du, err := harness.ServeWarm(spec, reqs, cfg.Warmup, conc, seed, harness.CollectNone)
			must(err)
			spec, reqs = workloadFor(app, mix, cfg.Requests, cfg.Seed)
			dk, err := harness.ServeWarm(spec, reqs, cfg.Warmup, conc, seed, harness.CollectKarousos)
			must(err)
			unmod = append(unmod, du)
			kar = append(kar, dk)
		}
		mu, mk := median(unmod), median(kar)
		p.Rows = append(p.Rows, []string{
			fmt.Sprint(conc), fdur(mu), fdur(mk), fmt.Sprintf("%.2fx", float64(mk)/float64(mu)),
		})
	}
	return p
}

// VerificationPanel reproduces a Figure 7-style panel: total verification
// time for the Karousos verifier, the Orochi-JS verifier, and the sequential
// re-executor (§6.2).
func VerificationPanel(app string, mix workload.Mix, cfg Config) Panel {
	p := Panel{
		Title:  fmt.Sprintf("verification time — %s (%s), %d requests", app, mix, cfg.Requests),
		Header: []string{"conc", "karousos", "orochi-js", "sequential", "kar-groups", "oro-groups"},
	}
	for _, conc := range cfg.Conc {
		var kar, oro, seq []time.Duration
		var kg, og int
		for tr := 0; tr < cfg.Trials; tr++ {
			seed := cfg.Seed + int64(tr)
			spec, reqs := workloadFor(app, mix, cfg.Requests, cfg.Seed)
			run, err := harness.Serve(spec, reqs, conc, seed, harness.CollectBoth)
			must(err)
			vk := harness.VerifyKarousos(spec, run.Trace, run.Karousos)
			vo := harness.VerifyOrochi(spec, run.Trace, run.Orochi)
			sq := harness.VerifySequential(spec, run.Trace)
			must(vk.Err)
			must(vo.Err)
			must(sq.Err)
			kar = append(kar, vk.Elapsed)
			oro = append(oro, vo.Elapsed)
			seq = append(seq, sq.Elapsed)
			kg, og = vk.Stats.Groups, vo.Stats.Groups
		}
		p.Rows = append(p.Rows, []string{
			fmt.Sprint(conc), fdur(median(kar)), fdur(median(oro)), fdur(median(seq)),
			fmt.Sprint(kg), fmt.Sprint(og),
		})
	}
	return p
}

// WorkerSweepPanel measures the Karousos verifier's multi-core scaling: the
// same (trace, advice) audited at each worker level, with the speedup over
// the sequential engine. The verdict and Stats are identical at every level
// (DESIGN.md §13); the sweep asserts that by comparing Stats across levels.
func WorkerSweepPanel(app string, mix workload.Mix, cfg Config) Panel {
	conc := 30
	if len(cfg.Conc) > 0 {
		conc = cfg.Conc[len(cfg.Conc)-1]
	}
	p := Panel{
		Title:  fmt.Sprintf("karousos audit worker sweep — %s (%s), %d requests, conc %d", app, mix, cfg.Requests, conc),
		Header: []string{"workers", "karousos", "speedup", "groups"},
	}
	spec, reqs := workloadFor(app, mix, cfg.Requests, cfg.Seed)
	run, err := harness.Serve(spec, reqs, conc, cfg.Seed, harness.CollectKarousos)
	must(err)
	var base time.Duration
	var baseStats *harness.VerifyResult
	for _, w := range cfg.workerLevels() {
		var ds []time.Duration
		var vr *harness.VerifyResult
		for tr := 0; tr < cfg.Trials; tr++ {
			vr = harness.VerifyWith(spec, run.Trace, run.Karousos, harness.VerifyOptions{Workers: w})
			must(vr.Err)
			ds = append(ds, vr.Elapsed)
		}
		m := median(ds)
		if base == 0 {
			base = m
			baseStats = vr
		}
		if vr.Stats != baseStats.Stats {
			panic(fmt.Sprintf("experiments: worker sweep diverged at %d workers: %+v vs %+v", w, vr.Stats, baseStats.Stats))
		}
		p.Rows = append(p.Rows, []string{
			fmt.Sprint(w), fdur(m), fmt.Sprintf("%.2fx", float64(base)/float64(m)), fmt.Sprint(vr.Stats.Groups),
		})
	}
	return p
}

// AdviceSizePanel reproduces a Figure 8-style panel: the size of the advice
// the server ships to the verifier, Karousos vs Orochi-JS (§6.3).
func AdviceSizePanel(app string, mix workload.Mix, cfg Config) Panel {
	p := Panel{
		Title:  fmt.Sprintf("advice size — %s (%s), %d requests", app, mix, cfg.Requests),
		Header: []string{"conc", "karousos", "orochi-js", "ratio"},
	}
	for _, conc := range cfg.Conc {
		spec, reqs := workloadFor(app, mix, cfg.Requests, cfg.Seed)
		run, err := harness.Serve(spec, reqs, conc, cfg.Seed, harness.CollectBoth)
		must(err)
		k, o := run.Karousos.Size(), run.Orochi.Size()
		p.Rows = append(p.Rows, []string{
			fmt.Sprint(conc),
			fmt.Sprintf("%.1f KiB", float64(k)/1024),
			fmt.Sprintf("%.1f KiB", float64(o)/1024),
			fmt.Sprintf("%.2f", float64(k)/float64(o)),
		})
	}
	return p
}

// Figure returns the panels of one numbered figure of the paper.
//
//	Fig 6:  server overheads — MOTD 90% writes, stacks 90% reads, wiki
//	Fig 7:  verification time — same three workloads
//	Fig 8:  advice size — MOTD 90% writes, wiki (stacks omitted, §6.3)
//	Fig 9:  MOTD mixed (server / verification / advice)
//	Fig 10: MOTD 90% reads
//	Fig 11: stacks mixed
//	Fig 12: stacks 90% writes
//	Fig 13: sustained record throughput — group commit vs per-request fsync
//	        (not from the paper; the serving-path load story of DESIGN.md §14)
//	Fig 14: shard scaling — audit throughput of the shard-parallel auditd
//	        over 1/2/4/8-shard topologies (not from the paper; the sharded
//	        audit plane of DESIGN.md §15)
//	Fig 15: memo cold vs warm — the steady-state recurring workload audited
//	        with the cross-epoch re-execution memo cache off and on (not
//	        from the paper; DESIGN.md §18)
func Figure(n int, cfg Config) []Panel {
	switch n {
	case 6:
		return []Panel{
			ServerOverheadPanel("motd", workload.WriteHeavy, cfg),
			ServerOverheadPanel("stacks", workload.ReadHeavy, cfg),
			ServerOverheadPanel("wiki", workload.Mixed, cfg),
		}
	case 7:
		return []Panel{
			VerificationPanel("motd", workload.WriteHeavy, cfg),
			VerificationPanel("stacks", workload.ReadHeavy, cfg),
			VerificationPanel("wiki", workload.Mixed, cfg),
			WorkerSweepPanel("wiki", workload.Mixed, cfg),
		}
	case 8:
		return []Panel{
			AdviceSizePanel("motd", workload.WriteHeavy, cfg),
			AdviceSizePanel("wiki", workload.Mixed, cfg),
		}
	case 9:
		return appFigure("motd", workload.Mixed, cfg)
	case 10:
		return appFigure("motd", workload.ReadHeavy, cfg)
	case 11:
		return appFigure("stacks", workload.Mixed, cfg)
	case 12:
		return appFigure("stacks", workload.WriteHeavy, cfg)
	case 13:
		return []Panel{RecordThroughputPanel(cfg)}
	case 14:
		return []Panel{ShardScalingPanel(cfg)}
	case 15:
		return []Panel{MemoAuditPanel(cfg)}
	}
	panic(fmt.Sprintf("experiments: no figure %d", n))
}

// appFigure is the Appendix B layout: one application and mix across the
// three panel kinds (a: server overhead, b: verification, c: advice size).
func appFigure(app string, mix workload.Mix, cfg Config) []Panel {
	return []Panel{
		ServerOverheadPanel(app, mix, cfg),
		VerificationPanel(app, mix, cfg),
		AdviceSizePanel(app, mix, cfg),
	}
}

// Figures lists the figure numbers this package can regenerate.
func Figures() []int { return []int{6, 7, 8, 9, 10, 11, 12, 13, 14, 15} }

func must(err error) {
	if err != nil {
		panic("experiments: " + err.Error())
	}
}
