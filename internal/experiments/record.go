package experiments

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"karousos.dev/karousos/internal/epochlog"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
)

// RecordThroughput measures sustained durable-append throughput through the
// epoch log: conc goroutines each waiting for its event to be durable
// before issuing the next (exactly the collector's commit discipline).
// Group commit amortizes one fsync over a whole batch of concurrent
// waiters; per-request mode pays a private write+fsync inline per event.
// Returns events per second.
func RecordThroughput(group bool, conc, events int) (float64, error) {
	dir, err := os.MkdirTemp("", "karousos-record-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	l, err := epochlog.Open(dir, epochlog.Options{GroupCommit: group})
	if err != nil {
		return 0, err
	}
	defer l.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	start := time.Now()
	for g := 0; g < conc; g++ {
		per := events / conc
		if g < events%conc {
			per++
		}
		wg.Add(1)
		go func(g, per int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := trace.Event{Kind: trace.Req, RID: fmt.Sprintf("g%d-r%d", g, i), Data: value.Map("i", float64(i))}
				if err := l.AppendEventDurable(ctx, e); err != nil {
					errs <- err
					return
				}
			}
		}(g, per)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return 0, err
	}
	return float64(events) / elapsed.Seconds(), nil
}

// RecordThroughputPanel is the Figure-13 panel behind the serving path's
// load story (DESIGN.md §14): sustained record throughput of the epoch
// log's two commit disciplines across concurrency levels. The speedup
// column is the group-commit batching win; it grows with concurrency
// because a batch can only be as large as the set of concurrent waiters.
func RecordThroughputPanel(cfg Config) Panel {
	p := Panel{
		Title:  fmt.Sprintf("sustained record throughput — per-request fsync vs group commit, %d events", recordEvents(cfg)),
		Header: []string{"conc", "per-request", "group-commit", "speedup"},
	}
	events := recordEvents(cfg)
	for _, conc := range cfg.Conc {
		var per, grp []float64
		for tr := 0; tr < cfg.Trials; tr++ {
			tp, err := RecordThroughput(false, conc, events)
			must(err)
			tg, err := RecordThroughput(true, conc, events)
			must(err)
			per = append(per, tp)
			grp = append(grp, tg)
		}
		mp, mg := medianF(per), medianF(grp)
		p.Rows = append(p.Rows, []string{
			fmt.Sprint(conc),
			fmt.Sprintf("%.0f ev/s", mp),
			fmt.Sprintf("%.0f ev/s", mg),
			fmt.Sprintf("%.2fx", mg/mp),
		})
	}
	return p
}

// recordEvents sizes the throughput trials off the request budget: each
// request is two trace events, and the panel appends a few epochs' worth
// so the steady state dominates the open/rotate edges.
func recordEvents(cfg Config) int {
	n := cfg.Requests * 4
	if n < 512 {
		n = 512
	}
	return n
}

func medianF(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
