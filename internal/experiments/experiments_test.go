package experiments

import (
	"runtime"
	"strings"
	"testing"
)

func tinyConfig() Config {
	return Config{Requests: 30, Warmup: 6, Trials: 1, Conc: []int{1, 4}, Seed: 7}
}

func TestAllFiguresProducePanels(t *testing.T) {
	cfg := tinyConfig()
	for _, n := range Figures() {
		panels := Figure(n, cfg)
		if len(panels) == 0 {
			t.Fatalf("figure %d produced no panels", n)
		}
		for _, p := range panels {
			if p.Title == "" || len(p.Header) == 0 {
				t.Errorf("figure %d: panel missing title or header", n)
			}
			// Most panels sweep the concurrency axis; the Figure-7 worker
			// sweep has one row per audit worker level instead.
			wantRows := len(cfg.Conc)
			if strings.Contains(p.Title, "worker sweep") {
				wantRows = len(cfg.workerLevels())
			}
			if strings.Contains(p.Title, "shard scaling") {
				wantRows = len(shardLevels())
			}
			if strings.Contains(p.Title, "memo cold vs warm") {
				wantRows = len(memoRepeatLevels())
			}
			if len(p.Rows) != wantRows {
				t.Errorf("figure %d %q: %d rows, want %d", n, p.Title, len(p.Rows), wantRows)
			}
			for _, row := range p.Rows {
				if len(row) != len(p.Header) {
					t.Errorf("figure %d %q: ragged row %v", n, p.Title, row)
				}
			}
		}
	}
}

func TestUnknownFigurePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown figure should panic")
		}
	}()
	Figure(99, tinyConfig())
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Requests != 600 || cfg.Warmup != 120 {
		t.Error("defaults should match the paper's 600/120 setup")
	}
	if len(cfg.Conc) == 0 || cfg.Conc[0] != 1 || cfg.Conc[len(cfg.Conc)-1] != 60 {
		t.Error("concurrency sweep should span 1..60")
	}
}

// TestShardScalingSpeedup pins the Figure-14 acceptance criterion: the
// same workload audits at least 3x faster over a 4-shard topology with
// one lane per shard than over a single shard. The measurement needs four
// real cores and is noisy on shared runners, so the gate takes the best
// of three attempts.
func TestShardScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need 4 cores for the 4-lane speedup, have %d", runtime.GOMAXPROCS(0))
	}
	const requests = 320
	roots := map[int]string{}
	for _, shards := range []int{1, 4} {
		root := t.TempDir()
		if err := BuildShardTopology(root, shards, requests, 42); err != nil {
			t.Fatal(err)
		}
		roots[shards] = root
	}
	best := 0.0
	for attempt := 0; attempt < 3 && best < 3; attempt++ {
		d1, r1, err := auditShardTopology(roots[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		d4, r4, err := auditShardTopology(roots[4], 4)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Accepted() || !r4.Accepted() {
			t.Fatalf("honest topologies rejected: %+v / %+v", r1.Merge, r4.Merge)
		}
		if s := float64(d1) / float64(d4); s > best {
			best = s
		}
	}
	if best < 3 {
		t.Fatalf("4-shard audit speedup %.2fx, want >= 3x", best)
	}
}

// TestMemoWarmSpeedup pins the Figure-15 acceptance criterion: on the pure
// recurring feeds workload, auditing with a warm cross-epoch memo cache is
// at least 5x faster than auditing cold, with bit-identical non-memo Stats.
// Wall-clock on shared runners is noisy, so the gate takes the best of
// three attempts over one shared steady-state log.
func TestMemoWarmSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	const perEpoch = 37 // DefaultConfig's 600 requests over 16 epochs
	dir := t.TempDir()
	if err := BuildMemoLog(dir, memoEpochs, perEpoch, 1.0, 42); err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for attempt := 0; attempt < 3 && best < 5; attempt++ {
		dc, cold, err := auditMemoLog(dir, memoEpochs, 0)
		if err != nil {
			t.Fatal(err)
		}
		dw, warm, err := auditMemoLog(dir, memoEpochs, 256<<20)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := warm.Stats.ZeroMemo(), cold.Stats.ZeroMemo(); got != want {
			t.Fatalf("memo on/off diverged:\n  cold: %+v\n  warm: %+v", want, got)
		}
		if want := float64(memoEpochs-2) / memoEpochs; float64(warm.Stats.MemoHits) < want*float64(warm.Stats.Groups) {
			t.Fatalf("warm hit rate %d/%d groups, want ≥ %.0f%%", warm.Stats.MemoHits, warm.Stats.Groups, want*100)
		}
		if s := float64(dc) / float64(dw); s > best {
			best = s
		}
	}
	if best < 5 {
		t.Fatalf("warm memo audit speedup %.2fx, want >= 5x", best)
	}
}

// TestGroupCommitSpeedup pins the Figure-13 acceptance criterion: at
// concurrency 32, group commit sustains at least 3x the per-request-fsync
// record throughput. Throughput on shared runners is noisy, so the gate
// takes the best of three attempts.
func TestGroupCommitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement")
	}
	best := 0.0
	for attempt := 0; attempt < 3 && best < 3; attempt++ {
		per, err := RecordThroughput(false, 32, 2048)
		if err != nil {
			t.Fatal(err)
		}
		grp, err := RecordThroughput(true, 32, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if s := grp / per; s > best {
			best = s
		}
	}
	if best < 3 {
		t.Fatalf("group commit speedup %.2fx at concurrency 32, want >= 3x", best)
	}
}
