package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"karousos.dev/karousos/internal/auditd"
	"karousos.dev/karousos/internal/collectorhttp"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/workload"
)

// memoRepeatLevels is the Figure-15 sweep: the fraction of each epoch's
// arrivals rewritten to the fixed recurring shapes. 1.0 is the pure
// steady state the warm-cache claim is stated on; the lower levels show
// the speedup degrading honestly as fresh traffic dilutes the recurrence
// (a non-recurring write also invalidates any recurring group that reads
// what it wrote, so the hit rate falls faster than the fraction).
func memoRepeatLevels() []float64 { return []float64{1.0, 0.9, 0.5} }

// memoEpochs is how many epochs the steady-state log spans. The warm-up
// ramp costs two epochs (epoch 1 audits with no carry, epoch 2 is the
// first carried one), so the pure-recurring hit rate is (K-2)/K.
const memoEpochs = 16

// BuildMemoLog serves epochs × perEpoch requests of the steady-state
// feeds workload through the HTTP collector into dir, sealing one epoch
// per batch: each epoch is the same base stream rewritten by
// workload.WithRepeats at the given fraction, with the recurring
// sub-stream bit-identical across epochs and the remainder re-seeded per
// epoch — exactly the log karousos-auditd -memo is built for.
func BuildMemoLog(dir string, epochs, perEpoch int, repeat float64, seed int64) error {
	col, err := collectorhttp.New(collectorhttp.Config{
		Spec:          harness.FeedsApp(),
		Dir:           dir,
		EpochRequests: perEpoch,
		Seed:          seed,
	})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(col.Handler())
	defer ts.Close()
	for e := 0; e < epochs; e++ {
		base := workload.Feeds(perEpoch, workload.Mixed, seed+int64(e))
		reqs, err := workload.WithRepeats(base, "feeds", repeat, seed)
		if err != nil {
			col.Close()
			return err
		}
		for _, r := range reqs {
			body, err := json.Marshal(map[string]any{"input": r.Input})
			if err != nil {
				col.Close()
				return err
			}
			resp, err := http.Post(ts.URL+"/invoke", "application/json", bytes.NewReader(body))
			if err != nil {
				col.Close()
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				col.Close()
				return fmt.Errorf("experiments: memo log invoke: status %d", resp.StatusCode)
			}
		}
	}
	return col.Close()
}

// auditMemoLog grades the whole log from scratch (fresh auditor, no
// checkpoint) at audit workers 1, with the memo cache on or off, and
// returns the wall time with the accumulated audit stats.
func auditMemoLog(dir string, epochs, memoMaxBytes int) (time.Duration, auditd.Status, error) {
	a, err := auditd.New(auditd.Config{Dir: dir, AuditWorkers: 1, MemoMaxBytes: memoMaxBytes})
	if err != nil {
		return 0, auditd.Status{}, err
	}
	start := time.Now()
	n, err := a.RunOnce(context.Background())
	d := time.Since(start)
	st := a.Status()
	if err != nil {
		return d, st, err
	}
	if n != epochs || st.Accepted != epochs {
		//karousos:rejectcode-ok harness assertion about epoch counts, not an audit verdict; RunOnce's error already carries the code
		return d, st, fmt.Errorf("experiments: memo audit graded %d/%d epochs, accepted %d", n, epochs, st.Accepted)
	}
	return d, st, nil
}

// MemoAuditPanel is the Figure-15 panel behind cross-epoch deduplicated
// re-execution (DESIGN.md §18): the same steady-state log audited cold
// (memo off) and warm (memo on, cache carried across epochs within one
// auditor pass). The differential is asserted, not just reported: at every
// repeat level the two passes must accept every epoch with identical
// non-memo Stats, and the pure-recurring row must hit on every group past
// the two-epoch warm-up ramp.
func MemoAuditPanel(cfg Config) Panel {
	perEpoch := cfg.Requests / memoEpochs
	if perEpoch < 2 {
		perEpoch = 2
	}
	p := Panel{
		Title: fmt.Sprintf("memo cold vs warm — feeds steady state, %d epochs × %d requests, audit workers 1",
			memoEpochs, perEpoch),
		Header: []string{"repeat", "cold", "warm", "speedup", "hit-rate"},
	}
	for _, repeat := range memoRepeatLevels() {
		dir, err := os.MkdirTemp("", "karousos-memo-panel-")
		must(err)
		must(BuildMemoLog(dir, memoEpochs, perEpoch, repeat, cfg.Seed))
		var colds, warms []time.Duration
		var coldSt, warmSt auditd.Status
		for tr := 0; tr < cfg.Trials; tr++ {
			d, st, err := auditMemoLog(dir, memoEpochs, 0)
			must(err)
			colds = append(colds, d)
			coldSt = st
			d, st, err = auditMemoLog(dir, memoEpochs, 256<<20)
			must(err)
			warms = append(warms, d)
			warmSt = st
		}
		os.RemoveAll(dir)

		if got, want := warmSt.Stats.ZeroMemo(), coldSt.Stats.ZeroMemo(); got != want {
			panic(fmt.Sprintf("experiments: memo panel diverged at repeat %.2f: cold %+v vs warm %+v", repeat, want, got))
		}
		hitRate := float64(warmSt.Stats.MemoHits) / float64(warmSt.Stats.Groups)
		if repeat == 1.0 {
			// Pure steady state: everything past the ramp must be a hit.
			if want := float64(memoEpochs-2) / memoEpochs; hitRate < want {
				panic(fmt.Sprintf("experiments: memo panel hit rate %.3f at repeat 1.0, want ≥ %.3f (hits %d of %d groups)",
					hitRate, want, warmSt.Stats.MemoHits, warmSt.Stats.Groups))
			}
		}
		mc, mw := median(colds), median(warms)
		p.Rows = append(p.Rows, []string{
			fmt.Sprintf("%.0f%%", repeat*100),
			fdur(mc),
			fdur(mw),
			fmt.Sprintf("%.2fx", float64(mc)/float64(mw)),
			fmt.Sprintf("%.0f%%", hitRate*100),
		})
	}
	return p
}
