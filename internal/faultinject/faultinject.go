// Package faultinject is a catalogue of deterministic, seedable fault
// operators for hardening the auditor against adversarial advice. The
// attack tests forge specific lies; the fuzz tests mutate structures at
// random; this package sits between the two: each operator models one
// *class* of corruption an adversarial (or merely broken) server could ship
// — truncated uploads, flipped bits, spliced blobs, inflated length fields,
// inflated opcounts, skewed log indexes, cyclic precedence chains,
// duplicated and dropped log entries, contradictory write orders — and
// applies it reproducibly from a seed. The invariant every operator is used
// to enforce: the auditor must answer with a *coded verdict* (accept, or a
// core.Reject carrying a RejectCode), never a panic, a stall, or an
// allocation blow-up.
//
// Operators come in two kinds. Byte operators corrupt the serialized wire
// format before decoding and exercise the codec's untrusted-input handling.
// Semantic operators decode the advice, corrupt one section structurally,
// and re-encode; they exercise the verifier proper. A note on "handler-tree
// cycles": hids are digests of their parent hids, so a literal cycle in the
// activation tree cannot be forged by advice — the advice-reachable
// projection of that attack is a cyclic write-precedence chain in the
// variable logs, which cycle-write-chain injects.
//
// Specs of the form "op:seed" (e.g. "truncate:7") drive the catalogue from
// the CLI and from tests.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
)

// Kind says what representation an operator corrupts.
type Kind uint8

const (
	// KindBytes operators corrupt the serialized wire bytes.
	KindBytes Kind = iota
	// KindSemantic operators corrupt the decoded advice structures.
	KindSemantic
)

func (k Kind) String() string {
	if k == KindBytes {
		return "bytes"
	}
	return "semantic"
}

// Op is one fault operator. Exactly one of bytes/semantic is set,
// matching Kind.
type Op struct {
	Name string
	Kind Kind
	Desc string

	bytes    func(r *rand.Rand, wire []byte) []byte
	semantic func(r *rand.Rand, a *advice.Advice) bool
}

// Mutate applies a semantic operator to decoded advice in place; it reports
// false when the operator is byte-level or found no site to corrupt (e.g.
// no transaction logs). Tests that already hold decoded advice use this
// directly; everything else goes through Apply.
func (op Op) Mutate(r *rand.Rand, a *advice.Advice) bool {
	if op.semantic == nil {
		return false
	}
	return op.semantic(r, a)
}

// Apply runs the operator against wire-format advice with a deterministic
// seed and returns the corrupted wire bytes. Semantic operators decode,
// corrupt, and re-encode; they fail if the input does not decode or offers
// no site for the corruption. Byte operators never fail.
func (op Op) Apply(seed int64, wire []byte) ([]byte, error) {
	r := rand.New(rand.NewSource(seed))
	if op.Kind == KindBytes {
		out := make([]byte, len(wire))
		copy(out, wire)
		return op.bytes(r, out), nil
	}
	a, err := advice.UnmarshalBinary(wire)
	if err != nil {
		return nil, fmt.Errorf("faultinject: %s needs decodable advice: %w", op.Name, err)
	}
	if !op.semantic(r, a) {
		return nil, fmt.Errorf("faultinject: %s found no applicable site in this advice", op.Name)
	}
	return a.MarshalBinary(), nil
}

// ParseSpec parses an "op" or "op:seed" spec (seed defaults to 0).
func ParseSpec(spec string) (Op, int64, error) {
	name, seedStr, hasSeed := strings.Cut(spec, ":")
	op, ok := Lookup(name)
	if !ok {
		return Op{}, 0, fmt.Errorf("faultinject: unknown operator %q (have %s)", name, strings.Join(Names(), ", "))
	}
	if !hasSeed {
		return op, 0, nil
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return Op{}, 0, fmt.Errorf("faultinject: bad seed in spec %q: %v", spec, err)
	}
	return op, seed, nil
}

// Lookup finds an operator by name.
func Lookup(name string) (Op, bool) {
	for _, op := range Catalogue() {
		if op.Name == name {
			return op, true
		}
	}
	return Op{}, false
}

// Names lists the catalogue's operator names, sorted.
func Names() []string {
	ops := Catalogue()
	names := make([]string, len(ops))
	for i, op := range ops {
		names[i] = op.Name
	}
	sort.Strings(names)
	return names
}

// Catalogue returns every fault operator.
func Catalogue() []Op {
	return []Op{
		{
			Name: "truncate", Kind: KindBytes,
			Desc:  "cut the wire blob at a random offset (interrupted upload)",
			bytes: truncateBytes,
		},
		{
			Name: "bit-flip", Kind: KindBytes,
			Desc:  "flip 1-8 random bits (storage or transport corruption)",
			bytes: bitFlip,
		},
		{
			Name: "splice", Kind: KindBytes,
			Desc:  "overwrite a random span with bytes copied from elsewhere in the blob",
			bytes: splice,
		},
		{
			Name: "length-inflate", Kind: KindBytes,
			Desc:  "overwrite a random offset with a near-maximal uvarint so some declared length claims ~2^62 elements",
			bytes: lengthInflate,
		},
		{
			Name: "opcount-inflate", Kind: KindSemantic,
			Desc:     "declare a handler issued 2^30 operations (allocation/time amplification)",
			semantic: opcountInflate,
		},
		{
			Name: "index-skew", Kind: KindSemantic,
			Desc:     "shift a transaction-log position index so a read cites the wrong write",
			semantic: indexSkew,
		},
		{
			Name: "cycle-write-chain", Kind: KindSemantic,
			Desc:     "make variable-log write precedences cyclic (probes chain-walk termination)",
			semantic: cycleWriteChain,
		},
		{
			Name: "cycle-write-order", Kind: KindSemantic,
			Desc:     "swap two installed writes of one key in the global write order",
			semantic: cycleWriteOrder,
		},
		{
			Name: "dup-log-entry", Kind: KindSemantic,
			Desc:     "duplicate one handler-log or variable-log entry",
			semantic: dupLogEntry,
		},
		{
			Name: "drop-log-entry", Kind: KindSemantic,
			Desc:     "drop one handler-log or variable-log entry",
			semantic: dropLogEntry,
		},
	}
}

// ---- byte operators ----

func truncateBytes(r *rand.Rand, wire []byte) []byte {
	if len(wire) == 0 {
		return wire
	}
	return wire[:r.Intn(len(wire))]
}

func bitFlip(r *rand.Rand, wire []byte) []byte {
	if len(wire) == 0 {
		return wire
	}
	for n := 1 + r.Intn(8); n > 0; n-- {
		i := r.Intn(len(wire))
		wire[i] ^= 1 << uint(r.Intn(8))
	}
	return wire
}

func splice(r *rand.Rand, wire []byte) []byte {
	if len(wire) < 2 {
		return wire
	}
	n := 1 + r.Intn(len(wire)/2+1)
	src := r.Intn(len(wire) - n + 1)
	dst := r.Intn(len(wire) - n + 1)
	copy(wire[dst:dst+n], wire[src:src+n])
	return wire
}

func lengthInflate(r *rand.Rand, wire []byte) []byte {
	// A uvarint of nine 0xFF continuation bytes and a small terminator
	// decodes to ~2^62; dropped at an arbitrary offset it lands on some
	// length field often enough, and on a string or value otherwise —
	// both must be survivable.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x3F}
	if len(wire) == 0 {
		return huge
	}
	i := r.Intn(len(wire))
	out := append(wire[:i:i], huge...)
	if i+len(huge) < len(wire) {
		out = append(out, wire[i+len(huge):]...)
	}
	return out
}

// ---- semantic operators ----

func pickRID(r *rand.Rand, m map[core.RID]map[core.HID]int) (core.RID, bool) {
	rids := make([]string, 0, len(m))
	for rid := range m {
		rids = append(rids, string(rid))
	}
	if len(rids) == 0 {
		return "", false
	}
	sort.Strings(rids)
	return core.RID(rids[r.Intn(len(rids))]), true
}

func opcountInflate(r *rand.Rand, a *advice.Advice) bool {
	rid, ok := pickRID(r, a.OpCounts)
	if !ok {
		return false
	}
	hids := make([]string, 0, len(a.OpCounts[rid]))
	for hid := range a.OpCounts[rid] {
		hids = append(hids, string(hid))
	}
	if len(hids) == 0 {
		return false
	}
	sort.Strings(hids)
	a.OpCounts[rid][core.HID(hids[r.Intn(len(hids))])] = 1 << 30
	return true
}

func indexSkew(r *rand.Rand, a *advice.Advice) bool {
	skew := func(i int) int {
		d := 1 + r.Intn(3)
		if r.Intn(2) == 0 && i > d {
			return i - d
		}
		return i + d
	}
	// Prefer a GET's read-from position; fall back to the write order.
	for i := range a.TxLogs {
		for j := range a.TxLogs[i].Ops {
			if rf := a.TxLogs[i].Ops[j].ReadFrom; rf != nil {
				rf.Index = skew(rf.Index)
				return true
			}
		}
	}
	if len(a.WriteOrder) > 0 {
		i := r.Intn(len(a.WriteOrder))
		a.WriteOrder[i].Index = skew(a.WriteOrder[i].Index)
		return true
	}
	return false
}

// cycleWriteChain forges cyclic write-precedence pointers in a variable
// log. Each write has at most one incoming precedence pointer (a duplicate
// rejects as a double overwrite), so any forged cycle is necessarily
// detached from the initializer chain — what this operator probes is that
// the verifier's chain walk terminates and stays coded on such advice, not
// that it detects the cycle: a detached cycle never influences replay
// output, so accepting it is sound.
func cycleWriteChain(r *rand.Rand, a *advice.Advice) bool {
	ids := make([]string, 0, len(a.VarLogs))
	for id := range a.VarLogs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, off := range r.Perm(len(ids)) {
		id := core.VarID(ids[off])
		var writes []int
		for i, e := range a.VarLogs[id] {
			if e.Type == advice.AccessWrite {
				writes = append(writes, i)
			}
		}
		if len(writes) == 0 {
			continue
		}
		if len(writes) == 1 {
			// Self-loop: the write claims to overwrite itself.
			i := writes[0]
			a.VarLogs[id][i].HasPrec = true
			a.VarLogs[id][i].Prec = a.VarLogs[id][i].Op
			return true
		}
		// Two-cycle: each of two writes claims to overwrite the other.
		i, j := writes[0], writes[1]
		a.VarLogs[id][i].HasPrec = true
		a.VarLogs[id][i].Prec = a.VarLogs[id][j].Op
		a.VarLogs[id][j].HasPrec = true
		a.VarLogs[id][j].Prec = a.VarLogs[id][i].Op
		return true
	}
	return false
}

// cycleWriteOrder swaps two installed writes of the same key in the global
// write order, so the advised order of that key's versions contradicts the
// transaction logs' read-from claims. Swapping writes of different keys
// would be semantically idle (the order between independent writes is not
// observable), so the operator requires a same-key pair.
func cycleWriteOrder(r *rand.Rand, a *advice.Advice) bool {
	if len(a.WriteOrder) < 2 {
		return false
	}
	keyOf := make(map[advice.TxPos]string)
	for i := range a.TxLogs {
		tl := &a.TxLogs[i]
		for j := range tl.Ops {
			if tl.Ops[j].Type == core.TxPut {
				keyOf[advice.TxPos{RID: tl.RID, TID: tl.TID, Index: j + 1}] = tl.Ops[j].Key
			}
		}
	}
	byKey := make(map[string][]int)
	for i, p := range a.WriteOrder {
		if k, ok := keyOf[p]; ok {
			byKey[k] = append(byKey[k], i)
		}
	}
	keys := make([]string, 0, len(byKey))
	for k, idx := range byKey {
		if len(idx) >= 2 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return false
	}
	sort.Strings(keys)
	idx := byKey[keys[r.Intn(len(keys))]]
	i := r.Intn(len(idx) - 1)
	j := i + 1 + r.Intn(len(idx)-i-1)
	a.WriteOrder[idx[i]], a.WriteOrder[idx[j]] = a.WriteOrder[idx[j]], a.WriteOrder[idx[i]]
	return true
}

func dupLogEntry(r *rand.Rand, a *advice.Advice) bool {
	if rid, ok := pickRID(r, a.OpCounts); ok && len(a.HandlerLogs[rid]) > 0 {
		log := a.HandlerLogs[rid]
		a.HandlerLogs[rid] = append(log, log[r.Intn(len(log))])
		return true
	}
	ids := make([]string, 0, len(a.VarLogs))
	for id := range a.VarLogs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, off := range r.Perm(len(ids)) {
		id := core.VarID(ids[off])
		if len(a.VarLogs[id]) == 0 {
			continue
		}
		entries := a.VarLogs[id]
		a.VarLogs[id] = append(entries, entries[r.Intn(len(entries))])
		return true
	}
	return false
}

func dropLogEntry(r *rand.Rand, a *advice.Advice) bool {
	if rid, ok := pickRID(r, a.OpCounts); ok && len(a.HandlerLogs[rid]) > 0 {
		log := a.HandlerLogs[rid]
		i := r.Intn(len(log))
		a.HandlerLogs[rid] = append(log[:i:i], log[i+1:]...)
		return true
	}
	ids := make([]string, 0, len(a.VarLogs))
	for id := range a.VarLogs {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, off := range r.Perm(len(ids)) {
		id := core.VarID(ids[off])
		if len(a.VarLogs[id]) == 0 {
			continue
		}
		entries := a.VarLogs[id]
		i := r.Intn(len(entries))
		a.VarLogs[id] = append(entries[:i:i], entries[i+1:]...)
		return true
	}
	return false
}
