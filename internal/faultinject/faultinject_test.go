// The property the catalogue enforces, end to end: whatever fault an
// operator injects into honest advice — at the byte level or the structure
// level — the auditor answers with a coded verdict. No panic escapes, no
// audit outruns its deadline, and mutants that change replay semantics
// reject. This is the fault-injection counterpart of the verifier's
// attack tests (targeted forgeries) and mutation fuzz (random structure
// edits).
package faultinject_test

import (
	"testing"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/apps/stacks"
	"karousos.dev/karousos/internal/apps/wiki"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

type target struct {
	name string
	mk   func() (*core.App, *kvstore.Store)
	gen  func(seed int64) []server.Request
}

func targets() []target {
	return []target{
		{
			"motd",
			func() (*core.App, *kvstore.Store) { return motd.New(), nil },
			func(seed int64) []server.Request { return workload.MOTD(10, workload.Mixed, seed) },
		},
		{
			"stacks",
			func() (*core.App, *kvstore.Store) { return stacks.New(), kvstore.New(kvstore.Serializable) },
			func(seed int64) []server.Request {
				return workload.Stacks(10, workload.Mixed, seed, workload.DefaultStacksOptions())
			},
		},
		{
			"wiki",
			func() (*core.App, *kvstore.Store) { return wiki.New(), kvstore.New(kvstore.Serializable) },
			func(seed int64) []server.Request { return workload.Wiki(10, seed) },
		},
	}
}

// auditWire decodes and audits wire-format advice the way the CLI does: a
// decode failure is a MalformedAdvice verdict at the boundary, an Audit
// error must carry a RejectCode, and nothing may panic.
func auditWire(t *testing.T, tgt target, tr *trace.Trace, wire []byte, lim verifier.Limits) (accepted bool, code core.RejectCode) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped the audit boundary: %v", r)
		}
	}()
	adv, err := advice.UnmarshalBinary(wire)
	if err != nil {
		return false, core.RejectMalformedAdvice
	}
	app, _ := tgt.mk()
	_, err = verifier.Audit(verifier.Config{
		App: app, Mode: advice.ModeKarousos, Isolation: adya.Serializable, Limits: lim,
	}, tr, adv)
	if err == nil {
		return true, ""
	}
	code = core.RejectCodeOf(err)
	if code == "" {
		t.Fatalf("rejection without a reason code: %v", err)
	}
	return false, code
}

// TestCatalogueProperty sweeps every operator over honest runs of all three
// applications: many seeded mutants per operator, each audited under a 10s
// deadline. Byte-level mutants may occasionally be semantics-preserving
// (e.g. a bit flip inside a grouping tag), so a small acceptance rate is
// tolerated there; operators whose injected fault always changes replay
// semantics must reject every time.
func TestCatalogueProperty(t *testing.T) {
	const deadline = 10 * time.Second
	lim := verifier.DefaultLimits()
	lim.Deadline = deadline
	mutants := 200
	if testing.Short() {
		mutants = 20
	}
	mustReject := map[string]bool{
		"opcount-inflate": true,
	}
	// cycle-write-chain forges detached precedence cycles; they never
	// influence replay output, so acceptance is sound — the operator probes
	// that the chain walk terminates with a coded verdict, not detection.
	// The acceptance-ratio heuristic therefore doesn't apply to it.
	terminationProbe := map[string]bool{
		"cycle-write-chain": true,
	}
	for _, tgt := range targets() {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			app, store := tgt.mk()
			srv := server.New(server.Config{App: app, Store: store, Seed: 11, CollectKarousos: true})
			res, err := srv.Run(tgt.gen(7), 4)
			if err != nil {
				t.Fatal(err)
			}
			wire := res.Karousos.MarshalBinary()
			if ok, _ := auditWire(t, tgt, res.Trace, wire, lim); !ok {
				t.Fatal("honest baseline rejected")
			}
			for _, op := range faultinject.Catalogue() {
				op := op
				t.Run(op.Name, func(t *testing.T) {
					applied, accepted := 0, 0
					for seed := 0; seed < mutants; seed++ {
						mut, err := op.Apply(int64(seed), wire)
						if err != nil {
							if op.Kind == faultinject.KindSemantic {
								continue // no applicable site in this advice
							}
							t.Fatal(err)
						}
						applied++
						start := time.Now()
						ok, code := auditWire(t, tgt, res.Trace, mut, lim)
						if el := time.Since(start); el > deadline+5*time.Second {
							t.Fatalf("seed %d: audit overran the %v deadline (took %v)", seed, deadline, el)
						}
						if ok {
							accepted++
							if mustReject[op.Name] {
								t.Errorf("seed %d: semantics-changing mutant accepted", seed)
							}
						} else if code == "" {
							t.Errorf("seed %d: rejected without a code", seed)
						}
					}
					if applied == 0 {
						t.Skipf("no applicable site in %s advice", tgt.name)
					}
					if !terminationProbe[op.Name] && accepted*4 > applied {
						t.Errorf("suspiciously many mutants accepted: %d/%d", accepted, applied)
					}
					t.Logf("%d mutants, %d accepted", applied, accepted)
				})
			}
		})
	}
}

// TestApplyDeterministic: same spec, same input, same output — the property
// that makes "reproduce with -faultinject op:seed" meaningful.
func TestApplyDeterministic(t *testing.T) {
	tgt := targets()[0]
	app, store := tgt.mk()
	srv := server.New(server.Config{App: app, Store: store, Seed: 3, CollectKarousos: true})
	res, err := srv.Run(tgt.gen(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	wire := res.Karousos.MarshalBinary()
	for _, op := range faultinject.Catalogue() {
		a, errA := op.Apply(42, wire)
		b, errB := op.Apply(42, wire)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: nondeterministic error", op.Name)
		}
		if errA != nil {
			continue
		}
		if string(a) != string(b) {
			t.Errorf("%s: same seed produced different mutants", op.Name)
		}
		c, errC := op.Apply(43, wire)
		if errC == nil && string(a) == string(c) && op.Name != "truncate" {
			// Different seeds usually differ; tolerate collisions only for
			// operators with tiny choice spaces on this small advice.
			t.Logf("%s: seeds 42 and 43 collided (small choice space)", op.Name)
		}
	}
}

func TestParseSpec(t *testing.T) {
	op, seed, err := faultinject.ParseSpec("bit-flip:9")
	if err != nil || op.Name != "bit-flip" || seed != 9 {
		t.Fatalf("got %v %d %v", op.Name, seed, err)
	}
	if _, seed, err = faultinject.ParseSpec("truncate"); err != nil || seed != 0 {
		t.Fatalf("bare name: seed %d err %v", seed, err)
	}
	if _, _, err = faultinject.ParseSpec("no-such-op:1"); err == nil {
		t.Fatal("unknown operator accepted")
	}
	if _, _, err = faultinject.ParseSpec("bit-flip:many"); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestNamesCoverCatalogue(t *testing.T) {
	names := faultinject.Names()
	if len(names) != len(faultinject.Catalogue()) {
		t.Fatalf("%d names for %d operators", len(names), len(faultinject.Catalogue()))
	}
	for _, n := range names {
		if _, ok := faultinject.Lookup(n); !ok {
			t.Errorf("Lookup(%q) failed", n)
		}
	}
}
