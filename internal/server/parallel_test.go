package server

import (
	"testing"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// TestParallelDispatchCompletes: the multi-worker dispatch loop must serve
// every request exactly once with a balanced trace.
func TestParallelDispatchCompletes(t *testing.T) {
	srv := New(Config{App: treeApp(), Seed: 1, Workers: 8, CollectKarousos: true})
	var reqs []Request
	for i := 0; i < 60; i++ {
		reqs = append(reqs, req(string(rune('a'+i%26))+string(rune('a'+i/26)), i))
	}
	res, err := srv.Run(reqs, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
	if got := len(res.Trace.RIDs()); got != 60 {
		t.Errorf("served %d requests, want 60", got)
	}
	if len(res.Karousos.Tags) != 60 {
		t.Errorf("tags for %d requests, want 60", len(res.Karousos.Tags))
	}
}

// TestParallelRaceDetector exercises the parallel server under the race
// detector (go test -race) with the transactional application, which mixes
// variable state, store transactions, and conflicts.
func TestParallelRaceDetector(t *testing.T) {
	store := kvstore.New(kvstore.Serializable)
	srv := New(Config{App: txApp(), Store: store, Seed: 1, Workers: 8, CollectKarousos: true, CollectOrochi: true})
	var reqs []Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, Request{RID: core.RID(value.DigestString(value.List(i)))})
	}
	res, err := srv.Run(reqs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Trace.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelMutexProvidesAtomicRMW: handlers performing read-modify-write
// on a shared variable in one handler body are atomic per access but NOT per
// RMW pair — under true parallelism, increments can be lost exactly as in a
// real racy program, and the audit must still accept the execution because
// it is a legal KEM schedule. This test only checks the execution completes
// and the final counter never exceeds the request count.
func TestParallelMutexProvidesAtomicRMW(t *testing.T) {
	var counter *core.Variable
	app := &core.App{Name: "ctr", RequestEvent: "request"}
	app.Init = func(ctx *core.Context) {
		counter = ctx.VarNew("n", ctx.Scalar(0))
		ctx.Register("request", "inc")
	}
	app.Funcs = map[core.FunctionID]core.HandlerFunc{
		"inc": func(ctx *core.Context, p *mv.MV) {
			v := ctx.Read(counter)
			ctx.Write(counter, ctx.Apply(func(a []value.V) value.V {
				return a[0].(float64) + 1
			}, v))
			ctx.Respond(v)
		},
	}
	srv := New(Config{App: app, Seed: 1, Workers: 8})
	var reqs []Request
	for i := 0; i < 50; i++ {
		reqs = append(reqs, Request{RID: core.RID(value.DigestString(value.List(i)))})
	}
	res, err := srv.Run(reqs, 16)
	if err != nil {
		t.Fatal(err)
	}
	max := float64(-1)
	for _, out := range res.Trace.Outputs() {
		if f, ok := out.(float64); ok && f > max {
			max = f
		}
	}
	if max >= 50 {
		t.Errorf("counter read %v, exceeds request count", max)
	}
}
