package server

import (
	"fmt"
	"sort"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
)

// This file is the server side of the continuous-audit pipeline: instead of
// serving one finite workload and materializing the whole trace and advice
// at the end (Run), an HTTP front-end serves requests one at a time
// (ServeOne) and periodically seals an epoch by draining the advice
// accumulated so far (DrainAdvice). The two modes must not be mixed on one
// Server: Run snapshots the store's full binlog, DrainAdvice tracks deltas.

// ServeOne serves a single request to completion on the single-threaded
// dispatch loop and returns its normalized response payload. The request is
// recorded through the trusted collector exactly as under Run.
func (s *Server) ServeOne(r Request) (value.V, error) {
	if s.parallel {
		return nil, fmt.Errorf("server: ServeOne requires the single-threaded loop (Workers ≤ 1)")
	}
	s.admit(r)
	for len(s.pending) > 0 {
		i := s.rng.Intn(len(s.pending))
		act := s.pending[i]
		s.pending[i] = s.pending[len(s.pending)-1]
		s.pending = s.pending[:len(s.pending)-1]
		s.runActivation(act)
		rs := s.requests[act.rid]
		rs.outstanding--
		if rs.outstanding == 0 {
			if !rs.responded {
				return nil, fmt.Errorf("server: request %s finished without responding", act.rid)
			}
			s.finishRequest(act.rid, rs)
		}
	}
	return s.requests[r.RID].respVal, nil
}

// TakeTrace drains the events recorded by the server's internal collector
// since the previous call. An external front-end that records its own
// ground truth uses this to keep the internal collector's buffer empty.
func (s *Server) TakeTrace() *trace.Trace {
	return s.collector.Trace()
}

// DrainAdvice seals the server side of an epoch: it hands back the advice
// collected since the previous drain and rebases the in-memory runtime
// state so the next epoch's advice is self-contained.
//
// Rebasing is the heart of cross-epoch auditing. Each variable's
// most-recent-write marker is reassigned to a synthetic init-level op
// {InitRID, InitHID, EpochCarryBase+i} (variables in sorted id order —
// the identity the verifier reconstructs when it injects carried state, see
// verifier.CarryState). Because init-labeled ops R-precede every request
// op, the first accesses of the next epoch are not R-concurrent with the
// carried write and therefore go unlogged, exactly like first accesses
// after a real init; the verifier resolves them through the carried version
// dictionary. No op identity from a drained epoch ever appears in a later
// epoch's advice, which would otherwise reject as referencing a request
// absent from that epoch's trace.
//
// The store's write order and transaction order are emitted as deltas:
// only binlog installations and tx events since the previous drain.
func (s *Server) DrainAdvice() (kar, oro *advice.Advice) {
	s.lock()
	defer s.unlock()
	kar, oro = s.kar, s.oro
	if s.kar != nil {
		s.kar = advice.New(advice.ModeKarousos)
	}
	if s.oro != nil {
		s.oro = advice.New(advice.ModeOrochiJS)
	}
	s.wireKar, s.wireOro = nil, nil

	if s.cfg.Store != nil {
		binlog := s.cfg.Store.Binlog()
		var wo []advice.TxPos
		for _, ref := range binlog[s.binlogDrained:] {
			wo = append(wo, advice.TxPos{RID: ref.RID, TID: ref.TID, Index: ref.Index})
		}
		s.binlogDrained = len(binlog)
		events := s.cfg.Store.TxEvents()
		var to []advice.TxOrderEvent
		for _, ev := range events[s.txEventsDrained:] {
			to = append(to, advice.TxOrderEvent{Kind: uint8(ev.Kind), RID: ev.RID, TID: ev.TID})
		}
		s.txEventsDrained = len(events)
		if kar != nil {
			kar.WriteOrder, kar.TxOrder = wo, to
		}
		if oro != nil {
			oro.WriteOrder = append([]advice.TxPos(nil), wo...)
			oro.TxOrder = append([]advice.TxOrderEvent(nil), to...)
		}
	}

	// Rebase every variable's last-write marker onto its carry identity.
	ids := make([]string, 0, len(s.vars))
	for id := range s.vars {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for i, id := range ids {
		vs := s.vars[core.VarID(id)]
		op := core.Op{RID: core.InitRID, HID: core.InitHID, Num: core.EpochCarryBase + i}
		vs.last = core.TaggedOp{Op: op, Label: core.InitLabel}
		vs.karLogged = map[core.Op]bool{op: true}
		vs.oroLogged = map[core.Op]bool{op: true}
	}

	// Served requests' per-request state was already folded into the drained
	// advice; drop it so a long-running server's memory stays bounded. Rids
	// must never repeat across epochs (the HTTP collector assigns them
	// monotonically).
	for rid, rs := range s.requests {
		if rs.outstanding == 0 {
			delete(s.requests, rid)
		}
	}
	return kar, oro
}
