package server

import (
	"strings"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// treeApp is a minimal application shaped like Figure 3: the request handler
// writes a shared variable and activates two children; both children read the
// variable and the second also writes it, then responds.
func treeApp() *core.App {
	var x *core.Variable
	app := &core.App{
		Name:         "tree",
		RequestEvent: "request",
	}
	app.Init = func(ctx *core.Context) {
		x = ctx.VarNew("x", ctx.Scalar(0))
		ctx.Register("request", "root")
		ctx.Register("child", "reader")
		ctx.Register("final", "writer")
	}
	app.Funcs = map[core.FunctionID]core.HandlerFunc{
		"root": func(ctx *core.Context, p *mv.MV) {
			ctx.Write(x, ctx.Apply(func(a []value.V) value.V {
				return appkit.Num(appkit.Field(a[0], "n"))
			}, p))
			ctx.Emit("child", p)
			ctx.Emit("final", p)
		},
		"reader": func(ctx *core.Context, p *mv.MV) {
			_ = ctx.Read(x)
		},
		"writer": func(ctx *core.Context, p *mv.MV) {
			v := ctx.Read(x)
			ctx.Write(x, ctx.Apply(func(a []value.V) value.V {
				return a[0].(float64) + 1
			}, v))
			ctx.Respond(v)
		},
	}
	return app
}

func req(rid string, n int) Request {
	return Request{RID: core.RID(rid), Input: value.Map("n", n)}
}

func serveTree(t *testing.T, reqs []Request, conc int, seed int64) *Result {
	t.Helper()
	srv := New(Config{App: treeApp(), Seed: seed, CollectKarousos: true, CollectOrochi: true})
	res, err := srv.Run(reqs, conc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTraceShape(t *testing.T) {
	res := serveTree(t, []Request{req("r1", 5), req("r2", 7)}, 1, 1)
	if err := res.Trace.CheckBalanced(); err != nil {
		t.Fatal(err)
	}
	outs := res.Trace.Outputs()
	if !value.Equal(outs["r1"], float64(5)) {
		t.Errorf("r1 output = %v (writer child reads the root's write)", outs["r1"])
	}
}

func TestOpCountsAndResponseEmittedBy(t *testing.T) {
	res := serveTree(t, []Request{req("r1", 5)}, 1, 1)
	counts := res.Karousos.OpCounts["r1"]
	if len(counts) != 3 {
		t.Fatalf("expected 3 activations, got %d", len(counts))
	}
	root := core.RequestHID("root", "request")
	if counts[root] != 3 { // write + 2 emits
		t.Errorf("root opcount = %d, want 3", counts[root])
	}
	at := res.Karousos.ResponseEmittedBy["r1"]
	if counts[at.HID] != 2 || at.OpNum != 2 {
		t.Errorf("responseEmittedBy = %+v (writer: read+write then respond)", at)
	}
}

// fanApp is exactly the §4.2 discussion example: the request handler writes
// the variable, then activates n read-only children. Every read observes an
// ancestor's write, so no logging is needed no matter how the children are
// reordered.
func fanApp() *core.App {
	var x *core.Variable
	app := &core.App{Name: "fan", RequestEvent: "request"}
	app.Init = func(ctx *core.Context) {
		x = ctx.VarNew("x", ctx.Scalar(0))
		ctx.Register("request", "root")
		ctx.Register("read", "leaf")
	}
	app.Funcs = map[core.FunctionID]core.HandlerFunc{
		"root": func(ctx *core.Context, p *mv.MV) {
			ctx.Write(x, ctx.Apply(func(a []value.V) value.V {
				return appkit.Num(appkit.Field(a[0], "n"))
			}, p))
			ctx.Emit("read", p)
			ctx.Emit("read", p)
			ctx.Emit("read", p)
			ctx.Respond(ctx.Scalar("ok"))
		},
		"leaf": func(ctx *core.Context, p *mv.MV) {
			_ = ctx.Read(x)
		},
	}
	return app
}

// TestROrderedAccessesNotLogged is the Figure 3/§4.2 discussion: with one
// request, every child read observes the ancestor's write, so Karousos logs
// nothing while Orochi-JS logs every access — regardless of how the three
// sibling readers are scheduled.
func TestROrderedAccessesNotLogged(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		srv := New(Config{App: fanApp(), Seed: seed, CollectKarousos: true, CollectOrochi: true})
		res, err := srv.Run([]Request{req("r1", 5)}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(res.Karousos.VarLogs["x"]); n != 0 {
			t.Errorf("seed %d: karousos logged %d entries for a fully R-ordered request, want 0", seed, n)
		}
		// Orochi: the lazily logged init write (the root write's
		// predecessor reference), the root write, and 3 leaf reads.
		if n := len(res.Orochi.VarLogs["x"]); n != 5 {
			t.Errorf("seed %d: orochi logged %d entries, want 5", seed, n)
		}
	}
}

// TestCrossRequestAccessesLogged: with two sequential requests, the second
// request's accesses observe the first request's write — R-concurrent, so
// Karousos must log them (and lazily log the dictating write).
func TestCrossRequestAccessesLogged(t *testing.T) {
	res := serveTree(t, []Request{req("r1", 5), req("r2", 7)}, 1, 1)
	log := res.Karousos.VarLogs["x"]
	if len(log) == 0 {
		t.Fatal("cross-request accesses must be logged")
	}
	// The first logged entry must be a lazily logged write (no predecessor).
	if log[0].Type != advice.AccessWrite || log[0].HasPrec {
		t.Errorf("first entry should be a lazily logged write, got %+v", log[0])
	}
	var reads, writes int
	for _, e := range log {
		switch e.Type {
		case advice.AccessRead:
			reads++
			if !e.HasPrec {
				t.Error("logged read without dictating write")
			}
		case advice.AccessWrite:
			writes++
		}
	}
	if reads == 0 || writes == 0 {
		t.Errorf("expected both reads and writes logged, got %d/%d", reads, writes)
	}
}

func TestKarousosTagsGroupEqualTrees(t *testing.T) {
	res := serveTree(t, []Request{req("r1", 1), req("r2", 2), req("r3", 3)}, 3, 99)
	tags := res.Karousos.Tags
	if tags["r1"] != tags["r2"] || tags["r2"] != tags["r3"] {
		t.Errorf("equal trees should share a tag: %v", tags)
	}
}

// TestOrochiTagsSplitOnSiblingOrder: the two children are unordered, so over
// enough requests the scheduler produces both execution orders; Orochi-JS
// tags must then differ while the Karousos tag stays unique.
func TestOrochiTagsSplitOnSiblingOrder(t *testing.T) {
	var reqs []Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs, req("r"+string(rune('a'+i)), i))
	}
	res := serveTree(t, reqs, 4, 5)
	kar := map[string]bool{}
	oro := map[string]bool{}
	for _, rq := range reqs {
		kar[res.Karousos.Tags[rq.RID]] = true
		oro[res.Orochi.Tags[rq.RID]] = true
	}
	if len(kar) != 1 {
		t.Errorf("karousos tags = %d, want 1 (order-insensitive)", len(kar))
	}
	if len(oro) < 2 {
		t.Errorf("orochi tags = %d, want ≥2 (order-sensitive)", len(oro))
	}
}

func TestDeterministicAdvicePerSeed(t *testing.T) {
	reqs := []Request{req("r1", 1), req("r2", 2), req("r3", 3)}
	a := serveTree(t, reqs, 2, 42)
	b := serveTree(t, reqs, 2, 42)
	if string(a.Karousos.MarshalBinary()) != string(b.Karousos.MarshalBinary()) {
		t.Error("same seed produced different advice")
	}
	c := serveTree(t, reqs, 2, 43)
	_ = c // different seed may or may not differ; only determinism is required
}

func TestHandlerLogOrderAndContents(t *testing.T) {
	res := serveTree(t, []Request{req("r1", 5)}, 1, 1)
	log := res.Karousos.HandlerLogs["r1"]
	if len(log) != 2 {
		t.Fatalf("handler log = %d entries, want 2 emits", len(log))
	}
	if log[0].Kind != advice.OpEmit || log[0].Event != "child" {
		t.Errorf("first emit = %+v", log[0])
	}
	if log[1].Kind != advice.OpEmit || log[1].Event != "final" {
		t.Errorf("second emit = %+v", log[1])
	}
	if log[0].OpNum != 2 || log[1].OpNum != 3 {
		t.Errorf("emit op numbers = %d,%d, want 2,3", log[0].OpNum, log[1].OpNum)
	}
}

func TestUnmodifiedServerCollectsNothing(t *testing.T) {
	srv := New(Config{App: treeApp(), Seed: 1})
	res, err := srv.Run([]Request{req("r1", 5)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Karousos != nil || res.Orochi != nil {
		t.Error("unmodified server produced advice")
	}
	if len(res.Trace.Events) != 2 {
		t.Error("unmodified server must still produce the trace")
	}
}

func TestConcurrencyWindow(t *testing.T) {
	// With concurrency 1, request r2's REQ event must appear after r1's RESP.
	res := serveTree(t, []Request{req("r1", 1), req("r2", 2)}, 1, 7)
	var order []string
	for _, e := range res.Trace.Events {
		order = append(order, e.Kind.String()+":"+e.RID)
	}
	want := "REQ:r1 RESP:r1 REQ:r2 RESP:r2"
	if strings.Join(order, " ") != want {
		t.Errorf("trace order = %v", order)
	}
}

func TestDuplicateRIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate rid should panic")
		}
	}()
	srv := New(Config{App: treeApp(), Seed: 1})
	_, _ = srv.Run([]Request{req("r1", 1), req("r1", 2)}, 2)
}

func TestZeroConcurrencyRejected(t *testing.T) {
	srv := New(Config{App: treeApp(), Seed: 1})
	if _, err := srv.Run(nil, 0); err == nil {
		t.Error("concurrency 0 accepted")
	}
}

// --- transactional logging ---

// txApp: the request handler starts a transaction, GETs a row, emits a
// continuation that PUTs and commits, then responds. The transaction spans
// two handlers, as §4.4 allows.
func txApp() *core.App {
	app := &core.App{Name: "txapp", RequestEvent: "request"}
	type txCarrier struct{ tx *core.Tx }
	carriers := map[core.RID]*txCarrier{} // keyed per request; handlers of one request are not concurrent
	app.Init = func(ctx *core.Context) {
		ctx.Register("request", "start")
		ctx.Register("finish", "finish")
	}
	app.Funcs = map[core.FunctionID]core.HandlerFunc{
		"start": func(ctx *core.Context, p *mv.MV) {
			tx := ctx.TxStart()
			cur, ok := ctx.Get(tx, ctx.Scalar("row"))
			if !ctx.BranchBool("get-ok", ok) {
				ctx.Respond(ctx.Scalar("retry"))
				return
			}
			carriers[ctx.RIDs()[0]] = &txCarrier{tx: tx}
			ctx.Emit("finish", cur)
		},
		"finish": func(ctx *core.Context, p *mv.MV) {
			tx := carriers[ctx.RIDs()[0]].tx
			n := ctx.Apply(func(a []value.V) value.V {
				return appkit.Num(a[0]) + 1
			}, p)
			if !ctx.BranchBool("put-ok", ctx.Put(tx, ctx.Scalar("row"), n)) {
				ctx.Respond(ctx.Scalar("retry"))
				return
			}
			if !ctx.BranchBool("commit-ok", ctx.Commit(tx)) {
				ctx.Respond(ctx.Scalar("retry"))
				return
			}
			ctx.Respond(n)
		},
	}
	return app
}

func TestTransactionLogging(t *testing.T) {
	store := kvstore.New(kvstore.Serializable)
	srv := New(Config{App: txApp(), Store: store, Seed: 1, CollectKarousos: true})
	res, err := srv.Run([]Request{{RID: "r1", Input: nil}, {RID: "r2", Input: nil}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Karousos.TxLogs) != 2 {
		t.Fatalf("tx logs = %d, want 2", len(res.Karousos.TxLogs))
	}
	// Sequential requests both commit; the write order has both PUTs.
	if len(res.Karousos.WriteOrder) != 2 {
		t.Errorf("write order = %v", res.Karousos.WriteOrder)
	}
	// Second request's GET must read from the first request's PUT.
	var second *advice.TxLog
	for i := range res.Karousos.TxLogs {
		if res.Karousos.TxLogs[i].RID == "r2" {
			second = &res.Karousos.TxLogs[i]
		}
	}
	if second == nil {
		t.Fatal("no tx log for r2")
	}
	var get *advice.TxOp
	for i := range second.Ops {
		if second.Ops[i].Type == core.TxGet {
			get = &second.Ops[i]
		}
	}
	if get == nil || get.ReadFrom == nil || get.ReadFrom.RID != "r1" {
		t.Errorf("r2's GET should read from r1's PUT: %+v", get)
	}
	// Outputs: r1 sees absent row → 1; r2 reads 1 → 2.
	outs := res.Trace.Outputs()
	if !value.Equal(outs["r1"], float64(1)) || !value.Equal(outs["r2"], float64(2)) {
		t.Errorf("outputs = %v", outs)
	}
}

func TestConflictLogsAbort(t *testing.T) {
	// Interleave two requests so both GET the row before either PUTs: the
	// second PUT conflicts with the first's read lock and the transaction
	// aborts, which must be recorded as tx_abort at that op position.
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		store := kvstore.New(kvstore.Serializable)
		srv := New(Config{App: txApp(), Store: store, Seed: seed, CollectKarousos: true})
		res, err := srv.Run([]Request{{RID: "r1"}, {RID: "r2"}}, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, tl := range res.Karousos.TxLogs {
			last := tl.Ops[len(tl.Ops)-1]
			if last.Type == core.TxAbort {
				found = true
				if !value.Equal(res.Trace.Outputs()[string(tl.RID)], "retry") {
					t.Errorf("aborted request should respond retry")
				}
			}
		}
	}
	if !found {
		t.Error("no seed produced a conflict; scheduler interleaving suspect")
	}
}

func TestNondetRecording(t *testing.T) {
	app := &core.App{Name: "nd", RequestEvent: "request"}
	app.Init = func(ctx *core.Context) { ctx.Register("request", "h") }
	calls := 0
	app.Funcs = map[core.FunctionID]core.HandlerFunc{
		"h": func(ctx *core.Context, p *mv.MV) {
			v := ctx.Nondet("clock", func(rid core.RID) value.V {
				calls++
				return float64(calls * 100)
			})
			ctx.Respond(v)
		},
	}
	srv := New(Config{App: app, Seed: 1, CollectKarousos: true})
	res, err := srv.Run([]Request{{RID: "r1"}, {RID: "r2"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Karousos.Nondet) != 2 {
		t.Fatalf("nondet entries = %d", len(res.Karousos.Nondet))
	}
	if !value.Equal(res.Trace.Outputs()["r1"], float64(100)) {
		t.Error("nondet result not delivered to the response")
	}
}

func TestRequestWithoutResponseFails(t *testing.T) {
	app := &core.App{Name: "mute", RequestEvent: "request"}
	app.Init = func(ctx *core.Context) { ctx.Register("request", "h") }
	app.Funcs = map[core.FunctionID]core.HandlerFunc{
		"h": func(ctx *core.Context, p *mv.MV) {},
	}
	srv := New(Config{App: app, Seed: 1})
	if _, err := srv.Run([]Request{{RID: "r1"}}, 1); err == nil {
		t.Error("request that never responds should error")
	}
}

func TestRegisterUnregisterDynamics(t *testing.T) {
	// A handler registered mid-request receives subsequent emits; after
	// unregister it does not.
	app := &core.App{Name: "dyn", RequestEvent: "request"}
	app.Init = func(ctx *core.Context) {
		ctx.Register("request", "root")
		ctx.Register("ping", "always")
	}
	app.Funcs = map[core.FunctionID]core.HandlerFunc{
		"root": func(ctx *core.Context, p *mv.MV) {
			ctx.Register("ping", "dynamic")
			ctx.Emit("ping", ctx.Scalar("first"))
			ctx.Unregister("ping", "dynamic")
			ctx.Emit("ping", ctx.Scalar("second"))
			ctx.Respond(ctx.Scalar("done"))
		},
		"always":  func(ctx *core.Context, p *mv.MV) {},
		"dynamic": func(ctx *core.Context, p *mv.MV) {},
	}
	srv := New(Config{App: app, Seed: 1, CollectKarousos: true})
	res, err := srv.Run([]Request{{RID: "r1"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Karousos.OpCounts["r1"]
	// Activations: root, always×2 (both emits), dynamic×1 (first emit only).
	if len(counts) != 4 {
		t.Errorf("activations = %d, want 4 (%v)", len(counts), counts)
	}
}
