// Package server implements the online, untrusted-side runtime: a KEM
// dispatch loop (paper §3) that serves requests against an application,
// records the ground-truth trace through the trusted collector, and — when
// advice collection is enabled — produces the advice of Appendix C.1.3:
// control-flow tags (§4.1/§5), handler logs, R-concurrency-filtered variable
// logs (Figure 13), transaction logs with dictating PUTs, the binlog-derived
// write order, opcounts, responseEmittedBy, and recorded non-determinism.
//
// The same runtime serves three roles via configuration: the unmodified
// baseline (no collection), the Karousos server, and the Orochi-JS server
// (sequence-based tags, log-every-access variable logs). Karousos and
// Orochi-JS advice can be collected in one run, which is how the paper's
// artifact produces verification-time comparisons from a single trace.
//
// Like Node.js, the dispatch loop runs handlers to completion one at a time;
// concurrency is the interleaving of many in-flight requests' pending
// activations. A seeded scheduler picks the next activation, so experiments
// are reproducible while still exercising R-concurrency and transaction
// conflicts.
package server

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
)

// Config configures a server run.
type Config struct {
	// App is the application factory's product for this runtime.
	App *core.App
	// Store is the transactional KV store; nil if the app uses none.
	Store *kvstore.Store
	// Seed drives the activation scheduler.
	Seed int64
	// Workers selects the dispatch mode: 0 or 1 is the Node.js-style
	// single-threaded loop; higher values run that many OS threads executing
	// handler activations in parallel. KEM explicitly permits concurrently
	// executing handlers (§3: "KEM models a runtime that can have multiple
	// concurrent threads"), and the audit algorithms make no assumption
	// about the dispatch loop — the verifier is unchanged in this mode.
	// Parallel runs are not deterministic in Seed.
	Workers int
	// CollectKarousos enables Karousos advice collection.
	CollectKarousos bool
	// CollectOrochi enables Orochi-JS advice collection.
	CollectOrochi bool
}

// Request is one incoming request to serve.
type Request struct {
	RID   core.RID
	Input value.V
}

// Result carries everything a run produced.
type Result struct {
	Trace    *trace.Trace
	Karousos *advice.Advice // nil unless collected
	Orochi   *advice.Advice // nil unless collected
	// Conflicts counts store-level transaction aborts due to contention.
	Conflicts int
}

// Server executes an application under the KEM dispatch loop.
type Server struct {
	cfg       Config
	rng       *rand.Rand
	collector *trace.Collector

	kar *advice.Advice
	oro *advice.Advice

	// wireKar/wireOro accumulate the streamed wire encoding of log entries
	// as they are produced. A deployed server ships advice continuously
	// rather than materializing it at the end of an audit period, so the
	// encoding cost — proportional to logged value sizes — is charged to the
	// serving path, exactly where the paper measures it (§6.1).
	wireKar []byte
	wireOro []byte

	// global listener table built by Init: registration order preserved.
	globalListeners map[core.EventName][]core.FunctionID

	vars map[core.VarID]*varState

	pending  []*activation
	requests map[core.RID]*reqState

	txs map[txKey]*txState

	// mu serializes every special operation (variable, handler, state, and
	// trace-recording operations) when Workers > 1; pure handler computation
	// runs outside it, which is where parallel dispatch gains. KEM assumes
	// sequentially consistent variable accesses (§3), which the mutex
	// provides. Single-threaded mode skips locking.
	mu       sync.Mutex
	parallel bool

	// states tracks each running activation's control-flow digest, keyed by
	// its context (one context per activation).
	states map[*core.Context]*runState

	// binlogDrained/txEventsDrained are the store cursors of the epoch
	// pipeline: DrainAdvice emits write-order and tx-order deltas past them.
	binlogDrained   int
	txEventsDrained int

	initDone bool
}

type txKey struct {
	rid core.RID
	tid core.TxID
}

type txState struct {
	txn *kvstore.Txn
	log []advice.TxOp
}

type reqState struct {
	outstanding int // pending or running activations
	responded   bool
	// handlerLog accumulates this request's handler operations in issue
	// order.
	handlerLog []advice.HandlerOp
	// listeners is the request-local listener table (global handlers plus
	// request-scoped registrations; Figure 16's per-request Registered set).
	listeners map[core.EventName][]core.FunctionID
	// opcounts per handler activation.
	opcounts map[core.HID]int
	// tag material: per handler (hid, control-flow digest), in activation
	// order for Orochi and as a set for Karousos.
	tagParts []tagPart
	// childCounters assigns activation labels: children per parent hid.
	childCounters map[core.HID]int
	response      advice.OpAt
	// respVal is the normalized response payload, kept so ServeOne can
	// return it to an HTTP front-end.
	respVal value.V
}

type tagPart struct {
	hid core.HID
	cfd uint64
}

type activation struct {
	rid     core.RID
	fn      core.FunctionID
	event   core.EventName
	hid     core.HID
	label   core.Label
	payload value.V
}

type varState struct {
	val  value.V
	last core.TaggedOp // most recent write (the Figure 13 v.rid/hid/opnum fields)

	karLogged map[core.Op]bool
	oroLogged map[core.Op]bool
}

// New builds a server and runs the application's initialization function
// (the designated init of §3): global handler registrations and variable
// initializations happen here, under the pseudo-activation I.
func New(cfg Config) *Server {
	s := &Server{
		cfg:             cfg,
		rng:             rand.New(rand.NewSource(cfg.Seed)),
		collector:       trace.NewCollector(),
		globalListeners: make(map[core.EventName][]core.FunctionID),
		vars:            make(map[core.VarID]*varState),
		requests:        make(map[core.RID]*reqState),
		txs:             make(map[txKey]*txState),
		states:          make(map[*core.Context]*runState),
		parallel:        cfg.Workers > 1,
	}
	if cfg.CollectKarousos {
		s.kar = advice.New(advice.ModeKarousos)
	}
	if cfg.CollectOrochi {
		s.oro = advice.New(advice.ModeOrochiJS)
	}
	if cfg.App.Init != nil {
		ictx := core.NewContext(s, []core.RID{core.InitRID}, core.InitHID, "", "", core.InitLabel)
		cfg.App.Init(ictx)
	}
	s.initDone = true
	return s
}

// Run serves the requests with the given admission concurrency and returns
// the trace plus collected advice. concurrency is the paper's "number of
// concurrent requests": at most that many requests are in flight at once.
func (s *Server) Run(reqs []Request, concurrency int) (*Result, error) {
	if concurrency < 1 {
		return nil, fmt.Errorf("server: concurrency must be ≥ 1, got %d", concurrency)
	}
	var runErr error
	if s.parallel {
		runErr = s.runParallel(reqs, concurrency)
	} else {
		runErr = s.runSingle(reqs, concurrency)
	}
	if runErr != nil {
		return nil, runErr
	}
	res := &Result{Trace: s.collector.Trace(), Karousos: s.kar, Orochi: s.oro}
	if s.cfg.Store != nil {
		_, aborts := s.cfg.Store.Stats()
		res.Conflicts = aborts
		wo := make([]advice.TxPos, 0)
		for _, ref := range s.cfg.Store.Binlog() {
			wo = append(wo, advice.TxPos{RID: ref.RID, TID: ref.TID, Index: ref.Index})
		}
		var to []advice.TxOrderEvent
		for _, ev := range s.cfg.Store.TxEvents() {
			to = append(to, advice.TxOrderEvent{Kind: uint8(ev.Kind), RID: ev.RID, TID: ev.TID})
		}
		if s.kar != nil {
			s.kar.WriteOrder = wo
			s.kar.TxOrder = to
		}
		if s.oro != nil {
			s.oro.WriteOrder = append([]advice.TxPos(nil), wo...)
			s.oro.TxOrder = append([]advice.TxOrderEvent(nil), to...)
		}
	}
	return res, nil
}

// runSingle is the Node.js-style dispatch loop: one activation at a time,
// picked pseudo-randomly from the pending set.
func (s *Server) runSingle(reqs []Request, concurrency int) error {
	next := 0
	inflight := 0
	admit := func() {
		for inflight < concurrency && next < len(reqs) {
			r := reqs[next]
			next++
			inflight++
			s.admit(r)
		}
	}
	admit()
	for len(s.pending) > 0 {
		i := s.rng.Intn(len(s.pending))
		act := s.pending[i]
		s.pending[i] = s.pending[len(s.pending)-1]
		s.pending = s.pending[:len(s.pending)-1]
		s.runActivation(act)
		rs := s.requests[act.rid]
		rs.outstanding--
		if rs.outstanding == 0 {
			if !rs.responded {
				return fmt.Errorf("server: request %s finished without responding", act.rid)
			}
			s.finishRequest(act.rid, rs)
			inflight--
			admit()
		}
	}
	return nil
}

// runParallel dispatches pending activations to cfg.Workers goroutines.
// Every special operation serializes on s.mu (sequential consistency for
// variables, atomic advice appends, ordered trace events); the computation
// between operations runs in parallel. The audit algorithms never assumed a
// single-threaded server, so honest parallel executions verify unchanged.
func (s *Server) runParallel(reqs []Request, concurrency int) error {
	next := 0
	inflight := 0
	running := 0
	var firstErr error
	cond := sync.NewCond(&s.mu)

	admit := func() { // caller holds s.mu
		for inflight < concurrency && next < len(reqs) {
			r := reqs[next]
			next++
			inflight++
			s.admit(r)
		}
	}

	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		for {
			s.mu.Lock()
			for len(s.pending) == 0 && running > 0 && firstErr == nil {
				cond.Wait()
			}
			if firstErr != nil || (len(s.pending) == 0 && running == 0) {
				s.mu.Unlock()
				cond.Broadcast()
				return
			}
			i := s.rng.Intn(len(s.pending))
			act := s.pending[i]
			s.pending[i] = s.pending[len(s.pending)-1]
			s.pending = s.pending[:len(s.pending)-1]
			running++
			s.mu.Unlock()

			s.runActivation(act)

			s.mu.Lock()
			running--
			rs := s.requests[act.rid]
			rs.outstanding--
			if rs.outstanding == 0 {
				if !rs.responded {
					if firstErr == nil {
						firstErr = fmt.Errorf("server: request %s finished without responding", act.rid)
					}
				} else {
					s.finishRequest(act.rid, rs)
					inflight--
					admit()
				}
			}
			cond.Broadcast()
			s.mu.Unlock()
		}
	}

	s.mu.Lock()
	admit()
	s.mu.Unlock()
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	return firstErr
}

func (s *Server) admit(r Request) {
	rid := r.RID
	if _, dup := s.requests[rid]; dup {
		panic(fmt.Sprintf("server: duplicate rid %s", rid))
	}
	input := value.Normalize(r.Input)
	s.collector.Request(string(rid), input)
	rs := &reqState{
		listeners:     make(map[core.EventName][]core.FunctionID, len(s.globalListeners)),
		opcounts:      make(map[core.HID]int),
		childCounters: make(map[core.HID]int),
	}
	for ev, fns := range s.globalListeners {
		rs.listeners[ev] = append([]core.FunctionID(nil), fns...)
	}
	s.requests[rid] = rs
	// Activate the request handlers: all functions registered for the
	// request event, with activator I and emit index 0 (Figure 18 line 11).
	for _, fn := range rs.listeners[s.cfg.App.RequestEvent] {
		hid := core.RequestHID(fn, s.cfg.App.RequestEvent)
		label := core.InitLabel.Child(rs.childCounters[core.InitHID])
		rs.childCounters[core.InitHID]++
		rs.outstanding++
		s.pending = append(s.pending, &activation{
			rid: rid, fn: fn, event: s.cfg.App.RequestEvent,
			hid: hid, label: label, payload: input,
		})
	}
	if rs.outstanding == 0 {
		panic("server: app registered no request handlers")
	}
}

// cfDigests tracks the running control-flow digest of the current handler
// activation; the server is single-threaded so one slot suffices.
type runState struct {
	act *activation
	cfd uint64
}

var fnvOffset = fnv.New64a().Sum64()

func cfdUpdate(cfd uint64, site string, taken bool) uint64 {
	h := fnv.New64a()
	var b [1]byte
	if taken {
		b[0] = 1
	}
	h.Write([]byte(site))
	h.Write(b[:])
	return cfd*1099511628211 ^ h.Sum64()
}

func (s *Server) runActivation(act *activation) {
	st := &runState{act: act, cfd: fnvOffset}
	ctx := core.NewContext(s, []core.RID{act.rid}, act.hid, act.fn, act.event, act.label)
	s.lock()
	s.states[ctx] = st
	s.unlock()
	s.cfg.App.Func(act.fn)(ctx, mv.Scalar(act.payload, 1))
	s.lock()
	rs := s.requests[act.rid]
	rs.opcounts[act.hid] = ctx.OpsIssued()
	rs.tagParts = append(rs.tagParts, tagPart{hid: act.hid, cfd: st.cfd})
	delete(s.states, ctx)
	s.unlock()
}

// lock/unlock guard shared server state in parallel mode and are no-ops in
// the single-threaded loop (which owns all state by construction).
func (s *Server) lock() {
	if s.parallel {
		s.mu.Lock()
	}
}

func (s *Server) unlock() {
	if s.parallel {
		s.mu.Unlock()
	}
}

func (s *Server) finishRequest(rid core.RID, rs *reqState) {
	if s.kar != nil {
		s.kar.Tags[rid] = karousosTag(rs.tagParts)
		s.kar.OpCounts[rid] = cloneCounts(rs.opcounts)
		s.kar.ResponseEmittedBy[rid] = rs.response
		s.kar.HandlerLogs[rid] = append([]advice.HandlerOp(nil), rs.handlerLog...)
	}
	if s.oro != nil {
		s.oro.Tags[rid] = orochiTag(rs.tagParts)
		s.oro.OpCounts[rid] = cloneCounts(rs.opcounts)
		s.oro.ResponseEmittedBy[rid] = rs.response
		s.oro.HandlerLogs[rid] = append([]advice.HandlerOp(nil), rs.handlerLog...)
	}
}

func cloneCounts(m map[core.HID]int) map[core.HID]int {
	out := make(map[core.HID]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// karousosTag groups requests with the same tree of handlers and the same
// in-handler control flow (§4.1): a digest of the *set* of (handlerID,
// control-flow digest) pairs. Because handlerIDs encode function, activating
// event, activator, and emit index, equal sets imply topologically equal
// trees regardless of activation order.
func karousosTag(parts []tagPart) string {
	sorted := append([]tagPart(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].hid != sorted[j].hid {
			return sorted[i].hid < sorted[j].hid
		}
		return sorted[i].cfd < sorted[j].cfd
	})
	return digestParts(sorted)
}

// orochiTag groups requests only if they executed the identical *sequence* of
// handlers (§6 Baselines): the digest is order-sensitive, so two requests
// whose unordered handlers interleaved differently land in different groups.
func orochiTag(parts []tagPart) string {
	return digestParts(parts)
}

func digestParts(parts []tagPart) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		h.Write([]byte(p.hid))
		for i := 0; i < 8; i++ {
			buf[i] = byte(p.cfd >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
