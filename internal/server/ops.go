package server

import (
	"fmt"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// The server implements core.Ops; all contexts it creates have width 1
// (single request) except the init context.

func (s *Server) op(ctx *core.Context, opnum int) core.TaggedOp {
	return core.TaggedOp{
		Op:    core.Op{RID: ctx.RIDs()[0], HID: ctx.HID(), Num: opnum},
		Label: ctx.ActivationLabel(),
	}
}

// VarInit implements Figure 13's OnInitialize: the variable starts life with
// the initial value, and the initialization op is recorded as the most recent
// write. Because I's operations R-precede everything, this write is never
// logged.
func (s *Server) VarInit(ctx *core.Context, v *core.Variable, opnum int, val *mv.MV) {
	s.lock()
	defer s.unlock()
	if s.initDone {
		panic(fmt.Sprintf("server: variable %s created outside Init; loggable variables must be initialized by the init function", v.ID))
	}
	if _, dup := s.vars[v.ID]; dup {
		panic(fmt.Sprintf("server: duplicate variable id %s", v.ID))
	}
	s.vars[v.ID] = &varState{
		val:       val.At(0),
		last:      s.op(ctx, opnum),
		karLogged: make(map[core.Op]bool),
		oroLogged: make(map[core.Op]bool),
	}
}

func (s *Server) varState(v *core.Variable) *varState {
	vs, ok := s.vars[v.ID]
	if !ok {
		panic(fmt.Sprintf("server: unknown variable %s", v.ID))
	}
	return vs
}

// VarRead implements Figure 13's OnRead. Karousos logs the read only when it
// is R-concurrent with the dictating write (lazily logging that write
// first); Orochi-JS logs every read.
func (s *Server) VarRead(ctx *core.Context, v *core.Variable, opnum int) *mv.MV {
	s.lock()
	defer s.unlock()
	vs := s.varState(v)
	cur := s.op(ctx, opnum)
	if s.kar != nil && core.RConcurrent(cur, vs.last) {
		s.karLazyLogWrite(v, vs)
		e := advice.VarLogEntry{Op: cur.Op, Type: advice.AccessRead, HasPrec: true, Prec: vs.last.Op}
		s.kar.VarLogs[v.ID] = append(s.kar.VarLogs[v.ID], e)
		s.wireKar = advice.AppendVarEntry(s.wireKar, &e)
		vs.karLogged[cur.Op] = true
	}
	if s.oro != nil && cur.RID != core.InitRID {
		s.oroLazyLogWrite(v, vs)
		e := advice.VarLogEntry{Op: cur.Op, Type: advice.AccessRead, HasPrec: true, Prec: vs.last.Op}
		s.oro.VarLogs[v.ID] = append(s.oro.VarLogs[v.ID], e)
		s.wireOro = advice.AppendVarEntry(s.wireOro, &e)
		vs.oroLogged[cur.Op] = true
	}
	return mv.Scalar(vs.val, 1)
}

// VarWrite implements Figure 13's OnWrite. The write is logged when
// R-concurrent with the write it overwrites (Karousos) or always (Orochi-JS),
// and in both cases becomes the variable's most recent write.
func (s *Server) VarWrite(ctx *core.Context, v *core.Variable, opnum int, val *mv.MV) {
	s.lock()
	defer s.unlock()
	vs := s.varState(v)
	cur := s.op(ctx, opnum)
	contents := val.At(0)
	if s.kar != nil && cur.RID != core.InitRID && core.RConcurrent(cur, vs.last) {
		s.karLazyLogWrite(v, vs)
		e := advice.VarLogEntry{
			Op: cur.Op, Type: advice.AccessWrite, Value: contents,
			HasPrec: true, Prec: vs.last.Op,
		}
		s.kar.VarLogs[v.ID] = append(s.kar.VarLogs[v.ID], e)
		s.wireKar = advice.AppendVarEntry(s.wireKar, &e)
		vs.karLogged[cur.Op] = true
	}
	if s.oro != nil && cur.RID != core.InitRID {
		s.oroLazyLogWrite(v, vs)
		e := advice.VarLogEntry{
			Op: cur.Op, Type: advice.AccessWrite, Value: contents,
			HasPrec: true, Prec: vs.last.Op,
		}
		s.oro.VarLogs[v.ID] = append(s.oro.VarLogs[v.ID], e)
		s.wireOro = advice.AppendVarEntry(s.wireOro, &e)
		vs.oroLogged[cur.Op] = true
	}
	vs.val = contents
	vs.last = cur
}

// karLazyLogWrite logs the variable's current most-recent write if it was not
// already logged (Figure 13 lines 14–15 and 21–22): the entry carries the
// value and no predecessor reference.
func (s *Server) karLazyLogWrite(v *core.Variable, vs *varState) {
	if vs.karLogged[vs.last.Op] {
		return
	}
	e := advice.VarLogEntry{Op: vs.last.Op, Type: advice.AccessWrite, Value: vs.val}
	s.kar.VarLogs[v.ID] = append(s.kar.VarLogs[v.ID], e)
	s.wireKar = advice.AppendVarEntry(s.wireKar, &e)
	vs.karLogged[vs.last.Op] = true
}

func (s *Server) oroLazyLogWrite(v *core.Variable, vs *varState) {
	if vs.oroLogged[vs.last.Op] {
		return
	}
	e := advice.VarLogEntry{Op: vs.last.Op, Type: advice.AccessWrite, Value: vs.val}
	s.oro.VarLogs[v.ID] = append(s.oro.VarLogs[v.ID], e)
	s.wireOro = advice.AppendVarEntry(s.wireOro, &e)
	vs.oroLogged[vs.last.Op] = true
}

// Emit adds the event to the pending set: every function currently registered
// for the name in the request's listener table is activated with the payload,
// with this handler as activator (§3).
func (s *Server) Emit(ctx *core.Context, opnum int, event core.EventName, payload *mv.MV) {
	s.lock()
	defer s.unlock()
	rid := ctx.RIDs()[0]
	if rid == core.InitRID {
		panic("server: emit from the init function is not supported")
	}
	rs := s.requests[rid]
	if s.collecting() {
		e := advice.HandlerOp{HID: ctx.HID(), OpNum: opnum, Kind: advice.OpEmit, Event: event}
		rs.handlerLog = append(rs.handlerLog, e)
		s.streamHandlerOp(&e)
	}
	pv := value.Clone(payload.At(0))
	for _, fn := range rs.listeners[event] {
		hid := core.ComputeHID(fn, event, ctx.HID(), opnum)
		label := ctx.ActivationLabel().Child(rs.childCounters[ctx.HID()])
		rs.childCounters[ctx.HID()]++
		rs.outstanding++
		s.pending = append(s.pending, &activation{
			rid: rid, fn: fn, event: event, hid: hid, label: label, payload: pv,
		})
	}
}

// Register adds fn as a listener for event in the request-local table. The
// init function's registrations instead populate the global handler table.
func (s *Server) Register(ctx *core.Context, opnum int, event core.EventName, fn core.FunctionID) {
	s.lock()
	defer s.unlock()
	rid := ctx.RIDs()[0]
	if rid == core.InitRID {
		for _, g := range s.globalListeners[event] {
			if g == fn {
				panic(fmt.Sprintf("server: %s already registered for %s", fn, event))
			}
		}
		s.globalListeners[event] = append(s.globalListeners[event], fn)
		return
	}
	rs := s.requests[rid]
	for _, g := range rs.listeners[event] {
		if g == fn {
			panic(fmt.Sprintf("server: %s already registered for %s in request %s", fn, event, rid))
		}
	}
	rs.listeners[event] = append(rs.listeners[event], fn)
	if s.collecting() {
		e := advice.HandlerOp{
			HID: ctx.HID(), OpNum: opnum, Kind: advice.OpRegister,
			Events: []core.EventName{event}, Fn: fn,
		}
		rs.handlerLog = append(rs.handlerLog, e)
		s.streamHandlerOp(&e)
	}
}

// Unregister removes fn as a listener for event in the request-local table.
func (s *Server) Unregister(ctx *core.Context, opnum int, event core.EventName, fn core.FunctionID) {
	s.lock()
	defer s.unlock()
	rid := ctx.RIDs()[0]
	if rid == core.InitRID {
		panic("server: unregister from the init function is not supported")
	}
	rs := s.requests[rid]
	fns := rs.listeners[event]
	for i, g := range fns {
		if g == fn {
			rs.listeners[event] = append(fns[:i:i], fns[i+1:]...)
			break
		}
	}
	if s.collecting() {
		e := advice.HandlerOp{
			HID: ctx.HID(), OpNum: opnum, Kind: advice.OpUnregister,
			Event: event, Fn: fn,
		}
		rs.handlerLog = append(rs.handlerLog, e)
		s.streamHandlerOp(&e)
	}
}

func (s *Server) collecting() bool { return s.kar != nil || s.oro != nil }

// streamHandlerOp appends a handler-log entry's wire encoding to the advice
// streams being collected.
func (s *Server) streamHandlerOp(e *advice.HandlerOp) {
	if s.kar != nil {
		s.wireKar = advice.AppendHandlerOp(s.wireKar, e)
	}
	if s.oro != nil {
		s.wireOro = advice.AppendHandlerOp(s.wireOro, e)
	}
}

// TxOp executes one transactional operation against the store and logs it in
// the transaction log (§4.4). A store-level conflict aborts the transaction;
// the server then logs tx_abort at this op number, which is what lets the
// verifier's CheckStateOp replay the failure (Figure 19).
func (s *Server) TxOp(ctx *core.Context, opnum int, tx *core.Tx, op core.TxOpType, key *mv.MV, val *mv.MV) (*mv.MV, bool) {
	s.lock()
	defer s.unlock()
	if s.cfg.Store == nil {
		panic("server: app issued a transactional op but no store is configured")
	}
	rid := ctx.RIDs()[0]
	if rid == core.InitRID {
		panic("server: transactions are not allowed in the init function")
	}
	k := txKey{rid: rid, tid: tx.ID}
	ts := s.txs[k]
	logOp := func(e advice.TxOp) int {
		e.HID = ctx.HID()
		e.OpNum = opnum
		ts.log = append(ts.log, e)
		if s.kar != nil {
			s.wireKar = advice.AppendTxOp(s.wireKar, &e)
		}
		if s.oro != nil {
			s.wireOro = advice.AppendTxOp(s.wireOro, &e)
		}
		return len(ts.log)
	}
	switch op {
	case core.TxStart:
		if ts != nil {
			panic(fmt.Sprintf("server: duplicate transaction %s in request %s", tx.ID, rid))
		}
		ts = &txState{txn: s.cfg.Store.BeginTx(rid, tx.ID)}
		s.txs[k] = ts
		logOp(advice.TxOp{Type: core.TxStart})
		return nil, true

	case core.TxGet:
		keyStr := keyString(key)
		v, ref, _, err := ts.txn.Get(keyStr)
		if err == kvstore.ErrConflict {
			logOp(advice.TxOp{Type: core.TxAbort})
			s.flushTxLog(k, ts)
			return nil, false
		}
		if err != nil {
			panic("server: " + err.Error())
		}
		e := advice.TxOp{Type: core.TxGet, Key: keyStr}
		if !ref.IsZero() {
			e.ReadFrom = &advice.TxPos{RID: ref.RID, TID: ref.TID, Index: ref.Index}
		}
		logOp(e)
		return mv.Scalar(v, 1), true

	case core.TxPut:
		keyStr := keyString(key)
		contents := val.At(0)
		idx := len(ts.log) + 1
		err := ts.txn.Put(keyStr, contents, kvstore.WriteRef{RID: rid, TID: tx.ID, Index: idx})
		if err == kvstore.ErrConflict {
			logOp(advice.TxOp{Type: core.TxAbort})
			s.flushTxLog(k, ts)
			return nil, false
		}
		if err != nil {
			panic("server: " + err.Error())
		}
		logOp(advice.TxOp{Type: core.TxPut, Key: keyStr, Contents: contents})
		return nil, true

	case core.TxScan:
		prefix := keyString(key)
		keys, vals, refs, err := ts.txn.Scan(prefix)
		if err == kvstore.ErrConflict {
			logOp(advice.TxOp{Type: core.TxAbort})
			s.flushTxLog(k, ts)
			return nil, false
		}
		if err != nil {
			panic("server: " + err.Error())
		}
		e := advice.TxOp{Type: core.TxScan, Key: prefix}
		rows := make([]value.V, len(keys))
		for i := range keys {
			e.ReadSet = append(e.ReadSet, advice.ScanRead{
				Key:      keys[i],
				ReadFrom: advice.TxPos{RID: refs[i].RID, TID: refs[i].TID, Index: refs[i].Index},
			})
			rows[i] = value.Map("key", keys[i], "value", vals[i])
		}
		logOp(e)
		return mv.Scalar(rows, 1), true

	case core.TxCommit:
		if err := ts.txn.Commit(); err != nil {
			panic("server: " + err.Error())
		}
		logOp(advice.TxOp{Type: core.TxCommit})
		s.flushTxLog(k, ts)
		return nil, true

	case core.TxAbort:
		ts.txn.Abort()
		logOp(advice.TxOp{Type: core.TxAbort})
		s.flushTxLog(k, ts)
		return nil, true
	}
	panic(fmt.Sprintf("server: unknown tx op %v", op))
}

func keyString(key *mv.MV) string {
	k, ok := key.At(0).(string)
	if !ok {
		panic(fmt.Sprintf("server: transactional keys must be strings, got %T", key.At(0)))
	}
	return k
}

// flushTxLog moves a finished transaction's log into the advice.
func (s *Server) flushTxLog(k txKey, ts *txState) {
	if s.kar != nil {
		s.kar.TxLogs = append(s.kar.TxLogs, advice.TxLog{RID: k.rid, TID: k.tid, Ops: append([]advice.TxOp(nil), ts.log...)})
	}
	if s.oro != nil {
		s.oro.TxLogs = append(s.oro.TxLogs, advice.TxLog{RID: k.rid, TID: k.tid, Ops: append([]advice.TxOp(nil), ts.log...)})
	}
}

// Respond delivers the response through the trusted collector and records
// responseEmittedBy (C.1.3).
func (s *Server) Respond(ctx *core.Context, opsIssued int, payload *mv.MV) {
	s.lock()
	defer s.unlock()
	rid := ctx.RIDs()[0]
	rs := s.requests[rid]
	if rs.responded {
		panic(fmt.Sprintf("server: request %s responded twice", rid))
	}
	rs.responded = true
	rs.response = advice.OpAt{HID: ctx.HID(), OpNum: opsIssued}
	rs.respVal = value.Clone(value.Normalize(payload.At(0)))
	s.collector.Response(string(rid), payload.At(0))
}

// Branch records the control-flow decision into the handler's running
// control-flow digest (§5) and returns the direction taken.
func (s *Server) Branch(ctx *core.Context, site string, cond *mv.MV) bool {
	taken, ok := cond.Bool()
	if !ok {
		panic("server: branch condition must be a boolean")
	}
	if s.collecting() {
		s.lock()
		if st := s.states[ctx]; st != nil {
			st.cfd = cfdUpdate(st.cfd, site, taken)
		}
		s.unlock()
	}
	return taken
}

// Nondet evaluates the generator for the request and records the result in
// the advice so the verifier can replay it (§5).
func (s *Server) Nondet(ctx *core.Context, opnum int, site string, gen func(rid core.RID) value.V) *mv.MV {
	s.lock()
	defer s.unlock()
	rid := ctx.RIDs()[0]
	v := value.Normalize(gen(rid))
	e := advice.NondetEntry{Op: core.Op{RID: rid, HID: ctx.HID(), Num: opnum}, Value: v}
	if s.kar != nil {
		s.kar.Nondet = append(s.kar.Nondet, e)
	}
	if s.oro != nil {
		s.oro.Nondet = append(s.oro.Nondet, e)
	}
	return mv.Scalar(v, 1)
}
