package stacks_test

import (
	"fmt"
	"testing"

	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/apps/stacks"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
)

func serve(t *testing.T, conc int, seed int64, inputs []value.V) (map[string]value.V, *server.Result) {
	t.Helper()
	srv := server.New(server.Config{
		App:   stacks.New(),
		Store: kvstore.New(kvstore.Serializable),
		Seed:  seed,
	})
	var reqs []server.Request
	for i, in := range inputs {
		reqs = append(reqs, server.Request{RID: core.RID(fmt.Sprintf("r%03d", i)), Input: in})
	}
	res, err := srv.Run(reqs, conc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace.Outputs(), res
}

func report(i int, dump string) value.V {
	return value.Map("op", "report", "reqid", fmt.Sprintf("r%03d", i), "dump", dump)
}
func count(i int, dump string) value.V {
	return value.Map("op", "count", "reqid", fmt.Sprintf("r%03d", i), "dump", dump)
}
func list(i int) value.V {
	return value.Map("op", "list", "reqid", fmt.Sprintf("r%03d", i))
}

func TestReportNewAndRepeat(t *testing.T) {
	outs, _ := serve(t, 1, 1, []value.V{
		report(0, "panic: A"),
		report(1, "panic: A"),
		report(2, "panic: B"),
	})
	if !value.Equal(outs["r000"], value.Map("status", "new")) {
		t.Errorf("first report = %v", value.String(outs["r000"]))
	}
	if !value.Equal(outs["r001"], value.Map("status", "reported", "count", 2)) {
		t.Errorf("repeat report = %v", value.String(outs["r001"]))
	}
	if !value.Equal(outs["r002"], value.Map("status", "new")) {
		t.Errorf("second dump = %v", value.String(outs["r002"]))
	}
}

func TestCount(t *testing.T) {
	outs, _ := serve(t, 1, 1, []value.V{
		report(0, "panic: A"),
		report(1, "panic: A"),
		count(2, "panic: A"),
		count(3, "panic: never-seen"),
	})
	if !value.Equal(outs["r002"], value.Map("status", "ok", "count", 2)) {
		t.Errorf("count = %v", value.String(outs["r002"]))
	}
	if !value.Equal(outs["r003"], value.Map("status", "ok", "count", 0)) {
		t.Errorf("unknown count = %v", value.String(outs["r003"]))
	}
}

func TestListEmpty(t *testing.T) {
	outs, _ := serve(t, 1, 1, []value.V{list(0)})
	if !value.Equal(outs["r000"], value.Map("status", "ok", "dumps", []value.V{})) {
		t.Errorf("empty list = %v", value.String(outs["r000"]))
	}
}

func TestListReflectsCacheAfterRefresh(t *testing.T) {
	// The first list responds from a cold cache (counts 0) and refreshes it;
	// the second list sees the refreshed counts.
	outs, _ := serve(t, 1, 1, []value.V{
		report(0, "panic: A"),
		report(1, "panic: A"),
		list(2),
		list(3),
	})
	first := appkit.AsList(appkit.Field(outs["r002"], "dumps"))
	if len(first) != 1 || appkit.Num(appkit.Field(first[0], "count")) != 0 {
		t.Errorf("cold list = %v", value.String(outs["r002"]))
	}
	second := appkit.AsList(appkit.Field(outs["r003"], "dumps"))
	if len(second) != 1 || appkit.Num(appkit.Field(second[0], "count")) != 2 {
		t.Errorf("warm list = %v", value.String(outs["r003"]))
	}
}

func TestConcurrentReportsConflict(t *testing.T) {
	// With concurrency, two reports of the same dump can conflict; the paper's
	// application answers a retry error. Search seeds for an interleaving
	// that trips it.
	sawRetry := false
	for seed := int64(0); seed < 60 && !sawRetry; seed++ {
		outs, res := serve(t, 4, seed, []value.V{
			report(0, "panic: X"),
			report(1, "panic: X"),
			report(2, "panic: X"),
			report(3, "panic: X"),
		})
		if res.Conflicts > 0 {
			for _, out := range outs {
				if value.Equal(out, value.Map("status", "retry")) {
					sawRetry = true
				}
			}
		}
	}
	if !sawRetry {
		t.Error("no interleaving produced a retry error; conflict path untested")
	}
}

func TestStoreStateMatchesReports(t *testing.T) {
	srv := server.New(server.Config{
		App:   stacks.New(),
		Store: kvstore.New(kvstore.Serializable),
		Seed:  1,
	})
	store := kvstore.New(kvstore.Serializable)
	_ = store
	inputs := []value.V{
		report(0, "panic: A"), report(1, "panic: A"), report(2, "panic: B"),
	}
	var reqs []server.Request
	for i, in := range inputs {
		reqs = append(reqs, server.Request{RID: core.RID(fmt.Sprintf("r%03d", i)), Input: in})
	}
	if _, err := srv.Run(reqs, 1); err != nil {
		t.Fatal(err)
	}
}
