// Package stacks is the paper's stack-dump logging model application (§6):
// users submit stack dumps, ask how many times a dump has been reported, and
// list all unique dumps with their counts. Dumps and counts live in the
// transactional store, indexed by the dump's digest; loggable variables hold
// the list of all digests in the table and a cache of last-known counts.
//
// The application exercises what the MOTD application cannot:
//
//   - the transactional KV interface (§4.4), including retry errors when two
//     concurrent requests conflict on the same dump (the store aborts the
//     transaction and the request answers "retry");
//   - fan-out handler trees with request effects after the response: a list
//     request answers immediately from the counts cache and then emits one
//     refresh handler per known digest. Those siblings are mutually
//     R-concurrent and run in a different order on every request, so
//     Orochi-JS — which batches only identical handler *sequences* — splits
//     them into many groups, while Karousos batches every list with the same
//     tree shape (§4.1, §6.2).
package stacks

import (
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// Handler function ids.
const (
	FnRequest   core.FunctionID = "stacks.request"
	FnReport    core.FunctionID = "stacks.report"
	FnReportPut core.FunctionID = "stacks.report-put"
	FnCount     core.FunctionID = "stacks.count"
	FnRefresh   core.FunctionID = "stacks.refresh"
)

// Internal event names.
const (
	RequestEvent core.EventName = "request"
	evReport     core.EventName = "stacks.do-report"
	evReportPut  core.EventName = "stacks.do-report-put"
	evCount      core.EventName = "stacks.do-count"
	evRefresh    core.EventName = "stacks.do-refresh"
)

// routeWork is the simulated cost of parsing and routing one request, and
// symtabWork the cost of loading the symbolization table before touching a
// dump row. Both have group-uniform operands, so batched re-execution runs
// each once per group-handler instead of once per request.
const (
	routeWork  = 8000
	symtabWork = 12000
)

type app struct {
	digests *core.Variable // list of all digests stored in the table
	counts  *core.Variable // cache of last-known counts per digest

	// openTxs threads each report's transaction handle from the handler
	// that opened it to the continuation that commits it, keyed by the
	// context's first request id (the transaction spans two non-concurrent
	// handlers of the same request, as §4.4 permits). This is runtime
	// plumbing, not program state: the transaction's identity is
	// reconstructed during replay from its (hid, opnum) of tx_start.
	openTxs map[core.RID]*core.Tx
}

// New returns a fresh application instance.
func New() *core.App {
	a := &app{}
	a.openTxs = make(map[core.RID]*core.Tx)
	return &core.App{
		Name:         "stacks",
		RequestEvent: RequestEvent,
		Funcs: map[core.FunctionID]core.HandlerFunc{
			FnRequest:   a.handleRequest,
			FnReport:    a.handleReport,
			FnReportPut: a.handleReportPut,
			FnCount:     a.handleCount,
			FnRefresh:   a.handleRefresh,
		},
		Init: a.init,
	}
}

func (a *app) init(ctx *core.Context) {
	a.digests = ctx.VarNew("stacks.digests", ctx.Scalar([]value.V{}))
	a.counts = ctx.VarNew("stacks.counts", ctx.Scalar(map[string]value.V{}))
	ctx.Register(RequestEvent, FnRequest)
	ctx.Register(evReport, FnReport)
	ctx.Register(evReportPut, FnReportPut)
	ctx.Register(evCount, FnCount)
	ctx.Register(evRefresh, FnRefresh)
}

func digestOf(dump value.V) string { return value.DigestString(dump) }

func rowKey(digest string) string { return "dump:" + digest }

var retryResp = value.Map("status", "retry")

// handleRequest dispatches {"op":"report","reqid":id,"dump":d},
// {"op":"count","dump":d}, and {"op":"list","reqid":id}.
func (a *app) handleRequest(ctx *core.Context, req *mv.MV) {
	opIs := func(name string) bool {
		return ctx.Branch("stacks.op-"+name, ctx.Apply(func(args []value.V) value.V {
			return appkit.Str(appkit.Field(args[0], "op")) == name
		}, req))
	}
	switch {
	case opIs("report"):
		// Route parsing: operands are group-uniform, so this collapses.
		_ = ctx.Apply(func(args []value.V) value.V {
			return appkit.Work(args[0], routeWork)
		}, ctx.Scalar("route:/report"))
		ctx.Emit(evReport, ctx.Apply(func(args []value.V) value.V {
			dump := appkit.Field(args[0], "dump")
			return value.Map("digest", digestOf(dump), "dump", dump)
		}, req))
	case opIs("count"):
		_ = ctx.Apply(func(args []value.V) value.V {
			return appkit.Work(args[0], routeWork)
		}, ctx.Scalar("route:/count"))
		ctx.Emit(evCount, ctx.Apply(func(args []value.V) value.V {
			return value.Map("digest", digestOf(appkit.Field(args[0], "dump")))
		}, req))
	default: // list
		_ = ctx.Apply(func(args []value.V) value.V {
			return appkit.Work(args[0], routeWork)
		}, ctx.Scalar("route:/list"))
		snapshot := ctx.Read(a.digests)
		cached := ctx.Read(a.counts)
		// Respond immediately from the cache; the per-digest refreshes run
		// after the response (request effects after response delivery —
		// the event-driven behavior Orochi's model disallows, §2.3).
		ctx.Respond(ctx.Apply(func(args []value.V) value.V {
			snap, cache := appkit.AsList(args[0]), appkit.AsMap(args[1])
			dumps := make([]value.V, 0, len(snap))
			for _, d := range snap {
				cnt := cache[appkit.Str(d)]
				if cnt == nil {
					cnt = 0
				}
				dumps = append(dumps, value.Map("digest", d, "count", cnt))
			}
			return value.Map("status", "ok", "dumps", dumps)
		}, snapshot, cached))
		for i := 0; ; i++ {
			i := i
			more := ctx.Branch("stacks.list-more", ctx.Apply(func(args []value.V) value.V {
				return i < len(appkit.AsList(args[0]))
			}, snapshot))
			if !more {
				break
			}
			ctx.Emit(evRefresh, ctx.Apply(func(args []value.V) value.V {
				return value.Map("digest", appkit.AsList(args[0])[i])
			}, snapshot))
		}
	}
}

// handleReport opens the transaction and checks whether the dump is already
// present, then hands off to the continuation that writes — the transaction
// spans both handlers, so concurrent reports of the same dump conflict at
// the store (retry errors, as in the paper's description).
func (a *app) handleReport(ctx *core.Context, p *mv.MV) {
	_ = ctx.Apply(func(args []value.V) value.V {
		return appkit.Work(args[0], symtabWork)
	}, ctx.Scalar("stacks-symtab"))
	key := ctx.Apply(func(args []value.V) value.V {
		return rowKey(appkit.Str(appkit.Field(args[0], "digest")))
	}, p)
	tx := ctx.TxStart()
	cur, ok := ctx.Get(tx, key)
	if !ctx.BranchBool("report.get-ok", ok) {
		ctx.Respond(ctx.Scalar(retryResp))
		return
	}
	a.openTxs[ctx.RIDs()[0]] = tx
	ctx.Emit(evReportPut, ctx.Apply(func(args []value.V) value.V {
		row, pp := args[0], args[1]
		m := value.Clone(pp).(map[string]value.V)
		m["row"] = row
		return m
	}, cur, p))
}

// handleReportPut performs the PUT and commit for a report, updates the
// shared digest list for new dumps, and responds.
func (a *app) handleReportPut(ctx *core.Context, p *mv.MV) {
	tx := a.openTxs[ctx.RIDs()[0]]
	delete(a.openTxs, ctx.RIDs()[0])
	key := ctx.Apply(func(args []value.V) value.V {
		return rowKey(appkit.Str(appkit.Field(args[0], "digest")))
	}, p)
	found := ctx.Branch("report.found", ctx.Apply(func(args []value.V) value.V {
		return appkit.Field(args[0], "row") != nil
	}, p))
	if found {
		next := ctx.Apply(func(args []value.V) value.V {
			row := appkit.Field(args[0], "row")
			return appkit.With(row, "count", appkit.Num(appkit.Field(row, "count"))+1)
		}, p)
		if !ctx.BranchBool("report.put-ok", ctx.Put(tx, key, next)) {
			ctx.Respond(ctx.Scalar(retryResp))
			return
		}
		if !ctx.BranchBool("report.commit-ok", ctx.Commit(tx)) {
			ctx.Respond(ctx.Scalar(retryResp))
			return
		}
		ctx.Respond(ctx.Apply(func(args []value.V) value.V {
			return value.Map("status", "reported", "count", appkit.Field(args[0], "count"))
		}, next))
		return
	}
	next := ctx.Apply(func(args []value.V) value.V {
		return value.Map("count", 1, "dump", appkit.Field(args[0], "dump"))
	}, p)
	if !ctx.BranchBool("report.insert-ok", ctx.Put(tx, key, next)) {
		ctx.Respond(ctx.Scalar(retryResp))
		return
	}
	if !ctx.BranchBool("report.insert-commit-ok", ctx.Commit(tx)) {
		ctx.Respond(ctx.Scalar(retryResp))
		return
	}
	// Record the new digest in the shared list only after the insert
	// committed, so list requests never see uncommitted dumps.
	known := ctx.Read(a.digests)
	ctx.Write(a.digests, ctx.Apply(func(args []value.V) value.V {
		l := appkit.AsList(value.Clone(args[0]))
		return append(l, appkit.Field(args[1], "digest"))
	}, known, p))
	ctx.Respond(ctx.Scalar(value.Map("status", "new")))
}

// handleCount answers how many times a dump has been reported.
func (a *app) handleCount(ctx *core.Context, p *mv.MV) {
	_ = ctx.Apply(func(args []value.V) value.V {
		return appkit.Work(args[0], symtabWork)
	}, ctx.Scalar("stacks-symtab"))
	key := ctx.Apply(func(args []value.V) value.V {
		return rowKey(appkit.Str(appkit.Field(args[0], "digest")))
	}, p)
	tx := ctx.TxStart()
	cur, ok := ctx.Get(tx, key)
	if !ctx.BranchBool("count.get-ok", ok) {
		ctx.Respond(ctx.Scalar(retryResp))
		return
	}
	if !ctx.BranchBool("count.commit-ok", ctx.Commit(tx)) {
		ctx.Respond(ctx.Scalar(retryResp))
		return
	}
	ctx.Respond(ctx.Apply(func(args []value.V) value.V {
		if args[0] == nil {
			return value.Map("status", "ok", "count", 0)
		}
		return value.Map("status", "ok", "count", appkit.Field(args[0], "count"))
	}, cur))
}

// handleRefresh re-reads one dump's row and folds the count into the shared
// cache. Refresh siblings of one list request are mutually R-concurrent:
// they may replay in any order, and their cache read-modify-writes are fed
// from the variable log (§4.2).
func (a *app) handleRefresh(ctx *core.Context, p *mv.MV) {
	_ = ctx.Apply(func(args []value.V) value.V {
		return appkit.Work(args[0], symtabWork)
	}, ctx.Scalar("stacks-symtab"))
	key := ctx.Apply(func(args []value.V) value.V {
		return rowKey(appkit.Str(appkit.Field(args[0], "digest")))
	}, p)
	tx := ctx.TxStart()
	cur, ok := ctx.Get(tx, key)
	if !ctx.BranchBool("refresh.get-ok", ok) {
		return // conflict: leave the cache stale
	}
	if !ctx.BranchBool("refresh.commit-ok", ctx.Commit(tx)) {
		return
	}
	found := ctx.Branch("refresh.found", ctx.Apply(func(args []value.V) value.V {
		return args[0] != nil
	}, cur))
	if !found {
		return
	}
	cache := ctx.Read(a.counts)
	ctx.Write(a.counts, ctx.Apply(func(args []value.V) value.V {
		c, row, pp := args[0], args[1], args[2]
		return appkit.With(c, appkit.Str(appkit.Field(pp, "digest")), appkit.Field(row, "count"))
	}, cache, cur, p))
}
