package motd_test

import (
	"testing"

	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
)

func serve(t *testing.T, inputs []value.V) map[string]value.V {
	t.Helper()
	srv := server.New(server.Config{App: motd.New(), Seed: 1})
	var reqs []server.Request
	for i, in := range inputs {
		reqs = append(reqs, server.Request{RID: core.RID(rid(i)), Input: in})
	}
	res, err := srv.Run(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace.Outputs()
}

func rid(i int) string { return string(rune('a' + i)) }

func get(day string) value.V { return value.Map("op", "get", "day", day) }

func setAlways(msg string) value.V {
	return value.Map("op", "set", "scope", "always", "msg", msg)
}

func setDay(day, msg string) value.V {
	return value.Map("op", "set", "scope", "day", "day", day, "msg", msg)
}

func TestDefaultMessage(t *testing.T) {
	outs := serve(t, []value.V{get("mon")})
	want := value.Map("msg", "welcome", "scope", "always")
	if !value.Equal(outs["a"], want) {
		t.Errorf("got %v", value.String(outs["a"]))
	}
}

func TestSetAlways(t *testing.T) {
	outs := serve(t, []value.V{setAlways("hello"), get("tue")})
	if !value.Equal(outs["b"], value.Map("msg", "hello", "scope", "always")) {
		t.Errorf("got %v", value.String(outs["b"]))
	}
}

func TestDayOverridesAlways(t *testing.T) {
	outs := serve(t, []value.V{
		setAlways("base"),
		setDay("wed", "wednesday special"),
		get("wed"),
		get("thu"),
	})
	if !value.Equal(outs["c"], value.Map("msg", "wednesday special", "scope", "day")) {
		t.Errorf("wed: %v", value.String(outs["c"]))
	}
	if !value.Equal(outs["d"], value.Map("msg", "base", "scope", "always")) {
		t.Errorf("thu: %v", value.String(outs["d"]))
	}
}

func TestLaterDaySetWins(t *testing.T) {
	outs := serve(t, []value.V{
		setDay("fri", "first"),
		setDay("fri", "second"),
		get("fri"),
	})
	if !value.Equal(outs["c"], value.Map("msg", "second", "scope", "day")) {
		t.Errorf("got %v", value.String(outs["c"]))
	}
}

func TestSetResponds(t *testing.T) {
	outs := serve(t, []value.V{setAlways("x")})
	if !value.Equal(outs["a"], value.Map("status", "ok")) {
		t.Errorf("set response = %v", value.String(outs["a"]))
	}
}

func TestManySetsBoundedHistory(t *testing.T) {
	// The bounded history must not change semantics: after many sets the
	// last one still wins and the server still answers gets.
	var inputs []value.V
	for i := 0; i < 300; i++ {
		inputs = append(inputs, setAlways("msg"))
	}
	inputs = append(inputs, setAlways("final"), get("sat"))
	srv := server.New(server.Config{App: motd.New(), Seed: 1})
	var reqs []server.Request
	for i, in := range inputs {
		reqs = append(reqs, server.Request{RID: core.RID(value.DigestString(value.List(i))), Input: in})
	}
	res, err := srv.Run(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Trace.Events[len(res.Trace.Events)-1]
	if !value.Equal(last.Data, value.Map("msg", "final", "scope", "always")) {
		t.Errorf("final get = %v", value.String(last.Data))
	}
}
