// Package motd is the paper's "message of the day" model application (§6):
// users get or set a message of the day, where a set is either for every day
// or for one particular day. Messages and metadata live in a local hashmap —
// a single loggable variable — rather than in the transactional store.
//
// The application is deliberately pathological for Karousos: every request is
// handled by one request handler, so all handler activations are children of
// I and all hashmap accesses are R-concurrent with each other (§6.2). Every
// access is therefore logged, Karousos's grouping degenerates to Orochi's,
// and the variable log dominates the advice — exactly the behavior Figures
// 6–10 report.
package motd

import (
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// FnRequest is the single request handler.
const FnRequest core.FunctionID = "motd.request"

// RequestEvent is the event the runtime emits per incoming request.
const RequestEvent core.EventName = "request"

// routeWork is the simulated cost of parsing and routing one request. Its
// operands are group-uniform, so grouped re-execution pays it once per group
// — which is why the Karousos verifier wins on read-heavy MOTD workloads and
// loses on write-heavy ones, where per-write dictionary and log maintenance
// dominates (§6.2).
const routeWork = 10000

// historyCap bounds the set-history kept inside the MOTD state. Every write
// logs the full state value (all accesses are R-concurrent, §6.2), so the
// history is what makes write-heavy workloads expensive for the verifier —
// the paper attributes the ~22× slowdown to the value dictionary's size and
// the induced heap pressure.
const historyCap = 250

type app struct {
	motd *core.Variable
}

// New returns a fresh application instance. Each runtime (server, verifier,
// baseline) needs its own instance.
func New() *core.App {
	a := &app{}
	return &core.App{
		Name:         "motd",
		RequestEvent: RequestEvent,
		Funcs: map[core.FunctionID]core.HandlerFunc{
			FnRequest: a.handleRequest,
		},
		Init: a.init,
	}
}

func (a *app) init(ctx *core.Context) {
	a.motd = ctx.VarNew("motd", ctx.Scalar(value.Map(
		"always", "welcome",
		"daily", map[string]value.V{},
		"history", []value.V{},
	)))
	ctx.Register(RequestEvent, FnRequest)
}

// handleRequest serves {"op":"get","day":d}, {"op":"set","scope":"always",
// "msg":m}, and {"op":"set","scope":"day","day":d,"msg":m}.
func (a *app) handleRequest(ctx *core.Context, req *mv.MV) {
	isGet := ctx.Branch("motd.op-get", ctx.Apply(func(args []value.V) value.V {
		return appkit.Str(appkit.Field(args[0], "op")) == "get"
	}, req))
	if isGet {
		_ = ctx.Apply(func(args []value.V) value.V {
			return appkit.Work(args[0], routeWork)
		}, ctx.Scalar("route:/get"))
		state := ctx.Read(a.motd)
		resp := ctx.Apply(func(args []value.V) value.V {
			st, r := args[0], args[1]
			day := appkit.Str(appkit.Field(r, "day"))
			daily := appkit.AsMap(appkit.Field(st, "daily"))
			if msg, ok := daily[day]; ok {
				return value.Map("msg", msg, "scope", "day")
			}
			return value.Map("msg", appkit.Field(st, "always"), "scope", "always")
		}, state, req)
		ctx.Respond(resp)
		return
	}

	forDay := ctx.Branch("motd.scope-day", ctx.Apply(func(args []value.V) value.V {
		return appkit.Str(appkit.Field(args[0], "scope")) == "day"
	}, req))
	_ = ctx.Apply(func(args []value.V) value.V {
		return appkit.Work(args[0], routeWork)
	}, ctx.Scalar("route:/set"))
	state := ctx.Read(a.motd)
	var next *mv.MV
	if forDay {
		next = ctx.Apply(func(args []value.V) value.V {
			st, r := args[0], args[1]
			daily := appkit.AsMap(value.Clone(appkit.Field(st, "daily")))
			daily[appkit.Str(appkit.Field(r, "day"))] = appkit.Field(r, "msg")
			return withHistory(appkit.With(st, "daily", daily), r)
		}, state, req)
	} else {
		next = ctx.Apply(func(args []value.V) value.V {
			st, r := args[0], args[1]
			return withHistory(appkit.With(st, "always", appkit.Field(r, "msg")), r)
		}, state, req)
	}
	ctx.Write(a.motd, next)
	ctx.Respond(ctx.Scalar(value.Map("status", "ok")))
}

// withHistory appends the set operation to the state's bounded history list.
func withHistory(st map[string]value.V, r value.V) value.V {
	hist := append(appkit.AsList(st["history"]), value.Map(
		"scope", appkit.Field(r, "scope"),
		"day", appkit.Field(r, "day"),
		"msg", appkit.Field(r, "msg"),
	))
	if len(hist) > historyCap {
		hist = hist[len(hist)-historyCap:]
	}
	st["history"] = hist
	return st
}
