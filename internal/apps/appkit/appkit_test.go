package appkit

import (
	"testing"

	"karousos.dev/karousos/internal/value"
)

func TestField(t *testing.T) {
	m := value.Map("a", 1, "b", "x")
	if Field(m, "a") != float64(1) || Field(m, "b") != "x" {
		t.Error("Field lookup wrong")
	}
	if Field(m, "missing") != nil {
		t.Error("missing key should be nil")
	}
	if Field("not-a-map", "k") != nil {
		t.Error("non-map should be nil")
	}
	if Field(nil, "k") != nil {
		t.Error("nil should be nil")
	}
}

func TestScalarAccessors(t *testing.T) {
	if Str("x") != "x" || Str(nil) != "" || Str(1.0) != "" {
		t.Error("Str wrong")
	}
	if Num(2.5) != 2.5 || Num("x") != 0 || Num(nil) != 0 {
		t.Error("Num wrong")
	}
	if !Bool(true) || Bool(nil) || Bool("true") {
		t.Error("Bool wrong")
	}
}

func TestAsMapAsList(t *testing.T) {
	if len(AsMap(value.Map("k", 1))) != 1 {
		t.Error("AsMap wrong")
	}
	if AsMap(nil) == nil || len(AsMap("x")) != 0 {
		t.Error("AsMap of non-map should be empty, non-nil")
	}
	if len(AsList(value.List(1, 2))) != 2 {
		t.Error("AsList wrong")
	}
	if AsList("x") != nil {
		t.Error("AsList of non-list should be nil")
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	orig := value.Map("a", 1, "nested", value.Map("x", "y"))
	derived := With(orig, "a", 2)
	if orig["a"] != float64(1) {
		t.Error("With mutated the original")
	}
	if derived["a"] != float64(2) {
		t.Error("With did not set the key")
	}
	derived["nested"].(map[string]value.V)["x"] = "mutated"
	if orig["nested"].(map[string]value.V)["x"] != "y" {
		t.Error("With shares nested values with the original")
	}
}

func TestWithNormalizes(t *testing.T) {
	d := With(value.Map(), "n", 7)
	if d["n"] != float64(7) {
		t.Errorf("With stored %T", d["n"])
	}
}

func TestWithout(t *testing.T) {
	orig := value.Map("a", 1, "b", 2)
	d := Without(orig, "a")
	if len(d) != 1 || d["b"] != float64(2) {
		t.Errorf("Without = %v", d)
	}
	if len(orig) != 2 {
		t.Error("Without mutated the original")
	}
	if len(Without(orig, "missing")) != 2 {
		t.Error("Without of missing key should keep everything")
	}
}

func TestWorkDeterministic(t *testing.T) {
	a := Work(value.Map("k", "v"), 1000)
	b := Work(value.Map("k", "v"), 1000)
	if a != b {
		t.Error("Work not deterministic")
	}
	if Work("x", 1000) == Work("y", 1000) {
		t.Error("Work should depend on the seed")
	}
	if Work("x", 1000) == Work("x", 1001) {
		t.Error("Work should depend on the iteration count")
	}
	if len(a) != 16 {
		t.Errorf("Work digest length = %d", len(a))
	}
}
