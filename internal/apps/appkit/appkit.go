// Package appkit holds small dynamic-value accessors shared by the sample
// applications. Application handler code computes over value.V (the
// JSON-like domain) inside mv.Apply closures; these helpers keep that code
// readable while staying nil-safe, since request payloads are external input.
package appkit

import (
	"fmt"
	"hash/fnv"

	"karousos.dev/karousos/internal/value"
)

// Work simulates deterministic CPU-bound application work — request routing,
// template compilation, markup rendering — and returns a digest of the
// result. When its operands are equal across a re-execution group the
// surrounding mv.Apply collapses and the work runs once for the whole group;
// this is exactly the computation that SIMD-on-demand deduplicates (§2.3).
func Work(seed value.V, iters int) string {
	h := fnv.New64a()
	h.Write(value.Encode(nil, seed))
	x := h.Sum64()
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		x += 0x9e3779b97f4a7c15
	}
	return fmt.Sprintf("%016x", x)
}

// Field returns m[k] if v is a map, else nil.
func Field(v value.V, k string) value.V {
	if m, ok := v.(map[string]value.V); ok {
		return m[k]
	}
	return nil
}

// Str returns v as a string, or "" if it is not one.
func Str(v value.V) string {
	s, _ := v.(string)
	return s
}

// Num returns v as a float64, or 0 if it is not one.
func Num(v value.V) float64 {
	n, _ := v.(float64)
	return n
}

// Bool returns v as a bool, or false if it is not one.
func Bool(v value.V) bool {
	b, _ := v.(bool)
	return b
}

// AsMap returns v as a map, or an empty map if it is not one.
func AsMap(v value.V) map[string]value.V {
	if m, ok := v.(map[string]value.V); ok {
		return m
	}
	return map[string]value.V{}
}

// AsList returns v as a list, or nil if it is not one.
func AsList(v value.V) []value.V {
	l, _ := v.([]value.V)
	return l
}

// With returns a copy of map v with k set to val; handler code uses it to
// derive new states without mutating values that may be shared with logs.
func With(v value.V, k string, val value.V) map[string]value.V {
	m := AsMap(value.Clone(v))
	m[k] = value.Normalize(val)
	return m
}

// Without returns a copy of map v with k removed.
func Without(v value.V, k string) map[string]value.V {
	m := AsMap(value.Clone(v))
	delete(m, k)
	return m
}
