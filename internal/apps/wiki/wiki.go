// Package wiki is the real-world-shaped application of the paper's
// evaluation (§6): a wiki serving page creations, comment creations, and
// render requests (mixed 25/15/60, loosely derived from a Wikipedia trace).
//
// Its state layout mirrors what made Wiki.js interesting for Karousos:
//
//   - pages and comments live in the transactional store;
//   - a configuration object is written once by the init function and read
//     by every request — those reads are R-ordered after I's write, so
//     Karousos logs none of them while Orochi-JS logs every one (a large
//     part of Karousos's ~50% advice saving in Figure 8);
//   - a render cache and a connection-pool object are shared loggable
//     variables with cross-request R-concurrent accesses; the pool object
//     grows with the number of concurrent requests, which is why wiki advice
//     grows with concurrency (§6.3).
//
// Each request runs a small tree: the request handler touches config and the
// pool, then hands off to a store handler that performs the transaction and
// responds — "each request has a smaller number of activations" than stacks
// (§6.1).
package wiki

import (
	"fmt"

	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// Handler function ids.
const (
	FnRequest core.FunctionID = "wiki.request"
	FnCreate  core.FunctionID = "wiki.create"
	FnComment core.FunctionID = "wiki.comment"
	FnRender  core.FunctionID = "wiki.render"
	FnStats   core.FunctionID = "wiki.stats"
)

// Event names.
const (
	RequestEvent core.EventName = "request"
	evCreate     core.EventName = "wiki.do-create"
	evComment    core.EventName = "wiki.do-comment"
	evRender     core.EventName = "wiki.do-render"
	evStats      core.EventName = "wiki.do-stats"
)

// Simulated CPU costs: routing/middleware per request and template
// compilation per render. Both run over group-uniform operands, so grouped
// re-execution pays them once per group.
const (
	routeWork    = 60000
	templateWork = 200000
	renderWork   = 8000
)

type app struct {
	config *core.Variable // written once at init, read everywhere
	cache  *core.Variable // rendered-page cache, shared across requests
	pool   *core.Variable // connection-pool object, grows with concurrency
	stats  *core.Variable // per-operation access counters
	reqctx *core.Variable // current middleware context, rewritten per stage
}

// New returns a fresh application instance.
func New() *core.App {
	a := &app{}
	return &core.App{
		Name:         "wiki",
		RequestEvent: RequestEvent,
		Funcs: map[core.FunctionID]core.HandlerFunc{
			FnRequest: a.handleRequest,
			FnCreate:  a.handleCreate,
			FnComment: a.handleComment,
			FnRender:  a.handleRender,
			FnStats:   a.handleStats,
		},
		Init: a.init,
	}
}

func (a *app) init(ctx *core.Context) {
	a.config = ctx.VarNew("wiki.config", ctx.Scalar(value.Map(
		"siteTitle", "karousos wiki",
		"theme", "default",
		"footer", "powered by kem",
		"maxComments", 1000,
	)))
	a.cache = ctx.VarNew("wiki.cache", ctx.Scalar(map[string]value.V{}))
	a.pool = ctx.VarNew("wiki.pool", ctx.Scalar(value.Map("slots", map[string]value.V{})))
	a.stats = ctx.VarNew("wiki.stats", ctx.Scalar(map[string]value.V{}))
	a.reqctx = ctx.VarNew("wiki.reqctx", ctx.Scalar(value.Map("op", nil, "stage", "idle")))
	ctx.Register(RequestEvent, FnRequest)
	ctx.Register(evCreate, FnCreate)
	ctx.Register(evComment, FnComment)
	ctx.Register(evRender, FnRender)
	ctx.Register(evStats, FnStats)
}

func pageKey(id string) string           { return "page:" + id }
func commentKey(id string, n int) string { return fmt.Sprintf("comment:%s:%d", id, n) }
func acquireKeyOf(p value.V) string      { return "conn-" + appkit.Str(appkit.Field(p, "reqid")) }

// acquire marks a connection slot in the shared pool (the slot is keyed by
// request id, so the pool object's size tracks the number of in-flight
// requests, as in the paper's §6.3 observation).
func (a *app) acquire(ctx *core.Context, req *mv.MV) {
	pool := ctx.Read(a.pool)
	ctx.Write(a.pool, ctx.Apply(func(args []value.V) value.V {
		p, r := args[0], args[1]
		slots := appkit.AsMap(value.Clone(appkit.Field(p, "slots")))
		slots[acquireKeyOf(r)] = value.Map("state", "busy")
		return appkit.With(p, "slots", slots)
	}, pool, req))
}

// stageReqCtx overwrites the shared middleware-context object with the
// current stage — a diagnostics variable every request rewrites several
// times in straight-line code.
func (a *app) stageReqCtx(ctx *core.Context, req *mv.MV, stage string) {
	ctx.Write(a.reqctx, ctx.Apply(func(args []value.V) value.V {
		return value.Map("op", appkit.Field(args[0], "op"), "reqid", appkit.Field(args[0], "reqid"), "stage", stage)
	}, req))
}

// clearReqCtx resets the middleware context once the operation handler is
// done; the write is R-ordered after the request handler's stages.
func (a *app) clearReqCtx(ctx *core.Context, req *mv.MV) {
	ctx.Write(a.reqctx, ctx.Scalar(value.Map("op", nil, "stage", "idle")))
}

// release frees the request's connection slot.
func (a *app) release(ctx *core.Context, req *mv.MV) {
	a.clearReqCtx(ctx, req)
	pool := ctx.Read(a.pool)
	ctx.Write(a.pool, ctx.Apply(func(args []value.V) value.V {
		p, r := args[0], args[1]
		slots := appkit.AsMap(value.Clone(appkit.Field(p, "slots")))
		delete(slots, acquireKeyOf(r))
		return appkit.With(p, "slots", slots)
	}, pool, req))
}

// handleRequest reads the config (an R-ordered, unlogged read under
// Karousos), acquires a pool slot, and dispatches to the operation handler
// plus a parallel access-stats handler. The two children are mutually
// R-concurrent, so the scheduler runs them in either order; Karousos groups
// both orders together while Orochi-JS cannot (§4.1).
func (a *app) handleRequest(ctx *core.Context, req *mv.MV) {
	_ = ctx.Read(a.config)
	a.acquire(ctx, req)
	// Middleware pipeline: the context object is rewritten once per stage.
	// Consecutive writes by the same handler are R-ordered, so Karousos logs
	// only the first of each burst (whose overwritten predecessor belongs to
	// another request) while Orochi-JS logs every stage — the §2.3 verbosity
	// problem for state shared between discrete execution units, and a large
	// part of Karousos's advice saving on this application (§6.3).
	a.stageReqCtx(ctx, req, "parse")
	a.stageReqCtx(ctx, req, "session")
	a.stageReqCtx(ctx, req, "auth")
	a.stageReqCtx(ctx, req, "validate")
	a.stageReqCtx(ctx, req, "route")
	opIs := func(name string) bool {
		return ctx.Branch("wiki.op-"+name, ctx.Apply(func(args []value.V) value.V {
			return appkit.Str(appkit.Field(args[0], "op")) == name
		}, req))
	}
	route := func(name string) {
		// Routing and middleware: group-uniform operands, collapsed.
		_ = ctx.Apply(func(args []value.V) value.V {
			return appkit.Work(args[0], routeWork)
		}, ctx.Scalar("route:/"+name))
	}
	switch {
	case opIs("create"):
		route("create")
		ctx.Emit(evStats, ctx.Scalar(value.Map("op", "create")))
		ctx.Emit(evCreate, req)
	case opIs("comment"):
		route("comment")
		ctx.Emit(evStats, ctx.Scalar(value.Map("op", "comment")))
		ctx.Emit(evComment, req)
	default:
		route("render")
		ctx.Emit(evStats, ctx.Scalar(value.Map("op", "render")))
		ctx.Emit(evRender, req)
	}
}

// handleStats folds one access into the shared per-operation counters; it
// runs concurrently with the operation handler and often after the response
// has already been delivered.
func (a *app) handleStats(ctx *core.Context, p *mv.MV) {
	st := ctx.Read(a.stats)
	ctx.Write(a.stats, ctx.Apply(func(args []value.V) value.V {
		s, pp := args[0], args[1]
		op := appkit.Str(appkit.Field(pp, "op"))
		return appkit.With(s, op, appkit.Num(appkit.Field(s, op))+1)
	}, st, p))
}

// handleCreate stores a new page and invalidates its cache entry.
func (a *app) handleCreate(ctx *core.Context, req *mv.MV) {
	cfg := ctx.Read(a.config)
	key := ctx.Apply(func(args []value.V) value.V {
		return pageKey(appkit.Str(appkit.Field(args[0], "id")))
	}, req)
	tx := ctx.TxStart()
	page := ctx.Apply(func(args []value.V) value.V {
		r, c := args[0], args[1]
		return value.Map(
			"title", appkit.Field(r, "title"),
			"content", appkit.Field(r, "content"),
			"comments", 0,
			"theme", appkit.Field(c, "theme"),
		)
	}, req, cfg)
	if !ctx.BranchBool("create.put-ok", ctx.Put(tx, key, page)) {
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "retry")))
		return
	}
	if !ctx.BranchBool("create.commit-ok", ctx.Commit(tx)) {
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "retry")))
		return
	}
	cache := ctx.Read(a.cache)
	ctx.Write(a.cache, ctx.Apply(func(args []value.V) value.V {
		return appkit.Without(args[0], appkit.Str(appkit.Field(args[1], "id")))
	}, cache, req))
	a.release(ctx, req)
	ctx.Respond(ctx.Apply(func(args []value.V) value.V {
		return value.Map("status", "created", "id", appkit.Field(args[0], "id"))
	}, req))
}

// handleComment appends a comment row and bumps the page's comment count in
// one transaction.
func (a *app) handleComment(ctx *core.Context, req *mv.MV) {
	key := ctx.Apply(func(args []value.V) value.V {
		return pageKey(appkit.Str(appkit.Field(args[0], "page")))
	}, req)
	tx := ctx.TxStart()
	page, ok := ctx.Get(tx, key)
	if !ctx.BranchBool("comment.get-ok", ok) {
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "retry")))
		return
	}
	exists := ctx.Branch("comment.page-exists", ctx.Apply(func(args []value.V) value.V {
		return args[0] != nil
	}, page))
	if !exists {
		ctx.Abort(tx)
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "no-such-page")))
		return
	}
	ckey := ctx.Apply(func(args []value.V) value.V {
		p, r := args[0], args[1]
		return commentKey(appkit.Str(appkit.Field(r, "page")), int(appkit.Num(appkit.Field(p, "comments"))))
	}, page, req)
	comment := ctx.Apply(func(args []value.V) value.V {
		return value.Map("text", appkit.Field(args[0], "text"))
	}, req)
	bumped := ctx.Apply(func(args []value.V) value.V {
		return appkit.With(args[0], "comments", appkit.Num(appkit.Field(args[0], "comments"))+1)
	}, page)
	if !ctx.BranchBool("comment.put-ok", ctx.Put(tx, ckey, comment)) ||
		!ctx.BranchBool("comment.bump-ok", ctx.Put(tx, key, bumped)) ||
		!ctx.BranchBool("comment.commit-ok", ctx.Commit(tx)) {
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "retry")))
		return
	}
	cache := ctx.Read(a.cache)
	ctx.Write(a.cache, ctx.Apply(func(args []value.V) value.V {
		return appkit.Without(args[0], appkit.Str(appkit.Field(args[1], "page")))
	}, cache, req))
	a.release(ctx, req)
	ctx.Respond(ctx.Scalar(value.Map("status", "commented")))
}

// handleRender serves a page from the shared render cache, or renders it
// from the store and fills the cache.
func (a *app) handleRender(ctx *core.Context, req *mv.MV) {
	cfg := ctx.Read(a.config)
	cache := ctx.Read(a.cache)
	hit := ctx.Branch("render.cache-hit", ctx.Apply(func(args []value.V) value.V {
		c, r := args[0], args[1]
		_, ok := appkit.AsMap(c)[appkit.Str(appkit.Field(r, "id"))]
		return ok
	}, cache, req))
	if hit {
		a.release(ctx, req)
		ctx.Respond(ctx.Apply(func(args []value.V) value.V {
			c, r := args[0], args[1]
			return value.Map("status", "ok", "html", appkit.AsMap(c)[appkit.Str(appkit.Field(r, "id"))], "cached", true)
		}, cache, req))
		return
	}
	key := ctx.Apply(func(args []value.V) value.V {
		return pageKey(appkit.Str(appkit.Field(args[0], "id")))
	}, req)
	tx := ctx.TxStart()
	page, ok := ctx.Get(tx, key)
	if !ctx.BranchBool("render.get-ok", ok) {
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "retry")))
		return
	}
	if !ctx.BranchBool("render.commit-ok", ctx.Commit(tx)) {
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "retry")))
		return
	}
	exists := ctx.Branch("render.page-exists", ctx.Apply(func(args []value.V) value.V {
		return args[0] != nil
	}, page))
	if !exists {
		a.release(ctx, req)
		ctx.Respond(ctx.Scalar(value.Map("status", "not-found")))
		return
	}
	// Template compilation depends only on the theme — group-uniform, so it
	// collapses and runs once per group; per-page rendering stays per
	// request.
	_ = ctx.Apply(func(args []value.V) value.V {
		return appkit.Work(args[0], templateWork)
	}, ctx.Apply(func(args []value.V) value.V {
		return appkit.Field(args[0], "theme")
	}, cfg))
	html := ctx.Apply(renderPage, page, cfg)
	cache2 := ctx.Read(a.cache)
	ctx.Write(a.cache, ctx.Apply(func(args []value.V) value.V {
		c, r, h := args[0], args[1], args[2]
		m := appkit.AsMap(value.Clone(c))
		m[appkit.Str(appkit.Field(r, "id"))] = h
		return m
	}, cache2, req, html))
	a.release(ctx, req)
	ctx.Respond(ctx.Apply(func(args []value.V) value.V {
		return value.Map("status", "ok", "html", args[0], "cached", false)
	}, html))
}

// renderPage produces the page's HTML from its stored fields and the site
// configuration. The body of the page is a digest standing in for the
// rendered markup — it keeps cached values small (an ETag, in web terms)
// while still costing real, per-page CPU work.
func renderPage(args []value.V) value.V {
	page, cfg := args[0], args[1]
	body := appkit.Work(value.List(appkit.Field(page, "title"), appkit.Field(page, "content"),
		appkit.Field(page, "comments"), appkit.Field(cfg, "footer")), renderWork)
	return fmt.Sprintf("<html:%s:%s>", appkit.Str(appkit.Field(page, "title")), body)
}
