package wiki_test

import (
	"fmt"
	"testing"

	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/apps/wiki"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
)

func serve(t *testing.T, conc int, seed int64, inputs []value.V) (map[string]value.V, *server.Result) {
	t.Helper()
	srv := server.New(server.Config{
		App:   wiki.New(),
		Store: kvstore.New(kvstore.Serializable),
		Seed:  seed,
	})
	var reqs []server.Request
	for i, in := range inputs {
		reqs = append(reqs, server.Request{RID: core.RID(fmt.Sprintf("r%03d", i)), Input: in})
	}
	res, err := srv.Run(reqs, conc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace.Outputs(), res
}

func create(i int, id, title, content string) value.V {
	return value.Map("op", "create", "reqid", fmt.Sprintf("r%03d", i),
		"id", id, "title", title, "content", content)
}
func comment(i int, page, text string) value.V {
	return value.Map("op", "comment", "reqid", fmt.Sprintf("r%03d", i), "page", page, "text", text)
}
func render(i int, id string) value.V {
	return value.Map("op", "render", "reqid", fmt.Sprintf("r%03d", i), "id", id)
}

func TestCreateAndRender(t *testing.T) {
	outs, _ := serve(t, 1, 1, []value.V{
		create(0, "p1", "Title", "Body"),
		render(1, "p1"),
	})
	if !value.Equal(outs["r000"], value.Map("status", "created", "id", "p1")) {
		t.Errorf("create = %v", value.String(outs["r000"]))
	}
	r := outs["r001"]
	if appkit.Str(appkit.Field(r, "status")) != "ok" {
		t.Fatalf("render = %v", value.String(r))
	}
	if appkit.Bool(appkit.Field(r, "cached")) {
		t.Error("first render must be a cache miss")
	}
	if appkit.Str(appkit.Field(r, "html")) == "" {
		t.Error("empty html")
	}
}

func TestRenderCacheHitAndInvalidation(t *testing.T) {
	outs, _ := serve(t, 1, 1, []value.V{
		create(0, "p1", "Title", "Body"),
		render(1, "p1"),
		render(2, "p1"),                    // cache hit
		create(3, "p1", "Title2", "Body2"), // invalidates
		render(4, "p1"),                    // miss again, new content
	})
	if !appkit.Bool(appkit.Field(outs["r002"], "cached")) {
		t.Error("second render should hit the cache")
	}
	if appkit.Bool(appkit.Field(outs["r004"], "cached")) {
		t.Error("render after re-create should miss")
	}
	if appkit.Str(appkit.Field(outs["r001"], "html")) == appkit.Str(appkit.Field(outs["r004"], "html")) {
		t.Error("re-created page should render differently")
	}
	if appkit.Str(appkit.Field(outs["r001"], "html")) != appkit.Str(appkit.Field(outs["r002"], "html")) {
		t.Error("cache hit should return the same html")
	}
}

func TestRenderMissingPage(t *testing.T) {
	outs, _ := serve(t, 1, 1, []value.V{render(0, "ghost")})
	if !value.Equal(outs["r000"], value.Map("status", "not-found")) {
		t.Errorf("missing render = %v", value.String(outs["r000"]))
	}
}

func TestCommentFlow(t *testing.T) {
	outs, _ := serve(t, 1, 1, []value.V{
		create(0, "p1", "T", "B"),
		comment(1, "p1", "first!"),
		comment(2, "p1", "second"),
		render(3, "p1"),
		comment(4, "ghost", "nope"),
	})
	if !value.Equal(outs["r001"], value.Map("status", "commented")) {
		t.Errorf("comment = %v", value.String(outs["r001"]))
	}
	if !value.Equal(outs["r004"], value.Map("status", "no-such-page")) {
		t.Errorf("comment on missing page = %v", value.String(outs["r004"]))
	}
	// Comments invalidate the cache and change the rendered output (the
	// comment count is in the page body).
	if appkit.Bool(appkit.Field(outs["r003"], "cached")) {
		t.Error("render after comments should be a miss")
	}
}

func TestCommentCountMonotonic(t *testing.T) {
	var inputs []value.V
	inputs = append(inputs, create(0, "p1", "T", "B"))
	for i := 1; i <= 5; i++ {
		inputs = append(inputs, comment(i, "p1", fmt.Sprintf("c%d", i)))
	}
	inputs = append(inputs, render(6, "p1"))
	outs, _ := serve(t, 1, 1, inputs)
	html6 := appkit.Str(appkit.Field(outs["r006"], "html"))
	// Re-render of the same page with fewer comments must differ.
	outs2, _ := serve(t, 1, 1, []value.V{
		create(0, "p1", "T", "B"), comment(1, "p1", "c1"), render(2, "p1"),
	})
	if html6 == appkit.Str(appkit.Field(outs2["r002"], "html")) {
		t.Error("comment count does not influence the rendered page")
	}
}

func TestConcurrentRunsComplete(t *testing.T) {
	var inputs []value.V
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			inputs = append(inputs, create(i, fmt.Sprintf("p%d", i%5), "T", "B"))
		case 1:
			inputs = append(inputs, comment(i, fmt.Sprintf("p%d", i%5), "c"))
		default:
			inputs = append(inputs, render(i, fmt.Sprintf("p%d", i%5)))
		}
	}
	outs, res := serve(t, 8, 3, inputs)
	if len(outs) != 30 {
		t.Errorf("%d responses, want 30", len(outs))
	}
	_ = res
}
