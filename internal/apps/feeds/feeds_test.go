package feeds_test

import (
	"strings"
	"testing"

	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/apps/feeds"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
)

func serve(t *testing.T, inputs []value.V) map[string]value.V {
	t.Helper()
	srv := server.New(server.Config{App: feeds.New(), Seed: 1})
	var reqs []server.Request
	for i, in := range inputs {
		reqs = append(reqs, server.Request{RID: core.RID(rid(i)), Input: in})
	}
	res, err := srv.Run(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace.Outputs()
}

func rid(i int) string { return string(rune('a' + i)) }

func view(board string) value.V { return value.Map("op", "view", "board", board) }

func pin(board, note string) value.V {
	return value.Map("op", "pin", "board", board, "note", note)
}

func TestViewUnpinnedBoard(t *testing.T) {
	outs := serve(t, []value.V{view("board-00")})
	out := outs["a"]
	if appkit.Str(appkit.Field(out, "status")) != "ok" {
		t.Fatalf("got %v", value.String(out))
	}
	if appkit.Field(out, "notice") != nil {
		t.Errorf("unpinned board carries notice: %v", value.String(out))
	}
	if !strings.HasPrefix(appkit.Str(appkit.Field(out, "html")), "<feed:board-00:") {
		t.Errorf("html = %v", value.String(out))
	}
}

func TestPinShowsOnView(t *testing.T) {
	outs := serve(t, []value.V{pin("board-03", "maintenance at noon"), view("board-03"), view("board-04")})
	if !value.Equal(outs["a"], value.Map("status", "pinned", "board", "board-03")) {
		t.Errorf("pin response = %v", value.String(outs["a"]))
	}
	if got := appkit.Str(appkit.Field(outs["b"], "notice")); got != "maintenance at noon" {
		t.Errorf("pinned board notice = %q", got)
	}
	if appkit.Field(outs["c"], "notice") != nil {
		t.Errorf("other board picked up the notice: %v", value.String(outs["c"]))
	}
}

func TestLaterPinWins(t *testing.T) {
	outs := serve(t, []value.V{pin("b", "first"), pin("b", "second"), view("b")})
	if got := appkit.Str(appkit.Field(outs["c"], "notice")); got != "second" {
		t.Errorf("notice = %q", got)
	}
}

func TestViewDeterministicHTML(t *testing.T) {
	// The assembled body must be a pure function of the board and shared
	// state: two servers producing different bytes for the same view would
	// make every audit reject.
	a := serve(t, []value.V{view("board-07")})
	b := serve(t, []value.V{view("board-07")})
	if !value.Equal(a["a"], b["a"]) {
		t.Errorf("same view diverged: %v vs %v", value.String(a["a"]), value.String(b["a"]))
	}
}

func TestViewWritesNothing(t *testing.T) {
	// The read path must not move shared state — that stationarity is the
	// whole point of the application (see the package comment): a second
	// identical view stream must observe byte-identical responses even with
	// views interleaved before it.
	outs := serve(t, []value.V{view("x"), view("y"), view("x")})
	if !value.Equal(outs["a"], outs["c"]) {
		t.Errorf("repeated view diverged: %v vs %v", value.String(outs["a"]), value.String(outs["c"]))
	}
}
