// Package feeds is the steady-state model application behind the
// cross-epoch memo experiments (DESIGN.md §18): subscribers poll dashboard
// boards, moderators occasionally pin a notice to one. Polls dominate, the
// same boards recur epoch after epoch, and assembling a board is real
// per-board CPU work — the regime where re-executing the same re-execution
// groups every epoch is almost pure waste.
//
// The application is deliberately the opposite of wiki along one axis:
// there is no per-request bookkeeping on the read path. Wiki's access-stats
// counter moves the carried state on every single request, so no recurring
// group there ever reaches the input fixed point the memo keys on. A feeds
// view reads shared state and writes nothing, so under pure recurring
// traffic the carry is stationary and every post-ramp epoch is a cache hit.
package feeds

import (
	"fmt"

	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// FnRequest is the single request handler.
const FnRequest core.FunctionID = "feeds.request"

// RequestEvent is the event the runtime emits per incoming request.
const RequestEvent core.EventName = "request"

// routeWork is the simulated cost of parsing and routing one request. Its
// operands are group-uniform, so grouped re-execution pays it once per
// group.
//
// assembleWork is the cost of assembling one board's feed — ranking,
// filtering, markup. Its operands include the request's board id, so
// grouped re-execution pays it once per *distinct board* per group: this is
// the per-epoch work the cross-epoch memo cache saves entirely once the
// group's input closure reaches its fixed point.
const (
	routeWork    = 10000
	assembleWork = 150000
)

type app struct {
	site   *core.Variable // small read-mostly site chrome
	pinned *core.Variable // board id -> pinned notice
}

// New returns a fresh application instance. Each runtime (server, verifier,
// baseline) needs its own instance.
func New() *core.App {
	a := &app{}
	return &core.App{
		Name:         "feeds",
		RequestEvent: RequestEvent,
		Funcs: map[core.FunctionID]core.HandlerFunc{
			FnRequest: a.handleRequest,
		},
		Init: a.init,
	}
}

func (a *app) init(ctx *core.Context) {
	a.site = ctx.VarNew("feeds.site", ctx.Scalar(value.Map(
		"title", "feeds",
		"footer", "audited by karousos",
	)))
	a.pinned = ctx.VarNew("feeds.pinned", ctx.Scalar(map[string]value.V{}))
	ctx.Register(RequestEvent, FnRequest)
}

// handleRequest serves {"op":"view","board":b} and
// {"op":"pin","board":b,"note":m}.
func (a *app) handleRequest(ctx *core.Context, req *mv.MV) {
	isView := ctx.Branch("feeds.op-view", ctx.Apply(func(args []value.V) value.V {
		return appkit.Str(appkit.Field(args[0], "op")) == "view"
	}, req))
	if isView {
		_ = ctx.Apply(func(args []value.V) value.V {
			return appkit.Work(args[0], routeWork)
		}, ctx.Scalar("route:/view"))
		site := ctx.Read(a.site)
		pins := ctx.Read(a.pinned)
		ctx.Respond(ctx.Apply(assembleBoard, site, pins, req))
		return
	}

	_ = ctx.Apply(func(args []value.V) value.V {
		return appkit.Work(args[0], routeWork)
	}, ctx.Scalar("route:/pin"))
	pins := ctx.Read(a.pinned)
	ctx.Write(a.pinned, ctx.Apply(func(args []value.V) value.V {
		p, r := args[0], args[1]
		return appkit.With(p, appkit.Str(appkit.Field(r, "board")), appkit.Field(r, "note"))
	}, pins, req))
	ctx.Respond(ctx.Apply(func(args []value.V) value.V {
		return value.Map("status", "pinned", "board", appkit.Field(args[0], "board"))
	}, req))
}

// assembleBoard produces one board's feed from the shared state. The body is
// a digest standing in for the assembled markup (an ETag, keeping logged
// values small) while still costing real per-board CPU work.
func assembleBoard(args []value.V) value.V {
	site, pins, req := args[0], args[1], args[2]
	board := appkit.Str(appkit.Field(req, "board"))
	notice := appkit.AsMap(pins)[board]
	body := appkit.Work(value.List(board, appkit.Field(site, "title"), notice), assembleWork)
	return value.Map(
		"status", "ok",
		"board", board,
		"notice", notice,
		"html", fmt.Sprintf("<feed:%s:%s>", board, body),
	)
}
