package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"karousos.dev/karousos/internal/value"
)

// Canonical binary encoding of trace events, and the trace digest built
// over it. The epoch log (internal/epochlog) frames each event with this
// encoding, and an epoch's manifest records Digest over the sealed events —
// so the digest is recomputable from segment payloads alone and pins the
// trusted channel's contents across process restarts.

// AppendEventBinary appends the canonical binary encoding of e to dst:
// kind byte, rid length + bytes, then the value's canonical encoding.
func AppendEventBinary(dst []byte, e Event) []byte {
	dst = append(dst, byte(e.Kind))
	dst = binary.AppendUvarint(dst, uint64(len(e.RID)))
	dst = append(dst, e.RID...)
	return value.AppendBinary(dst, e.Data)
}

// DecodeEventBinary decodes one event from buf, which must contain exactly
// one encoded event (the epoch log's frames carry exact payloads).
func DecodeEventBinary(buf []byte) (Event, error) {
	var e Event
	if len(buf) == 0 {
		return e, fmt.Errorf("trace: empty event encoding")
	}
	switch Kind(buf[0]) {
	case Req, Resp:
		e.Kind = Kind(buf[0])
	default:
		return e, fmt.Errorf("trace: unknown event kind %d", buf[0])
	}
	off := 1
	n, w := binary.Uvarint(buf[off:])
	if w <= 0 || n > uint64(len(buf)-off-w) {
		return e, fmt.Errorf("trace: truncated event rid")
	}
	off += w
	e.RID = string(buf[off : off+int(n)])
	off += int(n)
	v, vn, err := value.DecodeBinary(buf[off:])
	if err != nil {
		return e, fmt.Errorf("trace: event data: %w", err)
	}
	off += vn
	if off != len(buf) {
		return e, fmt.Errorf("trace: %d trailing bytes after event", len(buf)-off)
	}
	e.Data = v
	return e, nil
}

// Digest returns a stable hex-encoded SHA-256 over the canonical encodings
// of the trace's events in order. Equal traces (same events, same order,
// Equal values) digest identically; any reordering, dropped event, or
// altered payload changes it.
func (t *Trace) Digest() string {
	h := sha256.New()
	var buf []byte
	for _, e := range t.Events {
		buf = AppendEventBinary(buf[:0], e)
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}
