// Package trace implements the ground-truth request/response trace and the
// trusted collector that records it (paper §2.1, Definition 1).
//
// The trace is the only trusted input to an audit: an ordered list of request
// events (REQ, rid, input) and response events (RESP, rid, output) in
// chronological order. Everything else the verifier consumes — the advice —
// is untrusted.
package trace

import (
	"fmt"
	"sync"

	"karousos.dev/karousos/internal/value"
)

// Kind distinguishes request and response events.
type Kind uint8

const (
	// Req marks the arrival of a request at the server.
	Req Kind = iota
	// Resp marks the delivery of a response from the server.
	Resp
)

func (k Kind) String() string {
	if k == Req {
		return "REQ"
	}
	return "RESP"
}

// Event is one entry of the trace: (REQ, rid, x) or (RESP, rid, y).
type Event struct {
	Kind Kind
	RID  string
	Data value.V
}

// Trace is the chronological list of events the collector observed.
type Trace struct {
	Events []Event
}

// Collector is the trusted bump-in-the-wire component. The server runtime
// calls Request and Response exactly when bytes would cross the wire; in a
// deployment this component sits outside the untrusted server (§2.2), and in
// tests it is what an adversarial server cannot forge.
//
// Collectors are safe for concurrent use: an HTTP front-end records from
// concurrent connections, and whichever event wins the lock is the
// chronological truth the audit holds the server to.
type Collector struct {
	mu sync.Mutex
	tr Trace
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Request records the arrival of request rid with input x.
func (c *Collector) Request(rid string, x value.V) {
	e := Event{Kind: Req, RID: rid, Data: value.Clone(value.Normalize(x))}
	c.mu.Lock()
	c.tr.Events = append(c.tr.Events, e)
	c.mu.Unlock()
}

// Response records the delivery of the response for rid with output y.
func (c *Collector) Response(rid string, y value.V) {
	e := Event{Kind: Resp, RID: rid, Data: value.Clone(value.Normalize(y))}
	c.mu.Lock()
	c.tr.Events = append(c.tr.Events, e)
	c.mu.Unlock()
}

// Trace drains the collected events, resetting the collector. Successive
// calls partition the observed history, which is how an epoch-based
// front-end slices one serving run into per-epoch traces.
func (c *Collector) Trace() *Trace {
	c.mu.Lock()
	t := c.tr
	c.tr = Trace{}
	c.mu.Unlock()
	return &t
}

// CheckBalanced verifies the structural sanity the verifier's Preprocess
// requires (Figure 14 line 19): every request id appears exactly once as a
// REQ and exactly once as a RESP, and its REQ precedes its RESP.
func (t *Trace) CheckBalanced() error {
	reqAt := make(map[string]int, len(t.Events)/2)
	respAt := make(map[string]int, len(t.Events)/2)
	for i, e := range t.Events {
		switch e.Kind {
		case Req:
			if _, dup := reqAt[e.RID]; dup {
				return fmt.Errorf("trace: duplicate REQ for rid %q", e.RID)
			}
			reqAt[e.RID] = i
		case Resp:
			if _, dup := respAt[e.RID]; dup {
				return fmt.Errorf("trace: duplicate RESP for rid %q", e.RID)
			}
			respAt[e.RID] = i
		}
	}
	if len(reqAt) != len(respAt) {
		return fmt.Errorf("trace: %d requests but %d responses", len(reqAt), len(respAt))
	}
	for rid, ri := range reqAt {
		pi, ok := respAt[rid]
		if !ok {
			return fmt.Errorf("trace: request %q has no response", rid)
		}
		if pi < ri {
			return fmt.Errorf("trace: response for %q precedes its request", rid)
		}
	}
	return nil
}

// RIDs returns the request ids in order of request arrival.
func (t *Trace) RIDs() []string {
	var out []string
	for _, e := range t.Events {
		if e.Kind == Req {
			out = append(out, e.RID)
		}
	}
	return out
}

// Inputs returns a map from rid to request input.
func (t *Trace) Inputs() map[string]value.V {
	out := make(map[string]value.V)
	for _, e := range t.Events {
		if e.Kind == Req {
			out[e.RID] = e.Data
		}
	}
	return out
}

// Outputs returns a map from rid to the traced response.
func (t *Trace) Outputs() map[string]value.V {
	out := make(map[string]value.V)
	for _, e := range t.Events {
		if e.Kind == Resp {
			out[e.RID] = e.Data
		}
	}
	return out
}

// PrecedencePair is one time-precedence fact: the response of Before was
// delivered strictly before the request of After arrived, so any valid
// schedule must order them (Orochi's CreateTimePrecedenceGraph, reused by
// Karousos §4.3).
type PrecedencePair struct {
	Before, After string
}

// PrecedencePairs returns a transitively-sufficient set of time-precedence
// facts in O(n) pairs: each response is linked to the next request event, and
// the verifier inserts barrier chaining so the transitive closure covers
// every earlier response vs. every later request.
//
// The returned slices are grouped: Links[i] says "all responses with
// BarrierIndex ≤ i precede request Reqs[i]". The verifier materializes this
// with one barrier-node chain rather than O(n²) edges.
type PrecedenceSchedule struct {
	// Order lists the trace events as (kind, rid) in chronological order,
	// already filtered to REQ/RESP.
	Order []Event
}

// Precedence returns the chronological event order used to build the
// time-precedence portion of the execution graph.
func (t *Trace) Precedence() PrecedenceSchedule {
	return PrecedenceSchedule{Order: t.Events}
}
