package trace

import (
	"testing"

	"karousos.dev/karousos/internal/value"
)

func collect(events ...Event) *Trace {
	return &Trace{Events: events}
}

func TestCollectorRoundTrip(t *testing.T) {
	c := NewCollector()
	c.Request("r1", value.Map("op", "get"))
	c.Request("r2", value.Map("op", "set"))
	c.Response("r2", value.Map("status", "ok"))
	c.Response("r1", "hello")
	tr := c.Trace()
	if len(tr.Events) != 4 {
		t.Fatalf("events = %d", len(tr.Events))
	}
	if err := tr.CheckBalanced(); err != nil {
		t.Fatalf("balanced: %v", err)
	}
	if got := tr.RIDs(); len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Errorf("RIDs = %v", got)
	}
	if !value.Equal(tr.Inputs()["r1"], value.Map("op", "get")) {
		t.Error("input r1 wrong")
	}
	if !value.Equal(tr.Outputs()["r1"], "hello") {
		t.Error("output r1 wrong")
	}
}

func TestCollectorClonesInputs(t *testing.T) {
	c := NewCollector()
	in := value.Map("k", "v")
	c.Request("r1", in)
	in["k"] = "mutated"
	c.Response("r1", nil)
	tr := c.Trace()
	if tr.Inputs()["r1"].(map[string]value.V)["k"] != "v" {
		t.Error("collector must clone inputs: later mutation leaked into the trace")
	}
}

func TestCollectorResetsAfterTrace(t *testing.T) {
	c := NewCollector()
	c.Request("r1", nil)
	c.Response("r1", nil)
	_ = c.Trace()
	c.Request("r2", nil)
	c.Response("r2", nil)
	tr := c.Trace()
	if len(tr.Events) != 2 {
		t.Errorf("second trace has %d events, want 2", len(tr.Events))
	}
}

func TestCheckBalancedRejects(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"dup-req", collect(
			Event{Req, "r1", nil}, Event{Req, "r1", nil}, Event{Resp, "r1", nil})},
		{"dup-resp", collect(
			Event{Req, "r1", nil}, Event{Resp, "r1", nil}, Event{Resp, "r1", nil})},
		{"missing-resp", collect(
			Event{Req, "r1", nil}, Event{Req, "r2", nil}, Event{Resp, "r1", nil})},
		{"resp-without-req", collect(
			Event{Resp, "r1", nil}, Event{Req, "r2", nil}, Event{Resp, "r2", nil})},
		{"resp-before-req", collect(
			Event{Resp, "r1", nil}, Event{Req, "r1", nil})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.tr.CheckBalanced(); err == nil {
				t.Errorf("CheckBalanced accepted malformed trace %s", c.name)
			}
		})
	}
}

func TestCheckBalancedAcceptsInterleaved(t *testing.T) {
	tr := collect(
		Event{Req, "r1", nil},
		Event{Req, "r2", nil},
		Event{Resp, "r2", nil},
		Event{Req, "r3", nil},
		Event{Resp, "r1", nil},
		Event{Resp, "r3", nil},
	)
	if err := tr.CheckBalanced(); err != nil {
		t.Errorf("interleaved balanced trace rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if Req.String() != "REQ" || Resp.String() != "RESP" {
		t.Error("Kind.String wrong")
	}
}

func TestEmptyTraceBalanced(t *testing.T) {
	if err := (&Trace{}).CheckBalanced(); err != nil {
		t.Errorf("empty trace should be balanced: %v", err)
	}
}
