package trace

import (
	"fmt"
	"sync"
	"testing"

	"karousos.dev/karousos/internal/value"
)

func TestEventBinaryRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: Req, RID: "r1", Data: value.Map("op", "get", "n", float64(3))},
		{Kind: Resp, RID: "r1", Data: value.List("a", true, nil)},
		{Kind: Req, RID: "", Data: nil},
		{Kind: Resp, RID: "r2", Data: value.Map("nested", value.Map("k", value.List(float64(1), float64(2))))},
	}
	for i, e := range events {
		enc := AppendEventBinary(nil, e)
		got, err := DecodeEventBinary(enc)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		if got.Kind != e.Kind || got.RID != e.RID || !value.Equal(got.Data, e.Data) {
			t.Fatalf("event %d: round trip mismatch: %+v vs %+v", i, got, e)
		}
	}
}

func TestEventBinaryRejectsMalformed(t *testing.T) {
	enc := AppendEventBinary(nil, Event{Kind: Req, RID: "r1", Data: value.Map("k", "v")})
	if _, err := DecodeEventBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DecodeEventBinary([]byte{99}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := DecodeEventBinary(enc[:len(enc)-1]); err == nil {
		t.Error("truncated event accepted")
	}
	if _, err := DecodeEventBinary(append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestDigestStableAndSensitive(t *testing.T) {
	mk := func() *Trace {
		c := NewCollector()
		c.Request("r1", value.Map("a", float64(1)))
		c.Request("r2", value.Map("b", float64(2)))
		c.Response("r1", "x")
		c.Response("r2", "y")
		return c.Trace()
	}
	a, b := mk(), mk()
	if a.Digest() != b.Digest() {
		t.Fatal("equal traces digest differently")
	}
	if a.Digest() != a.Digest() {
		t.Fatal("digest unstable across calls")
	}
	// Reordering changes the digest.
	re := mk()
	re.Events[0], re.Events[1] = re.Events[1], re.Events[0]
	if re.Digest() == a.Digest() {
		t.Error("reordered trace digests equal")
	}
	// Altering a payload changes the digest.
	alt := mk()
	alt.Events[2].Data = "z"
	if alt.Digest() == a.Digest() {
		t.Error("altered payload digests equal")
	}
	// Dropping an event changes the digest.
	drop := mk()
	drop.Events = drop.Events[:3]
	if drop.Digest() == a.Digest() {
		t.Error("shortened trace digests equal")
	}
	if (&Trace{}).Digest() == a.Digest() {
		t.Error("empty trace digests equal to non-empty")
	}
}

// TestCollectorConcurrent exercises parallel Request/Response/Trace calls;
// run under -race it proves the collector's locking (an HTTP front-end
// records from concurrent connections).
func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rid := fmt.Sprintf("w%d-%d", w, i)
				c.Request(rid, value.Map("i", float64(i)))
				c.Response(rid, float64(i))
			}
		}(w)
	}
	// A concurrent drainer slices the history while recording continues.
	done := make(chan *Trace)
	go func() {
		partial := c.Trace()
		done <- partial
	}()
	partial := <-done
	wg.Wait()
	rest := c.Trace()
	total := len(partial.Events) + len(rest.Events)
	if want := workers * perWorker * 2; total != want {
		t.Fatalf("lost events: got %d, want %d", total, want)
	}
	// The concatenated history must still be balanced.
	all := &Trace{Events: append(partial.Events, rest.Events...)}
	if err := all.CheckBalanced(); err != nil {
		t.Fatalf("concatenated trace unbalanced: %v", err)
	}
}
