// End-to-end snapshot-isolation auditing (extension; see adya.CheckSI): an
// honest SI execution exhibiting write skew must pass the audit at the
// SnapshotIsolation level, fail at Serializable, and forged begin/commit
// orders must reject.
package verifier_test

import (
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
)

// skewedSIRun finds a scheduler seed where the oncall application (see
// isolation_e2e_test.go) produces write skew on a snapshot-isolation store,
// and returns the combined trace and advice.
func skewedSIRun(t *testing.T) (*trace.Trace, *advice.Advice) {
	t.Helper()
	for seed := int64(0); seed < 120; seed++ {
		store := kvstore.New(kvstore.SnapshotIsolation)
		srv := server.New(server.Config{App: oncallApp()(), Store: store, Seed: seed, CollectKarousos: true})
		res1, err := srv.Run([]server.Request{
			{RID: "seed", Input: value.Map("op", "seed")},
		}, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := srv.Run([]server.Request{
			{RID: "offA", Input: value.Map("op", "off", "who", "a", "other", "b")},
			{RID: "offB", Input: value.Map("op", "off", "who", "b", "other", "a")},
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		snap := store.SnapshotCommitted()
		if appkit.Bool(appkit.Field(snap["doc:a"], "oncall")) ||
			appkit.Bool(appkit.Field(snap["doc:b"], "oncall")) {
			continue
		}
		full := res1.Trace
		full.Events = append(full.Events, res.Trace.Events...)
		return full, res.Karousos
	}
	t.Fatal("no interleaving produced write skew under snapshot isolation")
	return nil, nil
}

func auditOncallAt(level adya.Level, tr *trace.Trace, adv *advice.Advice) error {
	_, err := verifier.Audit(verifier.Config{
		App: oncallApp()(), Mode: advice.ModeKarousos, Isolation: level,
	}, tr, adv)
	return err
}

func TestSnapshotIsolationAudit(t *testing.T) {
	tr, adv := skewedSIRun(t)
	// Write skew is SI-legal: the audit must accept at the real level.
	if err := auditOncallAt(adya.SnapshotIsolation, tr, adv); err != nil {
		t.Fatalf("honest SI execution rejected at snapshot isolation: %v", err)
	}
	// The same execution is not serializable: claiming so must fail (G2).
	if err := auditOncallAt(adya.Serializable, tr, adv); err == nil {
		t.Fatal("write-skewed SI execution accepted as serializable")
	}
}

func TestSnapshotIsolationTxOrderForgeries(t *testing.T) {
	tr, adv := skewedSIRun(t)
	if err := auditOncallAt(adya.SnapshotIsolation, tr, adv); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}

	t.Run("drop-tx-order", func(t *testing.T) {
		forged := adv.Clone()
		forged.TxOrder = nil
		if err := auditOncallAt(adya.SnapshotIsolation, tr, forged); err == nil {
			t.Error("missing begin/commit order accepted")
		}
	})
	t.Run("drop-one-commit-event", func(t *testing.T) {
		forged := adv.Clone()
		for i, ev := range forged.TxOrder {
			if ev.Kind == 1 {
				forged.TxOrder = append(forged.TxOrder[:i:i], forged.TxOrder[i+1:]...)
				break
			}
		}
		if err := auditOncallAt(adya.SnapshotIsolation, tr, forged); err == nil {
			t.Error("commit event removal accepted")
		}
	})
	t.Run("duplicate-begin", func(t *testing.T) {
		forged := adv.Clone()
		for _, ev := range forged.TxOrder {
			if ev.Kind == 0 {
				forged.TxOrder = append(forged.TxOrder, ev)
				break
			}
		}
		if err := auditOncallAt(adya.SnapshotIsolation, tr, forged); err == nil {
			t.Error("duplicate begin accepted")
		}
	})
	t.Run("unknown-transaction", func(t *testing.T) {
		forged := adv.Clone()
		forged.TxOrder = append(forged.TxOrder, advice.TxOrderEvent{Kind: 0, RID: "ghost", TID: "ghost"})
		if err := auditOncallAt(adya.SnapshotIsolation, tr, forged); err == nil {
			t.Error("txOrder naming an unknown transaction accepted")
		}
	})
	t.Run("commit-before-begin", func(t *testing.T) {
		forged := adv.Clone()
		// Move a committed tx's begin event to the very end.
		for i, ev := range forged.TxOrder {
			if ev.Kind == 0 {
				moved := ev
				forged.TxOrder = append(forged.TxOrder[:i:i], forged.TxOrder[i+1:]...)
				forged.TxOrder = append(forged.TxOrder, moved)
				break
			}
		}
		if err := auditOncallAt(adya.SnapshotIsolation, tr, forged); err == nil {
			t.Error("begin-after-commit accepted")
		}
	})
}

// TestSIRejectsDependencyOnConcurrentTx: a read-committed execution where a
// transaction reads a value committed after it began (non-repeatable-read
// pattern) violates G-SIa; auditing it at the SnapshotIsolation level must
// reject, while its real level passes.
func TestSIRejectsDependencyOnConcurrentTx(t *testing.T) {
	// Search read-committed runs of the oncall app for an execution where a
	// reader observed a write committed after the reader's own begin.
	for seed := int64(0); seed < 200; seed++ {
		store := kvstore.New(kvstore.ReadCommitted)
		srv := server.New(server.Config{App: oncallApp()(), Store: store, Seed: seed, CollectKarousos: true})
		res1, err := srv.Run([]server.Request{{RID: "seed", Input: value.Map("op", "seed")}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := srv.Run([]server.Request{
			{RID: "offA", Input: value.Map("op", "off", "who", "a", "other", "b")},
			{RID: "offB", Input: value.Map("op", "off", "who", "b", "other", "a")},
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		full := res1.Trace
		full.Events = append(full.Events, res.Trace.Events...)
		// The advice has no TxOrder (non-SI store), so an SI-level audit
		// must reject outright.
		if err := auditOncallAt(adya.SnapshotIsolation, full, res.Karousos); err == nil {
			t.Fatalf("seed %d: read-committed advice (no txOrder) accepted at SI level", seed)
		}
		if err := auditOncallAt(adya.ReadCommitted, full, res.Karousos); err != nil {
			t.Fatalf("seed %d: honest RC run rejected at RC: %v", seed, err)
		}
		return
	}
}
