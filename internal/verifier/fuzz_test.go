// Systematic advice-mutation fuzzing. The attack tests cover hand-picked
// forgeries; this file sweeps a catalogue of mechanical mutation operators
// over honest advice and enforces the soundness invariant on every mutant:
//
//	the audit may ACCEPT a mutant only if replay still reproduces the
//	trace exactly — anything else must REJECT, and nothing may panic
//	with an internal error.
//
// Acceptance of a semantics-preserving mutant is fine (Soundness is about
// observable behavior, Definition 6); what the fuzzer hunts is a mutant
// that changes what replay would produce yet still passes.
package verifier_test

import (
	"math/rand"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/apps/stacks"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

// mutator applies one structural mutation; it reports false when the advice
// has no site for it (e.g. no tx logs).
type mutator struct {
	name  string
	apply func(r *rand.Rand, a *advice.Advice) bool
}

func pickRID(r *rand.Rand, a *advice.Advice) (core.RID, bool) {
	rids := make([]core.RID, 0, len(a.Tags))
	for rid := range a.Tags {
		rids = append(rids, rid)
	}
	if len(rids) == 0 {
		return "", false
	}
	return rids[r.Intn(len(rids))], true
}

func mutators() []mutator {
	return []mutator{
		{"swap-tags", func(r *rand.Rand, a *advice.Advice) bool {
			r1, ok1 := pickRID(r, a)
			r2, ok2 := pickRID(r, a)
			if !ok1 || !ok2 || a.Tags[r1] == a.Tags[r2] {
				return false
			}
			a.Tags[r1], a.Tags[r2] = a.Tags[r2], a.Tags[r1]
			return true
		}},
		{"drop-tag", func(r *rand.Rand, a *advice.Advice) bool {
			rid, ok := pickRID(r, a)
			if !ok {
				return false
			}
			delete(a.Tags, rid)
			return true
		}},
		{"bump-opcount", func(r *rand.Rand, a *advice.Advice) bool {
			rid, ok := pickRID(r, a)
			if !ok {
				return false
			}
			for hid := range a.OpCounts[rid] {
				a.OpCounts[rid][hid] += 1 + r.Intn(3)
				return true
			}
			return false
		}},
		{"zero-opcount", func(r *rand.Rand, a *advice.Advice) bool {
			rid, ok := pickRID(r, a)
			if !ok {
				return false
			}
			for hid := range a.OpCounts[rid] {
				if a.OpCounts[rid][hid] > 0 {
					a.OpCounts[rid][hid] = 0
					return true
				}
			}
			return false
		}},
		{"shift-response-op", func(r *rand.Rand, a *advice.Advice) bool {
			rid, ok := pickRID(r, a)
			if !ok {
				return false
			}
			at := a.ResponseEmittedBy[rid]
			at.OpNum += 1 - 2*r.Intn(2) // ±1
			a.ResponseEmittedBy[rid] = at
			return true
		}},
		{"drop-handler-log-entry", func(r *rand.Rand, a *advice.Advice) bool {
			rid, ok := pickRID(r, a)
			if !ok || len(a.HandlerLogs[rid]) == 0 {
				return false
			}
			log := a.HandlerLogs[rid]
			i := r.Intn(len(log))
			a.HandlerLogs[rid] = append(log[:i:i], log[i+1:]...)
			return true
		}},
		{"duplicate-handler-log-entry", func(r *rand.Rand, a *advice.Advice) bool {
			rid, ok := pickRID(r, a)
			if !ok || len(a.HandlerLogs[rid]) == 0 {
				return false
			}
			log := a.HandlerLogs[rid]
			a.HandlerLogs[rid] = append(log, log[r.Intn(len(log))])
			return true
		}},
		{"retarget-emit-event", func(r *rand.Rand, a *advice.Advice) bool {
			rid, ok := pickRID(r, a)
			if !ok {
				return false
			}
			for i := range a.HandlerLogs[rid] {
				if a.HandlerLogs[rid][i].Kind == advice.OpEmit {
					a.HandlerLogs[rid][i].Event = "fuzz.no-such-event"
					return true
				}
			}
			return false
		}},
		{"perturb-var-write-value", func(r *rand.Rand, a *advice.Advice) bool {
			for id := range a.VarLogs {
				for i := range a.VarLogs[id] {
					if a.VarLogs[id][i].Type == advice.AccessWrite {
						a.VarLogs[id][i].Value = float64(r.Int63())
						return true
					}
				}
			}
			return false
		}},
		{"retarget-read-prec", func(r *rand.Rand, a *advice.Advice) bool {
			for id := range a.VarLogs {
				var writes []core.Op
				for _, e := range a.VarLogs[id] {
					if e.Type == advice.AccessWrite {
						writes = append(writes, e.Op)
					}
				}
				if len(writes) < 2 {
					continue
				}
				for i := range a.VarLogs[id] {
					if a.VarLogs[id][i].Type == advice.AccessRead {
						a.VarLogs[id][i].Prec = writes[r.Intn(len(writes))]
						return true
					}
				}
			}
			return false
		}},
		{"drop-var-log-entry", func(r *rand.Rand, a *advice.Advice) bool {
			for id := range a.VarLogs {
				if len(a.VarLogs[id]) == 0 {
					continue
				}
				i := r.Intn(len(a.VarLogs[id]))
				a.VarLogs[id] = append(a.VarLogs[id][:i:i], a.VarLogs[id][i+1:]...)
				return true
			}
			return false
		}},
		{"perturb-put-contents", func(r *rand.Rand, a *advice.Advice) bool {
			for i := range a.TxLogs {
				for j := range a.TxLogs[i].Ops {
					if a.TxLogs[i].Ops[j].Type == core.TxPut {
						a.TxLogs[i].Ops[j].Contents = float64(r.Int63())
						return true
					}
				}
			}
			return false
		}},
		{"retarget-get-readfrom", func(r *rand.Rand, a *advice.Advice) bool {
			var puts []advice.TxPos
			for i := range a.TxLogs {
				for j := range a.TxLogs[i].Ops {
					if a.TxLogs[i].Ops[j].Type == core.TxPut {
						puts = append(puts, advice.TxPos{RID: a.TxLogs[i].RID, TID: a.TxLogs[i].TID, Index: j + 1})
					}
				}
			}
			if len(puts) < 2 {
				return false
			}
			for i := range a.TxLogs {
				for j := range a.TxLogs[i].Ops {
					if a.TxLogs[i].Ops[j].Type == core.TxGet && a.TxLogs[i].Ops[j].ReadFrom != nil {
						p := puts[r.Intn(len(puts))]
						a.TxLogs[i].Ops[j].ReadFrom = &p
						return true
					}
				}
			}
			return false
		}},
		{"shuffle-write-order", func(r *rand.Rand, a *advice.Advice) bool {
			if len(a.WriteOrder) < 2 {
				return false
			}
			i := r.Intn(len(a.WriteOrder) - 1)
			a.WriteOrder[i], a.WriteOrder[i+1] = a.WriteOrder[i+1], a.WriteOrder[i]
			return true
		}},
		{"truncate-write-order", func(r *rand.Rand, a *advice.Advice) bool {
			if len(a.WriteOrder) == 0 {
				return false
			}
			a.WriteOrder = a.WriteOrder[:len(a.WriteOrder)-1]
			return true
		}},
		{"flip-commit-abort", func(r *rand.Rand, a *advice.Advice) bool {
			for i := range a.TxLogs {
				ops := a.TxLogs[i].Ops
				if len(ops) > 0 && ops[len(ops)-1].Type == core.TxCommit {
					ops[len(ops)-1].Type = core.TxAbort
					return true
				}
			}
			return false
		}},
		{"perturb-nondet", func(r *rand.Rand, a *advice.Advice) bool {
			if len(a.Nondet) == 0 {
				return false
			}
			a.Nondet[r.Intn(len(a.Nondet))].Value = float64(r.Int63())
			return true
		}},
	}
}

// faultMutators adapts the fault-injection catalogue's semantic operators
// into the mutator sweep, so the two corruption vocabularies (hand-written
// mutators here, the operator catalogue in internal/faultinject) are both
// held to the same soundness invariant.
func faultMutators() []mutator {
	var ms []mutator
	for _, op := range faultinject.Catalogue() {
		if op.Kind != faultinject.KindSemantic {
			continue
		}
		op := op
		ms = append(ms, mutator{"faultinject/" + op.Name, func(r *rand.Rand, a *advice.Advice) bool {
			return op.Mutate(r, a)
		}})
	}
	return ms
}

type fuzzTarget struct {
	name string
	mk   func() (*core.App, *kvstore.Store)
	gen  func(seed int64) []server.Request
}

// auditAndReplayCheck audits the mutant; on acceptance it re-audits the
// pristine trace with the mutant advice in a fresh verifier and confirms
// the outputs matched (which Audit itself guarantees via its response
// comparison — so acceptance already implies trace-faithful replay; the
// invariant we enforce here is simply "no internal panic escapes").
func auditMutant(t *testing.T, mk func() (*core.App, *kvstore.Store), tr *trace.Trace, adv *advice.Advice) (accepted bool) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("audit panicked on mutant advice: %v", r)
		}
	}()
	app, _ := mk()
	// DefaultLimits so resource-amplifying mutants (inflated opcounts)
	// reject instead of stalling the test process.
	_, err := verifier.Audit(verifier.Config{
		App: app, Mode: advice.ModeKarousos, Isolation: adya.Serializable,
		Limits: verifier.DefaultLimits(),
	}, tr, adv)
	return err == nil
}

// TestAdviceMutationFuzz sweeps every mutation operator over honest runs of
// all three applications. Accepted mutants are allowed (the mutation may be
// semantically idle — Soundness only constrains observable behavior), but
// the audit must never crash, and the count of accepted mutants is reported
// so regressions are visible.
func TestAdviceMutationFuzz(t *testing.T) {
	targets := []fuzzTarget{
		{
			"motd",
			func() (*core.App, *kvstore.Store) { return motd.New(), nil },
			func(seed int64) []server.Request { return workload.MOTD(25, workload.Mixed, seed) },
		},
		{
			"stacks",
			func() (*core.App, *kvstore.Store) { return stacks.New(), kvstore.New(kvstore.Serializable) },
			func(seed int64) []server.Request {
				return workload.Stacks(25, workload.Mixed, seed, workload.DefaultStacksOptions())
			},
		},
	}
	for _, tgt := range targets {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			root := testSeed(t)
			app, store := tgt.mk()
			srv := server.New(server.Config{App: app, Store: store, Seed: 17, CollectKarousos: true})
			res, err := srv.Run(tgt.gen(13), 5)
			if err != nil {
				t.Fatal(err)
			}
			if accepted := auditMutant(t, tgt.mk, res.Trace, res.Karousos); !accepted {
				t.Fatal("honest baseline rejected")
			}
			accepted := 0
			applied := 0
			for _, m := range append(mutators(), faultMutators()...) {
				for trial := 0; trial < 8; trial++ {
					r := rand.New(rand.NewSource(root + int64(trial)*1000 + 7))
					mut := res.Karousos.Clone()
					if !m.apply(r, mut) {
						continue
					}
					applied++
					if auditMutant(t, tgt.mk, res.Trace, mut) {
						accepted++
						// Accepted mutants must round-trip: re-encode and
						// re-audit to make sure acceptance is stable, not an
						// artifact of in-memory aliasing.
						decoded, err := advice.UnmarshalBinary(mut.MarshalBinary())
						if err != nil {
							t.Fatalf("%s: accepted mutant fails to re-encode: %v", m.name, err)
						}
						if !auditMutant(t, tgt.mk, res.Trace, decoded) {
							t.Errorf("%s: acceptance not stable across the wire", m.name)
						}
					}
				}
			}
			if applied == 0 {
				t.Fatal("no mutators applied; fuzz surface empty")
			}
			t.Logf("%s: %d mutants applied, %d accepted (semantics-preserving)", tgt.name, applied, accepted)
			// The overwhelming majority of structural mutations must reject.
			if accepted*4 > applied {
				t.Errorf("suspiciously many mutants accepted: %d/%d", accepted, applied)
			}
		})
	}
}
