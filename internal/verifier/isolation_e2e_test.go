// End-to-end isolation-level verification: the paper's §4.4 machinery must
// accept an honest weakly-isolated execution when audited at the store's
// real level, and reject the same execution when the advice alleges a
// stronger level than the store provided — the classic write-skew anomaly
// makes the difference observable.
package verifier_test

import (
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
)

// oncallApp is the textbook write-skew scenario: two doctors share an
// on-call rota; a doctor may go off duty only if the other is still on call.
// The check (GET both rows) and the update (PUT own row) happen in separate
// handlers of one transaction, so under read committed two concurrent
// requests can each observe the other still on call and both go off — a
// non-serializable but RC-legal outcome.
func oncallApp() func() *core.App {
	return func() *core.App {
		app := &core.App{Name: "oncall", RequestEvent: "request"}
		open := map[core.RID]*core.Tx{}
		app.Init = func(ctx *core.Context) {
			ctx.Register("request", "check")
			ctx.Register("oncall.update", "update")
		}
		app.Funcs = map[core.FunctionID]core.HandlerFunc{
			"check": func(ctx *core.Context, p *mv.MV) {
				isSeed := ctx.Branch("op-seed", ctx.Apply(func(a []value.V) value.V {
					return appkit.Str(appkit.Field(a[0], "op")) == "seed"
				}, p))
				tx := ctx.TxStart()
				if isSeed {
					// Seed both doctors on call.
					if !ctx.BranchBool("seed-a", ctx.Put(tx, ctx.Scalar("doc:a"), ctx.Scalar(value.Map("oncall", true)))) ||
						!ctx.BranchBool("seed-b", ctx.Put(tx, ctx.Scalar("doc:b"), ctx.Scalar(value.Map("oncall", true)))) ||
						!ctx.BranchBool("seed-commit", ctx.Commit(tx)) {
						ctx.Respond(ctx.Scalar("retry"))
						return
					}
					ctx.Respond(ctx.Scalar("seeded"))
					return
				}
				mine := ctx.Apply(func(a []value.V) value.V {
					return "doc:" + appkit.Str(appkit.Field(a[0], "who"))
				}, p)
				other := ctx.Apply(func(a []value.V) value.V {
					return "doc:" + appkit.Str(appkit.Field(a[0], "other"))
				}, p)
				otherRow, ok := ctx.Get(tx, other)
				if !ctx.BranchBool("get-other-ok", ok) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				otherOn := ctx.Branch("other-oncall", ctx.Apply(func(a []value.V) value.V {
					return appkit.Bool(appkit.Field(a[0], "oncall"))
				}, otherRow))
				if !otherOn {
					ctx.Abort(tx)
					ctx.Respond(ctx.Scalar("denied"))
					return
				}
				open[ctx.RIDs()[0]] = tx
				ctx.Emit("oncall.update", ctx.Apply(func(a []value.V) value.V {
					return value.Map("key", a[0])
				}, mine))
			},
			"update": func(ctx *core.Context, p *mv.MV) {
				tx := open[ctx.RIDs()[0]]
				delete(open, ctx.RIDs()[0])
				key := ctx.Apply(func(a []value.V) value.V { return appkit.Field(a[0], "key") }, p)
				if !ctx.BranchBool("put-ok", ctx.Put(tx, key, ctx.Scalar(value.Map("oncall", false)))) ||
					!ctx.BranchBool("commit-ok", ctx.Commit(tx)) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				ctx.Respond(ctx.Scalar("off-duty"))
			},
		}
		return app
	}
}

func serveOncall(t *testing.T, level kvstore.Isolation, seed int64) (bothOff bool, tr *struct{}, run *server.Result) {
	t.Helper()
	store := kvstore.New(level)
	srv := server.New(server.Config{App: oncallApp()(), Store: store, Seed: seed, CollectKarousos: true})
	seedReq := server.Request{RID: "seed", Input: value.Map("op", "seed")}
	if _, err := srv.Run([]server.Request{seedReq}, 1); err != nil {
		t.Fatal(err)
	}
	reqs := []server.Request{
		{RID: "offA", Input: value.Map("op", "off", "who", "a", "other", "b")},
		{RID: "offB", Input: value.Map("op", "off", "who", "b", "other", "a")},
	}
	res, err := srv.Run(reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap := store.SnapshotCommitted()
	aOff := !appkit.Bool(appkit.Field(snap["doc:a"], "oncall"))
	bOff := !appkit.Bool(appkit.Field(snap["doc:b"], "oncall"))
	return aOff && bOff, nil, res
}

// mergeTraces is needed because serveOncall runs the seed separately; the
// server accumulated one collector, so res.Trace already holds only the
// second batch. Rebuild the full trace from both runs.
func TestWriteSkewUnderReadCommitted(t *testing.T) {
	// Find a seed where both doctors go off duty — possible only because
	// read committed takes no read locks.
	var skewSeed int64 = -1
	for seed := int64(0); seed < 80; seed++ {
		both, _, _ := serveOncall(t, kvstore.ReadCommitted, seed)
		if both {
			skewSeed = seed
			break
		}
	}
	if skewSeed < 0 {
		t.Fatal("no interleaving produced write skew under read committed")
	}

	// Under serializable 2PL the same workload can never end with both off.
	for seed := int64(0); seed < 80; seed++ {
		if both, _, _ := serveOncall(t, kvstore.Serializable, seed); both {
			t.Fatalf("seed %d: write skew under a serializable store", seed)
		}
	}
}

// TestIsolationLevelAudit runs the skewed execution through the audit: the
// honest advice must pass at the store's real level (read committed) and
// must fail when the principal expects serializability — the alleged history
// contains the rw-rw cycle Adya's G2 test detects.
func TestIsolationLevelAudit(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		store := kvstore.New(kvstore.ReadCommitted)
		srv := server.New(server.Config{App: oncallApp()(), Store: store, Seed: seed, CollectKarousos: true})
		reqs := []server.Request{
			{RID: "seed", Input: value.Map("op", "seed")},
			{RID: "offA", Input: value.Map("op", "off", "who", "a", "other", "b")},
			{RID: "offB", Input: value.Map("op", "off", "who", "b", "other", "a")},
		}
		// Admit the seed first at concurrency 1... we need seed to finish
		// before the two off requests contend, so serve in two calls on one
		// server (one trace).
		res1, err := srv.Run(reqs[:1], 1)
		_ = res1
		if err != nil {
			t.Fatal(err)
		}
		res, err := srv.Run(reqs[1:], 2)
		if err != nil {
			t.Fatal(err)
		}
		snap := store.SnapshotCommitted()
		both := !appkit.Bool(appkit.Field(snap["doc:a"], "oncall")) &&
			!appkit.Bool(appkit.Field(snap["doc:b"], "oncall"))
		if !both {
			continue // not skewed under this seed; try the next
		}

		// Rebuild the combined trace: res1 (seed) then res (off requests).
		full := res1.Trace
		full.Events = append(full.Events, res.Trace.Events...)

		if _, err := verifier.Audit(verifier.Config{
			App: oncallApp()(), Mode: advice.ModeKarousos, Isolation: adya.ReadCommitted,
		}, full, res.Karousos); err != nil {
			t.Fatalf("seed %d: honest read-committed execution rejected at its real level: %v", seed, err)
		}
		if _, err := verifier.Audit(verifier.Config{
			App: oncallApp()(), Mode: advice.ModeKarousos, Isolation: adya.Serializable,
		}, full, res.Karousos); err == nil {
			t.Fatalf("seed %d: write-skewed execution accepted as serializable", seed)
		}
		return // one skewed seed suffices
	}
	t.Fatal("no interleaving produced write skew; cannot exercise the isolation audit")
}
