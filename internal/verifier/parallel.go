package verifier

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
)

// This file is the parallel audit engine's scaffolding: a deterministic
// fan-out helper, per-phase preprocess sharding, and the per-group effect
// buffers that make concurrent re-execution's verdict bit-identical to the
// sequential engine's. The determinism argument lives in DESIGN.md §13; the
// invariants it rests on are marked at the code they constrain.

// workers resolves the configured worker count; 0 means GOMAXPROCS.
func (v *Verifier) workers() int {
	if v.cfg.Workers > 0 {
		return v.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fanOut runs fn(0..n-1) over a pool of goroutines and returns when all
// items finish. Work is claimed from an atomic counter; results must flow
// through indexed slots the caller merges in canonical order afterwards —
// the deterministic-fanout idiom detlint blesses. fn must contain its own
// panics (see asReject): a panic escaping a pool goroutine would kill the
// process, bypassing the audit's containment boundary.
func fanOut(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// asReject converts a recovered panic value into the rejection the
// coordinator re-panics during the deterministic merge. The wrapping matches
// auditFull's containment exactly — same code, same reason format — so a
// worker-side panic surfaces as the same error a sequential run would have
// produced, with the worker's stack preserved for diagnosis.
func asReject(r any) *core.Reject {
	if rej, ok := r.(core.Reject); ok {
		return &rej
	}
	return &core.Reject{
		Code:   core.RejectInternalFault,
		Reason: fmt.Sprintf("verifier panicked: %v", r),
		Stack:  string(debug.Stack()),
	}
}

// preprocessEdges runs the four edge-construction phases. Sequentially they
// write straight into the dense graph; in parallel each phase fills a
// private shard and the coordinator merges the shards in phase order, so the
// assembled edge list — and with it every successor ordering and every cycle
// report — is identical to the sequential run's.
//
// Phase 3 bundles the handler, external-state, and isolation passes into one
// task: they share single-writer state (opMap, activated, txIndex, readMap,
// lastMod, inWO, the overflow intern table) and their seed-relative order is
// load-bearing for rejection precedence.
func (v *Verifier) preprocessEdges() {
	w := v.workers()
	if w <= 1 {
		s := &esink{v: v}
		v.addTimePrecedenceEdges(s)
		v.addProgramEdges(s)
		v.addBoundaryEdges(s)
		v.addHandlerRelatedEdges(s)
		v.addExternalStateEdges(s)
		v.isolationLevelVerification()
		return
	}
	phases := []func(s *esink){
		v.addTimePrecedenceEdges,
		v.addProgramEdges,
		v.addBoundaryEdges,
		func(s *esink) {
			v.addHandlerRelatedEdges(s)
			v.addExternalStateEdges(s)
			v.isolationLevelVerification()
		},
	}
	shards := make([]*eshard, len(phases))
	fanOut(w, len(phases), func(i int) {
		sh := &eshard{}
		defer func() {
			if r := recover(); r != nil {
				sh.rej = asReject(r)
			}
			shards[i] = sh
		}()
		phases[i](&esink{v: v, shard: sh})
	})
	// Merge in phase order. A rejection surfaces at its phase's position, so
	// when several phases reject concurrently the earliest phase wins —
	// exactly the phase that would have rejected first sequentially. Edges
	// of phases after a rejecting one are discarded with it (sequentially
	// they would never have been built).
	for _, sh := range shards {
		for _, id := range sh.nodes {
			v.eg.d.AddNode(id)
		}
		v.eg.d.AddEdges(sh.edges)
		v.checkBudgets()
		if sh.rej != nil {
			panic(*sh.rej)
		}
	}
}

// --- effect-buffered group re-execution ---

// intentKind enumerates the shared-state mutations a group replay performs.
// A worker records them in order instead of applying them; the coordinator
// replays each group's stream in canonical group order, running the
// cross-group conflict checks (write_observer, initializer) at exactly the
// intent position where the sequential engine would have run them.
type intentKind uint8

const (
	effDict        intentKind = iota // dictAppend(op, val) on variable varID
	effVarConsumed                   // variable log entry op consumed
	effReadObs                       // readObs[prec] append op
	effWriteObs                      // writeObs[prec] = op (conflict-checked)
	effInitial                       // initial = op (conflict-checked)
	effOpConsumed                    // opConsumed[op] = true
	effExecuted                      // executed[rid][hid] = true
	effResponded                     // responded[rid] = true
	effRerun                         // Stats.HandlersRerun++
)

// intent is one recorded mutation. One flat struct for all kinds keeps the
// stream a single slice; unused fields stay zero.
type intent struct {
	kind  intentKind
	varID core.VarID
	op    core.Op
	prec  core.Op
	rid   core.RID
	hid   core.HID
	val   value.V
}

// vkey keys a group's private version-dictionary overlay.
type vkey struct {
	varID core.VarID
	rid   core.RID
	hid   core.HID
}

// groupEffects is one group's private effect buffer. The replay reads shared
// verifier state that is frozen during reExec (logs, opMap, activated,
// nondet, txIndex, carryTx, the graph) and writes only here.
type groupEffects struct {
	intents []intent
	// overlay holds the group's own dictAppends; findNearest reads it for
	// the group's rids and falls through to the frozen init-level dictionary
	// — the only dictionary state another group could never have written.
	overlay   map[vkey][]dictEntry
	executed  map[core.RID]map[core.HID]bool
	responded map[core.RID]bool
	pollN     int
	rej       *core.Reject
}

func newGroupEffects() *groupEffects {
	return &groupEffects{
		overlay:   make(map[vkey][]dictEntry),
		executed:  make(map[core.RID]map[core.HID]bool),
		responded: make(map[core.RID]bool),
	}
}

func (eff *groupEffects) record(in intent) {
	eff.intents = append(eff.intents, in)
}

// effPoll is poll for code that runs on group workers: cancellation is the
// only budget a worker can check race-free (the graph is frozen during
// reExec), and the counter is per-group so the global pollN stays unshared.
func (v *Verifier) effPoll(eff *groupEffects) {
	if eff == nil {
		v.poll()
		return
	}
	eff.pollN++
	if eff.pollN%pollInterval != 0 {
		return
	}
	v.checkCtx()
}

// applyEffects replays one group's intent stream onto the shared verifier
// state, then surfaces the group's own contained rejection if it had one.
// Cross-group conflicts are detected here, at the first conflicting intent —
// which is exactly where the sequential engine would have rejected, because
// intents are recorded at the same program points the sequential engine
// mutates shared state. A worker's own later rejection (recorded in rej) is
// correctly masked by an earlier conflicting intent, matching the sequential
// engine's first-rejection order.
func (v *Verifier) applyEffects(eff *groupEffects) {
	for i := range eff.intents {
		in := &eff.intents[i]
		v.poll()
		switch in.kind {
		case effDict:
			v.vars[in.varID].dictAppend(in.op, in.val)
		case effVarConsumed:
			v.vars[in.varID].consumed[in.op] = true
		case effReadObs:
			vv := v.vars[in.varID]
			vv.readObs[in.prec] = append(vv.readObs[in.prec], in.op)
		case effWriteObs:
			vv := v.vars[in.varID]
			if prev, set := vv.writeObs[in.prec]; set {
				core.RejectCodef(core.RejectLogMismatch, "writes %v and %v both overwrite %v of variable %s", prev, in.op, in.prec, vv.id)
			}
			vv.writeObs[in.prec] = in.op
		case effInitial:
			vv := v.vars[in.varID]
			if vv.initial != nil {
				core.RejectCodef(core.RejectLogMismatch, "variable %s has two initial writes (%v and %v)", vv.id, *vv.initial, in.op)
			}
			cp := in.op
			vv.initial = &cp
		case effOpConsumed:
			v.opConsumed[in.op] = true
		case effExecuted:
			ex := v.executed[in.rid]
			if ex == nil {
				ex = make(map[core.HID]bool)
				v.executed[in.rid] = ex
			}
			ex[in.hid] = true
		case effResponded:
			v.responded[in.rid] = true
		case effRerun:
			v.Stats.HandlersRerun++
		}
	}
	if eff.rej != nil {
		panic(*eff.rej)
	}
}
