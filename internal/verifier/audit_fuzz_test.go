// Native fuzz target for the whole audit boundary: arbitrary bytes in,
// coded verdict out. Where FuzzDecodeAdvice stops at the codec, this target
// pushes everything that decodes into a real audit against an honest trace,
// so the fuzzer can hunt for panics and stalls in Preprocess, re-execution,
// and Postprocess too.
package verifier_test

import (
	"testing"
	"time"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/motd"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

func FuzzAudit(f *testing.F) {
	srv := server.New(server.Config{App: motd.New(), Seed: 19, CollectKarousos: true})
	res, err := srv.Run(workload.MOTD(8, workload.Mixed, 23), 3)
	if err != nil {
		f.Fatal(err)
	}
	wire := res.Karousos.MarshalBinary()
	f.Add(wire)
	// Seed the corpus with one mutant per catalogue operator so the fuzzer
	// starts from advice that decodes but lies.
	for _, op := range faultinject.Catalogue() {
		if mut, err := op.Apply(1, wire); err == nil {
			f.Add(mut)
		}
	}
	lim := verifier.DefaultLimits()
	lim.Deadline = 5 * time.Second
	f.Fuzz(func(t *testing.T, data []byte) {
		adv, err := advice.UnmarshalBinary(data)
		if err != nil {
			return
		}
		_, err = verifier.Audit(verifier.Config{
			App: motd.New(), Mode: advice.ModeKarousos, Isolation: adya.Serializable,
			Limits: lim,
		}, res.Trace, adv)
		if err != nil && core.RejectCodeOf(err) == "" {
			t.Fatalf("rejection without a reason code: %v", err)
		}
	})
}
