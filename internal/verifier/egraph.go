package verifier

import (
	"math"
	"sort"

	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/graph"
)

// egraph is the interned execution graph: G over dense uint32 node IDs
// instead of map[gnode] keys. The ID space is laid out up-front from the
// trace length and the advice's opcounts, so the hot preprocess phases turn
// into pure integer arithmetic over a slice-backed graph.Dense — no gnode
// hashing, no per-node map entries — and the parallel phases can buffer
// edges as flat []uint32 shards.
//
// Layout (ascending, contiguous):
//
//	[0, nEvents)            barrier nodes: bar i is the trace position i
//	[reqBase, slotBase)     per-rid pairs in trace first-occurrence order:
//	                        reqID = reqBase+2k, respID = reqBase+2k+1
//	[slotBase, ovBase)      per-(rid,hid) slots in sorted (rid, hid) order:
//	                        ops base..base+n, handler-end base+n+1
//	[ovBase, ...)           overflow: interned on demand for nodes outside
//	                        the layout (init-level ops, carried prior-epoch
//	                        writes), with an ID→gnode table for dumps
type egraph struct {
	d *graph.Dense

	nEvents int
	reqBase uint32
	ridIdx  map[core.RID]uint32
	ridList []core.RID

	slotBase uint32
	slotIdx  map[dkey]int
	slotList []eslot // ascending base

	ovBase uint32
	ovIDs  map[gnode]uint32
	ovList []gnode
}

// eslot is one advised handler activation's contiguous ID block.
type eslot struct {
	rid  core.RID
	hid  core.HID
	base uint32
	n    int // advised opcount; ops occupy base..base+n, hEnd is base+n+1
}

// layoutHardCap leaves half the uint32 space for overflow IDs; an advice
// whose layout alone needs two billion nodes is rejected outright.
const layoutHardCap = math.MaxUint32 / 2

// buildLayout sizes the dense ID space and validates the opcount table. The
// validation loop is addProgramEdges' former prologue, in the identical
// iteration order with identical messages, hoisted here because the boundary
// and handler phases run concurrently with the program phase and rely on it.
// Hoisting is rejection-order neutral: the only phase between this point and
// the old validation site is addTimePrecedenceEdges, which never rejects.
func (v *Verifier) buildLayout() {
	lim := v.cfg.Limits
	eg := &egraph{
		nEvents: len(v.tr.Events),
		ridIdx:  make(map[core.RID]uint32),
		slotIdx: make(map[dkey]int),
		ovIDs:   make(map[gnode]uint32),
	}
	for _, e := range v.tr.Events {
		rid := core.RID(e.RID)
		if _, ok := eg.ridIdx[rid]; !ok {
			eg.ridIdx[rid] = uint32(len(eg.ridList))
			eg.ridList = append(eg.ridList, rid)
		}
	}
	eg.reqBase = uint32(eg.nEvents)
	eg.slotBase = eg.reqBase + 2*uint32(len(eg.ridList))

	capLimit := uint64(layoutHardCap)
	if lim.MaxGraphNodes > 0 && uint64(lim.MaxGraphNodes) < capLimit {
		capLimit = uint64(lim.MaxGraphNodes)
	}
	next := uint64(eg.slotBase)
	handlers := 0
	eg.slotList = make([]eslot, 0, len(v.adv.OpCounts))
	for _, rid := range sortedKeys(v.adv.OpCounts) {
		if !v.inTrace[rid] {
			core.Rejectf("opcounts mention request %s absent from trace", rid)
		}
		counts := v.adv.OpCounts[rid]
		for _, hid := range sortedKeys(counts) {
			n := counts[hid]
			if n < 0 {
				core.Rejectf("negative opcount for (%s,%s)", rid, hid)
			}
			handlers++
			if lim.MaxHandlers > 0 && handlers > lim.MaxHandlers {
				core.RejectCodef(core.RejectResourceLimit, "advice declares more than %d handler activations", lim.MaxHandlers)
			}
			if lim.MaxOpsPerHandler > 0 && n > lim.MaxOpsPerHandler {
				core.RejectCodef(core.RejectResourceLimit, "opcount %d for (%s,%s) exceeds limit %d", n, rid, hid, lim.MaxOpsPerHandler)
			}
			eg.slotIdx[dkey{rid: rid, hid: hid}] = len(eg.slotList)
			eg.slotList = append(eg.slotList, eslot{rid: rid, hid: hid, base: uint32(next), n: n})
			next += uint64(n) + 2
			// Sizing the layout is where an inflated opcount total first
			// materializes; rejecting here is the poll-based node-budget
			// check moved to the earliest point it is decidable.
			if next > capLimit {
				core.RejectCodef(core.RejectResourceLimit, "execution graph exceeds %d nodes", capLimit)
			}
		}
	}
	eg.ovBase = uint32(next)
	eg.d = graph.NewDense(int(next))
	v.eg = eg
}

func (eg *egraph) barID(i int) uint32 { return uint32(i) }

// reqID / respID require rid to be in the trace (the caller has checked).
func (eg *egraph) reqID(rid core.RID) uint32  { return eg.reqBase + 2*eg.ridIdx[rid] }
func (eg *egraph) respID(rid core.RID) uint32 { return eg.reqID(rid) + 1 }

// opID / hEndID require (rid, hid) advised and 0 ≤ num ≤ n (the caller has
// checked); they are pure lookups with no interning, safe from any phase.
func (eg *egraph) opID(rid core.RID, hid core.HID, num int) uint32 {
	sl := eg.slotList[eg.slotIdx[dkey{rid: rid, hid: hid}]]
	return sl.base + uint32(num)
}

func (eg *egraph) hEndID(rid core.RID, hid core.HID) uint32 {
	sl := eg.slotList[eg.slotIdx[dkey{rid: rid, hid: hid}]]
	return sl.base + uint32(sl.n) + 1
}

// idOf resolves a gnode to its layout ID without interning. ok=false means
// the node is outside the layout (and possibly in the overflow table).
func (eg *egraph) idOf(n gnode) (uint32, bool) {
	switch n.kind {
	case kBar:
		if n.op >= 0 && n.op < eg.nEvents {
			return uint32(n.op), true
		}
	case kReq, kResp:
		if k, ok := eg.ridIdx[n.rid]; ok {
			id := eg.reqBase + 2*k
			if n.kind == kResp {
				id++
			}
			return id, true
		}
	case kOp, kHEnd:
		if si, ok := eg.slotIdx[dkey{rid: n.rid, hid: n.hid}]; ok {
			sl := eg.slotList[si]
			if n.kind == kHEnd {
				return sl.base + uint32(sl.n) + 1, true
			}
			if n.op >= 0 && n.op <= sl.n {
				return sl.base + uint32(n.op), true
			}
		}
	}
	return 0, false
}

// intern resolves a gnode to an ID, assigning an overflow ID when it lies
// outside the layout. Overflow nodes are init-level ops (init writes, carry
// identities) and carried prior-epoch writes referenced by reads-from edges.
// Interning mutates the overflow table, so only one goroutine at a time may
// call it: the handler/external-state phase owns it during preprocess, the
// coordinator during postprocess.
func (eg *egraph) intern(n gnode) uint32 {
	if id, ok := eg.idOf(n); ok {
		return id
	}
	if id, ok := eg.ovIDs[n]; ok {
		return id
	}
	id := eg.ovBase + uint32(len(eg.ovList))
	eg.ovIDs[n] = id
	eg.ovList = append(eg.ovList, n)
	return id
}

// name inverts an ID back to its gnode, for labels, cycle reports, and DOT
// dumps. Layout ranges invert arithmetically; the slot is found by binary
// search over the ascending slot bases.
func (eg *egraph) name(id uint32) gnode {
	if id < eg.reqBase {
		return barNode(int(id))
	}
	if id < eg.slotBase {
		k := (id - eg.reqBase) / 2
		rid := eg.ridList[k]
		if (id-eg.reqBase)%2 == 0 {
			return reqNode(rid)
		}
		return respNode(rid)
	}
	if id < eg.ovBase {
		si := sort.Search(len(eg.slotList), func(i int) bool { return eg.slotList[i].base > id }) - 1
		sl := eg.slotList[si]
		delta := int(id - sl.base)
		if delta == sl.n+1 {
			return hEndNode(sl.rid, sl.hid)
		}
		return opNode(sl.rid, sl.hid, delta)
	}
	return eg.ovList[id-eg.ovBase]
}

// esink is where a preprocess phase sends its graph mutations. With a nil
// shard it writes straight into the dense graph under the verifier's global
// budget polling — the sequential mode, byte-for-byte the old behavior. With
// a shard it buffers nodes and edges locally; the coordinator merges shards
// in phase order, so the final edge ordering is identical to a sequential
// run (see DESIGN.md §13).
type esink struct {
	v     *Verifier
	shard *eshard
}

// eshard is one phase's private buffer plus its contained rejection.
type eshard struct {
	nodes []uint32
	edges []uint32 // interleaved from,to
	pollN int
	rej   *core.Reject
}

func (s *esink) addNode(id uint32) {
	if s.shard != nil {
		s.shard.nodes = append(s.shard.nodes, id)
		return
	}
	s.v.eg.d.AddNode(id)
}

func (s *esink) addEdge(from, to uint32) {
	if s.shard != nil {
		s.shard.edges = append(s.shard.edges, from, to)
		return
	}
	s.v.eg.d.AddEdge(from, to)
}

// addEdgeN adds an edge between gnodes that may lie outside the layout,
// interning as needed. Callers must hold the interning ownership described
// at intern.
func (s *esink) addEdgeN(from, to gnode) {
	s.addEdge(s.v.eg.intern(from), s.v.eg.intern(to))
}

// poll is the phase-local budget check: sequential mode defers to the
// verifier's global poll; shard mode checks cancellation and the shard's own
// edge count (the only graph growth it can observe). The merge runs the full
// budget check over the assembled graph.
func (s *esink) poll() {
	if s.shard == nil {
		s.v.poll()
		return
	}
	s.shard.pollN++
	if s.shard.pollN%pollInterval != 0 {
		return
	}
	s.v.checkCtx()
	if lim := s.v.cfg.Limits; lim.MaxGraphEdges > 0 && len(s.shard.edges)/2 > lim.MaxGraphEdges {
		core.RejectCodef(core.RejectResourceLimit, "execution graph exceeds %d edges", lim.MaxGraphEdges)
	}
}
