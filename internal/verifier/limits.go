package verifier

import (
	"context"
	"fmt"
	"time"

	"karousos.dev/karousos/internal/core"
)

// Limits bounds the resources one audit may consume. The advice is
// adversarial input: without bounds, an attacker-inflated opcount or a
// pathological graph can make the auditor allocate without limit or run
// forever — a denial-of-audit. Every bound rejects with ResourceLimit
// rather than crashing or stalling the process. A zero field means
// "unbounded" for that dimension, so the zero Limits preserves the old
// behavior; DefaultLimits returns production-shaped bounds.
type Limits struct {
	// MaxAdviceBytes bounds the serialized advice size a caller should
	// accept before decoding. Audit itself receives decoded advice, so this
	// field is enforced by CheckAdviceBytes at the decode boundary (harness,
	// CLI), not inside Audit.
	MaxAdviceBytes int
	// MaxHandlers bounds the total number of advised handler activations
	// (rid, hid pairs in opcounts).
	MaxHandlers int
	// MaxOpsPerHandler bounds any single advised opcount; an honest handler
	// issues one op per special operation, so this is effectively a bound on
	// handler length.
	MaxOpsPerHandler int
	// MaxGraphNodes / MaxGraphEdges bound the execution graph G.
	MaxGraphNodes int
	MaxGraphEdges int
	// Deadline is the wall-clock budget for the whole audit; exceeded
	// deadlines reject with ResourceLimit at the next cancellation check.
	Deadline time.Duration
	// MaxMemoEntryBytes bounds the accounted size of a single memo-cache
	// entry (Config.Memo); larger effect sets are simply not cached, so
	// one giant group cannot churn the whole LRU. 0 means an eighth of
	// the cache's byte budget.
	MaxMemoEntryBytes int
}

// DefaultLimits returns bounds sized for production audits: generous enough
// for the paper's 600-request workloads by two orders of magnitude, small
// enough that a hostile advice blob cannot stall or OOM the auditor.
func DefaultLimits() Limits {
	return Limits{
		MaxAdviceBytes:   1 << 28, // 256 MiB on the wire
		MaxHandlers:      1 << 20,
		MaxOpsPerHandler: 1 << 20,
		MaxGraphNodes:    16 << 20,
		MaxGraphEdges:    64 << 20,
		Deadline:         5 * time.Minute,
	}
}

// CheckAdviceBytes enforces MaxAdviceBytes against a serialized advice size.
// Callers that decode wire-format advice should check before allocating
// decode-side structures.
func (l Limits) CheckAdviceBytes(n int) error {
	if l.MaxAdviceBytes > 0 && n > l.MaxAdviceBytes {
		return core.Reject{
			Code:   core.RejectResourceLimit,
			Reason: fmt.Sprintf("advice is %d bytes, limit %d", n, l.MaxAdviceBytes),
		}
	}
	return nil
}

// pollInterval is how many poll() calls pass between deadline/graph budget
// checks; polling sites sit on per-operation paths, so checks stay cheap.
const pollInterval = 1024

// poll is called from every hot loop that untrusted advice can lengthen; it
// runs the budget checks every pollInterval calls.
func (v *Verifier) poll() {
	v.pollN++
	if v.pollN%pollInterval != 0 {
		return
	}
	v.checkBudgets()
}

// checkCtx rejects with ResourceLimit when the audit context is done
// (deadline or caller cancellation). It reads only immutable verifier
// fields, so shard and group workers may call it concurrently.
func (v *Verifier) checkCtx() {
	if v.ctx == nil {
		return
	}
	if err := v.ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			core.RejectCodef(core.RejectResourceLimit, "audit deadline of %v exceeded", v.cfg.Limits.Deadline)
		}
		core.RejectCodef(core.RejectResourceLimit, "audit canceled: %v", err)
	}
}

// checkBudgets is checkCtx plus the execution-graph bounds. The graph checks
// are skipped before buildLayout creates it (init replay and carry injection
// poll too) and must only run on the coordinating goroutine.
func (v *Verifier) checkBudgets() {
	v.checkCtx()
	if v.eg == nil {
		return
	}
	lim := v.cfg.Limits
	if lim.MaxGraphNodes > 0 && v.eg.d.NumNodes() > lim.MaxGraphNodes {
		core.RejectCodef(core.RejectResourceLimit, "execution graph exceeds %d nodes", lim.MaxGraphNodes)
	}
	if lim.MaxGraphEdges > 0 && v.eg.d.NumEdges() > lim.MaxGraphEdges {
		core.RejectCodef(core.RejectResourceLimit, "execution graph exceeds %d edges", lim.MaxGraphEdges)
	}
}
