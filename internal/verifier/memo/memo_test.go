package memo

import "testing"

func k(b byte) Key {
	var key Key
	key[0] = b
	return key
}

func TestProbeInsert(t *testing.T) {
	c := NewCache(1000)
	if _, ok := c.Probe(k(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	if ev := c.Insert(k(1), "a", 100); ev != 0 {
		t.Fatalf("insert into empty cache evicted %d", ev)
	}
	got, ok := c.Probe(k(1))
	if !ok || got.(string) != "a" {
		t.Fatalf("Probe = %v, %v; want a, true", got, ok)
	}
	if c.Len() != 1 || c.Bytes() != 100 {
		t.Fatalf("Len=%d Bytes=%d; want 1, 100", c.Len(), c.Bytes())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewCache(300)
	c.Insert(k(1), 1, 100)
	c.Insert(k(2), 2, 100)
	c.Insert(k(3), 3, 100)
	// Touch 1 so 2 is now least recently used.
	c.Probe(k(1))
	if ev := c.Insert(k(4), 4, 100); ev != 1 {
		t.Fatalf("evicted %d entries; want 1", ev)
	}
	if _, ok := c.Probe(k(2)); ok {
		t.Fatal("LRU victim 2 survived")
	}
	for _, key := range []Key{k(1), k(3), k(4)} {
		if _, ok := c.Probe(key); !ok {
			t.Fatalf("entry %v wrongly evicted", key)
		}
	}
}

func TestEvictMultiple(t *testing.T) {
	c := NewCache(300)
	c.Insert(k(1), 1, 100)
	c.Insert(k(2), 2, 100)
	c.Insert(k(3), 3, 100)
	// 250 new bytes leave room for only the new entry: all three go.
	if ev := c.Insert(k(4), 4, 250); ev != 3 {
		t.Fatalf("evicted %d entries; want 3", ev)
	}
	if c.Len() != 1 || c.Bytes() != 250 {
		t.Fatalf("Len=%d Bytes=%d; want 1, 250", c.Len(), c.Bytes())
	}
}

func TestOversizedInsertSkipped(t *testing.T) {
	c := NewCache(100)
	c.Insert(k(1), 1, 50)
	if ev := c.Insert(k(2), 2, 200); ev != 0 {
		t.Fatalf("oversized insert evicted %d", ev)
	}
	if _, ok := c.Probe(k(2)); ok {
		t.Fatal("oversized entry was stored")
	}
	if _, ok := c.Probe(k(1)); !ok {
		t.Fatal("existing entry lost to a rejected oversized insert")
	}
}

func TestReplaceRefreshes(t *testing.T) {
	c := NewCache(250)
	c.Insert(k(1), "old", 100)
	c.Insert(k(2), 2, 100)
	c.Insert(k(1), "new", 50) // replace + touch: 2 is now LRU
	if got, _ := c.Probe(k(1)); got.(string) != "new" {
		t.Fatalf("replace kept %v", got)
	}
	if c.Bytes() != 150 {
		t.Fatalf("Bytes=%d after replace; want 150", c.Bytes())
	}
	c.Probe(k(1)) // touch 1 again
	if ev := c.Insert(k(3), 3, 150); ev != 1 {
		t.Fatalf("evicted %d; want 1", ev)
	}
	if _, ok := c.Probe(k(2)); ok {
		t.Fatal("expected 2 to be the eviction victim")
	}
}

func TestReset(t *testing.T) {
	c := NewCache(1000)
	c.Insert(k(1), 1, 100)
	c.Insert(k(2), 2, 100)
	c.Reset()
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("after Reset: Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
	if _, ok := c.Probe(k(1)); ok {
		t.Fatal("Reset left an entry probeable")
	}
	// The cache must remain usable after Reset.
	c.Insert(k(3), 3, 100)
	if _, ok := c.Probe(k(3)); !ok {
		t.Fatal("cache unusable after Reset")
	}
}

func TestUnboundedCache(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < 50; i++ {
		if ev := c.Insert(k(byte(i)), i, 1 << 20); ev != 0 {
			t.Fatalf("unbounded cache evicted %d", ev)
		}
	}
	if c.Len() != 50 {
		t.Fatalf("Len=%d; want 50", c.Len())
	}
}
