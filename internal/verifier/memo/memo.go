// Package memo is the cross-epoch replay cache behind the verifier's
// deduplicated re-execution (DESIGN.md §18): a content-addressed,
// byte-bounded LRU map from the digest of a tag group's full input closure
// to that group's recorded effect set.
//
// The cache itself is deliberately dumb: it knows nothing about advice,
// groups, or soundness. Soundness lives entirely in the key — the verifier
// derives it from everything a group's re-execution can observe, so two
// equal keys imply behaviorally identical replays, and a poisoned value can
// never be reached by an honest key (see verifier/memo.go). What this
// package guarantees is the operational envelope: bounded residency
// (MaxBytes, LRU eviction), deterministic eviction order (strict
// recency-of-use, ties impossible — use order is a total order), and safe
// concurrent access, since one cache persists across many audits.
package memo

import "sync"

// Key is the content address of one cached effect set: a 256-bit digest of
// the group's full input closure. Collision resistance is load-bearing —
// the audit's soundness reduces to "equal key implies equal closure" — so
// keys must come from a cryptographic hash (the verifier uses SHA-256),
// never from the fast non-cryptographic digests the batching layer uses.
type Key [32]byte

// entry is one cached value on the intrusive LRU list.
type entry struct {
	key        Key
	val        any
	size       int
	prev, next *entry
}

// Cache is a byte-bounded, content-addressed LRU cache. The zero value is
// not usable; use NewCache.
type Cache struct {
	mu       sync.Mutex
	maxBytes int
	bytes    int
	m        map[Key]*entry
	// head is most recently used, tail least; both nil when empty.
	head, tail *entry
}

// NewCache returns a cache bounded to maxBytes of accounted value bytes.
// maxBytes <= 0 means an unbounded cache (tests only; production callers
// always pass a budget).
func NewCache(maxBytes int) *Cache {
	return &Cache{maxBytes: maxBytes, m: make(map[Key]*entry)}
}

// MaxBytes returns the configured byte budget (0 = unbounded).
func (c *Cache) MaxBytes() int { return c.maxBytes }

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Bytes returns the accounted size of all cached entries.
func (c *Cache) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Probe looks up key, marking it most recently used on a hit.
func (c *Cache) Probe(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.touch(e)
	return e.val, true
}

// Insert stores val under key, accounted at size bytes, and returns how
// many entries were evicted to make room. A value larger than the whole
// budget is not stored (callers should pre-filter; this is the backstop).
// Re-inserting an existing key replaces its value and refreshes recency.
func (c *Cache) Insert(key Key, val any, size int) (evicted int) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && size > c.maxBytes {
		return 0
	}
	if e, ok := c.m[key]; ok {
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.touch(e)
	} else {
		e := &entry{key: key, val: val, size: size}
		c.m[key] = e
		c.bytes += size
		c.pushFront(e)
	}
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.tail != nil {
		c.remove(c.tail)
		evicted++
	}
	return evicted
}

// Reset drops every entry — the Fresh-boundary invalidation: a trusted
// restart boundary rebuilds server state, so carried entries, like carried
// dictionary state, no longer describe anything auditable.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[Key]*entry)
	c.bytes = 0
	c.head, c.tail = nil, nil
}

// touch moves e to the front of the recency list.
func (c *Cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// remove unlinks and deletes e.
func (c *Cache) remove(e *entry) {
	c.unlink(e)
	delete(c.m, e.key)
	c.bytes -= e.size
}
