// End-to-end tests for range reads (the TxScan extension): an application
// that lists inventory by prefix scan must verify when honest, and forged
// scan result sets must reject.
package verifier_test

import (
	"fmt"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
)

// inventoryApp: "stock" requests PUT an item row; "list" requests SCAN the
// item prefix inside a transaction whose commit happens in a continuation
// handler — so the predicate lock is held across handlers and concurrent
// stock requests can conflict with an in-flight scan.
func inventoryApp() func() *core.App {
	return func() *core.App {
		app := &core.App{Name: "inventory", RequestEvent: "request"}
		open := map[core.RID]*core.Tx{}
		app.Init = func(ctx *core.Context) {
			ctx.Register("request", "h")
			ctx.Register("inv.finish", "finish")
		}
		app.Funcs = map[core.FunctionID]core.HandlerFunc{
			"h": func(ctx *core.Context, p *mv.MV) {
				isStock := ctx.Branch("op-stock", ctx.Apply(func(a []value.V) value.V {
					return appkit.Str(appkit.Field(a[0], "op")) == "stock"
				}, p))
				tx := ctx.TxStart()
				if isStock {
					key := ctx.Apply(func(a []value.V) value.V {
						return "item:" + appkit.Str(appkit.Field(a[0], "sku"))
					}, p)
					val := ctx.Apply(func(a []value.V) value.V {
						return value.Map("qty", appkit.Field(a[0], "qty"))
					}, p)
					if !ctx.BranchBool("put-ok", ctx.Put(tx, key, val)) ||
						!ctx.BranchBool("commit-ok", ctx.Commit(tx)) {
						ctx.Respond(ctx.Scalar("retry"))
						return
					}
					ctx.Respond(ctx.Scalar("stocked"))
					return
				}
				rows, ok := ctx.Scan(tx, ctx.Scalar("item:"))
				if !ctx.BranchBool("scan-ok", ok) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				open[ctx.RIDs()[0]] = tx
				ctx.Emit("inv.finish", rows)
			},
			"finish": func(ctx *core.Context, rows *mv.MV) {
				tx := open[ctx.RIDs()[0]]
				delete(open, ctx.RIDs()[0])
				if !ctx.BranchBool("list-commit-ok", ctx.Commit(tx)) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				ctx.Respond(ctx.Apply(func(a []value.V) value.V {
					return value.Map("status", "ok", "items", a[0])
				}, rows))
			},
		}
		return app
	}
}

func serveInventory(t *testing.T, seed int64, conc int) (*server.Result, error) {
	t.Helper()
	srv := server.New(server.Config{
		App:   inventoryApp()(),
		Store: kvstore.New(kvstore.Serializable),
		Seed:  seed, CollectKarousos: true,
	})
	var reqs []server.Request
	for i := 0; i < 12; i++ {
		rid := core.RID(fmt.Sprintf("r%02d", i))
		if i%3 == 2 {
			reqs = append(reqs, server.Request{RID: rid, Input: value.Map("op", "list")})
		} else {
			reqs = append(reqs, server.Request{RID: rid, Input: value.Map(
				"op", "stock", "sku", fmt.Sprintf("sku-%d", i%4), "qty", i)})
		}
	}
	return srv.Run(reqs, conc)
}

func auditInventory(res *server.Result) error {
	_, err := verifier.Audit(verifier.Config{
		App: inventoryApp()(), Mode: advice.ModeKarousos, Isolation: adya.Serializable,
	}, res.Trace, res.Karousos)
	return err
}

func TestScanHonestRunsVerify(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, conc := range []int{1, 4} {
			res, err := serveInventory(t, seed, conc)
			if err != nil {
				t.Fatalf("seed %d conc %d: %v", seed, conc, err)
			}
			if err := auditInventory(res); err != nil {
				t.Fatalf("seed %d conc %d: honest scan run rejected: %v", seed, conc, err)
			}
		}
	}
}

func TestScanResponsesContainStockedItems(t *testing.T) {
	res, err := serveInventory(t, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The last list request (r11 is stock; r08 is list) sees the items
	// stocked before it at concurrency 1.
	out := res.Trace.Outputs()["r08"]
	items := appkit.AsList(appkit.Field(out, "items"))
	if len(items) == 0 {
		t.Fatalf("list response has no items: %v", value.String(out))
	}
	prev := ""
	for _, it := range items {
		k := appkit.Str(appkit.Field(it, "key"))
		if k <= prev {
			t.Errorf("scan results not sorted: %q after %q", k, prev)
		}
		prev = k
	}
}

func mutateScanEntry(t *testing.T, res *server.Result, mutate func(op *advice.TxOp)) *advice.Advice {
	t.Helper()
	forged := res.Karousos.Clone()
	for i := range forged.TxLogs {
		for j := range forged.TxLogs[i].Ops {
			op := &forged.TxLogs[i].Ops[j]
			if op.Type == core.TxScan && len(op.ReadSet) > 0 {
				mutate(op)
				return forged
			}
		}
	}
	t.Fatal("no scan with results in advice")
	return nil
}

func TestScanForgeryRejected(t *testing.T) {
	res, err := serveInventory(t, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := auditInventory(res); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}

	t.Run("drop-result-row", func(t *testing.T) {
		forged := mutateScanEntry(t, res, func(op *advice.TxOp) {
			op.ReadSet = op.ReadSet[1:]
		})
		if err := auditInventory(&server.Result{Trace: res.Trace, Karousos: forged}); err == nil {
			t.Error("scan with dropped row accepted (response no longer matches)")
		}
	})
	t.Run("reorder-result-rows", func(t *testing.T) {
		forged := mutateScanEntry(t, res, func(op *advice.TxOp) {
			if len(op.ReadSet) >= 2 {
				op.ReadSet[0], op.ReadSet[1] = op.ReadSet[1], op.ReadSet[0]
			}
		})
		if err := auditInventory(&server.Result{Trace: res.Trace, Karousos: forged}); err == nil {
			t.Error("unsorted scan result set accepted")
		}
	})
	t.Run("out-of-prefix-key", func(t *testing.T) {
		forged := mutateScanEntry(t, res, func(op *advice.TxOp) {
			op.ReadSet[0].Key = "zz:" + op.ReadSet[0].Key
		})
		if err := auditInventory(&server.Result{Trace: res.Trace, Karousos: forged}); err == nil {
			t.Error("scan result outside the prefix accepted")
		}
	})
	t.Run("dangling-dictating-write", func(t *testing.T) {
		forged := mutateScanEntry(t, res, func(op *advice.TxOp) {
			op.ReadSet[0].ReadFrom = advice.TxPos{RID: "r99", TID: "bogus", Index: 1}
		})
		if err := auditInventory(&server.Result{Trace: res.Trace, Karousos: forged}); err == nil {
			t.Error("scan reading from missing write accepted")
		}
	})
	t.Run("forged-row-value", func(t *testing.T) {
		// Point the first row's dictating write at a different item's PUT:
		// the key no longer matches.
		forged := mutateScanEntry(t, res, func(op *advice.TxOp) {
			for i := 1; i < len(op.ReadSet); i++ {
				op.ReadSet[0].ReadFrom = op.ReadSet[i].ReadFrom
				return
			}
		})
		if err := auditInventory(&server.Result{Trace: res.Trace, Karousos: forged}); err == nil {
			t.Error("scan row dictated by wrong key's write accepted")
		}
	})
}

// TestScanConflictReplaysAsRetry: when the store aborts a scan (predicate
// conflict), the response is a retry and the audit still accepts.
func TestScanConflictReplaysAsRetry(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		res, err := serveInventory(t, seed, 6)
		if err != nil {
			t.Fatal(err)
		}
		sawRetry := false
		for _, out := range res.Trace.Outputs() {
			if value.Equal(out, "retry") {
				sawRetry = true
			}
		}
		if !sawRetry {
			continue
		}
		if err := auditInventory(res); err != nil {
			t.Fatalf("seed %d: run with scan conflict rejected: %v", seed, err)
		}
		return
	}
	t.Skip("no interleaving produced a scan conflict; store-level test covers the conflict path")
}
