package verifier

import (
	"fmt"
	"math"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/value"
)

// vvar is the verifier-side state of one loggable variable (Figure 20's
// OnInitialize): the variable-log index, the version dictionary keyed by
// handler activation, and the read_observers / write_observer / initializer
// bookkeeping that Postprocess turns into WR/WW/RW edges.
type vvar struct {
	id       core.VarID
	log      map[core.Op]*advice.VarLogEntry
	consumed map[core.Op]bool
	dict     map[dkey][]dictEntry
	readObs  map[core.Op][]core.Op
	writeObs map[core.Op]core.Op
	initial  *core.Op // Figure 20's v.initializer
}

type dkey struct {
	rid core.RID
	hid core.HID
}

type dictEntry struct {
	num int
	val value.V
}

func (v *Verifier) variable(id core.VarID) *vvar {
	vv, ok := v.vars[id]
	if !ok {
		core.Rejectf("access to unknown variable %s", id)
	}
	return vv
}

// buildVarLogIndex indexes the advice's variable logs before init runs, so
// that init-time writes can consume their (lazily logged) entries. Duplicate
// entries for one operation are forgery.
func (v *Verifier) buildVarLogIndex() {
	v.rawVarLogs = make(map[core.VarID]map[core.Op]*advice.VarLogEntry, len(v.adv.VarLogs))
	for _, id := range sortedKeys(v.adv.VarLogs) {
		entries := v.adv.VarLogs[id]
		idx := make(map[core.Op]*advice.VarLogEntry, len(entries))
		for i := range entries {
			e := &entries[i]
			if e.Op.RID != core.InitRID && !v.inTrace[e.Op.RID] {
				core.Rejectf("variable log entry %v for request absent from trace", e.Op)
			}
			if _, dup := idx[e.Op]; dup {
				core.Rejectf("duplicate variable log entry at %v", e.Op)
			}
			idx[e.Op] = e
		}
		v.rawVarLogs[id] = idx
	}
}

// checkVarLogsKnown rejects advice that logs variables the program never
// creates.
func (v *Verifier) checkVarLogsKnown() {
	for _, id := range sortedKeys(v.rawVarLogs) {
		if _, ok := v.vars[id]; !ok {
			core.Rejectf("variable log for unknown variable %s", id)
		}
	}
}

func (vv *vvar) dictAppend(op core.Op, val value.V) {
	k := dkey{rid: op.RID, hid: op.HID}
	vv.dict[k] = append(vv.dict[k], dictEntry{num: op.Num, val: val})
}

// The eff-routed mutation helpers: with a nil eff (sequential engine, init
// replay, carry injection) they mutate the shared vvar directly; with an
// effect buffer they append to the group's overlay/intent stream and the
// coordinator replays them in canonical group order (parallel.go).

func (v *Verifier) dictAppendEff(vv *vvar, op core.Op, val value.V, eff *groupEffects) {
	if eff == nil {
		vv.dictAppend(op, val)
		return
	}
	k := vkey{varID: vv.id, rid: op.RID, hid: op.HID}
	eff.overlay[k] = append(eff.overlay[k], dictEntry{num: op.Num, val: val})
	eff.record(intent{kind: effDict, varID: vv.id, op: op, val: val})
}

func (v *Verifier) consumeVarEff(vv *vvar, op core.Op, eff *groupEffects) {
	if eff == nil {
		vv.consumed[op] = true
		return
	}
	eff.record(intent{kind: effVarConsumed, varID: vv.id, op: op})
}

func (v *Verifier) readObsEff(vv *vvar, prec, op core.Op, eff *groupEffects) {
	if eff == nil {
		vv.readObs[prec] = append(vv.readObs[prec], op)
		return
	}
	eff.record(intent{kind: effReadObs, varID: vv.id, prec: prec, op: op})
}

// writeObsEff links op as the overwriter of prec. Sequentially the conflict
// check runs here; a group worker defers it to the merge, where the shared
// write_observer map reflects every canonically-earlier group — the worker
// could only check against its private view, which misses cross-group
// conflicts and would make the loser depend on scheduling.
func (v *Verifier) writeObsEff(vv *vvar, prec, op core.Op, eff *groupEffects) {
	if eff == nil {
		if prev, set := vv.writeObs[prec]; set {
			core.RejectCodef(core.RejectLogMismatch, "writes %v and %v both overwrite %v of variable %s", prev, op, prec, vv.id)
		}
		vv.writeObs[prec] = op
		return
	}
	eff.record(intent{kind: effWriteObs, varID: vv.id, prec: prec, op: op})
}

func (v *Verifier) initialEff(vv *vvar, op core.Op, eff *groupEffects) {
	if eff == nil {
		if vv.initial != nil {
			core.RejectCodef(core.RejectLogMismatch, "variable %s has two initial writes (%v and %v)", vv.id, *vv.initial, op)
		}
		cp := op
		vv.initial = &cp
		return
	}
	eff.record(intent{kind: effInitial, varID: vv.id, op: op})
}

// annotateRead implements Figure 20's OnRead for one request: a logged read
// feeds from its logged dictating write; an unlogged read climbs the handler
// tree through the version dictionary (FindNearestRPrecedingWrite). Under
// Orochi-JS semantics every request read must be logged.
func (v *Verifier) annotateRead(vv *vvar, op core.Op, parentOf map[core.HID]core.HID, eff *groupEffects) value.V {
	if e, ok := vv.log[op]; ok {
		v.consumeVarEff(vv, op, eff)
		if e.Type != advice.AccessRead {
			core.RejectCodef(core.RejectLogMismatch, "re-executed read %v logged as write", op)
		}
		if !e.HasPrec {
			core.Rejectf("logged read %v has no dictating write", op)
		}
		pe, ok := vv.log[e.Prec]
		if !ok || pe.Type != advice.AccessWrite {
			core.Rejectf("logged read %v dictated by missing or non-write entry %v", op, e.Prec)
		}
		v.readObsEff(vv, e.Prec, op, eff)
		return pe.Value
	}
	if v.cfg.Mode == advice.ModeOrochiJS && op.RID != core.InitRID {
		core.RejectCodef(core.RejectLogMismatch, "orochi-js: read %v of variable %s is not logged", op, vv.id)
	}
	prev, val, found := v.findNearestRPrecedingWrite(vv, op, parentOf, eff)
	if !found {
		core.RejectCodef(core.RejectLogMismatch, "read %v of variable %s precedes every write", op, vv.id)
	}
	v.readObsEff(vv, prev, op, eff)
	return val
}

// annotateWrite implements Figure 21's OnWrite for one request: the written
// value always enters the version dictionary; a logged write is
// simulate-and-checked against the log and links its overwritten
// predecessor's write_observer; an unlogged (or lazily logged) write finds
// its R-preceding predecessor through the dictionary. Exactly one write per
// variable may have no predecessor — the initializer.
func (v *Verifier) annotateWrite(vv *vvar, op core.Op, val value.V, parentOf map[core.HID]core.HID, eff *groupEffects) {
	v.dictAppendEff(vv, op, val, eff)
	if e, ok := vv.log[op]; ok {
		v.consumeVarEff(vv, op, eff)
		if e.Type != advice.AccessWrite {
			core.RejectCodef(core.RejectLogMismatch, "re-executed write %v logged as read", op)
		}
		if !value.Equal(e.Value, val) {
			core.RejectCodef(core.RejectLogMismatch, "write %v of variable %s produced %s but log records %s",
				op, vv.id, value.String(val), value.String(e.Value))
		}
		if e.HasPrec {
			v.writeObsEff(vv, e.Prec, op, eff)
			return
		}
		// A lazily-logged write carries no predecessor reference; its
		// predecessor is R-ordered before it and is found below.
	} else if v.cfg.Mode == advice.ModeOrochiJS && op.RID != core.InitRID {
		core.RejectCodef(core.RejectLogMismatch, "orochi-js: write %v of variable %s is not logged", op, vv.id)
	}
	prev, _, found := v.findNearestRPrecedingWrite(vv, op, parentOf, eff)
	if found {
		v.writeObsEff(vv, prev, op, eff)
		return
	}
	v.initialEff(vv, op, eff)
}

// findNearestRPrecedingWrite climbs from the reading/writing handler up the
// activation tree (§4.2): the last earlier write by the same handler, then
// any write by each successive ancestor, ending at the initialization
// activation I.
func (v *Verifier) findNearestRPrecedingWrite(vv *vvar, op core.Op, parentOf map[core.HID]core.HID, eff *groupEffects) (core.Op, value.V, bool) {
	rid, hid, bound := op.RID, op.HID, op.Num
	// The climb is bounded by the activation-tree depth; hids are digests of
	// their parents, so a parentOf cycle cannot arise from honest hashing —
	// but the bound makes "cannot hang" a property of this loop, not of the
	// hash function.
	for depth := 0; ; depth++ {
		v.effPoll(eff)
		if depth > len(parentOf)+1 {
			core.RejectCodef(core.RejectGraphCycle, "activation parent chain of handler %s does not terminate", op.HID)
		}
		// A group worker reads its own overlay for the group's rids. The
		// init-level dictionary (rid == InitRID) is frozen during reExec and
		// only ever holds entries no group wrote, so reading it shared is
		// race-free; entries for another group's rids are unreachable from
		// this climb (dkeys carry this op's rid until the init hop).
		var entries []dictEntry
		if eff != nil && rid != core.InitRID {
			entries = eff.overlay[vkey{varID: vv.id, rid: rid, hid: hid}]
		} else {
			entries = vv.dict[dkey{rid: rid, hid: hid}]
		}
		for i := len(entries) - 1; i >= 0; i-- {
			if entries[i].num < bound {
				return core.Op{RID: rid, HID: hid, Num: entries[i].num}, entries[i].val, true
			}
		}
		if hid == core.InitHID {
			return core.Op{}, nil, false
		}
		parent, ok := parentOf[hid]
		if !ok {
			core.RejectCodef(core.RejectLogMismatch, "handler %s has no recorded activator", hid)
		}
		hid = parent
		bound = math.MaxInt
		if hid == core.InitHID {
			rid = core.InitRID
		}
	}
}

// initOps runs the application's initialization function at the verifier
// (Figure 14 line 20): it creates variables, records global handler
// registrations, and replays init-time variable accesses through the same
// annotations as request code.
type initOps struct {
	v    *Verifier
	done bool
}

var emptyParents = map[core.HID]core.HID{}

func (io *initOps) VarInit(ctx *core.Context, vr *core.Variable, opnum int, val *mv.MV) {
	if io.done {
		core.Rejectf("variable %s created outside the init function", vr.ID)
	}
	if _, dup := io.v.vars[vr.ID]; dup {
		core.Rejectf("duplicate variable id %s", vr.ID)
	}
	vv := &vvar{
		id:       vr.ID,
		log:      io.v.rawVarLogs[vr.ID],
		consumed: make(map[core.Op]bool),
		dict:     make(map[dkey][]dictEntry),
		readObs:  make(map[core.Op][]core.Op),
		writeObs: make(map[core.Op]core.Op),
	}
	if vv.log == nil {
		vv.log = make(map[core.Op]*advice.VarLogEntry)
	}
	io.v.vars[vr.ID] = vv
	// The initialization is the variable's first write.
	io.v.annotateWrite(vv, core.Op{RID: core.InitRID, HID: core.InitHID, Num: opnum}, value.Normalize(val.At(0)), emptyParents, nil)
}

func (io *initOps) VarRead(ctx *core.Context, vr *core.Variable, opnum int) *mv.MV {
	vv := io.v.variable(vr.ID)
	val := io.v.annotateRead(vv, core.Op{RID: core.InitRID, HID: core.InitHID, Num: opnum}, emptyParents, nil)
	return mv.Scalar(val, 1)
}

func (io *initOps) VarWrite(ctx *core.Context, vr *core.Variable, opnum int, val *mv.MV) {
	vv := io.v.variable(vr.ID)
	io.v.annotateWrite(vv, core.Op{RID: core.InitRID, HID: core.InitHID, Num: opnum}, value.Normalize(val.At(0)), emptyParents, nil)
}

func (io *initOps) Register(ctx *core.Context, opnum int, event core.EventName, fn core.FunctionID) {
	for _, re := range io.v.globalHandlers {
		if re.event == event && re.fn == fn {
			core.Rejectf("init registers %s for %s twice", fn, event)
		}
	}
	io.v.globalHandlers = append(io.v.globalHandlers, regEntry{event: event, fn: fn})
}

func (io *initOps) Unregister(ctx *core.Context, opnum int, event core.EventName, fn core.FunctionID) {
	core.Rejectf("unregister is not supported in the init function")
}

func (io *initOps) Emit(ctx *core.Context, opnum int, event core.EventName, payload *mv.MV) {
	core.Rejectf("emit is not supported in the init function")
}

func (io *initOps) TxOp(ctx *core.Context, opnum int, tx *core.Tx, op core.TxOpType, key *mv.MV, val *mv.MV) (*mv.MV, bool) {
	core.Rejectf("transactions are not allowed in the init function")
	return nil, false
}

func (io *initOps) Respond(ctx *core.Context, opsIssued int, payload *mv.MV) {
	core.Rejectf("the init function cannot respond")
}

func (io *initOps) Branch(ctx *core.Context, site string, cond *mv.MV) bool {
	b, ok := cond.Bool()
	if !ok {
		core.Rejectf("non-boolean branch condition in init at %q", site)
	}
	return b
}

func (io *initOps) Nondet(ctx *core.Context, opnum int, site string, gen func(rid core.RID) value.V) *mv.MV {
	core.Rejectf("the init function must be deterministic (nondet at %q)", site)
	return nil
}

// postprocess implements Figure 14's Postprocess: embed the per-variable
// operation histories into G as WR/WW/RW edges (Figure 21's
// AddInternalStateEdges), require that re-execution consumed every log
// entry, and accept iff G is acyclic.
func (v *Verifier) postprocess() {
	v.addInternalStateEdges()
	v.checkConsumption()
	v.Stats.GraphNodes = v.eg.d.NumNodes()
	v.Stats.GraphEdges = v.eg.d.NumEdges()
	cycle := v.eg.d.FindCycle()
	if v.cfg.DumpGraph != nil {
		label := func(id uint32) string { return gnodeLabel(v.eg.name(id)) }
		if err := v.eg.d.DOT(v.cfg.DumpGraph, "karousos-G", label, cycle); err != nil {
			core.RejectCodef(core.RejectInternalFault, "writing graph dump: %v", err)
		}
	}
	if cycle != nil {
		core.RejectCodef(core.RejectGraphCycle, "execution graph has a cycle of length %d through %v", len(cycle)-1, v.eg.name(cycle[0]))
	}
}

// gnodeLabel renders an execution-graph node for the DOT dump.
func gnodeLabel(n gnode) string {
	short := func(h core.HID) string {
		if len(h) > 8 {
			return string(h[:8])
		}
		return string(h)
	}
	switch n.kind {
	case kReq:
		return fmt.Sprintf("REQ %s", n.rid)
	case kResp:
		return fmt.Sprintf("RESP %s", n.rid)
	case kBar:
		return fmt.Sprintf("t%d", n.op)
	case kHEnd:
		return fmt.Sprintf("%s/%s/end", n.rid, short(n.hid))
	default:
		return fmt.Sprintf("%s/%s/%d", n.rid, short(n.hid), n.op)
	}
}

func gnodeOf(op core.Op) gnode { return opNode(op.RID, op.HID, op.Num) }

func (v *Verifier) addInternalStateEdges() {
	// Runs serially on the coordinator after all group effects have merged;
	// carried prior-epoch writes may name ops outside the advised layout, so
	// edges go through addEdgeN, which interns overflow nodes on demand.
	s := &esink{v: v}
	for _, id := range sortedKeys(v.vars) {
		vv := v.vars[id]
		if vv.initial == nil {
			continue
		}
		cur := *vv.initial
		visited := make(map[core.Op]bool)
		for {
			v.poll()
			if visited[cur] {
				core.RejectCodef(core.RejectGraphCycle, "variable %s has a cyclic write chain through %v", vv.id, cur)
			}
			visited[cur] = true
			for _, r := range vv.readObs[cur] {
				s.addEdgeN(gnodeOf(cur), gnodeOf(r)) // WR
			}
			wo, ok := vv.writeObs[cur]
			if !ok {
				break
			}
			for _, r := range vv.readObs[cur] {
				s.addEdgeN(gnodeOf(r), gnodeOf(wo)) // RW (anti-dependency)
			}
			s.addEdgeN(gnodeOf(cur), gnodeOf(wo)) // WW
			cur = wo
		}
	}
}

// checkConsumption rejects advice whose log entries were never produced by
// re-execution: a handler-log or transaction-log operation that replay never
// issued, or a variable-log access that replay never performed. Without this
// check a forged "phantom" write could feed logged reads while staying
// invisible to the execution graph.
func (v *Verifier) checkConsumption() {
	for _, op := range sortedKeysFunc(v.opMap, opLess) {
		if !v.opConsumed[op] {
			core.RejectCodef(core.RejectLogMismatch, "log entry %v was never produced by re-execution", op)
		}
	}
	for _, id := range sortedKeys(v.vars) {
		vv := v.vars[id]
		for _, op := range sortedKeysFunc(vv.log, opLess) {
			if !vv.consumed[op] {
				core.RejectCodef(core.RejectLogMismatch, "variable log entry %v of %s was never produced by re-execution", op, vv.id)
			}
		}
	}
}
