// Full-audit coverage for dynamic handler registration (§3's register and
// unregister): the verifier's Registered-set reconstruction (Figure 16) and
// CheckHandlerOp replay must round-trip executions whose listener tables
// change mid-request.
package verifier_test

import (
	"fmt"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
)

// dynApp registers a per-request listener, pings it, unregisters it, pings
// again (reaching only the global listener), and responds with a counter the
// listeners maintained.
func dynApp() func() *core.App {
	return func() *core.App {
		var hits *core.Variable
		app := &core.App{Name: "dyn", RequestEvent: "request"}
		app.Init = func(ctx *core.Context) {
			hits = ctx.VarNew("hits", ctx.Scalar(0))
			ctx.Register("request", "root")
			ctx.Register("done", "finish")
		}
		bump := func(ctx *core.Context) {
			v := ctx.Read(hits)
			ctx.Write(hits, ctx.Apply(func(a []value.V) value.V {
				return a[0].(float64) + 1
			}, v))
		}
		app.Funcs = map[core.FunctionID]core.HandlerFunc{
			"root": func(ctx *core.Context, p *mv.MV) {
				extra := ctx.Branch("want-extra", ctx.Apply(func(a []value.V) value.V {
					return appkit.Bool(appkit.Field(a[0], "extra"))
				}, p))
				ctx.Register("ping", "always")
				if extra {
					ctx.Register("ping", "extraListener")
				}
				ctx.Emit("ping", p) // always (+ extraListener)
				if extra {
					ctx.Unregister("ping", "extraListener")
				}
				ctx.Emit("ping", p) // always only
				ctx.Emit("done", p)
			},
			"always":        func(ctx *core.Context, p *mv.MV) { bump(ctx) },
			"extraListener": func(ctx *core.Context, p *mv.MV) { bump(ctx); bump(ctx) },
			"finish": func(ctx *core.Context, p *mv.MV) {
				ctx.Respond(ctx.Read(hits))
			},
		}
		return app
	}
}

func serveDyn(t *testing.T, seed int64, conc int) (*server.Result, error) {
	t.Helper()
	srv := server.New(server.Config{App: dynApp()(), Seed: seed, CollectKarousos: true, CollectOrochi: true})
	var reqs []server.Request
	for i := 0; i < 14; i++ {
		reqs = append(reqs, server.Request{
			RID:   core.RID(fmt.Sprintf("r%02d", i)),
			Input: value.Map("extra", i%2 == 0),
		})
	}
	return srv.Run(reqs, conc)
}

func TestDynamicHandlersFullAudit(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, conc := range []int{1, 5} {
			res, err := serveDyn(t, seed, conc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := verifier.Audit(verifier.Config{
				App: dynApp()(), Mode: advice.ModeKarousos,
			}, res.Trace, res.Karousos); err != nil {
				t.Fatalf("seed %d conc %d: karousos rejected dynamic-handler run: %v", seed, conc, err)
			}
			if _, err := verifier.Audit(verifier.Config{
				App: dynApp()(), Mode: advice.ModeOrochiJS,
			}, res.Trace, res.Orochi); err != nil {
				t.Fatalf("seed %d conc %d: orochi rejected dynamic-handler run: %v", seed, conc, err)
			}
		}
	}
}

// TestDynamicHandlersForgery: claiming a different registration history must
// reject — either the emit activates handlers the advice did not count, or
// counted handlers never run.
func TestDynamicHandlersForgery(t *testing.T) {
	res, err := serveDyn(t, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	audit := func(adv *advice.Advice) error {
		_, err := verifier.Audit(verifier.Config{App: dynApp()(), Mode: advice.ModeKarousos}, res.Trace, adv)
		return err
	}
	if err := audit(res.Karousos); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}

	t.Run("drop-register-entry", func(t *testing.T) {
		forged := res.Karousos.Clone()
		for rid := range forged.HandlerLogs {
			log := forged.HandlerLogs[rid]
			for i, op := range log {
				if op.Kind == advice.OpRegister && op.Fn == "extraListener" {
					forged.HandlerLogs[rid] = append(log[:i:i], log[i+1:]...)
					goto done
				}
			}
		}
	done:
		if err := audit(forged); err == nil {
			t.Error("dropped register entry accepted")
		}
	})
	t.Run("drop-unregister-entry", func(t *testing.T) {
		forged := res.Karousos.Clone()
		for rid := range forged.HandlerLogs {
			log := forged.HandlerLogs[rid]
			for i, op := range log {
				if op.Kind == advice.OpUnregister {
					forged.HandlerLogs[rid] = append(log[:i:i], log[i+1:]...)
					goto done
				}
			}
		}
	done:
		if err := audit(forged); err == nil {
			t.Error("dropped unregister entry accepted")
		}
	})
	t.Run("forge-registered-function", func(t *testing.T) {
		forged := res.Karousos.Clone()
		for rid := range forged.HandlerLogs {
			for i := range forged.HandlerLogs[rid] {
				if forged.HandlerLogs[rid][i].Kind == advice.OpRegister &&
					forged.HandlerLogs[rid][i].Fn == "extraListener" {
					forged.HandlerLogs[rid][i].Fn = "always"
					goto done
				}
			}
		}
	done:
		if err := audit(forged); err == nil {
			t.Error("forged registered function accepted")
		}
	})
}

// TestOrochiModeAttacks: the soundness checks hold in the Orochi-JS baseline
// verifier too.
func TestOrochiModeAttacks(t *testing.T) {
	res, err := serveDyn(t, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	audit := func(adv *advice.Advice) error {
		_, err := verifier.Audit(verifier.Config{App: dynApp()(), Mode: advice.ModeOrochiJS}, res.Trace, adv)
		return err
	}
	if err := audit(res.Orochi); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
	t.Run("forge-logged-value", func(t *testing.T) {
		forged := res.Orochi.Clone()
		for id := range forged.VarLogs {
			for i := range forged.VarLogs[id] {
				if forged.VarLogs[id][i].Type == advice.AccessWrite {
					forged.VarLogs[id][i].Value = float64(-1)
					goto done
				}
			}
		}
	done:
		if err := audit(forged); err == nil {
			t.Error("orochi: forged write value accepted")
		}
	})
	t.Run("tampered-response", func(t *testing.T) {
		tampered := *res.Trace
		tampered.Events = append([]trace.Event(nil), res.Trace.Events...)
		for i := range tampered.Events {
			if tampered.Events[i].Kind == 1 {
				tampered.Events[i].Data = float64(-42)
				break
			}
		}
		if _, err := verifier.Audit(verifier.Config{App: dynApp()(), Mode: advice.ModeOrochiJS}, &tampered, res.Orochi); err == nil {
			t.Error("orochi: tampered response accepted")
		}
	})
}
