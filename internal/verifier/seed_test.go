// Test-seed plumbing: randomized tests derive their math/rand streams from
// a single logged root seed, so any failure reproduces exactly with
//
//	KAROUSOS_TEST_SEED=<seed> go test ./internal/verifier/...
package verifier_test

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// testSeed returns the root seed for a randomized test and logs it. Set
// KAROUSOS_TEST_SEED to pin the seed when replaying a failure.
func testSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano() //karousos:nondeterminism-ok test-seed source, logged below so failing runs reproduce
	if s := os.Getenv("KAROUSOS_TEST_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad KAROUSOS_TEST_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("random seed %d (set KAROUSOS_TEST_SEED=%d to reproduce)", seed, seed)
	return seed
}
