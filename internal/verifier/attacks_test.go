// Attack tests: every scenario here is a misbehaving server trying to get a
// bogus (trace, advice) pair past the audit. Soundness (§2.1, Definition 6)
// says the verifier must reject all of them. Each test starts from an honest
// run and applies one forgery, or constructs an impossible execution
// wholesale (the Figure 5 family).
package verifier_test

import (
	"strings"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/adya"
	"karousos.dev/karousos/internal/apps/appkit"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/kvstore"
	"karousos.dev/karousos/internal/mv"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier"
)

// litmusApp is the store-buffer litmus test shaped like Figure 5: a "left"
// request writes x then reads y; a "right" request writes y then reads x.
// Handlers run to completion, so in any real schedule at least one request
// observes the other's write — both responding 0 is physically impossible.
func litmusApp() func() *core.App {
	return func() *core.App {
		var x, y *core.Variable
		app := &core.App{Name: "litmus", RequestEvent: "request"}
		app.Init = func(ctx *core.Context) {
			x = ctx.VarNew("x", ctx.Scalar(0))
			y = ctx.VarNew("y", ctx.Scalar(0))
			ctx.Register("request", "h")
		}
		app.Funcs = map[core.FunctionID]core.HandlerFunc{
			"h": func(ctx *core.Context, p *mv.MV) {
				left := ctx.Branch("op-left", ctx.Apply(func(a []value.V) value.V {
					return appkit.Str(appkit.Field(a[0], "op")) == "left"
				}, p))
				if left {
					ctx.Write(x, ctx.Scalar(1))
					ctx.Respond(ctx.Read(y))
				} else {
					ctx.Write(y, ctx.Scalar(1))
					ctx.Respond(ctx.Read(x))
				}
			},
		}
		return app
	}
}

func auditLitmus(tr *trace.Trace, adv *advice.Advice) error {
	_, err := verifier.Audit(verifier.Config{App: litmusApp()(), Mode: advice.ModeKarousos}, tr, adv)
	return err
}

func serveLitmus(t *testing.T, reqs []server.Request, conc int, seed int64) (*trace.Trace, *advice.Advice) {
	t.Helper()
	srv := server.New(server.Config{App: litmusApp()(), Seed: seed, CollectKarousos: true})
	res, err := srv.Run(reqs, conc)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace, res.Karousos
}

func leftReq(rid string) server.Request {
	return server.Request{RID: core.RID(rid), Input: value.Map("op", "left")}
}
func rightReq(rid string) server.Request {
	return server.Request{RID: core.RID(rid), Input: value.Map("op", "right")}
}

func TestLitmusHonestAccepted(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr, adv := serveLitmus(t, []server.Request{leftReq("r1"), rightReq("r2")}, 2, seed)
		if err := auditLitmus(tr, adv); err != nil {
			t.Fatalf("seed %d: honest litmus run rejected: %v", seed, err)
		}
	}
}

// TestFigure5ImpossibleInterleavingRejected is the flagship soundness test:
// the adversary executes each request on a private copy of the state (so
// both respond 0), merges the two runs' traces and advice, and submits the
// result. Every local check passes — the rejection must come from the cycle
// in the execution graph G (§4.3).
func TestFigure5ImpossibleInterleavingRejected(t *testing.T) {
	trL, advL := serveLitmus(t, []server.Request{leftReq("r1")}, 1, 1)
	trR, advR := serveLitmus(t, []server.Request{rightReq("r2")}, 1, 1)

	// Both isolated runs read the initial 0.
	if !value.Equal(trL.Outputs()["r1"], float64(0)) || !value.Equal(trR.Outputs()["r2"], float64(0)) {
		t.Fatal("isolated runs should both respond 0")
	}

	// Merge into one alleged concurrent execution.
	merged := &trace.Trace{Events: []trace.Event{
		{Kind: trace.Req, RID: "r1", Data: trL.Inputs()["r1"]},
		{Kind: trace.Req, RID: "r2", Data: trR.Inputs()["r2"]},
		{Kind: trace.Resp, RID: "r1", Data: trL.Outputs()["r1"]},
		{Kind: trace.Resp, RID: "r2", Data: trR.Outputs()["r2"]},
	}}
	adv := advL.Clone()
	for rid, tag := range advR.Tags {
		adv.Tags[rid] = tag
	}
	for rid, c := range advR.OpCounts {
		adv.OpCounts[rid] = c
	}
	for rid, at := range advR.ResponseEmittedBy {
		adv.ResponseEmittedBy[rid] = at
	}
	for rid, hl := range advR.HandlerLogs {
		adv.HandlerLogs[rid] = hl
	}
	for id, entries := range advR.VarLogs {
		adv.VarLogs[id] = append(adv.VarLogs[id], entries...)
	}
	adv.Nondet = append(adv.Nondet, advR.Nondet...)

	err := auditLitmus(merged, adv)
	if err == nil {
		t.Fatal("physically impossible execution accepted")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected rejection via graph cycle, got: %v", err)
	}
	if got := core.RejectCodeOf(err); got != core.RejectGraphCycle {
		t.Errorf("rejected with code %s, want %s", got, core.RejectGraphCycle)
	}
}

// --- mutation attacks on an honest tree-shaped run ---

// attackApp mirrors the server package's tree app: root writes a shared
// variable and fans out to a reader and a responding writer.
func attackApp() func() *core.App {
	return func() *core.App {
		var x *core.Variable
		app := &core.App{Name: "tree", RequestEvent: "request"}
		app.Init = func(ctx *core.Context) {
			x = ctx.VarNew("x", ctx.Scalar(0))
			ctx.Register("request", "root")
			ctx.Register("child", "reader")
			ctx.Register("final", "writer")
		}
		app.Funcs = map[core.FunctionID]core.HandlerFunc{
			"root": func(ctx *core.Context, p *mv.MV) {
				ctx.Write(x, ctx.Apply(func(a []value.V) value.V {
					return appkit.Field(a[0], "n")
				}, p))
				ctx.Emit("child", p)
				ctx.Emit("final", p)
			},
			"reader": func(ctx *core.Context, p *mv.MV) { _ = ctx.Read(x) },
			"writer": func(ctx *core.Context, p *mv.MV) {
				v := ctx.Read(x)
				ctx.Write(x, ctx.Apply(func(a []value.V) value.V {
					return a[0].(float64) + 1
				}, v))
				ctx.Respond(v)
			},
		}
		return app
	}
}

type honestRun struct {
	tr  *trace.Trace
	adv *advice.Advice
}

func honestTreeRun(t *testing.T) honestRun {
	t.Helper()
	srv := server.New(server.Config{App: attackApp()(), Seed: 3, CollectKarousos: true})
	var reqs []server.Request
	for _, rid := range []string{"r1", "r2", "r3", "r4"} {
		reqs = append(reqs, server.Request{RID: core.RID(rid), Input: value.Map("n", float64(len(rid)))})
	}
	res, err := srv.Run(reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	return honestRun{tr: res.Trace, adv: res.Karousos}
}

func auditTree(run honestRun) error {
	_, err := verifier.Audit(verifier.Config{App: attackApp()(), Mode: advice.ModeKarousos}, run.tr, run.adv)
	return err
}

func TestHonestTreeRunAccepted(t *testing.T) {
	if err := auditTree(honestTreeRun(t)); err != nil {
		t.Fatalf("honest run rejected: %v", err)
	}
}

// expectReject applies a mutation to a fresh honest run and requires the
// audit to reject it with the expected reason code — the code is part of
// the auditor's contract (monitoring scripts dispatch on it), so a forgery
// drifting to a different code is a regression even if it still rejects.
func expectReject(t *testing.T, name string, want core.RejectCode, mutate func(run *honestRun)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		run := honestTreeRun(t)
		if err := auditTree(run); err != nil {
			t.Fatalf("baseline honest run rejected: %v", err)
		}
		run = honestTreeRun(t)
		mutate(&run)
		err := auditTree(run)
		if err == nil {
			t.Fatalf("%s: forged run accepted", name)
		}
		if got := core.RejectCodeOf(err); got != want {
			t.Errorf("%s: rejected with code %s, want %s (%v)", name, got, want, err)
		}
	})
}

func TestResponseTampering(t *testing.T) {
	expectReject(t, "flip-response-bytes", core.RejectOutputMismatch, func(run *honestRun) {
		for i := range run.tr.Events {
			if run.tr.Events[i].Kind == trace.Resp && run.tr.Events[i].RID == "r2" {
				run.tr.Events[i].Data = float64(424242)
			}
		}
	})
}

func TestDroppedRequestFromAdvice(t *testing.T) {
	expectReject(t, "drop-request", core.RejectMalformedAdvice, func(run *honestRun) {
		delete(run.adv.Tags, "r2")
		delete(run.adv.OpCounts, "r2")
		delete(run.adv.ResponseEmittedBy, "r2")
		delete(run.adv.HandlerLogs, "r2")
		for id, entries := range run.adv.VarLogs {
			var kept []advice.VarLogEntry
			for _, e := range entries {
				if e.Op.RID != "r2" && (!e.HasPrec || e.Prec.RID != "r2") {
					kept = append(kept, e)
				}
			}
			run.adv.VarLogs[id] = kept
		}
	})
}

func TestVarLogValueForgery(t *testing.T) {
	expectReject(t, "forge-write-value", core.RejectLogMismatch, func(run *honestRun) {
		for id, entries := range run.adv.VarLogs {
			for i := range entries {
				if entries[i].Type == advice.AccessWrite {
					run.adv.VarLogs[id][i].Value = float64(999999)
					return
				}
			}
		}
		panic("no write entry to forge; run shape changed")
	})
}

func TestVarLogDuplicateEntry(t *testing.T) {
	expectReject(t, "duplicate-var-entry", core.RejectMalformedAdvice, func(run *honestRun) {
		for id, entries := range run.adv.VarLogs {
			if len(entries) > 0 {
				run.adv.VarLogs[id] = append(entries, entries[0])
				return
			}
		}
		panic("no var entries")
	})
}

func TestPhantomVarWrite(t *testing.T) {
	// A forged write entry at an op position replay never performs must be
	// caught by the consumption check — otherwise it could silently feed
	// logged reads while staying invisible to the execution graph.
	expectReject(t, "phantom-write", core.RejectLogMismatch, func(run *honestRun) {
		hid := run.adv.ResponseEmittedBy["r1"].HID
		n := run.adv.OpCounts["r1"][hid]
		run.adv.OpCounts["r1"][hid] = n + 1 // make room for the phantom op
		for id := range run.adv.VarLogs {
			run.adv.VarLogs[id] = append(run.adv.VarLogs[id], advice.VarLogEntry{
				Op: core.Op{RID: "r1", HID: hid, Num: n + 1}, Type: advice.AccessWrite, Value: float64(7),
			})
			return
		}
	})
}

func TestVarLogUnknownVariable(t *testing.T) {
	expectReject(t, "unknown-variable", core.RejectMalformedAdvice, func(run *honestRun) {
		run.adv.VarLogs["no-such-var"] = []advice.VarLogEntry{{
			Op:   core.Op{RID: "r1", HID: run.adv.ResponseEmittedBy["r1"].HID, Num: 1},
			Type: advice.AccessWrite, Value: float64(1),
		}}
	})
}

func TestReadDictatedByMissingWrite(t *testing.T) {
	expectReject(t, "read-from-missing-write", core.RejectMalformedAdvice, func(run *honestRun) {
		for id, entries := range run.adv.VarLogs {
			for i := range entries {
				if entries[i].Type == advice.AccessRead {
					run.adv.VarLogs[id][i].Prec = core.Op{RID: "r1", HID: "bogus", Num: 1}
					return
				}
			}
		}
		panic("no read entry")
	})
}

func TestOpCountInflation(t *testing.T) {
	expectReject(t, "inflate-opcount", core.RejectLogMismatch, func(run *honestRun) {
		hid := run.adv.ResponseEmittedBy["r1"].HID
		run.adv.OpCounts["r1"][hid]++
	})
}

func TestOpCountDeflation(t *testing.T) {
	expectReject(t, "deflate-opcount", core.RejectMalformedAdvice, func(run *honestRun) {
		hid := run.adv.ResponseEmittedBy["r1"].HID
		run.adv.OpCounts["r1"][hid]--
	})
}

func TestPhantomHandler(t *testing.T) {
	expectReject(t, "phantom-handler", core.RejectLogMismatch, func(run *honestRun) {
		run.adv.OpCounts["r1"]["deadbeefdeadbeef"] = 2
	})
}

func TestResponseEmittedByForgery(t *testing.T) {
	expectReject(t, "wrong-response-op", core.RejectLogMismatch, func(run *honestRun) {
		at := run.adv.ResponseEmittedBy["r1"]
		at.OpNum--
		run.adv.ResponseEmittedBy["r1"] = at
	})
	expectReject(t, "missing-response-entry", core.RejectMalformedAdvice, func(run *honestRun) {
		delete(run.adv.ResponseEmittedBy, "r1")
	})
}

func TestHandlerLogTampering(t *testing.T) {
	expectReject(t, "drop-emit", core.RejectLogMismatch, func(run *honestRun) {
		run.adv.HandlerLogs["r1"] = run.adv.HandlerLogs["r1"][:1]
	})
	expectReject(t, "forge-emit-event", core.RejectLogMismatch, func(run *honestRun) {
		run.adv.HandlerLogs["r1"][0].Event = "no-such-event"
	})
	expectReject(t, "handler-log-for-unknown-request", core.RejectMalformedAdvice, func(run *honestRun) {
		run.adv.HandlerLogs["zz"] = run.adv.HandlerLogs["r1"]
	})
}

func TestTagForgery(t *testing.T) {
	expectReject(t, "missing-tag", core.RejectMalformedAdvice, func(run *honestRun) {
		delete(run.adv.Tags, "r3")
	})
}

func TestNondetRemoval(t *testing.T) {
	// The tree app records no nondeterminism, so removing is vacuous; instead
	// forge a nondet entry duplicate to exercise that check via an app that
	// uses Nondet.
	appf := func() *core.App {
		app := &core.App{Name: "nd", RequestEvent: "request"}
		app.Init = func(ctx *core.Context) { ctx.Register("request", "h") }
		app.Funcs = map[core.FunctionID]core.HandlerFunc{
			"h": func(ctx *core.Context, p *mv.MV) {
				ctx.Respond(ctx.Nondet("coin", func(rid core.RID) value.V { return "heads" }))
			},
		}
		return app
	}
	srv := server.New(server.Config{App: appf(), Seed: 1, CollectKarousos: true})
	res, err := srv.Run([]server.Request{{RID: "r1"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	audit := func(adv *advice.Advice) error {
		_, err := verifier.Audit(verifier.Config{App: appf(), Mode: advice.ModeKarousos}, res.Trace, adv)
		return err
	}
	if err := audit(res.Karousos); err != nil {
		t.Fatalf("honest nondet run rejected: %v", err)
	}
	forged := res.Karousos.Clone()
	forged.Nondet = nil
	if err := audit(forged); err == nil {
		t.Error("missing nondet record accepted")
	}
	dup := res.Karousos.Clone()
	dup.Nondet = append(dup.Nondet, dup.Nondet[0])
	if err := audit(dup); err == nil {
		t.Error("duplicate nondet record accepted")
	}
	// Forging the recorded value changes the replayed response: reject.
	wrong := res.Karousos.Clone()
	wrong.Nondet[0].Value = "tails"
	if err := audit(wrong); err == nil {
		t.Error("forged nondet value accepted")
	}
}

// --- transactional attacks ---

// txAttackApp: one handler per request; report-like read-modify-write on a
// single row, plus a read-own-write inside the transaction.
func txAttackApp() func() (*core.App, *kvstore.Store) {
	return func() (*core.App, *kvstore.Store) {
		app := &core.App{Name: "txa", RequestEvent: "request"}
		app.Init = func(ctx *core.Context) { ctx.Register("request", "h") }
		app.Funcs = map[core.FunctionID]core.HandlerFunc{
			"h": func(ctx *core.Context, p *mv.MV) {
				tx := ctx.TxStart()
				cur, ok := ctx.Get(tx, ctx.Scalar("row"))
				if !ctx.BranchBool("get-ok", ok) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				next := ctx.Apply(func(a []value.V) value.V {
					return appkit.Num(a[0]) + 1
				}, cur)
				if !ctx.BranchBool("put-ok", ctx.Put(tx, ctx.Scalar("row"), next)) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				again, ok := ctx.Get(tx, ctx.Scalar("row")) // read own write
				if !ctx.BranchBool("get2-ok", ok) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				if !ctx.BranchBool("commit-ok", ctx.Commit(tx)) {
					ctx.Respond(ctx.Scalar("retry"))
					return
				}
				ctx.Respond(again)
			},
		}
		return app, kvstore.New(kvstore.Serializable)
	}
}

func honestTxRun(t *testing.T) honestRun {
	t.Helper()
	app, store := txAttackApp()()
	srv := server.New(server.Config{App: app, Store: store, Seed: 5, CollectKarousos: true})
	res, err := srv.Run([]server.Request{{RID: "r1"}, {RID: "r2"}, {RID: "r3"}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return honestRun{tr: res.Trace, adv: res.Karousos}
}

func auditTx(run honestRun) error {
	app, _ := txAttackApp()()
	_, err := verifier.Audit(verifier.Config{
		App: app, Mode: advice.ModeKarousos, Isolation: adya.Serializable,
	}, run.tr, run.adv)
	return err
}

func expectTxReject(t *testing.T, name string, want core.RejectCode, mutate func(run *honestRun)) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		run := honestTxRun(t)
		if err := auditTx(run); err != nil {
			t.Fatalf("baseline honest tx run rejected: %v", err)
		}
		run = honestTxRun(t)
		mutate(&run)
		err := auditTx(run)
		if err == nil {
			t.Fatalf("%s: forged tx run accepted", name)
		}
		if got := core.RejectCodeOf(err); got != want {
			t.Errorf("%s: rejected with code %s, want %s (%v)", name, got, want, err)
		}
	})
}

func TestTxHonestAccepted(t *testing.T) {
	if err := auditTx(honestTxRun(t)); err != nil {
		t.Fatal(err)
	}
}

func TestTxPutContentsForgery(t *testing.T) {
	expectTxReject(t, "forge-put-contents", core.RejectLogMismatch, func(run *honestRun) {
		for i := range run.adv.TxLogs {
			for j := range run.adv.TxLogs[i].Ops {
				if run.adv.TxLogs[i].Ops[j].Type == core.TxPut {
					run.adv.TxLogs[i].Ops[j].Contents = float64(12345)
					return
				}
			}
		}
	})
}

func TestTxReadFromFutureRejected(t *testing.T) {
	// Claim r1's GET read from r3's PUT — the §4.4 "preposterous claim"
	// example. The retargeted GET is r1's own-write read, so the
	// transactions-observe-their-own-writes check fires before graph
	// construction would see the backwards WR edge.
	expectTxReject(t, "read-from-future", core.RejectIsolationViolation, func(run *honestRun) {
		var r3Put *advice.TxPos
		for i := range run.adv.TxLogs {
			tl := &run.adv.TxLogs[i]
			if tl.RID != "r3" {
				continue
			}
			for j := range tl.Ops {
				if tl.Ops[j].Type == core.TxPut {
					r3Put = &advice.TxPos{RID: tl.RID, TID: tl.TID, Index: j + 1}
				}
			}
		}
		if r3Put == nil {
			panic("r3 has no PUT")
		}
		for i := range run.adv.TxLogs {
			tl := &run.adv.TxLogs[i]
			if tl.RID != "r1" {
				continue
			}
			for j := range tl.Ops {
				if tl.Ops[j].Type == core.TxGet && tl.Ops[j].ReadFrom != nil {
					tl.Ops[j].ReadFrom = r3Put
					return
				}
			}
		}
	})
}

func TestTxOwnWriteViolation(t *testing.T) {
	// The second GET of each transaction reads the transaction's own PUT;
	// claiming it read someone else's write violates the §4.4 well-formedness
	// check ("transactions observe their own writes").
	expectTxReject(t, "ignore-own-write", core.RejectIsolationViolation, func(run *honestRun) {
		// Find r1's PUT (r2's second GET legitimately could not read it, but
		// we forge r2's *second* GET — which must observe r2's own PUT — to
		// point at r1's PUT instead).
		var r1Put *advice.TxPos
		for i := range run.adv.TxLogs {
			tl := &run.adv.TxLogs[i]
			if tl.RID != "r1" {
				continue
			}
			for j := range tl.Ops {
				if tl.Ops[j].Type == core.TxPut {
					r1Put = &advice.TxPos{RID: tl.RID, TID: tl.TID, Index: j + 1}
				}
			}
		}
		for i := range run.adv.TxLogs {
			tl := &run.adv.TxLogs[i]
			if tl.RID != "r2" {
				continue
			}
			gets := 0
			for j := range tl.Ops {
				if tl.Ops[j].Type == core.TxGet {
					gets++
					if gets == 2 {
						tl.Ops[j].ReadFrom = r1Put
						return
					}
				}
			}
		}
	})
}

func TestWriteOrderTampering(t *testing.T) {
	expectTxReject(t, "drop-write-order-entry", core.RejectIsolationViolation, func(run *honestRun) {
		run.adv.WriteOrder = run.adv.WriteOrder[:len(run.adv.WriteOrder)-1]
	})
	expectTxReject(t, "duplicate-write-order-entry", core.RejectMalformedAdvice, func(run *honestRun) {
		run.adv.WriteOrder[len(run.adv.WriteOrder)-1] = run.adv.WriteOrder[0]
	})
	expectTxReject(t, "invert-write-order", core.RejectIsolationViolation, func(run *honestRun) {
		// Reversing the installation order of the row's versions contradicts
		// the read-from facts: the dependency graph gets a wr/ww cycle.
		wo := run.adv.WriteOrder
		wo[0], wo[len(wo)-1] = wo[len(wo)-1], wo[0]
	})
}

func TestTxLogStructuralForgeries(t *testing.T) {
	expectTxReject(t, "truncate-tx-log", core.RejectMalformedAdvice, func(run *honestRun) {
		run.adv.TxLogs[0].Ops = run.adv.TxLogs[0].Ops[:2]
	})
	expectTxReject(t, "drop-tx-start", core.RejectMalformedAdvice, func(run *honestRun) {
		run.adv.TxLogs[0].Ops = run.adv.TxLogs[0].Ops[1:]
	})
	expectTxReject(t, "duplicate-tx-log", core.RejectMalformedAdvice, func(run *honestRun) {
		run.adv.TxLogs = append(run.adv.TxLogs, run.adv.TxLogs[0])
	})
	expectTxReject(t, "get-key-mismatch", core.RejectLogMismatch, func(run *honestRun) {
		for i := range run.adv.TxLogs {
			for j := range run.adv.TxLogs[i].Ops {
				if run.adv.TxLogs[i].Ops[j].Type == core.TxGet {
					run.adv.TxLogs[i].Ops[j].Key = "other-row"
					return
				}
			}
		}
	})
	expectTxReject(t, "commit-to-abort", core.RejectIsolationViolation, func(run *honestRun) {
		// Claiming a committed transaction aborted breaks the write order
		// consistency (its installs are no longer last modifications of a
		// committed transaction).
		ops := run.adv.TxLogs[0].Ops
		if ops[len(ops)-1].Type != core.TxCommit {
			panic("expected trailing commit")
		}
		ops[len(ops)-1].Type = core.TxAbort
	})
}
