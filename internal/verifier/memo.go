package verifier

// Cross-epoch deduplicated re-execution (DESIGN.md §18). The paper's core
// win is deduplicating identical control flow *within* a batch: requests
// with equal tags replay once, together. Steady-state traffic repeats the
// same request shapes epoch after epoch, so the same groups are re-executed
// from scratch at every audit pass. This file extends the deduplication
// *across* epochs: a content-addressed cache maps the digest of a group's
// full input closure to the group's recorded effect intents (parallel.go),
// and on a hit the coordinator replays the intents instead of re-executing
// handler code.
//
// # Soundness: the key covers everything a group can observe
//
// PR 5's effect-buffered engine is what makes group replay memoizable:
// when a group runs with a non-nil effect buffer it reads ONLY state frozen
// during reExec — its requests' inputs/outputs, its rids' slices of the
// advice logs, the init-level dictionary (deterministic init + injected
// carry), and resolved reads-from targets — and writes only intents. The
// memo key is the SHA-256 digest of exactly that read set:
//
//   - an audit-level prefix: application fingerprint, mode, isolation
//     level, and the full init-level version dictionary (which is where
//     both deterministic init writes and the injected carry slice live);
//   - the group tag and group size;
//   - per slot, in trace order: the request input and traced output, the
//     advised opcounts, responseEmittedBy, the full handler log, the
//     request's variable-log entries (with each logged read's dictating
//     write resolved to its observable facts — presence, access type,
//     value), the request's transaction logs with every reads-from
//     reference resolved to the dictated contents, and the recorded
//     nondeterminism.
//
// Raw request ids, raw predecessor identities, and raw TxPos coordinates
// are deliberately EXCLUDED: they drift across epochs while carrying no
// behavioral content (a logged read behaves identically whichever op wrote
// the value it observes — what matters is the value, which is hashed).
// Everything else a group touches is derived from the hashed material:
// activated sets and opMap locations are built from the handler and
// transaction logs, fnOfActivated inverts ComputeHID over the hashed
// function table, and parentOf is rebuilt by replaying emits.
//
// A single tampered byte in any of these inputs changes the key and forces
// cold re-execution — a poisoned entry can never be REACHED by an honest
// key. The converse hazard (an honest key reaching an entry recorded from
// a rejecting run) is closed by publish-after-accept: candidates captured
// during reExec enter the cache only after the WHOLE audit accepts
// (memoPublish at the end of auditFull), so every cached effect set was
// part of an accepting audit. Dangling advice the groups never observe
// (e.g. a forged init-level variable-log entry, or opcounts for a rid
// absent from the trace) cannot hide behind a hit either: the
// post-re-execution sweeps — checkConsumption, the every-handler-executed
// and every-request-responded checks — run over the merged shared state
// identically for replayed and re-executed groups.
//
// # Replay: rebinding intents to the new epoch
//
// Cached intents cannot store raw rids (epoch-local) so ops are encoded as
// (slot, hid, num) against the group's rid slice — hids and op numbers are
// content digests and therefore stable across epochs. Predecessor ops in
// readObs/writeObs intents come in three stable encodings:
//
//   - precFromLog: the access is logged with a predecessor reference; the
//     sequential engine uses e.Prec verbatim, so replay re-reads it from
//     the NEW epoch's log entry. This is also why predecessor identities
//     can stay out of the key: replay behaves exactly as cold re-execution
//     would for any predecessor whose observable facts match.
//   - precSlot / precInit: the access is unlogged (or lazily logged) and
//     its predecessor came from the dictionary climb, which only ever
//     yields same-request or init-level ops — both epoch-stable.
//
// Any intent that fits none of these encodings makes the group
// uncacheable (memoCapture returns nil); that is a defensive bail, not a
// reachable path.
//
// # Determinism
//
// MemoHits/MemoMisses/MemoEvictions must be bit-identical at every worker
// count, so every cache interaction happens on the coordinator in
// canonical tag order: keys are computed and probed sequentially BEFORE
// the fan-out, and accepted candidates are inserted sequentially after the
// audit accepts. When a memo cache is configured the engine always uses
// the effect-buffered path (even at Workers=1), which PR 5's differential
// tests prove bit-identical to the sequential engine.

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
	"karousos.dev/karousos/internal/verifier/memo"
)

// memoHasher streams framed components into SHA-256. Every component is
// either fixed-width, length-prefixed, or canonically self-delimiting
// (value.Encode), so distinct input sequences cannot collide by framing.
type memoHasher struct {
	h   hash.Hash
	buf []byte
	n8  [8]byte
}

func newMemoHasher() *memoHasher { return &memoHasher{h: sha256.New()} }

func (m *memoHasher) reset() { m.h.Reset() }

func (m *memoHasher) tag(t byte) {
	m.n8[0] = t
	m.h.Write(m.n8[:1])
}

func (m *memoHasher) num(n int) {
	binary.LittleEndian.PutUint64(m.n8[:], uint64(n))
	m.h.Write(m.n8[:])
}

func (m *memoHasher) str(s string) {
	m.num(len(s))
	io.WriteString(m.h, s)
}

// val hashes a value through its canonical encoding — the same
// deterministic byte form value digests and comparisons are defined over.
func (m *memoHasher) val(v value.V) {
	m.buf = value.Encode(m.buf[:0], v)
	m.num(len(m.buf))
	m.h.Write(m.buf)
}

func (m *memoHasher) sum() (k memo.Key) {
	m.h.Sum(k[:0])
	return k
}

// memoVarEntry pairs a variable-log entry with its variable for the
// per-request listing.
type memoVarEntry struct {
	id core.VarID
	e  *advice.VarLogEntry
}

// memoPrep is the per-audit key-derivation state: the audit-level prefix
// digest and per-request views of the advice slices that are keyed per
// group. Built once per audit, on the coordinator, after preprocess.
type memoPrep struct {
	v      *Verifier
	h      *memoHasher
	prefix memo.Key
	txs    map[core.RID][]*advice.TxLog
	vlogs  map[core.RID][]memoVarEntry
	nondet map[core.RID][]advice.NondetEntry
}

func (v *Verifier) memoPrepare() *memoPrep {
	p := &memoPrep{
		v:      v,
		h:      newMemoHasher(),
		txs:    make(map[core.RID][]*advice.TxLog),
		vlogs:  make(map[core.RID][]memoVarEntry),
		nondet: make(map[core.RID][]advice.NondetEntry),
	}
	for i := range v.adv.TxLogs {
		tl := &v.adv.TxLogs[i]
		p.txs[tl.RID] = append(p.txs[tl.RID], tl)
	}
	for _, id := range sortedKeys(v.adv.VarLogs) {
		entries := v.adv.VarLogs[id]
		for i := range entries {
			e := &entries[i]
			p.vlogs[e.Op.RID] = append(p.vlogs[e.Op.RID], memoVarEntry{id: id, e: e})
		}
	}
	for _, e := range v.adv.Nondet {
		p.nondet[e.Op.RID] = append(p.nondet[e.Op.RID], e)
	}

	// Audit-level prefix: everything group-independent a replay observes.
	// The init-level dictionary is hashed entry by entry in append order
	// (deterministic init replay followed by sorted-VarID carry injection),
	// so a changed carry slice or a different init fixpoint changes every
	// group key of the epoch.
	h := p.h
	h.tag('A')
	h.str(v.cfg.App.Name)
	h.str(string(v.cfg.App.RequestEvent))
	fns := sortedKeys(v.cfg.App.Funcs)
	h.num(len(fns))
	for _, fn := range fns {
		h.str(string(fn))
	}
	h.str(string(v.cfg.Mode))
	h.num(int(v.cfg.Isolation))
	ids := sortedKeys(v.vars)
	h.num(len(ids))
	for _, id := range ids {
		vv := v.vars[id]
		h.str(string(id))
		entries := vv.dict[dkey{rid: core.InitRID, hid: core.InitHID}]
		h.num(len(entries))
		for _, en := range entries {
			v.poll()
			h.num(en.num)
			h.val(en.val)
		}
	}
	p.prefix = h.sum()
	return p
}

// groupKey digests one tag group's full input closure. Runs on the
// coordinator only (the hasher is shared across groups).
func (p *memoPrep) groupKey(tag string, rids []core.RID) memo.Key {
	v := p.v
	slotOf := make(map[core.RID]int, len(rids))
	for i, rid := range rids {
		slotOf[rid] = i
	}
	h := p.h
	h.reset()
	h.tag('G')
	h.h.Write(p.prefix[:])
	h.str(tag)
	h.num(len(rids))
	for i, rid := range rids {
		v.poll()
		h.tag('R')
		h.num(i)
		h.val(v.inputs[rid])
		h.val(v.outputs[rid])

		counts := v.adv.OpCounts[rid]
		hids := sortedKeys(counts)
		h.num(len(hids))
		for _, hid := range hids {
			h.str(string(hid))
			h.num(counts[hid])
		}

		at, ok := v.adv.ResponseEmittedBy[rid]
		h.num(boolNum(ok))
		h.str(string(at.HID))
		h.num(at.OpNum)

		hl := v.adv.HandlerLogs[rid]
		h.num(len(hl))
		for j := range hl {
			e := &hl[j]
			h.str(string(e.HID))
			h.num(e.OpNum)
			h.num(int(e.Kind))
			h.str(string(e.Event))
			h.num(len(e.Events))
			for _, ev := range e.Events {
				h.str(string(ev))
			}
			h.str(string(e.Fn))
		}

		vl := p.vlogs[rid]
		h.num(len(vl))
		for _, ve := range vl {
			v.poll()
			p.hashVarEntry(ve)
		}

		tls := p.txs[rid]
		h.num(len(tls))
		for _, tl := range tls {
			h.str(string(tl.TID))
			h.num(len(tl.Ops))
			for j := range tl.Ops {
				v.poll()
				p.hashTxOp(&tl.Ops[j])
			}
		}

		nd := p.nondet[rid]
		h.num(len(nd))
		for _, e := range nd {
			h.str(string(e.Op.HID))
			h.num(e.Op.Num)
			h.val(e.Value)
		}
	}
	return h.sum()
}

// hashVarEntry digests one variable-log entry by its observable behavior.
// A logged read's predecessor is resolved to the facts annotateRead acts
// on — whether the entry exists, its access type, and its value — instead
// of its epoch-local identity; replay re-reads the identity from the new
// log (precFromLog), so any predecessor with equal facts replays
// identically to cold re-execution. A logged write's predecessor is only
// ever used as a write_observer link, which replay also re-reads from the
// new log, so it contributes nothing to the key at all.
func (p *memoPrep) hashVarEntry(ve memoVarEntry) {
	h := p.h
	e := ve.e
	h.tag('V')
	h.str(string(ve.id))
	h.str(string(e.Op.HID))
	h.num(e.Op.Num)
	h.num(int(e.Type))
	h.val(e.Value)
	h.num(boolNum(e.HasPrec))
	if e.Type == advice.AccessRead && e.HasPrec {
		pe, ok := p.v.vars[ve.id].log[e.Prec]
		h.num(boolNum(ok))
		if ok {
			h.num(int(pe.Type))
			h.val(pe.Value)
		}
	}
}

// hashTxOp digests one transaction-log entry, resolving every reads-from
// reference to the contents re-execution would feed the handler. The raw
// TxPos coordinates are excluded — a GET dictated by a carried prior-epoch
// write or by an in-epoch write behaves identically when the contents
// match. Resolution is safe here because preprocess has already validated
// the logs; a dangling reference hashes as absent.
func (p *memoPrep) hashTxOp(e *advice.TxOp) {
	h := p.h
	h.tag('X')
	h.str(string(e.HID))
	h.num(e.OpNum)
	h.num(int(e.Type))
	h.str(e.Key)
	h.val(e.Contents)
	if e.ReadFrom == nil {
		h.tag('n')
	} else {
		h.tag('r')
		p.hashResolved(*e.ReadFrom)
	}
	h.num(len(e.ReadSet))
	for _, sr := range e.ReadSet {
		h.str(sr.Key)
		p.hashResolved(sr.ReadFrom)
	}
}

func (p *memoPrep) hashResolved(pos advice.TxPos) {
	h := p.h
	op := p.v.txOpAt(pos)
	h.num(boolNum(op != nil))
	if op != nil {
		h.val(op.Contents)
	}
}

func boolNum(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- cached effect sets ---

// Predecessor encodings of a cached readObs/writeObs intent (see the file
// comment): re-read from the new epoch's log entry, or rebound to a group
// slot / the init activation.
const (
	precNone uint8 = iota
	precFromLog
	precSlot
	precInit
)

// memoOp is an op identity with the epoch-local rid replaced by the
// group-slot index; hid and op number are content-derived and stable.
type memoOp struct {
	slot int
	hid  core.HID
	num  int
}

// memoIntent is one normalized intent of a cached effect set.
type memoIntent struct {
	kind     intentKind
	precMode uint8
	varID    core.VarID
	op       memoOp
	prec     memoOp
	slot     int      // effExecuted / effResponded: rid slot
	hid      core.HID // effExecuted
	val      value.V  // effDict
}

// memoEntry is one cached effect set: the normalized intent stream of a
// group whose audit accepted.
type memoEntry struct {
	slots   int
	intents []memoIntent
	bytes   int
}

// memoCandidate is a captured entry awaiting publish-after-accept.
type memoCandidate struct {
	key memo.Key
	ent *memoEntry
}

// memoIntentBytes is the accounted per-intent overhead (struct + map/list
// bookkeeping the replay will cost); value payloads are accounted at their
// canonical encoded size on top.
const memoIntentBytes = 96

// memoCapture normalizes an accepted group's intent stream into a cache
// candidate, or returns nil when any intent does not fit a stable encoding
// (defensive; see the file comment).
func (v *Verifier) memoCapture(rids []core.RID, eff *groupEffects) *memoEntry {
	slotOf := make(map[core.RID]int, len(rids))
	for i, rid := range rids {
		slotOf[rid] = i
	}
	toOp := func(op core.Op) (memoOp, bool) {
		s, ok := slotOf[op.RID]
		if !ok {
			return memoOp{}, false
		}
		return memoOp{slot: s, hid: op.HID, num: op.Num}, true
	}
	ent := &memoEntry{slots: len(rids), intents: make([]memoIntent, 0, len(eff.intents))}
	size := memoIntentBytes // entry header
	var scratch []byte
	for i := range eff.intents {
		in := &eff.intents[i]
		mi := memoIntent{kind: in.kind}
		switch in.kind {
		case effRerun:
		case effExecuted:
			s, ok := slotOf[in.rid]
			if !ok {
				return nil
			}
			mi.slot, mi.hid = s, in.hid
		case effResponded:
			s, ok := slotOf[in.rid]
			if !ok {
				return nil
			}
			mi.slot = s
		case effOpConsumed:
			op, ok := toOp(in.op)
			if !ok {
				return nil
			}
			mi.op = op
		case effDict, effVarConsumed, effInitial:
			op, ok := toOp(in.op)
			if !ok {
				return nil
			}
			mi.varID, mi.op = in.varID, op
			if in.kind == effDict {
				mi.val = in.val
				scratch = value.Encode(scratch[:0], in.val)
				size += len(scratch)
			}
		case effReadObs, effWriteObs:
			op, ok := toOp(in.op)
			if !ok {
				return nil
			}
			mi.varID, mi.op = in.varID, op
			vv := v.vars[in.varID]
			if e, logged := vv.log[in.op]; logged && e.HasPrec && e.Prec == in.prec {
				mi.precMode = precFromLog
			} else if s, grp := slotOf[in.prec.RID]; grp {
				mi.precMode, mi.prec = precSlot, memoOp{slot: s, hid: in.prec.HID, num: in.prec.Num}
			} else if in.prec.RID == core.InitRID {
				mi.precMode, mi.prec = precInit, memoOp{hid: in.prec.HID, num: in.prec.Num}
			} else {
				return nil
			}
		default:
			return nil
		}
		size += memoIntentBytes
		ent.intents = append(ent.intents, mi)
	}
	ent.bytes = size
	return ent
}

// memoReplay rebinds a cached effect set to this epoch's group and applies
// it to the shared verifier state directly — the fusion of the rebinding
// with applyEffects' merge, without materializing an intent buffer. It runs
// on the coordinator at the group's canonical merge position, so the
// sequence of shared-state mutations (and the position of any cross-group
// conflict rejection) is exactly what recording-then-applying would
// produce. The shape checks reject with InternalFault: under key equality
// they are unreachable (the group size and every logged access are part of
// the key), so tripping one means the cache itself misbehaved — an
// auditor-side fault, not advice forgery.
func (v *Verifier) memoReplay(ent *memoEntry, rids []core.RID) {
	if ent.slots != len(rids) {
		core.RejectCodef(core.RejectInternalFault, "memo entry caches %d slots for a group of %d", ent.slots, len(rids))
	}
	for i := range ent.intents {
		v.poll()
		m := &ent.intents[i]
		switch m.kind {
		case effRerun:
			v.Stats.HandlersRerun++
		case effExecuted:
			rid := rids[m.slot]
			ex := v.executed[rid]
			if ex == nil {
				ex = make(map[core.HID]bool)
				v.executed[rid] = ex
			}
			ex[m.hid] = true
		case effResponded:
			v.responded[rids[m.slot]] = true
		case effOpConsumed:
			v.opConsumed[core.Op{RID: rids[m.op.slot], HID: m.op.hid, Num: m.op.num}] = true
		case effDict:
			v.vars[m.varID].dictAppend(core.Op{RID: rids[m.op.slot], HID: m.op.hid, Num: m.op.num}, m.val)
		case effVarConsumed:
			v.vars[m.varID].consumed[core.Op{RID: rids[m.op.slot], HID: m.op.hid, Num: m.op.num}] = true
		case effInitial:
			vv := v.vars[m.varID]
			op := core.Op{RID: rids[m.op.slot], HID: m.op.hid, Num: m.op.num}
			if vv.initial != nil {
				core.RejectCodef(core.RejectLogMismatch, "variable %s has two initial writes (%v and %v)", vv.id, *vv.initial, op)
			}
			vv.initial = &op
		case effReadObs, effWriteObs:
			op := core.Op{RID: rids[m.op.slot], HID: m.op.hid, Num: m.op.num}
			var prec core.Op
			switch m.precMode {
			case precFromLog:
				vv := v.vars[m.varID]
				if vv == nil {
					core.RejectCodef(core.RejectInternalFault, "memo replay references unknown variable %s", m.varID)
				}
				e, ok := vv.log[op]
				if !ok || !e.HasPrec {
					core.RejectCodef(core.RejectInternalFault, "memo replay: logged access %v lost its predecessor", op)
				}
				prec = e.Prec
			case precSlot:
				prec = core.Op{RID: rids[m.prec.slot], HID: m.prec.hid, Num: m.prec.num}
			case precInit:
				prec = core.Op{RID: core.InitRID, HID: m.prec.hid, Num: m.prec.num}
			}
			vv := v.vars[m.varID]
			if m.kind == effReadObs {
				vv.readObs[prec] = append(vv.readObs[prec], op)
			} else {
				if prev, set := vv.writeObs[prec]; set {
					core.RejectCodef(core.RejectLogMismatch, "writes %v and %v both overwrite %v of variable %s", prev, op, prec, vv.id)
				}
				vv.writeObs[prec] = op
			}
		}
	}
}

// reExecMemo is reExec's group phase with the memo cache in the loop. All
// cache interactions are coordinator-side and in canonical tag order:
// classification (and the MemoHits/MemoMisses counters, and the LRU touch
// order) before the fan-out, candidate capture during the deterministic
// merge, publication only after the whole audit accepts (memoPublish).
func (v *Verifier) reExecMemo(order []string, groups map[string][]core.RID) {
	prep := v.memoPrepare()
	keys := make([]memo.Key, len(order))
	hits := make([]*memoEntry, len(order))
	for i, tag := range order {
		keys[i] = prep.groupKey(tag, groups[tag])
		if got, ok := v.cfg.Memo.Probe(keys[i]); ok {
			if ent, isEntry := got.(*memoEntry); isEntry && ent.slots == len(groups[tag]) {
				hits[i] = ent
				v.Stats.MemoHits++
				continue
			}
		}
		v.Stats.MemoMisses++
	}
	effs := make([]*groupEffects, len(order))
	fanOut(v.workers(), len(order), func(i int) {
		if hits[i] != nil {
			// Hit groups skip the worker pool entirely: replay is applied
			// directly at the merge position below, freeing the workers for
			// the cold groups.
			return
		}
		eff := newGroupEffects()
		defer func() {
			if r := recover(); r != nil {
				eff.rej = asReject(r)
			}
			effs[i] = eff
		}()
		v.runGroup(groups[order[i]], eff)
	})
	for i, eff := range effs {
		if hits[i] != nil {
			v.memoReplay(hits[i], groups[order[i]])
			continue
		}
		v.applyEffects(eff)
		if eff.rej == nil {
			if ent := v.memoCapture(groups[order[i]], eff); ent != nil {
				v.memoPending = append(v.memoPending, memoCandidate{key: keys[i], ent: ent})
			}
		}
	}
}

// memoPublish inserts the accepted audit's captured candidates, in
// canonical order, on the coordinator — the publish-after-accept boundary.
// Oversized entries (Limits.MaxMemoEntryBytes, defaulting to an eighth of
// the cache budget) are skipped rather than allowed to churn the LRU.
func (v *Verifier) memoPublish() {
	if v.cfg.Memo == nil || len(v.memoPending) == 0 {
		return
	}
	maxEntry := v.cfg.Limits.MaxMemoEntryBytes
	if maxEntry <= 0 {
		if mb := v.cfg.Memo.MaxBytes(); mb > 0 {
			maxEntry = mb / 8
		}
	}
	for _, c := range v.memoPending {
		if maxEntry > 0 && c.ent.bytes > maxEntry {
			continue
		}
		v.Stats.MemoEvictions += v.cfg.Memo.Insert(c.key, c.ent, c.ent.bytes)
	}
	v.memoPending = nil
}
