// Differential determinism tests for the parallel audit engine: the same
// (trace, advice) pair audited at different worker counts must produce a
// byte-identical verdict — same accept/reject, same reason code, same error
// string, same Stats — no matter how the scheduler interleaves the workers.
// This is the executable form of DESIGN.md §13's determinism argument, and
// CI runs it under -race so the effect-buffer isolation is checked too.
package verifier_test

import (
	"fmt"
	"runtime"
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/faultinject"
	"karousos.dev/karousos/internal/harness"
	"karousos.dev/karousos/internal/server"
	"karousos.dev/karousos/internal/trace"
	"karousos.dev/karousos/internal/verifier"
	"karousos.dev/karousos/internal/workload"
)

// workerLevels are the parallelism settings every case is audited at. 1 is
// the sequential engine (the reference); 4 forces contention on small
// machines; GOMAXPROCS is the production default.
func workerLevels() []int {
	levels := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		levels = append(levels, g)
	}
	return levels
}

type diffApp struct {
	name string
	spec harness.AppSpec
	reqs func(n int, seed int64) []server.Request
}

func diffApps() []diffApp {
	return []diffApp{
		{"motd", harness.MOTDApp(), func(n int, seed int64) []server.Request {
			return workload.MOTD(n, workload.WriteHeavy, seed)
		}},
		{"stacks", harness.StacksApp(), func(n int, seed int64) []server.Request {
			return workload.Stacks(n, workload.ReadHeavy, seed, workload.DefaultStacksOptions())
		}},
		{"wiki", harness.WikiApp(), func(n int, seed int64) []server.Request {
			return workload.Wiki(n, seed)
		}},
		{"feeds", harness.FeedsApp(), func(n int, seed int64) []server.Request {
			return workload.Feeds(n, workload.Mixed, seed)
		}},
	}
}

// verdictKey flattens a VerifyResult into the fields that must be identical
// across worker counts. Elapsed is deliberately excluded.
func verdictKey(vr *harness.VerifyResult) string {
	if vr.Err != nil {
		return fmt.Sprintf("REJECT %v | stats %+v", vr.Err, vr.Stats)
	}
	return fmt.Sprintf("ACCEPT | stats %+v", vr.Stats)
}

// requireIdentical audits (tr, adv) at every worker level and fails if any
// verdict differs from the sequential engine's. Audits run under
// DefaultLimits, as production does: without bounds a corrupted advice blob
// can legally make any engine allocate for minutes before rejecting.
func requireIdentical(t *testing.T, spec harness.AppSpec, tr *trace.Trace, adv *advice.Advice) {
	t.Helper()
	var want string
	for i, w := range workerLevels() {
		got := verdictKey(harness.VerifyWith(spec, tr, adv, harness.VerifyOptions{Workers: w, Limits: verifier.DefaultLimits()}))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d verdict diverged:\n  workers=1: %s\n  workers=%d: %s", w, want, w, got)
		}
	}
}

func TestDifferentialHonestRuns(t *testing.T) {
	for _, app := range diffApps() {
		for _, seed := range []int64{1, 7} {
			t.Run(fmt.Sprintf("%s-seed%d", app.name, seed), func(t *testing.T) {
				run, err := harness.Serve(app.spec, app.reqs(60, seed), 10, seed, harness.CollectKarousos)
				if err != nil {
					t.Fatal(err)
				}
				// Honest runs must accept at every worker count.
				if vr := harness.VerifyWith(app.spec, run.Trace, run.Karousos, harness.VerifyOptions{Workers: 1}); vr.Err != nil {
					t.Fatalf("sequential audit rejected an honest run: %v", vr.Err)
				}
				requireIdentical(t, app.spec, run.Trace, run.Karousos)
			})
		}
	}
}

func TestDifferentialTamperedTrace(t *testing.T) {
	for _, app := range diffApps() {
		t.Run(app.name, func(t *testing.T) {
			run, err := harness.Serve(app.spec, app.reqs(60, 3), 10, 3, harness.CollectKarousos)
			if err != nil {
				t.Fatal(err)
			}
			// Flip one response so the audit must reject — with the same
			// first rejection at every worker count.
			tampered := &trace.Trace{Events: append([]trace.Event(nil), run.Trace.Events...)}
			for i := range tampered.Events {
				if tampered.Events[i].Kind == trace.Resp {
					tampered.Events[i].Data = map[string]any{"status": "tampered"}
					break
				}
			}
			if vr := harness.VerifyWith(app.spec, tampered, run.Karousos, harness.VerifyOptions{Workers: 1}); vr.Err == nil {
				t.Fatal("sequential audit accepted a tampered trace")
			}
			requireIdentical(t, app.spec, tampered, run.Karousos)
		})
	}
}

func TestDifferentialFaultInjectedAdvice(t *testing.T) {
	run, err := harness.Serve(harness.WikiApp(), workload.Wiki(60, 5), 10, 5, harness.CollectKarousos)
	if err != nil {
		t.Fatal(err)
	}
	wire := run.Karousos.MarshalBinary()
	ops := []string{
		"bit-flip", "splice", "opcount-inflate", "index-skew",
		"cycle-write-chain", "cycle-write-order", "dup-log-entry", "drop-log-entry",
	}
	for _, name := range ops {
		op, ok := faultinject.Lookup(name)
		if !ok {
			t.Fatalf("no fault operator %q", name)
		}
		for _, seed := range []int64{2, 9} {
			t.Run(fmt.Sprintf("%s-seed%d", name, seed), func(t *testing.T) {
				mut, err := op.Apply(seed, wire)
				if err != nil {
					t.Skipf("operator found no site: %v", err)
				}
				adv, err := advice.UnmarshalBinary(mut)
				if err != nil {
					// The corruption broke the wire format; the decode
					// boundary rejects before the engine runs, so there is
					// no worker-count behavior to compare.
					t.Skipf("corrupted advice does not decode: %v", err)
				}
				requireIdentical(t, harness.WikiApp(), run.Trace, adv)
			})
		}
	}
}
