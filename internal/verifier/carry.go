package verifier

import (
	"sort"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/value"
)

// Cross-epoch carry-over for the continuous-audit pipeline. An epoch's
// audit sees only that epoch's trace and advice, but the server's state —
// loggable variables and the KV store — persists across seals. CarryState
// is the verified end-state of the last accepted epoch: the auditor threads
// it into the next epoch's audit (Config.Carry), where it materializes as
// synthetic init-level writes, and extracts the successor state from an
// accepting audit with carryOut.
//
// The construction preserves the audit's two properties at the boundary:
//
//   - Completeness: an honest server rebases each variable's most-recent-
//     write marker onto the same synthetic op identities at every seal
//     (server.DrainAdvice), so its next-epoch advice is exactly what this
//     verifier expects — first accesses go unlogged (init-level ops
//     R-precede everything) and resolve through the carried dictionary.
//   - Soundness: the carried values are not advice. They come from the
//     auditor's own previous accepting audit, are injected after replaying
//     init, and advice that forges a log entry at a carry identity is
//     rejected outright. Carried store writes resolve reads-from references
//     but can never re-enter the write order (they are not last
//     modifications of any in-epoch transaction).

// CarriedWrite is the surviving committed write of one key: its original
// position in a prior epoch's transaction log and its contents.
type CarriedWrite struct {
	Pos      advice.TxPos `json:"pos"`
	Contents value.V      `json:"contents"`
}

// CarryState is the verified server state at an epoch boundary. It
// marshals to JSON, which is how auditd checkpoints it.
type CarryState struct {
	// Vars is the final value of every loggable variable.
	Vars map[core.VarID]value.V `json:"vars"`
	// Store maps each key to the committed write that installed its
	// surviving version.
	Store map[string]CarriedWrite `json:"store"`
}

// Normalize canonicalizes all carried values in place (needed after a JSON
// round trip through a checkpoint file, where numbers and containers come
// back in JSON shapes).
func (c *CarryState) Normalize() {
	for id, val := range c.Vars {
		c.Vars[id] = value.Normalize(val)
	}
	for key, cw := range c.Store {
		c.Store[key] = CarriedWrite{Pos: cw.Pos, Contents: value.Normalize(cw.Contents)}
	}
}

// injectCarry materializes the carried state after init replay: each
// variable gets a synthetic logged write at its carry identity
// {InitRID, InitHID, EpochCarryBase+i} (sorted VarID order — the identity
// agreement with server.DrainAdvice), entering the init-level version
// dictionary so unlogged next-epoch reads resolve to it; carried store
// writes become resolvable TxPos targets for reads-from references.
func (v *Verifier) injectCarry() {
	c := v.cfg.Carry
	if c == nil {
		return
	}
	// The carry came from our own prior audit of the same application, so a
	// mismatch with the program's variables is an auditor-side fault, not
	// advice forgery.
	for _, id := range sortedKeys(c.Vars) {
		if _, ok := v.vars[id]; !ok {
			core.RejectCodef(core.RejectInternalFault, "carry state names unknown variable %s", id)
		}
	}
	ids := make([]string, 0, len(v.vars))
	for id := range v.vars {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for i, id := range ids {
		vv := v.vars[core.VarID(id)]
		val, ok := c.Vars[core.VarID(id)]
		if !ok {
			core.RejectCodef(core.RejectInternalFault, "carry state has no value for variable %s", id)
		}
		op := core.Op{RID: core.InitRID, HID: core.InitHID, Num: core.EpochCarryBase + i}
		if _, forged := vv.log[op]; forged {
			core.RejectCodef(core.RejectMalformedAdvice, "advice forges a log entry at carry identity %v of variable %s", op, id)
		}
		val = value.Normalize(val)
		vv.log[op] = &advice.VarLogEntry{Op: op, Type: advice.AccessWrite, Value: val}
		v.annotateWrite(vv, op, val, emptyParents, nil)
	}
	if len(c.Store) > 0 {
		v.carryTx = make(map[advice.TxPos]*advice.TxOp, len(c.Store))
		for key, cw := range c.Store {
			v.carryTx[cw.Pos] = &advice.TxOp{
				Type: core.TxPut, Key: key, Contents: value.Normalize(cw.Contents),
			}
		}
	}
}

// isCarried reports whether p is a carried prior-epoch write.
func (v *Verifier) isCarried(p advice.TxPos) bool {
	_, ok := v.carryTx[p]
	return ok
}

// carryOut extracts the verified end-state after an accepting audit: each
// variable's last write (the end of its write_observer chain — acyclic,
// postprocess already checked) and each key's surviving committed write
// (the tail of the per-key write order, overlaid on the prior carry).
func (v *Verifier) carryOut() *CarryState {
	out := &CarryState{
		Vars:  make(map[core.VarID]value.V, len(v.vars)),
		Store: make(map[string]CarriedWrite),
	}
	if prior := v.cfg.Carry; prior != nil {
		for key, cw := range prior.Store {
			out.Store[key] = cw
		}
	}
	for _, id := range sortedKeys(v.vars) {
		vv := v.vars[id]
		if vv.initial == nil {
			continue
		}
		cur := *vv.initial
		for {
			next, ok := vv.writeObs[cur]
			if !ok {
				break
			}
			cur = next
		}
		out.Vars[id] = v.valueOfWrite(vv, cur)
	}
	for _, key := range sortedKeys(v.woPerKey) {
		order := v.woPerKey[key]
		p := order[len(order)-1]
		op := v.txOpAt(p)
		if op == nil {
			core.RejectCodef(core.RejectInternalFault, "verified write order tail %v has no log entry", p)
		}
		out.Store[key] = CarriedWrite{Pos: p, Contents: op.Contents}
	}
	return out
}

// valueOfWrite returns the value a verified write produced: from its log
// entry when logged, otherwise from the version dictionary (every
// annotated write entered it).
func (v *Verifier) valueOfWrite(vv *vvar, op core.Op) value.V {
	if e, ok := vv.log[op]; ok && e.Type == advice.AccessWrite {
		return e.Value
	}
	for _, en := range vv.dict[dkey{rid: op.RID, hid: op.HID}] {
		if en.num == op.Num {
			return en.val
		}
	}
	core.RejectCodef(core.RejectInternalFault, "verified write %v of variable %s has no recorded value", op, vv.id)
	return nil
}
