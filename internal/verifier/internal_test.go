// White-box tests for the verifier's most safety-critical internals: the
// time-precedence construction (every response that chronologically precedes
// a request must be ordered before it in G, with only O(n) edges) and the
// version-dictionary climb (FindNearestRPrecedingWrite, §4.2).
package verifier

import (
	"testing"

	"karousos.dev/karousos/internal/advice"
	"karousos.dev/karousos/internal/core"
	"karousos.dev/karousos/internal/trace"
)

func precedenceVerifier(events []trace.Event) *Verifier {
	v := New(Config{})
	v.tr = &trace.Trace{Events: events}
	v.adv = &advice.Advice{}
	for _, e := range events {
		v.inTrace[core.RID(e.RID)] = true
	}
	v.buildLayout()
	v.addTimePrecedenceEdges(&esink{v: v})
	return v
}

// reach reports whether a's node reaches b's node in the interned graph.
func (v *Verifier) reach(from, to gnode) bool {
	a, ok := v.eg.idOf(from)
	if !ok {
		return false
	}
	b, ok := v.eg.idOf(to)
	if !ok {
		return false
	}
	return v.eg.d.Reachable(a, b)
}

func TestTimePrecedenceCoversAllPairs(t *testing.T) {
	// r1 finishes, then r2 and r3 arrive concurrently, r2 finishes before r4
	// arrives.
	ev := []trace.Event{
		{Kind: trace.Req, RID: "r1"},
		{Kind: trace.Resp, RID: "r1"},
		{Kind: trace.Req, RID: "r2"},
		{Kind: trace.Req, RID: "r3"},
		{Kind: trace.Resp, RID: "r2"},
		{Kind: trace.Req, RID: "r4"},
		{Kind: trace.Resp, RID: "r3"},
		{Kind: trace.Resp, RID: "r4"},
	}
	v := precedenceVerifier(ev)
	mustReach := [][2]core.RID{
		{"r1", "r2"}, {"r1", "r3"}, {"r1", "r4"}, {"r2", "r4"},
	}
	for _, p := range mustReach {
		if !v.reach(respNode(p[0]), reqNode(p[1])) {
			t.Errorf("RESP %s must precede REQ %s in G", p[0], p[1])
		}
	}
	mustNotReach := [][2]core.RID{
		{"r2", "r3"}, // r3 arrived before r2's response
		{"r3", "r4"}, // r4 arrived before r3's response
		{"r4", "r1"},
	}
	for _, p := range mustNotReach {
		if v.reach(respNode(p[0]), reqNode(p[1])) {
			t.Errorf("RESP %s must NOT precede REQ %s in G", p[0], p[1])
		}
	}
	// No request node may ever reach another request node through barriers
	// alone (requests are unordered among themselves).
	if v.reach(reqNode("r2"), reqNode("r3")) || v.reach(reqNode("r3"), reqNode("r2")) {
		t.Error("concurrent requests ordered by the barrier chain")
	}
}

func TestTimePrecedenceEdgeCountLinear(t *testing.T) {
	var ev []trace.Event
	const n = 500
	for i := 0; i < n; i++ {
		rid := core.RID(rune('a'+i%26)) + core.RID(rune('a'+(i/26)%26)) + core.RID(rune('a'+i/676))
		ev = append(ev,
			trace.Event{Kind: trace.Req, RID: string(rid)},
			trace.Event{Kind: trace.Resp, RID: string(rid)})
	}
	v := precedenceVerifier(ev)
	// O(n) construction: at most ~3 edges per event, never O(n²).
	if v.eg.d.NumEdges() > 6*n {
		t.Errorf("time precedence used %d edges for %d events", v.eg.d.NumEdges(), 2*n)
	}
	// Spot check transitivity across the whole chain.
	first := core.RID(ev[0].RID)
	last := core.RID(ev[len(ev)-1].RID)
	if !v.reach(respNode(first), reqNode(last)) {
		t.Error("first response does not reach last request")
	}
}

func TestFindNearestClimbsTree(t *testing.T) {
	v := New(Config{})
	vv := &vvar{
		id:       "x",
		dict:     map[dkey][]dictEntry{},
		readObs:  map[core.Op][]core.Op{},
		writeObs: map[core.Op]core.Op{},
	}
	// Tree: init → root → {childA, childB}; writes at init(1), root(3), and
	// childA(2).
	parentOf := map[core.HID]core.HID{
		"root":   core.InitHID,
		"childA": "root",
		"childB": "root",
	}
	vv.dict[dkey{core.InitRID, core.InitHID}] = []dictEntry{{num: 1, val: "init"}}
	vv.dict[dkey{"r1", "root"}] = []dictEntry{{num: 3, val: "root3"}}
	vv.dict[dkey{"r1", "childA"}] = []dictEntry{{num: 2, val: "a2"}}

	cases := []struct {
		op   core.Op
		want any
	}{
		// Same handler, earlier op.
		{core.Op{RID: "r1", HID: "childA", Num: 5}, "a2"},
		// Same handler, but before its own write: parent's write wins.
		{core.Op{RID: "r1", HID: "childA", Num: 1}, "root3"},
		// Sibling without writes: parent's write.
		{core.Op{RID: "r1", HID: "childB", Num: 1}, "root3"},
		// Root before its own write: the init value.
		{core.Op{RID: "r1", HID: "root", Num: 2}, "init"},
		// Root after its write.
		{core.Op{RID: "r1", HID: "root", Num: 9}, "root3"},
	}
	for _, c := range cases {
		_, val, found := v.findNearestRPrecedingWrite(vv, c.op, parentOf, nil)
		if !found {
			t.Errorf("%v: no write found", c.op)
			continue
		}
		if val != c.want {
			t.Errorf("%v: read %v, want %v", c.op, val, c.want)
		}
	}

	// A different request sees only init through the climb (cross-request
	// feeding goes through logs, never the dictionary).
	_, val, found := v.findNearestRPrecedingWrite(vv, core.Op{RID: "r2", HID: "root", Num: 1}, parentOf, nil)
	if !found || val != "init" {
		t.Errorf("other request read %v (found=%v), want init", val, found)
	}
}

func TestGnodeLabelShapes(t *testing.T) {
	labels := []string{
		gnodeLabel(reqNode("r1")),
		gnodeLabel(respNode("r1")),
		gnodeLabel(barNode(3)),
		gnodeLabel(opNode("r1", "0123456789abcdef", 2)),
		gnodeLabel(hEndNode("r1", "0123456789abcdef")),
	}
	seen := map[string]bool{}
	for _, l := range labels {
		if l == "" {
			t.Error("empty gnode label")
		}
		if seen[l] {
			t.Errorf("duplicate label %q", l)
		}
		seen[l] = true
	}
}
